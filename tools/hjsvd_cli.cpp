// hjsvd_cli — command-line SVD driver.
//
// Decompose a Matrix Market file with any of the library's algorithms,
// print singular values, optionally write U/V back out as .mtx, estimate
// the FPGA accelerator's execution for the same problem, or generate test
// matrices.
//
//   hjsvd_cli --input A.mtx --method hestenes --values 10
//   hjsvd_cli --input A.mtx --method golub-kahan --write-u U.mtx --write-v V.mtx
//   hjsvd_cli --input A.mtx --fpga-estimate
//   hjsvd_cli --input A.mtx --method pipelined-modified
//       --trace-out trace.json --metrics-out metrics.json
//   hjsvd_cli --generate 512x128 --seed 3 --output A.mtx
//   hjsvd_cli --batch matrices/ --threads 4
//   hjsvd_cli --batch 24x16*6,64x48 --seed 7 --threads 4
//       --trace-out trace.json --metrics-out metrics.json
#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>

#include "api/engine.hpp"
#include "api/svd.hpp"
#include "arch/accelerator_sim.hpp"
#include "arch/timing_model.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "linalg/generate.hpp"
#include "linalg/io.hpp"
#include "linalg/simd/simd.hpp"
#include "obs/live.hpp"
#include "obs/metrics.hpp"
#include "obs/numerics.hpp"
#include "obs/trace.hpp"

using namespace hjsvd;

namespace {

/// Bad command-line usage: reported with the full help text and a distinct
/// exit code (2), unlike runtime failures (1).
class UsageError : public Error {
 public:
  using Error::Error;
};

SvdMethod parse_method(const std::string& name) {
  SvdMethod method;
  if (!svd_method_from_token(name, &method))
    throw UsageError("unknown --method '" + name +
                     "' (hestenes|plain|parallel|parallel-modified|"
                     "pipelined-modified|mixed-modified|two-sided|golub-kahan)");
  return method;
}

/// Parses an option that must be a positive finite number.  Non-numeric
/// text, 0, negatives, inf and nan are all usage errors (exit 2 with the
/// help text), never runtime failures: Cli::get_double throws plain Error
/// on unparseable input, which main() would otherwise map to exit 1.
double parse_positive_double(const Cli& cli, const std::string& name) {
  const std::string raw = cli.get(name);
  double value = 0.0;
  try {
    value = cli.get_double(name);
  } catch (const Error&) {
    throw UsageError("--" + name + " expects a number, got '" + raw + "'");
  }
  if (!(std::isfinite(value) && value > 0.0))
    throw UsageError("--" + name + " must be a positive finite number, got '" +
                     raw + "'");
  return value;
}

/// Parses a strictly positive count option; "auto" (and, for --threads,
/// its historical spelling "all") means implementation-chosen.
std::size_t parse_count(const Cli& cli, const std::string& name,
                        std::size_t auto_value) {
  const std::string raw = cli.get(name);
  if (raw == "auto" || raw == "all") return auto_value;
  std::int64_t value = 0;
  try {
    value = cli.get_int(name);
  } catch (const Error&) {
    throw UsageError("--" + name + " expects a positive integer or 'auto', got '" +
                     raw + "'");
  }
  if (value <= 0) {
    throw UsageError("--" + name + " must be >= 1 (or 'auto'), got '" + raw +
                     "'");
  }
  return static_cast<std::size_t>(value);
}

/// Parses a non-negative integer option; 0 means "disabled"/"unbounded".
std::size_t parse_nonneg_count(const Cli& cli, const std::string& name) {
  const std::string raw = cli.get(name);
  std::int64_t value = -1;
  try {
    value = cli.get_int(name);
  } catch (const Error&) {
    throw UsageError("--" + name + " expects a non-negative integer, got '" +
                     raw + "'");
  }
  if (value < 0)
    throw UsageError("--" + name + " must be >= 0, got '" + raw + "'");
  return static_cast<std::size_t>(value);
}

/// Parses a non-negative finite number option; 0 means "disabled".
double parse_nonneg_double(const Cli& cli, const std::string& name) {
  const std::string raw = cli.get(name);
  double value = -1.0;
  try {
    value = cli.get_double(name);
  } catch (const Error&) {
    throw UsageError("--" + name + " expects a number, got '" + raw + "'");
  }
  if (!(std::isfinite(value) && value >= 0.0))
    throw UsageError("--" + name +
                     " must be a non-negative finite number, got '" + raw +
                     "'");
  return value;
}

/// Parses --num-probes: "" / "off" / "false" disables (returns 0), "on" /
/// "true" enables at the default stride, a positive integer sets the
/// sampling stride explicitly.
std::size_t parse_num_probes(const Cli& cli) {
  const std::string raw = cli.get("num-probes");
  if (raw.empty() || raw == "off" || raw == "false") return 0;
  if (raw == "on" || raw == "true") return obs::NumericsProbe::Config{}.stride;
  std::int64_t value = 0;
  try {
    value = cli.get_int("num-probes");
  } catch (const Error&) {
    throw UsageError("--num-probes expects on|off or a positive stride, "
                     "got '" + raw + "'");
  }
  if (value <= 0)
    throw UsageError("--num-probes stride must be >= 1, got '" + raw + "'");
  return static_cast<std::size_t>(value);
}

/// Applies --simd to the process-wide dispatch level.  "auto" keeps the
/// startup choice (HJSVD_SIMD env var, else best available); the explicit
/// levels override it for this run.
void apply_simd_level(const std::string& name) {
  if (name == "auto") return;
  if (name == "off" || name == "scalar") {
    simd::set_level(simd::Level::kScalar);
    return;
  }
  if (name == "avx2") {
    if (!simd::compiled_with_avx2())
      throw UsageError("--simd avx2: this binary was built with HJSVD_SIMD=OFF "
                       "or without AVX2 compiler support");
    if (!simd::cpu_has_avx2())
      throw UsageError("--simd avx2: this CPU does not support AVX2");
    simd::set_level(simd::Level::kAvx2);
    return;
  }
  throw UsageError("unknown --simd '" + name + "' (off|scalar|avx2|auto)");
}

/// Parses "MxN" into dimensions.
std::pair<std::size_t, std::size_t> parse_shape(const std::string& s) {
  const auto x = s.find('x');
  HJSVD_ENSURE(x != std::string::npos && x > 0 && x + 1 < s.size(),
               "--generate expects ROWSxCOLS, e.g. 512x128");
  return {static_cast<std::size_t>(std::stoull(s.substr(0, x))),
          static_cast<std::size_t>(std::stoull(s.substr(x + 1)))};
}

/// Loads the --batch workload: either every .mtx file of a directory
/// (sorted by name, so runs are reproducible) or a generated spec like
/// "24x16*6,64x48" — comma-separated ROWSxCOLS shapes with an optional
/// *COUNT repeat, drawn from --seed.  Returns (matrix, label) pairs.
std::vector<std::pair<Matrix, std::string>> load_batch(
    const std::string& spec, std::uint64_t seed) {
  std::vector<std::pair<Matrix, std::string>> items;
  if (std::filesystem::is_directory(spec)) {
    std::vector<std::filesystem::path> paths;
    for (const auto& entry : std::filesystem::directory_iterator(spec))
      if (entry.is_regular_file() && entry.path().extension() == ".mtx")
        paths.push_back(entry.path());
    std::sort(paths.begin(), paths.end());
    if (paths.empty())
      throw UsageError("--batch: no .mtx files in directory '" + spec + "'");
    for (const auto& p : paths)
      items.emplace_back(read_matrix_market_file(p.string()),
                         p.filename().string());
    return items;
  }
  Rng rng(seed);
  std::size_t start = 0;
  while (start <= spec.size()) {
    const auto comma = spec.find(',', start);
    const std::string token = spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    start = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (token.empty())
      throw UsageError("--batch: empty entry in spec '" + spec + "'");
    const auto star = token.find('*');
    std::size_t repeat = 1;
    std::string shape = token;
    if (star != std::string::npos) {
      shape = token.substr(0, star);
      try {
        repeat = static_cast<std::size_t>(std::stoull(token.substr(star + 1)));
      } catch (const std::exception&) {
        repeat = 0;
      }
      if (repeat == 0)
        throw UsageError("--batch: bad repeat in '" + token +
                         "' (want ROWSxCOLS*COUNT)");
    }
    std::size_t rows = 0, cols = 0;
    try {
      // parse_shape's stoull throws std::invalid_argument on non-digits.
      std::tie(rows, cols) = parse_shape(shape);
    } catch (const std::exception&) {
      throw UsageError("--batch: '" + token +
                       "' is neither a directory nor ROWSxCOLS[*COUNT]");
    }
    for (std::size_t k = 0; k < repeat; ++k)
      items.emplace_back(random_gaussian(rows, cols, rng),
                         shape + "#" + std::to_string(k));
  }
  return items;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("hjsvd_cli: SVD of Matrix Market files via Hestenes-Jacobi");
  try {
    cli.add_option("input", "", "input .mtx file");
    cli.add_option("method", "hestenes",
                   "hestenes|plain|parallel|parallel-modified|"
                   "pipelined-modified|mixed-modified|two-sided|golub-kahan");
    cli.add_option("threads", "auto",
                   "worker threads for the parallel methods (positive "
                   "integer, or 'auto' = all)");
    cli.add_option("queue-depth", "8",
                   "parameter-queue capacity of --method pipelined-modified");
    cli.add_option("simd", "auto",
                   "SIMD kernel dispatch level: off|scalar|avx2|auto "
                   "(auto = HJSVD_SIMD env var, else best available; every "
                   "level is bitwise identical)");
    cli.add_option("simd-relaxed", "false",
                   "opt into the relaxed SIMD tier: 4-lane-split Gram/dot "
                   "reductions (faster, deterministic, but not bitwise "
                   "identical to the strict scalar reference)");
    cli.add_option("values", "10", "how many singular values to print");
    cli.add_option("sweeps", "30", "max sweeps (Jacobi methods)");
    cli.add_option("tolerance", "1e-13",
                   "convergence tolerance (positive finite number)");
    cli.add_option("mp-switch", "1e-4",
                   "--method mixed-modified: off-diagonal level at which the "
                   "float phase promotes to double (positive finite number; "
                   "see docs/ALGORITHM.md §10)");
    cli.add_option("write-u", "", "write left singular vectors to .mtx");
    cli.add_option("write-v", "", "write right singular vectors to .mtx");
    cli.add_option("fpga-sim", "false",
                   "run the cycle-accurate accelerator sim on the same "
                   "matrix; with --trace-out/--metrics-out its spans, "
                   "counter track and sim.* metrics are recorded too");
    cli.add_option("fpga-estimate", "false",
                   "also print the accelerator model's time for this shape");
    cli.add_option("batch", "",
                   "decompose a whole batch on the work-stealing pool: a "
                   "directory of .mtx files, or a generated spec like "
                   "24x16*6,64x48 (uses --seed)");
    cli.add_option("split-threshold", "0.25",
                   "--batch: cost fraction at which one item expands onto "
                   "borrowed workers (nested parallelism); 0 disables");
    cli.add_option("generate", "",
                   "generate a gaussian ROWSxCOLS matrix instead of reading");
    cli.add_option("cond", "0",
                   "--generate: target condition number (geometric singular-"
                   "value decay); 0 = plain gaussian entries");
    cli.add_option("seed", "1", "generation seed");
    cli.add_option("output", "", "output path for --generate");
    cli.add_option("trace-out", "",
                   "write a Chrome trace-event JSON of the run (open in "
                   "Perfetto; see docs/OBSERVABILITY.md)");
    cli.add_option("metrics-out", "",
                   "write run metrics as hjsvd.metrics.v1 JSON");
    cli.add_option("obs-live", "",
                   "live-telemetry directory: snapshots.jsonl + metrics.prom "
                   "sampled while the run is in flight, SIGUSR1-triggered "
                   "dump_NNNN.*.json dumps, and final_trace/final_metrics "
                   "artifacts (implies trace+metrics recording; see "
                   "docs/OBSERVABILITY.md)");
    cli.add_option("obs-ring-events", "0",
                   "flight-recorder mode: per-thread trace ring capacity in "
                   "events (drop-oldest with exact drop counters, serialized "
                   "as hjsvd.trace.v3); 0 = unbounded v2 recording");
    cli.add_option("obs-snapshot-ms", "100",
                   "--obs-live sampling period in milliseconds");
    cli.add_option("deadline-s", "0",
                   "watchdog wall-clock budget in seconds; overruns are "
                   "flagged (obs.watchdog.* metrics + instant trace event), "
                   "never enforced.  0 disables");
    cli.add_option("num-probes", "",
                   "numerical-health probes: 'on' (default stride), a "
                   "positive sampling stride, or 'off'.  Emits svd.num.* "
                   "metrics and a numerics summary; read-only — results are "
                   "bitwise identical probes on or off (see "
                   "docs/OBSERVABILITY.md)");
    cli.parse(argc, argv);

    if (const auto shape = cli.get("generate"); !shape.empty()) {
      const auto [rows, cols] = parse_shape(shape);
      Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
      const double kappa = parse_nonneg_double(cli, "cond");
      if (kappa != 0.0 && kappa < 1.0)
        throw UsageError("--cond must be >= 1 (or 0 for plain gaussian), "
                         "got '" + cli.get("cond") + "'");
      const Matrix a = kappa > 1.0 ? random_conditioned(rows, cols, kappa, rng)
                                   : random_gaussian(rows, cols, rng);
      const auto out = cli.get("output");
      HJSVD_ENSURE(!out.empty(), "--generate requires --output PATH");
      write_matrix_market_file(out, a);
      std::cout << "wrote " << rows << " x " << cols << " matrix to " << out;
      if (kappa > 1.0) std::cout << " (condition number ~" << kappa << ")";
      std::cout << '\n';
      return 0;
    }

    apply_simd_level(cli.get("simd"));

    SvdOptions opt;
    opt.method = parse_method(cli.get("method"));
    opt.simd_relaxed = cli.get_bool("simd-relaxed");
    opt.max_sweeps = static_cast<std::size_t>(cli.get_int("sweeps"));
    opt.tolerance = parse_positive_double(cli, "tolerance");
    opt.mp_switch_threshold = parse_positive_double(cli, "mp-switch");
    opt.threads = parse_count(cli, "threads", 0);
    opt.pipeline_queue_depth = parse_count(cli, "queue-depth", 8);
    opt.compute_u = !cli.get("write-u").empty();
    opt.compute_v = !cli.get("write-v").empty();

    // Observability sinks.  Output files open *before* the decomposition so
    // an unwritable path is a usage error (exit 2) up front, not a wasted
    // run that fails at the end.
    const auto trace_path = cli.get("trace-out");
    const auto metrics_path = cli.get("metrics-out");
    std::ofstream trace_file, metrics_file;
    if (!trace_path.empty()) {
      trace_file.open(trace_path);
      if (!trace_file)
        throw UsageError("--trace-out: cannot open '" + trace_path +
                         "' for writing");
    }
    if (!metrics_path.empty()) {
      metrics_file.open(metrics_path);
      if (!metrics_file)
        throw UsageError("--metrics-out: cannot open '" + metrics_path +
                         "' for writing");
    }
    const std::size_t ring_events = parse_nonneg_count(cli, "obs-ring-events");
    const std::size_t snapshot_ms = parse_count(cli, "obs-snapshot-ms", 100);
    const double deadline_s = parse_nonneg_double(cli, "deadline-s");
    const auto live_dir = cli.get("obs-live");
    obs::TraceRecorder recorder(ring_events);
    obs::MetricsRegistry registry;
    if (!trace_path.empty()) opt.trace = &recorder;
    if (!metrics_path.empty()) opt.metrics = &registry;
    if (!live_dir.empty()) {
      // Live mode records unconditionally; --trace-out/--metrics-out remain
      // optional end-of-run copies.  A missing directory is created — but
      // only one level deep: a missing *parent* means a mistyped path, not
      // an intent to create a whole tree, and stays a usage error (exit 2),
      // as does an unwritable parent.
      namespace fs = std::filesystem;
      const fs::path dir(live_dir);
      if (fs::exists(dir)) {
        if (!fs::is_directory(dir))
          throw UsageError("--obs-live: '" + live_dir +
                           "' exists and is not a directory");
      } else {
        const fs::path parent =
            dir.has_parent_path() ? dir.parent_path() : fs::path(".");
        if (!fs::is_directory(parent))
          throw UsageError("--obs-live: parent directory '" +
                           parent.string() + "' does not exist");
        std::error_code ec;
        if (!fs::create_directory(dir, ec))
          throw UsageError("--obs-live: cannot create directory '" +
                           live_dir + "': " + ec.message());
      }
      opt.trace = &recorder;
      opt.metrics = &registry;
    }
    const std::size_t probe_stride = parse_num_probes(cli);
    std::optional<obs::Watchdog> watchdog;
    if (!live_dir.empty() || deadline_s > 0.0 || probe_stride > 0) {
      obs::Watchdog::Config wd_cfg;
      wd_cfg.deadline_s = deadline_s;
      watchdog.emplace(wd_cfg, opt.trace, opt.metrics);
      opt.watchdog = &*watchdog;
    }
    std::optional<obs::NumericsProbe> probe;
    if (probe_stride > 0) {
      obs::NumericsProbe::Config probe_cfg;
      probe_cfg.stride = probe_stride;
      probe.emplace(probe_cfg, opt.metrics, opt.trace, opt.watchdog);
      opt.numerics = &*probe;
    }
    std::unique_ptr<obs::SnapshotExporter> exporter;
    if (!live_dir.empty()) {
      obs::LiveConfig live_cfg;
      live_cfg.dir = live_dir;
      live_cfg.interval = std::chrono::milliseconds(snapshot_ms);
      exporter = std::make_unique<obs::SnapshotExporter>(
          live_cfg, &recorder, &registry, opt.watchdog);
      obs::install_dump_signal_handler();
      std::cout << "live telemetry in " << live_dir << " (every "
                << snapshot_ms << " ms; SIGUSR1 dumps)\n";
    }
    if (!obs::kEnabled &&
        (!trace_path.empty() || !metrics_path.empty() || !live_dir.empty() ||
         probe_stride > 0))
      std::cerr << "hjsvd_cli: warning: observability was compiled out "
                   "(HJSVD_OBS=0); trace/metrics/probe outputs will be "
                   "empty\n";

    const auto write_sinks = [&] {
      if (exporter != nullptr) {
        exporter->stop();
        std::ofstream f(live_dir + "/final_trace.json");
        recorder.write(f);
        std::ofstream g(live_dir + "/final_metrics.json");
        registry.write(g);
        std::cout << "live telemetry: " << exporter->samples()
                  << " snapshots, " << exporter->dumps() << " dumps, "
                  << recorder.dropped_events_total()
                  << " ring-dropped events in " << live_dir << '\n';
      }
      if (opt.watchdog != nullptr) {
        if (watchdog->deadline_exceeded())
          std::cout << "watchdog: DEADLINE EXCEEDED (budget "
                    << format_duration(deadline_s) << ")\n";
        if (watchdog->stalled())
          std::cout << "watchdog: convergence stall flagged ("
                    << watchdog->stall_events() << " episode(s))\n";
        if (watchdog->divergence())
          std::cout << "watchdog: DIVERGENCE flagged (off-diagonal mass "
                       "increased across sweeps)\n";
        if (watchdog->orthogonality())
          std::cout << "watchdog: ORTHOGONALITY drift flagged at finalize\n";
      }
      if (probe.has_value()) {
        std::cout << "numerics: " << probe->samples()
                  << " sampled pairs (stride " << probe->stride()
                  << "), cancellation "
                  << format_fixed(probe->cancellation_frac() * 100.0, 1)
                  << "%, tiny-angle "
                  << format_fixed(probe->tiny_angle_frac() * 100.0, 1)
                  << "%, near-pi/4 "
                  << format_fixed(probe->near_pi4_frac() * 100.0, 1)
                  << "%, cond est " << format_sci(probe->condition_estimate());
        if (probe->orthogonality_drift() >= 0.0)
          std::cout << ", V drift " << format_sci(probe->orthogonality_drift());
        if (probe->backward_error() >= 0.0)
          std::cout << ", backward error "
                    << format_sci(probe->backward_error());
        if (probe->nonfinite_events() > 0)
          std::cout << ", " << probe->nonfinite_events()
                    << " NON-FINITE event(s)";
        std::cout << '\n';
      }
      if (!trace_path.empty()) {
        recorder.write(trace_file);
        trace_file << '\n';
        HJSVD_ENSURE(static_cast<bool>(trace_file),
                     "failed writing --trace-out file");
        std::cout << "wrote trace to " << trace_path << '\n';
      }
      if (!metrics_path.empty()) {
        registry.write(metrics_file);
        metrics_file << '\n';
        HJSVD_ENSURE(static_cast<bool>(metrics_file),
                     "failed writing --metrics-out file");
        std::cout << "wrote metrics to " << metrics_path << '\n';
      }
    };

    if (const auto spec = cli.get("batch"); !spec.empty()) {
      if (!cli.get("input").empty())
        throw UsageError("--batch and --input are mutually exclusive");
      if (opt.compute_u || opt.compute_v)
        throw UsageError("--write-u/--write-v apply to single-matrix runs, "
                         "not --batch");
      if (cli.get_bool("fpga-sim") || cli.get_bool("fpga-estimate"))
        throw UsageError("--fpga-sim/--fpga-estimate apply to single-matrix "
                         "runs, not --batch");
      const double split = cli.get_double("split-threshold");
      if (!(split >= 0.0 && split <= 1.0))
        throw UsageError("--split-threshold must be in [0, 1], got '" +
                         cli.get("split-threshold") + "'");
      opt.batch_split_min_fraction = split;
      auto items = load_batch(
          spec, static_cast<std::uint64_t>(cli.get_int("seed")));
      std::vector<Matrix> batch;
      batch.reserve(items.size());
      for (auto& [matrix, label] : items) batch.push_back(std::move(matrix));
      std::cout << "batch of " << batch.size() << " matrices from " << spec
                << '\n';

      Timer timer;
      SvdBatchStats stats;
      // The CLI batch path runs on the same warm engine the serve daemon
      // uses (resident pool + per-worker workspaces), so one-shot runs
      // exercise exactly the serving code path.
      EngineInstance engine(EngineConfig{.threads = opt.threads});
      const auto results = engine.decompose_batch(batch, opt, &stats);
      const double seconds = timer.seconds();

      AsciiTable table({"item", "shape", "sweeps", "converged", "sigma[0]"});
      table.set_caption(std::string(svd_method_name(opt.method)) +
                        " over the work-stealing batch pool");
      for (std::size_t i = 0; i < results.size(); ++i)
        table.add_row({items[i].second,
                       std::to_string(batch[i].rows()) + "x" +
                           std::to_string(batch[i].cols()),
                       std::to_string(results[i].sweeps),
                       results[i].converged ? "yes" : "NO",
                       results[i].singular_values.empty()
                           ? "-"
                           : format_sci(results[i].singular_values[0], 9)});
      std::cout << table.to_string() << '\n';
      std::cout << "scheduler: " << stats.workers << " workers ("
                << stats.requested_workers << " requested), " << stats.steals
                << " steals, " << stats.nested_splits
                << " nested splits (+" << stats.helpers_granted
                << " helper threads), " << format_duration(seconds)
                << " wall\n";
      if (opt.metrics != nullptr)
        registry.gauge_set("cli.wall_s", "s", seconds);
      write_sinks();
      return 0;
    }

    const auto input = cli.get("input");
    HJSVD_ENSURE(!input.empty(),
                 "need --input FILE.mtx (or --generate / --batch)");
    const Matrix a = read_matrix_market_file(input);
    std::cout << "read " << a.rows() << " x " << a.cols() << " matrix from "
              << input << '\n';

    Timer timer;
    const SvdResult r = svd(a, opt);
    const double seconds = timer.seconds();
    std::cout << svd_method_name(opt.method) << ": " << r.sweeps
              << " sweeps, " << format_duration(seconds)
              << (r.converged ? ", converged" : ", NOT converged") << '\n';
    const auto count = std::min<std::size_t>(
        static_cast<std::size_t>(cli.get_int("values")),
        r.singular_values.size());
    for (std::size_t i = 0; i < count; ++i)
      std::cout << "sigma[" << i << "] = " << format_sci(r.singular_values[i], 9)
                << '\n';

    if (const auto path = cli.get("write-u"); !path.empty()) {
      write_matrix_market_file(path, r.u);
      std::cout << "wrote U to " << path << '\n';
    }
    if (const auto path = cli.get("write-v"); !path.empty()) {
      write_matrix_market_file(path, r.v);
      std::cout << "wrote V to " << path << '\n';
    }

    if (cli.get_bool("fpga-estimate")) {
      const arch::AcceleratorConfig cfg;
      const auto t = arch::estimate_timing(cfg, a.rows(), a.cols());
      std::cout << "\nFPGA accelerator model (paper configuration):\n"
                << arch::format_timing(t, a.rows(), a.cols())
                << "speedup over this run: "
                << format_fixed(seconds / t.seconds, 1) << "x\n";
      if (opt.metrics != nullptr) {
        // The analytic model's FIFO bound, in both its native unit and the
        // software queue's unit, next to pipeline.queue.high_water.
        registry.gauge_set("sim.model.cycles.total", "cycles",
                           static_cast<double>(t.total));
        registry.gauge_set("sim.model.seconds", "s", t.seconds);
        registry.gauge_set("sim.model.param_fifo.occupancy",
                           "rotation_groups",
                           static_cast<double>(t.param_fifo_occupancy));
        registry.gauge_set(
            "sim.model.param_fifo.occupancy_rotations", "rotations",
            static_cast<double>(t.param_fifo_occupancy_rotations));
      }
    }

    if (cli.get_bool("fpga-sim")) {
      arch::AcceleratorConfig cfg;
      cfg.obs.trace = opt.trace;
      cfg.obs.metrics = opt.metrics;
      const auto sim = arch::simulate_accelerator(a, cfg);
      std::cout << "\nFPGA accelerator sim: " << sim.total_cycles
                << " cycles (" << format_duration(sim.seconds)
                << " simulated), param-FIFO high-water "
                << sim.param_fifo_high_water_rotations
                << " rotations, update utilization "
                << format_fixed(sim.update_utilization * 100.0, 1) << "%\n";
    }

    if (opt.metrics != nullptr)
      registry.gauge_set("cli.wall_s", "s", seconds);
    write_sinks();
    return 0;
  } catch (const UsageError& e) {
    std::cerr << "hjsvd_cli: " << e.what() << "\n\n" << cli.help();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "hjsvd_cli: " << e.what() << '\n';
    return 1;
  }
}

// hjsvd_cli — command-line SVD driver.
//
// Decompose a Matrix Market file with any of the library's algorithms,
// print singular values, optionally write U/V back out as .mtx, estimate
// the FPGA accelerator's execution for the same problem, or generate test
// matrices.
//
//   hjsvd_cli --input A.mtx --method hestenes --values 10
//   hjsvd_cli --input A.mtx --method golub-kahan --write-u U.mtx --write-v V.mtx
//   hjsvd_cli --input A.mtx --fpga-estimate
//   hjsvd_cli --input A.mtx --method pipelined-modified
//       --trace-out trace.json --metrics-out metrics.json
//   hjsvd_cli --generate 512x128 --seed 3 --output A.mtx
#include <fstream>
#include <iostream>

#include "api/svd.hpp"
#include "arch/accelerator_sim.hpp"
#include "arch/timing_model.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "linalg/generate.hpp"
#include "linalg/io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace hjsvd;

namespace {

/// Bad command-line usage: reported with the full help text and a distinct
/// exit code (2), unlike runtime failures (1).
class UsageError : public Error {
 public:
  using Error::Error;
};

SvdMethod parse_method(const std::string& name) {
  if (name == "hestenes" || name == "modified") {
    return SvdMethod::kModifiedHestenes;
  }
  if (name == "plain") return SvdMethod::kPlainHestenes;
  if (name == "parallel") return SvdMethod::kParallelHestenes;
  if (name == "parallel-modified" || name == "block") {
    return SvdMethod::kParallelModifiedHestenes;
  }
  if (name == "pipelined-modified" || name == "pipelined") {
    return SvdMethod::kPipelinedModifiedHestenes;
  }
  if (name == "two-sided" || name == "twosided") {
    return SvdMethod::kTwoSidedJacobi;
  }
  if (name == "golub-kahan" || name == "gk") return SvdMethod::kGolubKahan;
  throw UsageError("unknown --method '" + name +
                   "' (hestenes|plain|parallel|parallel-modified|"
                   "pipelined-modified|two-sided|golub-kahan)");
}

/// Parses a strictly positive count option; "auto" (and, for --threads,
/// its historical spelling "all") means implementation-chosen.
std::size_t parse_count(const Cli& cli, const std::string& name,
                        std::size_t auto_value) {
  const std::string raw = cli.get(name);
  if (raw == "auto" || raw == "all") return auto_value;
  std::int64_t value = 0;
  try {
    value = cli.get_int(name);
  } catch (const Error&) {
    throw UsageError("--" + name + " expects a positive integer or 'auto', got '" +
                     raw + "'");
  }
  if (value <= 0) {
    throw UsageError("--" + name + " must be >= 1 (or 'auto'), got '" + raw +
                     "'");
  }
  return static_cast<std::size_t>(value);
}

/// Parses "MxN" into dimensions.
std::pair<std::size_t, std::size_t> parse_shape(const std::string& s) {
  const auto x = s.find('x');
  HJSVD_ENSURE(x != std::string::npos && x > 0 && x + 1 < s.size(),
               "--generate expects ROWSxCOLS, e.g. 512x128");
  return {static_cast<std::size_t>(std::stoull(s.substr(0, x))),
          static_cast<std::size_t>(std::stoull(s.substr(x + 1)))};
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("hjsvd_cli: SVD of Matrix Market files via Hestenes-Jacobi");
  try {
    cli.add_option("input", "", "input .mtx file");
    cli.add_option("method", "hestenes",
                   "hestenes|plain|parallel|parallel-modified|"
                   "pipelined-modified|two-sided|golub-kahan");
    cli.add_option("threads", "auto",
                   "worker threads for the parallel methods (positive "
                   "integer, or 'auto' = all)");
    cli.add_option("queue-depth", "8",
                   "parameter-queue capacity of --method pipelined-modified");
    cli.add_option("values", "10", "how many singular values to print");
    cli.add_option("sweeps", "30", "max sweeps (Jacobi methods)");
    cli.add_option("tolerance", "1e-13", "convergence tolerance");
    cli.add_option("write-u", "", "write left singular vectors to .mtx");
    cli.add_option("write-v", "", "write right singular vectors to .mtx");
    cli.add_option("fpga-sim", "false",
                   "run the cycle-accurate accelerator sim on the same "
                   "matrix; with --trace-out/--metrics-out its spans, "
                   "counter track and sim.* metrics are recorded too");
    cli.add_option("fpga-estimate", "false",
                   "also print the accelerator model's time for this shape");
    cli.add_option("generate", "",
                   "generate a gaussian ROWSxCOLS matrix instead of reading");
    cli.add_option("seed", "1", "generation seed");
    cli.add_option("output", "", "output path for --generate");
    cli.add_option("trace-out", "",
                   "write a Chrome trace-event JSON of the run (open in "
                   "Perfetto; see docs/OBSERVABILITY.md)");
    cli.add_option("metrics-out", "",
                   "write run metrics as hjsvd.metrics.v1 JSON");
    cli.parse(argc, argv);

    if (const auto shape = cli.get("generate"); !shape.empty()) {
      const auto [rows, cols] = parse_shape(shape);
      Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
      const Matrix a = random_gaussian(rows, cols, rng);
      const auto out = cli.get("output");
      HJSVD_ENSURE(!out.empty(), "--generate requires --output PATH");
      write_matrix_market_file(out, a);
      std::cout << "wrote " << rows << " x " << cols << " matrix to " << out
                << '\n';
      return 0;
    }

    const auto input = cli.get("input");
    HJSVD_ENSURE(!input.empty(), "need --input FILE.mtx (or --generate)");
    const Matrix a = read_matrix_market_file(input);
    std::cout << "read " << a.rows() << " x " << a.cols() << " matrix from "
              << input << '\n';

    SvdOptions opt;
    opt.method = parse_method(cli.get("method"));
    opt.max_sweeps = static_cast<std::size_t>(cli.get_int("sweeps"));
    opt.tolerance = cli.get_double("tolerance");
    opt.threads = parse_count(cli, "threads", 0);
    opt.pipeline_queue_depth = parse_count(cli, "queue-depth", 8);
    opt.compute_u = !cli.get("write-u").empty();
    opt.compute_v = !cli.get("write-v").empty();

    // Observability sinks.  Output files open *before* the decomposition so
    // an unwritable path is a usage error (exit 2) up front, not a wasted
    // run that fails at the end.
    const auto trace_path = cli.get("trace-out");
    const auto metrics_path = cli.get("metrics-out");
    std::ofstream trace_file, metrics_file;
    if (!trace_path.empty()) {
      trace_file.open(trace_path);
      if (!trace_file)
        throw UsageError("--trace-out: cannot open '" + trace_path +
                         "' for writing");
    }
    if (!metrics_path.empty()) {
      metrics_file.open(metrics_path);
      if (!metrics_file)
        throw UsageError("--metrics-out: cannot open '" + metrics_path +
                         "' for writing");
    }
    obs::TraceRecorder recorder;
    obs::MetricsRegistry registry;
    if (!trace_path.empty()) opt.trace = &recorder;
    if (!metrics_path.empty()) opt.metrics = &registry;
    if (!obs::kEnabled && (!trace_path.empty() || !metrics_path.empty()))
      std::cerr << "hjsvd_cli: warning: observability was compiled out "
                   "(HJSVD_OBS=0); trace/metrics outputs will be empty\n";

    Timer timer;
    const SvdResult r = svd(a, opt);
    const double seconds = timer.seconds();
    std::cout << svd_method_name(opt.method) << ": " << r.sweeps
              << " sweeps, " << format_duration(seconds)
              << (r.converged ? ", converged" : ", NOT converged") << '\n';
    const auto count = std::min<std::size_t>(
        static_cast<std::size_t>(cli.get_int("values")),
        r.singular_values.size());
    for (std::size_t i = 0; i < count; ++i)
      std::cout << "sigma[" << i << "] = " << format_sci(r.singular_values[i], 9)
                << '\n';

    if (const auto path = cli.get("write-u"); !path.empty()) {
      write_matrix_market_file(path, r.u);
      std::cout << "wrote U to " << path << '\n';
    }
    if (const auto path = cli.get("write-v"); !path.empty()) {
      write_matrix_market_file(path, r.v);
      std::cout << "wrote V to " << path << '\n';
    }

    if (cli.get_bool("fpga-estimate")) {
      const arch::AcceleratorConfig cfg;
      const auto t = arch::estimate_timing(cfg, a.rows(), a.cols());
      std::cout << "\nFPGA accelerator model (paper configuration):\n"
                << arch::format_timing(t, a.rows(), a.cols())
                << "speedup over this run: "
                << format_fixed(seconds / t.seconds, 1) << "x\n";
      if (opt.metrics != nullptr) {
        // The analytic model's FIFO bound, in both its native unit and the
        // software queue's unit, next to pipeline.queue.high_water.
        registry.gauge_set("sim.model.cycles.total", "cycles",
                           static_cast<double>(t.total));
        registry.gauge_set("sim.model.seconds", "s", t.seconds);
        registry.gauge_set("sim.model.param_fifo.occupancy",
                           "rotation_groups",
                           static_cast<double>(t.param_fifo_occupancy));
        registry.gauge_set(
            "sim.model.param_fifo.occupancy_rotations", "rotations",
            static_cast<double>(t.param_fifo_occupancy_rotations));
      }
    }

    if (cli.get_bool("fpga-sim")) {
      arch::AcceleratorConfig cfg;
      cfg.obs.trace = opt.trace;
      cfg.obs.metrics = opt.metrics;
      const auto sim = arch::simulate_accelerator(a, cfg);
      std::cout << "\nFPGA accelerator sim: " << sim.total_cycles
                << " cycles (" << format_duration(sim.seconds)
                << " simulated), param-FIFO high-water "
                << sim.param_fifo_high_water_rotations
                << " rotations, update utilization "
                << format_fixed(sim.update_utilization * 100.0, 1) << "%\n";
    }

    if (opt.metrics != nullptr)
      registry.gauge_set("cli.wall_s", "s", seconds);
    if (!trace_path.empty()) {
      recorder.write(trace_file);
      trace_file << '\n';
      HJSVD_ENSURE(static_cast<bool>(trace_file),
                   "failed writing --trace-out file");
      std::cout << "wrote trace to " << trace_path << '\n';
    }
    if (!metrics_path.empty()) {
      registry.write(metrics_file);
      metrics_file << '\n';
      HJSVD_ENSURE(static_cast<bool>(metrics_file),
                   "failed writing --metrics-out file");
      std::cout << "wrote metrics to " << metrics_path << '\n';
    }
    return 0;
  } catch (const UsageError& e) {
    std::cerr << "hjsvd_cli: " << e.what() << "\n\n" << cli.help();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "hjsvd_cli: " << e.what() << '\n';
    return 1;
  }
}

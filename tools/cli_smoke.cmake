# CLI smoke test: generate a matrix, decompose it with two methods, check
# both runs succeed and agree on the leading singular value.
execute_process(
  COMMAND ${CLI} --generate 24x16 --seed 7 --output ${WORKDIR}/smoke.mtx
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed: ${out}${err}")
endif()

execute_process(
  COMMAND ${CLI} --input ${WORKDIR}/smoke.mtx --method hestenes --values 3
  RESULT_VARIABLE rc1 OUTPUT_VARIABLE out1 ERROR_VARIABLE err1)
execute_process(
  COMMAND ${CLI} --input ${WORKDIR}/smoke.mtx --method golub-kahan --values 3
  RESULT_VARIABLE rc2 OUTPUT_VARIABLE out2 ERROR_VARIABLE err2)
if(NOT rc1 EQUAL 0 OR NOT rc2 EQUAL 0)
  message(FATAL_ERROR "decompose failed: ${out1}${err1}${out2}${err2}")
endif()

string(REGEX MATCH "sigma\\[0\\] = ([0-9.e+-]+)" m1 "${out1}")
set(v1 ${CMAKE_MATCH_1})
string(REGEX MATCH "sigma\\[0\\] = ([0-9.e+-]+)" m2 "${out2}")
set(v2 ${CMAKE_MATCH_1})
if(NOT v1 OR NOT v2)
  message(FATAL_ERROR "missing sigma output: ${out1} / ${out2}")
endif()
math(EXPR dummy "0")  # keep CMake happy for float compare below
if(NOT v1 STREQUAL v2)
  # Allow tiny difference: compare to 6 significant digits.
  string(SUBSTRING "${v1}" 0 8 p1)
  string(SUBSTRING "${v2}" 0 8 p2)
  if(NOT p1 STREQUAL p2)
    message(FATAL_ERROR "methods disagree: ${v1} vs ${v2}")
  endif()
endif()

# CLI smoke test: generate a matrix, decompose it with two methods, check
# both runs succeed and agree on the leading singular value.
execute_process(
  COMMAND ${CLI} --generate 24x16 --seed 7 --output ${WORKDIR}/smoke.mtx
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed: ${out}${err}")
endif()

execute_process(
  COMMAND ${CLI} --input ${WORKDIR}/smoke.mtx --method hestenes --values 3
  RESULT_VARIABLE rc1 OUTPUT_VARIABLE out1 ERROR_VARIABLE err1)
execute_process(
  COMMAND ${CLI} --input ${WORKDIR}/smoke.mtx --method golub-kahan --values 3
  RESULT_VARIABLE rc2 OUTPUT_VARIABLE out2 ERROR_VARIABLE err2)
if(NOT rc1 EQUAL 0 OR NOT rc2 EQUAL 0)
  message(FATAL_ERROR "decompose failed: ${out1}${err1}${out2}${err2}")
endif()

string(REGEX MATCH "sigma\\[0\\] = ([0-9.e+-]+)" m1 "${out1}")
set(v1 ${CMAKE_MATCH_1})
string(REGEX MATCH "sigma\\[0\\] = ([0-9.e+-]+)" m2 "${out2}")
set(v2 ${CMAKE_MATCH_1})
if(NOT v1 OR NOT v2)
  message(FATAL_ERROR "missing sigma output: ${out1} / ${out2}")
endif()
math(EXPR dummy "0")  # keep CMake happy for float compare below
if(NOT v1 STREQUAL v2)
  # Allow tiny difference: compare to 6 significant digits.
  string(SUBSTRING "${v1}" 0 8 p1)
  string(SUBSTRING "${v2}" 0 8 p2)
  if(NOT p1 STREQUAL p2)
    message(FATAL_ERROR "methods disagree: ${v1} vs ${v2}")
  endif()
endif()

# The pipelined engine must agree with the sequential method bit-for-bit
# (same printed digits) at a non-default thread count and queue depth.
execute_process(
  COMMAND ${CLI} --input ${WORKDIR}/smoke.mtx --method pipelined-modified
          --threads 3 --queue-depth 2 --values 3
  RESULT_VARIABLE rc3 OUTPUT_VARIABLE out3 ERROR_VARIABLE err3)
if(NOT rc3 EQUAL 0)
  message(FATAL_ERROR "pipelined decompose failed: ${out3}${err3}")
endif()
string(REGEX MATCH "sigma\\[0\\] = ([0-9.e+-]+)" m3 "${out3}")
if(NOT CMAKE_MATCH_1 STREQUAL v1)
  message(FATAL_ERROR "pipelined sigma differs: ${CMAKE_MATCH_1} vs ${v1}")
endif()

# The mixed-precision engine takes a different rotation path (float opening
# sweeps), so only value-level agreement is required: 6 significant digits
# against the all-double run, same contract as the cross-method check above.
execute_process(
  COMMAND ${CLI} --input ${WORKDIR}/smoke.mtx --method mixed-modified
          --mp-switch 1e-4 --values 3
  RESULT_VARIABLE rc5 OUTPUT_VARIABLE out5 ERROR_VARIABLE err5)
if(NOT rc5 EQUAL 0)
  message(FATAL_ERROR "mixed-modified decompose failed: ${out5}${err5}")
endif()
string(REGEX MATCH "sigma\\[0\\] = ([0-9.e+-]+)" m5 "${out5}")
set(v5 ${CMAKE_MATCH_1})
if(NOT v5)
  message(FATAL_ERROR "mixed-modified printed no sigma: ${out5}")
endif()
if(NOT v5 STREQUAL v1)
  string(SUBSTRING "${v5}" 0 8 p5)
  string(SUBSTRING "${v1}" 0 8 p1m)
  if(NOT p5 STREQUAL p1m)
    message(FATAL_ERROR "mixed-modified sigma differs: ${v5} vs ${v1}")
  endif()
endif()

# Observability outputs: the run must succeed, announce both files, and
# leave non-empty JSON documents with the right schema tags behind.
execute_process(
  COMMAND ${CLI} --input ${WORKDIR}/smoke.mtx --method pipelined-modified
          --trace-out ${WORKDIR}/smoke_trace.json
          --metrics-out ${WORKDIR}/smoke_metrics.json
  RESULT_VARIABLE rc4 OUTPUT_VARIABLE out4 ERROR_VARIABLE err4)
if(NOT rc4 EQUAL 0)
  message(FATAL_ERROR "trace/metrics run failed: ${out4}${err4}")
endif()
if(NOT out4 MATCHES "wrote trace to" OR NOT out4 MATCHES "wrote metrics to")
  message(FATAL_ERROR "trace/metrics run did not announce outputs: ${out4}")
endif()
foreach(obs_pair "smoke_trace.json;hjsvd.trace.v2"
                 "smoke_metrics.json;hjsvd.metrics.v1")
  list(GET obs_pair 0 obs_file)
  list(GET obs_pair 1 obs_schema)
  if(NOT EXISTS ${WORKDIR}/${obs_file})
    message(FATAL_ERROR "${obs_file} was not written")
  endif()
  file(READ ${WORKDIR}/${obs_file} obs_body)
  if(NOT obs_body MATCHES "\"schema\": \"${obs_schema}\"")
    message(FATAL_ERROR "${obs_file} lacks schema tag ${obs_schema}")
  endif()
endforeach()

# Numerical-health probes: the run must succeed, print the numerics summary
# line, and the sigma digits must match the probe-free sequential run
# bit-for-bit (read-only observer contract).
execute_process(
  COMMAND ${CLI} --input ${WORKDIR}/smoke.mtx --method hestenes
          --num-probes 4 --values 3
          --metrics-out ${WORKDIR}/smoke_num_metrics.json
  RESULT_VARIABLE rc6 OUTPUT_VARIABLE out6 ERROR_VARIABLE err6)
if(NOT rc6 EQUAL 0)
  message(FATAL_ERROR "--num-probes run failed: ${out6}${err6}")
endif()
if(NOT out6 MATCHES "numerics: [0-9]+ sampled pairs \\(stride 4\\)")
  message(FATAL_ERROR "--num-probes run printed no numerics summary: ${out6}")
endif()
string(REGEX MATCH "sigma\\[0\\] = ([0-9.e+-]+)" m6 "${out6}")
if(NOT CMAKE_MATCH_1 STREQUAL v1)
  message(FATAL_ERROR "probes perturbed sigma: ${CMAKE_MATCH_1} vs ${v1}")
endif()
file(READ ${WORKDIR}/smoke_num_metrics.json num_body)
if(NOT num_body MATCHES "svd.num.samples")
  message(FATAL_ERROR "probe metrics lack svd.num.samples: ${num_body}")
endif()

# --obs-live creates a missing directory one level deep instead of failing.
file(REMOVE_RECURSE ${WORKDIR}/fresh_live_dir)
execute_process(
  COMMAND ${CLI} --input ${WORKDIR}/smoke.mtx --method hestenes
          --obs-live ${WORKDIR}/fresh_live_dir --values 1
  RESULT_VARIABLE rc7 OUTPUT_VARIABLE out7 ERROR_VARIABLE err7)
if(NOT rc7 EQUAL 0)
  message(FATAL_ERROR "--obs-live with missing dir failed: ${out7}${err7}")
endif()
if(NOT EXISTS ${WORKDIR}/fresh_live_dir/snapshots.jsonl)
  message(FATAL_ERROR "--obs-live did not create ${WORKDIR}/fresh_live_dir")
endif()

# Bad usage must exit non-zero and print the usage text, not fall back.
# --tolerance and --mp-switch reject zero, negative, non-finite and
# non-numeric values as usage errors (exit 2) instead of silently running
# a decomposition that can never converge.  A missing --obs-live *parent*
# stays a usage error — only one directory level is created.
foreach(bad_args "--threads;0" "--threads;-2" "--method;bogus"
        "--tolerance;0" "--tolerance;-1e-10" "--tolerance;abc"
        "--tolerance;inf"
        "--mp-switch;0" "--mp-switch;-3" "--mp-switch;nope"
        "--num-probes;0" "--num-probes;-3" "--num-probes;maybe"
        "--trace-out;${WORKDIR}/no_such_dir/t.json"
        "--metrics-out;${WORKDIR}/no_such_dir/m.json"
        "--obs-live;${WORKDIR}/no_such_dir/live")
  execute_process(
    COMMAND ${CLI} --input ${WORKDIR}/smoke.mtx ${bad_args}
    RESULT_VARIABLE rc_bad OUTPUT_VARIABLE out_bad ERROR_VARIABLE err_bad)
  if(rc_bad EQUAL 0)
    message(FATAL_ERROR "'${bad_args}' unexpectedly succeeded")
  endif()
  if(NOT rc_bad EQUAL 2)
    message(FATAL_ERROR "'${bad_args}' exited ${rc_bad}, want usage error 2")
  endif()
  if(NOT err_bad MATCHES "--method")
    message(FATAL_ERROR "'${bad_args}' did not print usage: ${err_bad}")
  endif()
endforeach()

# Batch mode: a generated spec runs through the work-stealing scheduler and
# prints the per-item table plus the scheduler summary line.
execute_process(
  COMMAND ${CLI} --batch 12x8*3,24x24 --seed 5 --threads 2 --values 2
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--batch run failed (${rc}): ${out}${err}")
endif()
foreach(needle "batch of 4 matrices" "work-stealing batch pool"
               "12x8#0" "24x24#0" "scheduler: 2 workers")
  if(NOT out MATCHES "${needle}")
    message(FATAL_ERROR "--batch output lacks '${needle}': ${out}")
  endif()
endforeach()

# --batch with a directory holding zero .mtx files is a usage error (exit 2
# + usage text), never a silent success with an empty stats line.
file(REMOVE_RECURSE ${WORKDIR}/empty_batch_dir)
file(MAKE_DIRECTORY ${WORKDIR}/empty_batch_dir)
execute_process(
  COMMAND ${CLI} --batch ${WORKDIR}/empty_batch_dir
  RESULT_VARIABLE rc_empty OUTPUT_VARIABLE out_empty ERROR_VARIABLE err_empty)
if(NOT rc_empty EQUAL 2)
  message(FATAL_ERROR "--batch on an empty directory exited ${rc_empty}, "
                      "want usage error 2: ${out_empty}${err_empty}")
endif()
if(NOT err_empty MATCHES "no .mtx files" OR NOT err_empty MATCHES "--method")
  message(FATAL_ERROR "--batch on an empty directory did not print the "
                      "usage text: ${err_empty}")
endif()

# Batch usage errors: mutually exclusive flags, malformed specs, and
# out-of-range split thresholds are usage errors (exit 2), not crashes.
foreach(bad_batch
    "--batch;12x8;--input;${WORKDIR}/smoke.mtx"
    "--batch;12x8;--write-u;${WORKDIR}/u.mtx"
    "--batch;12x8;--fpga-sim;true"
    "--batch;12x8;--split-threshold;1.5"
    "--batch;10xbad"
    "--batch;12x8*0")
  execute_process(
    COMMAND ${CLI} ${bad_batch}
    RESULT_VARIABLE rc_bad OUTPUT_VARIABLE out_bad ERROR_VARIABLE err_bad)
  if(NOT rc_bad EQUAL 2)
    message(FATAL_ERROR "'${bad_batch}' exited ${rc_bad}, want usage error 2: "
                        "${out_bad}${err_bad}")
  endif()
endforeach()

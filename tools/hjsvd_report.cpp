// hjsvd_report — offline trace/metrics analyzer and perf-regression gate.
//
// Analyze mode: ingest one run's recorded artifacts and emit the
// hjsvd.report.v1 document plus a human-readable summary.
//
//   hjsvd_report --trace run_trace.json --metrics run_metrics.json
//       --out run_report.json
//
// Compare mode: diff two serialized reports of the same workload and fail
// on configurable regressions.
//
//   hjsvd_report --compare baseline_report.json candidate_report.json
//       --max-wall-regress-frac 0.10
//
// Exit codes: 0 success / no regression, 1 runtime error, 2 usage error or
// malformed / wrong-schema input, 3 regression detected in compare mode.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "report/json.hpp"
#include "report/report.hpp"

using namespace hjsvd;

namespace {

/// Bad command-line usage: reported with the full help text and a distinct
/// exit code (2), unlike runtime failures (1).
class UsageError : public Error {
 public:
  using Error::Error;
};

struct CompareArgs {
  bool requested = false;
  std::string baseline;
  std::string candidate;
};

/// `--compare BASELINE CANDIDATE` takes two positional paths, which the
/// flag-value Cli parser cannot express; peel it off before Cli::parse.
CompareArgs extract_compare(std::vector<const char*>* argv) {
  CompareArgs out;
  for (std::size_t i = 0; i < argv->size(); ++i) {
    if (std::strcmp((*argv)[i], "--compare") != 0) continue;
    if (i + 2 >= argv->size())
      throw UsageError("--compare expects two report files: "
                       "--compare BASELINE.json CANDIDATE.json");
    out.requested = true;
    out.baseline = (*argv)[i + 1];
    out.candidate = (*argv)[i + 2];
    argv->erase(argv->begin() + static_cast<std::ptrdiff_t>(i),
                argv->begin() + static_cast<std::ptrdiff_t>(i + 3));
    return out;
  }
  return out;
}

/// Loads and parses a JSON input; unreadable or malformed files are usage
/// errors (exit 2) — the operator handed the tool a bad artifact.
report::JsonValue load_json(const std::string& path) {
  try {
    return report::parse_json_file(path);
  } catch (const Error& e) {
    throw UsageError(e.what());
  }
}

/// Analysis of a parsed document can still throw plain hjsvd::Error — e.g. a
/// non-numeric series point surfacing from JsonValue::as_number.  The
/// documented contract is exit 2 for any malformed input, so rewrap those
/// the same way load_json rewraps parse errors.
template <typename Fn>
auto malformed_is_usage(const std::string& inputs, Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const UsageError&) {
    throw;
  } catch (const Error& e) {
    throw UsageError(inputs + ": malformed document: " + e.what());
  }
}

report::RunReport load_report(const std::string& path) {
  return malformed_is_usage(
      path, [&] { return report::report_from_json(load_json(path)); });
}

int run_compare(const CompareArgs& args, const report::CompareThresholds& t) {
  const report::RunReport baseline = load_report(args.baseline);
  const report::RunReport candidate = load_report(args.candidate);
  const report::CompareResult result =
      report::compare_reports(baseline, candidate, t);
  std::cout << "comparing " << args.baseline << " (baseline) vs "
            << args.candidate << " (candidate)\n";
  for (const std::string& line : result.findings)
    std::cout << "  " << line << '\n';
  if (result.regressed) {
    std::cout << "RESULT: regression detected\n";
    return 3;
  }
  std::cout << "RESULT: no regression\n";
  return 0;
}

int run_analyze(const Cli& cli) {
  const std::string trace_path = cli.get("trace");
  const std::string metrics_path = cli.get("metrics");
  if (trace_path.empty() || metrics_path.empty())
    throw UsageError("analyze mode needs both --trace and --metrics "
                     "(or use --compare BASELINE CANDIDATE)");
  const report::JsonValue trace_doc = load_json(trace_path);
  const report::JsonValue metrics_doc = load_json(metrics_path);
  const report::RunReport run =
      malformed_is_usage(trace_path + " + " + metrics_path, [&] {
        return report::analyze_run(trace_doc, metrics_doc);
      });
  std::cout << report::report_table(run);
  const std::string out = cli.get("out");
  if (!out.empty()) {
    write_file(out, report::report_json(run));
    std::cout << "report written to " << out << '\n';
  } else {
    std::cout << '\n' << report::report_json(run);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("hjsvd_report: analyze recorded hjsvd traces/metrics and gate "
          "performance regressions.\n"
          "Analyze: hjsvd_report --trace T.json --metrics M.json "
          "[--out R.json]\n"
          "Compare: hjsvd_report --compare BASELINE.json CANDIDATE.json "
          "(exit 3 on regression)");
  try {
    cli.add_option("trace", "",
                   "hjsvd.trace.v1/v2/v3 JSON file (analyze mode)");
    cli.add_option("metrics", "", "hjsvd.metrics.v1 JSON file (analyze mode)");
    cli.add_option("out", "",
                   "write the hjsvd.report.v1 JSON here (default: stdout)");
    cli.add_option("max-wall-regress-frac", "0.10",
                   "compare: allowed fractional wall-clock slowdown");
    cli.add_option("max-sweep-increase", "0",
                   "compare: allowed extra sweeps to convergence");
    cli.add_option("max-rotation-increase-frac", "0.05",
                   "compare: allowed fractional rotation-count growth");
    cli.add_option("max-stall-increase-frac", "0.25",
                   "compare: allowed fractional pipeline-stall growth");
    cli.add_option("max-accuracy-regress-frac", "0.50",
                   "compare: allowed fractional growth of the numerics "
                   "accuracy leaves (backward error, orthogonality drift)");
    cli.add_option("accuracy-noise-floor", "1e-12",
                   "compare: absolute accuracy slack below which a relative "
                   "regression is rounding noise, not a finding");

    std::vector<const char*> args(argv, argv + argc);
    const CompareArgs compare = extract_compare(&args);
    cli.parse(static_cast<int>(args.size()), args.data());

    report::CompareThresholds thresholds;
    thresholds.max_wall_regress_frac = cli.get_double("max-wall-regress-frac");
    thresholds.max_sweep_increase =
        static_cast<std::uint64_t>(cli.get_int("max-sweep-increase"));
    thresholds.max_rotation_increase_frac =
        cli.get_double("max-rotation-increase-frac");
    thresholds.max_stall_increase_frac =
        cli.get_double("max-stall-increase-frac");
    thresholds.max_accuracy_regress_frac =
        cli.get_double("max-accuracy-regress-frac");
    thresholds.accuracy_noise_floor = cli.get_double("accuracy-noise-floor");

    if (compare.requested) return run_compare(compare, thresholds);
    return run_analyze(cli);
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << "\n\n" << cli.help();
    return 2;
  } catch (const report::SchemaError& e) {
    std::cerr << "error: " << e.what() << "\n\n" << cli.help();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

# Report smoke test: record a pipelined run (with the accelerator sim), run
# hjsvd_report over the artifacts, and exercise the --compare exit-code
# contract — 0 on identical runs, 3 on an injected regression, 2 on
# malformed or wrong-schema inputs.
execute_process(
  COMMAND ${CLI} --generate 48x24 --seed 11 --output ${WORKDIR}/report.mtx
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed: ${out}${err}")
endif()

# Record + analyze: table on stdout, hjsvd.report.v1 document on disk, and
# the PR-3 profiling conclusion reproduced from the artifacts alone.  The
# generator-vs-worker verdict is a real measurement of a sub-millisecond
# run: on a loaded single-core host the scheduler can starve the workers
# and flip it, so re-record (bounded) instead of failing on timing noise.
set(conclusion_ok FALSE)
foreach(attempt RANGE 1 3)
  execute_process(
    COMMAND ${CLI} --input ${WORKDIR}/report.mtx --method pipelined-modified
            --threads 2 --fpga-sim true
            --trace-out ${WORKDIR}/report_trace.json
            --metrics-out ${WORKDIR}/report_metrics.json
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "recorded run failed: ${out}${err}")
  endif()

  execute_process(
    COMMAND ${REPORT} --trace ${WORKDIR}/report_trace.json
            --metrics ${WORKDIR}/report_metrics.json
            --out ${WORKDIR}/report.json
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "hjsvd_report failed (${rc}): ${out}${err}")
  endif()
  if(out MATCHES "generator is NOT the bottleneck")
    set(conclusion_ok TRUE)
    break()
  endif()
  message(STATUS "attempt ${attempt}: generator-vs-worker verdict flipped "
                 "(loaded host?), re-recording")
endforeach()
if(NOT conclusion_ok)
  message(FATAL_ERROR "report did not reproduce the generator-vs-worker "
                      "conclusion in 3 attempts: ${out}")
endif()
file(READ ${WORKDIR}/report.json report_body)
foreach(needle "\"schema\": \"hjsvd.report.v1\""
               "\"generator_is_bottleneck\": false"
               "\"pipeline\":" "\"sim\":" "\"convergence\":")
  if(NOT report_body MATCHES "${needle}")
    message(FATAL_ERROR "report.json lacks ${needle}")
  endif()
endforeach()

# The trace must carry Perfetto counter events for both the software queue
# and the simulator FIFO occupancy tracks.
file(READ ${WORKDIR}/report_trace.json trace_body)
if(NOT trace_body MATCHES "\"ph\":\"C\",\"name\":\"pipeline.queue.occupancy\"")
  message(FATAL_ERROR "trace lacks the pipeline queue counter track")
endif()
if(NOT trace_body MATCHES "\"ph\":\"C\",\"name\":\"sim.param_fifo.occupancy\"")
  message(FATAL_ERROR "trace lacks the sim FIFO counter track")
endif()

# Compare mode, identical runs: exit 0, no regression.
execute_process(
  COMMAND ${REPORT} --compare ${WORKDIR}/report.json ${WORKDIR}/report.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "self-compare exited ${rc}, want 0: ${out}${err}")
endif()
if(NOT out MATCHES "RESULT: no regression")
  message(FATAL_ERROR "self-compare verdict missing: ${out}")
endif()

# Inject a synthetic 2x wall-clock regression into a copy of the report and
# require exit code 3.
string(REGEX MATCH "\"wall_s\": ([0-9.e+-]+)" wall_match "${report_body}")
if(NOT wall_match)
  message(FATAL_ERROR "report.json has no run wall_s")
endif()
set(old_wall ${CMAKE_MATCH_1})
math(EXPR dummy "0")
string(REPLACE "\"wall_s\": ${old_wall}" "\"wall_s\": ${old_wall}e1"
       slow_body "${report_body}")
file(WRITE ${WORKDIR}/report_slow.json "${slow_body}")
execute_process(
  COMMAND ${REPORT} --compare ${WORKDIR}/report.json
          ${WORKDIR}/report_slow.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 3)
  message(FATAL_ERROR "injected regression exited ${rc}, want 3: ${out}${err}")
endif()
if(NOT out MATCHES "FAIL wall_s" OR NOT out MATCHES "RESULT: regression")
  message(FATAL_ERROR "regression verdict missing: ${out}")
endif()

# A loosened threshold must wave the same regression through.
execute_process(
  COMMAND ${REPORT} --compare ${WORKDIR}/report.json
          ${WORKDIR}/report_slow.json --max-wall-regress-frac 100
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "loosened threshold exited ${rc}, want 0: ${out}${err}")
endif()

# Malformed and wrong-schema inputs: exit 2 with the usage text.
file(WRITE ${WORKDIR}/report_bad.json "{ this is not json")
foreach(bad_case
    "--trace;${WORKDIR}/report_bad.json;--metrics;${WORKDIR}/report_metrics.json"
    "--trace;${WORKDIR}/report_metrics.json;--metrics;${WORKDIR}/report_metrics.json"
    "--trace;${WORKDIR}/no_such_file.json;--metrics;${WORKDIR}/report_metrics.json"
    "--compare;${WORKDIR}/report_bad.json;${WORKDIR}/report.json"
    "--compare;${WORKDIR}/report_trace.json;${WORKDIR}/report.json"
    "--trace;${WORKDIR}/report_trace.json")
  execute_process(
    COMMAND ${REPORT} ${bad_case}
    RESULT_VARIABLE rc_bad OUTPUT_VARIABLE out_bad ERROR_VARIABLE err_bad)
  if(NOT rc_bad EQUAL 2)
    message(FATAL_ERROR "'${bad_case}' exited ${rc_bad}, want 2: "
                        "${out_bad}${err_bad}")
  endif()
  if(NOT err_bad MATCHES "--compare")
    message(FATAL_ERROR "'${bad_case}' did not print usage: ${err_bad}")
  endif()
endforeach()

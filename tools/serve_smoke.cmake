# hjsvd_serve smoke test: the stdio protocol round trip.  A hand-rolled
# frame exercises the server without python; when python is available the
# reference client drives the full matrix -- success counts, thread-count
# bit identity, deterministic overload rejection, malformed frames, and
# metrics validation.

# --- No-python baseline: one ok frame, one malformed frame. ---------------
file(WRITE ${WORKDIR}/serve_in.jsonl
  "{\"schema\":\"hjsvd.serve.v1\",\"id\":\"a\",\"rows\":2,\"cols\":2,\"data\":[3,0,0,4]}\n"
  "{\"id\":\"b\",\"rows\":2,\"cols\":2}\n")
execute_process(
  COMMAND ${SERVE} --threads 2 --metrics-out ${WORKDIR}/serve_metrics.json
  INPUT_FILE ${WORKDIR}/serve_in.jsonl
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve run failed (${rc}): ${out}${err}")
endif()
if(NOT out MATCHES "\"id\":\"a\",\"status\":\"ok\"")
  message(FATAL_ERROR "missing ok reply for id a: ${out}")
endif()
# 2x2 diag(3,4) has exact singular values 4, 3.
if(NOT out MATCHES "\"sigma\":\\[4,3\\]")
  message(FATAL_ERROR "wrong sigma for diag(3,4): ${out}")
endif()
if(NOT out MATCHES "\"id\":\"b\",\"status\":\"error\",\"code\":\"bad_request\"")
  message(FATAL_ERROR "missing bad_request reply for id b: ${out}")
endif()
if(NOT EXISTS ${WORKDIR}/serve_metrics.json)
  message(FATAL_ERROR "serve did not write --metrics-out")
endif()
file(READ ${WORKDIR}/serve_metrics.json metrics)
if(NOT metrics MATCHES "serve.requests_total")
  message(FATAL_ERROR "metrics artifact lacks serve.* entries: ${metrics}")
endif()
if(NOT metrics MATCHES "serve.workspace.reuse_total")
  message(FATAL_ERROR "metrics artifact lacks workspace counters")
endif()

if(NOT PYTHON)
  message(STATUS "python3 not found; skipping serve client checks")
  return()
endif()

# --- Reference client: success counts + warm-workspace metrics. -----------
execute_process(
  COMMAND ${PYTHON} ${CLIENT} --serve ${SERVE} --requests 8 --threads 2
          --expect-ok 8
          --server-arg=--metrics-out=${WORKDIR}/serve_metrics2.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "client round trip failed: ${out}${err}")
endif()

# --- Bit identity across thread counts (sigma and V, 17-digit wire). ------
execute_process(
  COMMAND ${PYTHON} ${CLIENT} --serve ${SERVE} --requests 6 --threads 1
          --compute-v --expect-ok 6 --dump ${WORKDIR}/serve_t1.json
  RESULT_VARIABLE rc1 OUTPUT_VARIABLE out1 ERROR_VARIABLE err1)
execute_process(
  COMMAND ${PYTHON} ${CLIENT} --serve ${SERVE} --requests 6 --threads 4
          --compute-v --expect-ok 6 --compare ${WORKDIR}/serve_t1.json
  RESULT_VARIABLE rc2 OUTPUT_VARIABLE out2 ERROR_VARIABLE err2)
if(NOT rc1 EQUAL 0 OR NOT rc2 EQUAL 0)
  message(FATAL_ERROR
    "thread-count bit identity failed: ${out1}${err1}${out2}${err2}")
endif()

# --- Deterministic overload: hold dispatch until EOF so exactly the
# --- requests beyond the queue capacity are rejected. ---------------------
execute_process(
  COMMAND ${PYTHON} ${CLIENT} --serve ${SERVE} --requests 10
          --server-arg=--queue-capacity=4 --server-arg=--hold-until-eof
          --expect-ok 4 --expect-overload 6
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "overload drill failed: ${out}${err}")
endif()

# --- Metrics artifact passes the observability validator. -----------------
if(VALIDATE)
  execute_process(
    COMMAND ${PYTHON} ${VALIDATE} --serve --metrics ${WORKDIR}/serve_metrics2.json
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "validate_obs --serve failed: ${out}${err}")
  endif()
endif()

// hjsvd_serve: long-lived batch SVD daemon speaking the hjsvd.serve.v1
// newline-delimited JSON protocol (docs/SERVING.md, src/serve/protocol.hpp).
//
// Default transport is stdio: one request frame per stdin line, one reply
// line per request on stdout (order may differ from submission order —
// correlate by id).  EOF drains the queue, flushes observability artifacts,
// and exits 0.  With --socket PATH (POSIX only) the daemon serves clients
// sequentially over a Unix domain socket instead, until SIGINT/SIGTERM.
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"

#ifdef __unix__
#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

using namespace hjsvd;

namespace {

/// Bad command-line usage: reported with the full help text and a distinct
/// exit code (2), unlike runtime failures (1).
class UsageError : public Error {
 public:
  using Error::Error;
};

void print_usage(std::ostream& os) {
  os << "hjsvd_serve: batch SVD service (protocol hjsvd.serve.v1)\n"
        "\n"
        "usage: hjsvd_serve [options]\n"
        "\n"
        "Reads newline-delimited JSON request frames from stdin and writes\n"
        "one reply line per request to stdout; EOF drains and exits 0.\n"
        "\n"
        "options:\n"
        "  --threads N         engine worker threads (default: OpenMP)\n"
        "  --queue-capacity N  admission queue bound; beyond it requests\n"
        "                      are rejected with rejected:overload "
        "(default 64)\n"
        "  --wave-max N        max requests coalesced per dispatch wave\n"
        "                      (default 16)\n"
        "  --max-dim N         reject frames with rows or cols above N\n"
        "                      (default 4096)\n"
        "  --hold-until-eof    queue every stdin frame before dispatching\n"
        "                      (deterministic batch mode; stdio only)\n"
        "  --metrics-out PATH  write serve.* metrics JSON at shutdown\n"
        "  --trace-out PATH    write Chrome trace JSON at shutdown\n"
#ifdef __unix__
        "  --socket PATH       serve sequential clients over a Unix domain\n"
        "                      socket instead of stdio (SIGINT/SIGTERM "
        "stops)\n"
#endif
        "  --help              this text\n";
}

std::size_t parse_count(const std::string& name, const std::string& raw,
                        bool allow_zero) {
  try {
    const long long v = std::stoll(raw);
    if (v < 0 || (v == 0 && !allow_zero))
      throw UsageError("--" + name + " must be >= " +
                       (allow_zero ? std::string("0") : std::string("1")) +
                       ", got '" + raw + "'");
    return static_cast<std::size_t>(v);
  } catch (const UsageError&) {
    throw;
  } catch (const std::exception&) {
    throw UsageError("--" + name + " expects an integer, got '" + raw + "'");
  }
}

struct ServeArgs {
  serve::ServerConfig config;
  bool hold_until_eof = false;
  std::string metrics_out;
  std::string trace_out;
  std::string socket_path;
};

ServeArgs parse_args(int argc, char** argv) {
  ServeArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw UsageError(flag + " expects a value");
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      print_usage(std::cout);
      std::exit(0);
    } else if (flag == "--threads") {
      args.config.threads = parse_count("threads", value(), true);
    } else if (flag == "--queue-capacity") {
      args.config.queue_capacity = parse_count("queue-capacity", value(), false);
    } else if (flag == "--wave-max") {
      args.config.wave_max = parse_count("wave-max", value(), false);
    } else if (flag == "--max-dim") {
      args.config.limits.max_dim = parse_count("max-dim", value(), false);
    } else if (flag == "--hold-until-eof") {
      args.hold_until_eof = true;
    } else if (flag == "--metrics-out") {
      args.metrics_out = value();
    } else if (flag == "--trace-out") {
      args.trace_out = value();
    } else if (flag == "--socket") {
#ifdef __unix__
      args.socket_path = value();
#else
      throw UsageError("--socket is only available on POSIX builds");
#endif
    } else {
      throw UsageError("unknown option '" + flag + "'");
    }
  }
  if (args.hold_until_eof && !args.socket_path.empty())
    throw UsageError("--hold-until-eof applies to stdio mode only");
  return args;
}

/// Serializing reply sink: admitted replies arrive from the dispatcher
/// thread while rejections reply inline on the reader thread.
class LineWriter {
 public:
  explicit LineWriter(std::ostream& os) : os_(os) {}
  void write(const std::string& line) {
    std::lock_guard<std::mutex> lock(mu_);
    os_ << line << '\n';
    os_.flush();
  }

 private:
  std::mutex mu_;
  std::ostream& os_;
};

int run_stdio(serve::SvdServer& server) {
  LineWriter out(std::cout);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    server.submit_line(line, [&out](const std::string& reply) {
      out.write(reply);
    });
  }
  server.drain();
  return 0;
}

#ifdef __unix__

std::atomic<int> g_listen_fd{-1};

void stop_signal_handler(int) {
  // Closing the listening socket fails the blocking accept(), which is the
  // async-signal-safe way to break the accept loop.
  const int fd = g_listen_fd.exchange(-1);
  if (fd >= 0) close(fd);
}

int run_socket(const ServeArgs& args, serve::SvdServer& server) {
  const int listen_fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) throw Error("socket(): cannot create Unix socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (args.socket_path.size() >= sizeof(addr.sun_path)) {
    close(listen_fd);
    throw UsageError("--socket path too long");
  }
  args.socket_path.copy(addr.sun_path, args.socket_path.size());
  unlink(args.socket_path.c_str());
  if (bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) != 0 ||
      listen(listen_fd, 8) != 0) {
    close(listen_fd);
    throw Error("cannot bind/listen on '" + args.socket_path + "'");
  }
  g_listen_fd.store(listen_fd);
  std::signal(SIGINT, stop_signal_handler);
  std::signal(SIGTERM, stop_signal_handler);
  std::cerr << "hjsvd_serve: listening on " << args.socket_path << "\n";

  for (;;) {
    const int fd = accept(g_listen_fd.load(), nullptr, nullptr);
    if (fd < 0) break;  // Listening socket closed by the signal handler.
    std::string buffer;
    char chunk[4096];
    std::mutex write_mu;
    const auto reply_fn = [fd, &write_mu](const std::string& reply) {
      std::lock_guard<std::mutex> lock(write_mu);
      std::string framed = reply;
      framed += '\n';
      std::size_t off = 0;
      while (off < framed.size()) {
        const ssize_t n = ::write(fd, framed.data() + off, framed.size() - off);
        if (n <= 0) break;  // Client gone; replies are best-effort.
        off += static_cast<std::size_t>(n);
      }
    };
    for (;;) {
      const ssize_t n = read(fd, chunk, sizeof chunk);
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t nl;
      while ((nl = buffer.find('\n')) != std::string::npos) {
        const std::string line = buffer.substr(0, nl);
        buffer.erase(0, nl + 1);
        if (!line.empty()) server.submit_line(line, reply_fn);
      }
    }
    // Drain before closing so every admitted request's reply still has a
    // live descriptor to land on.
    server.drain();
    close(fd);
  }
  unlink(args.socket_path.c_str());
  server.drain();
  return 0;
}

#endif  // __unix__

}  // namespace

int main(int argc, char** argv) {
  try {
    ServeArgs args = parse_args(argc, argv);

    // Open output files up front so an unwritable path is a usage error
    // (exit 2), not a lost session at shutdown.
    std::ofstream metrics_file, trace_file;
    if (!args.metrics_out.empty()) {
      metrics_file.open(args.metrics_out);
      if (!metrics_file)
        throw UsageError("--metrics-out: cannot open '" + args.metrics_out +
                         "' for writing");
    }
    if (!args.trace_out.empty()) {
      trace_file.open(args.trace_out);
      if (!trace_file)
        throw UsageError("--trace-out: cannot open '" + args.trace_out +
                         "' for writing");
    }
    obs::TraceRecorder recorder(0);
    obs::MetricsRegistry registry;
    if (!args.trace_out.empty()) args.config.trace = &recorder;
    if (!args.metrics_out.empty()) args.config.metrics = &registry;
    args.config.hold_dispatch = args.hold_until_eof;

    int rc = 0;
    {
      serve::SvdServer server(args.config);
#ifdef __unix__
      if (!args.socket_path.empty())
        rc = run_socket(args, server);
      else
#endif
        rc = run_stdio(server);
      server.stop();  // Finalizes latency/workspace shutdown metrics.
    }
    if (metrics_file.is_open()) registry.write(metrics_file);
    if (trace_file.is_open()) recorder.write(trace_file);
    return rc;
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << "\n\n";
    print_usage(std::cerr);
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

# Live-telemetry smoke test: run a batch workload under --obs-live with a
# bounded flight-recorder ring, deliver SIGUSR1 mid-run, and validate every
# artifact the live directory accumulates — the snapshot JSONL stream, the
# Prometheus exposition, the signal-triggered dump pair, and the final
# hjsvd.trace.v3 / metrics documents — first structurally here, then through
# scripts/validate_obs.py and hjsvd_report when available.
set(LIVE ${WORKDIR}/live_smoke)

find_program(BASH_PROGRAM bash)
if(NOT BASH_PROGRAM)
  # No POSIX shell, no signals: still exercise the live directory end to
  # end; the dump checks below are gated on `signaled`.
  set(signaled FALSE)
  file(REMOVE_RECURSE ${LIVE})
  file(MAKE_DIRECTORY ${LIVE})
  execute_process(
    COMMAND ${CLI} --batch 96x64*6 --obs-live ${LIVE}
            --obs-ring-events 512 --obs-snapshot-ms 10
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "live batch run failed (${rc}): ${out}${err}")
  endif()
else()
  # The signal must land while the batch is still decomposing; on a fast or
  # lightly loaded host the first workload can finish before the sleep
  # expires, so grow the batch (bounded) instead of failing on a race.
  set(signaled FALSE)
  foreach(attempt RANGE 1 3)
    file(REMOVE_RECURSE ${LIVE})
    file(MAKE_DIRECTORY ${LIVE})
    math(EXPR nbig "2 * ${attempt}")
    set(script "'${CLI}' --batch '128x96*8,192x128*${nbig}' \
--obs-live '${LIVE}' --obs-ring-events 512 --obs-snapshot-ms 10 & \
pid=$!; sleep 0.05; \
if kill -USR1 $pid 2>/dev/null; then sig=1; else sig=0; fi; \
wait $pid; rc=$?; echo SIGNALED=$sig; exit $rc")
    execute_process(
      COMMAND ${BASH_PROGRAM} -c "${script}"
      RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "live batch run failed (${rc}): ${out}${err}")
    endif()
    if(out MATCHES "SIGNALED=1" AND EXISTS ${LIVE}/dump_0001.trace.json)
      set(signaled TRUE)
      break()
    endif()
    message(STATUS "attempt ${attempt}: batch finished before SIGUSR1 "
                   "landed, growing the workload")
  endforeach()
  if(NOT signaled)
    message(FATAL_ERROR "could not deliver SIGUSR1 mid-run in 3 attempts")
  endif()
endif()

if(NOT out MATCHES "live telemetry")
  message(FATAL_ERROR "CLI did not announce live telemetry: ${out}")
endif()

# The final artifacts: a flight-recorder (v3) trace with ring metadata, a
# metrics document, and at least one snapshot line.
file(READ ${LIVE}/final_trace.json trace_body)
if(NOT trace_body MATCHES "\"schema\": \"hjsvd.trace.v3\"")
  message(FATAL_ERROR "final trace is not hjsvd.trace.v3")
endif()
if(NOT trace_body MATCHES "\"flight_recorder\": true")
  message(FATAL_ERROR "final trace lacks flight-recorder metadata")
endif()
if(NOT trace_body MATCHES "\"ring_capacity_events\": 512")
  message(FATAL_ERROR "final trace does not record the configured ring size")
endif()
if(NOT EXISTS ${LIVE}/final_metrics.json)
  message(FATAL_ERROR "final metrics document missing")
endif()
file(READ ${LIVE}/snapshots.jsonl snapshots_body)
if(NOT snapshots_body MATCHES "hjsvd.metrics-snapshots.v1")
  message(FATAL_ERROR "snapshot stream is empty or untagged")
endif()
if(NOT EXISTS ${LIVE}/metrics.prom)
  message(FATAL_ERROR "Prometheus exposition file missing")
endif()
file(READ ${LIVE}/metrics.prom prom_body)
if(NOT prom_body MATCHES "# TYPE hjsvd_")
  message(FATAL_ERROR "Prometheus exposition lacks typed hjsvd_ metrics")
endif()

# The SIGUSR1 dump pair: a valid v3 core sample taken mid-run.
if(signaled)
  file(READ ${LIVE}/dump_0001.trace.json dump_body)
  if(NOT dump_body MATCHES "\"schema\": \"hjsvd.trace.v3\"")
    message(FATAL_ERROR "signal dump trace is not hjsvd.trace.v3")
  endif()
  if(NOT EXISTS ${LIVE}/dump_0001.metrics.json)
    message(FATAL_ERROR "signal dump metrics document missing")
  endif()
  if(NOT out MATCHES "1 dumps")
    message(FATAL_ERROR "CLI summary did not count the signal dump: ${out}")
  endif()
endif()

# scripts/validate_obs.py applies the full structural contract (span
# nesting, ring-metadata consistency, snapshot monotonicity).
if(PYTHON AND VALIDATE)
  execute_process(
    COMMAND ${PYTHON} ${VALIDATE}
            --trace ${LIVE}/final_trace.json
            --metrics ${LIVE}/final_metrics.json
            --snapshots ${LIVE}/snapshots.jsonl
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "validate_obs rejected the live artifacts (${rc}): "
                        "${out}${err}")
  endif()
  if(signaled)
    execute_process(
      COMMAND ${PYTHON} ${VALIDATE}
              --trace ${LIVE}/dump_0001.trace.json
              --metrics ${LIVE}/dump_0001.metrics.json
      RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "validate_obs rejected the signal dump (${rc}): "
                          "${out}${err}")
    endif()
  endif()
endif()

# hjsvd_report must ingest the v3 trace and emit the live section.
if(REPORT)
  execute_process(
    COMMAND ${REPORT} --trace ${LIVE}/final_trace.json
            --metrics ${LIVE}/final_metrics.json
            --out ${LIVE}/live_report.json
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "hjsvd_report failed on live artifacts (${rc}): "
                        "${out}${err}")
  endif()
  file(READ ${LIVE}/live_report.json report_body)
  foreach(needle "\"live\": {\"ring_enabled\": true"
                 "\"ring_capacity_events\": 512"
                 "\"batch\":")
    if(NOT report_body MATCHES "${needle}")
      message(FATAL_ERROR "live_report.json lacks ${needle}")
    endif()
  endforeach()
  # Self-compare of a report with a live section: exit 0, no regression.
  execute_process(
    COMMAND ${REPORT} --compare ${LIVE}/live_report.json
            ${LIVE}/live_report.json
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "live self-compare exited ${rc}, want 0: ${out}${err}")
  endif()
endif()

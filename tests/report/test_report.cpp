// Report subsystem tests: the JSON reader, analyze_run on fixed fixtures, a
// byte-exact golden-file check of the serialized hjsvd.report.v1 document,
// the serialize/parse round trip, and the compare gate's regression logic.
#include "report/json.hpp"
#include "report/report.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"

namespace hjsvd::report {
namespace {

std::string data_path(const std::string& name) {
  return std::string(HJSVD_TEST_DATA_DIR) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

RunReport fixture_report() {
  return analyze_run(parse_json_file(data_path("fixture_trace.json")),
                     parse_json_file(data_path("fixture_metrics.json")));
}

// --- JSON reader -----------------------------------------------------------

TEST(ReportJson, ParsesScalarsArraysObjects) {
  const JsonValue v = parse_json(
      R"({"a": 1.5, "b": [1, 2, 3], "c": {"d": "x\ny"}, "e": true, "f": null})");
  EXPECT_EQ(v.at("a").as_number(), 1.5);
  EXPECT_EQ(v.at("b").as_array().size(), 3u);
  EXPECT_EQ(v.at("c").at("d").as_string(), "x\ny");
  EXPECT_TRUE(v.at("e").as_bool());
  EXPECT_TRUE(v.at("f").is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_EQ(v.number_or("missing", 7.0), 7.0);
}

TEST(ReportJson, ParsesEscapesAndUnicode) {
  const JsonValue v = parse_json(R"(["\"\\\/\b\f\n\r\t", "Aé", "\u00e9"])");
  EXPECT_EQ(v.as_array()[0].as_string(), "\"\\/\b\f\n\r\t");
  EXPECT_EQ(v.as_array()[1].as_string(), "A\xc3\xa9");
  EXPECT_EQ(v.as_array()[2].as_string(), "\xc3\xa9");
}

TEST(ReportJson, CombinesSurrogatePairsToUtf8) {
  // U+1F600 arrives as a UTF-16 surrogate pair and must decode to one
  // 4-byte UTF-8 sequence, not two invalid 3-byte ones.
  const JsonValue v = parse_json("[\"\\ud83d\\ude00\"]");
  EXPECT_EQ(v.as_array()[0].as_string(), "\xf0\x9f\x98\x80");
}

TEST(ReportJson, RejectsLoneSurrogates) {
  EXPECT_THROW(parse_json(R"(["\ud83d"])"), Error);        // high at end
  EXPECT_THROW(parse_json(R"(["\ud83d!"])"), Error);       // high, no \u
  EXPECT_THROW(parse_json(R"(["\ud83dA"])"), Error);  // high + non-low
  EXPECT_THROW(parse_json(R"(["\ude00"])"), Error);        // lone low
}

TEST(ReportJson, ParsesScientificNumbers) {
  const JsonValue v = parse_json("[1e3, -2.5E-2, 0.125]");
  EXPECT_EQ(v.as_array()[0].as_number(), 1000.0);
  EXPECT_EQ(v.as_array()[1].as_number(), -0.025);
  EXPECT_EQ(v.as_array()[2].as_number(), 0.125);
}

TEST(ReportJson, RejectsMalformedDocuments) {
  EXPECT_THROW(parse_json("{"), Error);
  EXPECT_THROW(parse_json("{\"a\": }"), Error);
  EXPECT_THROW(parse_json("[1, 2,]"), Error);
  EXPECT_THROW(parse_json("tru"), Error);
  EXPECT_THROW(parse_json("\"unterminated"), Error);
  EXPECT_THROW(parse_json("{} trailing"), Error);
  EXPECT_THROW(parse_json("1.2.3"), Error);
}

TEST(ReportJson, ErrorsCarryLineAndColumn) {
  try {
    parse_json("{\n  \"a\": oops\n}");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("2:8"), std::string::npos)
        << e.what();
  }
}

TEST(ReportJson, TypeMismatchThrows) {
  const JsonValue v = parse_json(R"({"a": 1})");
  EXPECT_THROW(v.at("a").as_string(), Error);
  EXPECT_THROW(v.at("b"), Error);
  EXPECT_THROW(v.as_array(), Error);
}

// --- analyze_run on the fixtures ------------------------------------------

TEST(ReportAnalyze, RunSummaryFromMetrics) {
  const RunReport r = fixture_report();
  EXPECT_EQ(r.rows, 64u);
  EXPECT_EQ(r.cols, 32u);
  EXPECT_EQ(r.sweeps, 2u);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.rotations_applied, 992u);
  EXPECT_EQ(r.wall_s, 2.0);
}

TEST(ReportAnalyze, PhasesAggregateSoftwareSpansByName) {
  const RunReport r = fixture_report();
  ASSERT_FALSE(r.phases.empty());
  // Sorted by descending total; the two 0.9s sweeps dominate at 1.8s.
  EXPECT_EQ(r.phases.front().name, "update");
  EXPECT_EQ(r.phases.front().total_s, 2.2);
  EXPECT_EQ(r.phases.front().count, 2u);
  bool saw_sweep = false, saw_sim = false;
  for (const PhaseStat& p : r.phases) {
    if (p.name == "sweep") {
      saw_sweep = true;
      EXPECT_DOUBLE_EQ(p.total_s, 1.8);
      EXPECT_DOUBLE_EQ(p.frac_of_wall, 0.9);
    }
    if (p.name == "update-group") saw_sim = true;  // pid 2: must be excluded
  }
  EXPECT_TRUE(saw_sweep);
  EXPECT_FALSE(saw_sim);
}

TEST(ReportAnalyze, ThreadAndQueueSections) {
  const RunReport r = fixture_report();
  ASSERT_TRUE(r.has_pipeline);
  ASSERT_EQ(r.threads.size(), 3u);
  EXPECT_EQ(r.threads[0].name, "generator");
  EXPECT_EQ(r.threads[0].busy_frac_of_wall, 0.01);
  EXPECT_EQ(r.threads[1].name, "worker.0");
  EXPECT_EQ(r.threads[1].busy_frac_of_wall, 0.5);
  EXPECT_EQ(r.threads[2].busy_frac_of_wall, 0.6);
  EXPECT_EQ(r.queue_capacity, 8.0);
  EXPECT_EQ(r.queue_high_water, 8.0);
  EXPECT_EQ(r.queue_occupancy.samples, 4u);
  EXPECT_EQ(r.queue_occupancy.mean, 3.5);
  EXPECT_EQ(r.queue_occupancy.p95, 8.0);  // nearest-rank over {0,2,4,8}
  EXPECT_EQ(r.queue_occupancy.max, 8.0);
}

TEST(ReportAnalyze, SimSectionAndCrossChecks) {
  const RunReport r = fixture_report();
  ASSERT_TRUE(r.has_sim);
  EXPECT_EQ(r.sim_fifo_depth_groups, 4.0);
  EXPECT_EQ(r.sim_fifo_high_water_rotations, 32.0);
  EXPECT_EQ(r.sim_fifo_occupancy.samples, 3u);
  EXPECT_EQ(r.sim_update_utilization, 0.4);
  // The PR 3 conclusion, derived from artifacts alone: generator busy
  // (1%) is dwarfed by the workers (mean 55%).
  EXPECT_EQ(r.generator_busy_frac, 0.01);
  EXPECT_EQ(r.mean_worker_busy_frac, 0.55);
  EXPECT_FALSE(r.generator_is_bottleneck);
  EXPECT_EQ(r.queue_vs_sim_bound_ratio, 0.25);
  EXPECT_TRUE(r.software_queue_within_sim_bound);
}

TEST(ReportAnalyze, ConvergenceTrajectoryUnified) {
  const RunReport r = fixture_report();
  ASSERT_EQ(r.convergence.size(), 2u);
  EXPECT_EQ(r.convergence[0].sweep, 0u);
  EXPECT_EQ(r.convergence[0].offdiag_frobenius, 128.5);
  EXPECT_EQ(r.convergence[1].max_rel_offdiag, 0.0005);
  EXPECT_EQ(r.convergence[1].rotations, 496u);
}

TEST(ReportAnalyze, AcceptsTraceV1) {
  // v2 = v1 + counter events; a v1 document (no 'C' events) must load.
  std::string v1 = slurp(data_path("fixture_trace.json"));
  const auto tag = v1.find("hjsvd.trace.v2");
  ASSERT_NE(tag, std::string::npos);
  v1.replace(tag, 14, "hjsvd.trace.v1");
  const RunReport r = analyze_run(
      parse_json(v1), parse_json_file(data_path("fixture_metrics.json")));
  EXPECT_EQ(r.rows, 64u);
}

TEST(ReportAnalyze, WrongSchemaIsSchemaError) {
  const JsonValue trace = parse_json_file(data_path("fixture_trace.json"));
  const JsonValue metrics = parse_json_file(data_path("fixture_metrics.json"));
  EXPECT_THROW(analyze_run(metrics, metrics), SchemaError);  // swapped
  EXPECT_THROW(analyze_run(trace, trace), SchemaError);
  EXPECT_THROW(analyze_run(parse_json("{}"), metrics), SchemaError);
  EXPECT_THROW(
      analyze_run(parse_json(R"({"schema": "hjsvd.trace.v99"})"), metrics),
      SchemaError);
  // v3 is a supported schema, but the tagged shape must still be present.
  EXPECT_THROW(
      analyze_run(parse_json(R"({"schema": "hjsvd.trace.v3"})"), metrics),
      SchemaError);
  EXPECT_THROW(report_from_json(parse_json("{}")), SchemaError);
}

// --- Batch-scheduler section ----------------------------------------------

// A metrics document as svd_batch records it: the pool summary, per-worker
// busy/idle gauges, and the queue-occupancy drain series.
const char* kBatchMetrics = R"({
"schema": "hjsvd.metrics.v1",
"metrics": [
  {"name": "batch.items", "unit": "matrices", "type": "counter", "value": 7},
  {"name": "batch.items_ok", "unit": "matrices", "type": "counter", "value": 6},
  {"name": "batch.items_failed", "unit": "matrices", "type": "counter", "value": 1},
  {"name": "batch.workers", "unit": "threads", "type": "gauge", "value": 2},
  {"name": "batch.workers.requested", "unit": "threads", "type": "gauge", "value": 4},
  {"name": "batch.wall_s", "unit": "s", "type": "gauge", "value": 2},
  {"name": "batch.steals", "unit": "tasks", "type": "counter", "value": 3},
  {"name": "batch.nested.splits", "unit": "matrices", "type": "counter", "value": 1},
  {"name": "batch.nested.helpers", "unit": "threads", "type": "counter", "value": 2},
  {"name": "batch.worker.0.busy_s", "unit": "s", "type": "gauge", "value": 1.5},
  {"name": "batch.worker.0.idle_s", "unit": "s", "type": "gauge", "value": 0.5},
  {"name": "batch.worker.1.busy_s", "unit": "s", "type": "gauge", "value": 1},
  {"name": "batch.worker.1.idle_s", "unit": "s", "type": "gauge", "value": 1},
  {"name": "batch.queue.occupancy", "unit": "tasks", "type": "series",
   "points": [[0, 6], [1, 5], [2, 4], [3, 3], [4, 2], [5, 1], [6, 0]]}
]
})";

RunReport batch_report() {
  return analyze_run(
      parse_json(R"({"schema": "hjsvd.trace.v1", "traceEvents": []})"),
      parse_json(kBatchMetrics));
}

TEST(ReportBatch, AnalyzeFillsBatchSectionFromMetrics) {
  const RunReport r = batch_report();
  ASSERT_TRUE(r.has_batch);
  EXPECT_EQ(r.batch_items, 7u);
  EXPECT_EQ(r.batch_items_ok, 6u);
  EXPECT_EQ(r.batch_items_failed, 1u);
  EXPECT_EQ(r.batch_workers, 2u);
  EXPECT_EQ(r.batch_workers_requested, 4u);
  EXPECT_EQ(r.batch_steals, 3u);
  EXPECT_EQ(r.batch_nested_splits, 1u);
  EXPECT_EQ(r.batch_nested_helpers, 2u);
  EXPECT_EQ(r.batch_wall_s, 2.0);
  // (0.5 + 1.0) idle over 2 workers * 2s wall.
  EXPECT_DOUBLE_EQ(r.batch_idle_frac, 0.375);
  ASSERT_EQ(r.batch_worker_stats.size(), 2u);
  EXPECT_EQ(r.batch_worker_stats[0].name, "worker.0");
  EXPECT_EQ(r.batch_worker_stats[0].busy_s, 1.5);
  EXPECT_EQ(r.batch_worker_stats[1].idle_s, 1.0);
  EXPECT_EQ(r.batch_queue_occupancy.samples, 7u);
  EXPECT_EQ(r.batch_queue_occupancy.mean, 3.0);
  EXPECT_EQ(r.batch_queue_occupancy.max, 6.0);
}

TEST(ReportBatch, BatchSectionRoundTrips) {
  const RunReport a = batch_report();
  const std::string json = report_json(a);
  EXPECT_NE(json.find("\"batch\""), std::string::npos);
  const RunReport b = report_from_json(parse_json(json));
  ASSERT_TRUE(b.has_batch);
  EXPECT_EQ(b.batch_steals, 3u);
  EXPECT_EQ(b.batch_workers_requested, 4u);
  ASSERT_EQ(b.batch_worker_stats.size(), 2u);
  EXPECT_EQ(b.batch_worker_stats[1].busy_s, 1.0);
  EXPECT_EQ(report_json(a), report_json(b));
}

TEST(ReportBatch, AbsentBatchOmitsTheMemberEntirely) {
  // Unlike pipeline/sim there is no "batch": null — reports from before
  // the batch scheduler must keep serializing byte-for-byte (the golden
  // file below enforces the same thing).
  const std::string json = report_json(fixture_report());
  EXPECT_EQ(json.find("\"batch\""), std::string::npos);
}

TEST(ReportBatch, TableRendersSchedulerBehaviour) {
  const std::string table = report_table(batch_report());
  EXPECT_NE(table.find("3 steals"), std::string::npos);
  EXPECT_NE(table.find("1 nested splits"), std::string::npos);
  EXPECT_NE(table.find("Batch-scheduler pool workers"), std::string::npos);
  EXPECT_NE(table.find("2 workers (4 requested)"), std::string::npos);
}

// --- Mixed-precision section ----------------------------------------------

// A metrics document as the mixed-precision engine records it (svd.mp.*
// gauges; switch_reason encodes hjsvd::MixedSwitchReason as a number).
const char* kMixedMetrics = R"({
"schema": "hjsvd.metrics.v1",
"metrics": [
  {"name": "svd.mp.float_sweeps", "unit": "sweeps", "type": "gauge", "value": 5},
  {"name": "svd.mp.double_sweeps", "unit": "sweeps", "type": "gauge", "value": 2},
  {"name": "svd.mp.switch_sweep", "unit": "sweep", "type": "gauge", "value": 5},
  {"name": "svd.mp.switch_threshold", "unit": "ratio", "type": "gauge", "value": 1e-4},
  {"name": "svd.mp.switch_reason", "unit": "enum", "type": "gauge", "value": 0},
  {"name": "svd.mp.offdiag_at_switch", "unit": "ratio", "type": "gauge", "value": 3.5e-5},
  {"name": "svd.mp.offdiag_after_recompute", "unit": "ratio", "type": "gauge", "value": 3.4e-5}
]
})";

RunReport mixed_report() {
  return analyze_run(
      parse_json(R"({"schema": "hjsvd.trace.v1", "traceEvents": []})"),
      parse_json(kMixedMetrics));
}

TEST(ReportMixed, AnalyzeFillsMixedSectionFromMetrics) {
  const RunReport r = mixed_report();
  ASSERT_TRUE(r.has_mixed);
  EXPECT_EQ(r.mp_float_sweeps, 5u);
  EXPECT_EQ(r.mp_double_sweeps, 2u);
  EXPECT_EQ(r.mp_switch_sweep, 5u);
  EXPECT_EQ(r.mp_switch_threshold, 1e-4);
  EXPECT_EQ(r.mp_switch_reason, "threshold");
  EXPECT_EQ(r.mp_offdiag_at_switch, 3.5e-5);
  EXPECT_EQ(r.mp_offdiag_after_recompute, 3.4e-5);
}

TEST(ReportMixed, SwitchReasonMappingMatchesEngineEnum) {
  // Locks the numeric encoding duplicated in report.cpp against
  // hjsvd::MixedSwitchReason's declaration order.
  const std::pair<double, const char*> cases[] = {
      {0.0, "threshold"}, {1.0, "stall"},   {2.0, "budget"},
      {3.0, "skipped"},   {4.0, "unknown"}, {-1.0, "unknown"},
  };
  for (const auto& [value, want] : cases) {
    std::string doc(kMixedMetrics);
    const std::string needle = "\"svd.mp.switch_reason\", \"unit\": \"enum\", "
                               "\"type\": \"gauge\", \"value\": 0";
    const std::size_t pos = doc.find(needle);
    ASSERT_NE(pos, std::string::npos);
    doc.replace(pos + needle.size() - 1, 1, std::to_string(value));
    const RunReport r = analyze_run(
        parse_json(R"({"schema": "hjsvd.trace.v1", "traceEvents": []})"),
        parse_json(doc));
    EXPECT_EQ(r.mp_switch_reason, want) << "value " << value;
  }
}

TEST(ReportMixed, MixedSectionRoundTrips) {
  const RunReport a = mixed_report();
  const std::string json = report_json(a);
  EXPECT_NE(json.find("\"mixed\""), std::string::npos);
  const RunReport b = report_from_json(parse_json(json));
  ASSERT_TRUE(b.has_mixed);
  EXPECT_EQ(b.mp_float_sweeps, 5u);
  EXPECT_EQ(b.mp_double_sweeps, 2u);
  EXPECT_EQ(b.mp_switch_reason, "threshold");
  EXPECT_EQ(b.mp_switch_threshold, 1e-4);
  EXPECT_EQ(report_json(a), report_json(b));
}

TEST(ReportMixed, AbsentMixedOmitsTheMemberEntirely) {
  // Same contract as batch: no "mixed": null, so pre-mixed-precision
  // reports keep serializing byte-for-byte (golden file enforces too).
  const std::string json = report_json(fixture_report());
  EXPECT_EQ(json.find("\"mixed\""), std::string::npos);
}

TEST(ReportMixed, TableRendersTheSwitchStory) {
  const std::string table = report_table(mixed_report());
  EXPECT_NE(table.find("mixed precision: 5 float + 2 double sweeps"),
            std::string::npos);
  EXPECT_NE(table.find("switched at sweep 5 (threshold"), std::string::npos);
}

// --- Live-telemetry section -----------------------------------------------

// A flight-recorder trace dump (hjsvd.trace.v3) as TraceRecorder writes it
// in ring mode: v2 plus ring/drop metadata in otherData.
const char* kLiveTrace = R"({
"schema": "hjsvd.trace.v3",
"otherData": {"time_unit": "us", "software_pid": 1, "simulator_pid": 2,
  "flight_recorder": true, "ring_capacity_events": 4096,
  "dropped_events_total": 1150, "dropped_events_by_tid": [386, 383, 381]},
"traceEvents": []
})";

// Watchdog verdicts as obs::Watchdog publishes them (obs.watchdog.* plus
// the exporter's obs.dump.count).
const char* kLiveMetrics = R"({
"schema": "hjsvd.metrics.v1",
"metrics": [
  {"name": "obs.dump.count", "unit": "dumps", "type": "counter", "value": 2},
  {"name": "obs.watchdog.deadline_exceeded", "unit": "bool", "type": "gauge", "value": 0},
  {"name": "obs.watchdog.deadline_overruns", "unit": "events", "type": "counter", "value": 0},
  {"name": "obs.watchdog.deadline_s", "unit": "s", "type": "gauge", "value": 30},
  {"name": "obs.watchdog.stall_events", "unit": "events", "type": "counter", "value": 1},
  {"name": "obs.watchdog.stall_sweeps", "unit": "sweeps", "type": "gauge", "value": 3},
  {"name": "obs.watchdog.stalled", "unit": "bool", "type": "gauge", "value": 1},
  {"name": "obs.watchdog.sweeps_observed", "unit": "sweeps", "type": "counter", "value": 12}
]
})";

RunReport live_report() {
  return analyze_run(parse_json(kLiveTrace), parse_json(kLiveMetrics));
}

TEST(ReportLive, AnalyzeFillsLiveSectionFromV3TraceAndWatchdogMetrics) {
  const RunReport r = live_report();
  ASSERT_TRUE(r.has_live);
  EXPECT_TRUE(r.live_ring_enabled);
  EXPECT_EQ(r.live_ring_capacity_events, 4096u);
  EXPECT_EQ(r.live_dropped_events_total, 1150u);
  ASSERT_TRUE(r.live_watchdog_present);
  EXPECT_TRUE(r.live_watchdog_stalled);
  EXPECT_FALSE(r.live_watchdog_deadline_exceeded);
  EXPECT_EQ(r.live_watchdog_deadline_s, 30.0);
  EXPECT_EQ(r.live_watchdog_stall_sweeps, 3u);
  EXPECT_EQ(r.live_watchdog_stall_events, 1u);
  EXPECT_EQ(r.live_watchdog_sweeps_observed, 12u);
  EXPECT_EQ(r.live_watchdog_deadline_overruns, 0u);
  EXPECT_EQ(r.live_dumps, 2u);
}

TEST(ReportLive, WatchdogMetricsAloneTriggerTheSection) {
  // A watchdog run with an unbounded (v2) trace still gets a live section;
  // the ring fields stay at their absent defaults.
  const RunReport r = analyze_run(
      parse_json(R"({"schema": "hjsvd.trace.v2", "traceEvents": []})"),
      parse_json(kLiveMetrics));
  ASSERT_TRUE(r.has_live);
  EXPECT_FALSE(r.live_ring_enabled);
  EXPECT_EQ(r.live_ring_capacity_events, 0u);
  EXPECT_TRUE(r.live_watchdog_stalled);
}

TEST(ReportLive, LiveSectionRoundTrips) {
  const RunReport a = live_report();
  const std::string json = report_json(a);
  EXPECT_NE(json.find("\"live\""), std::string::npos);
  const RunReport b = report_from_json(parse_json(json));
  ASSERT_TRUE(b.has_live);
  EXPECT_TRUE(b.live_ring_enabled);
  EXPECT_EQ(b.live_ring_capacity_events, 4096u);
  EXPECT_EQ(b.live_dropped_events_total, 1150u);
  EXPECT_TRUE(b.live_watchdog_stalled);
  EXPECT_EQ(b.live_watchdog_deadline_s, 30.0);
  EXPECT_EQ(b.live_dumps, 2u);
  EXPECT_EQ(report_json(a), report_json(b));
}

TEST(ReportLive, AbsentLiveOmitsTheMemberEntirely) {
  // Same contract as batch/mixed: no "live": null, so reports from before
  // live telemetry keep serializing byte-for-byte (golden file enforces).
  const std::string json = report_json(fixture_report());
  EXPECT_EQ(json.find("\"live\""), std::string::npos);
}

TEST(ReportLive, TableRendersRingAndWatchdogVerdicts) {
  const std::string table = report_table(live_report());
  EXPECT_NE(table.find("flight-recorder ring, capacity 4096"),
            std::string::npos);
  EXPECT_NE(table.find("1150 dropped"), std::string::npos);
  EXPECT_NE(table.find("watchdog STALLED"), std::string::npos);
  EXPECT_NE(table.find("2 mid-run dump(s)"), std::string::npos);
}

TEST(ReportLive, CompareTreatsVerdictsAndDropsAsInvariants) {
  RunReport baseline = live_report();
  baseline.live_watchdog_stalled = false;
  baseline.live_dropped_events_total = 0;

  // Candidate identical to baseline: all live checks pass.
  {
    const CompareResult r =
        compare_reports(baseline, baseline, CompareThresholds{});
    EXPECT_FALSE(r.regressed);
  }
  // Candidate newly stalls: regression regardless of timings.
  {
    RunReport cand = baseline;
    cand.live_watchdog_stalled = true;
    const CompareResult r =
        compare_reports(baseline, cand, CompareThresholds{});
    EXPECT_TRUE(r.regressed);
  }
  // Candidate newly exceeds the deadline: regression.
  {
    RunReport cand = baseline;
    cand.live_watchdog_deadline_exceeded = true;
    const CompareResult r =
        compare_reports(baseline, cand, CompareThresholds{});
    EXPECT_TRUE(r.regressed);
  }
  // Candidate starts dropping ring events when the baseline dropped none.
  {
    RunReport cand = baseline;
    cand.live_dropped_events_total = 42;
    const CompareResult r =
        compare_reports(baseline, cand, CompareThresholds{});
    EXPECT_TRUE(r.regressed);
  }
  // Both drop (undersized ring in both runs): counts are noisy, not gated.
  {
    RunReport base2 = baseline;
    base2.live_dropped_events_total = 10;
    RunReport cand = base2;
    cand.live_dropped_events_total = 500;
    const CompareResult r = compare_reports(base2, cand, CompareThresholds{});
    EXPECT_FALSE(r.regressed);
  }
  // A stalled baseline does not fail a still-stalled candidate.
  {
    RunReport base2 = baseline;
    base2.live_watchdog_stalled = true;
    RunReport cand = base2;
    const CompareResult r = compare_reports(base2, cand, CompareThresholds{});
    EXPECT_FALSE(r.regressed);
  }
}

// --- Serving section ------------------------------------------------------

// A metrics document as hjsvd_serve records it: admission-control counters,
// wave/latency statistics, the queue-depth series, and the warm-workspace
// shutdown counters.
const char* kServeMetrics = R"({
"schema": "hjsvd.metrics.v1",
"metrics": [
  {"name": "serve.requests_total", "unit": "requests", "type": "counter", "value": 10},
  {"name": "serve.admitted_total", "unit": "requests", "type": "counter", "value": 7},
  {"name": "serve.rejected.overload", "unit": "requests", "type": "counter", "value": 2},
  {"name": "serve.rejected.bad_request", "unit": "requests", "type": "counter", "value": 1},
  {"name": "serve.expired.deadline", "unit": "requests", "type": "counter", "value": 1},
  {"name": "serve.replies_ok", "unit": "requests", "type": "counter", "value": 6},
  {"name": "serve.replies_error", "unit": "requests", "type": "counter", "value": 4},
  {"name": "serve.waves_total", "unit": "waves", "type": "counter", "value": 3},
  {"name": "serve.workspace.reuse_total", "unit": "buffers", "type": "counter", "value": 12},
  {"name": "serve.workspace.alloc_total", "unit": "buffers", "type": "counter", "value": 4},
  {"name": "serve.latency_p50_ms", "unit": "ms", "type": "gauge", "value": 1.25},
  {"name": "serve.latency_p95_ms", "unit": "ms", "type": "gauge", "value": 4.5},
  {"name": "serve.queue.depth", "unit": "requests", "type": "series",
   "points": [[0, 1], [1, 2], [2, 3], [3, 2]]}
]
})";

RunReport serve_report() {
  return analyze_run(
      parse_json(R"({"schema": "hjsvd.trace.v1", "traceEvents": []})"),
      parse_json(kServeMetrics));
}

TEST(ReportServe, AnalyzeFillsServeSectionFromMetrics) {
  const RunReport r = serve_report();
  ASSERT_TRUE(r.has_serve);
  EXPECT_EQ(r.serve_requests_total, 10u);
  EXPECT_EQ(r.serve_admitted_total, 7u);
  EXPECT_EQ(r.serve_rejected_overload, 2u);
  EXPECT_EQ(r.serve_rejected_bad_request, 1u);
  EXPECT_EQ(r.serve_expired_deadline, 1u);
  EXPECT_EQ(r.serve_replies_ok, 6u);
  EXPECT_EQ(r.serve_replies_error, 4u);
  EXPECT_EQ(r.serve_waves_total, 3u);
  EXPECT_EQ(r.serve_workspace_reuse_total, 12u);
  EXPECT_EQ(r.serve_workspace_alloc_total, 4u);
  EXPECT_DOUBLE_EQ(r.serve_latency_p50_ms, 1.25);
  EXPECT_DOUBLE_EQ(r.serve_latency_p95_ms, 4.5);
  EXPECT_EQ(r.serve_queue_depth.samples, 4u);
  EXPECT_DOUBLE_EQ(r.serve_queue_depth.mean, 2.0);
  EXPECT_DOUBLE_EQ(r.serve_queue_depth.max, 3.0);
}

TEST(ReportServe, ServeSectionRoundTrips) {
  const RunReport a = serve_report();
  const std::string json = report_json(a);
  EXPECT_NE(json.find("\"serve\""), std::string::npos);
  const RunReport b = report_from_json(parse_json(json));
  ASSERT_TRUE(b.has_serve);
  EXPECT_EQ(b.serve_requests_total, 10u);
  EXPECT_EQ(b.serve_workspace_reuse_total, 12u);
  EXPECT_DOUBLE_EQ(b.serve_latency_p95_ms, 4.5);
  EXPECT_EQ(b.serve_queue_depth.samples, 4u);
  EXPECT_EQ(report_json(a), report_json(b));
}

TEST(ReportServe, AbsentServeOmitsTheMemberEntirely) {
  // Offline-run reports must keep serializing byte-for-byte (the golden
  // file below enforces the same thing).
  const std::string json = report_json(fixture_report());
  EXPECT_EQ(json.find("\"serve\""), std::string::npos);
}

TEST(ReportServe, TableRendersAdmissionAndWarmPoolStory) {
  const std::string table = report_table(serve_report());
  EXPECT_NE(table.find("10 requests"), std::string::npos);
  EXPECT_NE(table.find("7 admitted / 2 overload / 1 bad"), std::string::npos);
  EXPECT_NE(table.find("1 deadline-expired"), std::string::npos);
  EXPECT_NE(table.find("12 reuses / 4 allocs"), std::string::npos);
  EXPECT_NE(table.find("queue depth mean 2.00"), std::string::npos);
}

// --- Golden file and round trip -------------------------------------------

TEST(ReportGolden, SerializationMatchesGoldenByteForByte) {
  const std::string got = report_json(fixture_report());
  const std::string want = slurp(data_path("golden_report.json"));
  EXPECT_EQ(got, want)
      << "hjsvd.report.v1 serialization changed; if intentional, regenerate "
         "tests/report/data/golden_report.json with hjsvd_report and bump "
         "the schema notes in docs/OBSERVABILITY.md";
}

TEST(ReportGolden, RoundTripPreservesEverythingComparable) {
  const RunReport a = fixture_report();
  const RunReport b = report_from_json(parse_json(report_json(a)));
  // Serialize-parse-serialize is a fixed point.
  EXPECT_EQ(report_json(a), report_json(b));
  const CompareResult same = compare_reports(a, b, {});
  EXPECT_FALSE(same.regressed);
}

TEST(ReportTable, HumanViewNamesTheConclusions) {
  const std::string table = report_table(fixture_report());
  EXPECT_NE(table.find("generator is NOT the bottleneck"), std::string::npos);
  EXPECT_NE(table.find("Per-phase wall-clock breakdown"), std::string::npos);
  EXPECT_NE(table.find("Convergence trajectory"), std::string::npos);
  EXPECT_NE(table.find("within bound"), std::string::npos);
}

// --- Compare gate ----------------------------------------------------------

TEST(ReportCompare, FlagsWallClockRegression) {
  const RunReport base = fixture_report();
  RunReport slow = base;
  slow.wall_s = base.wall_s * 1.2;
  const CompareResult r = compare_reports(base, slow, {});
  EXPECT_TRUE(r.regressed);
  bool named = false;
  for (const auto& f : r.findings)
    if (f.find("FAIL wall_s") != std::string::npos) named = true;
  EXPECT_TRUE(named);
  // Within threshold: 5% slower passes the default 10% gate.
  RunReport ok = base;
  ok.wall_s = base.wall_s * 1.05;
  EXPECT_FALSE(compare_reports(base, ok, {}).regressed);
}

TEST(ReportCompare, FlagsConvergenceRegressions) {
  const RunReport base = fixture_report();
  RunReport worse = base;
  worse.sweeps = base.sweeps + 1;
  EXPECT_TRUE(compare_reports(base, worse, {}).regressed);
  CompareThresholds lax;
  lax.max_sweep_increase = 1;
  EXPECT_FALSE(compare_reports(base, worse, lax).regressed);

  RunReport diverged = base;
  diverged.converged = false;
  EXPECT_TRUE(compare_reports(base, diverged, {}).regressed);

  RunReport busier = base;
  busier.rotations_applied =
      static_cast<std::uint64_t>(base.rotations_applied * 1.2);
  EXPECT_TRUE(compare_reports(base, busier, {}).regressed);
}

TEST(ReportCompare, FlagsPipelineRegressions) {
  const RunReport base = fixture_report();
  RunReport stally = base;
  for (auto& t : stally.threads) t.stall_s *= 2.0;
  EXPECT_TRUE(compare_reports(base, stally, {}).regressed);

  RunReport flipped = base;
  flipped.generator_is_bottleneck = true;
  EXPECT_TRUE(compare_reports(base, flipped, {}).regressed);
}

TEST(ReportCompare, WorkloadMismatchRefusesComparison) {
  const RunReport base = fixture_report();
  RunReport other = base;
  other.cols = base.cols * 2;
  const CompareResult r = compare_reports(base, other, {});
  EXPECT_TRUE(r.regressed);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_NE(r.findings[0].find("not comparable"), std::string::npos);
}

}  // namespace
}  // namespace hjsvd::report

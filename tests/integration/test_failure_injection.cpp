// Failure-injection tests: every public solver entry point must reject
// non-finite input with hjsvd::Error rather than silently producing NaN
// results or looping.
#include <gtest/gtest.h>

#include <limits>

#include "api/svd.hpp"
#include "baselines/golub_kahan.hpp"
#include "baselines/parallel_hestenes.hpp"
#include "baselines/twosided_jacobi.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "svd/block_hestenes.hpp"
#include "svd/hestenes.hpp"
#include "svd/plain_hestenes.hpp"

namespace hjsvd {
namespace {

enum class Poison { kNan, kPosInf, kNegInf };

Matrix poisoned(std::size_t m, std::size_t n, Poison poison,
                std::size_t r, std::size_t c) {
  Rng rng(7);
  Matrix a = random_gaussian(m, n, rng);
  switch (poison) {
    case Poison::kNan:
      a(r, c) = std::numeric_limits<double>::quiet_NaN();
      break;
    case Poison::kPosInf:
      a(r, c) = std::numeric_limits<double>::infinity();
      break;
    case Poison::kNegInf:
      a(r, c) = -std::numeric_limits<double>::infinity();
      break;
  }
  return a;
}

class FailureInjection : public ::testing::TestWithParam<Poison> {
 protected:
  Matrix square() const { return poisoned(8, 8, GetParam(), 3, 5); }
  Matrix rect() const { return poisoned(10, 6, GetParam(), 9, 0); }
};

TEST_P(FailureInjection, ModifiedHestenesRejects) {
  EXPECT_THROW(modified_hestenes_svd(rect()), Error);
}

TEST_P(FailureInjection, PlainHestenesRejects) {
  EXPECT_THROW(plain_hestenes_svd(rect()), Error);
}

TEST_P(FailureInjection, BlockHestenesRejects) {
  EXPECT_THROW(block_hestenes_svd(rect()), Error);
}

TEST_P(FailureInjection, ParallelHestenesRejects) {
  EXPECT_THROW(parallel_hestenes_svd(rect()), Error);
}

TEST_P(FailureInjection, GolubKahanRejects) {
  EXPECT_THROW(golub_kahan_svd(rect()), Error);
}

TEST_P(FailureInjection, TwoSidedRejects) {
  EXPECT_THROW(twosided_jacobi_svd(square()), Error);
}

TEST_P(FailureInjection, UnifiedApiRejects) {
  EXPECT_THROW(svd(rect()), Error);
  EXPECT_THROW(svd(square(), {.method = SvdMethod::kGolubKahan}), Error);
}

INSTANTIATE_TEST_SUITE_P(Poisons, FailureInjection,
                         ::testing::Values(Poison::kNan, Poison::kPosInf,
                                           Poison::kNegInf),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case Poison::kNan: return "NaN";
                             case Poison::kPosInf: return "PosInf";
                             default: return "NegInf";
                           }
                         });

TEST(FailureInjection, FiniteInputStillAccepted) {
  Rng rng(8);
  const Matrix a = random_gaussian(6, 4, rng);
  EXPECT_NO_THROW(modified_hestenes_svd(a));
  EXPECT_NO_THROW(golub_kahan_svd(a));
}

TEST(FailureInjection, ZeroMatrixIsValidInput) {
  const Matrix zero(5, 3);
  const SvdResult r = modified_hestenes_svd(zero);
  for (double s : r.singular_values) EXPECT_EQ(s, 0.0);
  const SvdResult p = plain_hestenes_svd(zero);
  for (double s : p.singular_values) EXPECT_EQ(s, 0.0);
}

}  // namespace
}  // namespace hjsvd

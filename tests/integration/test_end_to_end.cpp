// End-to-end integration tests across the whole stack: generators ->
// algorithms -> architecture model -> reporting.
#include <gtest/gtest.h>

#include <cmath>

#include "arch/accelerator_sim.hpp"
#include "arch/resource_model.hpp"
#include "arch/timing_model.hpp"
#include "baselines/golub_kahan.hpp"
#include "baselines/literature.hpp"
#include "baselines/parallel_hestenes.hpp"
#include "baselines/twosided_jacobi.hpp"
#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "reportgen/runner.hpp"
#include "svd/hestenes.hpp"
#include "svd/plain_hestenes.hpp"

namespace hjsvd {
namespace {

TEST(EndToEnd, FourAlgorithmsAgreeOnOneMatrix) {
  Rng rng(2014);
  const Matrix a = random_gaussian(32, 32, rng);
  HestenesConfig hj;
  hj.max_sweeps = 20;
  hj.tolerance = 1e-14;
  const auto modified = modified_hestenes_svd(a, hj);
  const auto plain = plain_hestenes_svd(a, hj);
  const auto parallel = parallel_hestenes_svd(a, hj);
  const auto twosided = twosided_jacobi_svd(a);
  const auto gk = golub_kahan_svd(a);
  for (const auto* other : {&modified, &plain, &parallel, &twosided}) {
    EXPECT_LT(
        singular_value_error(other->singular_values, gk.singular_values),
        1e-9);
  }
}

TEST(EndToEnd, AcceleratorDecomposesRectangularMatrixCorrectly) {
  Rng rng(2015);
  const Matrix a = random_gaussian(96, 24, rng);
  const auto run = arch::simulate_accelerator(a);
  const auto ref = golub_kahan_svd(a);
  EXPECT_LT(
      singular_value_error(run.svd.singular_values, ref.singular_values),
      1e-9);
  EXPECT_GT(run.total_cycles, 0u);
}

TEST(EndToEnd, AcceleratorBeatsGenericGrowthOnRowExtension) {
  // The paper's headline: rows are cheap for the architecture.  Quadrupling
  // the rows must cost far less than quadrupling the columns.
  const arch::AcceleratorConfig cfg;
  const double base = arch::estimate_seconds(cfg, 128, 64);
  const double more_rows = arch::estimate_seconds(cfg, 512, 64);
  const double more_cols = arch::estimate_seconds(cfg, 128, 256);
  EXPECT_LT(more_rows / base, 4.0);
  EXPECT_GT(more_cols / base, 10.0);
}

TEST(EndToEnd, SpeedupShapeVersusSoftwareBaseline) {
  // For a tall 512x64 matrix the modeled accelerator should beat our
  // single-threaded Golub-Kahan host baseline handily (the paper reports
  // 3.8x-43.6x for its 2009-era host; we only require > 1x for shape).
  const Matrix a = report::experiment_matrix(512, 64);
  const double sw = report::golub_kahan_seconds(a);
  const double hw = arch::estimate_seconds(arch::AcceleratorConfig{}, 512, 64);
  EXPECT_GT(sw / hw, 1.0) << "sw=" << sw << " hw=" << hw;
}

TEST(EndToEnd, PaperResourceAndTimingModelsAreConsistent) {
  // The same configuration drives both models and reproduces both tables.
  const arch::AcceleratorConfig cfg;
  const auto res = arch::estimate_resources(cfg);
  EXPECT_TRUE(res.fits);
  const auto cell = literature::paper_table1_seconds(128, 128);
  ASSERT_TRUE(cell.has_value());
  const double ours = arch::estimate_seconds(cfg, 128, 128);
  EXPECT_NEAR(ours / *cell, 1.0, 0.35);
}

TEST(EndToEnd, ConvergenceWithinSixSweepsUpTo128) {
  // Fig. 10's claim, at test scale: "reasonable convergence" within 6 sweeps
  // — the mean covariance deviation collapses by many orders of magnitude
  // (the paper stops at thresholds, not at machine precision).
  for (std::size_t n : {16u, 64u, 128u}) {
    Rng rng(3000 + n);
    const Matrix a = random_uniform(n, n, rng);
    HestenesConfig cfg;
    cfg.max_sweeps = 6;
    cfg.track_convergence = true;
    HestenesStats stats;
    (void)modified_hestenes_svd(a, cfg, &stats);
    ASSERT_EQ(stats.sweeps.size(), 6u);
    // Strictly decreasing sweep over sweep...
    for (std::size_t s = 1; s < stats.sweeps.size(); ++s)
      EXPECT_LT(stats.sweeps[s].mean_abs_offdiag,
                stats.sweeps[s - 1].mean_abs_offdiag)
          << "n=" << n << " sweep=" << s;
    // ...and collapsed by orders of magnitude by sweep 6 (Fig. 10 shows
    // threshold-level, not machine-precision, convergence at 6 sweeps).
    EXPECT_LT(stats.sweeps.back().mean_abs_offdiag,
              stats.sweeps.front().mean_abs_offdiag * 1e-2)
        << "n=" << n;
    if (n <= 64) {
      EXPECT_LT(stats.sweeps.back().mean_abs_offdiag, 1e-4) << "n=" << n;
    }
  }
}

TEST(EndToEnd, ExperimentMatrixIsDeterministicPerShape) {
  const Matrix a = report::experiment_matrix(32, 16);
  const Matrix b = report::experiment_matrix(32, 16);
  EXPECT_EQ(Matrix::max_abs_diff(a, b), 0.0);
  const Matrix c = report::experiment_matrix(16, 32);
  EXPECT_NE(c.rows(), a.rows());
}

}  // namespace
}  // namespace hjsvd

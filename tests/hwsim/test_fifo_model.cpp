// Randomized reference-model test: the Fifo must behave exactly like a
// std::deque bounded by its capacity, under an arbitrary push/pop schedule.
#include <gtest/gtest.h>

#include <deque>

#include "common/rng.hpp"
#include "hwsim/fifo.hpp"

namespace hjsvd::hwsim {
namespace {

class FifoModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FifoModel, MatchesReferenceDeque) {
  Rng rng(GetParam());
  const std::size_t capacity = 1 + rng.bounded(16);
  Fifo<int> fifo(capacity);
  std::deque<int> model;
  std::uint64_t expect_push_stalls = 0, expect_pop_stalls = 0;
  std::size_t expect_high_water = 0;
  int next_value = 0;

  for (int step = 0; step < 5000; ++step) {
    if (rng.bounded(2) == 0) {
      const bool ok = fifo.try_push(next_value);
      if (model.size() >= capacity) {
        ASSERT_FALSE(ok);
        ++expect_push_stalls;
      } else {
        ASSERT_TRUE(ok);
        model.push_back(next_value);
        expect_high_water = std::max(expect_high_water, model.size());
      }
      ++next_value;
    } else {
      int out = -1;
      const bool ok = fifo.try_pop(out);
      if (model.empty()) {
        ASSERT_FALSE(ok);
        ++expect_pop_stalls;
      } else {
        ASSERT_TRUE(ok);
        ASSERT_EQ(out, model.front());
        model.pop_front();
      }
    }
    ASSERT_EQ(fifo.size(), model.size());
    ASSERT_EQ(fifo.empty(), model.empty());
    ASSERT_EQ(fifo.full(), model.size() >= capacity);
    if (!model.empty()) ASSERT_EQ(fifo.front(), model.front());
  }
  EXPECT_EQ(fifo.push_stalls(), expect_push_stalls);
  EXPECT_EQ(fifo.pop_stalls(), expect_pop_stalls);
  EXPECT_EQ(fifo.high_water(), expect_high_water);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FifoModel,
                         ::testing::Values(7u, 13u, 29u, 31u, 57u));

TEST(FifoModel, FrontOnEmptyThrows) {
  Fifo<int> fifo(2);
  EXPECT_THROW((void)fifo.front(), Error);
}

}  // namespace
}  // namespace hjsvd::hwsim

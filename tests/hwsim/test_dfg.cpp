// Tests for the dataflow-graph list scheduler and the rotation dataflow.
#include "hwsim/dfg.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/error.hpp"

namespace hjsvd::hwsim {
namespace {

using fp::CoreLatencies;
using fp::OpKind;

TEST(ListSchedule, RespectsDependencies) {
  Dataflow g;
  const auto a = g.add(OpKind::kMul, {});
  const auto b = g.add(OpKind::kAdd, {a});
  const auto c = g.add(OpKind::kSqrt, {b});
  CoreLatencies lat;
  const auto s = list_schedule(g, FuSet{}, lat);
  EXPECT_GE(s.start[b], s.finish[a]);
  EXPECT_GE(s.start[c], s.finish[b]);
  EXPECT_EQ(s.makespan, s.finish[c]);
  EXPECT_EQ(s.makespan, lat.mul + lat.add + lat.sqrt);
}

TEST(ListSchedule, IndependentOpsShareCyclesUpToUnitCount) {
  // Three independent multiplies on one multiplier: issues at 0, 1, 2.
  Dataflow g;
  g.add(OpKind::kMul, {});
  g.add(OpKind::kMul, {});
  g.add(OpKind::kMul, {});
  const auto s = list_schedule(g, FuSet{1, 1, 1, 1}, CoreLatencies{});
  std::map<Cycle, int> per_cycle;
  for (auto st : s.start) ++per_cycle[st];
  for (const auto& [cycle, count] : per_cycle) EXPECT_LE(count, 1);
  EXPECT_EQ(s.makespan, 2 + 9u);
}

TEST(ListSchedule, TwoAddersDoubleThroughput) {
  Dataflow g;
  for (int i = 0; i < 4; ++i) g.add(OpKind::kAdd, {});
  const auto s = list_schedule(g, FuSet{1, 2, 1, 1}, CoreLatencies{});
  EXPECT_EQ(s.makespan, 1 + 14u);  // pairs at cycles 0 and 1
}

TEST(ListSchedule, AddAndSubShareAdders) {
  Dataflow g;
  g.add(OpKind::kAdd, {});
  g.add(OpKind::kSub, {});
  g.add(OpKind::kAdd, {});
  const auto s = list_schedule(g, FuSet{1, 1, 1, 1}, CoreLatencies{});
  EXPECT_EQ(s.makespan, 2 + 14u);  // serialized on the single adder
}

TEST(ListSchedule, NoResourceOversubscriptionAnyCycle) {
  Dataflow g;
  for (int i = 0; i < 10; ++i) g.add(OpKind::kDiv, {});
  const FuSet fus{1, 2, 2, 1};
  const auto s = list_schedule(g, fus, CoreLatencies{});
  std::map<Cycle, int> divs_per_cycle;
  for (auto st : s.start) ++divs_per_cycle[st];
  for (const auto& [cycle, count] : divs_per_cycle) EXPECT_LE(count, 2);
}

TEST(Dataflow, ForwardDependencyThrows) {
  Dataflow g;
  EXPECT_THROW(g.add(OpKind::kMul, {0}), Error);  // node 0 doesn't exist yet
}

TEST(Throughput, PipeliningOverlapsInstances) {
  // A chain mul->add; many instances should approach 1 instance/cycle on
  // pipelined units, far below the per-instance latency.
  Dataflow g;
  const auto a = g.add(OpKind::kMul, {});
  g.add(OpKind::kAdd, {a});
  const auto r = pipelined_throughput(g, FuSet{1, 1, 1, 1}, CoreLatencies{}, 16);
  EXPECT_EQ(r.latency, 9u + 14u);
  EXPECT_NEAR(r.interval, 1.0, 0.2);
}

// --- The Jacobi rotation dataflow (Section V.B / VI.A) ----------------------

TEST(RotationDataflow, MatchesPaperOpCounts) {
  const auto g = make_rotation_dataflow();
  int mul = 0, addsub = 0, div = 0, sqrt_ = 0;
  for (const auto& n : g.nodes()) {
    switch (n.kind) {
      case OpKind::kMul: ++mul; break;
      case OpKind::kAdd:
      case OpKind::kSub: ++addsub; break;
      case OpKind::kDiv: ++div; break;
      case OpKind::kSqrt: ++sqrt_; break;
    }
  }
  EXPECT_EQ(mul, 4);
  EXPECT_EQ(addsub, 8);
  EXPECT_EQ(div, 3);
  EXPECT_EQ(sqrt_, 3);
}

TEST(RotationDataflow, LatencyIsPipelineDepthOfSharedCores) {
  const auto g = make_rotation_dataflow();
  const auto s = list_schedule(g, FuSet{1, 2, 1, 1}, CoreLatencies{});
  // Critical path: sub(14) mul(9) add(14) sqrt(57) mul(9) add(14) div(57)
  // sqrt(57) = 231 cycles; scheduling may add small resource delays.
  EXPECT_GE(s.makespan, 231u);
  EXPECT_LE(s.makespan, 260u);
}

TEST(RotationDataflow, SustainsEightRotationsPer64Cycles) {
  // The paper's contract: the shared-core rotation unit starts 8 independent
  // rotations every 64 cycles, i.e. a steady-state interval <= 8 cycles.
  const auto g = make_rotation_dataflow();
  const auto r =
      pipelined_throughput(g, FuSet{1, 2, 1, 1}, CoreLatencies{}, 32);
  EXPECT_LE(r.interval, 8.0);
}

}  // namespace
}  // namespace hjsvd::hwsim

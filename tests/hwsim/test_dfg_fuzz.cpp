// Property/fuzz tests for the list scheduler: random DAGs scheduled onto
// random unit sets must respect dependencies and never oversubscribe any
// resource class in any cycle.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "hwsim/dfg.hpp"

namespace hjsvd::hwsim {
namespace {

using fp::CoreLatencies;
using fp::OpKind;

OpKind random_kind(Rng& rng) {
  switch (rng.bounded(5)) {
    case 0: return OpKind::kMul;
    case 1: return OpKind::kAdd;
    case 2: return OpKind::kSub;
    case 3: return OpKind::kDiv;
    default: return OpKind::kSqrt;
  }
}

Dataflow random_dag(Rng& rng, std::size_t nodes, double edge_prob_percent) {
  Dataflow g;
  for (std::size_t i = 0; i < nodes; ++i) {
    std::vector<std::size_t> deps;
    for (std::size_t d = 0; d < i; ++d)
      if (rng.bounded(100) < edge_prob_percent) deps.push_back(d);
    g.add(random_kind(rng), std::move(deps));
  }
  return g;
}

int resource_class_of(OpKind k) {
  switch (k) {
    case OpKind::kMul: return 0;
    case OpKind::kAdd:
    case OpKind::kSub: return 1;
    case OpKind::kDiv: return 2;
    case OpKind::kSqrt: return 3;
  }
  return 0;
}

class SchedulerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerFuzz, ScheduleIsValid) {
  Rng rng(GetParam());
  const CoreLatencies lat;
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t nodes = 2 + rng.bounded(60);
    const auto g = random_dag(rng, nodes, 5 + rng.bounded(25));
    const FuSet fus{static_cast<std::uint32_t>(1 + rng.bounded(3)),
                    static_cast<std::uint32_t>(1 + rng.bounded(3)),
                    static_cast<std::uint32_t>(1 + rng.bounded(2)),
                    static_cast<std::uint32_t>(1 + rng.bounded(2))};
    const Schedule s = list_schedule(g, fus, lat);

    // 1. Dependencies: a node starts only after all producers finish.
    for (std::size_t i = 0; i < g.size(); ++i) {
      for (std::size_t d : g.nodes()[i].deps)
        ASSERT_GE(s.start[i], s.finish[d]);
      ASSERT_EQ(s.finish[i], s.start[i] + lat.of(g.nodes()[i].kind));
    }
    // 2. Resources: per class, at most `count` issues per cycle (II = 1).
    std::map<std::pair<int, Cycle>, std::uint32_t> issues;
    for (std::size_t i = 0; i < g.size(); ++i)
      ++issues[{resource_class_of(g.nodes()[i].kind), s.start[i]}];
    const std::uint32_t caps[4] = {fus.mul, fus.add, fus.div, fus.sqrt};
    for (const auto& [key, count] : issues)
      ASSERT_LE(count, caps[key.first]);
    // 3. Makespan is the max finish.
    Cycle max_finish = 0;
    for (Cycle f : s.finish) max_finish = std::max(max_finish, f);
    ASSERT_EQ(s.makespan, max_finish);
  }
}

TEST_P(SchedulerFuzz, MoreUnitsNeverHurt) {
  Rng rng(GetParam() ^ 0xABCD);
  const CoreLatencies lat;
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = random_dag(rng, 2 + rng.bounded(40), 20);
    const Schedule narrow = list_schedule(g, FuSet{1, 1, 1, 1}, lat);
    const Schedule wide = list_schedule(g, FuSet{4, 4, 4, 4}, lat);
    ASSERT_LE(wide.makespan, narrow.makespan);
  }
}

TEST_P(SchedulerFuzz, MakespanAtLeastCriticalPathAndWorkBound) {
  Rng rng(GetParam() ^ 0x1234);
  const CoreLatencies lat;
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = random_dag(rng, 2 + rng.bounded(40), 15);
    const FuSet fus{1, 2, 1, 1};
    const Schedule s = list_schedule(g, fus, lat);
    // Work bound per class: ops / units issue cycles + final latency.
    std::uint64_t per_class[4] = {0, 0, 0, 0};
    for (const auto& node : g.nodes())
      ++per_class[resource_class_of(node.kind)];
    const std::uint32_t caps[4] = {fus.mul, fus.add, fus.div, fus.sqrt};
    for (int c = 0; c < 4; ++c) {
      if (per_class[c] == 0) continue;
      const Cycle issue_floor = (per_class[c] - 1) / caps[c];
      ASSERT_GE(s.makespan, issue_floor);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace hjsvd::hwsim

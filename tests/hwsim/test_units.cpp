// Tests for the hardware-simulation primitives: pipelined units, FIFOs,
// BRAM ports, memory channel.
#include <gtest/gtest.h>

#include "hwsim/bram.hpp"
#include "hwsim/clock.hpp"
#include "hwsim/fifo.hpp"
#include "hwsim/memory.hpp"
#include "hwsim/pipeline.hpp"

namespace hjsvd::hwsim {
namespace {

TEST(ClockDomain, ConvertsCyclesToSeconds) {
  ClockDomain clk{150e6};
  EXPECT_DOUBLE_EQ(clk.seconds(150'000'000), 1.0);
  EXPECT_DOUBLE_EQ(clk.seconds(150'000), 1e-3);
}

TEST(PipelinedUnit, FullyPipelinedIssuesEveryCycle) {
  PipelinedUnit u(9);  // multiplier latency, II = 1
  EXPECT_EQ(u.issue(0), 9u);
  EXPECT_EQ(u.issue(1), 10u);
  EXPECT_EQ(u.issue(2), 11u);
  EXPECT_EQ(u.issued(), 3u);
}

TEST(PipelinedUnit, RespectsInitiationInterval) {
  PipelinedUnit u(10, 4);
  EXPECT_EQ(u.issue(0), 10u);
  EXPECT_FALSE(u.can_issue(3));
  EXPECT_TRUE(u.can_issue(4));
  // Issuing "at 1" is deferred to cycle 4 by the II.
  EXPECT_EQ(u.issue(1), 14u);
}

TEST(PipelinedUnit, IdleGapsAllowed) {
  PipelinedUnit u(5);
  EXPECT_EQ(u.issue(0), 5u);
  EXPECT_EQ(u.issue(100), 105u);
  EXPECT_EQ(u.last_retire(), 105u);
}

TEST(Fifo, PushPopFifoOrder) {
  Fifo<int> f(4);
  EXPECT_TRUE(f.try_push(1));
  EXPECT_TRUE(f.try_push(2));
  int out = 0;
  EXPECT_TRUE(f.try_pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(f.try_pop(out));
  EXPECT_EQ(out, 2);
}

TEST(Fifo, FullStallsProducer) {
  Fifo<int> f(2);
  EXPECT_TRUE(f.try_push(1));
  EXPECT_TRUE(f.try_push(2));
  EXPECT_FALSE(f.try_push(3));
  EXPECT_EQ(f.push_stalls(), 1u);
  EXPECT_EQ(f.high_water(), 2u);
}

TEST(Fifo, EmptyStallsConsumer) {
  Fifo<int> f(2);
  int out = 0;
  EXPECT_FALSE(f.try_pop(out));
  EXPECT_EQ(f.pop_stalls(), 1u);
}

TEST(Fifo, ZeroCapacityThrows) { EXPECT_THROW(Fifo<int>(0), Error); }

TEST(Bram, CapacityCheck) {
  DualPortBram bram(1024);
  EXPECT_TRUE(bram.fits(1024));
  EXPECT_FALSE(bram.fits(1025));
}

TEST(Bram, OnePortPerCyclePerDirection) {
  DualPortBram bram(16);
  EXPECT_TRUE(bram.try_read(0));
  EXPECT_FALSE(bram.try_read(0));  // conflict in the same cycle
  EXPECT_TRUE(bram.try_write(0));  // independent write port
  EXPECT_TRUE(bram.try_read(1));   // next cycle is fine
  EXPECT_EQ(bram.read_conflicts(), 1u);
}

TEST(Memory, SerializesTransfersAtBandwidth) {
  MemoryChannelModel mem(MemoryConfig{8.0, 10});
  // 80 words at 8/cycle: busy 10 cycles, done at 10 + latency 10 = 20.
  EXPECT_EQ(mem.transfer(0, 80), 20u);
  // Second transfer queues behind the first's channel occupancy (10).
  EXPECT_EQ(mem.transfer(0, 16), 10u + 2u + 10u);
  EXPECT_EQ(mem.words_moved(), 96u);
  EXPECT_EQ(mem.transfers(), 2u);
}

TEST(Memory, StreamingCyclesCeil) {
  MemoryChannelModel mem(MemoryConfig{64.0, 0});
  EXPECT_EQ(mem.streaming_cycles(1), 1u);
  EXPECT_EQ(mem.streaming_cycles(64), 1u);
  EXPECT_EQ(mem.streaming_cycles(65), 2u);
}

TEST(Memory, ZeroBandwidthThrows) {
  EXPECT_THROW(MemoryChannelModel(MemoryConfig{0.0, 0}), Error);
}

}  // namespace
}  // namespace hjsvd::hwsim

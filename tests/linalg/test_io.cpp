// Tests for Matrix Market I/O.
#include "linalg/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/rng.hpp"
#include "linalg/generate.hpp"

namespace hjsvd {
namespace {

TEST(MatrixMarket, RoundTripsThroughStreams) {
  Rng rng(41);
  const Matrix a = random_gaussian(7, 5, rng);
  std::stringstream ss;
  write_matrix_market(ss, a);
  const Matrix b = read_matrix_market(ss);
  EXPECT_EQ(b.rows(), 7u);
  EXPECT_EQ(b.cols(), 5u);
  EXPECT_EQ(Matrix::max_abs_diff(a, b), 0.0);  // 17 digits: exact round trip
}

TEST(MatrixMarket, RoundTripsThroughFiles) {
  Rng rng(42);
  const Matrix a = random_gaussian(4, 6, rng);
  const std::string path = "/tmp/hjsvd_io_test.mtx";
  write_matrix_market_file(path, a);
  const Matrix b = read_matrix_market_file(path);
  EXPECT_EQ(Matrix::max_abs_diff(a, b), 0.0);
  std::remove(path.c_str());
}

TEST(MatrixMarket, ParsesCoordinateGeneral) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 4 3\n"
      "1 1 2.5\n"
      "3 2 -1.0\n"
      "2 4 7\n");
  const Matrix m = read_matrix_market(ss);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m(0, 0), 2.5);
  EXPECT_EQ(m(2, 1), -1.0);
  EXPECT_EQ(m(1, 3), 7.0);
  EXPECT_EQ(m(1, 1), 0.0);
}

TEST(MatrixMarket, ParsesCoordinateSymmetric) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 1.0\n"
      "2 1 5.0\n"
      "3 3 2.0\n");
  const Matrix m = read_matrix_market(ss);
  EXPECT_EQ(m(1, 0), 5.0);
  EXPECT_EQ(m(0, 1), 5.0);  // mirrored
  EXPECT_EQ(m(2, 2), 2.0);
}

TEST(MatrixMarket, RejectsUnsupportedFlavors) {
  std::stringstream complex_mtx(
      "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n");
  EXPECT_THROW(read_matrix_market(complex_mtx), Error);
  std::stringstream bad_banner("%%NotMatrixMarket matrix array real general\n");
  EXPECT_THROW(read_matrix_market(bad_banner), Error);
}

TEST(MatrixMarket, RejectsMalformedData) {
  std::stringstream truncated(
      "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(truncated), Error);
  std::stringstream out_of_range(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n");
  EXPECT_THROW(read_matrix_market(out_of_range), Error);
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/x.mtx"), Error);
}

}  // namespace
}  // namespace hjsvd

// Tests for the SVD quality metrics.
#include "linalg/residuals.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "linalg/kernels.hpp"

namespace hjsvd {
namespace {

TEST(Reconstruction, PerfectFactorizationHasZeroError) {
  // A = U diag(2,1) V^T with U = V = I.
  SvdResult svd;
  svd.singular_values = {2.0, 1.0};
  svd.u = Matrix::identity(2);
  svd.v = Matrix::identity(2);
  const Matrix a = Matrix::from_rows({{2, 0}, {0, 1}});
  EXPECT_NEAR(reconstruction_error(a, svd), 0.0, 1e-15);
}

TEST(Reconstruction, DetectsWrongFactorization) {
  SvdResult svd;
  svd.singular_values = {1.0, 1.0};
  svd.u = Matrix::identity(2);
  svd.v = Matrix::identity(2);
  const Matrix a = Matrix::from_rows({{2, 0}, {0, 1}});
  EXPECT_GT(reconstruction_error(a, svd), 0.1);
}

TEST(Reconstruction, RequiresVectors) {
  SvdResult svd;
  svd.singular_values = {1.0};
  EXPECT_THROW(reconstruction_error(Matrix(1, 1), svd), Error);
}

TEST(Orthogonality, IdentityIsPerfect) {
  EXPECT_EQ(orthogonality_error(Matrix::identity(4)), 0.0);
}

TEST(Orthogonality, ScaledColumnsDetected) {
  Matrix q = Matrix::identity(3);
  q(0, 0) = 2.0;
  EXPECT_NEAR(orthogonality_error(q), 3.0, 1e-15);  // 4 - 1
}

TEST(SingularValueError, IdenticalListsAreZero) {
  EXPECT_EQ(singular_value_error({3, 2, 1}, {3, 2, 1}), 0.0);
}

TEST(SingularValueError, NormalizedByLargest) {
  EXPECT_DOUBLE_EQ(singular_value_error({10, 1}, {10, 2}), 0.1);
}

TEST(SingularValueError, SizeMismatchThrows) {
  EXPECT_THROW(singular_value_error({1.0}, {1.0, 2.0}), Error);
}

TEST(SingularValueError, AllZeroIsZero) {
  EXPECT_EQ(singular_value_error({0, 0}, {0, 0}), 0.0);
}

TEST(SortDescending, Sorts) {
  std::vector<double> v = {1.0, 3.0, 2.0};
  sort_descending(v);
  EXPECT_EQ(v, (std::vector<double>{3.0, 2.0, 1.0}));
}

}  // namespace
}  // namespace hjsvd

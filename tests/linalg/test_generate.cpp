// Tests for the matrix generators.
#include "linalg/generate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/golub_kahan.hpp"
#include "linalg/kernels.hpp"
#include "linalg/residuals.hpp"

namespace hjsvd {
namespace {

TEST(Generate, UniformRespectsRange) {
  Rng rng(1);
  const Matrix m = random_uniform(20, 30, rng, -2.0, 3.0);
  for (double v : m.data()) {
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Generate, Deterministic) {
  Rng r1(42), r2(42);
  const Matrix a = random_gaussian(10, 10, r1);
  const Matrix b = random_gaussian(10, 10, r2);
  EXPECT_EQ(Matrix::max_abs_diff(a, b), 0.0);
}

TEST(Generate, WithSingularValuesPreservesFrobenius) {
  // ||A||_F^2 = sum of squared singular values, invariant under the random
  // orthogonal transforms.
  Rng rng(5);
  const std::vector<double> sv = {5.0, 3.0, 1.0, 0.5};
  const Matrix a = with_singular_values(8, 4, sv, rng);
  double expect = 0.0;
  for (double s : sv) expect += s * s;
  EXPECT_NEAR(frobenius_norm(a), std::sqrt(expect), 1e-10);
}

TEST(Generate, WithSingularValuesExactlyRecovered) {
  Rng rng(9);
  const std::vector<double> sv = {4.0, 2.0, 1.0};
  const Matrix a = with_singular_values(6, 3, sv, rng);
  const SvdResult ref = golub_kahan_svd(a);
  ASSERT_EQ(ref.singular_values.size(), 3u);
  EXPECT_NEAR(ref.singular_values[0], 4.0, 1e-10);
  EXPECT_NEAR(ref.singular_values[1], 2.0, 1e-10);
  EXPECT_NEAR(ref.singular_values[2], 1.0, 1e-10);
}

TEST(Generate, WithSingularValuesWrongCountThrows) {
  Rng rng(1);
  EXPECT_THROW(with_singular_values(4, 4, {1.0, 2.0}, rng), Error);
}

TEST(Generate, RankDeficientHasZeroTail) {
  Rng rng(3);
  const Matrix a = random_rank_deficient(10, 6, 3, rng);
  const SvdResult ref = golub_kahan_svd(a);
  ASSERT_EQ(ref.singular_values.size(), 6u);
  EXPECT_GT(ref.singular_values[2], 0.1);
  EXPECT_NEAR(ref.singular_values[3], 0.0, 1e-10);
  EXPECT_NEAR(ref.singular_values[5], 0.0, 1e-10);
}

TEST(Generate, ConditionedHitsKappa) {
  Rng rng(4);
  const double kappa = 1e6;
  const Matrix a = random_conditioned(12, 8, kappa, rng);
  const SvdResult ref = golub_kahan_svd(a);
  const double measured =
      ref.singular_values.front() / ref.singular_values.back();
  EXPECT_NEAR(measured / kappa, 1.0, 1e-6);
}

TEST(Generate, HilbertIsSymmetricAndIllConditioned) {
  const Matrix h = hilbert(6);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j) EXPECT_EQ(h(i, j), h(j, i));
  EXPECT_EQ(h(0, 0), 1.0);
  EXPECT_EQ(h(1, 2), 0.25);
  const SvdResult ref = golub_kahan_svd(h);
  EXPECT_GT(ref.singular_values.front() / ref.singular_values.back(), 1e6);
}

TEST(Generate, RandomOrthogonalPreservesNorms) {
  Rng rng(6);
  Matrix a = random_gaussian(10, 4, rng);
  const double before = frobenius_norm(a);
  apply_random_orthogonal_left(a, rng, 5);
  EXPECT_NEAR(frobenius_norm(a), before, 1e-10);
}

}  // namespace
}  // namespace hjsvd

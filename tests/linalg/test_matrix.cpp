// Tests for the dense column-major matrix type.
#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hjsvd {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix m(3, 2);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 2; ++c) EXPECT_EQ(m(r, c), 0.0);
}

TEST(Matrix, FromRowsLaysOutNaturally) {
  const Matrix m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 2), 3.0);
  EXPECT_EQ(m(1, 1), 5.0);
}

TEST(Matrix, FromRowsRaggedThrows) {
  EXPECT_THROW(Matrix::from_rows({{1, 2}, {3}}), Error);
}

TEST(Matrix, ColumnsAreContiguousViews) {
  Matrix m = Matrix::from_rows({{1, 2}, {3, 4}});
  auto c0 = m.col(0);
  EXPECT_EQ(c0[0], 1.0);
  EXPECT_EQ(c0[1], 3.0);
  c0[1] = 9.0;
  EXPECT_EQ(m(1, 0), 9.0);
}

TEST(Matrix, IdentityHasUnitDiagonal) {
  const Matrix i = Matrix::identity(4);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      EXPECT_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, TransposeRoundTrips) {
  const Matrix m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
  EXPECT_EQ(Matrix::max_abs_diff(t.transposed(), m), 0.0);
}

TEST(Matrix, MaxAbsDiff) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{1, 2}, {3, 4.5}});
  EXPECT_EQ(Matrix::max_abs_diff(a, b), 0.5);
}

TEST(Matrix, MaxAbsDiffShapeMismatchThrows) {
  EXPECT_THROW(Matrix::max_abs_diff(Matrix(2, 2), Matrix(2, 3)), Error);
}

TEST(Matmul, IdentityIsNeutral) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(Matrix::max_abs_diff(matmul(a, Matrix::identity(2)), a), 0.0);
  EXPECT_EQ(Matrix::max_abs_diff(matmul(Matrix::identity(3), a), a), 0.0);
}

TEST(Matmul, KnownProduct) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{5, 6}, {7, 8}});
  const Matrix c = matmul(a, b);
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(Matmul, RectangularShapes) {
  const Matrix a(3, 5);
  const Matrix b(5, 2);
  const Matrix c = matmul(a, b);
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 2u);
}

TEST(Matmul, InnerDimensionMismatchThrows) {
  EXPECT_THROW(matmul(Matrix(2, 3), Matrix(2, 3)), Error);
}

}  // namespace
}  // namespace hjsvd

// Algebraic property tests for the matrix kernels.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"

namespace hjsvd {
namespace {

class AlgebraProps : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Rng rng_{GetParam()};
  Matrix random(std::size_t r, std::size_t c) {
    return random_gaussian(r, c, rng_);
  }
};

TEST_P(AlgebraProps, MatmulIsAssociative) {
  const Matrix a = random(5, 7), b = random(7, 4), c = random(4, 6);
  const Matrix left = matmul(matmul(a, b), c);
  const Matrix right = matmul(a, matmul(b, c));
  EXPECT_LT(Matrix::max_abs_diff(left, right), 1e-12);
}

TEST_P(AlgebraProps, MatmulDistributesOverAddition) {
  const Matrix a = random(6, 5), b = random(5, 3), c = random(5, 3);
  Matrix sum(5, 3);
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < 5; ++i) sum(i, j) = b(i, j) + c(i, j);
  const Matrix left = matmul(a, sum);
  const Matrix ab = matmul(a, b);
  const Matrix ac = matmul(a, c);
  Matrix right(6, 3);
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < 6; ++i) right(i, j) = ab(i, j) + ac(i, j);
  EXPECT_LT(Matrix::max_abs_diff(left, right), 1e-12);
}

TEST_P(AlgebraProps, TransposeOfProduct) {
  const Matrix a = random(4, 6), b = random(6, 5);
  const Matrix lhs = matmul(a, b).transposed();
  const Matrix rhs = matmul(b.transposed(), a.transposed());
  EXPECT_LT(Matrix::max_abs_diff(lhs, rhs), 1e-13);
}

TEST_P(AlgebraProps, GramIsPositiveSemiDefinite) {
  const Matrix a = random(9, 6);
  const Matrix g = gram_full(a);
  // x^T G x = ||A x||^2 >= 0 for random probes.
  for (int probe = 0; probe < 20; ++probe) {
    Matrix x(6, 1);
    for (double& v : x.data()) v = rng_.gaussian();
    const Matrix gx = matmul(g, x);
    double quad = 0.0;
    for (std::size_t i = 0; i < 6; ++i) quad += x(i, 0) * gx(i, 0);
    EXPECT_GE(quad, -1e-10);
  }
}

TEST_P(AlgebraProps, FrobeniusIsOrthogonallyInvariant) {
  Matrix a = random(8, 5);
  const double before = frobenius_norm(a);
  apply_random_orthogonal_left(a, rng_, 6);
  EXPECT_NEAR(frobenius_norm(a), before, 1e-10 * (1.0 + before));
}

TEST_P(AlgebraProps, CauchySchwarzOnColumns) {
  const Matrix a = random(12, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) {
      const double lhs = dot(a.col(i), a.col(j)) * dot(a.col(i), a.col(j));
      const double rhs =
          squared_norm(a.col(i)) * squared_norm(a.col(j));
      EXPECT_LE(lhs, rhs * (1.0 + 1e-12));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraProps,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace hjsvd

// Tests for the vector/matrix kernels and convergence metrics.
#include "linalg/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/generate.hpp"

namespace hjsvd {
namespace {

TEST(Dot, Basic) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {4, 5, 6};
  EXPECT_EQ(dot(x, y), 32.0);
}

TEST(Dot, MismatchThrows) {
  const std::vector<double> x = {1, 2};
  const std::vector<double> y = {1};
  EXPECT_THROW(dot(x, y), Error);
}

TEST(SquaredNorm, Basic) {
  const std::vector<double> x = {3, 4};
  EXPECT_EQ(squared_norm(x), 25.0);
}

TEST(Frobenius, KnownValue) {
  const Matrix a = Matrix::from_rows({{3, 0}, {0, 4}});
  EXPECT_DOUBLE_EQ(frobenius_norm(a), 5.0);
}

TEST(Frobenius, ScaledAccumulationAvoidsOverflow) {
  Matrix a(1, 2);
  a(0, 0) = 1e200;
  a(0, 1) = 1e200;
  EXPECT_NEAR(frobenius_norm(a) / (std::sqrt(2.0) * 1e200), 1.0, 1e-12);
}

TEST(ColNorm, BitwiseSqrtOfSquaredNormInNormalRange) {
  // The fast path must not perturb existing results: whenever the naive
  // squared sum is a normal double, col_norm is bitwise sqrt(squared_norm).
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> x(1 + trial % 37);
    for (auto& v : x) v = rng.gaussian() * 100;
    const double naive = std::sqrt(squared_norm(x));
    EXPECT_EQ(col_norm(x), naive);
  }
}

TEST(ColNorm, GuardsAgainstSquaredOverflow) {
  // Regression: squared_norm(1e160-scale columns) overflows to inf, and the
  // unguarded sqrt turned every such singular value into inf.
  const std::vector<double> x = {1e160, 2e160, -3e160};
  EXPECT_TRUE(std::isinf(squared_norm(x)));
  const double n = col_norm(x);
  EXPECT_TRUE(std::isfinite(n));
  EXPECT_NEAR(n / (std::sqrt(14.0) * 1e160), 1.0, 1e-12);
}

TEST(ColNorm, GuardsAgainstSquaredUnderflow) {
  // Regression: squared_norm(1e-200-scale columns) underflows to 0 (or a
  // precision-losing subnormal) and the column looked like a zero singular
  // value despite being perfectly representable.
  const std::vector<double> x = {3e-200, 4e-200};
  EXPECT_EQ(squared_norm(x), 0.0);
  EXPECT_NEAR(col_norm(x) / 5e-200, 1.0, 1e-12);
}

TEST(ColNorm, ZeroAndEmpty) {
  EXPECT_EQ(col_norm(std::vector<double>{}), 0.0);
  EXPECT_EQ(col_norm(std::vector<double>{0.0, 0.0}), 0.0);
}

TEST(Gram, MatchesExplicitTransposeProduct) {
  Rng rng(2);
  const Matrix a = random_gaussian(12, 5, rng);
  const Matrix d = gram_full(a);
  const Matrix ref = matmul(a.transposed(), a);
  EXPECT_LT(Matrix::max_abs_diff(d, ref), 1e-12);
}

TEST(Gram, UpperLeavesLowerZero) {
  Rng rng(2);
  const Matrix a = random_gaussian(6, 4, rng);
  const Matrix d = gram_upper(a);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < i; ++j) EXPECT_EQ(d(i, j), 0.0);
}

TEST(Gram, DiagonalIsSquaredNorms) {
  Rng rng(8);
  const Matrix a = random_gaussian(9, 3, rng);
  const Matrix d = gram_upper(a);
  const auto norms = squared_col_norms(a);
  for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(d(j, j), norms[j]);
}

TEST(MeanAbsOffdiag, KnownValue) {
  const Matrix d = Matrix::from_rows({{1, 2, -4}, {0, 1, 6}, {0, 0, 1}});
  // Off-diagonals (upper): 2, -4, 6 -> mean |.| = 4.
  EXPECT_DOUBLE_EQ(mean_abs_offdiag(d), 4.0);
}

TEST(MeanAbsOffdiag, ZeroForDiagonal) {
  EXPECT_EQ(mean_abs_offdiag(Matrix::identity(5)), 0.0);
  EXPECT_EQ(mean_abs_offdiag(Matrix(1, 1)), 0.0);
}

TEST(MaxRelativeOffdiag, KnownValue) {
  const Matrix d = Matrix::from_rows({{10, 2}, {0, 5}});
  EXPECT_DOUBLE_EQ(max_relative_offdiag(d), 0.2);
}

TEST(MaxRelativeOffdiag, ZeroMatrix) {
  EXPECT_EQ(max_relative_offdiag(Matrix(3, 3)), 0.0);
}

TEST(Metrics, NonSquareThrows) {
  EXPECT_THROW(mean_abs_offdiag(Matrix(2, 3)), Error);
  EXPECT_THROW(max_relative_offdiag(Matrix(2, 3)), Error);
}

}  // namespace
}  // namespace hjsvd

// Tests for the runtime-dispatched SIMD kernel layer (linalg/simd/).
//
// The load-bearing property is the two-tier contract of simd.hpp:
//  * bit-identical tier: rotate_pair and rotation_hardware_batch produce
//    exactly the scalar reference bits at every dispatch level, for every
//    vector length (including non-multiple-of-lane tails), alignment, and
//    input scale;
//  * relaxed tier: dot_relaxed/squared_norm_relaxed are bitwise identical
//    *across levels* (the portable backend emulates the AVX2 reduction
//    order) and within the recursive-summation error bound of the exact
//    value, but not equal to the strict left-to-right kernels.
// Plus the dispatch plumbing itself, and engine-level end-to-end identity.
#include "linalg/simd/simd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "api/svd.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "fp/ops.hpp"
#include "linalg/generate.hpp"
#include "linalg/kernels.hpp"
#include "svd/rotation.hpp"

namespace hjsvd {
namespace {

/// Vector lengths covering empty input, sub-lane sizes, exact lane
/// multiples, every tail remainder, and larger sweeps.
const std::size_t kSizes[] = {0,  1,  2,  3,  4,   5,   7,  8,
                              15, 16, 17, 31, 33, 64, 257, 1000};

bool avx2_available() {
  return simd::compiled_with_avx2() && simd::cpu_has_avx2();
}

std::vector<simd::Level> available_levels() {
  std::vector<simd::Level> levels{simd::Level::kScalar};
  if (avx2_available()) levels.push_back(simd::Level::kAvx2);
  return levels;
}

/// Forces a dispatch level for one scope, restoring the previous one.
class LevelGuard {
 public:
  explicit LevelGuard(simd::Level level) : prev_(simd::set_level(level)) {}
  ~LevelGuard() { simd::set_level(prev_); }
  LevelGuard(const LevelGuard&) = delete;
  LevelGuard& operator=(const LevelGuard&) = delete;

 private:
  simd::Level prev_;
};

/// Gaussian data graded across ~300 orders of magnitude, so lane math sees
/// wildly mixed exponents (the shapes the prescale fix exists for).
std::vector<double> graded(std::size_t n, Rng& rng) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int e = static_cast<int>(rng.bounded(301)) - 150;
    x[i] = std::ldexp(rng.gaussian(), e);
  }
  return x;
}

void expect_matrix_bits(const Matrix& a, const Matrix& b,
                        const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  const auto da = a.data();
  const auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i)
    ASSERT_EQ(fp::to_bits(da[i]), fp::to_bits(db[i]))
        << what << " entry " << i;
}

void expect_result_bits(const SvdResult& a, const SvdResult& b,
                        const std::string& what) {
  ASSERT_EQ(a.sweeps, b.sweeps) << what;
  ASSERT_EQ(a.converged, b.converged) << what;
  ASSERT_EQ(a.singular_values.size(), b.singular_values.size()) << what;
  for (std::size_t i = 0; i < a.singular_values.size(); ++i)
    ASSERT_EQ(fp::to_bits(a.singular_values[i]),
              fp::to_bits(b.singular_values[i]))
        << what << " sigma[" << i << "]";
  expect_matrix_bits(a.u, b.u, what + " U");
  expect_matrix_bits(a.v, b.v, what + " V");
}

// ---- dispatch plumbing ---------------------------------------------------

TEST(SimdDispatch, LevelNames) {
  EXPECT_STREQ(simd::level_name(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::level_name(simd::Level::kAvx2), "avx2");
}

TEST(SimdDispatch, FallsBackToScalarWhenAvx2Unavailable) {
  if (avx2_available())
    GTEST_SKIP() << "AVX2 is available; fallback path not reachable here "
                    "(covered by the HJSVD_SIMD=OFF CI build)";
  // Without the vector backend the dispatcher must land on the portable
  // one, and forcing AVX2 must fail loudly instead of faulting later.
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  EXPECT_THROW(simd::set_level(simd::Level::kAvx2), Error);
  // ...and the failed set_level must not have changed anything.
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
}

TEST(SimdDispatch, SetLevelSwitchesAndRestores) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 unavailable";
  const simd::Level original = simd::active_level();
  const simd::Level prev = simd::set_level(simd::Level::kScalar);
  EXPECT_EQ(prev, original);
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  EXPECT_EQ(simd::set_level(simd::Level::kAvx2), simd::Level::kScalar);
  EXPECT_EQ(simd::active_level(), simd::Level::kAvx2);
  simd::set_level(original);
}

// ---- bit-identical tier: rotate_pair -------------------------------------

/// The scalar reference: both outputs from the original (x[r], y[r]), no
/// FMA, no reordering.  Every dispatch level must reproduce these bits.
void rotate_pair_reference(std::vector<double>& x, std::vector<double>& y,
                           double c, double s) {
  for (std::size_t r = 0; r < x.size(); ++r) {
    const double xr = x[r];
    const double yr = y[r];
    x[r] = xr * c - yr * s;
    y[r] = xr * s + yr * c;
  }
}

TEST(SimdRotatePair, BitIdenticalAllSizesAndLevels) {
  Rng rng(101);
  for (const std::size_t n : kSizes) {
    std::vector<double> x0(n), y0(n);
    for (auto& v : x0) v = rng.gaussian();
    for (auto& v : y0) v = rng.gaussian();
    const double angle = rng.gaussian();
    const double c = std::cos(angle);
    const double s = std::sin(angle);
    std::vector<double> xr = x0, yr = y0;
    rotate_pair_reference(xr, yr, c, s);
    for (const simd::Level level : available_levels()) {
      LevelGuard guard(level);
      std::vector<double> x = x0, y = y0;
      rotate_pair(x, y, c, s);
      for (std::size_t r = 0; r < n; ++r) {
        ASSERT_EQ(fp::to_bits(x[r]), fp::to_bits(xr[r]))
            << "n=" << n << " level=" << simd::level_name(level) << " r=" << r;
        ASSERT_EQ(fp::to_bits(y[r]), fp::to_bits(yr[r]))
            << "n=" << n << " level=" << simd::level_name(level) << " r=" << r;
      }
    }
  }
}

TEST(SimdRotatePair, BitIdenticalOnUnalignedSubspans) {
  // Column spans handed to the engines are arbitrary slices of the
  // column-major buffer; an offset-1 subspan defeats any 32-byte alignment
  // assumption in the vector loop.
  Rng rng(102);
  for (const std::size_t n : kSizes) {
    std::vector<double> x0(n + 1), y0(n + 1);
    for (auto& v : x0) v = rng.gaussian();
    for (auto& v : y0) v = rng.gaussian();
    const double c = 0.8;
    const double s = 0.6;
    std::vector<double> xtail(x0.begin() + 1, x0.end());
    std::vector<double> ytail(y0.begin() + 1, y0.end());
    rotate_pair_reference(xtail, ytail, c, s);
    for (const simd::Level level : available_levels()) {
      LevelGuard guard(level);
      std::vector<double> x = x0, y = y0;
      rotate_pair(std::span<double>(x).subspan(1),
                  std::span<double>(y).subspan(1), c, s);
      ASSERT_EQ(x[0], x0[0]);  // the element before the span is untouched
      ASSERT_EQ(y[0], y0[0]);
      for (std::size_t r = 0; r < n; ++r) {
        ASSERT_EQ(fp::to_bits(x[r + 1]), fp::to_bits(xtail[r]))
            << "n=" << n << " level=" << simd::level_name(level) << " r=" << r;
        ASSERT_EQ(fp::to_bits(y[r + 1]), fp::to_bits(ytail[r]))
            << "n=" << n << " level=" << simd::level_name(level) << " r=" << r;
      }
    }
  }
}

TEST(SimdRotatePair, BitIdenticalOnGradedInputs) {
  Rng rng(103);
  for (const std::size_t n : {7u, 33u, 257u}) {
    const std::vector<double> x0 = graded(n, rng);
    const std::vector<double> y0 = graded(n, rng);
    const double c = std::sqrt(0.5);
    const double s = std::sqrt(0.5);
    std::vector<double> xr = x0, yr = y0;
    rotate_pair_reference(xr, yr, c, s);
    for (const simd::Level level : available_levels()) {
      LevelGuard guard(level);
      std::vector<double> x = x0, y = y0;
      rotate_pair(x, y, c, s);
      for (std::size_t r = 0; r < n; ++r) {
        ASSERT_EQ(fp::to_bits(x[r]), fp::to_bits(xr[r]))
            << "n=" << n << " level=" << simd::level_name(level) << " r=" << r;
        ASSERT_EQ(fp::to_bits(y[r]), fp::to_bits(yr[r]))
            << "n=" << n << " level=" << simd::level_name(level) << " r=" << r;
      }
    }
  }
}

TEST(SimdRotatePair, MismatchedLengthsThrow) {
  std::vector<double> x(4), y(5);
  EXPECT_THROW(rotate_pair(x, y, 1.0, 0.0), Error);
}

// ---- bit-identical tier: binary32 rotate_pair ----------------------------

/// Scalar reference of the float overload (mixed-precision float phase):
/// same contract as the double kernel, 8 lanes per AVX2 register.
void rotate_pair_f32_reference(std::vector<float>& x, std::vector<float>& y,
                               float c, float s) {
  for (std::size_t r = 0; r < x.size(); ++r) {
    const float xr = x[r];
    const float yr = y[r];
    x[r] = xr * c - yr * s;
    y[r] = xr * s + yr * c;
  }
}

TEST(SimdRotatePairF32, BitIdenticalAllSizesAndLevels) {
  Rng rng(104);
  for (const std::size_t n : kSizes) {
    std::vector<float> x0(n), y0(n);
    for (auto& v : x0) v = static_cast<float>(rng.gaussian());
    for (auto& v : y0) v = static_cast<float>(rng.gaussian());
    const double angle = rng.gaussian();
    const float c = static_cast<float>(std::cos(angle));
    const float s = static_cast<float>(std::sin(angle));
    std::vector<float> xr = x0, yr = y0;
    rotate_pair_f32_reference(xr, yr, c, s);
    for (const simd::Level level : available_levels()) {
      LevelGuard guard(level);
      std::vector<float> x = x0, y = y0;
      rotate_pair(x, y, c, s);
      for (std::size_t r = 0; r < n; ++r) {
        ASSERT_EQ(fp::to_bits32(x[r]), fp::to_bits32(xr[r]))
            << "n=" << n << " level=" << simd::level_name(level) << " r=" << r;
        ASSERT_EQ(fp::to_bits32(y[r]), fp::to_bits32(yr[r]))
            << "n=" << n << " level=" << simd::level_name(level) << " r=" << r;
      }
    }
  }
}

TEST(SimdRotatePairF32, BitIdenticalOnUnalignedSubspans) {
  Rng rng(105);
  for (const std::size_t n : kSizes) {
    std::vector<float> x0(n + 1), y0(n + 1);
    for (auto& v : x0) v = static_cast<float>(rng.gaussian());
    for (auto& v : y0) v = static_cast<float>(rng.gaussian());
    const float c = 0.8f;
    const float s = 0.6f;
    std::vector<float> xtail(x0.begin() + 1, x0.end());
    std::vector<float> ytail(y0.begin() + 1, y0.end());
    rotate_pair_f32_reference(xtail, ytail, c, s);
    for (const simd::Level level : available_levels()) {
      LevelGuard guard(level);
      std::vector<float> x = x0, y = y0;
      rotate_pair(std::span<float>(x).subspan(1),
                  std::span<float>(y).subspan(1), c, s);
      ASSERT_EQ(x[0], x0[0]);
      ASSERT_EQ(y[0], y0[0]);
      for (std::size_t r = 0; r < n; ++r) {
        ASSERT_EQ(fp::to_bits32(x[r + 1]), fp::to_bits32(xtail[r]))
            << "n=" << n << " level=" << simd::level_name(level) << " r=" << r;
        ASSERT_EQ(fp::to_bits32(y[r + 1]), fp::to_bits32(ytail[r]))
            << "n=" << n << " level=" << simd::level_name(level) << " r=" << r;
      }
    }
  }
}

TEST(SimdRotatePairF32, MismatchedLengthsThrow) {
  std::vector<float> x(4), y(5);
  EXPECT_THROW(rotate_pair(x, y, 1.0f, 0.0f), Error);
}

// ---- bit-identical tier: rotation_hardware_batch -------------------------

/// Lane inputs mixing the interesting regimes: in-band random problems,
/// cov == 0 identity lanes, out-of-band huge/tiny scales that force the
/// per-lane prescale redo, and mixed-graded lanes.
struct BatchInputs {
  std::vector<double> njj, nii, cov;
};

BatchInputs make_batch(std::size_t count, Rng& rng) {
  BatchInputs in;
  in.njj.resize(count);
  in.nii.resize(count);
  in.cov.resize(count);
  for (std::size_t l = 0; l < count; ++l) {
    switch (l % 7) {
      case 0:  // cov == 0: identity lane
        in.njj[l] = std::abs(rng.gaussian()) + 0.5;
        in.nii[l] = std::abs(rng.gaussian()) + 0.5;
        in.cov[l] = 0.0;
        break;
      case 1:  // huge scale: squares overflow without prescaling
        in.njj[l] = 3e155;
        in.nii[l] = 1e155;
        in.cov[l] = (l % 2 ? 1.0 : -1.0) * 9e154;
        break;
      case 2:  // tiny scale: squares underflow without prescaling
        in.njj[l] = 3e-160;
        in.nii[l] = 1e-160;
        in.cov[l] = 1e-160;
        break;
      case 3:  // mixed grading across the band edge
        in.njj[l] = 1e155;
        in.nii[l] = 1.0;
        in.cov[l] = 1e-3;
        break;
      default:  // in-band random problems (the hot path)
        in.njj[l] = std::abs(rng.gaussian()) * 10 + 1e-6;
        in.nii[l] = std::abs(rng.gaussian()) * 10 + 1e-6;
        in.cov[l] = rng.gaussian() * 3;
        break;
    }
  }
  return in;
}

TEST(SimdRotationBatch, LaneBitsMatchScalarRotationAllCounts) {
  Rng rng(201);
  for (const std::size_t count : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u, 64u}) {
    const BatchInputs in = make_batch(count, rng);
    for (const simd::Level level : available_levels()) {
      LevelGuard guard(level);
      std::vector<double> t(count), c(count), s(count);
      std::vector<std::uint8_t> rotate(count);
      rotation_hardware_batch(in.njj, in.nii, in.cov, t, c, s, rotate);
      for (std::size_t l = 0; l < count; ++l) {
        const RotationParams ref =
            rotation_hardware(in.njj[l], in.nii[l], in.cov[l], fp::NativeOps{});
        ASSERT_EQ(fp::to_bits(t[l]), fp::to_bits(ref.t))
            << "count=" << count << " level=" << simd::level_name(level)
            << " lane=" << l << " njj=" << in.njj[l] << " nii=" << in.nii[l]
            << " cov=" << in.cov[l];
        ASSERT_EQ(fp::to_bits(c[l]), fp::to_bits(ref.cos)) << "lane=" << l;
        ASSERT_EQ(fp::to_bits(s[l]), fp::to_bits(ref.sin)) << "lane=" << l;
        ASSERT_EQ(rotate[l] != 0, ref.rotate) << "lane=" << l;
      }
    }
  }
}

TEST(SimdRotationBatch, NonFiniteLaneThrowsLowestFirst) {
  // The wrapper enforces the rotation non-finite contract before any lane
  // runs, reporting the lowest offending lane (mirrors svd_batch's
  // lowest-index error rule) regardless of backend lane order.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> njj = {2.0, 2.0, nan, 2.0, inf};
  std::vector<double> nii(5, 1.0);
  std::vector<double> cov(5, 0.5);
  std::vector<double> t(5), c(5), s(5);
  std::vector<std::uint8_t> rotate(5);
  for (const simd::Level level : available_levels()) {
    LevelGuard guard(level);
    try {
      rotation_hardware_batch(njj, nii, cov, t, c, s, rotate);
      FAIL() << "expected hjsvd::Error";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("lane 2"), std::string::npos)
          << e.what();
    }
  }
  // A NaN covariance alone must also trip it (the `cov == 0.0` early-out
  // regression), even in a lane that would otherwise be skipped.
  njj[2] = 2.0;
  njj[4] = 2.0;
  cov[3] = nan;
  try {
    rotation_hardware_batch(njj, nii, cov, t, c, s, rotate);
    FAIL() << "expected hjsvd::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("lane 3"), std::string::npos)
        << e.what();
  }
}

TEST(SimdRotationBatch, MismatchedSpansThrow) {
  std::vector<double> a(4), b(4), c4(4), t(4), c(4), s(3);
  std::vector<std::uint8_t> rotate(4);
  EXPECT_THROW(rotation_hardware_batch(a, b, c4, t, c, s, rotate), Error);
}

// ---- relaxed tier --------------------------------------------------------

TEST(SimdDotRelaxed, BitIdenticalAcrossLevels) {
  if (!avx2_available())
    GTEST_SKIP() << "single level only; nothing to cross-check";
  Rng rng(301);
  for (const std::size_t n : kSizes) {
    const std::vector<double> x = graded(n, rng);
    const std::vector<double> y = graded(n, rng);
    double scalar_dot = 0.0, scalar_sq = 0.0;
    {
      LevelGuard guard(simd::Level::kScalar);
      scalar_dot = dot_relaxed(x, y);
      scalar_sq = squared_norm_relaxed(x);
    }
    LevelGuard guard(simd::Level::kAvx2);
    ASSERT_EQ(fp::to_bits(dot_relaxed(x, y)), fp::to_bits(scalar_dot))
        << "n=" << n;
    ASSERT_EQ(fp::to_bits(squared_norm_relaxed(x)), fp::to_bits(scalar_sq))
        << "n=" << n;
  }
}

TEST(SimdDotRelaxed, WithinRecursiveSummationBound) {
  // |relaxed - exact| <= n * eps * sum|x_i y_i| — the standard bound any
  // reassociated summation satisfies.  Exact value via long double.
  Rng rng(302);
  for (const std::size_t n : kSizes) {
    std::vector<double> x(n), y(n);
    for (auto& v : x) v = rng.gaussian();
    for (auto& v : y) v = rng.gaussian();
    long double exact = 0.0L;
    double abs_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      exact += static_cast<long double>(x[i]) * y[i];
      abs_sum += std::abs(x[i] * y[i]);
    }
    const double relaxed = dot_relaxed(x, y);
    const double eps = std::numeric_limits<double>::epsilon();
    const double bound = (static_cast<double>(n) + 1.0) * eps * abs_sum;
    ASSERT_LE(std::abs(relaxed - static_cast<double>(exact)), bound + 1e-300)
        << "n=" << n;
  }
}

TEST(SimdDotRelaxed, EmptyAndStrictEdgeCases) {
  EXPECT_EQ(dot_relaxed(std::vector<double>{}, std::vector<double>{}), 0.0);
  // Sub-lane inputs never reach the split accumulator, so they agree with
  // the strict kernel exactly.
  const std::vector<double> x = {1.5, -2.25, 3.0};
  const std::vector<double> y = {2.0, 4.0, -1.0};
  EXPECT_EQ(dot_relaxed(x, y), dot(x, y));
  std::vector<double> a(4), b(3);
  EXPECT_THROW(dot_relaxed(a, b), Error);
}

TEST(SimdGramRelaxed, MatchesPerEntryDotRelaxed) {
  Rng rng(303);
  const Matrix a = random_gaussian(23, 9, rng);
  const Matrix d = gram_upper_relaxed(a);
  for (std::size_t i = 0; i < a.cols(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (j < i) {
        ASSERT_EQ(d(i, j), 0.0);
        continue;
      }
      ASSERT_EQ(fp::to_bits(d(i, j)),
                fp::to_bits(dot_relaxed(a.col(i), a.col(j))))
          << i << "," << j;
    }
}

// ---- engine-level end-to-end ---------------------------------------------

const SvdMethod kHestenesMethods[] = {
    SvdMethod::kModifiedHestenes,
    SvdMethod::kPlainHestenes,
    SvdMethod::kParallelHestenes,
    SvdMethod::kParallelModifiedHestenes,
    SvdMethod::kPipelinedModifiedHestenes,
};

TEST(SimdEngine, ResultsBitIdenticalAcrossLevelsAndThreads) {
  if (!avx2_available())
    GTEST_SKIP() << "single level only; nothing to cross-check";
  Rng rng(401);
  const Matrix a = random_gaussian(40, 24, rng);
  for (const SvdMethod method : kHestenesMethods) {
    SvdOptions opt;
    opt.method = method;
    opt.compute_u = true;
    opt.compute_v = true;
    SvdResult reference;
    {
      LevelGuard guard(simd::Level::kScalar);
      opt.threads = 1;
      reference = svd(a, opt);
    }
    for (const std::size_t threads : {1, 2, 4, 8}) {
      opt.threads = threads;
      LevelGuard guard(simd::Level::kAvx2);
      const SvdResult vec = svd(a, opt);
      expect_result_bits(reference, vec,
                         std::string(svd_method_name(method)) + " avx2 t" +
                             std::to_string(threads));
      simd::set_level(simd::Level::kScalar);
      const SvdResult sca = svd(a, opt);
      expect_result_bits(reference, sca,
                         std::string(svd_method_name(method)) + " scalar t" +
                             std::to_string(threads));
    }
  }
}

TEST(SimdEngineRelaxed, DeterministicAcrossLevelsAndThreads) {
  // The relaxed tier gives up bit-equality with the strict reference but
  // must stay deterministic: same bits at every dispatch level and thread
  // count, for every Hestenes-family engine.
  Rng rng(402);
  const Matrix a = random_gaussian(40, 24, rng);
  for (const SvdMethod method : kHestenesMethods) {
    SvdOptions opt;
    opt.method = method;
    opt.simd_relaxed = true;
    opt.compute_u = true;
    opt.compute_v = true;
    SvdResult reference;
    {
      LevelGuard guard(simd::Level::kScalar);
      opt.threads = 1;
      reference = svd(a, opt);
    }
    for (const simd::Level level : available_levels()) {
      for (const std::size_t threads : {1, 2, 4, 8}) {
        LevelGuard guard(level);
        opt.threads = threads;
        const SvdResult r = svd(a, opt);
        expect_result_bits(reference, r,
                           std::string(svd_method_name(method)) + " relaxed " +
                               simd::level_name(level) + " t" +
                               std::to_string(threads));
      }
    }
  }
}

TEST(SimdEngineRelaxed, AgreesWithStrictToAccuracyBound) {
  Rng rng(403);
  const Matrix a = random_gaussian(48, 32, rng);
  SvdOptions strict;
  strict.compute_u = false;
  strict.compute_v = false;
  SvdOptions relaxed = strict;
  relaxed.simd_relaxed = true;
  const SvdResult rs = svd(a, strict);
  const SvdResult rr = svd(a, relaxed);
  ASSERT_EQ(rs.singular_values.size(), rr.singular_values.size());
  const double sigma_max = rs.singular_values.empty() ? 1.0
                                                      : rs.singular_values[0];
  for (std::size_t i = 0; i < rs.singular_values.size(); ++i)
    ASSERT_NEAR(rs.singular_values[i], rr.singular_values[i],
                1e-10 * sigma_max)
        << "sigma[" << i << "]";
}

}  // namespace
}  // namespace hjsvd

// Observability layer tests: JSON validity of both serialized documents,
// span-nesting well-formedness per timeline, determinism of the
// engine-level counters/series across thread counts, and — the load-bearing
// guarantee — byte-identical SVD results with and without sinks attached.
#include "obs/guardrail.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "api/svd.hpp"
#include "arch/accelerator_sim.hpp"
#include "common/rng.hpp"
#include "fp/ops.hpp"
#include "linalg/generate.hpp"
#include "svd/block_hestenes.hpp"
#include "svd/hestenes.hpp"
#include "svd/parallel_sweep.hpp"
#include "svd/plain_hestenes.hpp"

namespace hjsvd {
namespace {

// --- Minimal strict JSON syntax checker (no external dependencies) --------
// Validates syntax only; structural assertions use TraceRecorder::snapshot()
// and MetricsRegistry's typed inspection API instead of a DOM.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_ + i])))
              return false;
          }
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }
  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

Matrix test_matrix(std::size_t m, std::size_t n, std::uint64_t seed = 7) {
  Rng rng(seed);
  return random_gaussian(m, n, rng);
}

/// Runs the pipelined engine with both sinks attached.
SvdResult traced_run(const Matrix& a, obs::TraceRecorder* trace,
                     obs::MetricsRegistry* metrics, std::size_t threads = 2,
                     std::size_t depth = 8) {
  HestenesConfig cfg;
  cfg.compute_u = true;
  cfg.compute_v = true;
  cfg.obs.trace = trace;
  cfg.obs.metrics = metrics;
  PipelinedSweepConfig pipe;
  pipe.threads = threads;
  pipe.queue_depth = depth;
  return pipelined_modified_hestenes_svd(a, cfg, pipe);
}

// --- JSON validity ---------------------------------------------------------

TEST(ObsJson, TraceDocumentIsValidJsonWithSchema) {
  obs::TraceRecorder trace;
  obs::MetricsRegistry metrics;
  traced_run(test_matrix(24, 16), &trace, &metrics);
  const std::string doc = trace.to_json();
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc.substr(0, 400);
  EXPECT_NE(doc.find("\"schema\": \"hjsvd.trace.v2\""), std::string::npos);
  EXPECT_NE(doc.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
}

TEST(ObsJson, MetricsDocumentIsValidJsonWithSchema) {
  obs::TraceRecorder trace;
  obs::MetricsRegistry metrics;
  traced_run(test_matrix(24, 16), &trace, &metrics);
  const std::string doc = metrics.to_json();
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc.substr(0, 400);
  EXPECT_NE(doc.find("\"schema\": \"hjsvd.metrics.v1\""), std::string::npos);
}

TEST(ObsJson, ArgsBuilderEscapesStrings) {
  const std::string json = obs::ArgsBuilder()
                               .add("key", std::string_view("a\"b\\c\n\t"))
                               .add("n", std::int64_t{-3})
                               .add("x", 1.5)
                               .str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
}

TEST(ObsJson, NonFiniteMetricSerializesAsNull) {
  obs::MetricsRegistry metrics;
  metrics.gauge_set("bad.gauge", "1", std::numeric_limits<double>::infinity());
  const std::string doc = metrics.to_json();
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
  EXPECT_NE(doc.find("null"), std::string::npos);
}

// --- Span structure --------------------------------------------------------

TEST(ObsTrace, RequiredSpanNamesPresent) {
  obs::TraceRecorder trace;
  traced_run(test_matrix(24, 16), &trace, nullptr);
  std::map<std::string, int> names;
  for (const auto& e : trace.snapshot()) ++names[e.name];
  EXPECT_GT(names["gram"], 0);
  EXPECT_GT(names["sweep"], 0);
  EXPECT_GT(names["generate"], 0);
  EXPECT_GT(names["update"], 0);
  EXPECT_GT(names["finalize"], 0);
}

TEST(ObsTrace, SpansNestWellFormedPerTimeline) {
  obs::TraceRecorder trace;
  obs::MetricsRegistry metrics;
  const Matrix a = test_matrix(32, 24);
  traced_run(a, &trace, &metrics);
  arch::AcceleratorConfig sim_cfg;
  sim_cfg.obs.trace = &trace;
  arch::simulate_accelerator(a, sim_cfg);

  struct SpanRec {
    double ts, end;
    std::string name;
  };
  std::map<std::pair<int, std::uint32_t>, std::vector<SpanRec>> timelines;
  for (const auto& e : trace.snapshot()) {
    if (e.ph != 'X') continue;
    timelines[{e.pid, e.tid}].push_back({e.ts_us, e.ts_us + e.dur_us, e.name});
  }
  ASSERT_FALSE(timelines.empty());
  constexpr double kEps = 1e-6;  // double round-off at the span boundaries
  for (auto& [key, spans] : timelines) {
    std::sort(spans.begin(), spans.end(), [](const SpanRec& x, const SpanRec& y) {
      return x.ts != y.ts ? x.ts < y.ts : x.end > y.end;
    });
    std::vector<double> stack;  // open span end times
    for (const auto& sp : spans) {
      EXPECT_GE(sp.end + kEps, sp.ts) << sp.name;
      while (!stack.empty() && stack.back() <= sp.ts + kEps) stack.pop_back();
      if (!stack.empty()) {
        // Overlapping spans on one timeline must nest, not interleave.
        EXPECT_LE(sp.end, stack.back() + kEps)
            << sp.name << " interleaves on timeline pid=" << key.first
            << " tid=" << key.second;
      }
      stack.push_back(sp.end);
    }
  }
}

// --- Counter tracks (trace schema v2) --------------------------------------

TEST(ObsTrace, PipelinedRunEmitsQueueCounterTrack) {
  obs::TraceRecorder trace;
  traced_run(test_matrix(24, 16), &trace, nullptr);
  std::size_t counters = 0;
  for (const auto& e : trace.snapshot()) {
    if (e.ph != 'C') continue;
    EXPECT_EQ(e.name, "pipeline.queue.occupancy");
    EXPECT_EQ(e.pid, obs::kSoftwarePid);
    EXPECT_GE(e.value, 0.0);
    ++counters;
  }
  // One sample per dispatched round over >= 1 sweep of a 16-column matrix.
  EXPECT_GE(counters, 15u);
  // Serialized counter events carry ph "C" and an args value Perfetto plots.
  const std::string doc = trace.to_json();
  EXPECT_NE(doc.find("\"ph\":\"C\",\"name\":\"pipeline.queue.occupancy\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"args\":{\"value\":"), std::string::npos);
}

TEST(ObsTrace, SimulatorEmitsFifoCounterTrack) {
  obs::TraceRecorder trace;
  arch::AcceleratorConfig cfg;
  cfg.obs.trace = &trace;
  const auto run = arch::simulate_accelerator(test_matrix(24, 16), cfg);
  double max_seen = 0.0;
  std::size_t counters = 0;
  for (const auto& e : trace.snapshot()) {
    if (e.ph != 'C') continue;
    EXPECT_EQ(e.name, "sim.param_fifo.occupancy");
    EXPECT_EQ(e.pid, obs::kSimulatorPid);
    max_seen = std::max(max_seen, e.value);
    ++counters;
  }
  EXPECT_EQ(counters, run.rotation_groups);
  // The counter track's peak is exactly the reported FIFO high-water.
  EXPECT_EQ(max_seen, static_cast<double>(run.param_fifo_high_water));
}

TEST(ObsTrace, SimulatorEventsUseSimulatorPid) {
  obs::TraceRecorder trace;
  arch::AcceleratorConfig cfg;
  cfg.obs.trace = &trace;
  arch::simulate_accelerator(test_matrix(24, 16), cfg);
  bool saw_sim = false;
  for (const auto& e : trace.snapshot()) {
    EXPECT_EQ(e.pid, obs::kSimulatorPid) << e.name;
    saw_sim = true;
  }
  EXPECT_TRUE(saw_sim);
}

// --- Determinism -----------------------------------------------------------

/// The documented thread-count-independent subset (docs/OBSERVABILITY.md).
const char* const kDeterministicMetrics[] = {
    "svd.rows",          "svd.cols",
    "svd.sweeps",        "svd.converged",
    "pipeline.queue.capacity",
};

TEST(ObsDeterminism, CountersIdenticalAcrossThreadCounts) {
  const Matrix a = test_matrix(40, 28);
  std::vector<obs::MetricsRegistry> regs(3);
  const std::size_t threads[] = {1, 2, 4};
  for (std::size_t i = 0; i < 3; ++i)
    traced_run(a, nullptr, &regs[i], threads[i]);
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(regs[0].counter("svd.rotations_applied"),
              regs[i].counter("svd.rotations_applied"));
    EXPECT_EQ(regs[0].counter("svd.rotations_skipped"),
              regs[i].counter("svd.rotations_skipped"));
    EXPECT_EQ(regs[0].counter("pipeline.params_issued"),
              regs[i].counter("pipeline.params_issued"));
    for (const char* name : kDeterministicMetrics)
      EXPECT_EQ(regs[0].gauge(name), regs[i].gauge(name)) << name;
    // Per-sweep convergence series are bitwise equal: same rotations in
    // the same order at every thread count.
    for (const char* series : {"svd.sweep.offdiag_frobenius",
                               "svd.sweep.max_rel_offdiag",
                               "svd.sweep.rotations", "svd.sweep.skipped"}) {
      const auto base = regs[0].series(series);
      const auto other = regs[i].series(series);
      ASSERT_EQ(base.size(), other.size()) << series;
      for (std::size_t k = 0; k < base.size(); ++k) {
        EXPECT_EQ(base[k].first, other[k].first) << series;
        EXPECT_EQ(fp::to_bits(base[k].second), fp::to_bits(other[k].second))
            << series << " point " << k;
      }
    }
  }
}

TEST(ObsDeterminism, ResultsByteIdenticalWithAndWithoutSinks) {
  const Matrix a = test_matrix(32, 24);
  // Sequential, blocked, and pipelined engines, plus the api front door.
  const auto expect_same = [](const SvdResult& plainr, const SvdResult& obsd) {
    ASSERT_EQ(plainr.singular_values.size(), obsd.singular_values.size());
    for (std::size_t i = 0; i < plainr.singular_values.size(); ++i)
      EXPECT_EQ(fp::to_bits(plainr.singular_values[i]),
                fp::to_bits(obsd.singular_values[i]));
    ASSERT_EQ(plainr.u.rows(), obsd.u.rows());
    ASSERT_EQ(plainr.v.rows(), obsd.v.rows());
    for (std::size_t r = 0; r < plainr.u.rows(); ++r)
      for (std::size_t c = 0; c < plainr.u.cols(); ++c)
        EXPECT_EQ(fp::to_bits(plainr.u(r, c)), fp::to_bits(obsd.u(r, c)));
    for (std::size_t r = 0; r < plainr.v.rows(); ++r)
      for (std::size_t c = 0; c < plainr.v.cols(); ++c)
        EXPECT_EQ(fp::to_bits(plainr.v(r, c)), fp::to_bits(obsd.v(r, c)));
    EXPECT_EQ(plainr.sweeps, obsd.sweeps);
    EXPECT_EQ(plainr.converged, obsd.converged);
  };

  HestenesConfig cfg;
  cfg.compute_u = true;
  cfg.compute_v = true;
  HestenesConfig with = cfg;
  obs::TraceRecorder trace;
  obs::MetricsRegistry metrics;
  with.obs.trace = &trace;
  with.obs.metrics = &metrics;

  expect_same(modified_hestenes_svd(a, cfg), modified_hestenes_svd(a, with));
  expect_same(parallel_modified_hestenes_svd(a, cfg),
              parallel_modified_hestenes_svd(a, with));
  expect_same(pipelined_modified_hestenes_svd(a, cfg),
              pipelined_modified_hestenes_svd(a, with));

  SvdOptions opt;
  opt.compute_u = true;
  opt.compute_v = true;
  opt.method = SvdMethod::kPipelinedModifiedHestenes;
  SvdOptions with_opt = opt;
  with_opt.trace = &trace;
  with_opt.metrics = &metrics;
  expect_same(svd(a, opt), svd(a, with_opt));
}

// --- Metrics registry semantics -------------------------------------------

TEST(ObsMetrics, TypedAccessorsRoundTrip) {
  obs::MetricsRegistry reg;
  reg.counter_add("c", "rotations", 3);
  reg.counter_add("c", "rotations", 4);
  reg.gauge_set("g", "s", 1.5);
  reg.gauge_set("g", "s", 2.5);
  reg.series_append("s", "1", 0.0, 10.0);
  reg.series_append("s", "1", 1.0, 20.0);
  EXPECT_EQ(reg.counter("c").value(), 7u);
  EXPECT_EQ(reg.gauge("g").value(), 2.5);
  const auto pts = reg.series("s");
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[1].second, 20.0);
  EXPECT_EQ(reg.unit("c").value(), "rotations");
  const auto names = reg.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(ObsMetrics, UnitAndTypeMismatchThrows) {
  obs::MetricsRegistry reg;
  reg.counter_add("x", "rotations", 1);
  EXPECT_THROW(reg.counter_add("x", "groups", 1), Error);
  EXPECT_THROW(reg.gauge_set("x", "rotations", 1.0), Error);
}

// --- Convergence-series unification ---------------------------------------

TEST(ObsMetrics, AllEnginesRecordSameConvergenceSeries) {
  const Matrix a = test_matrix(24, 16);
  // Engines that share the round-robin rotation order and arithmetic are
  // bitwise identical; every engine must at least record the same series
  // names with one point per sweep.
  HestenesConfig cfg;
  obs::MetricsRegistry seq, plain, par_plain, blocked, block_cfg_reg, piped;
  {
    HestenesConfig c = cfg;
    c.obs.metrics = &seq;
    modified_hestenes_svd(a, c);
  }
  {
    HestenesConfig c = cfg;
    c.obs.metrics = &plain;
    plain_hestenes_svd(a, c);
  }
  {
    HestenesConfig c = cfg;
    c.obs.metrics = &par_plain;
    parallel_plain_hestenes_svd(a, c, {});
  }
  {
    HestenesConfig c = cfg;
    c.obs.metrics = &blocked;
    parallel_modified_hestenes_svd(a, c);
  }
  {
    BlockHestenesConfig c;
    c.obs.metrics = &block_cfg_reg;
    block_hestenes_svd(a, c);
  }
  {
    HestenesConfig c = cfg;
    c.obs.metrics = &piped;
    pipelined_modified_hestenes_svd(a, c, {});
  }
  const obs::MetricsRegistry* regs[] = {&seq,     &plain,         &par_plain,
                                        &blocked, &block_cfg_reg, &piped};
  for (const auto* reg : regs) {
    for (const char* series : {"svd.sweep.offdiag_frobenius",
                               "svd.sweep.max_rel_offdiag",
                               "svd.sweep.rotations", "svd.sweep.skipped"}) {
      const auto pts = reg->series(series);
      ASSERT_FALSE(pts.empty()) << series;
      EXPECT_EQ(pts.size(), static_cast<std::size_t>(
                                reg->gauge("svd.sweeps").value()))
          << series;
    }
    EXPECT_TRUE(reg->counter("svd.rotations_applied").has_value());
    EXPECT_EQ(reg->gauge("svd.rows").value(), 24.0);
    EXPECT_EQ(reg->gauge("svd.cols").value(), 16.0);
  }
  // The bitwise-identical trio agrees point-for-point on the trajectory.
  const auto base = seq.series("svd.sweep.offdiag_frobenius");
  for (const auto* reg : {&blocked, &piped}) {
    const auto other = reg->series("svd.sweep.offdiag_frobenius");
    ASSERT_EQ(base.size(), other.size());
    for (std::size_t k = 0; k < base.size(); ++k)
      EXPECT_EQ(fp::to_bits(base[k].second), fp::to_bits(other[k].second));
  }
}

// --- Overhead guardrail predicate -----------------------------------------

TEST(ObsGuardrail, SymmetricInBothDirections) {
  // The historical bug: disabled 1.00s vs enabled 1.06s passed the old
  // one-sided check.  The symmetric predicate rejects a >5% gap regardless
  // of which side is slower.
  EXPECT_FALSE(obs::overhead_within(1.06, 1.00, 0.05));
  EXPECT_FALSE(obs::overhead_within(1.00, 1.06, 0.05));
  EXPECT_TRUE(obs::overhead_within(1.04, 1.00, 0.05));
  EXPECT_TRUE(obs::overhead_within(1.00, 1.04, 0.05));
  EXPECT_TRUE(obs::overhead_within(2.0, 2.0, 0.0));
}

TEST(ObsGuardrail, DegenerateTimingsFail) {
  EXPECT_FALSE(obs::overhead_within(0.0, 1.0, 0.05));
  EXPECT_FALSE(obs::overhead_within(1.0, -1.0, 0.05));
  EXPECT_FALSE(obs::overhead_within(1.0, 1.0, -0.1));
}

TEST(ObsGuardrail, OverheadFracIsSigned) {
  EXPECT_NEAR(obs::overhead_frac(1.1, 1.0), 0.1, 1e-12);
  EXPECT_NEAR(obs::overhead_frac(0.9, 1.0), -0.1, 1e-12);
  EXPECT_EQ(obs::overhead_frac(1.0, 0.0), 0.0);
}

// --- Run manifest ----------------------------------------------------------

TEST(ObsManifest, CarriesProvenanceAndSchemaVersions) {
  obs::RunManifest manifest;
  manifest.tool = "test_obs";
  manifest.config = "n=32 \"quoted\"";
  const std::string json = obs::manifest_json(manifest);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"tool\": \"test_obs\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\": \""), std::string::npos);
  EXPECT_NE(json.find("\"trace\": \"hjsvd.trace.v2\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\": \"hjsvd.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"report\": \"hjsvd.report.v1\""), std::string::npos);
  EXPECT_GE(obs::host_hardware_threads(), 1);
  EXPECT_STRNE(obs::build_git_sha(), "");
}

TEST(ObsMetrics, BatchLevelMetricsFromSvdBatch) {
  std::vector<Matrix> batch;
  for (std::uint64_t s = 0; s < 4; ++s) batch.push_back(test_matrix(12, 8, s));
  obs::TraceRecorder trace;
  obs::MetricsRegistry metrics;
  SvdOptions opt;
  opt.trace = &trace;
  opt.metrics = &metrics;
  const auto results = svd_batch(batch, opt, 2);
  EXPECT_EQ(results.size(), 4u);
  EXPECT_EQ(metrics.counter("batch.items").value(), 4u);
  // Per-item sinks are stripped: no engine-level metric may leak through.
  EXPECT_FALSE(metrics.counter("svd.rotations_applied").has_value());
  bool saw_batch_span = false;
  for (const auto& e : trace.snapshot())
    if (e.name == "svd_batch" || e.name == "item") saw_batch_span = true;
  EXPECT_TRUE(saw_batch_span);
}

}  // namespace
}  // namespace hjsvd

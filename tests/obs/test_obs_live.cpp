// Live-telemetry tests: flight-recorder ring semantics (drop-oldest order,
// exact drop counters, bounded memory), hjsvd.trace.v3 serialization,
// dump-concurrent-with-emission safety, the convergence/deadline watchdog,
// the SnapshotExporter's JSONL + Prometheus output, programmatic dump
// requests, and byte-identical SVD results with live telemetry attached.
#include "obs/live.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/svd.hpp"
#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"
#include "report/json.hpp"
#include "report/report.hpp"
#include "svd/obs_hooks.hpp"

namespace hjsvd::obs {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed on scope exit.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_(fs::temp_directory_path() /
              ("hjsvd_live_" + name + "_" +
               std::to_string(static_cast<std::uint64_t>(
                   std::chrono::steady_clock::now().time_since_epoch()
                       .count())))) {
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

// --- Flight-recorder ring --------------------------------------------------

TEST(TraceRing, UnboundedRecorderKeepsV2Contract) {
  TraceRecorder rec;
  EXPECT_FALSE(rec.flight_recorder());
  EXPECT_EQ(rec.ring_capacity(), 0u);
  const auto tid = rec.register_thread("main");
  for (int i = 0; i < 100; ++i)
    rec.emit_instant(tid, "t", "e" + std::to_string(i), rec.now_us());
  EXPECT_EQ(rec.buffered_events(tid), 100u);
  EXPECT_EQ(rec.dropped_events_total(), 0u);
  const report::JsonValue doc = report::parse_json(rec.to_json());
  EXPECT_EQ(doc.string_or("schema"), kTraceSchema);
  // v2 documents must not leak ring metadata.
  EXPECT_EQ(doc.at("otherData").find("flight_recorder"), nullptr);
}

TEST(TraceRing, DropsOldestWithExactCounters) {
  TraceRecorder rec(/*ring_capacity_events=*/4);
  EXPECT_TRUE(rec.flight_recorder());
  const auto tid = rec.register_thread("main");
  for (int i = 0; i < 10; ++i) {
    rec.emit_instant(tid, "t", "e" + std::to_string(i), rec.now_us());
    EXPECT_LE(rec.buffered_events(tid), 4u);  // cap is never exceeded
  }
  EXPECT_EQ(rec.buffered_events(tid), 4u);
  EXPECT_EQ(rec.dropped_events(tid), 6u);
  EXPECT_EQ(rec.dropped_events_total(), 6u);
  // Drop-oldest is deterministic: exactly the newest 4 events survive, in
  // emission order.
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "e6");
  EXPECT_EQ(events[1].name, "e7");
  EXPECT_EQ(events[2].name, "e8");
  EXPECT_EQ(events[3].name, "e9");
}

TEST(TraceRing, PerThreadRingsAndDropCountersAreIndependent) {
  TraceRecorder rec(/*ring_capacity_events=*/3);
  const auto t0 = rec.register_thread("a");
  const auto t1 = rec.register_thread("b");
  for (int i = 0; i < 8; ++i) rec.emit_instant(t0, "t", "x", rec.now_us());
  for (int i = 0; i < 2; ++i) rec.emit_instant(t1, "t", "y", rec.now_us());
  EXPECT_EQ(rec.dropped_events(t0), 5u);
  EXPECT_EQ(rec.dropped_events(t1), 0u);
  EXPECT_EQ(rec.buffered_events(t0), 3u);
  EXPECT_EQ(rec.buffered_events(t1), 2u);
  EXPECT_EQ(rec.dropped_events_total(), 5u);
}

TEST(TraceRing, SerializesV3WithRingMetadata) {
  TraceRecorder rec(/*ring_capacity_events=*/2);
  const auto t0 = rec.register_thread("a");
  const auto t1 = rec.register_thread("b");
  for (int i = 0; i < 5; ++i) rec.emit_instant(t0, "t", "x", rec.now_us());
  rec.emit_instant(t1, "t", "y", rec.now_us());
  const report::JsonValue doc = report::parse_json(rec.to_json());
  EXPECT_EQ(doc.string_or("schema"), kTraceSchemaV3);
  const report::JsonValue& other = doc.at("otherData");
  EXPECT_TRUE(other.at("flight_recorder").as_bool());
  EXPECT_EQ(other.number_or("ring_capacity_events", -1.0), 2.0);
  EXPECT_EQ(other.number_or("dropped_events_total", -1.0), 3.0);
  const auto& by_tid = other.at("dropped_events_by_tid").as_array();
  ASSERT_EQ(by_tid.size(), 2u);
  EXPECT_EQ(by_tid[0].as_number(), 3.0);
  EXPECT_EQ(by_tid[1].as_number(), 0.0);
  // The ring holds the 2 newest events of t0 plus t1's single event.
  EXPECT_EQ(doc.at("traceEvents").as_array().size(),
            3u + 2u /* thread_name metadata */ + 2u /* process_name */);
}

TEST(TraceRing, DumpConcurrentWithEmissionYieldsValidJson) {
  TraceRecorder rec(/*ring_capacity_events=*/64);
  const auto tid = rec.register_thread("emitter");
  std::atomic<bool> stop{false};
  std::thread emitter([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      rec.emit_instant(tid, "t", "e" + std::to_string(i++), rec.now_us());
      rec.emit_counter(tid, "t", "occ", rec.now_us(),
                       static_cast<double>(i % 7));
    }
  });
  // Every mid-emission dump must parse as a complete, well-formed document
  // with consistent ring metadata.
  for (int round = 0; round < 50; ++round) {
    const report::JsonValue doc = report::parse_json(rec.to_json());
    EXPECT_EQ(doc.string_or("schema"), kTraceSchemaV3);
    const auto& by_tid = doc.at("otherData").at("dropped_events_by_tid")
                             .as_array();
    double sum = 0.0;
    for (const auto& d : by_tid) sum += d.as_number();
    EXPECT_EQ(sum, doc.at("otherData").number_or("dropped_events_total", -1));
  }
  stop.store(true);
  emitter.join();
}

// --- Watchdog --------------------------------------------------------------

TEST(Watchdog, FlagsStallAfterConsecutiveFlatSweeps) {
  Watchdog wd({.deadline_s = 0.0, .stall_sweeps = 3});
  wd.on_sweep(1.0);  // first sweep: no predecessor, never counts
  wd.on_sweep(0.5);
  wd.on_sweep(0.5);  // flat 1
  wd.on_sweep(0.5);  // flat 2
  EXPECT_FALSE(wd.stalled());
  wd.on_sweep(0.6);  // flat 3 (increase counts as non-improving)
  EXPECT_TRUE(wd.stalled());
  EXPECT_EQ(wd.stall_events(), 1u);
  EXPECT_EQ(wd.sweeps_observed(), 5u);
}

TEST(Watchdog, StrictDecreaseResetsTheWindow) {
  Watchdog wd({.deadline_s = 0.0, .stall_sweeps = 2});
  wd.on_sweep(1.0);
  wd.on_sweep(1.0);   // flat 1
  wd.on_sweep(0.9);   // improvement resets
  wd.on_sweep(0.9);   // flat 1
  EXPECT_FALSE(wd.stalled());
  wd.on_sweep(0.8);
  EXPECT_FALSE(wd.stalled());
  EXPECT_EQ(wd.stall_events(), 0u);
}

TEST(Watchdog, StallVerdictIsStickyAndEpisodesRearm) {
  Watchdog wd({.deadline_s = 0.0, .stall_sweeps = 2});
  wd.on_sweep(1.0);
  wd.on_sweep(1.0);
  wd.on_sweep(1.0);  // episode 1 flagged
  EXPECT_TRUE(wd.stalled());
  EXPECT_EQ(wd.stall_events(), 1u);
  wd.on_sweep(0.5);  // improvement ends the episode, verdict stays sticky
  EXPECT_TRUE(wd.stalled());
  wd.on_sweep(0.5);
  wd.on_sweep(0.5);  // episode 2
  EXPECT_EQ(wd.stall_events(), 2u);
}

TEST(Watchdog, NanCountsAsNonImproving) {
  Watchdog wd({.deadline_s = 0.0, .stall_sweeps = 2});
  const double nan = std::numeric_limits<double>::quiet_NaN();
  wd.on_sweep(1.0);
  wd.on_sweep(nan);
  wd.on_sweep(nan);
  EXPECT_TRUE(wd.stalled());
}

TEST(Watchdog, DeadlineOverrunIsFlaggedAndSticky) {
  Watchdog wd({.deadline_s = 0.01, .stall_sweeps = 3});
  EXPECT_FALSE(wd.deadline_exceeded());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  wd.check_deadline();
  EXPECT_TRUE(wd.deadline_exceeded());
  wd.check_deadline();  // idempotent once flagged
  EXPECT_TRUE(wd.deadline_exceeded());
}

TEST(Watchdog, ZeroDeadlineNeverFires) {
  Watchdog wd({.deadline_s = 0.0, .stall_sweeps = 3});
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  wd.check_deadline();
  EXPECT_FALSE(wd.deadline_exceeded());
}

// The per-sweep hook polls a deadline-only watchdog (ObsContext::deadline)
// without feeding it convergence progress: the wall clock is checked, but
// no sweep is observed and no stall window advances.
TEST(Watchdog, DeadlinePollerIsCheckedPerSweepWithoutConvergenceFeed) {
  Watchdog wd({.deadline_s = 0.005, .stall_sweeps = 2});
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  detail::record_sweep_metrics(/*metrics=*/nullptr, /*watchdog=*/nullptr,
                               /*deadline=*/&wd, /*numerics=*/nullptr,
                               /*sweep=*/0, /*offdiag_frob=*/1.0,
                               /*max_rel_offdiag=*/1.0, /*rotations=*/1,
                               /*skipped=*/0);
  EXPECT_TRUE(wd.deadline_exceeded());
  EXPECT_EQ(wd.sweeps_observed(), 0u);  // poll only, no on_sweep feed
  EXPECT_FALSE(wd.stalled());

  // An aliased pointer (watchdog == deadline) is not polled twice and the
  // convergence feed still runs once per sweep.
  Watchdog both({.deadline_s = 0.005, .stall_sweeps = 2});
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  detail::record_sweep_metrics(/*metrics=*/nullptr, /*watchdog=*/&both,
                               /*deadline=*/&both, /*numerics=*/nullptr,
                               /*sweep=*/0, /*offdiag_frob=*/1.0,
                               /*max_rel_offdiag=*/1.0, /*rotations=*/1,
                               /*skipped=*/0);
  EXPECT_TRUE(both.deadline_exceeded());
  EXPECT_EQ(both.sweeps_observed(), 1u);
}

// Regression: svd_batch used to poll --deadline-s only *between* items, so
// one long matrix overran the budget unbounded.  The deadline check is now
// threaded into the per-sweep hook of the in-flight item; the trace proves
// it — the watchdog.deadline instant must land well inside the first item
// span (one sweep in), not at its very end where the old between-items poll
// sat.
TEST(Watchdog, BatchDeadlineIsPolledInsideAnInFlightItem) {
  Rng rng(20260808);
  std::vector<Matrix> batch;
  batch.push_back(random_gaussian(128, 96, rng));

  TraceRecorder trace;
  MetricsRegistry metrics;
  Watchdog wd({.deadline_s = 1e-4, .stall_sweeps = 3}, &trace, &metrics);
  SvdOptions opt;
  opt.trace = &trace;
  opt.metrics = &metrics;
  opt.watchdog = &wd;
  svd_batch(batch, opt, /*threads=*/1);
  ASSERT_TRUE(wd.deadline_exceeded());
  if (!kEnabled) return;  // without obs there is no trace to interrogate

  double instant_ts = -1.0;
  double item_ts = -1.0, item_end = -1.0;
  for (const TraceRecorder::Event& e : trace.snapshot()) {
    if (e.ph == 'i' && e.name == "watchdog.deadline" && instant_ts < 0.0)
      instant_ts = e.ts_us;
    if (e.ph == 'X' && e.name == "item" && item_ts < 0.0) {
      item_ts = e.ts_us;
      item_end = e.ts_us + e.dur_us;
    }
  }
  ASSERT_GE(instant_ts, 0.0);
  ASSERT_GE(item_ts, 0.0);
  // The 0.1 ms budget expires during the first of ~10 sweeps; the flag must
  // fire in the first half of the item, far from the end-of-item poll.
  EXPECT_GE(instant_ts, item_ts);
  EXPECT_LT(instant_ts, item_ts + 0.5 * (item_end - item_ts));
}

TEST(Watchdog, PublishesMetricsAndInstantEvents) {
  TraceRecorder trace;
  MetricsRegistry metrics;
  Watchdog wd({.deadline_s = 0.0, .stall_sweeps = 2}, &trace, &metrics);
  wd.on_sweep(1.0);
  wd.on_sweep(1.0);
  wd.on_sweep(1.0);
  const report::JsonValue doc = report::parse_json(metrics.to_json());
  bool saw_stalled = false, saw_events = false;
  for (const auto& m : doc.at("metrics").as_array()) {
    if (m.string_or("name") == "obs.watchdog.stalled") {
      saw_stalled = true;
      EXPECT_EQ(m.number_or("value", -1.0), 1.0);
    }
    if (m.string_or("name") == "obs.watchdog.stall_events") {
      saw_events = true;
      EXPECT_EQ(m.number_or("value", -1.0), 1.0);
    }
  }
  EXPECT_TRUE(saw_stalled);
  EXPECT_TRUE(saw_events);
  bool saw_instant = false;
  for (const auto& e : trace.snapshot())
    if (e.ph == 'i' && e.name == "watchdog.stall") saw_instant = true;
  EXPECT_TRUE(saw_instant);
}

// --- SnapshotExporter ------------------------------------------------------

TEST(SnapshotExporter, WritesValidMonotoneJsonl) {
  const ScratchDir dir("jsonl");
  TraceRecorder trace(/*ring_capacity_events=*/128);
  MetricsRegistry metrics;
  metrics.counter_add("test.work", "items", 1);
  {
    SnapshotExporter exporter({.dir = dir.str(),
                               .interval = std::chrono::milliseconds(5)},
                              &trace, &metrics);
    for (int i = 0; i < 5; ++i) {
      metrics.counter_add("test.work", "items", 1);
      metrics.gauge_set("test.level", "units", static_cast<double>(i));
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    exporter.stop();
    EXPECT_GE(exporter.samples(), 1u);
  }
  const auto lines = read_lines(dir.str() + "/snapshots.jsonl");
  ASSERT_GE(lines.size(), 1u);
  std::int64_t last_seq = -1;
  double last_elapsed = -1.0, last_counter = -1.0;
  for (const std::string& line : lines) {
    const report::JsonValue snap = report::parse_json(line);
    EXPECT_EQ(snap.string_or("schema"), kSnapshotsSchema);
    const auto seq = static_cast<std::int64_t>(snap.number_or("seq", -1.0));
    EXPECT_GT(seq, last_seq);  // strictly increasing
    last_seq = seq;
    const double elapsed = snap.number_or("elapsed_us", -1.0);
    EXPECT_GE(elapsed, last_elapsed);  // non-decreasing
    last_elapsed = elapsed;
    EXPECT_GE(snap.number_or("dropped_events", -1.0), 0.0);
    const double counter = snap.at("counters").number_or("test.work", -1.0);
    EXPECT_GE(counter, last_counter);  // counters are monotone
    last_counter = counter;
  }
  EXPECT_GE(last_counter, 1.0);
}

TEST(SnapshotExporter, WritesPrometheusExposition) {
  const ScratchDir dir("prom");
  MetricsRegistry metrics;
  metrics.counter_add("svd.rotations.applied", "rotations", 42);
  metrics.gauge_set("svd.matrix.n", "cols", 64.0);
  {
    SnapshotExporter exporter({.dir = dir.str(),
                               .interval = std::chrono::milliseconds(500)},
                              nullptr, &metrics);
    exporter.stop();  // the final sample writes the exposition file
  }
  std::ifstream prom(dir.str() + "/metrics.prom");
  ASSERT_TRUE(prom.is_open());
  std::ostringstream buf;
  buf << prom.rdbuf();
  const std::string text = buf.str();
  EXPECT_NE(text.find("# TYPE hjsvd_svd_rotations_applied counter"),
            std::string::npos);
  EXPECT_NE(text.find("hjsvd_svd_rotations_applied 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hjsvd_svd_matrix_n gauge"), std::string::npos);
}

TEST(SnapshotExporter, ServicesProgrammaticDumpRequests) {
  const ScratchDir dir("dump");
  TraceRecorder trace(/*ring_capacity_events=*/32);
  MetricsRegistry metrics;
  const auto tid = trace.register_thread("main");
  for (int i = 0; i < 50; ++i)
    trace.emit_instant(tid, "t", "e", trace.now_us());
  metrics.counter_add("test.work", "items", 7);
  std::uint64_t dumps = 0;
  {
    SnapshotExporter exporter({.dir = dir.str(),
                               .interval = std::chrono::milliseconds(5)},
                              &trace, &metrics);
    exporter.request_dump();
    // The request is serviced on the next tick; stop() also drains any
    // still-pending request, so the dump exists by the end of this block.
    exporter.stop();
    dumps = exporter.dumps();
  }
  ASSERT_GE(dumps, 1u);
  const report::JsonValue trace_dump = report::parse_json_file(
      SnapshotExporter::dump_trace_path(dir.str(), 1));
  EXPECT_EQ(trace_dump.string_or("schema"), kTraceSchemaV3);
  EXPECT_EQ(trace_dump.at("otherData").number_or("dropped_events_total", -1),
            18.0);
  const report::JsonValue metrics_dump = report::parse_json_file(
      SnapshotExporter::dump_metrics_path(dir.str(), 1));
  EXPECT_EQ(metrics_dump.string_or("schema"), kMetricsSchema);
}

TEST(SnapshotExporter, IgnoresDumpRequestsFromBeforeConstruction) {
  const ScratchDir dir("stale");
  MetricsRegistry metrics;
  dump_now();  // a stale request from "another run"
  {
    SnapshotExporter exporter({.dir = dir.str(),
                               .interval = std::chrono::milliseconds(500)},
                              nullptr, &metrics);
    exporter.stop();
    EXPECT_EQ(exporter.dumps(), 0u);
  }
}

// Regression: a dump_now()/SIGUSR1 arriving after an explicit stop() — the
// sampler thread is gone, the final sample has been written — used to be
// lost forever: the destructor's second stop() early-returned, and the next
// exporter deliberately skips requests predating its construction.  The
// repeated-stop path must service such a request once.
TEST(SnapshotExporter, ServicesDumpRequestArrivingAfterStop) {
  const ScratchDir dir("late_dump");
  TraceRecorder trace;
  MetricsRegistry metrics;
  const auto tid = trace.register_thread("main");
  trace.emit_instant(tid, "t", "e", trace.now_us());
  metrics.counter_add("test.work", "items", 3);
  std::uint64_t dumps = 0;
  {
    SnapshotExporter exporter({.dir = dir.str(),
                               .interval = std::chrono::milliseconds(500)},
                              &trace, &metrics);
    exporter.stop();
    EXPECT_EQ(exporter.dumps(), 0u);
    // The race window: request lands between stop() and destruction.
    dump_now();
    exporter.stop();  // the destructor takes this same path
    dumps = exporter.dumps();
  }
  ASSERT_EQ(dumps, 1u);
  const report::JsonValue trace_dump = report::parse_json_file(
      SnapshotExporter::dump_trace_path(dir.str(), 1));
  EXPECT_EQ(trace_dump.string_or("schema"), kTraceSchema);
  const report::JsonValue metrics_dump = report::parse_json_file(
      SnapshotExporter::dump_metrics_path(dir.str(), 1));
  EXPECT_EQ(metrics_dump.string_or("schema"), kMetricsSchema);
}

// --- End-to-end: live telemetry never changes the arithmetic ---------------

TEST(LiveTelemetry, ResultsAreByteIdenticalWithAndWithoutLiveSinks) {
  Rng rng(20240808);
  const Matrix a = random_gaussian(48, 32, rng);
  SvdOptions plain;
  plain.compute_u = true;
  plain.compute_v = true;
  const SvdResult bare = svd(a, plain);

  const ScratchDir dir("e2e");
  TraceRecorder trace(/*ring_capacity_events=*/256);
  MetricsRegistry metrics;
  Watchdog watchdog({.deadline_s = 3600.0, .stall_sweeps = 3}, &trace,
                    &metrics);
  SvdOptions live = plain;
  live.trace = &trace;
  live.metrics = &metrics;
  live.watchdog = &watchdog;
  SvdResult observed;
  {
    SnapshotExporter exporter({.dir = dir.str(),
                               .interval = std::chrono::milliseconds(2)},
                              &trace, &metrics, &watchdog);
    observed = svd(a, live);
    exporter.stop();
  }
  ASSERT_EQ(bare.singular_values.size(), observed.singular_values.size());
  for (std::size_t i = 0; i < bare.singular_values.size(); ++i)
    EXPECT_EQ(bare.singular_values[i], observed.singular_values[i]);
  EXPECT_EQ(bare.sweeps, observed.sweeps);
  // The engines only feed the watchdog when the obs layer is compiled in;
  // with HJSVD_OBS=OFF the run must still be byte-identical (above), it
  // just observes nothing.
  if (obs::kEnabled) EXPECT_GE(watchdog.sweeps_observed(), bare.sweeps);
  EXPECT_FALSE(watchdog.deadline_exceeded());
  // The run's artifacts pass the same structural checks the scripts apply.
  const auto lines = read_lines(dir.str() + "/snapshots.jsonl");
  EXPECT_GE(lines.size(), 1u);
  const report::JsonValue doc = report::parse_json(trace.to_json());
  EXPECT_EQ(doc.string_or("schema"), kTraceSchemaV3);
}

}  // namespace
}  // namespace hjsvd::obs

// hjsvd.serve.v1 protocol and SvdServer contracts: malformed-frame fuzz,
// queue-time deadline expiry, deterministic overload rejection, duplicate
// id handling, multi-client thread-count bit identity, and the warm
// workspace guarantee.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/svd.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"

namespace hjsvd::serve {
namespace {

/// Deterministic request frame whose payload round-trips exactly: 17
/// significant digits survive print -> parse bit-for-bit.
std::string make_frame(const std::string& id, std::size_t rows,
                       std::size_t cols, Rng& rng,
                       const std::string& extra_fields = "") {
  std::ostringstream os;
  os.precision(17);
  os << "{\"schema\":\"" << kProtocolSchema << "\",\"id\":\"" << id
     << "\",\"rows\":" << rows << ",\"cols\":" << cols << ",\"data\":[";
  for (std::size_t i = 0; i < rows * cols; ++i) {
    if (i != 0) os << ',';
    os << rng.gaussian();
  }
  os << ']';
  if (!extra_fields.empty()) os << ',' << extra_fields;
  os << '}';
  return os.str();
}

/// Collects replies keyed by id; safe for concurrent repliers.
class ReplyLog {
 public:
  SvdServer::ReplyFn sink() {
    return [this](const std::string& line) {
      std::lock_guard<std::mutex> lock(mu_);
      auto [it, inserted] = replies_.emplace(id_of(line), line);
      (void)it;
      total_++;
      duplicate_ids_ |= !inserted;
    };
  }
  std::size_t total() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }
  bool duplicate_ids() const {
    std::lock_guard<std::mutex> lock(mu_);
    return duplicate_ids_;
  }
  std::string reply(const std::string& id) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = replies_.find(id);
    return it == replies_.end() ? std::string() : it->second;
  }
  std::map<std::string, std::string> all() const {
    std::lock_guard<std::mutex> lock(mu_);
    return replies_;
  }

 private:
  static std::string id_of(const std::string& line) {
    const std::string key = "\"id\":\"";
    const std::size_t at = line.find(key);
    if (at == std::string::npos) return "?";
    const std::size_t end = line.find('"', at + key.size());
    return line.substr(at + key.size(), end - at - key.size());
  }
  mutable std::mutex mu_;
  std::map<std::string, std::string> replies_;
  std::size_t total_ = 0;
  bool duplicate_ids_ = false;
};

bool is_error(const std::string& reply, const char* code) {
  return reply.find("\"status\":\"error\"") != std::string::npos &&
         reply.find(std::string("\"code\":\"") + code + "\"") !=
             std::string::npos;
}

TEST(ServeProtocol, ParsesFullFrameAndDefaults) {
  Rng rng(1);
  const Request req = parse_request(make_frame(
      "r1", 3, 2, rng,
      "\"method\":\"plain\",\"compute_v\":true,\"tolerance\":1e-10,"
      "\"max_sweeps\":12,\"priority\":5,\"deadline_ms\":250"));
  EXPECT_EQ(req.id, "r1");
  EXPECT_EQ(req.rows, 3u);
  EXPECT_EQ(req.cols, 2u);
  EXPECT_EQ(req.data.size(), 6u);
  EXPECT_EQ(req.method, SvdMethod::kPlainHestenes);
  EXPECT_FALSE(req.compute_u);
  EXPECT_TRUE(req.compute_v);
  EXPECT_EQ(req.tolerance, 1e-10);
  EXPECT_EQ(req.max_sweeps, 12u);
  EXPECT_EQ(req.priority, 5);
  EXPECT_EQ(req.deadline_ms, 250.0);

  Rng rng2(1);
  const Request defaults = parse_request(make_frame("r2", 3, 2, rng2));
  EXPECT_EQ(defaults.method, SvdMethod::kModifiedHestenes);
  EXPECT_EQ(defaults.tolerance, 1e-13);
  EXPECT_EQ(defaults.priority, 0);
  EXPECT_EQ(defaults.deadline_ms, 0.0);
}

/// Malformed-frame fuzz: every corruption is rejected with a BadRequest
/// (never a crash or an accepted frame), and the id is recovered whenever
/// the frame carried one.
TEST(ServeProtocol, MalformedFramesAreRejected) {
  Rng rng(2);
  const std::string good = make_frame("ok", 2, 2, rng);
  // Truncations at every prefix length must never parse successfully.
  for (std::size_t cut = 0; cut < good.size(); ++cut)
    EXPECT_THROW((void)parse_request(good.substr(0, cut)), BadRequest)
        << "prefix length " << cut;

  const struct {
    const char* name;
    std::string frame;
    const char* expect_id;
  } cases[] = {
      {"not json", "hello", ""},
      {"not an object", "[1,2,3]", ""},
      {"missing id", R"({"rows":2,"cols":2,"data":[1,2,3,4]})", ""},
      {"empty id", R"({"id":"","rows":2,"cols":2,"data":[1,2,3,4]})", ""},
      {"wrong schema",
       R"({"schema":"hjsvd.serve.v9","id":"x","rows":2,"cols":2,"data":[1,2,3,4]})",
       "x"},
      {"zero rows", R"({"id":"x","rows":0,"cols":2,"data":[]})", "x"},
      {"negative cols", R"({"id":"x","rows":2,"cols":-2,"data":[]})", "x"},
      {"fractional rows", R"({"id":"x","rows":2.5,"cols":2,"data":[]})", "x"},
      {"oversized shape",
       R"({"id":"x","rows":1000000,"cols":1000000,"data":[]})", "x"},
      {"data length mismatch",
       R"({"id":"x","rows":2,"cols":2,"data":[1,2,3]})", "x"},
      {"non-numeric data",
       R"({"id":"x","rows":2,"cols":2,"data":[1,2,"three",4]})", "x"},
      {"bad method",
       R"({"id":"x","rows":2,"cols":2,"data":[1,2,3,4],"method":"qr"})", "x"},
      {"zero tolerance",
       R"({"id":"x","rows":2,"cols":2,"data":[1,2,3,4],"tolerance":0})", "x"},
      {"zero max_sweeps",
       R"({"id":"x","rows":2,"cols":2,"data":[1,2,3,4],"max_sweeps":0})", "x"},
      {"negative deadline",
       R"({"id":"x","rows":2,"cols":2,"data":[1,2,3,4],"deadline_ms":-5})",
       "x"},
  };
  for (const auto& c : cases) {
    try {
      (void)parse_request(c.frame);
      FAIL() << c.name << " was accepted";
    } catch (const BadRequest& e) {
      EXPECT_EQ(e.id, c.expect_id) << c.name;
      EXPECT_FALSE(e.message.empty()) << c.name;
    }
  }
}

TEST(ServeProtocol, ShapeLimitsAreEnforced) {
  Rng rng(3);
  Limits limits;
  limits.max_dim = 4;
  EXPECT_NO_THROW((void)parse_request(make_frame("a", 4, 4, rng), limits));
  EXPECT_THROW((void)parse_request(make_frame("b", 5, 2, rng), limits),
               BadRequest);
  limits.max_entries = 8;
  EXPECT_THROW((void)parse_request(make_frame("c", 3, 3, rng), limits),
               BadRequest);
}

/// The wire format is a bit-exact transport: an ok reply rendered from an
/// offline svd() is the reference the server must reproduce.
TEST(ServeServer, RepliesBitIdenticalToOfflineSvd) {
  Rng rng(4);
  const std::string frame =
      make_frame("bit", 14, 9, rng, "\"compute_u\":true,\"compute_v\":true");
  const Request req = parse_request(frame);
  const SvdResult offline = svd(request_matrix(req), request_options(req));

  for (const std::size_t threads : {1u, 4u}) {
    ServerConfig config;
    config.threads = threads;
    SvdServer server(config);
    ReplyLog log;
    server.submit_line(frame, log.sink());
    server.drain();
    const std::string reply = log.reply("bit");
    ASSERT_NE(reply.find("\"status\":\"ok\""), std::string::npos) << reply;
    // Strip the latency tail: everything before it must match the offline
    // rendering byte for byte (sigma, U, V at 17 digits).
    const std::string expected = format_ok_reply(req, offline, 0.0);
    const std::string cut = ",\"latency_ms\":";
    EXPECT_EQ(reply.substr(0, reply.find(cut)),
              expected.substr(0, expected.find(cut)))
        << "threads " << threads;
  }
}

/// Concurrent clients at thread counts {1, 4}: every reply arrives exactly
/// once and the payloads agree bitwise across server configurations.
TEST(ServeServer, MultiClientBitIdentityAcrossThreadCounts) {
  constexpr int kClients = 3;
  constexpr int kPerClient = 4;
  // Pre-render the frames so both servers see identical requests.
  std::vector<std::vector<std::string>> frames(kClients);
  for (int c = 0; c < kClients; ++c) {
    Rng rng(100 + c);
    for (int k = 0; k < kPerClient; ++k)
      frames[c].push_back(
          make_frame("c" + std::to_string(c) + "-" + std::to_string(k), 10, 7,
                     rng, "\"compute_v\":true"));
  }

  std::map<std::string, std::string> baseline;
  for (const std::size_t threads : {1u, 4u}) {
    ServerConfig config;
    config.threads = threads;
    SvdServer server(config);
    ReplyLog log;
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c)
      clients.emplace_back([&, c] {
        for (const std::string& frame : frames[c])
          server.submit_line(frame, log.sink());
      });
    for (std::thread& t : clients) t.join();
    server.drain();

    EXPECT_EQ(log.total(), kClients * kPerClient);
    EXPECT_FALSE(log.duplicate_ids());
    std::map<std::string, std::string> payloads;
    for (auto& [id, reply] : log.all()) {
      ASSERT_NE(reply.find("\"status\":\"ok\""), std::string::npos)
          << id << ": " << reply;
      payloads[id] = reply.substr(0, reply.find(",\"latency_ms\":"));
    }
    if (baseline.empty())
      baseline = payloads;
    else
      EXPECT_EQ(payloads, baseline) << "threads " << threads;
  }
}

/// A request whose deadline elapses while queued is answered with
/// deadline_expired and never decomposed; its wave-mates are unaffected.
TEST(ServeServer, DeadlineExpiredWhileQueued) {
  ServerConfig config;
  config.threads = 1;
  config.hold_dispatch = true;
  obs::MetricsRegistry metrics;
  config.metrics = &metrics;
  SvdServer server(config);
  ReplyLog log;
  Rng rng(5);
  server.submit_line(make_frame("doomed", 6, 4, rng, "\"deadline_ms\":1"),
                     log.sink());
  server.submit_line(make_frame("patient", 6, 4, rng), log.sink());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.drain();

  EXPECT_TRUE(is_error(log.reply("doomed"), kErrDeadlineExpired))
      << log.reply("doomed");
  EXPECT_NE(log.reply("patient").find("\"status\":\"ok\""), std::string::npos)
      << log.reply("patient");
  server.stop();
  EXPECT_EQ(metrics.counter("serve.expired.deadline").value_or(0), 1u);
  EXPECT_EQ(metrics.counter("serve.replies_ok").value_or(0), 1u);
}

/// Bounded admission: with dispatch held, exactly the submissions beyond
/// the queue capacity are rejected — deterministically the latest ones.
TEST(ServeServer, OverloadRejectionIsDeterministic) {
  ServerConfig config;
  config.threads = 1;
  config.queue_capacity = 3;
  config.hold_dispatch = true;
  obs::MetricsRegistry metrics;
  config.metrics = &metrics;
  SvdServer server(config);
  ReplyLog log;
  Rng rng(6);
  for (int k = 0; k < 7; ++k)
    server.submit_line(make_frame("q" + std::to_string(k), 5, 3, rng),
                       log.sink());
  // Rejections replied synchronously, before any dispatch.
  for (int k = 3; k < 7; ++k)
    EXPECT_TRUE(is_error(log.reply("q" + std::to_string(k)), kErrOverload))
        << log.reply("q" + std::to_string(k));
  EXPECT_EQ(server.queue_depth(), 3u);
  server.drain();
  for (int k = 0; k < 3; ++k)
    EXPECT_NE(log.reply("q" + std::to_string(k)).find("\"status\":\"ok\""),
              std::string::npos);
  server.stop();
  EXPECT_EQ(metrics.counter("serve.requests_total").value_or(0), 7u);
  EXPECT_EQ(metrics.counter("serve.admitted_total").value_or(0), 3u);
  EXPECT_EQ(metrics.counter("serve.rejected.overload").value_or(0), 4u);
}

TEST(ServeServer, DuplicateInFlightIdIsBadRequest) {
  ServerConfig config;
  config.threads = 1;
  config.hold_dispatch = true;
  SvdServer server(config);
  ReplyLog log;
  Rng rng(7);
  server.submit_line(make_frame("dup", 4, 4, rng), log.sink());
  std::size_t bad = 0;
  server.submit_line(make_frame("dup", 4, 4, rng),
                     [&](const std::string& reply) {
                       EXPECT_TRUE(is_error(reply, kErrBadRequest)) << reply;
                       ++bad;
                     });
  EXPECT_EQ(bad, 1u);
  server.drain();
  // The original request still completed; the id is free again afterwards.
  EXPECT_NE(log.reply("dup").find("\"status\":\"ok\""), std::string::npos);
  std::size_t ok = 0;
  server.submit_line(make_frame("dup", 4, 4, rng),
                     [&](const std::string& reply) {
                       EXPECT_NE(reply.find("\"status\":\"ok\""),
                                 std::string::npos);
                       ++ok;
                     });
  server.drain();
  EXPECT_EQ(ok, 1u);
}

/// A poisoned request (non-finite payload reaching the engine) gets an
/// engine_error reply while wave-mates still succeed.
TEST(ServeServer, EngineErrorIsIsolatedToItsRequest) {
  ServerConfig config;
  config.threads = 1;
  config.hold_dispatch = true;
  SvdServer server(config);
  ReplyLog log;
  Rng rng(8);
  server.submit_line(
      R"({"id":"poison","rows":2,"cols":2,"data":[1,2,3,null]})", log.sink());
  // null parses as JSON but not as a number -> bad_request at the parser.
  EXPECT_TRUE(is_error(log.reply("poison"), kErrBadRequest));

  // NaN cannot be expressed in JSON, so craft an Inf overflow instead:
  // 1e999 parses to +inf in strtod-based parsers; if the parser rejects
  // it outright that is also an acceptable typed error.
  server.submit_line(
      R"({"id":"inf","rows":2,"cols":2,"data":[1,2,3,1e999]})", log.sink());
  server.submit_line(make_frame("healthy", 5, 5, rng), log.sink());
  server.drain();
  const std::string inf_reply = log.reply("inf");
  EXPECT_TRUE(is_error(inf_reply, kErrEngine) ||
              is_error(inf_reply, kErrBadRequest))
      << inf_reply;
  EXPECT_NE(log.reply("healthy").find("\"status\":\"ok\""), std::string::npos);
}

/// Warm-pool guarantee: a session of same-shape requests drives
/// workspace.reuse_total up while alloc_total stays flat after the first
/// wave.
TEST(ServeServer, WorkspaceGoesWarmAcrossWaves) {
  ServerConfig config;
  config.threads = 1;  // one worker arena: placement cannot move
  config.hold_dispatch = true;
  config.wave_max = 8;
  SvdServer server(config);
  ReplyLog log;
  Rng rng(9);
  // Six equal-cost items per wave: below the nested-split threshold, so
  // every request runs the sequential arena-backed engine.
  for (int k = 0; k < 6; ++k)
    server.submit_line(make_frame("w1-" + std::to_string(k), 10, 8, rng,
                                  "\"compute_v\":true"),
                       log.sink());
  server.drain();
  const std::uint64_t cold_allocs = server.workspace_alloc_total();
  EXPECT_GT(cold_allocs, 0u);
  EXPECT_GT(server.workspace_reuse_total(), 0u);

  for (int k = 0; k < 6; ++k)
    server.submit_line(make_frame("w2-" + std::to_string(k), 10, 8, rng,
                                  "\"compute_v\":true"),
                       log.sink());
  server.drain();
  EXPECT_EQ(server.workspace_alloc_total(), cold_allocs)
      << "warm waves must be allocation-free";
  EXPECT_GT(server.workspace_reuse_total(), 6u);
  EXPECT_EQ(log.total(), 12u);
}

/// Priority orders dispatch: with a held queue and wave_max 1, the
/// highest-priority request is decomposed first.
TEST(ServeServer, PriorityDrivesDispatchOrder) {
  ServerConfig config;
  config.threads = 1;
  config.hold_dispatch = true;
  config.wave_max = 1;
  SvdServer server(config);
  std::mutex mu;
  std::vector<std::string> order;
  const auto sink = [&](const std::string& reply) {
    if (reply.find("\"status\":\"ok\"") == std::string::npos) return;
    const std::size_t at = reply.find("\"id\":\"") + 6;
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(reply.substr(at, reply.find('"', at) - at));
  };
  Rng rng(10);
  server.submit_line(make_frame("low", 4, 3, rng, "\"priority\":-1"), sink);
  server.submit_line(make_frame("mid", 4, 3, rng), sink);
  server.submit_line(make_frame("high", 4, 3, rng, "\"priority\":9"), sink);
  server.drain();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "high");
  EXPECT_EQ(order[1], "mid");
  EXPECT_EQ(order[2], "low");
}

}  // namespace
}  // namespace hjsvd::serve

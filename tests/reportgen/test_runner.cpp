// Tests for the benchmark plumbing.
#include "reportgen/runner.hpp"

#include <gtest/gtest.h>

namespace hjsvd::report {
namespace {

TEST(Runner, ExperimentMatrixShapeAndDeterminism) {
  const Matrix a = experiment_matrix(12, 7);
  EXPECT_EQ(a.rows(), 12u);
  EXPECT_EQ(a.cols(), 7u);
  EXPECT_EQ(Matrix::max_abs_diff(a, experiment_matrix(12, 7)), 0.0);
}

TEST(Runner, DifferentShapesGetDifferentData) {
  const Matrix a = experiment_matrix(8, 8);
  const Matrix b = experiment_matrix(8, 8, 9999);
  EXPECT_GT(Matrix::max_abs_diff(a, b), 0.0);
}

TEST(Runner, TimeBestRunsAtLeastOnce) {
  int calls = 0;
  const double t = time_best([&] { ++calls; }, 0.0, 5);
  EXPECT_GE(calls, 1);
  EXPECT_GE(t, 0.0);
}

TEST(Runner, TimeBestStopsAtRepCap) {
  int calls = 0;
  (void)time_best([&] { ++calls; }, 1e9, 3);  // never reaches min_seconds
  EXPECT_EQ(calls, 3);
}

TEST(Runner, TimeBestReturnsTheMinimum) {
  // The first call sleeps longer than the rest; best must be < first.
  int call = 0;
  const double t = time_best(
      [&] {
        ++call;
        volatile double x = 0;
        const int spin = call == 1 ? 2000000 : 1000;
        for (int i = 0; i < spin; ++i) x = x + i;
      },
      1e9, 4);
  EXPECT_GT(t, 0.0);
}

TEST(Runner, HostDescriptionMentionsThreads) {
  EXPECT_NE(host_description().find("threads"), std::string::npos);
}

TEST(Runner, BaselineTimersReturnPositive) {
  const Matrix a = experiment_matrix(16, 8);
  EXPECT_GT(golub_kahan_seconds(a), 0.0);
  EXPECT_GT(parallel_hestenes_seconds(a), 0.0);
}

}  // namespace
}  // namespace hjsvd::report

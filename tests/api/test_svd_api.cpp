// Tests for the unified svd() front door.
#include "api/svd.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "fp/softfloat.hpp"
#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "linalg/kernels.hpp"

namespace hjsvd {
namespace {

class AllMethods : public ::testing::TestWithParam<SvdMethod> {};

TEST_P(AllMethods, AgreeOnASquareMatrix) {
  Rng rng(91);
  const Matrix a = random_gaussian(20, 20, rng);
  SvdOptions opt;
  opt.method = GetParam();
  const SvdResult r = svd(a, opt);
  const SvdResult ref = svd(a, {.method = SvdMethod::kGolubKahan});
  EXPECT_LT(singular_value_error(r.singular_values, ref.singular_values),
            1e-9)
      << svd_method_name(GetParam());
}

TEST_P(AllMethods, VectorsReconstructWhenRequested) {
  Rng rng(92);
  const Matrix a = random_gaussian(14, 14, rng);
  SvdOptions opt;
  opt.method = GetParam();
  opt.compute_u = true;
  opt.compute_v = true;
  const SvdResult r = svd(a, opt);
  EXPECT_LT(reconstruction_error(a, r), 1e-9) << svd_method_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Methods, AllMethods,
    ::testing::Values(SvdMethod::kModifiedHestenes, SvdMethod::kPlainHestenes,
                      SvdMethod::kParallelHestenes,
                      SvdMethod::kParallelModifiedHestenes,
                      SvdMethod::kPipelinedModifiedHestenes,
                      SvdMethod::kTwoSidedJacobi, SvdMethod::kGolubKahan),
    [](const auto& param_info) {
      std::string name = svd_method_name(param_info.param);
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

TEST(SvdApi, RectangularDispatch) {
  Rng rng(93);
  const Matrix a = random_gaussian(18, 7, rng);
  const SvdResult hj = svd(a);  // defaults to modified Hestenes
  const SvdResult gk = svd(a, {.method = SvdMethod::kGolubKahan});
  EXPECT_LT(singular_value_error(hj.singular_values, gk.singular_values),
            1e-9);
}

TEST(SvdApi, TwoSidedRejectsRectangular) {
  EXPECT_THROW(svd(Matrix(3, 5), {.method = SvdMethod::kTwoSidedJacobi}),
               Error);
}

TEST(SvdApi, MethodNamesAreDistinct) {
  EXPECT_STRNE(svd_method_name(SvdMethod::kModifiedHestenes),
               svd_method_name(SvdMethod::kPlainHestenes));
  EXPECT_STRNE(svd_method_name(SvdMethod::kGolubKahan),
               svd_method_name(SvdMethod::kTwoSidedJacobi));
  EXPECT_STRNE(svd_method_name(SvdMethod::kParallelHestenes),
               svd_method_name(SvdMethod::kParallelModifiedHestenes));
  EXPECT_STRNE(svd_method_name(SvdMethod::kParallelModifiedHestenes),
               svd_method_name(SvdMethod::kPipelinedModifiedHestenes));
}

TEST(SvdApi, PipelinedMethodMatchesSequentialBitForBit) {
  Rng rng(98);
  const Matrix a = random_gaussian(17, 12, rng);
  SvdOptions opt;
  opt.compute_u = true;
  opt.compute_v = true;
  const SvdResult seq = svd(a, opt);
  opt.method = SvdMethod::kPipelinedModifiedHestenes;
  for (std::size_t depth : {1u, 8u}) {
    opt.pipeline_queue_depth = depth;
    opt.threads = 2;
    const SvdResult r = svd(a, opt);
    ASSERT_EQ(r.singular_values.size(), seq.singular_values.size());
    for (std::size_t i = 0; i < seq.singular_values.size(); ++i)
      EXPECT_EQ(fp::to_bits(r.singular_values[i]),
                fp::to_bits(seq.singular_values[i]))
          << "depth " << depth << " value " << i;
    for (std::size_t i = 0; i < seq.u.data().size(); ++i)
      EXPECT_EQ(fp::to_bits(r.u.data()[i]), fp::to_bits(seq.u.data()[i]))
          << "depth " << depth << " U entry " << i;
  }
}

std::vector<Matrix> make_batch(Rng& rng) {
  std::vector<Matrix> batch;
  batch.push_back(random_gaussian(12, 12, rng));
  batch.push_back(random_gaussian(30, 9, rng));   // tall
  batch.push_back(random_gaussian(8, 21, rng));   // wide
  batch.push_back(random_rank_deficient(16, 14, 6, rng));
  batch.push_back(random_gaussian(5, 5, rng));
  batch.push_back(random_gaussian(24, 16, rng));
  return batch;
}

TEST(SvdBatch, MatchesSequentialPathBitForBit) {
  Rng rng(94);
  const auto batch = make_batch(rng);
  SvdOptions opt;
  opt.compute_u = true;
  opt.compute_v = true;
  const auto results = svd_batch(batch, opt, /*threads=*/4);
  ASSERT_EQ(results.size(), batch.size());
  for (std::size_t b = 0; b < batch.size(); ++b) {
    const SvdResult ref = svd(batch[b], opt);
    ASSERT_EQ(results[b].singular_values.size(), ref.singular_values.size());
    for (std::size_t i = 0; i < ref.singular_values.size(); ++i)
      EXPECT_EQ(fp::to_bits(results[b].singular_values[i]),
                fp::to_bits(ref.singular_values[i]))
          << "matrix " << b << " value " << i;
    for (std::size_t i = 0; i < ref.u.data().size(); ++i)
      EXPECT_EQ(fp::to_bits(results[b].u.data()[i]),
                fp::to_bits(ref.u.data()[i]))
          << "matrix " << b << " U entry " << i;
  }
}

TEST(SvdBatch, ResultsIndependentOfThreadCount) {
  Rng rng(95);
  const auto batch = make_batch(rng);
  const auto one = svd_batch(batch, {}, 1);
  for (std::size_t threads : {2u, 4u, 7u}) {
    const auto many = svd_batch(batch, {}, threads);
    ASSERT_EQ(many.size(), one.size());
    for (std::size_t b = 0; b < one.size(); ++b)
      for (std::size_t i = 0; i < one[b].singular_values.size(); ++i)
        EXPECT_EQ(fp::to_bits(many[b].singular_values[i]),
                  fp::to_bits(one[b].singular_values[i]))
            << "threads " << threads << " matrix " << b;
  }
}

TEST(SvdBatch, EmptyBatchYieldsEmptyResults) {
  EXPECT_TRUE(svd_batch({}).empty());
}

TEST(SvdBatch, ValidatesTheWholeBatchUpFront) {
  Rng rng(96);
  std::vector<Matrix> batch;
  batch.push_back(random_gaussian(6, 6, rng));
  batch.push_back(Matrix());  // invalid
  EXPECT_THROW(svd_batch(batch), Error);
}

TEST(SvdBatch, SelectsPipelinedMethod) {
  Rng rng(99);
  const auto batch = make_batch(rng);
  SvdOptions opt;
  opt.method = SvdMethod::kPipelinedModifiedHestenes;
  opt.compute_v = true;
  const auto results = svd_batch(batch, opt, /*threads=*/3);
  ASSERT_EQ(results.size(), batch.size());
  SvdOptions seq = opt;
  seq.method = SvdMethod::kModifiedHestenes;
  for (std::size_t b = 0; b < batch.size(); ++b) {
    const SvdResult ref = svd(batch[b], seq);
    ASSERT_EQ(results[b].singular_values.size(), ref.singular_values.size());
    for (std::size_t i = 0; i < ref.singular_values.size(); ++i)
      EXPECT_EQ(fp::to_bits(results[b].singular_values[i]),
                fp::to_bits(ref.singular_values[i]))
          << "matrix " << b << " value " << i;
  }
}

TEST(SvdBatch, MoreThreadsThanMatrices) {
  Rng rng(97);
  std::vector<Matrix> batch;
  batch.push_back(random_gaussian(10, 8, rng));
  const auto results = svd_batch(batch, {}, 16);
  ASSERT_EQ(results.size(), 1u);
  const SvdResult ref = svd(batch[0]);
  for (std::size_t i = 0; i < ref.singular_values.size(); ++i)
    EXPECT_EQ(fp::to_bits(results[0].singular_values[i]),
              fp::to_bits(ref.singular_values[i]));
}

}  // namespace
}  // namespace hjsvd

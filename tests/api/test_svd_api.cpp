// Tests for the unified svd() front door.
#include "api/svd.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "linalg/kernels.hpp"

namespace hjsvd {
namespace {

class AllMethods : public ::testing::TestWithParam<SvdMethod> {};

TEST_P(AllMethods, AgreeOnASquareMatrix) {
  Rng rng(91);
  const Matrix a = random_gaussian(20, 20, rng);
  SvdOptions opt;
  opt.method = GetParam();
  const SvdResult r = svd(a, opt);
  const SvdResult ref = svd(a, {.method = SvdMethod::kGolubKahan});
  EXPECT_LT(singular_value_error(r.singular_values, ref.singular_values),
            1e-9)
      << svd_method_name(GetParam());
}

TEST_P(AllMethods, VectorsReconstructWhenRequested) {
  Rng rng(92);
  const Matrix a = random_gaussian(14, 14, rng);
  SvdOptions opt;
  opt.method = GetParam();
  opt.compute_u = true;
  opt.compute_v = true;
  const SvdResult r = svd(a, opt);
  EXPECT_LT(reconstruction_error(a, r), 1e-9) << svd_method_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Methods, AllMethods,
    ::testing::Values(SvdMethod::kModifiedHestenes, SvdMethod::kPlainHestenes,
                      SvdMethod::kParallelHestenes, SvdMethod::kTwoSidedJacobi,
                      SvdMethod::kGolubKahan),
    [](const auto& param_info) {
      std::string name = svd_method_name(param_info.param);
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

TEST(SvdApi, RectangularDispatch) {
  Rng rng(93);
  const Matrix a = random_gaussian(18, 7, rng);
  const SvdResult hj = svd(a);  // defaults to modified Hestenes
  const SvdResult gk = svd(a, {.method = SvdMethod::kGolubKahan});
  EXPECT_LT(singular_value_error(hj.singular_values, gk.singular_values),
            1e-9);
}

TEST(SvdApi, TwoSidedRejectsRectangular) {
  EXPECT_THROW(svd(Matrix(3, 5), {.method = SvdMethod::kTwoSidedJacobi}),
               Error);
}

TEST(SvdApi, MethodNamesAreDistinct) {
  EXPECT_STRNE(svd_method_name(SvdMethod::kModifiedHestenes),
               svd_method_name(SvdMethod::kPlainHestenes));
  EXPECT_STRNE(svd_method_name(SvdMethod::kGolubKahan),
               svd_method_name(SvdMethod::kTwoSidedJacobi));
}

}  // namespace
}  // namespace hjsvd

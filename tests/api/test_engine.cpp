// EngineInstance: the warm pool + per-worker workspace extraction must be
// invisible to results — decompose() bitwise equal to svd(), batch waves
// bitwise equal to per-item svd() at every thread count — while the
// serving-mode item_errors contract isolates poisoned requests.
#include "api/engine.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "fp/softfloat.hpp"
#include "linalg/generate.hpp"

namespace hjsvd {
namespace {

void expect_bitwise_equal(const SvdResult& got, const SvdResult& ref,
                          const std::string& context) {
  ASSERT_EQ(got.singular_values.size(), ref.singular_values.size()) << context;
  for (std::size_t i = 0; i < ref.singular_values.size(); ++i)
    EXPECT_EQ(fp::to_bits(got.singular_values[i]),
              fp::to_bits(ref.singular_values[i]))
        << context << " value " << i;
  ASSERT_EQ(got.u.data().size(), ref.u.data().size()) << context;
  for (std::size_t i = 0; i < ref.u.data().size(); ++i)
    EXPECT_EQ(fp::to_bits(got.u.data()[i]), fp::to_bits(ref.u.data()[i]))
        << context << " U entry " << i;
  ASSERT_EQ(got.v.data().size(), ref.v.data().size()) << context;
  for (std::size_t i = 0; i < ref.v.data().size(); ++i)
    EXPECT_EQ(fp::to_bits(got.v.data()[i]), fp::to_bits(ref.v.data()[i]))
        << context << " V entry " << i;
}

TEST(EngineInstance, DecomposeMatchesSvdBitwise) {
  Rng rng(11);
  const Matrix a = random_gaussian(20, 14, rng);
  for (const SvdMethod method :
       {SvdMethod::kModifiedHestenes, SvdMethod::kPlainHestenes,
        SvdMethod::kParallelModifiedHestenes, SvdMethod::kGolubKahan}) {
    SvdOptions opt;
    opt.method = method;
    opt.compute_u = true;
    opt.compute_v = true;
    const SvdResult ref = svd(a, opt);
    EngineInstance engine;
    // Repeat runs cover the cold and warm arena paths.
    for (int run = 0; run < 3; ++run)
      expect_bitwise_equal(engine.decompose(a, opt), ref,
                           std::string(svd_method_token(method)) + " run " +
                               std::to_string(run));
  }
}

TEST(EngineInstance, BatchMatchesPerItemSvdAtEveryThreadCount) {
  Rng rng(23);
  std::vector<Matrix> batch;
  batch.push_back(random_gaussian(10, 10, rng));
  batch.push_back(random_gaussian(24, 16, rng));
  batch.push_back(random_gaussian(6, 9, rng));
  batch.push_back(random_gaussian(16, 16, rng));
  SvdOptions opt;
  opt.compute_v = true;
  std::vector<SvdResult> ref;
  for (const Matrix& a : batch) ref.push_back(svd(a, opt));

  for (const std::size_t threads : {1u, 2u, 4u}) {
    EngineInstance engine(EngineConfig{.threads = threads});
    // Two waves through the same engine: the second runs entirely on warm
    // workers and must not drift.
    for (int wave = 0; wave < 2; ++wave) {
      const std::vector<SvdResult> got = engine.decompose_batch(batch, opt);
      ASSERT_EQ(got.size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i)
        expect_bitwise_equal(got[i], ref[i],
                             "threads " + std::to_string(threads) + " wave " +
                                 std::to_string(wave) + " item " +
                                 std::to_string(i));
    }
  }
}

TEST(EngineInstance, ItemErrorsModeIsolatesPoisonedItems) {
  Rng rng(31);
  std::vector<Matrix> batch;
  batch.push_back(random_gaussian(8, 8, rng));
  Matrix poisoned = random_gaussian(8, 8, rng);
  poisoned(3, 3) = std::numeric_limits<double>::quiet_NaN();
  batch.push_back(poisoned);
  batch.push_back(random_gaussian(12, 8, rng));

  SvdOptions opt;
  EngineInstance engine(EngineConfig{.threads = 2});
  std::vector<std::exception_ptr> item_errors;
  std::vector<SvdResult> results;
  ASSERT_NO_THROW(results = engine.decompose_batch(batch, opt, nullptr,
                                                   &item_errors));
  ASSERT_EQ(item_errors.size(), batch.size());
  EXPECT_EQ(item_errors[0], nullptr);
  EXPECT_NE(item_errors[1], nullptr);
  EXPECT_EQ(item_errors[2], nullptr);
  expect_bitwise_equal(results[0], svd(batch[0], opt), "healthy item 0");
  expect_bitwise_equal(results[2], svd(batch[2], opt), "healthy item 2");

  // Without the out-param the same batch keeps svd_batch's rethrow contract.
  EXPECT_THROW((void)engine.decompose_batch(batch, opt), Error);
}

TEST(EngineInstance, BatchValidationStillThrowsInItemErrorsMode) {
  std::vector<Matrix> batch;
  batch.emplace_back(0, 0);  // empty: a caller bug, not a data failure
  std::vector<std::exception_ptr> item_errors;
  EngineInstance engine(EngineConfig{.threads = 1});
  EXPECT_THROW((void)engine.decompose_batch(batch, {}, nullptr, &item_errors),
               Error);
}

TEST(EngineInstance, WarmWavesReuseWorkspaces) {
  Rng rng(47);
  // Equal-cost items below the split threshold so every decomposition runs
  // the sequential arena-backed path.
  // One worker so wave-to-wave item placement cannot move between arenas.
  std::vector<Matrix> batch;
  for (int i = 0; i < 6; ++i) batch.push_back(random_gaussian(12, 9, rng));
  SvdOptions opt;
  opt.compute_u = true;
  opt.compute_v = true;
  EngineInstance engine(EngineConfig{.threads = 1});
  (void)engine.decompose_batch(batch, opt);
  const std::uint64_t cold_allocs = engine.workspace_alloc_total();
  const std::uint64_t cold_reuse = engine.workspace_reuse_total();
  EXPECT_GT(cold_allocs, 0u);
  (void)engine.decompose_batch(batch, opt);
  EXPECT_EQ(engine.workspace_alloc_total(), cold_allocs)
      << "second wave must be allocation-free";
  EXPECT_GT(engine.workspace_reuse_total(), cold_reuse);
}

}  // namespace
}  // namespace hjsvd

// Tests for the work-stealing, nested-parallel svd_batch() scheduler: the
// bit-identity matrix over (threads x batch mix x split-threshold) and the
// three contract regressions (whole-batch pre-validation, deterministic
// lowest-index error, worker-accounting alignment).
#include "api/svd.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "fp/softfloat.hpp"
#include "linalg/generate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hjsvd {
namespace {

void expect_bitwise_equal(const SvdResult& got, const SvdResult& ref,
                          const std::string& context) {
  ASSERT_EQ(got.singular_values.size(), ref.singular_values.size()) << context;
  for (std::size_t i = 0; i < ref.singular_values.size(); ++i)
    EXPECT_EQ(fp::to_bits(got.singular_values[i]),
              fp::to_bits(ref.singular_values[i]))
        << context << " value " << i;
  ASSERT_EQ(got.u.data().size(), ref.u.data().size()) << context;
  for (std::size_t i = 0; i < ref.u.data().size(); ++i)
    EXPECT_EQ(fp::to_bits(got.u.data()[i]), fp::to_bits(ref.u.data()[i]))
        << context << " U entry " << i;
  ASSERT_EQ(got.v.data().size(), ref.v.data().size()) << context;
  for (std::size_t i = 0; i < ref.v.data().size(); ++i)
    EXPECT_EQ(fp::to_bits(got.v.data()[i]), fp::to_bits(ref.v.data()[i]))
        << context << " V entry " << i;
}

/// Tiny and large matrices mixed so the large ones dominate the cost model
/// and qualify for nested splits.
std::vector<Matrix> make_mixed_batch(Rng& rng) {
  std::vector<Matrix> batch;
  batch.push_back(random_gaussian(6, 6, rng));
  batch.push_back(random_gaussian(32, 24, rng));  // split candidate
  batch.push_back(random_gaussian(5, 8, rng));
  batch.push_back(random_gaussian(28, 28, rng));  // split candidate
  batch.push_back(random_gaussian(7, 5, rng));
  batch.push_back(random_rank_deficient(10, 10, 4, rng));
  return batch;
}

// The tentpole contract: results[i] bitwise equal to svd(batch[i], options)
// for every Hestenes-family method, thread count, and split-threshold
// setting — including combinations that trigger nested single-matrix
// splits on borrowed workers.
TEST(SvdBatchScheduler, NestedParallelBitIdentityMatrix) {
  Rng rng(2024);
  const auto batch = make_mixed_batch(rng);
  const SvdMethod methods[] = {
      SvdMethod::kModifiedHestenes,
      SvdMethod::kPlainHestenes,
      SvdMethod::kParallelHestenes,
      SvdMethod::kParallelModifiedHestenes,
      SvdMethod::kPipelinedModifiedHestenes,
  };
  for (SvdMethod method : methods) {
    SvdOptions opt;
    opt.method = method;
    opt.compute_u = true;
    opt.compute_v = true;
    std::vector<SvdResult> refs;
    refs.reserve(batch.size());
    for (const Matrix& a : batch) refs.push_back(svd(a, opt));
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
      for (double split : {0.0, 0.2}) {
        SvdOptions run = opt;
        run.batch_split_min_fraction = split;
        SvdBatchStats stats;
        const auto results = svd_batch(batch, run, threads, &stats);
        ASSERT_EQ(results.size(), batch.size());
        const std::string context = std::string(svd_method_name(method)) +
                                    " threads=" + std::to_string(threads) +
                                    " split=" + std::to_string(split);
        for (std::size_t b = 0; b < batch.size(); ++b)
          expect_bitwise_equal(results[b], refs[b],
                               context + " matrix " + std::to_string(b));
        if (split > 0.0 && threads > 1) {
          // The two dominant items qualify; at least one must actually
          // have expanded onto borrowed workers (both, when the borrow
          // budget wasn't contended at that moment).
          EXPECT_GE(stats.nested_splits, 1u) << context;
          EXPECT_GE(stats.helpers_granted, stats.nested_splits) << context;
        } else {
          EXPECT_EQ(stats.nested_splits, 0u) << context;
        }
      }
    }
  }
}

// Baseline methods never split, whatever the threshold says.
TEST(SvdBatchScheduler, BaselinesNeverSplit) {
  Rng rng(77);
  std::vector<Matrix> batch;
  batch.push_back(random_gaussian(6, 6, rng));
  batch.push_back(random_gaussian(24, 24, rng));
  SvdOptions opt;
  opt.method = SvdMethod::kGolubKahan;
  opt.batch_split_min_fraction = 0.01;
  SvdBatchStats stats;
  const auto results = svd_batch(batch, opt, 4, &stats);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(stats.nested_splits, 0u);
  EXPECT_EQ(stats.helpers_granted, 0u);
}

// Satellite regression 1: a rectangular entry in a two-sided batch must be
// rejected up front — no partial work, no emissions, not even for the
// valid entries that precede it.
TEST(SvdBatchScheduler, TwoSidedRectangularEntryRejectedBeforeAnyWork) {
  Rng rng(41);
  std::vector<Matrix> batch;
  batch.push_back(random_gaussian(8, 8, rng));
  batch.push_back(random_gaussian(9, 7, rng));  // rectangular
  batch.push_back(random_gaussian(6, 6, rng));
  SvdOptions opt;
  opt.method = SvdMethod::kTwoSidedJacobi;
  obs::TraceRecorder trace;
  obs::MetricsRegistry metrics;
  opt.trace = &trace;
  opt.metrics = &metrics;
  try {
    svd_batch(batch, opt, 2);
    FAIL() << "expected an Error for the rectangular entry";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("item 1"), std::string::npos)
        << e.what();
  }
  // Pre-validation fires before any pool, trace, or metric activity.
  EXPECT_TRUE(metrics.names().empty());
  EXPECT_TRUE(trace.snapshot().empty());
}

// Satellite regression 2: with two injected mid-run failures, the rethrown
// error is deterministically the lowest batch index — never a matter of
// which worker observed its failure first — and every other item still
// ran to completion.
TEST(SvdBatchScheduler, FirstErrorIsLowestIndexAndOthersComplete) {
  Rng rng(55);
  std::vector<Matrix> batch;
  for (int i = 0; i < 8; ++i) batch.push_back(random_gaussian(10, 10, rng));
  batch[2](0, 0) = std::numeric_limits<double>::quiet_NaN();
  batch[5](0, 0) = std::numeric_limits<double>::quiet_NaN();
  for (int rep = 0; rep < 6; ++rep) {
    SvdBatchStats stats;
    try {
      svd_batch(batch, {}, 4, &stats);
      FAIL() << "expected the injected failures to surface";
    } catch (const Error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("svd_batch: item 2"), std::string::npos) << what;
      EXPECT_EQ(what.find("item 5"), std::string::npos) << what;
    }
    EXPECT_EQ(stats.items_failed, 2u);
    EXPECT_EQ(stats.items_ok, 6u);
  }
}

// Satellite regression 3: for a batch smaller than the thread budget, the
// batch.workers gauge, the per-worker gauges, the trace timelines, and the
// stats all agree on the *actual* pool width.
TEST(SvdBatchScheduler, WorkerAccountingMatchesRealityForSmallBatches) {
  Rng rng(66);
  std::vector<Matrix> batch;
  batch.push_back(random_gaussian(9, 9, rng));
  batch.push_back(random_gaussian(12, 8, rng));
  SvdOptions opt;
  opt.batch_split_min_fraction = 0.0;  // isolate the clamping behaviour
  obs::TraceRecorder trace;
  obs::MetricsRegistry metrics;
  opt.trace = &trace;
  opt.metrics = &metrics;
  SvdBatchStats stats;
  const auto results = svd_batch(batch, opt, 16, &stats);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(stats.workers, 2u);
  EXPECT_EQ(stats.requested_workers, 16u);
  ASSERT_EQ(stats.worker_busy_s.size(), 2u);
  ASSERT_EQ(stats.worker_idle_s.size(), 2u);
  EXPECT_EQ(metrics.gauge("batch.workers"), 2.0);
  EXPECT_EQ(metrics.gauge("batch.workers.requested"), 16.0);
  const auto names = metrics.names();
  const std::set<std::string> name_set(names.begin(), names.end());
  EXPECT_TRUE(name_set.count("batch.worker.0.busy_s"));
  EXPECT_TRUE(name_set.count("batch.worker.1.idle_s"));
  EXPECT_FALSE(name_set.count("batch.worker.2.busy_s"));
  // Exactly one registered timeline per pool worker — counted from the
  // thread_name metadata so workers that happened to drain no items (the
  // other one was faster) still show up.
  const std::string json = trace.to_json();
  std::size_t timelines = 0;
  for (std::size_t pos = json.find("svd_batch worker");
       pos != std::string::npos; pos = json.find("svd_batch worker", pos + 1))
    ++timelines;
  EXPECT_EQ(timelines, 2u);
}

// The scheduler surfaces its behaviour through the optional stats
// out-param even on plain successful runs.
TEST(SvdBatchScheduler, StatsDescribeTheRun) {
  Rng rng(88);
  const auto batch = make_mixed_batch(rng);
  SvdBatchStats stats;
  const auto results = svd_batch(batch, {}, 2, &stats);
  ASSERT_EQ(results.size(), batch.size());
  EXPECT_EQ(stats.items, batch.size());
  EXPECT_EQ(stats.workers, 2u);
  EXPECT_EQ(stats.items_ok, batch.size());
  EXPECT_EQ(stats.items_failed, 0u);
  EXPECT_GT(stats.wall_s, 0.0);
  double busy = 0.0;
  for (double b : stats.worker_busy_s) busy += b;
  EXPECT_GT(busy, 0.0);
}

TEST(SvdBatchScheduler, EmptyBatchZeroesStats) {
  SvdBatchStats stats;
  stats.items = 99;
  EXPECT_TRUE(svd_batch({}, {}, 4, &stats).empty());
  EXPECT_EQ(stats.items, 0u);
  EXPECT_EQ(stats.workers, 0u);
}

}  // namespace
}  // namespace hjsvd

// Tests for the multi-engine (HC-2) scaling model.
#include "arch/multi_engine.hpp"

#include <gtest/gtest.h>

#include "arch/timing_model.hpp"
#include "common/error.hpp"

namespace hjsvd::arch {
namespace {

TEST(MultiEngine, OneEngineMatchesSingleModelClosely) {
  MultiEngineConfig cfg;
  cfg.engines = 1;
  for (std::size_t n : {128u, 512u}) {
    const auto multi = estimate_multi_engine(cfg, n, n);
    const auto single = estimate_timing(cfg.engine, n, n);
    const double ratio = static_cast<double>(multi.total) /
                         static_cast<double>(single.total);
    EXPECT_GT(ratio, 0.9) << n;
    EXPECT_LT(ratio, 1.1) << n;
  }
}

TEST(MultiEngine, MoreEnginesNeverSlower) {
  for (std::size_t n : {128u, 256u, 1024u}) {
    double prev = 1e300;
    for (std::uint32_t e : {1u, 2u, 4u, 8u}) {
      MultiEngineConfig cfg;
      cfg.engines = e;
      const auto t = estimate_multi_engine(cfg, n, n);
      EXPECT_LE(t.seconds, prev * 1.001) << "n=" << n << " e=" << e;
      prev = t.seconds;
    }
  }
}

TEST(MultiEngine, NearLinearWhileUpdatesDominate) {
  // At n = 512 four engines' combined BRAM holds the sliced D on chip and
  // the covariance updates dwarf the rotation cadence: close to 4x.
  MultiEngineConfig one, four;
  one.engines = 1;
  four.engines = 4;
  const double t1 = estimate_multi_engine(one, 512, 512).seconds;
  const double t4 = estimate_multi_engine(four, 512, 512).seconds;
  EXPECT_GT(t1 / t4, 3.0);
}

TEST(MultiEngine, SharedMemoryWallLimitsLargeColumns) {
  // At n = 1024 even four engines' BRAM cannot hold D; the shared memory
  // channel becomes the wall and scaling collapses — the model's honest
  // caveat about the future-work extension.
  MultiEngineConfig one, four;
  one.engines = 1;
  four.engines = 4;
  const double t1 = estimate_multi_engine(one, 1024, 1024).seconds;
  const double t4 = estimate_multi_engine(four, 1024, 1024).seconds;
  EXPECT_LT(t1 / t4, 2.0);
  EXPECT_GT(t1 / t4, 1.0);
}

TEST(MultiEngine, SaturatesOnTheSerialRotationCadence) {
  // At small n, a few engines already push updates below the 64-cycle group
  // cadence; adding more engines stops helping and the serial fraction
  // rises toward 1.
  MultiEngineConfig big;
  big.engines = 16;
  const auto t = estimate_multi_engine(big, 128, 128);
  EXPECT_GT(t.rotation_bound_fraction, 0.5);
  MultiEngineConfig eight, sixteen;
  eight.engines = 8;
  sixteen.engines = 16;
  const double t8 = estimate_multi_engine(eight, 128, 128).seconds;
  const double t16 = estimate_multi_engine(sixteen, 128, 128).seconds;
  EXPECT_LT(t8 / t16, 1.3);  // far from the 2x of linear scaling
}

TEST(MultiEngine, ReductionCostOnlyWithMultipleEngines) {
  MultiEngineConfig one, four;
  one.engines = 1;
  four.engines = 4;
  EXPECT_EQ(estimate_multi_engine(one, 256, 256).reduction, 0u);
  EXPECT_GT(estimate_multi_engine(four, 256, 256).reduction, 0u);
}

TEST(MultiEngine, ZeroEnginesThrows) {
  MultiEngineConfig cfg;
  cfg.engines = 0;
  EXPECT_THROW(estimate_multi_engine(cfg, 64, 64), Error);
}

}  // namespace
}  // namespace hjsvd::arch

// Tests for the multi-engine (HC-2) scaling model.
#include "arch/multi_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "arch/timing_model.hpp"
#include "common/error.hpp"

namespace hjsvd::arch {
namespace {

TEST(MultiEngine, OneEngineMatchesSingleModelClosely) {
  MultiEngineConfig cfg;
  cfg.engines = 1;
  for (std::size_t n : {128u, 512u}) {
    const auto multi = estimate_multi_engine(cfg, n, n);
    const auto single = estimate_timing(cfg.engine, n, n);
    const double ratio = static_cast<double>(multi.total) /
                         static_cast<double>(single.total);
    EXPECT_GT(ratio, 0.9) << n;
    EXPECT_LT(ratio, 1.1) << n;
  }
}

TEST(MultiEngine, MoreEnginesNeverSlower) {
  for (std::size_t n : {128u, 256u, 1024u}) {
    double prev = 1e300;
    for (std::uint32_t e : {1u, 2u, 4u, 8u}) {
      MultiEngineConfig cfg;
      cfg.engines = e;
      const auto t = estimate_multi_engine(cfg, n, n);
      EXPECT_LE(t.seconds, prev * 1.001) << "n=" << n << " e=" << e;
      prev = t.seconds;
    }
  }
}

TEST(MultiEngine, NearLinearWhileUpdatesDominate) {
  // At n = 512 four engines' combined BRAM holds the sliced D on chip and
  // the covariance updates dwarf the rotation cadence: close to 4x.
  MultiEngineConfig one, four;
  one.engines = 1;
  four.engines = 4;
  const double t1 = estimate_multi_engine(one, 512, 512).seconds;
  const double t4 = estimate_multi_engine(four, 512, 512).seconds;
  EXPECT_GT(t1 / t4, 3.0);
}

TEST(MultiEngine, SharedMemoryWallLimitsLargeColumns) {
  // At n = 1024 even four engines' BRAM cannot hold D; the shared memory
  // channel becomes the wall and scaling collapses — the model's honest
  // caveat about the future-work extension.
  MultiEngineConfig one, four;
  one.engines = 1;
  four.engines = 4;
  const double t1 = estimate_multi_engine(one, 1024, 1024).seconds;
  const double t4 = estimate_multi_engine(four, 1024, 1024).seconds;
  EXPECT_LT(t1 / t4, 2.0);
  EXPECT_GT(t1 / t4, 1.0);
}

TEST(MultiEngine, SaturatesOnTheSerialRotationCadence) {
  // At small n, a few engines already push updates below the 64-cycle group
  // cadence; adding more engines stops helping and the serial fraction
  // rises toward 1.
  MultiEngineConfig big;
  big.engines = 16;
  const auto t = estimate_multi_engine(big, 128, 128);
  EXPECT_GT(t.rotation_bound_fraction, 0.5);
  MultiEngineConfig eight, sixteen;
  eight.engines = 8;
  sixteen.engines = 16;
  const double t8 = estimate_multi_engine(eight, 128, 128).seconds;
  const double t16 = estimate_multi_engine(sixteen, 128, 128).seconds;
  EXPECT_LT(t8 / t16, 1.3);  // far from the 2x of linear scaling
}

TEST(MultiEngine, ReductionCostOnlyWithMultipleEngines) {
  MultiEngineConfig one, four;
  one.engines = 1;
  four.engines = 4;
  EXPECT_EQ(estimate_multi_engine(one, 256, 256).reduction, 0u);
  EXPECT_GT(estimate_multi_engine(four, 256, 256).reduction, 0u);
}

TEST(MultiEngine, ZeroEnginesThrows) {
  MultiEngineConfig cfg;
  cfg.engines = 0;
  EXPECT_THROW(estimate_multi_engine(cfg, 64, 64), Error);
}

TEST(ShardByCost, CoversEveryIndexExactlyOnce) {
  const std::vector<double> costs{5.0, 1.0, 3.0, 8.0, 2.0, 2.0, 7.0};
  const auto shards = shard_by_cost(costs, 3);
  ASSERT_EQ(shards.size(), 3u);
  std::vector<int> seen(costs.size(), 0);
  for (const auto& shard : shards)
    for (std::size_t i : shard) {
      ASSERT_LT(i, costs.size());
      ++seen[i];
    }
  for (std::size_t i = 0; i < costs.size(); ++i) EXPECT_EQ(seen[i], 1) << i;
}

TEST(ShardByCost, BalancesLoadWithinLargestItem) {
  // LPT guarantee: max load <= mean load + largest item.
  const std::vector<double> costs{9.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0};
  const auto shards = shard_by_cost(costs, 3);
  double total = 0.0, largest = 0.0, max_load = 0.0;
  for (double c : costs) {
    total += c;
    largest = std::max(largest, c);
  }
  for (const auto& shard : shards) {
    double load = 0.0;
    for (std::size_t i : shard) load += costs[i];
    max_load = std::max(max_load, load);
  }
  EXPECT_LE(max_load, total / 3.0 + largest + 1e-12);
}

TEST(ShardByCost, DeterministicAcrossCalls) {
  const std::vector<double> costs{2.0, 2.0, 2.0, 2.0, 5.0};
  const auto a = shard_by_cost(costs, 2);
  const auto b = shard_by_cost(costs, 2);
  EXPECT_EQ(a, b);
}

TEST(ShardByCost, MoreShardsThanItems) {
  const std::vector<double> costs{1.0, 4.0};
  const auto shards = shard_by_cost(costs, 5);
  ASSERT_EQ(shards.size(), 5u);
  std::size_t assigned = 0;
  for (const auto& shard : shards) assigned += shard.size();
  EXPECT_EQ(assigned, costs.size());
}

TEST(ShardByCost, EmptyCostsYieldEmptyShards) {
  const auto shards = shard_by_cost({}, 4);
  ASSERT_EQ(shards.size(), 4u);
  for (const auto& shard : shards) EXPECT_TRUE(shard.empty());
}

TEST(ShardByCost, RejectsInvalidArguments) {
  EXPECT_THROW(shard_by_cost({1.0}, 0), Error);
  EXPECT_THROW(shard_by_cost({-1.0}, 2), Error);
  EXPECT_THROW(shard_by_cost({std::numeric_limits<double>::infinity()}, 2),
               Error);
}

}  // namespace
}  // namespace hjsvd::arch

// Tests for the cycle-stepped update-array simulation.
#include "arch/update_array_sim.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hjsvd::arch {
namespace {

const fp::CoreLatencies kLat;
constexpr hwsim::Cycle kKernelLatency = 9 + 14;  // mul + add

TEST(UpdateArray, SingleGroupDrainsAtKernelRate) {
  // 80 pairs on 8 kernels = 10 issue cycles + datapath latency.
  const std::vector<UpdateGroupArrival> groups = {{0, 80}};
  const auto r = simulate_update_array(groups, 8, 12, 4, kLat);
  EXPECT_EQ(r.pairs_processed, 80u);
  EXPECT_EQ(r.drain_cycle, 9u + kKernelLatency);  // last issue at cycle 9
  EXPECT_NEAR(r.kernel_utilization, 1.0, 1e-9);
  EXPECT_EQ(r.bank_conflict_retries, 0u);
}

TEST(UpdateArray, MatchesTransactionLevelCharge) {
  // The transaction model charges ceil(pairs/kernels); the cycle-stepped
  // issue window must equal that exactly for a lone group.
  for (std::uint64_t pairs : {1u, 7u, 8u, 9u, 100u, 1000u}) {
    const std::vector<UpdateGroupArrival> groups = {{0, pairs}};
    const auto r = simulate_update_array(groups, 8, 8, 4, kLat);
    const hwsim::Cycle expect_issue = (pairs + 7) / 8;
    EXPECT_EQ(r.drain_cycle, expect_issue - 1 + kKernelLatency) << pairs;
  }
}

TEST(UpdateArray, BankShortageThrottlesThroughput) {
  // 8 kernels but only 4 banks: effective rate halves.
  const std::vector<UpdateGroupArrival> groups = {{0, 80}};
  const auto full = simulate_update_array(groups, 8, 8, 4, kLat);
  const auto starved = simulate_update_array(groups, 8, 4, 4, kLat);
  EXPECT_GT(starved.drain_cycle, full.drain_cycle);
  EXPECT_GT(starved.bank_conflict_retries, 0u);
  EXPECT_EQ(starved.drain_cycle, 19u + kKernelLatency);  // 80/4 = 20 cycles
}

TEST(UpdateArray, IdleGapsCountAsFifoStalls) {
  // Second group's parameters arrive long after the first drains.
  const std::vector<UpdateGroupArrival> groups = {{0, 8}, {100, 8}};
  const auto r = simulate_update_array(groups, 8, 8, 4, kLat);
  EXPECT_GT(r.fifo_stall_cycles, 90u);
  EXPECT_EQ(r.pairs_processed, 16u);
  EXPECT_EQ(r.drain_cycle, 100u + kKernelLatency);
  EXPECT_LT(r.kernel_utilization, 0.05);
}

TEST(UpdateArray, BackToBackGroupsKeepKernelsSaturated) {
  std::vector<UpdateGroupArrival> groups;
  for (int g = 0; g < 10; ++g)
    groups.push_back({static_cast<hwsim::Cycle>(g), 64});
  const auto r = simulate_update_array(groups, 8, 8, 8, kLat);
  EXPECT_EQ(r.pairs_processed, 640u);
  EXPECT_NEAR(r.kernel_utilization, 1.0, 0.02);
  EXPECT_EQ(r.drain_cycle, 79u + kKernelLatency);  // 640/8 = 80 issue cycles
}

TEST(UpdateArray, ShallowFifoDelaysLateGroups) {
  // All groups ready at cycle 0; a depth-1 FIFO admits them one at a time,
  // but since the kernels drain the head immediately, total time matches —
  // the FIFO only matters when the producer must not stall (checked via the
  // accelerator model); here we just check correctness of accounting.
  std::vector<UpdateGroupArrival> groups = {{0, 16}, {0, 16}, {0, 16}};
  const auto deep = simulate_update_array(groups, 8, 8, 8, kLat);
  const auto shallow = simulate_update_array(groups, 8, 8, 1, kLat);
  EXPECT_EQ(deep.pairs_processed, shallow.pairs_processed);
  EXPECT_EQ(deep.drain_cycle, shallow.drain_cycle);
}

TEST(UpdateArray, EmptyScheduleIsZero) {
  const auto r = simulate_update_array({}, 8, 8, 4, kLat);
  EXPECT_EQ(r.pairs_processed, 0u);
  EXPECT_EQ(r.drain_cycle, 0u);
}

TEST(UpdateArray, RejectsBadConfigAndDisorder) {
  EXPECT_THROW(simulate_update_array({{0, 8}}, 0, 8, 4, kLat), Error);
  EXPECT_THROW(simulate_update_array({{0, 8}}, 8, 0, 4, kLat), Error);
  EXPECT_THROW(simulate_update_array({{0, 8}}, 8, 8, 0, kLat), Error);
  const std::vector<UpdateGroupArrival> disordered = {{10, 8}, {5, 8}};
  EXPECT_THROW(simulate_update_array(disordered, 8, 8, 4, kLat), Error);
}

TEST(UpdateArray, PaperConfigurationSweepSegment) {
  // A slice of the paper's workload: groups of 8 rotations at n = 128 in a
  // late sweep — 8 * 126 = 1008 covariance pairs per group, arriving at the
  // 64-cycle cadence.  With 12 kernels the array is the bottleneck, so the
  // drain rate is pairs/kernels per group, far above the cadence.
  std::vector<UpdateGroupArrival> groups;
  for (int g = 0; g < 8; ++g)
    groups.push_back({static_cast<hwsim::Cycle>(64 * g), 1008});
  const auto r = simulate_update_array(groups, 12, 12, 4, kLat);
  EXPECT_EQ(r.pairs_processed, 8u * 1008u);
  // 8064 pairs / 12 per cycle = 672 issue cycles, >> 8 * 64 cadence.
  EXPECT_GE(r.drain_cycle, 671u);
  EXPECT_NEAR(r.kernel_utilization, 1.0, 0.02);
}

}  // namespace
}  // namespace hjsvd::arch

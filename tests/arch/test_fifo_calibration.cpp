// FIFO cross-check calibration (docs/OBSERVABILITY.md): the simulator's
// parameter-FIFO high-water counts rotation *groups* of
// AcceleratorConfig::rotation_group_size rotations, while the software
// pipeline's PipelineStats::queue_high_water counts single rotations.  The
// calibration maps a hardware FIFO of depth d groups to a software queue of
// d * rotation_group_size rotations; these tests pin the mapping down and
// assert the simulated hardware bound dominates the software engine's
// measured high-water across queue depths.
#include "arch/accelerator_sim.hpp"

#include <gtest/gtest.h>

#include <cstddef>

#include "arch/timing_model.hpp"
#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "obs/metrics.hpp"
#include "svd/parallel_sweep.hpp"

namespace hjsvd::arch {
namespace {

// n chosen so a full group's covariance updates outlast the rotation issue
// cadence — ceil(8 * (192 - 2) / 16) = 95 cycles > 64 — which is what lets
// the rotation unit run ahead and actually fill the FIFO (the paper's
// "performance is dominated by the amount of updates" regime).  Smaller n
// would leave the FIFO near-empty and the domination check vacuous.
constexpr std::size_t kN = 192;

Matrix saturating_matrix() {
  Rng rng(2026);
  return random_gaussian(kN, kN, rng);
}

TEST(FifoCalibration, SimulatedFifoSaturatesAtConfiguredDepth) {
  const Matrix a = saturating_matrix();
  for (const std::uint32_t depth : {1u, 2u, 8u}) {
    AcceleratorConfig cfg;
    cfg.param_fifo_depth = depth;
    const auto run = simulate_accelerator(a, cfg);
    EXPECT_EQ(run.param_fifo_high_water, depth) << "depth " << depth;
    EXPECT_EQ(run.param_fifo_high_water_rotations,
              depth * cfg.rotation_group_size)
        << "depth " << depth;
  }
}

TEST(FifoCalibration, SimBoundDominatesSoftwareHighWater) {
  const Matrix a = saturating_matrix();
  for (const std::uint32_t depth : {1u, 2u, 8u}) {
    AcceleratorConfig cfg;
    cfg.param_fifo_depth = depth;
    const auto run = simulate_accelerator(a, cfg);

    // The calibrated software twin: a queue of depth * rotation_group_size
    // single rotations.
    PipelinedSweepConfig pipe;
    pipe.threads = 2;
    pipe.queue_depth =
        static_cast<std::size_t>(depth) * cfg.rotation_group_size;
    HestenesConfig num;
    num.max_sweeps = cfg.sweeps;
    PipelineStats stats;
    pipelined_modified_hestenes_svd(a, num, pipe, nullptr, &stats);

    EXPECT_GE(stats.queue_high_water, 1u) << "depth " << depth;
    EXPECT_GE(run.param_fifo_high_water_rotations, stats.queue_high_water)
        << "calibrated sim bound must dominate the software queue at depth "
        << depth;
  }
}

TEST(FifoCalibration, MetricsShareNamespaceWithExplicitUnits) {
  const Matrix a = saturating_matrix();
  obs::MetricsRegistry metrics;

  AcceleratorConfig cfg;
  cfg.param_fifo_depth = 2;
  cfg.obs.metrics = &metrics;
  simulate_accelerator(a, cfg);

  PipelinedSweepConfig pipe;
  pipe.threads = 2;
  pipe.queue_depth = static_cast<std::size_t>(2) * cfg.rotation_group_size;
  HestenesConfig num;
  num.max_sweeps = cfg.sweeps;
  num.obs.metrics = &metrics;
  pipelined_modified_hestenes_svd(a, num, pipe);

  // One registry, two producers, explicit units: groups on the sim side,
  // rotations on both once calibrated.
  EXPECT_EQ(metrics.unit("sim.param_fifo.high_water").value(),
            "rotation_groups");
  EXPECT_EQ(metrics.unit("sim.param_fifo.high_water_rotations").value(),
            "rotations");
  EXPECT_EQ(metrics.unit("pipeline.queue.high_water").value(), "rotations");
  EXPECT_EQ(metrics.gauge("sim.rotation_group_size").value(),
            static_cast<double>(cfg.rotation_group_size));
  EXPECT_GE(metrics.gauge("sim.param_fifo.high_water_rotations").value(),
            metrics.gauge("pipeline.queue.high_water").value());
}

TEST(FifoCalibration, AnalyticModelAgreesWithSimulatorWhenSaturated) {
  for (const std::uint32_t depth : {1u, 2u, 8u}) {
    AcceleratorConfig cfg;
    cfg.param_fifo_depth = depth;
    const auto t = estimate_timing(cfg, kN, kN);
    EXPECT_EQ(t.param_fifo_occupancy, depth);
    EXPECT_EQ(t.param_fifo_occupancy_rotations,
              depth * cfg.rotation_group_size);
  }
}

}  // namespace
}  // namespace hjsvd::arch

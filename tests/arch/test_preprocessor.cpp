// Tests for the cycle-stepped Hestenes preprocessor simulation.
#include "arch/preprocessor_sim.hpp"

#include <gtest/gtest.h>

#include "arch/timing_model.hpp"

namespace hjsvd::arch {
namespace {

TEST(PreprocessorSim, MacCountIsExact) {
  const AcceleratorConfig cfg;
  for (std::size_t m : {8u, 17u, 64u}) {
    for (std::size_t n : {4u, 8u, 32u}) {
      const auto r = simulate_preprocessor(cfg, m, n);
      EXPECT_EQ(r.macs, static_cast<std::uint64_t>(m) * n * (n + 1) / 2)
          << m << "x" << n;
    }
  }
}

TEST(PreprocessorSim, EveryElementStreamedOnce) {
  const AcceleratorConfig cfg;
  const auto r = simulate_preprocessor(cfg, 32, 16);
  EXPECT_EQ(r.words_streamed, 32u * 16u);
}

TEST(PreprocessorSim, CyclesAtLeastTheComputeBound) {
  const AcceleratorConfig cfg;
  for (std::size_t m : {16u, 64u, 128u}) {
    for (std::size_t n : {8u, 32u, 64u}) {
      const auto r = simulate_preprocessor(cfg, m, n);
      const std::uint64_t macs = static_cast<std::uint64_t>(m) * n * (n + 1) / 2;
      const auto bound = macs / cfg.preproc_macs_per_cycle();
      EXPECT_GE(r.cycles, bound);
    }
  }
}

TEST(PreprocessorSim, AgreesWithAnalyticModelWithinSlack) {
  const AcceleratorConfig cfg;
  for (std::size_t m : {32u, 64u, 128u}) {
    for (std::size_t n : {16u, 64u, 128u}) {
      const auto sim = simulate_preprocessor(cfg, m, n);
      const auto analytic = estimate_timing(cfg, m, n).preprocess;
      const double ratio = static_cast<double>(sim.cycles) /
                           static_cast<double>(analytic);
      EXPECT_GT(ratio, 0.8) << m << "x" << n;
      EXPECT_LT(ratio, 1.6) << m << "x" << n;
    }
  }
}

TEST(PreprocessorSim, MoreLanesFewerCycles) {
  AcceleratorConfig narrow, wide;
  wide.preproc_lanes = 8;
  wide.input_words_per_cycle = 16.0;  // keep input from becoming the bound
  const auto rn = simulate_preprocessor(narrow, 64, 64);
  const auto rw = simulate_preprocessor(wide, 64, 64);
  EXPECT_LT(rw.cycles, rn.cycles);
}

TEST(PreprocessorSim, InputBoundWhenComputeIsWide) {
  // With a huge MAC array and a narrow input, streaming dominates: cycles
  // approach m*n / input_words_per_cycle.
  AcceleratorConfig cfg;
  cfg.preproc_layers = 16;
  cfg.preproc_lanes = 64;
  cfg.input_words_per_cycle = 2.0;
  const auto r = simulate_preprocessor(cfg, 64, 32);
  const double input_bound = 64.0 * 32.0 / 2.0;
  EXPECT_GE(static_cast<double>(r.cycles), input_bound);
  EXPECT_LE(static_cast<double>(r.cycles), input_bound * 1.5 + 100);
}

TEST(PreprocessorSim, SingleRowSingleColumn) {
  const AcceleratorConfig cfg;
  const auto r = simulate_preprocessor(cfg, 1, 1);
  EXPECT_EQ(r.macs, 1u);
  EXPECT_GT(r.cycles, 0u);
}

}  // namespace
}  // namespace hjsvd::arch

// Tests for the analytic timing model against the paper's Table I and its
// qualitative claims.
#include "arch/timing_model.hpp"

#include <gtest/gtest.h>

#include "baselines/literature.hpp"

namespace hjsvd::arch {
namespace {

TEST(TimingModel, ReproducesEveryTableOneCellWithinBand) {
  // The model is a reproduction on a simulated substrate: we require every
  // cell of Table I to agree within 35% (most are well inside 15%).
  const AcceleratorConfig cfg;
  for (const auto& cell : literature::paper_table1()) {
    const double ours = estimate_seconds(cfg, cell.rows, cell.cols);
    const double ratio = ours / cell.seconds;
    EXPECT_GT(ratio, 0.65) << "n=" << cell.cols << " m=" << cell.rows;
    EXPECT_LT(ratio, 1.35) << "n=" << cell.cols << " m=" << cell.rows;
  }
}

TEST(TimingModel, ColumnGrowthIsRoughlyCubic) {
  // Table I's dominant axis: doubling the column count multiplies time by
  // ~7-8 (the covariance work is O(n^3) per sweep set).
  const AcceleratorConfig cfg;
  const double t128 = estimate_seconds(cfg, 128, 128);
  const double t256 = estimate_seconds(cfg, 128, 256);
  const double t512 = estimate_seconds(cfg, 128, 512);
  EXPECT_GT(t256 / t128, 4.0);
  EXPECT_LT(t256 / t128, 9.0);
  EXPECT_GT(t512 / t256, 5.0);
  EXPECT_LT(t512 / t256, 9.0);
}

TEST(TimingModel, RowGrowthIsMild) {
  // "the number of rows ... has smaller impact on the performance".
  const AcceleratorConfig cfg;
  const double t128 = estimate_seconds(cfg, 128, 512);
  const double t1024 = estimate_seconds(cfg, 1024, 512);
  EXPECT_LT(t1024 / t128, 3.0);  // 8x rows => well under 3x time
  EXPECT_GT(t1024 / t128, 1.0);
}

TEST(TimingModel, MonotoneInBothDimensions) {
  const AcceleratorConfig cfg;
  for (std::size_t n : {64u, 128u, 256u}) {
    EXPECT_LT(estimate_seconds(cfg, 128, n), estimate_seconds(cfg, 256, n));
    EXPECT_LT(estimate_seconds(cfg, 128, n), estimate_seconds(cfg, 128, 2 * n));
  }
}

TEST(TimingModel, CovarianceSpillsOffChipBeyond256Columns) {
  const AcceleratorConfig cfg;
  EXPECT_TRUE(estimate_timing(cfg, 128, 256).covariance_fits_onchip);
  EXPECT_FALSE(estimate_timing(cfg, 128, 257).covariance_fits_onchip);
  EXPECT_EQ(estimate_timing(cfg, 128, 256).io_bound_cycles, 0u);
  EXPECT_GT(estimate_timing(cfg, 128, 1024).io_bound_cycles, 0u);
}

TEST(TimingModel, ReducedBandwidthHurtsLargeColumnsOnly)
{
  AcceleratorConfig fast, slow;
  slow.memory.words_per_cycle = 8.0;  // throttle the HC-2 interface
  EXPECT_EQ(estimate_seconds(fast, 128, 128),
            estimate_seconds(slow, 128, 128));  // on-chip: no effect
  EXPECT_GT(estimate_seconds(slow, 128, 512),
            1.5 * estimate_seconds(fast, 128, 512));
}

TEST(TimingModel, RotationLatencyComesFromTheDataflow) {
  const auto t = estimate_timing(AcceleratorConfig{}, 64, 64);
  EXPECT_GE(t.rotation_latency, 231u);
  EXPECT_LE(t.rotation_latency, 260u);
}

TEST(TimingModel, RotationsPerSweepIsAllPairs) {
  const auto t = estimate_timing(AcceleratorConfig{}, 64, 48);
  EXPECT_EQ(t.rotations_per_sweep, 48u * 47u / 2u);
}

TEST(TimingModel, BreakdownSumsToTotal) {
  const auto t = estimate_timing(AcceleratorConfig{}, 256, 128);
  EXPECT_EQ(t.preprocess + t.sweep1 + t.later_sweeps + t.finalize, t.total);
  EXPECT_NEAR(t.seconds * 150e6, static_cast<double>(t.total), 1.0);
}

TEST(TimingModel, MoreSweepsCostProportionally) {
  AcceleratorConfig six, twelve;
  twelve.sweeps = 12;
  const auto t6 = estimate_timing(six, 128, 128);
  const auto t12 = estimate_timing(twelve, 128, 128);
  EXPECT_NEAR(static_cast<double>(t12.later_sweeps) /
                  static_cast<double>(t6.later_sweeps),
              11.0 / 5.0, 0.05);
}

TEST(TimingModel, TallSkinnyDominatedByPreprocess) {
  const auto t = estimate_timing(AcceleratorConfig{}, 4096, 16);
  EXPECT_GT(t.preprocess, t.later_sweeps);
}

TEST(TimingModel, VAccumulationCostsExtraUpdateWork) {
  AcceleratorConfig plain, with_v;
  with_v.accumulate_v = true;
  const double t_plain = estimate_seconds(plain, 128, 128);
  const double t_v = estimate_seconds(with_v, 128, 128);
  EXPECT_GT(t_v, t_plain);
  // V rows (n) rotate at the column rate every sweep: roughly doubles the
  // covariance-bound update work at square sizes, so well under 3x total.
  EXPECT_LT(t_v / t_plain, 3.0);
}

TEST(TimingModel, VAccumulationCheaperForTallMatrices) {
  // V is n x n: its cost is row-independent, so the relative overhead
  // shrinks as m grows.
  AcceleratorConfig plain, with_v;
  with_v.accumulate_v = true;
  const double square_overhead = estimate_seconds(with_v, 128, 128) /
                                 estimate_seconds(plain, 128, 128);
  const double tall_overhead = estimate_seconds(with_v, 2048, 128) /
                               estimate_seconds(plain, 2048, 128);
  EXPECT_LT(tall_overhead, square_overhead);
}

TEST(TimingModel, FormatIsHumanReadable) {
  const auto t = estimate_timing(AcceleratorConfig{}, 128, 128);
  const std::string s = format_timing(t, 128, 128);
  EXPECT_NE(s.find("preprocess"), std::string::npos);
  EXPECT_NE(s.find("128 x 128"), std::string::npos);
}

}  // namespace
}  // namespace hjsvd::arch

// Tests for the resource model against the paper's Table II.
#include "arch/resource_model.hpp"

#include <gtest/gtest.h>

#include "baselines/literature.hpp"

namespace hjsvd::arch {
namespace {

TEST(ResourceModel, ReproducesTableTwo) {
  const ResourceReport r = estimate_resources(AcceleratorConfig{});
  const auto paper = literature::paper_table2();
  // Calibrated catalog: each utilization within 5 percentage points.
  EXPECT_NEAR(r.lut_pct, paper.lut_pct, 5.0);
  EXPECT_NEAR(r.bram_pct, paper.bram_pct, 5.0);
  EXPECT_NEAR(r.dsp_pct, paper.dsp_pct, 5.0);
  EXPECT_TRUE(r.fits);
}

TEST(ResourceModel, DspCountMatchesMultiplierBudget) {
  // 16 (preprocessor) + 1 (rotation) + 32 (update) multipliers x 2 DSP each
  // + 4 for the divider = 102 DSP48E.
  const ResourceReport r = estimate_resources(AcceleratorConfig{});
  EXPECT_EQ(r.dsp48, 102u);
}

TEST(ResourceModel, MoreKernelsUseMoreResources) {
  AcceleratorConfig small, big;
  big.update_kernels = 16;
  const auto rs = estimate_resources(small);
  const auto rb = estimate_resources(big);
  EXPECT_GT(rb.luts, rs.luts);
  EXPECT_GT(rb.dsp48, rs.dsp48);
}

TEST(ResourceModel, DoubledDesignDoesNotFit) {
  AcceleratorConfig cfg;
  cfg.update_kernels = 32;
  cfg.preproc_layers = 8;
  cfg.preproc_lanes = 8;
  const auto r = estimate_resources(cfg);
  EXPECT_FALSE(r.fits);
}

TEST(ResourceModel, LargerOnchipCovarianceNeedsMoreBram) {
  AcceleratorConfig cfg;
  const auto r256 = estimate_resources(cfg, {}, {}, 2048, 256);
  const auto r512 = estimate_resources(cfg, {}, {}, 2048, 512);
  EXPECT_GT(r512.bram36, r256.bram36);
  // A 512-column covariance cache would overflow the paper's BRAM budget —
  // exactly why the paper caps on-chip D at 256 columns.
  EXPECT_FALSE(r512.fits);
}

TEST(ResourceModel, LargerDevicesFitLargerArrays) {
  AcceleratorConfig big;
  big.update_kernels = 40;
  EXPECT_FALSE(estimate_resources(big, virtex5_lx330()).fits);
  EXPECT_TRUE(estimate_resources(big, virtex6_lx760()).fits);
  AcceleratorConfig huge;
  huge.update_kernels = 128;
  EXPECT_FALSE(estimate_resources(huge, virtex6_lx760()).fits);
  EXPECT_TRUE(estimate_resources(huge, virtex7_2000t()).fits);
}

TEST(ResourceModel, DeviceCatalogCapacitiesAreOrdered) {
  EXPECT_LT(virtex5_lx330().luts, virtex6_lx760().luts);
  EXPECT_LT(virtex6_lx760().luts, virtex7_2000t().luts);
  EXPECT_LT(virtex5_lx330().dsp48, virtex6_lx760().dsp48);
}

TEST(ResourceModel, BreakdownSumsBelowTotal) {
  const ResourceReport r = estimate_resources(AcceleratorConfig{});
  EXPECT_EQ(r.luts_preprocessor + r.luts_rotation + r.luts_update +
                r.luts_fifos + r.luts_platform,
            r.luts);
}

TEST(ResourceModel, FormatMentionsDevice) {
  const ResourceReport r = estimate_resources(AcceleratorConfig{});
  const std::string s = format_resource_report(r);
  EXPECT_NE(s.find("XC5VLX330"), std::string::npos);
  EXPECT_NE(s.find("DSP48E"), std::string::npos);
}

}  // namespace
}  // namespace hjsvd::arch

// Tests for the transaction-level accelerator simulator: numerical
// equivalence with the library algorithm and timing agreement with the
// analytic model.
#include "arch/accelerator_sim.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "baselines/golub_kahan.hpp"
#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "svd/hestenes.hpp"
#include "svd/parallel_sweep.hpp"

namespace hjsvd::arch {
namespace {

TEST(AcceleratorSim, BitIdenticalToLibraryAlgorithm) {
  Rng rng(90);
  const Matrix a = random_gaussian(24, 16, rng);
  const AcceleratorConfig cfg;
  const auto run = simulate_accelerator(a, cfg);

  HestenesConfig lib;
  lib.max_sweeps = cfg.sweeps;
  lib.ordering = Ordering::kRoundRobin;
  lib.formula = RotationFormula::kHardware;
  lib.gram_chunk_rows = cfg.preproc_layers;
  const SvdResult ref = modified_hestenes_svd(a, lib);

  ASSERT_EQ(run.svd.singular_values.size(), ref.singular_values.size());
  for (std::size_t i = 0; i < ref.singular_values.size(); ++i)
    EXPECT_EQ(fp::to_bits(run.svd.singular_values[i]),
              fp::to_bits(ref.singular_values[i]))
        << "index " << i;
}

TEST(AcceleratorSim, ValuesMatchGolubKahan) {
  Rng rng(91);
  const Matrix a = random_gaussian(48, 32, rng);
  const auto run = simulate_accelerator(a);
  const SvdResult ref = golub_kahan_svd(a);
  EXPECT_LT(
      singular_value_error(run.svd.singular_values, ref.singular_values),
      1e-9);
}

TEST(AcceleratorSim, TimingAgreesWithAnalyticModel) {
  const AcceleratorConfig cfg;
  Rng rng(92);
  for (std::size_t n : {16u, 32u, 64u}) {
    const Matrix a = random_gaussian(n, n, rng);
    const auto run = simulate_accelerator(a, cfg);
    const auto analytic = estimate_timing(cfg, n, n);
    const double ratio = static_cast<double>(run.total_cycles) /
                         static_cast<double>(analytic.total);
    EXPECT_GT(ratio, 0.7) << "n=" << n;
    EXPECT_LT(ratio, 1.4) << "n=" << n;
  }
}

TEST(AcceleratorSim, CycleCountsMonotoneInSize) {
  Rng rng(93);
  const auto r16 = simulate_accelerator(random_gaussian(16, 16, rng));
  const auto r32 = simulate_accelerator(random_gaussian(32, 32, rng));
  const auto r64 = simulate_accelerator(random_gaussian(64, 64, rng));
  EXPECT_LT(r16.total_cycles, r32.total_cycles);
  EXPECT_LT(r32.total_cycles, r64.total_cycles);
}

TEST(AcceleratorSim, RowsAffectOnlyPreprocessAndSweepOne) {
  Rng rng(94);
  const auto tall = simulate_accelerator(random_gaussian(128, 16, rng));
  const auto flat = simulate_accelerator(random_gaussian(16, 16, rng));
  EXPECT_GT(tall.preprocess_cycles, flat.preprocess_cycles);
  EXPECT_GT(tall.total_cycles, flat.total_cycles);
}

TEST(AcceleratorSim, NoOffchipTrafficWhenCovarianceFits) {
  Rng rng(95);
  const auto r = simulate_accelerator(random_gaussian(32, 32, rng));
  EXPECT_EQ(r.offchip_words, 0u);
}

TEST(AcceleratorSim, OffchipTrafficWhenCovarianceSpills) {
  Rng rng(96);
  AcceleratorConfig cfg;
  cfg.bram_covariance_words = 64;  // shrink BRAM to force spill at small n
  const auto r = simulate_accelerator(random_gaussian(24, 24, rng), cfg);
  EXPECT_GT(r.offchip_words, 0u);
}

TEST(AcceleratorSim, SecondsConsistentWithClock) {
  Rng rng(97);
  const auto r = simulate_accelerator(random_gaussian(20, 20, rng));
  EXPECT_NEAR(r.seconds * 150e6, static_cast<double>(r.total_cycles), 1.0);
}

TEST(AcceleratorSim, GroupCountMatchesOrdering) {
  Rng rng(98);
  const std::size_t n = 32;
  const auto r = simulate_accelerator(random_gaussian(n, n, rng));
  // 31 rounds x 2 groups (16 pairs / 8 per group) x 6 sweeps.
  EXPECT_EQ(r.rotation_groups, 31u * 2u * 6u);
}

TEST(AcceleratorSim, UtilizationAccountingIsSane) {
  Rng rng(100);
  const auto r = simulate_accelerator(random_gaussian(64, 64, rng));
  EXPECT_GT(r.update_busy_cycles, 0u);
  EXPECT_GT(r.rotation_busy_cycles, 0u);
  EXPECT_LE(r.update_utilization, 1.0 + 1e-9);
  EXPECT_GT(r.update_utilization, 0.3);  // updates dominate (Section V.C)
  EXPECT_LE(r.rotation_utilization, 1.0 + 1e-9);
}

TEST(AcceleratorSim, TallMatrixPushesUpdateUtilizationHigher) {
  Rng rng(101);
  const auto square = simulate_accelerator(random_gaussian(32, 32, rng));
  const auto tall = simulate_accelerator(random_gaussian(256, 32, rng));
  // Sweep-1 column updates scale with m, so the tall case keeps the update
  // kernels busier.
  EXPECT_GT(tall.update_busy_cycles, square.update_busy_cycles);
}

TEST(AcceleratorSim, VAccumulationSlowsTheRun) {
  Rng rng(102);
  const Matrix a = random_gaussian(32, 32, rng);
  AcceleratorConfig plain, with_v;
  with_v.accumulate_v = true;
  EXPECT_GT(simulate_accelerator(a, with_v).total_cycles,
            simulate_accelerator(a, plain).total_cycles);
}

TEST(AcceleratorSim, ShallowParamFifoAddsBackpressure) {
  Rng rng(103);
  const Matrix a = random_gaussian(24, 24, rng);
  AcceleratorConfig deep, shallow;
  deep.param_fifo_depth = 16;
  shallow.param_fifo_depth = 1;
  const auto rd = simulate_accelerator(a, deep);
  const auto rs = simulate_accelerator(a, shallow);
  EXPECT_GE(rs.fifo_backpressure_events, rd.fifo_backpressure_events);
  EXPECT_GE(rs.total_cycles, rd.total_cycles);
}

TEST(AcceleratorSim, FifoHighWaterBoundedAndModeled) {
  Rng rng(108);
  const Matrix a = random_gaussian(64, 64, rng);
  for (std::size_t depth : {1u, 2u, 4u, 16u}) {
    AcceleratorConfig cfg;
    cfg.param_fifo_depth = depth;
    const auto run = simulate_accelerator(a, cfg);
    EXPECT_GE(run.param_fifo_high_water, 1u) << "depth " << depth;
    EXPECT_LE(run.param_fifo_high_water, depth) << "depth " << depth;
    const auto analytic = estimate_timing(cfg, 64, 64);
    EXPECT_GE(analytic.param_fifo_occupancy, 1u) << "depth " << depth;
    EXPECT_LE(analytic.param_fifo_occupancy, depth) << "depth " << depth;
  }
  // With updates slower than the issue cadence the rotation unit runs
  // ahead until the FIFO is full: measured and modeled occupancy both
  // saturate at the configured depth.
  AcceleratorConfig slow;
  slow.param_fifo_depth = 3;
  slow.cov_pairs_per_cycle = 0.25;
  const auto run = simulate_accelerator(a, slow);
  const auto analytic = estimate_timing(slow, 64, 64);
  EXPECT_EQ(run.param_fifo_high_water, 3u);
  EXPECT_EQ(analytic.param_fifo_occupancy, 3u);
}

TEST(AcceleratorSim, FifoHighWaterComparableToSoftwareQueue) {
  // The software pipeline reports its bounded-queue high-water mark in
  // single rotations; the simulator reports it in rotation groups.  Both
  // must respect their configured capacity on the same problem, which is
  // the cross-check the two diagnostics exist for.
  Rng rng(109);
  const Matrix a = random_gaussian(32, 32, rng);
  AcceleratorConfig cfg;
  cfg.param_fifo_depth = 4;
  const auto run = simulate_accelerator(a, cfg);
  EXPECT_LE(run.param_fifo_high_water, cfg.param_fifo_depth);

  HestenesConfig num_cfg;
  num_cfg.max_sweeps = cfg.sweeps;
  PipelinedSweepConfig pipe;
  pipe.threads = 2;
  pipe.queue_depth =
      cfg.param_fifo_depth * cfg.rotation_group_size;  // same capacity in
                                                       // single rotations
  PipelineStats qs;
  (void)pipelined_modified_hestenes_svd(a, num_cfg, pipe, nullptr, &qs);
  EXPECT_GE(qs.queue_high_water, 1u);
  EXPECT_LE(qs.queue_high_water, qs.queue_capacity);
  EXPECT_EQ(qs.queue_capacity, pipe.queue_depth);
}

TEST(AcceleratorSim, ZeroDepthFifoRejected) {
  Rng rng(104);
  AcceleratorConfig cfg;
  cfg.param_fifo_depth = 0;
  EXPECT_THROW(simulate_accelerator(random_gaussian(8, 8, rng), cfg), Error);
}

TEST(AcceleratorSim, InvalidRatesRejected) {
  // Regression: zero / non-finite rates used to flow straight into ceil_div
  // denominators and the seconds conversion, yielding inf/NaN cycle counts
  // instead of an error.
  Rng rng(107);
  const Matrix a = random_gaussian(8, 8, rng);
  {
    AcceleratorConfig cfg;
    cfg.cov_pairs_per_cycle = 0.0;
    EXPECT_THROW(simulate_accelerator(a, cfg), Error);
  }
  {
    AcceleratorConfig cfg;
    cfg.col_pairs_per_cycle = -1.0;
    EXPECT_THROW(simulate_accelerator(a, cfg), Error);
  }
  {
    AcceleratorConfig cfg;
    cfg.clock_hz = 0.0;
    EXPECT_THROW(simulate_accelerator(a, cfg), Error);
  }
  {
    AcceleratorConfig cfg;
    cfg.input_words_per_cycle = std::numeric_limits<double>::infinity();
    EXPECT_THROW(simulate_accelerator(a, cfg), Error);
  }
  {
    AcceleratorConfig cfg;
    cfg.memory.words_per_cycle = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(simulate_accelerator(a, cfg), Error);
  }
  {
    AcceleratorConfig cfg;
    cfg.sweeps = 0;
    EXPECT_THROW(simulate_accelerator(a, cfg), Error);
  }
}

TEST(AcceleratorSim, SingleColumnMatrixIsPreprocessPlusFinalize) {
  Rng rng(105);
  const auto r = simulate_accelerator(random_gaussian(16, 1, rng));
  EXPECT_EQ(r.rotation_groups, 0u);  // nothing to pair
  EXPECT_EQ(r.offchip_words, 0u);
  ASSERT_EQ(r.svd.singular_values.size(), 1u);
  EXPECT_GT(r.svd.singular_values[0], 0.0);
  EXPECT_EQ(r.total_cycles,
            r.preprocess_cycles + r.compute_cycles + r.finalize_cycles);
}

TEST(AcceleratorSim, SingleRowMatrixHandled) {
  Rng rng(106);
  const Matrix a = random_gaussian(1, 8, rng);
  const auto run = simulate_accelerator(a);
  const auto ref = golub_kahan_svd(a);
  ASSERT_EQ(run.svd.singular_values.size(), 1u);
  EXPECT_LT(
      singular_value_error(run.svd.singular_values, ref.singular_values),
      1e-10);
  EXPECT_GT(run.total_cycles, 0u);
}

TEST(AcceleratorSim, RotationLatencyReported) {
  Rng rng(99);
  const auto r = simulate_accelerator(random_gaussian(8, 8, rng));
  EXPECT_GE(r.rotation_latency, 231u);
  EXPECT_LE(r.rotation_latency, 260u);
}

}  // namespace
}  // namespace hjsvd::arch

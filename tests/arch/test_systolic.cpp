// Tests for the two-sided systolic array model (Section III's scalability
// contrast).
#include "arch/systolic_model.hpp"

#include <gtest/gtest.h>

#include "arch/resource_model.hpp"
#include "arch/timing_model.hpp"
#include "common/error.hpp"

namespace hjsvd::arch {
namespace {

TEST(Systolic, PeCountIsQuadratic) {
  EXPECT_EQ(estimate_systolic(8).pe_count, 16u);
  EXPECT_EQ(estimate_systolic(16).pe_count, 64u);
  EXPECT_EQ(estimate_systolic(7).pe_count, 16u);  // ceil(n/2)^2
}

TEST(Systolic, ResourcesGrowQuadratically) {
  const auto r16 = estimate_systolic(16);
  const auto r32 = estimate_systolic(32);
  EXPECT_NEAR(static_cast<double>(r32.luts) / static_cast<double>(r16.luts),
              4.0, 0.3);
}

TEST(Systolic, ScalabilityWallIsTiny) {
  // The paper's Section III claim, quantified: a full DP Brent-Luk array
  // stops fitting the XC5VLX330 at very small n — far below the 1024+
  // columns the Hestenes-Jacobi architecture handles.
  const std::size_t wall = max_systolic_n();
  EXPECT_GE(wall, 4u);
  EXPECT_LE(wall, 32u);
  EXPECT_FALSE(estimate_systolic(wall + 2).fits);
  EXPECT_TRUE(estimate_systolic(wall).fits);
}

TEST(Systolic, HestenesArchitectureIsSizeIndependent) {
  // The HJ design's resources don't depend on n (it streams); the array's
  // do.  Both statements checked on the same device.
  const auto hj = estimate_resources(AcceleratorConfig{});
  EXPECT_TRUE(hj.fits);  // at any n (resources are n-independent)
  EXPECT_FALSE(estimate_systolic(128).fits);
}

TEST(Systolic, FasterThanHestenesWhenItFits) {
  // Full parallelism wins when the array fits — the trade the paper makes.
  const std::size_t n = max_systolic_n();
  const auto sys = estimate_systolic(n);
  const double hj = estimate_seconds(AcceleratorConfig{}, n, n);
  EXPECT_LT(sys.seconds, hj);
}

TEST(Systolic, TimeIsNLogN) {
  const auto t64 = estimate_systolic(64);
  const auto t128 = estimate_systolic(128);
  const double ratio =
      static_cast<double>(t128.cycles) / static_cast<double>(t64.cycles);
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 2.5);  // n log n: 2 * (11/10) ~ 2.2
}

TEST(Systolic, RejectsDegenerate) {
  EXPECT_THROW(estimate_systolic(1), Error);
}

}  // namespace
}  // namespace hjsvd::arch

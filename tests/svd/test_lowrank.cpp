// Tests for the low-rank approximation utilities.
#include "svd/lowrank.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "linalg/kernels.hpp"
#include "svd/hestenes.hpp"

namespace hjsvd {
namespace {

SvdResult full_svd(const Matrix& a) {
  HestenesConfig cfg;
  cfg.max_sweeps = 30;
  cfg.tolerance = 1e-14;
  cfg.compute_u = true;
  cfg.compute_v = true;
  return modified_hestenes_svd(a, cfg);
}

TEST(LowRank, FullRankReconstructsExactly) {
  Rng rng(81);
  const Matrix a = random_gaussian(9, 6, rng);
  const SvdResult svd = full_svd(a);
  const Matrix recon = low_rank_approximation(svd, 6);
  EXPECT_LT(Matrix::max_abs_diff(recon, a), 1e-10);
}

TEST(LowRank, EckartYoungOptimalityHolds) {
  // The rank-k SVD truncation error equals sqrt(sum of dropped sigma^2)
  // (Eckart-Young in Frobenius norm).
  Rng rng(82);
  const Matrix a = random_gaussian(12, 8, rng);
  const SvdResult svd = full_svd(a);
  for (std::size_t k : {1u, 3u, 5u}) {
    const Matrix recon = low_rank_approximation(svd, k);
    Matrix diff(a.rows(), a.cols());
    for (std::size_t c = 0; c < a.cols(); ++c)
      for (std::size_t r = 0; r < a.rows(); ++r)
        diff(r, c) = a(r, c) - recon(r, c);
    double dropped = 0.0;
    for (std::size_t t = k; t < svd.singular_values.size(); ++t)
      dropped += svd.singular_values[t] * svd.singular_values[t];
    EXPECT_NEAR(frobenius_norm(diff), std::sqrt(dropped), 1e-9) << k;
  }
}

TEST(LowRank, KIsClampedToSpectrum) {
  Rng rng(83);
  const Matrix a = random_gaussian(5, 4, rng);
  const SvdResult svd = full_svd(a);
  const Matrix r1 = low_rank_approximation(svd, 4);
  const Matrix r2 = low_rank_approximation(svd, 99);
  EXPECT_EQ(Matrix::max_abs_diff(r1, r2), 0.0);
}

TEST(LowRank, CapturedEnergyMonotoneToOne) {
  Rng rng(84);
  const Matrix a = random_gaussian(10, 7, rng);
  const SvdResult svd = full_svd(a);
  double prev = 0.0;
  for (std::size_t k = 0; k <= 7; ++k) {
    const double e = captured_energy(svd, k);
    EXPECT_GE(e, prev);
    prev = e;
  }
  EXPECT_NEAR(prev, 1.0, 1e-12);
}

TEST(LowRank, RankForEnergyFindsKneePoint) {
  Rng rng(85);
  // Spectrum {10, 1, 0.1, 0.01}: 99% of energy is in the first value.
  const Matrix a =
      with_singular_values(8, 4, {10.0, 1.0, 0.1, 0.01}, rng);
  const SvdResult svd = full_svd(a);
  EXPECT_EQ(rank_for_energy(svd, 0.95), 1u);
  EXPECT_EQ(rank_for_energy(svd, 0.9999), 2u);
  EXPECT_EQ(rank_for_energy(svd, 1.0), 4u);
}

TEST(LowRank, ZeroSpectrumEdgeCases) {
  SvdResult svd;
  svd.singular_values = {0.0, 0.0};
  svd.u = Matrix(3, 2);
  svd.v = Matrix(2, 2);
  EXPECT_EQ(captured_energy(svd, 1), 1.0);
  EXPECT_EQ(rank_for_energy(svd, 0.5), 0u);
  const Matrix z = low_rank_approximation(svd, 2);
  EXPECT_EQ(frobenius_norm(z), 0.0);
}

TEST(LowRank, RequiresVectors) {
  SvdResult svd;
  svd.singular_values = {1.0};
  EXPECT_THROW(low_rank_approximation(svd, 1), Error);
  EXPECT_THROW(rank_for_energy(svd, 0.0), Error);
}

}  // namespace
}  // namespace hjsvd

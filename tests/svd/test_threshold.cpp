// Tests for the threshold-Jacobi extension (rotation_threshold).
#include <gtest/gtest.h>

#include "baselines/golub_kahan.hpp"
#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "svd/hestenes.hpp"
#include "svd/plain_hestenes.hpp"

namespace hjsvd {
namespace {

TEST(Threshold, ZeroThresholdSkipsOnlyExactZeros) {
  Rng rng(51);
  const Matrix a = random_gaussian(12, 12, rng);
  HestenesConfig cfg;
  cfg.max_sweeps = 2;
  HestenesStats stats;
  (void)modified_hestenes_svd(a, cfg, &stats);
  EXPECT_EQ(stats.total_skipped, 0u);  // dense random: no exact zeros
}

TEST(Threshold, SkipsGrowAcrossSweeps) {
  Rng rng(52);
  const Matrix a = random_gaussian(24, 24, rng);
  HestenesConfig cfg;
  cfg.max_sweeps = 10;
  cfg.rotation_threshold = 1e-10;
  cfg.track_convergence = true;
  HestenesStats stats;
  (void)modified_hestenes_svd(a, cfg, &stats);
  EXPECT_GT(stats.total_skipped, 0u);
  // Later sweeps skip more than early ones (covariances have shrunk).
  EXPECT_GT(stats.sweeps.back().skipped, stats.sweeps.front().skipped);
}

TEST(Threshold, AccuracyMatchesThresholdLevel) {
  Rng rng(53);
  const Matrix a = random_gaussian(32, 32, rng);
  const SvdResult oracle = golub_kahan_svd(a);
  for (double tau : {1e-12, 1e-8}) {
    HestenesConfig cfg;
    cfg.max_sweeps = 15;
    cfg.rotation_threshold = tau;
    const SvdResult r = modified_hestenes_svd(a, cfg);
    EXPECT_LT(singular_value_error(r.singular_values, oracle.singular_values),
              tau * 100)
        << "tau=" << tau;
  }
}

TEST(Threshold, SavesRotationsWithoutAccuracyLossAtTightTau) {
  Rng rng(54);
  const Matrix a = random_gaussian(32, 32, rng);
  HestenesConfig base, thr;
  base.max_sweeps = thr.max_sweeps = 12;
  thr.rotation_threshold = 1e-13;
  HestenesStats sb, st;
  const SvdResult rb = modified_hestenes_svd(a, base, &sb);
  const SvdResult rt = modified_hestenes_svd(a, thr, &st);
  EXPECT_LT(st.total_rotations, sb.total_rotations);
  EXPECT_LT(singular_value_error(rb.singular_values, rt.singular_values),
            1e-10);
}

TEST(Threshold, WorksInPlainVariantToo) {
  Rng rng(55);
  const Matrix a = random_gaussian(20, 14, rng);
  HestenesConfig cfg;
  cfg.max_sweeps = 12;
  cfg.rotation_threshold = 1e-10;
  HestenesStats stats;
  const SvdResult r = plain_hestenes_svd(a, cfg, &stats);
  EXPECT_GT(stats.total_skipped, 0u);
  const SvdResult oracle = golub_kahan_svd(a);
  EXPECT_LT(singular_value_error(r.singular_values, oracle.singular_values),
            1e-7);
}

TEST(Threshold, DiagonalInputSkipsEverything) {
  Matrix a(6, 6);
  for (std::size_t i = 0; i < 6; ++i) a(i, i) = static_cast<double>(i + 1);
  HestenesConfig cfg;
  cfg.max_sweeps = 3;
  cfg.rotation_threshold = 1e-12;
  HestenesStats stats;
  (void)modified_hestenes_svd(a, cfg, &stats);
  EXPECT_EQ(stats.total_rotations, 0u);
  EXPECT_EQ(stats.total_skipped, 3u * 15u);
}

}  // namespace
}  // namespace hjsvd

// Tests for the pair orderings (Fig. 6).
#include "svd/ordering.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace hjsvd {
namespace {

/// Checks that a flattened sweep covers each pair (i, j), i < j, once.
void expect_covers_all_pairs_once(const std::vector<Pair>& pairs,
                                  std::size_t n) {
  std::set<Pair> seen;
  for (const auto& [i, j] : pairs) {
    EXPECT_LT(i, j);
    EXPECT_LT(j, n);
    EXPECT_TRUE(seen.insert({i, j}).second) << "duplicate (" << i << "," << j
                                            << ")";
  }
  EXPECT_EQ(seen.size(), n * (n - 1) / 2);
}

class OrderingCoverage : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OrderingCoverage, RowCyclicCoversAllPairsOnce) {
  const std::size_t n = GetParam();
  expect_covers_all_pairs_once(row_cyclic_sweep(n), n);
}

TEST_P(OrderingCoverage, RoundRobinCoversAllPairsOnce) {
  const std::size_t n = GetParam();
  expect_covers_all_pairs_once(sweep_pairs(Ordering::kRoundRobin, n), n);
}

TEST_P(OrderingCoverage, RoundRobinRoundsAreDisjoint) {
  const std::size_t n = GetParam();
  for (const auto& round : round_robin_rounds(n)) {
    std::set<std::size_t> used;
    for (const auto& [i, j] : round) {
      EXPECT_TRUE(used.insert(i).second);
      EXPECT_TRUE(used.insert(j).second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallAndOddSizes, OrderingCoverage,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 16, 31, 32, 33,
                                           64));

TEST(RoundRobin, EvenSizeHasNMinusOneFullRounds) {
  const auto rounds = round_robin_rounds(8);
  EXPECT_EQ(rounds.size(), 7u);
  for (const auto& r : rounds) EXPECT_EQ(r.size(), 4u);
}

TEST(RoundRobin, OddSizeHasNRoundsWithBye) {
  const auto rounds = round_robin_rounds(7);
  EXPECT_EQ(rounds.size(), 7u);
  for (const auto& r : rounds) EXPECT_EQ(r.size(), 3u);
}

TEST(RowCyclic, MatchesAlgorithmOneOrder) {
  const auto pairs = row_cyclic_sweep(4);
  const std::vector<Pair> expect = {{0, 1}, {0, 2}, {0, 3},
                                    {1, 2}, {1, 3}, {2, 3}};
  EXPECT_EQ(pairs, expect);
}

TEST(OddEven, AlternatesNeighborExchanges) {
  const auto rounds = odd_even_rounds(5);
  EXPECT_EQ(rounds.size(), 5u);
  EXPECT_EQ(rounds[0], (std::vector<Pair>{{0, 1}, {2, 3}}));
  EXPECT_EQ(rounds[1], (std::vector<Pair>{{1, 2}, {3, 4}}));
}

TEST(Degenerate, SizeOneAndZeroAreEmpty) {
  EXPECT_TRUE(row_cyclic_sweep(1).empty());
  EXPECT_TRUE(round_robin_rounds(1).empty());
  EXPECT_TRUE(sweep_pairs(Ordering::kOddEven, 0).empty());
}

TEST(ChunkGroups, SplitsIntoHardwareGroups) {
  const auto rounds = round_robin_rounds(32);
  ASSERT_FALSE(rounds.empty());
  const auto groups = chunk_groups(rounds[0], 8);
  EXPECT_EQ(groups.size(), 2u);  // 16 disjoint pairs -> two groups of 8
  EXPECT_EQ(groups[0].size(), 8u);
  EXPECT_EQ(groups[1].size(), 8u);
}

TEST(ChunkGroups, TailGroupIsSmaller) {
  std::vector<Pair> round = {{0, 1}, {2, 3}, {4, 5}};
  const auto groups = chunk_groups(round, 2);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[1].size(), 1u);
}

TEST(ChunkGroups, ZeroSizeThrows) {
  EXPECT_THROW(chunk_groups({}, 0), Error);
}

}  // namespace
}  // namespace hjsvd

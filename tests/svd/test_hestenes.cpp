// Correctness tests for the modified Hestenes-Jacobi SVD (Algorithm 1).
#include "svd/hestenes.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/golub_kahan.hpp"
#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "linalg/kernels.hpp"

namespace hjsvd {
namespace {

HestenesConfig tolerant_config() {
  HestenesConfig cfg;
  cfg.max_sweeps = 30;
  cfg.tolerance = 1e-14;
  return cfg;
}

TEST(Hestenes, DiagonalMatrixIsImmediate) {
  Matrix a(4, 4);
  a(0, 0) = 4.0;
  a(1, 1) = 3.0;
  a(2, 2) = 2.0;
  a(3, 3) = 1.0;
  const SvdResult r = modified_hestenes_svd(a);
  ASSERT_EQ(r.singular_values.size(), 4u);
  EXPECT_DOUBLE_EQ(r.singular_values[0], 4.0);
  EXPECT_DOUBLE_EQ(r.singular_values[3], 1.0);
  EXPECT_TRUE(r.converged);
}

TEST(Hestenes, KnownTwoByTwo) {
  // A = [[3, 0], [4, 5]] has singular values sqrt(45/2 +- sqrt(45^2/4-225))
  // = {sqrt(45), sqrt(5)} ... classic example: {3*sqrt(5), sqrt(5)}.
  const Matrix a = Matrix::from_rows({{3, 0}, {4, 5}});
  const SvdResult r = modified_hestenes_svd(a, tolerant_config());
  EXPECT_NEAR(r.singular_values[0], 3.0 * std::sqrt(5.0), 1e-10);
  EXPECT_NEAR(r.singular_values[1], std::sqrt(5.0), 1e-10);
}

TEST(Hestenes, PrescribedSingularValuesRecovered) {
  Rng rng(31);
  const std::vector<double> sv = {7.0, 3.0, 1.0, 0.1};
  const Matrix a = with_singular_values(10, 4, sv, rng);
  const SvdResult r = modified_hestenes_svd(a, tolerant_config());
  ASSERT_EQ(r.singular_values.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(r.singular_values[i], sv[i], 1e-9);
}

struct Shape {
  std::size_t m, n;
};

class HestenesVsGolubKahan : public ::testing::TestWithParam<Shape> {};

TEST_P(HestenesVsGolubKahan, SingularValuesAgree) {
  const auto [m, n] = GetParam();
  Rng rng(1000 + m * 131 + n);
  const Matrix a = random_gaussian(m, n, rng);
  const SvdResult ours = modified_hestenes_svd(a, tolerant_config());
  const SvdResult ref = golub_kahan_svd(a);
  EXPECT_LT(singular_value_error(ours.singular_values, ref.singular_values),
            1e-9)
      << m << "x" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HestenesVsGolubKahan,
    ::testing::Values(Shape{2, 2}, Shape{3, 3}, Shape{8, 8}, Shape{16, 16},
                      Shape{33, 33}, Shape{64, 64}, Shape{10, 4}, Shape{4, 10},
                      Shape{100, 8}, Shape{8, 100}, Shape{64, 17},
                      Shape{17, 64}, Shape{128, 32}, Shape{1, 5}, Shape{5, 1},
                      Shape{1, 1}),
    [](const auto& param_info) {
      return std::to_string(param_info.param.m) + "x" + std::to_string(param_info.param.n);
    });

TEST(Hestenes, SixSweepsMatchThePaperProtocol) {
  // The paper runs a fixed 6 sweeps, "believed sufficient for achieving
  // convergence with certain thresholds".  At n = 64 that delivers singular
  // values accurate to ~1e-4 relative (threshold-level, not working
  // precision — see EXPERIMENTS.md accuracy notes); a few more sweeps reach
  // machine precision (covered by the tolerance-driven tests).
  Rng rng(77);
  const Matrix a = random_gaussian(64, 64, rng);
  HestenesConfig cfg;  // defaults: 6 sweeps, no tolerance
  const SvdResult ours = modified_hestenes_svd(a, cfg);
  const SvdResult ref = golub_kahan_svd(a);
  EXPECT_EQ(ours.sweeps, 6u);
  EXPECT_LT(singular_value_error(ours.singular_values, ref.singular_values),
            1e-3);
}

TEST(Hestenes, OrderingsConvergeToTheSameValues) {
  Rng rng(78);
  const Matrix a = random_gaussian(24, 24, rng);
  HestenesConfig row = tolerant_config();
  row.ordering = Ordering::kRowCyclic;
  HestenesConfig rr = tolerant_config();
  rr.ordering = Ordering::kRoundRobin;
  const auto r1 = modified_hestenes_svd(a, row);
  const auto r2 = modified_hestenes_svd(a, rr);
  EXPECT_LT(singular_value_error(r1.singular_values, r2.singular_values),
            1e-12);
}

TEST(Hestenes, FormulasConvergeToTheSameValues) {
  Rng rng(79);
  const Matrix a = random_gaussian(20, 20, rng);
  HestenesConfig hw = tolerant_config();
  hw.formula = RotationFormula::kHardware;
  HestenesConfig tb = tolerant_config();
  tb.formula = RotationFormula::kTextbook;
  const auto r1 = modified_hestenes_svd(a, hw);
  const auto r2 = modified_hestenes_svd(a, tb);
  EXPECT_LT(singular_value_error(r1.singular_values, r2.singular_values),
            1e-12);
}

TEST(Hestenes, SoftFloatRunIsBitIdenticalToNative) {
  // The central fidelity claim (DESIGN.md §6): the whole algorithm, run with
  // the bit-accurate model of the hardware FP cores, produces bit-identical
  // singular values to the native-double run.
  Rng rng(80);
  const Matrix a = random_gaussian(12, 12, rng);
  HestenesConfig cfg;  // paper protocol
  const SvdResult native = modified_hestenes_svd(a, cfg);
  const SvdResult soft = modified_hestenes_svd_soft(a, cfg);
  ASSERT_EQ(native.singular_values.size(), soft.singular_values.size());
  for (std::size_t i = 0; i < native.singular_values.size(); ++i)
    EXPECT_EQ(fp::to_bits(native.singular_values[i]),
              fp::to_bits(soft.singular_values[i]))
        << "index " << i;
}

TEST(Hestenes, ExtremeScaleInputsDecomposeWithExactRatio) {
  // Regression for the rotation-overflow bug: scaling A by an exact power
  // of two scales every Gram entry by its square, so the whole sweep
  // sequence — rotation params, updates, convergence decisions — must be
  // the scaled image of the unscaled run, and each singular value exactly
  // 2^k times the original.  Pre-fix, 2^+400 overflowed diff^2 inside the
  // hardware rotation and the run produced NaN; 2^-400 underflowed the
  // squares and poisoned the params through 0/0.  (|k| stays at 400 so the
  // *fixed* run's Gram quantities — scaled by 2^(2k) — never leave the
  // normal range, where power-of-two scaling commutes with rounding.)
  Rng rng(73);
  const Matrix a = random_gaussian(12, 6, rng);
  const SvdResult base = modified_hestenes_svd(a, tolerant_config());
  for (const int k : {400, -400}) {
    Matrix scaled = a;
    for (double& v : scaled.data()) v = std::ldexp(v, k);
    const SvdResult r = modified_hestenes_svd(scaled, tolerant_config());
    ASSERT_EQ(r.sweeps, base.sweeps) << "k=" << k;
    ASSERT_TRUE(r.converged);
    ASSERT_EQ(r.singular_values.size(), base.singular_values.size());
    for (std::size_t i = 0; i < base.singular_values.size(); ++i)
      ASSERT_EQ(r.singular_values[i], std::ldexp(base.singular_values[i], k))
          << "k=" << k << " sigma[" << i << "]";
  }
}

TEST(Hestenes, StatsCountRotationsAndSkips) {
  Rng rng(81);
  const Matrix a = random_gaussian(10, 10, rng);
  HestenesConfig cfg;
  cfg.max_sweeps = 2;
  HestenesStats stats;
  (void)modified_hestenes_svd(a, cfg, &stats);
  // Dense random data: essentially every pair rotates, both sweeps.
  EXPECT_EQ(stats.total_rotations + stats.total_skipped, 2u * 45u);
  EXPECT_GT(stats.total_rotations, 80u);
}

TEST(Hestenes, ConvergenceTrackingRecordsEverySweep) {
  Rng rng(82);
  const Matrix a = random_gaussian(16, 16, rng);
  HestenesConfig cfg;
  cfg.max_sweeps = 5;
  cfg.track_convergence = true;
  HestenesStats stats;
  (void)modified_hestenes_svd(a, cfg, &stats);
  ASSERT_EQ(stats.sweeps.size(), 5u);
  // The covariance deviation must fall dramatically across sweeps (Fig. 10).
  EXPECT_LT(stats.sweeps.back().mean_abs_offdiag,
            stats.sweeps.front().mean_abs_offdiag * 1e-3);
}

TEST(Hestenes, EarlyTerminationOnTolerance) {
  Rng rng(83);
  const Matrix a = random_gaussian(12, 12, rng);
  HestenesConfig cfg;
  cfg.max_sweeps = 50;
  cfg.tolerance = 1e-12;
  const SvdResult r = modified_hestenes_svd(a, cfg);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.sweeps, 50u);
}

TEST(Hestenes, GramChunkingChangesAssociationNotCorrectness) {
  Rng rng(84);
  const Matrix a = random_gaussian(9, 6, rng);
  HestenesConfig c1 = tolerant_config();
  HestenesConfig c4 = tolerant_config();
  c4.gram_chunk_rows = 4;
  const auto r1 = modified_hestenes_svd(a, c1);
  const auto r4 = modified_hestenes_svd(a, c4);
  EXPECT_LT(singular_value_error(r1.singular_values, r4.singular_values),
            1e-12);
}

TEST(Hestenes, RejectsEmptyAndZeroSweepConfigs) {
  EXPECT_THROW(modified_hestenes_svd(Matrix{}), Error);
  HestenesConfig cfg;
  cfg.max_sweeps = 0;
  Rng rng(1);
  EXPECT_THROW(modified_hestenes_svd(random_gaussian(3, 3, rng), cfg), Error);
}

TEST(GramUpperOps, MatchesPlainGram) {
  Rng rng(85);
  const Matrix a = random_gaussian(20, 7, rng);
  const Matrix d = gram_upper_ops(a, fp::NativeOps{});
  const Matrix ref = gram_upper(a);
  EXPECT_LT(Matrix::max_abs_diff(d, ref), 1e-12);
}

TEST(GramUpperOps, ChunkedEqualsUnchunkedToRounding) {
  Rng rng(86);
  const Matrix a = random_gaussian(23, 5, rng);
  const Matrix d1 = gram_upper_ops(a, fp::NativeOps{}, 1);
  const Matrix d4 = gram_upper_ops(a, fp::NativeOps{}, 4);
  EXPECT_LT(Matrix::max_abs_diff(d1, d4), 1e-12);
  EXPECT_GE(Matrix::max_abs_diff(d1, d4), 0.0);
}

}  // namespace
}  // namespace hjsvd

// Property-based tests of SVD invariants, parameterized over matrix shapes,
// distributions and algorithm variants.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "baselines/golub_kahan.hpp"
#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "linalg/kernels.hpp"
#include "svd/hestenes.hpp"

namespace hjsvd {
namespace {

enum class Dist { kGaussian, kUniform, kConditioned, kRankDeficient };

const char* dist_name(Dist d) {
  switch (d) {
    case Dist::kGaussian: return "Gaussian";
    case Dist::kUniform: return "Uniform";
    case Dist::kConditioned: return "Conditioned";
    case Dist::kRankDeficient: return "RankDeficient";
  }
  return "?";
}

/// Singular-value comparison tolerance.  The modified algorithm works on
/// the Gram matrix D = A^T A, which squares the condition number: singular
/// values below sqrt(eps)*sigma_max are resolved only to absolute accuracy
/// ~1e-8*sigma_max (a documented property of the method; see README
/// "Accuracy notes").  Ill-conditioned and rank-deficient inputs therefore
/// get the looser bound.
double value_tol(Dist d) {
  return (d == Dist::kConditioned || d == Dist::kRankDeficient) ? 1e-7 : 1e-9;
}

Matrix make(Dist d, std::size_t m, std::size_t n, Rng& rng) {
  switch (d) {
    case Dist::kGaussian: return random_gaussian(m, n, rng);
    case Dist::kUniform: return random_uniform(m, n, rng);
    case Dist::kConditioned: return random_conditioned(m, n, 1e8, rng);
    case Dist::kRankDeficient:
      return random_rank_deficient(m, n, std::min(m, n) / 2 + 1, rng);
  }
  return Matrix(m, n);
}

using PropertyParam = std::tuple<Dist, std::size_t, std::size_t>;

class SvdProperties : public ::testing::TestWithParam<PropertyParam> {
 protected:
  HestenesConfig config() const {
    HestenesConfig cfg;
    cfg.max_sweeps = 30;
    cfg.tolerance = 1e-14;
    cfg.compute_u = true;
    cfg.compute_v = true;
    return cfg;
  }
};

TEST_P(SvdProperties, FactorsReconstructTheMatrix) {
  const auto [dist, m, n] = GetParam();
  Rng rng(500 + m * 37 + n * 11 + static_cast<int>(dist));
  const Matrix a = make(dist, m, n, rng);
  const SvdResult r = modified_hestenes_svd(a, config());
  EXPECT_LT(reconstruction_error(a, r), value_tol(dist));
}

TEST_P(SvdProperties, VHasOrthonormalColumns) {
  const auto [dist, m, n] = GetParam();
  Rng rng(600 + m * 37 + n * 11 + static_cast<int>(dist));
  const Matrix a = make(dist, m, n, rng);
  const SvdResult r = modified_hestenes_svd(a, config());
  EXPECT_LT(orthogonality_error(r.v), 1e-10);
}

TEST_P(SvdProperties, UHasOrthonormalColumnsAtFullRank) {
  // The raw U = A * V * Sigma^-1 loses orthogonality as eps * kappa on the
  // Gram path and leaves null-space columns zero; the modified Gram-Schmidt
  // re-orthogonalization pass (with null-space completion) restores exact
  // orthonormality for every distribution, including ill-conditioned and
  // rank-deficient inputs.
  const auto [dist, m, n] = GetParam();
  Rng rng(700 + m * 37 + n * 11 + static_cast<int>(dist));
  const Matrix a = make(dist, m, n, rng);
  const SvdResult r = modified_hestenes_svd(a, config());
  EXPECT_LT(orthogonality_error(r.u), 1e-8);
}

TEST_P(SvdProperties, ValuesAreNonNegativeAndSorted) {
  const auto [dist, m, n] = GetParam();
  Rng rng(800 + m * 37 + n * 11 + static_cast<int>(dist));
  const Matrix a = make(dist, m, n, rng);
  const SvdResult r = modified_hestenes_svd(a, config());
  ASSERT_EQ(r.singular_values.size(), std::min(m, n));
  for (std::size_t i = 0; i < r.singular_values.size(); ++i) {
    EXPECT_GE(r.singular_values[i], 0.0);
    if (i > 0) {
      EXPECT_LE(r.singular_values[i], r.singular_values[i - 1]);
    }
  }
}

TEST_P(SvdProperties, FrobeniusNormEqualsValueNorm) {
  // ||A||_F^2 == sum sigma_i^2.
  const auto [dist, m, n] = GetParam();
  Rng rng(900 + m * 37 + n * 11 + static_cast<int>(dist));
  const Matrix a = make(dist, m, n, rng);
  const SvdResult r = modified_hestenes_svd(a, config());
  double sum = 0.0;
  for (double s : r.singular_values) sum += s * s;
  const double af = frobenius_norm(a);
  EXPECT_NEAR(std::sqrt(sum), af, 1e-10 * (1.0 + af));
}

TEST_P(SvdProperties, TransposeHasSameValues) {
  const auto [dist, m, n] = GetParam();
  Rng rng(1000 + m * 37 + n * 11 + static_cast<int>(dist));
  const Matrix a = make(dist, m, n, rng);
  HestenesConfig cfg;
  cfg.max_sweeps = 30;
  cfg.tolerance = 1e-14;
  const SvdResult r1 = modified_hestenes_svd(a, cfg);
  const SvdResult r2 = modified_hestenes_svd(a.transposed(), cfg);
  EXPECT_LT(singular_value_error(r1.singular_values, r2.singular_values),
            value_tol(dist));
}

TEST_P(SvdProperties, ScalingIsEquivariant) {
  const auto [dist, m, n] = GetParam();
  Rng rng(1100 + m * 37 + n * 11 + static_cast<int>(dist));
  const Matrix a = make(dist, m, n, rng);
  Matrix scaled = a;
  for (double& x : scaled.data()) x *= 4.0;  // power of two: exact
  HestenesConfig cfg;
  cfg.max_sweeps = 30;
  cfg.tolerance = 1e-14;
  const SvdResult r1 = modified_hestenes_svd(a, cfg);
  const SvdResult r2 = modified_hestenes_svd(scaled, cfg);
  ASSERT_EQ(r1.singular_values.size(), r2.singular_values.size());
  for (std::size_t i = 0; i < r1.singular_values.size(); ++i)
    EXPECT_NEAR(r2.singular_values[i], 4.0 * r1.singular_values[i],
                1e-10 * (1.0 + r2.singular_values[i]));
}

TEST_P(SvdProperties, AgreesWithGolubKahan) {
  const auto [dist, m, n] = GetParam();
  Rng rng(1200 + m * 37 + n * 11 + static_cast<int>(dist));
  const Matrix a = make(dist, m, n, rng);
  HestenesConfig cfg;
  cfg.max_sweeps = 30;
  cfg.tolerance = 1e-14;
  const SvdResult ours = modified_hestenes_svd(a, cfg);
  const SvdResult ref = golub_kahan_svd(a);
  EXPECT_LT(singular_value_error(ours.singular_values, ref.singular_values),
            value_tol(dist));
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndDistributions, SvdProperties,
    ::testing::Combine(::testing::Values(Dist::kGaussian, Dist::kUniform,
                                         Dist::kConditioned,
                                         Dist::kRankDeficient),
                       ::testing::Values<std::size_t>(6, 16, 40),
                       ::testing::Values<std::size_t>(6, 16, 40)),
    [](const auto& param_info) {
      return std::string(dist_name(std::get<0>(param_info.param))) + "_" +
             std::to_string(std::get<1>(param_info.param)) + "x" +
             std::to_string(std::get<2>(param_info.param));
    });

}  // namespace
}  // namespace hjsvd

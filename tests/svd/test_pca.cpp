// Tests for the PCA layer built on the Hestenes-Jacobi SVD.
#include "svd/pca.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "linalg/kernels.hpp"
#include "linalg/residuals.hpp"

namespace hjsvd {
namespace {

/// Samples from a 2D subspace embedded in `features` dimensions + noise.
Matrix low_rank_data(std::size_t samples, std::size_t features,
                     double noise, Rng& rng) {
  Matrix data(samples, features);
  std::vector<double> dir1(features), dir2(features);
  for (auto& v : dir1) v = rng.gaussian();
  for (auto& v : dir2) v = rng.gaussian();
  for (std::size_t s = 0; s < samples; ++s) {
    const double a = 5.0 * rng.gaussian();
    const double b = 2.0 * rng.gaussian();
    for (std::size_t f = 0; f < features; ++f)
      data(s, f) = a * dir1[f] + b * dir2[f] + noise * rng.gaussian() + 3.0;
  }
  return data;
}

TEST(Pca, ComponentsAreOrthonormal) {
  Rng rng(31);
  const Matrix data = low_rank_data(60, 10, 0.1, rng);
  const PcaModel model = pca_fit(data);
  EXPECT_LT(orthogonality_error(model.components), 1e-10);
}

TEST(Pca, ExplainedVarianceRatiosSumToOne) {
  Rng rng(32);
  const Matrix data = low_rank_data(50, 8, 0.5, rng);
  const PcaModel model = pca_fit(data);
  double sum = 0.0;
  for (double r : model.explained_variance_ratio) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-10);
  for (std::size_t i = 1; i < model.explained_variance.size(); ++i)
    EXPECT_LE(model.explained_variance[i], model.explained_variance[i - 1]);
}

TEST(Pca, TwoComponentsCaptureRankTwoData) {
  Rng rng(33);
  const Matrix data = low_rank_data(80, 12, 0.01, rng);
  const PcaModel model = pca_fit(data);
  const double top2 = model.explained_variance_ratio[0] +
                      model.explained_variance_ratio[1];
  EXPECT_GT(top2, 0.999);
  EXPECT_EQ(pca_components_for_variance(model, 0.99), 2u);
}

TEST(Pca, TransformInverseRoundTripsInTheSubspace) {
  Rng rng(34);
  const Matrix data = low_rank_data(40, 9, 0.0, rng);  // exactly rank 2
  PcaConfig cfg;
  cfg.components = 2;
  const PcaModel model = pca_fit(data, cfg);
  const Matrix scores = pca_transform(model, data);
  EXPECT_EQ(scores.cols(), 2u);
  const Matrix recon = pca_inverse_transform(model, scores);
  EXPECT_LT(Matrix::max_abs_diff(recon, data), 1e-9);
}

TEST(Pca, MeanIsRemovedAndRestored) {
  Rng rng(35);
  const Matrix data = low_rank_data(30, 6, 0.2, rng);
  const PcaModel model = pca_fit(data);
  ASSERT_EQ(model.mean.size(), 6u);
  // Column means of the data match the model's means.
  for (std::size_t j = 0; j < 6; ++j) {
    double mu = 0.0;
    for (std::size_t i = 0; i < data.rows(); ++i) mu += data(i, j);
    mu /= static_cast<double>(data.rows());
    EXPECT_NEAR(model.mean[j], mu, 1e-12);
  }
  // Transforming the mean row gives (approximately) zero scores.
  Matrix mean_row(1, 6);
  for (std::size_t j = 0; j < 6; ++j) mean_row(0, j) = model.mean[j];
  const Matrix scores = pca_transform(model, mean_row);
  for (std::size_t k = 0; k < scores.cols(); ++k)
    EXPECT_NEAR(scores(0, k), 0.0, 1e-10);
}

TEST(Pca, UncenteredModeSkipsMean) {
  Rng rng(36);
  const Matrix data = low_rank_data(30, 6, 0.2, rng);
  PcaConfig cfg;
  cfg.center = false;
  const PcaModel model = pca_fit(data, cfg);
  EXPECT_TRUE(model.mean.empty());
}

TEST(Pca, ComponentCapRespected) {
  Rng rng(37);
  const Matrix data = low_rank_data(30, 10, 0.3, rng);
  PcaConfig cfg;
  cfg.components = 3;
  const PcaModel model = pca_fit(data, cfg);
  EXPECT_EQ(model.components.cols(), 3u);
  EXPECT_EQ(model.singular_values.size(), 3u);
}

TEST(Pca, RejectsDegenerateInputs) {
  EXPECT_THROW(pca_fit(Matrix(1, 4)), Error);
  Rng rng(38);
  const Matrix data = low_rank_data(10, 4, 0.1, rng);
  const PcaModel model = pca_fit(data);
  EXPECT_THROW(pca_transform(model, Matrix(3, 5)), Error);
  EXPECT_THROW(pca_inverse_transform(model, Matrix(3, 1)), Error);
  EXPECT_THROW(pca_components_for_variance(model, 0.0), Error);
}

TEST(Pca, VarianceMatchesDirectComputation) {
  // The first explained variance equals the variance of the data projected
  // onto the first component.
  Rng rng(39);
  const Matrix data = low_rank_data(100, 5, 0.3, rng);
  const PcaModel model = pca_fit(data);
  const Matrix scores = pca_transform(model, data);
  double mu = 0.0;
  for (std::size_t i = 0; i < scores.rows(); ++i) mu += scores(i, 0);
  mu /= static_cast<double>(scores.rows());
  double var = 0.0;
  for (std::size_t i = 0; i < scores.rows(); ++i) {
    const double d = scores(i, 0) - mu;
    var += d * d;
  }
  var /= static_cast<double>(scores.rows() - 1);
  EXPECT_NEAR(var / model.explained_variance[0], 1.0, 1e-9);
}

}  // namespace
}  // namespace hjsvd

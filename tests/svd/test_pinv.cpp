// Tests for pseudoinverse / least squares / polar decomposition.
#include "svd/pinv.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "linalg/kernels.hpp"
#include "linalg/residuals.hpp"

namespace hjsvd {
namespace {

TEST(Pinv, InverseOfSquareNonsingular) {
  Rng rng(71);
  const Matrix a = random_conditioned(6, 6, 100.0, rng);
  const Matrix p = pseudoinverse(a);
  EXPECT_LT(Matrix::max_abs_diff(matmul(a, p), Matrix::identity(6)), 1e-10);
  EXPECT_LT(Matrix::max_abs_diff(matmul(p, a), Matrix::identity(6)), 1e-10);
}

TEST(Pinv, MoorePenroseConditionsTall) {
  Rng rng(72);
  const Matrix a = random_gaussian(10, 4, rng);
  const Matrix p = pseudoinverse(a);
  EXPECT_EQ(p.rows(), 4u);
  EXPECT_EQ(p.cols(), 10u);
  // A A+ A = A and A+ A A+ = A+.
  EXPECT_LT(Matrix::max_abs_diff(matmul(matmul(a, p), a), a), 1e-10);
  EXPECT_LT(Matrix::max_abs_diff(matmul(matmul(p, a), p), p), 1e-10);
  // A+ A is symmetric.
  const Matrix pa = matmul(p, a);
  EXPECT_LT(Matrix::max_abs_diff(pa, pa.transposed()), 1e-10);
}

TEST(Pinv, MoorePenroseConditionsWide) {
  Rng rng(73);
  const Matrix a = random_gaussian(4, 9, rng);
  const Matrix p = pseudoinverse(a);
  EXPECT_LT(Matrix::max_abs_diff(matmul(matmul(a, p), a), a), 1e-10);
  const Matrix ap = matmul(a, p);
  EXPECT_LT(Matrix::max_abs_diff(ap, ap.transposed()), 1e-10);
}

TEST(Pinv, RankDeficientTruncates) {
  Rng rng(74);
  const Matrix a = random_rank_deficient(8, 6, 3, rng);
  EXPECT_EQ(numerical_rank(a), 3u);
  const Matrix p = pseudoinverse(a);
  // A A+ A = A still holds through the truncated spectrum.
  EXPECT_LT(Matrix::max_abs_diff(matmul(matmul(a, p), a), a), 1e-9);
}

TEST(Pinv, RcondControlsTruncation) {
  Rng rng(75);
  const Matrix a = random_conditioned(8, 8, 1e6, rng);
  PinvConfig strict;
  strict.rcond = 1e-3;  // cut everything below 1e-3 * sigma_max
  EXPECT_LT(numerical_rank(a, strict), 8u);
  EXPECT_EQ(numerical_rank(a), 8u);  // default keeps the full spectrum
}

TEST(Lstsq, RecoversExactSolution) {
  Rng rng(76);
  const Matrix a = random_gaussian(12, 5, rng);
  Matrix x_true(5, 2);
  for (double& v : x_true.data()) v = rng.gaussian();
  const Matrix b = matmul(a, x_true);
  const Matrix x = lstsq(a, b);
  EXPECT_LT(Matrix::max_abs_diff(x, x_true), 1e-10);
}

TEST(Lstsq, ResidualOrthogonalToColumnSpace) {
  Rng rng(77);
  const Matrix a = random_gaussian(15, 4, rng);
  Matrix b(15, 1);
  for (double& v : b.data()) v = rng.gaussian();
  const Matrix x = lstsq(a, b);
  const Matrix fitted = matmul(a, x);
  // A^T (b - A x) = 0.
  for (std::size_t j = 0; j < 4; ++j) {
    double dot_col = 0.0;
    for (std::size_t i = 0; i < 15; ++i)
      dot_col += a(i, j) * (b(i, 0) - fitted(i, 0));
    EXPECT_NEAR(dot_col, 0.0, 1e-10);
  }
}

TEST(Lstsq, MinimumNormForUnderdetermined) {
  Rng rng(78);
  const Matrix a = random_gaussian(3, 7, rng);
  Matrix b(3, 1);
  for (double& v : b.data()) v = rng.gaussian();
  const Matrix x = lstsq(a, b);
  // Exact solution of the underdetermined system...
  const Matrix ax = matmul(a, x);
  EXPECT_LT(Matrix::max_abs_diff(ax, b), 1e-10);
  // ...and minimum norm: x lies in the row space, i.e. x = A^T y.  Check by
  // comparing with pinv(a)*b (the canonical minimum-norm solution).
  const Matrix x_pinv = matmul(pseudoinverse(a), b);
  EXPECT_LT(Matrix::max_abs_diff(x, x_pinv), 1e-10);
}

TEST(Lstsq, ShapeMismatchThrows) {
  EXPECT_THROW(lstsq(Matrix(4, 2), Matrix(5, 1)), Error);
}

TEST(Polar, FactorsAreOrthogonalAndSpd) {
  Rng rng(79);
  const Matrix a = random_gaussian(8, 5, rng);
  const auto pd = polar_decompose(a);
  EXPECT_LT(orthogonality_error(pd.q), 1e-10);
  EXPECT_LT(Matrix::max_abs_diff(pd.h, pd.h.transposed()), 1e-12);
  EXPECT_LT(Matrix::max_abs_diff(matmul(pd.q, pd.h), a), 1e-10);
  // H is PSD: x^T H x >= 0 for random probes.
  for (int probe = 0; probe < 10; ++probe) {
    Matrix x(5, 1);
    for (double& v : x.data()) v = rng.gaussian();
    const Matrix hx = matmul(pd.h, x);
    double quad = 0.0;
    for (std::size_t i = 0; i < 5; ++i) quad += x(i, 0) * hx(i, 0);
    EXPECT_GE(quad, -1e-10);
  }
}

TEST(Polar, RequiresTallFullRank) {
  EXPECT_THROW(polar_decompose(Matrix(3, 5)), Error);
  Rng rng(80);
  const Matrix rank_def = random_rank_deficient(6, 4, 2, rng);
  EXPECT_THROW(polar_decompose(rank_def), Error);
}

}  // namespace
}  // namespace hjsvd

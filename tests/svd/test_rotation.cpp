// Tests for Jacobi rotation parameter generation (Algorithm 1 lines 11-14
// and the hardware closed forms of eqs. (8)-(10)).
#include "svd/rotation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"

namespace hjsvd {
namespace {

using fp::NativeOps;

struct Case {
  double norm_jj, norm_ii, cov;
};

/// The defining property: after rotating two columns with the produced
/// (cos, sin), their covariance is zero.  In Gram terms:
/// cov' = cos*sin*(d_ii - d_jj) + (cos^2 - sin^2)*cov == 0.
double rotated_cov(const RotationParams& p, const Case& c) {
  return p.cos * p.sin * (c.norm_ii - c.norm_jj) +
         (p.cos * p.cos - p.sin * p.sin) * c.cov;
}

class RotationProperty
    : public ::testing::TestWithParam<RotationFormula> {};

TEST_P(RotationProperty, AnnihilatesCovariance) {
  Rng rng(17);
  for (int trial = 0; trial < 20000; ++trial) {
    Case c{std::abs(rng.gaussian()) * 10 + 1e-6,
           std::abs(rng.gaussian()) * 10 + 1e-6, rng.gaussian() * 3};
    if (c.cov == 0.0) continue;
    const auto p = compute_rotation(GetParam(), c.norm_jj, c.norm_ii, c.cov,
                                    NativeOps{});
    ASSERT_TRUE(p.rotate);
    const double scale = std::max({c.norm_ii, c.norm_jj, std::abs(c.cov)});
    ASSERT_NEAR(rotated_cov(p, c) / scale, 0.0, 1e-14)
        << "njj=" << c.norm_jj << " nii=" << c.norm_ii << " cov=" << c.cov;
  }
}

TEST_P(RotationProperty, CosSinOnUnitCircle) {
  Rng rng(18);
  for (int trial = 0; trial < 20000; ++trial) {
    Case c{std::abs(rng.gaussian()) * 10 + 1e-6,
           std::abs(rng.gaussian()) * 10 + 1e-6, rng.gaussian() * 3};
    if (c.cov == 0.0) continue;
    const auto p = compute_rotation(GetParam(), c.norm_jj, c.norm_ii, c.cov,
                                    NativeOps{});
    ASSERT_NEAR(p.cos * p.cos + p.sin * p.sin, 1.0, 1e-13);
    ASSERT_GT(p.cos, 0.0);  // the small-angle branch keeps cos positive
  }
}

TEST_P(RotationProperty, TraceOfNormUpdatesPreserved) {
  // d_jj' + d_ii' = d_jj + d_ii because the updates are +t*cov and -t*cov;
  // additionally each update must reproduce the exact 2x2 rotation result.
  Rng rng(19);
  for (int trial = 0; trial < 20000; ++trial) {
    Case c{std::abs(rng.gaussian()) * 10 + 1e-6,
           std::abs(rng.gaussian()) * 10 + 1e-6, rng.gaussian() * 3};
    if (c.cov == 0.0) continue;
    const auto p = compute_rotation(GetParam(), c.norm_jj, c.norm_ii, c.cov,
                                    NativeOps{});
    // Exact rotated diagonal entries of the 2x2 Gram block:
    const double dii_rot = p.cos * p.cos * c.norm_ii -
                           2 * p.cos * p.sin * c.cov +
                           p.sin * p.sin * c.norm_jj;
    const double djj_rot = p.sin * p.sin * c.norm_ii +
                           2 * p.cos * p.sin * c.cov +
                           p.cos * p.cos * c.norm_jj;
    const double scale = std::max(c.norm_ii, c.norm_jj);
    ASSERT_NEAR((c.norm_ii - p.t * c.cov - dii_rot) / scale, 0.0, 1e-13);
    ASSERT_NEAR((c.norm_jj + p.t * c.cov - djj_rot) / scale, 0.0, 1e-13);
  }
}

TEST_P(RotationProperty, ZeroCovarianceSkips) {
  const auto p =
      compute_rotation(GetParam(), 2.0, 3.0, 0.0, NativeOps{});
  EXPECT_FALSE(p.rotate);
  EXPECT_EQ(p.cos, 1.0);
  EXPECT_EQ(p.sin, 0.0);
}

INSTANTIATE_TEST_SUITE_P(BothFormulas, RotationProperty,
                         ::testing::Values(RotationFormula::kTextbook,
                                           RotationFormula::kHardware),
                         [](const auto& param_info) {
                           return param_info.param == RotationFormula::kTextbook
                                      ? "Textbook"
                                      : "Hardware";
                         });

TEST(RotationAgreement, FormulasAgreeToRounding) {
  Rng rng(23);
  for (int trial = 0; trial < 20000; ++trial) {
    const double njj = std::abs(rng.gaussian()) * 10 + 1e-3;
    const double nii = std::abs(rng.gaussian()) * 10 + 1e-3;
    const double cov = rng.gaussian() * 3;
    if (cov == 0.0 || njj == nii) continue;
    const auto a =
        rotation_textbook(njj, nii, cov, fp::NativeOps{});
    const auto b =
        rotation_hardware(njj, nii, cov, fp::NativeOps{});
    ASSERT_NEAR(a.t, b.t, 1e-12 * (1 + std::abs(a.t)));
    ASSERT_NEAR(a.cos, b.cos, 1e-12);
    ASSERT_NEAR(a.sin, b.sin, 1e-12 * (1 + std::abs(a.sin)));
  }
}

TEST(RotationEdge, TinyCovarianceIsStableInHardwareForm) {
  // The textbook rho = diff/(2 cov) overflows for tiny cov; the hardware
  // form must stay finite and nearly-identity.
  const auto p = rotation_hardware(2.0, 1.0, 1e-300, fp::NativeOps{});
  EXPECT_TRUE(std::isfinite(p.t));
  EXPECT_NEAR(p.cos, 1.0, 1e-15);
  EXPECT_NEAR(p.sin, 0.0, 1e-15);
}

TEST(RotationEdge, EqualNormsGiveFortyFiveDegrees) {
  const auto p = rotation_hardware(3.0, 3.0, 0.5, fp::NativeOps{});
  EXPECT_NEAR(std::abs(p.t), 1.0, 1e-15);
  EXPECT_NEAR(p.cos, std::sqrt(0.5), 1e-15);
  EXPECT_NEAR(std::abs(p.sin), std::sqrt(0.5), 1e-15);
}

TEST(RotationEdge, SignConvention) {
  // t carries sign((d_jj - d_ii) * cov).
  EXPECT_GT(rotation_hardware(2.0, 1.0, 0.5, fp::NativeOps{}).t, 0.0);
  EXPECT_LT(rotation_hardware(1.0, 2.0, 0.5, fp::NativeOps{}).t, 0.0);
  EXPECT_LT(rotation_hardware(2.0, 1.0, -0.5, fp::NativeOps{}).t, 0.0);
  EXPECT_GT(rotation_hardware(1.0, 2.0, -0.5, fp::NativeOps{}).t, 0.0);
}

// --- Regression: extreme-scale inputs (pre-scaling fix) -----------------
//
// Before the power-of-two pre-scaling, the hardware form squared
// diff = d_jj - d_ii and cov directly, so any |diff| or |cov| beyond
// ~1e154 overflowed d2/c2 to inf and the params came back NaN with
// rotate=true — poisoning every downstream column.  Squared column norms
// reach 1e300 for perfectly representable data (columns ~1e150), so this
// is a reachable input class, not hypothetical.  Symmetrically, inputs
// near 1e-160 underflowed the squares to zero.

class RotationExtremeScale
    : public ::testing::TestWithParam<RotationFormula> {};

TEST_P(RotationExtremeScale, ParamsStayFiniteAndAnnihilate) {
  const Case cases[] = {
      // Tiny: squares underflow to *subnormal* (precision loss) ...
      {3e-160, 1e-160, 1e-160},
      // ... and to exact zero (0/0 -> NaN) without pre-scaling.
      {3e-165, 1e-165, 1e-165},
      // Large: diff^2 > DBL_MAX, so d2 = inf without pre-scaling.
      {3e155, 1e155, 1e155},
      {2e155, 7e154, -9e154},
      // Near the top of the double range.
      {1e300, 3e299, 2e299},
      // Mixed grading: huge diff against a modest covariance and vice
      // versa (amax decides the pre-scale; the small term must survive).
      {1e155, 1.0, 1e-3},
      {2.0, 1.0, 1e150},
      {1e-160, 5e-161, 1e150},
  };
  for (const Case& c : cases) {
    const auto p = compute_rotation(GetParam(), c.norm_jj, c.norm_ii, c.cov,
                                    NativeOps{});
    ASSERT_TRUE(std::isfinite(p.t)) << "njj=" << c.norm_jj
                                    << " nii=" << c.norm_ii
                                    << " cov=" << c.cov;
    ASSERT_TRUE(std::isfinite(p.cos));
    ASSERT_TRUE(std::isfinite(p.sin));
    ASSERT_TRUE(p.rotate);
    ASSERT_NEAR(p.cos * p.cos + p.sin * p.sin, 1.0, 1e-13);
    // cov' == 0 up to rounding, evaluated at the problem's own scale.
    const double scale =
        std::max({std::abs(c.norm_ii - c.norm_jj), std::abs(c.cov)});
    ASSERT_NEAR(rotated_cov(p, c) / scale, 0.0, 1e-13)
        << "njj=" << c.norm_jj << " nii=" << c.norm_ii << " cov=" << c.cov;
  }
}

TEST_P(RotationExtremeScale, PowerOfTwoScaleInvariance) {
  // The rotation angle depends only on the *ratio* of the Gram entries, so
  // scaling (njj, nii, cov) by an exact power of two must not change a
  // single bit of (t, cos, sin).  Pre-fix, the 2^+600 row turned into NaN.
  Rng rng(31);
  for (int trial = 0; trial < 5000; ++trial) {
    const double njj = std::abs(rng.gaussian()) * 10 + 1e-3;
    const double nii = std::abs(rng.gaussian()) * 10 + 1e-3;
    const double cov = rng.gaussian() * 3;
    // Keep every scaled input comfortably inside the normal range so the
    // ldexp scaling itself is exact (no subnormal rounding).
    if (std::abs(cov) < 1e-6) continue;
    const auto base =
        compute_rotation(GetParam(), njj, nii, cov, NativeOps{});
    for (const int e : {600, -600, 900, -900}) {
      const auto scaled = compute_rotation(
          GetParam(), std::ldexp(njj, e), std::ldexp(nii, e),
          std::ldexp(cov, e), NativeOps{});
      ASSERT_EQ(fp::to_bits(base.t), fp::to_bits(scaled.t))
          << "njj=" << njj << " nii=" << nii << " cov=" << cov << " e=" << e;
      ASSERT_EQ(fp::to_bits(base.cos), fp::to_bits(scaled.cos));
      ASSERT_EQ(fp::to_bits(base.sin), fp::to_bits(scaled.sin));
      ASSERT_EQ(base.rotate, scaled.rotate);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothFormulas, RotationExtremeScale,
                         ::testing::Values(RotationFormula::kTextbook,
                                           RotationFormula::kHardware),
                         [](const auto& param_info) {
                           return param_info.param == RotationFormula::kTextbook
                                      ? "Textbook"
                                      : "Hardware";
                         });

// --- Regression: non-finite inputs must throw, not early-out ------------
//
// A NaN covariance used to slip past the `cov == 0.0` skip test (NaN
// compares false) and poison the params; likewise NaN/inf norms.  The
// contract is now a deterministic hjsvd::Error before any branch.

class RotationNonFinite
    : public ::testing::TestWithParam<RotationFormula> {};

TEST_P(RotationNonFinite, NonFiniteInputsThrow) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const RotationFormula f = GetParam();
  // The NaN-cov case is the original bug: it reached the `cov == 0.0`
  // early-out, compared false, and continued into the arithmetic.
  EXPECT_THROW(compute_rotation(f, 2.0, 1.0, nan, NativeOps{}), Error);
  EXPECT_THROW(compute_rotation(f, nan, 1.0, 0.5, NativeOps{}), Error);
  EXPECT_THROW(compute_rotation(f, 2.0, nan, 0.5, NativeOps{}), Error);
  EXPECT_THROW(compute_rotation(f, inf, 1.0, 0.5, NativeOps{}), Error);
  EXPECT_THROW(compute_rotation(f, 2.0, -inf, 0.5, NativeOps{}), Error);
  EXPECT_THROW(compute_rotation(f, 2.0, 1.0, inf, NativeOps{}), Error);
  // ...even when cov is exactly zero, which used to early-out first.
  EXPECT_THROW(compute_rotation(f, nan, 1.0, 0.0, NativeOps{}), Error);
  EXPECT_THROW(compute_rotation(f, inf, 1.0, 0.0, NativeOps{}), Error);
}

INSTANTIATE_TEST_SUITE_P(BothFormulas, RotationNonFinite,
                         ::testing::Values(RotationFormula::kTextbook,
                                           RotationFormula::kHardware),
                         [](const auto& param_info) {
                           return param_info.param == RotationFormula::kTextbook
                                      ? "Textbook"
                                      : "Hardware";
                         });

TEST(RotationSoftFloat, BitIdenticalToNative) {
  Rng rng(29);
  for (int trial = 0; trial < 5000; ++trial) {
    const double njj = std::abs(rng.gaussian()) * 10 + 1e-3;
    const double nii = std::abs(rng.gaussian()) * 10 + 1e-3;
    const double cov = rng.gaussian() * 3;
    if (cov == 0.0) continue;
    const auto n = rotation_hardware(njj, nii, cov, fp::NativeOps{});
    const auto s = rotation_hardware(njj, nii, cov, fp::SoftOps{});
    ASSERT_EQ(fp::to_bits(n.t), fp::to_bits(s.t));
    ASSERT_EQ(fp::to_bits(n.cos), fp::to_bits(s.cos));
    ASSERT_EQ(fp::to_bits(n.sin), fp::to_bits(s.sin));
  }
}

}  // namespace
}  // namespace hjsvd

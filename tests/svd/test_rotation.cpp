// Tests for Jacobi rotation parameter generation (Algorithm 1 lines 11-14
// and the hardware closed forms of eqs. (8)-(10)).
#include "svd/rotation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace hjsvd {
namespace {

using fp::NativeOps;

struct Case {
  double norm_jj, norm_ii, cov;
};

/// The defining property: after rotating two columns with the produced
/// (cos, sin), their covariance is zero.  In Gram terms:
/// cov' = cos*sin*(d_ii - d_jj) + (cos^2 - sin^2)*cov == 0.
double rotated_cov(const RotationParams& p, const Case& c) {
  return p.cos * p.sin * (c.norm_ii - c.norm_jj) +
         (p.cos * p.cos - p.sin * p.sin) * c.cov;
}

class RotationProperty
    : public ::testing::TestWithParam<RotationFormula> {};

TEST_P(RotationProperty, AnnihilatesCovariance) {
  Rng rng(17);
  for (int trial = 0; trial < 20000; ++trial) {
    Case c{std::abs(rng.gaussian()) * 10 + 1e-6,
           std::abs(rng.gaussian()) * 10 + 1e-6, rng.gaussian() * 3};
    if (c.cov == 0.0) continue;
    const auto p = compute_rotation(GetParam(), c.norm_jj, c.norm_ii, c.cov,
                                    NativeOps{});
    ASSERT_TRUE(p.rotate);
    const double scale = std::max({c.norm_ii, c.norm_jj, std::abs(c.cov)});
    ASSERT_NEAR(rotated_cov(p, c) / scale, 0.0, 1e-14)
        << "njj=" << c.norm_jj << " nii=" << c.norm_ii << " cov=" << c.cov;
  }
}

TEST_P(RotationProperty, CosSinOnUnitCircle) {
  Rng rng(18);
  for (int trial = 0; trial < 20000; ++trial) {
    Case c{std::abs(rng.gaussian()) * 10 + 1e-6,
           std::abs(rng.gaussian()) * 10 + 1e-6, rng.gaussian() * 3};
    if (c.cov == 0.0) continue;
    const auto p = compute_rotation(GetParam(), c.norm_jj, c.norm_ii, c.cov,
                                    NativeOps{});
    ASSERT_NEAR(p.cos * p.cos + p.sin * p.sin, 1.0, 1e-13);
    ASSERT_GT(p.cos, 0.0);  // the small-angle branch keeps cos positive
  }
}

TEST_P(RotationProperty, TraceOfNormUpdatesPreserved) {
  // d_jj' + d_ii' = d_jj + d_ii because the updates are +t*cov and -t*cov;
  // additionally each update must reproduce the exact 2x2 rotation result.
  Rng rng(19);
  for (int trial = 0; trial < 20000; ++trial) {
    Case c{std::abs(rng.gaussian()) * 10 + 1e-6,
           std::abs(rng.gaussian()) * 10 + 1e-6, rng.gaussian() * 3};
    if (c.cov == 0.0) continue;
    const auto p = compute_rotation(GetParam(), c.norm_jj, c.norm_ii, c.cov,
                                    NativeOps{});
    // Exact rotated diagonal entries of the 2x2 Gram block:
    const double dii_rot = p.cos * p.cos * c.norm_ii -
                           2 * p.cos * p.sin * c.cov +
                           p.sin * p.sin * c.norm_jj;
    const double djj_rot = p.sin * p.sin * c.norm_ii +
                           2 * p.cos * p.sin * c.cov +
                           p.cos * p.cos * c.norm_jj;
    const double scale = std::max(c.norm_ii, c.norm_jj);
    ASSERT_NEAR((c.norm_ii - p.t * c.cov - dii_rot) / scale, 0.0, 1e-13);
    ASSERT_NEAR((c.norm_jj + p.t * c.cov - djj_rot) / scale, 0.0, 1e-13);
  }
}

TEST_P(RotationProperty, ZeroCovarianceSkips) {
  const auto p =
      compute_rotation(GetParam(), 2.0, 3.0, 0.0, NativeOps{});
  EXPECT_FALSE(p.rotate);
  EXPECT_EQ(p.cos, 1.0);
  EXPECT_EQ(p.sin, 0.0);
}

INSTANTIATE_TEST_SUITE_P(BothFormulas, RotationProperty,
                         ::testing::Values(RotationFormula::kTextbook,
                                           RotationFormula::kHardware),
                         [](const auto& param_info) {
                           return param_info.param == RotationFormula::kTextbook
                                      ? "Textbook"
                                      : "Hardware";
                         });

TEST(RotationAgreement, FormulasAgreeToRounding) {
  Rng rng(23);
  for (int trial = 0; trial < 20000; ++trial) {
    const double njj = std::abs(rng.gaussian()) * 10 + 1e-3;
    const double nii = std::abs(rng.gaussian()) * 10 + 1e-3;
    const double cov = rng.gaussian() * 3;
    if (cov == 0.0 || njj == nii) continue;
    const auto a =
        rotation_textbook(njj, nii, cov, fp::NativeOps{});
    const auto b =
        rotation_hardware(njj, nii, cov, fp::NativeOps{});
    ASSERT_NEAR(a.t, b.t, 1e-12 * (1 + std::abs(a.t)));
    ASSERT_NEAR(a.cos, b.cos, 1e-12);
    ASSERT_NEAR(a.sin, b.sin, 1e-12 * (1 + std::abs(a.sin)));
  }
}

TEST(RotationEdge, TinyCovarianceIsStableInHardwareForm) {
  // The textbook rho = diff/(2 cov) overflows for tiny cov; the hardware
  // form must stay finite and nearly-identity.
  const auto p = rotation_hardware(2.0, 1.0, 1e-300, fp::NativeOps{});
  EXPECT_TRUE(std::isfinite(p.t));
  EXPECT_NEAR(p.cos, 1.0, 1e-15);
  EXPECT_NEAR(p.sin, 0.0, 1e-15);
}

TEST(RotationEdge, EqualNormsGiveFortyFiveDegrees) {
  const auto p = rotation_hardware(3.0, 3.0, 0.5, fp::NativeOps{});
  EXPECT_NEAR(std::abs(p.t), 1.0, 1e-15);
  EXPECT_NEAR(p.cos, std::sqrt(0.5), 1e-15);
  EXPECT_NEAR(std::abs(p.sin), std::sqrt(0.5), 1e-15);
}

TEST(RotationEdge, SignConvention) {
  // t carries sign((d_jj - d_ii) * cov).
  EXPECT_GT(rotation_hardware(2.0, 1.0, 0.5, fp::NativeOps{}).t, 0.0);
  EXPECT_LT(rotation_hardware(1.0, 2.0, 0.5, fp::NativeOps{}).t, 0.0);
  EXPECT_LT(rotation_hardware(2.0, 1.0, -0.5, fp::NativeOps{}).t, 0.0);
  EXPECT_GT(rotation_hardware(1.0, 2.0, -0.5, fp::NativeOps{}).t, 0.0);
}

TEST(RotationSoftFloat, BitIdenticalToNative) {
  Rng rng(29);
  for (int trial = 0; trial < 5000; ++trial) {
    const double njj = std::abs(rng.gaussian()) * 10 + 1e-3;
    const double nii = std::abs(rng.gaussian()) * 10 + 1e-3;
    const double cov = rng.gaussian() * 3;
    if (cov == 0.0) continue;
    const auto n = rotation_hardware(njj, nii, cov, fp::NativeOps{});
    const auto s = rotation_hardware(njj, nii, cov, fp::SoftOps{});
    ASSERT_EQ(fp::to_bits(n.t), fp::to_bits(s.t));
    ASSERT_EQ(fp::to_bits(n.cos), fp::to_bits(s.cos));
    ASSERT_EQ(fp::to_bits(n.sin), fp::to_bits(s.sin));
  }
}

}  // namespace
}  // namespace hjsvd

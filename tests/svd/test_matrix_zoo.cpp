// Matrix zoo: ill-conditioned, graded and extreme-scale inputs through
// every Gram-rotating engine (sequential, blocked, pipelined, mixed
// precision), with relative singular-value error bounds.
//
// The accuracy contract is the one for Jacobi applied to the explicitly
// formed Gram matrix D = A^T A (the modified-Gram formulation all these
// engines share): forming D squares the spectrum, so computed singular
// values satisfy |sigma_hat_i - sigma_i| <= c * n * eps * sqrt(kappa) *
// sigma_max.  That is weaker than the high-relative-accuracy bound of
// one-sided Jacobi on A itself, but it is the contract this architecture
// implements, and it holds uniformly over the condition numbers tested
// here (1e2 .. 1e15).  The zoo also locks the
// scale-invariance contract of the threshold-Jacobi skip test: svd(2^k A)
// must converge in exactly the same sweeps as svd(A) — the regression that
// caught detail::below_threshold's squared comparison overflowing to
// inf <= inf (spurious skip of every pair) at 2^300 scale and flushing to
// 0 <= 0 at 2^-260.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "api/svd.hpp"
#include "baselines/golub_kahan.hpp"
#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "linalg/residuals.hpp"
#include "svd/hestenes.hpp"
#include "svd/mixed_hestenes.hpp"
#include "svd/parallel_sweep.hpp"

namespace hjsvd {
namespace {

constexpr double kEps = std::numeric_limits<double>::epsilon();

Matrix scaled_copy(const Matrix& a, double s) {
  Matrix b = a;
  for (double& v : b.data()) v *= s;
  return b;
}

/// n singular values decaying geometrically from 1 down to 1/kappa.
std::vector<double> geometric_sv(std::size_t n, double kappa) {
  std::vector<double> sv(n);
  const double ratio =
      n > 1 ? std::pow(kappa, -1.0 / static_cast<double>(n - 1)) : 1.0;
  double v = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    sv[i] = v;
    v *= ratio;
  }
  return sv;
}

struct ZooCase {
  const char* name;
  double kappa;  // target condition number
  double scale;  // power-of-two scaling applied after generation
};

const ZooCase kZoo[] = {
    {"cond1e2", 1e2, 1.0},
    {"cond1e6", 1e6, 1.0},
    {"cond1e10", 1e10, 1.0},
    {"cond1e15", 1e15, 1.0},
    {"cond1e6_up2p300", 1e6, 0x1p+300},
    {"cond1e15_up2p300", 1e15, 0x1p+300},
    {"cond1e6_down2p200", 1e6, 0x1p-200},
    {"cond1e15_down2p200", 1e15, 0x1p-200},
};

const SvdMethod kEngines[] = {
    SvdMethod::kModifiedHestenes,
    SvdMethod::kParallelModifiedHestenes,
    SvdMethod::kPipelinedModifiedHestenes,
    SvdMethod::kMixedModifiedHestenes,
};

class MatrixZoo
    : public ::testing::TestWithParam<std::tuple<ZooCase, SvdMethod>> {};

TEST_P(MatrixZoo, SingularValuesWithinRelativeBound) {
  const auto& [zoo, method] = GetParam();
  const std::size_t m = 48, n = 32;
  Rng rng(140 + static_cast<std::uint64_t>(std::log10(zoo.kappa)));
  const std::vector<double> sv = geometric_sv(n, zoo.kappa);
  const Matrix a = scaled_copy(with_singular_values(m, n, sv, rng), zoo.scale);

  SvdOptions opt;
  opt.method = method;
  opt.tolerance = 1e-14;
  opt.max_sweeps = 40;
  const SvdResult r = svd(a, opt);
  ASSERT_TRUE(r.converged) << zoo.name;
  ASSERT_EQ(r.singular_values.size(), n);

  // |sigma_hat - sigma| <= c n eps sqrt(kappa) sigma_max — the Gram
  // (normal equations) accuracy model.  Measured errors sit 10-50x below
  // this with c = 10 across the whole zoo, so the bound still fails on
  // any first-order accuracy loss while leaving margin for
  // with_singular_values' own generation rounding.
  const double sigma_max = sv[0] * zoo.scale;
  const double bound = 10.0 * static_cast<double>(n) * kEps *
                       std::sqrt(zoo.kappa) * sigma_max;
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(r.singular_values[i], sv[i] * zoo.scale, bound)
        << zoo.name << " sigma[" << i << "]";
}

std::string zoo_param_name(
    const ::testing::TestParamInfo<std::tuple<ZooCase, SvdMethod>>& info) {
  const auto& [zoo, method] = info.param;
  std::string engine;
  switch (method) {
    case SvdMethod::kModifiedHestenes: engine = "sequential"; break;
    case SvdMethod::kParallelModifiedHestenes: engine = "blocked"; break;
    case SvdMethod::kPipelinedModifiedHestenes: engine = "pipelined"; break;
    case SvdMethod::kMixedModifiedHestenes: engine = "mixed"; break;
    default: engine = "other"; break;
  }
  return std::string(zoo.name) + "_" + engine;
}

INSTANTIATE_TEST_SUITE_P(Zoo, MatrixZoo,
                         ::testing::Combine(::testing::ValuesIn(kZoo),
                                            ::testing::ValuesIn(kEngines)),
                         zoo_param_name);

TEST(MatrixZoo, HilbertMatchesGolubKahanAcrossEngines) {
  // hilbert(12) has kappa ~ 1.7e16; the Gram formulation caps accuracy at
  // ~eps * sqrt(kappa) ~ 3e-8 relative to sigma_max (observed: ~4e-9,
  // identical across all four engines).
  const Matrix h = hilbert(12);
  GolubKahanConfig gk_cfg;
  const SvdResult ref = golub_kahan_svd(h, gk_cfg);
  for (const SvdMethod method : kEngines) {
    SvdOptions opt;
    opt.method = method;
    opt.tolerance = 1e-14;
    opt.max_sweeps = 40;
    const SvdResult r = svd(h, opt);
    EXPECT_LT(singular_value_error(r.singular_values, ref.singular_values),
              1e-7)
        << svd_method_name(method);
  }
}

/// The scale-invariance regression for the threshold-Jacobi skip test.
/// Before the below_threshold fix this failed at both extreme scales: at
/// 2^300 the squared products overflow (inf <= inf skipped every pair, so
/// the engine never rotated and never converged), at 2^-260 they flush to
/// zero (0 <= 0, same failure).  Power-of-two scaling is exact in binary
/// floating point, so sweep counts, rotation counts and (up to exact
/// power-of-two factors) the singular values must all match the unscaled
/// run bit-for-bit.
TEST(MatrixZoo, ThresholdConvergenceIsScaleInvariant) {
  Rng rng(911);
  // Graded spectrum: relative covariances span many magnitudes, which is
  // what gives the rotation threshold real pairs to skip.
  const std::vector<double> sv = geometric_sv(16, 1e8);
  const Matrix a = with_singular_values(24, 16, sv, rng);

  HestenesConfig cfg;
  cfg.max_sweeps = 30;
  cfg.tolerance = 1e-13;
  cfg.rotation_threshold = 1e-12;

  HestenesStats base_stats;
  const SvdResult base = modified_hestenes_svd(a, cfg, &base_stats);
  ASSERT_TRUE(base.converged);
  ASSERT_GT(base_stats.total_skipped, 0u)
      << "threshold never triggered; the zoo case is not exercising the "
         "skip path";

  for (const int k : {300, -260}) {
    SCOPED_TRACE("scale 2^" + std::to_string(k));
    const double s = std::ldexp(1.0, k);
    HestenesStats stats;
    const SvdResult r = modified_hestenes_svd(scaled_copy(a, s), cfg, &stats);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.sweeps, base.sweeps);
    EXPECT_EQ(stats.total_rotations, base_stats.total_rotations);
    EXPECT_EQ(stats.total_skipped, base_stats.total_skipped);
    ASSERT_EQ(r.singular_values.size(), base.singular_values.size());
    for (std::size_t i = 0; i < r.singular_values.size(); ++i)
      EXPECT_DOUBLE_EQ(r.singular_values[i], base.singular_values[i] * s)
          << "sigma[" << i << "]";
  }
}

/// Same contract exercised with the rotation threshold armed through every
/// Gram-rotating engine (they share detail::below_threshold, so each call
/// site must survive the scale that used to overflow the squared compare).
TEST(MatrixZoo, ScaledThresholdRunsConvergeInEveryEngine) {
  Rng rng(912);
  const std::vector<double> sv = geometric_sv(16, 1e8);
  const Matrix a =
      scaled_copy(with_singular_values(24, 16, sv, rng), 0x1p+300);
  HestenesConfig cfg;
  cfg.max_sweeps = 30;
  cfg.tolerance = 1e-13;
  cfg.rotation_threshold = 1e-12;

  EXPECT_TRUE(modified_hestenes_svd(a, cfg).converged) << "sequential";
  EXPECT_TRUE(parallel_modified_hestenes_svd(a, cfg, {}).converged)
      << "blocked";
  EXPECT_TRUE(pipelined_modified_hestenes_svd(a, cfg, {}).converged)
      << "pipelined";
  MixedHestenesConfig mixed;
  mixed.base = cfg;
  EXPECT_TRUE(mixed_modified_hestenes_svd(a, mixed).converged) << "mixed";
}

}  // namespace
}  // namespace hjsvd

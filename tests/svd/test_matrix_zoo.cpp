// Matrix zoo: ill-conditioned, graded and extreme-scale inputs through
// every Gram-rotating engine (sequential, blocked, pipelined, mixed
// precision), with relative singular-value error bounds.
//
// The accuracy contract is the one for Jacobi applied to the explicitly
// formed Gram matrix D = A^T A (the modified-Gram formulation all these
// engines share): forming D squares the spectrum, so computed singular
// values satisfy |sigma_hat_i - sigma_i| <= c * n * eps * sqrt(kappa) *
// sigma_max.  That is weaker than the high-relative-accuracy bound of
// one-sided Jacobi on A itself, but it is the contract this architecture
// implements, and it holds uniformly over the condition numbers tested
// here (1e2 .. 1e15).  The zoo also locks the
// scale-invariance contract of the threshold-Jacobi skip test: svd(2^k A)
// must converge in exactly the same sweeps as svd(A) — the regression that
// caught detail::below_threshold's squared comparison overflowing to
// inf <= inf (spurious skip of every pair) at 2^300 scale and flushing to
// 0 <= 0 at 2^-260.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "api/svd.hpp"
#include "baselines/golub_kahan.hpp"
#include "common/rng.hpp"
#include "fp/softfloat.hpp"
#include "linalg/generate.hpp"
#include "linalg/residuals.hpp"
#include "obs/live.hpp"
#include "obs/numerics.hpp"
#include "svd/hestenes.hpp"
#include "svd/mixed_hestenes.hpp"
#include "svd/parallel_sweep.hpp"

namespace hjsvd {
namespace {

constexpr double kEps = std::numeric_limits<double>::epsilon();

Matrix scaled_copy(const Matrix& a, double s) {
  Matrix b = a;
  for (double& v : b.data()) v *= s;
  return b;
}

/// n singular values decaying geometrically from 1 down to 1/kappa.
std::vector<double> geometric_sv(std::size_t n, double kappa) {
  std::vector<double> sv(n);
  const double ratio =
      n > 1 ? std::pow(kappa, -1.0 / static_cast<double>(n - 1)) : 1.0;
  double v = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    sv[i] = v;
    v *= ratio;
  }
  return sv;
}

struct ZooCase {
  const char* name;
  double kappa;  // target condition number
  double scale;  // power-of-two scaling applied after generation
};

const ZooCase kZoo[] = {
    {"cond1e2", 1e2, 1.0},
    {"cond1e6", 1e6, 1.0},
    {"cond1e10", 1e10, 1.0},
    {"cond1e15", 1e15, 1.0},
    {"cond1e6_up2p300", 1e6, 0x1p+300},
    {"cond1e15_up2p300", 1e15, 0x1p+300},
    {"cond1e6_down2p200", 1e6, 0x1p-200},
    {"cond1e15_down2p200", 1e15, 0x1p-200},
};

const SvdMethod kEngines[] = {
    SvdMethod::kModifiedHestenes,
    SvdMethod::kParallelModifiedHestenes,
    SvdMethod::kPipelinedModifiedHestenes,
    SvdMethod::kMixedModifiedHestenes,
};

class MatrixZoo
    : public ::testing::TestWithParam<std::tuple<ZooCase, SvdMethod>> {};

TEST_P(MatrixZoo, SingularValuesWithinRelativeBound) {
  const auto& [zoo, method] = GetParam();
  const std::size_t m = 48, n = 32;
  Rng rng(140 + static_cast<std::uint64_t>(std::log10(zoo.kappa)));
  const std::vector<double> sv = geometric_sv(n, zoo.kappa);
  const Matrix a = scaled_copy(with_singular_values(m, n, sv, rng), zoo.scale);

  SvdOptions opt;
  opt.method = method;
  opt.tolerance = 1e-14;
  opt.max_sweeps = 40;
  const SvdResult r = svd(a, opt);
  ASSERT_TRUE(r.converged) << zoo.name;
  ASSERT_EQ(r.singular_values.size(), n);

  // |sigma_hat - sigma| <= c n eps sqrt(kappa) sigma_max — the Gram
  // (normal equations) accuracy model.  Measured errors sit 10-50x below
  // this with c = 10 across the whole zoo, so the bound still fails on
  // any first-order accuracy loss while leaving margin for
  // with_singular_values' own generation rounding.
  const double sigma_max = sv[0] * zoo.scale;
  const double bound = 10.0 * static_cast<double>(n) * kEps *
                       std::sqrt(zoo.kappa) * sigma_max;
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(r.singular_values[i], sv[i] * zoo.scale, bound)
        << zoo.name << " sigma[" << i << "]";
}

std::string zoo_param_name(
    const ::testing::TestParamInfo<std::tuple<ZooCase, SvdMethod>>& info) {
  const auto& [zoo, method] = info.param;
  std::string engine;
  switch (method) {
    case SvdMethod::kModifiedHestenes: engine = "sequential"; break;
    case SvdMethod::kParallelModifiedHestenes: engine = "blocked"; break;
    case SvdMethod::kPipelinedModifiedHestenes: engine = "pipelined"; break;
    case SvdMethod::kMixedModifiedHestenes: engine = "mixed"; break;
    default: engine = "other"; break;
  }
  return std::string(zoo.name) + "_" + engine;
}

INSTANTIATE_TEST_SUITE_P(Zoo, MatrixZoo,
                         ::testing::Combine(::testing::ValuesIn(kZoo),
                                            ::testing::ValuesIn(kEngines)),
                         zoo_param_name);

TEST(MatrixZoo, HilbertMatchesGolubKahanAcrossEngines) {
  // hilbert(12) has kappa ~ 1.7e16; the Gram formulation caps accuracy at
  // ~eps * sqrt(kappa) ~ 3e-8 relative to sigma_max (observed: ~4e-9,
  // identical across all four engines).
  const Matrix h = hilbert(12);
  GolubKahanConfig gk_cfg;
  const SvdResult ref = golub_kahan_svd(h, gk_cfg);
  for (const SvdMethod method : kEngines) {
    SvdOptions opt;
    opt.method = method;
    opt.tolerance = 1e-14;
    opt.max_sweeps = 40;
    const SvdResult r = svd(h, opt);
    EXPECT_LT(singular_value_error(r.singular_values, ref.singular_values),
              1e-7)
        << svd_method_name(method);
  }
}

/// The scale-invariance regression for the threshold-Jacobi skip test.
/// Before the below_threshold fix this failed at both extreme scales: at
/// 2^300 the squared products overflow (inf <= inf skipped every pair, so
/// the engine never rotated and never converged), at 2^-260 they flush to
/// zero (0 <= 0, same failure).  Power-of-two scaling is exact in binary
/// floating point, so sweep counts, rotation counts and (up to exact
/// power-of-two factors) the singular values must all match the unscaled
/// run bit-for-bit.
TEST(MatrixZoo, ThresholdConvergenceIsScaleInvariant) {
  Rng rng(911);
  // Graded spectrum: relative covariances span many magnitudes, which is
  // what gives the rotation threshold real pairs to skip.
  const std::vector<double> sv = geometric_sv(16, 1e8);
  const Matrix a = with_singular_values(24, 16, sv, rng);

  HestenesConfig cfg;
  cfg.max_sweeps = 30;
  cfg.tolerance = 1e-13;
  cfg.rotation_threshold = 1e-12;

  HestenesStats base_stats;
  const SvdResult base = modified_hestenes_svd(a, cfg, &base_stats);
  ASSERT_TRUE(base.converged);
  ASSERT_GT(base_stats.total_skipped, 0u)
      << "threshold never triggered; the zoo case is not exercising the "
         "skip path";

  for (const int k : {300, -260}) {
    SCOPED_TRACE("scale 2^" + std::to_string(k));
    const double s = std::ldexp(1.0, k);
    HestenesStats stats;
    const SvdResult r = modified_hestenes_svd(scaled_copy(a, s), cfg, &stats);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.sweeps, base.sweeps);
    EXPECT_EQ(stats.total_rotations, base_stats.total_rotations);
    EXPECT_EQ(stats.total_skipped, base_stats.total_skipped);
    ASSERT_EQ(r.singular_values.size(), base.singular_values.size());
    for (std::size_t i = 0; i < r.singular_values.size(); ++i)
      EXPECT_DOUBLE_EQ(r.singular_values[i], base.singular_values[i] * s)
          << "sigma[" << i << "]";
  }
}

/// Same contract exercised with the rotation threshold armed through every
/// Gram-rotating engine (they share detail::below_threshold, so each call
/// site must survive the scale that used to overflow the squared compare).
TEST(MatrixZoo, ScaledThresholdRunsConvergeInEveryEngine) {
  Rng rng(912);
  const std::vector<double> sv = geometric_sv(16, 1e8);
  const Matrix a =
      scaled_copy(with_singular_values(24, 16, sv, rng), 0x1p+300);
  HestenesConfig cfg;
  cfg.max_sweeps = 30;
  cfg.tolerance = 1e-13;
  cfg.rotation_threshold = 1e-12;

  EXPECT_TRUE(modified_hestenes_svd(a, cfg).converged) << "sequential";
  EXPECT_TRUE(parallel_modified_hestenes_svd(a, cfg, {}).converged)
      << "blocked";
  EXPECT_TRUE(pipelined_modified_hestenes_svd(a, cfg, {}).converged)
      << "pipelined";
  MixedHestenesConfig mixed;
  mixed.base = cfg;
  EXPECT_TRUE(mixed_modified_hestenes_svd(a, mixed).converged) << "mixed";
}

// ---------------------------------------------------------------------------
// Numerical-health probe signatures: the zoo's pathologies must light the
// right svd.num.* probes, well-conditioned inputs must stay quiet, and the
// probes must never perturb a single result bit in any engine.

bool bits_equal(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (fp::to_bits(a[i]) != fp::to_bits(b[i])) return false;
  return true;
}

bool results_bit_identical(const SvdResult& a, const SvdResult& b) {
  return bits_equal(a.singular_values, b.singular_values) &&
         bits_equal(a.u.data(), b.u.data()) && bits_equal(a.v.data(), b.v.data());
}

TEST(MatrixZooProbes, WellConditionedGaussianStaysQuiet) {
  if (!obs::kEnabled) GTEST_SKIP() << "probes compiled out (HJSVD_OBS=OFF)";
  Rng rng(2024);
  const Matrix a = random_gaussian(48, 32, rng);
  obs::Watchdog watchdog({});
  obs::NumericsProbe::Config pcfg;
  pcfg.stride = 1;  // sample every pair: quiet must mean *really* quiet
  obs::NumericsProbe probe(pcfg, nullptr, nullptr, &watchdog);
  SvdOptions opt;
  opt.compute_u = true;
  opt.compute_v = true;
  opt.tolerance = 1e-14;
  opt.numerics = &probe;
  opt.watchdog = &watchdog;
  ASSERT_TRUE(svd(a, opt).converged);

  EXPECT_GT(probe.samples(), 0u);
  EXPECT_EQ(probe.nonfinite_events(), 0u);
  EXPECT_EQ(probe.divergence_events(), 0u);
  // A Gaussian's column norms are all within a small factor of each other,
  // but never so close that the rotation denominator cancels.
  EXPECT_LT(probe.cancellation_frac(), 0.05);
  EXPECT_LT(probe.condition_estimate(), 1e3);
  // Finalize-time accuracy: both measures recorded and at rounding level.
  ASSERT_GE(probe.orthogonality_drift(), 0.0);
  EXPECT_LT(probe.orthogonality_drift(), 1e-12);
  ASSERT_GE(probe.backward_error(), 0.0);
  EXPECT_LT(probe.backward_error(), 1e-12);
  EXPECT_FALSE(watchdog.divergence());
  EXPECT_FALSE(watchdog.orthogonality());
}

TEST(MatrixZooProbes, HilbertLightsTheConditionProbes) {
  // hilbert(12) has kappa ~ 1.7e16.  As sweeps converge, the Gram diagonal
  // approaches sigma_i^2, so the running max/min column-norm watermark ends
  // up tracking the true spectral spread.
  if (!obs::kEnabled) GTEST_SKIP() << "probes compiled out (HJSVD_OBS=OFF)";
  const Matrix h = hilbert(12);
  obs::NumericsProbe::Config pcfg;
  pcfg.stride = 1;
  obs::NumericsProbe probe(pcfg);
  SvdOptions opt;
  opt.compute_u = true;
  opt.compute_v = true;
  opt.tolerance = 1e-14;
  opt.max_sweeps = 40;
  opt.numerics = &probe;
  ASSERT_TRUE(svd(h, opt).converged);

  EXPECT_GT(probe.condition_estimate(), 1e8);
  // kappa beyond 1/eps: sigma_min^2 sits under the Gram formulation's
  // rounding floor and computes to exactly zero, so the sigma-based
  // condition ratio is unavailable — the -1 sentinel IS the signature.
  EXPECT_LT(probe.condition_sigma(), 0.0);
  EXPECT_EQ(probe.nonfinite_events(), 0u);
  // Ill conditioning does not hurt the factorization residual: backward
  // error stays near rounding level even though the spectrum spans ~16
  // decades.
  ASSERT_GE(probe.backward_error(), 0.0);
  EXPECT_LT(probe.backward_error(), 1e-8);
}

TEST(MatrixZooProbes, NearParallelColumnsRaiseCancellationAndNearPi4) {
  // Columns that are tiny perturbations of one vector: equal norms (the
  // rotation denominator djj - dii cancels) and strong mutual coupling
  // (2|cov| >> |djj - dii| puts the angle near pi/4) — and the matrix is
  // near rank-1, so the converged Gram diagonal spans many decades.
  if (!obs::kEnabled) GTEST_SKIP() << "probes compiled out (HJSVD_OBS=OFF)";
  Rng rng(31);
  const Matrix base = random_gaussian(16, 1, rng);
  Matrix a(16, 4);
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t i = 0; i < 16; ++i)
      a(i, j) = base(i, 0) * (1.0 + 1e-10 * static_cast<double>(j * 16 + i));
  obs::NumericsProbe::Config pcfg;
  pcfg.stride = 1;
  obs::NumericsProbe probe(pcfg);
  SvdOptions opt;
  opt.numerics = &probe;
  opt.max_sweeps = 40;
  ASSERT_TRUE(svd(a, opt).converged);

  EXPECT_GT(probe.cancellation_events(), 0u);
  EXPECT_GT(probe.near_pi4_frac(), 0.0);
  EXPECT_GT(probe.angle_histogram().back(), 0u);
  EXPECT_GT(probe.condition_estimate(), 1e4);
}

TEST(MatrixZooProbes, RankDeficiencyRaisesTheConditionEstimate) {
  if (!obs::kEnabled) GTEST_SKIP() << "probes compiled out (HJSVD_OBS=OFF)";
  Rng rng(32);
  const Matrix a = random_rank_deficient(32, 16, 8, rng);
  obs::NumericsProbe::Config pcfg;
  pcfg.stride = 1;
  obs::NumericsProbe probe(pcfg);
  SvdOptions opt;
  opt.numerics = &probe;
  opt.max_sweeps = 40;
  ASSERT_TRUE(svd(a, opt).converged);
  // Half the spectrum is numerically zero: the sampled column-norm spread
  // must blow past anything a full-rank Gaussian produces.
  EXPECT_GT(probe.condition_estimate(), 1e6);
}

/// The read-only contract, engine by engine: attaching a maximally-sampling
/// probe (stride 1) must not change one bit of U, Sigma, or V at any thread
/// count.
TEST(MatrixZooProbes, ProbesNeverPerturbAnyEngineAtAnyThreadCount) {
  Rng rng(73);
  const Matrix a = random_conditioned(40, 28, 1e10, rng);
  // The full Hestenes family, not just the modified-Gram engines of kEngines.
  const SvdMethod probe_engines[] = {
      SvdMethod::kModifiedHestenes,          SvdMethod::kPlainHestenes,
      SvdMethod::kParallelHestenes,          SvdMethod::kParallelModifiedHestenes,
      SvdMethod::kPipelinedModifiedHestenes, SvdMethod::kMixedModifiedHestenes,
  };
  for (const SvdMethod method : probe_engines) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      SvdOptions opt;
      opt.method = method;
      opt.compute_u = true;
      opt.compute_v = true;
      opt.threads = threads;
      opt.max_sweeps = 40;
      const SvdResult plain = svd(a, opt);

      obs::NumericsProbe::Config pcfg;
      pcfg.stride = 1;
      obs::NumericsProbe probe(pcfg);
      SvdOptions with = opt;
      with.numerics = &probe;
      const SvdResult probed = svd(a, with);

      EXPECT_TRUE(results_bit_identical(plain, probed))
          << svd_method_name(method) << " threads=" << threads;
      // With HJSVD_OBS=OFF the probe never fires — bit-identity above is the
      // whole (compiled-out) contract.  When compiled in: the engines whose
      // per-pair norms live inside a parallel region feed sweep/finalize
      // only; every other Hestenes engine must actually have sampled pairs.
      if (obs::kEnabled) {
        if (method != SvdMethod::kParallelModifiedHestenes &&
            method != SvdMethod::kParallelHestenes) {
          EXPECT_GT(probe.samples(), 0u)
              << svd_method_name(method) << " threads=" << threads;
        }
        ASSERT_GE(probe.backward_error(), 0.0) << svd_method_name(method);
      }
    }
  }
}

}  // namespace
}  // namespace hjsvd

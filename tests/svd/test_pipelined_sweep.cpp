// Tests for the pipelined round engine: bitwise identity with the
// sequential round-robin modified Hestenes across every combination of
// worker count and parameter-queue depth, per-sweep stats equality, queue
// accounting, and the degenerate shapes that stress the pipeline fences
// (n == 2, odd n, no-vector runs).
#include "svd/parallel_sweep.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "fp/softfloat.hpp"
#include "linalg/generate.hpp"
#include "svd/hestenes.hpp"

namespace hjsvd {
namespace {

enum class Shape { kSquare, kTall, kWide, kRankDeficient };

const char* shape_name(Shape s) {
  switch (s) {
    case Shape::kSquare: return "Square";
    case Shape::kTall: return "Tall";
    case Shape::kWide: return "Wide";
    case Shape::kRankDeficient: return "RankDeficient";
  }
  return "?";
}

Matrix make(Shape s, Rng& rng) {
  switch (s) {
    case Shape::kSquare: return random_gaussian(24, 24, rng);
    case Shape::kTall: return random_gaussian(48, 17, rng);
    case Shape::kWide: return random_gaussian(14, 33, rng);
    case Shape::kRankDeficient: return random_rank_deficient(26, 20, 9, rng);
  }
  return Matrix(1, 1);
}

void expect_bit_identical(const SvdResult& a, const SvdResult& b,
                          const std::string& what) {
  ASSERT_EQ(a.singular_values.size(), b.singular_values.size()) << what;
  for (std::size_t i = 0; i < a.singular_values.size(); ++i)
    EXPECT_EQ(fp::to_bits(a.singular_values[i]),
              fp::to_bits(b.singular_values[i]))
        << what << " singular value " << i;
  EXPECT_EQ(a.sweeps, b.sweeps) << what;
  EXPECT_EQ(a.converged, b.converged) << what;
  ASSERT_EQ(a.u.rows(), b.u.rows()) << what;
  ASSERT_EQ(a.u.cols(), b.u.cols()) << what;
  for (std::size_t i = 0; i < a.u.data().size(); ++i)
    EXPECT_EQ(fp::to_bits(a.u.data()[i]), fp::to_bits(b.u.data()[i]))
        << what << " U entry " << i;
  ASSERT_EQ(a.v.rows(), b.v.rows()) << what;
  ASSERT_EQ(a.v.cols(), b.v.cols()) << what;
  for (std::size_t i = 0; i < a.v.data().size(); ++i)
    EXPECT_EQ(fp::to_bits(a.v.data()[i]), fp::to_bits(b.v.data()[i]))
        << what << " V entry " << i;
}

class PipelinedSweepShapes : public ::testing::TestWithParam<Shape> {
 protected:
  HestenesConfig config() const {
    HestenesConfig cfg;
    cfg.max_sweeps = 20;
    cfg.tolerance = 1e-14;
    cfg.ordering = Ordering::kRoundRobin;
    cfg.compute_u = true;
    cfg.compute_v = true;
    return cfg;
  }
};

TEST_P(PipelinedSweepShapes, BitIdenticalAcrossThreadsAndQueueDepths) {
  Rng rng(11100 + static_cast<int>(GetParam()));
  const Matrix a = make(GetParam(), rng);
  const HestenesConfig cfg = config();
  const SvdResult seq = modified_hestenes_svd(a, cfg);
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    for (std::size_t depth : {1u, 2u, 8u}) {
      PipelinedSweepConfig pipe;
      pipe.threads = threads;
      pipe.queue_depth = depth;
      PipelineStats qs;
      const SvdResult r =
          pipelined_modified_hestenes_svd(a, cfg, pipe, nullptr, &qs);
      expect_bit_identical(r, seq,
                           std::string(shape_name(GetParam())) +
                               " threads=" + std::to_string(threads) +
                               " depth=" + std::to_string(depth));
      EXPECT_EQ(qs.queue_capacity, depth);
      EXPECT_LE(qs.queue_high_water, depth);
      EXPECT_GE(qs.queue_high_water, 1u);
      // Every pair of every executed round pushes exactly one parameter.
      const std::size_t n = a.cols();
      const std::uint64_t per_sweep =
          static_cast<std::uint64_t>(n / 2) * (n - 1 + (n % 2));
      EXPECT_EQ(qs.params_issued, per_sweep * r.sweeps);
    }
  }
}

TEST_P(PipelinedSweepShapes, StatsMatchSequentialPerSweep) {
  Rng rng(11200 + static_cast<int>(GetParam()));
  const Matrix a = make(GetParam(), rng);
  HestenesConfig cfg = config();
  cfg.track_convergence = true;
  HestenesStats ref_stats;
  (void)modified_hestenes_svd(a, cfg, &ref_stats);
  for (std::size_t threads : {1u, 3u}) {
    PipelinedSweepConfig pipe;
    pipe.threads = threads;
    HestenesStats stats;
    (void)pipelined_modified_hestenes_svd(a, cfg, pipe, &stats);
    EXPECT_EQ(stats.total_rotations, ref_stats.total_rotations);
    EXPECT_EQ(stats.total_skipped, ref_stats.total_skipped);
    ASSERT_EQ(stats.sweeps.size(), ref_stats.sweeps.size());
    for (std::size_t s = 0; s < stats.sweeps.size(); ++s) {
      EXPECT_EQ(fp::to_bits(stats.sweeps[s].mean_abs_offdiag),
                fp::to_bits(ref_stats.sweeps[s].mean_abs_offdiag));
      EXPECT_EQ(fp::to_bits(stats.sweeps[s].max_rel_offdiag),
                fp::to_bits(ref_stats.sweeps[s].max_rel_offdiag));
      EXPECT_EQ(stats.sweeps[s].rotations, ref_stats.sweeps[s].rotations);
      EXPECT_EQ(stats.sweeps[s].skipped, ref_stats.sweeps[s].skipped);
    }
  }
}

TEST_P(PipelinedSweepShapes, MatchesBlockedEngineBitForBit) {
  Rng rng(11300 + static_cast<int>(GetParam()));
  const Matrix a = make(GetParam(), rng);
  const HestenesConfig cfg = config();
  ParallelSweepConfig par;
  par.threads = 2;
  const SvdResult blocked = parallel_modified_hestenes_svd(a, cfg, par);
  PipelinedSweepConfig pipe;
  pipe.threads = 2;
  pipe.queue_depth = 4;
  const SvdResult r = pipelined_modified_hestenes_svd(a, cfg, pipe);
  expect_bit_identical(r, blocked, shape_name(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Shapes, PipelinedSweepShapes,
                         ::testing::Values(Shape::kSquare, Shape::kTall,
                                           Shape::kWide,
                                           Shape::kRankDeficient),
                         [](const auto& param_info) {
                           return std::string(shape_name(param_info.param));
                         });

TEST(PipelinedSweep, OddColumnCountHandled) {
  // Odd n exercises the bye slot: the generator's dependency may sit in a
  // cross task between a pair slot and the idle slot of the prior round.
  Rng rng(11400);
  const Matrix a = random_gaussian(19, 13, rng);
  HestenesConfig cfg;
  cfg.max_sweeps = 20;
  cfg.tolerance = 1e-14;
  cfg.compute_u = true;
  cfg.compute_v = true;
  const SvdResult seq = modified_hestenes_svd(a, cfg);
  PipelinedSweepConfig pipe;
  pipe.threads = 3;
  pipe.queue_depth = 2;
  const SvdResult r = pipelined_modified_hestenes_svd(a, cfg, pipe);
  expect_bit_identical(r, seq, "odd n");
}

TEST(PipelinedSweep, TwoColumnsNoVectorsDoesNotDeadlock) {
  // n == 2 has one pair and zero cross tasks; with no vectors requested
  // nothing downstream consumes the parameter, so this exercises the
  // coordinator's queue drain.  Depth 1 makes any leak an immediate hang.
  Rng rng(11500);
  const Matrix a = random_gaussian(6, 2, rng);
  HestenesConfig cfg;
  cfg.max_sweeps = 30;
  cfg.tolerance = 1e-14;
  PipelinedSweepConfig pipe;
  pipe.threads = 2;
  pipe.queue_depth = 1;
  const SvdResult seq = modified_hestenes_svd(a, cfg);
  const SvdResult r = pipelined_modified_hestenes_svd(a, cfg, pipe);
  ASSERT_EQ(r.singular_values.size(), seq.singular_values.size());
  for (std::size_t i = 0; i < r.singular_values.size(); ++i)
    EXPECT_EQ(fp::to_bits(r.singular_values[i]),
              fp::to_bits(seq.singular_values[i]));
}

TEST(PipelinedSweep, SingleColumnDelegates) {
  Rng rng(11600);
  const Matrix one_col = random_gaussian(7, 1, rng);
  PipelinedSweepConfig pipe;
  PipelineStats qs;
  const SvdResult r =
      pipelined_modified_hestenes_svd(one_col, {}, pipe, nullptr, &qs);
  ASSERT_EQ(r.singular_values.size(), 1u);
  EXPECT_EQ(qs.params_issued, 0u);
  EXPECT_EQ(qs.queue_high_water, 0u);
}

TEST(PipelinedSweep, ZeroQueueDepthClampedToOne) {
  Rng rng(11700);
  const Matrix a = random_gaussian(9, 6, rng);
  HestenesConfig cfg;
  cfg.max_sweeps = 20;
  cfg.tolerance = 1e-14;
  PipelinedSweepConfig pipe;
  pipe.queue_depth = 0;
  PipelineStats qs;
  const SvdResult seq = modified_hestenes_svd(a, cfg);
  const SvdResult r =
      pipelined_modified_hestenes_svd(a, cfg, pipe, nullptr, &qs);
  EXPECT_EQ(qs.queue_capacity, 1u);
  EXPECT_EQ(qs.queue_high_water, 1u);
  for (std::size_t i = 0; i < r.singular_values.size(); ++i)
    EXPECT_EQ(fp::to_bits(r.singular_values[i]),
              fp::to_bits(seq.singular_values[i]));
}

TEST(PipelinedSweep, RotationThresholdHonored) {
  Rng rng(11800);
  const Matrix a = random_gaussian(22, 16, rng);
  HestenesConfig cfg;
  cfg.max_sweeps = 8;
  cfg.rotation_threshold = 1e-9;
  HestenesStats seq_stats, pipe_stats;
  const SvdResult seq = modified_hestenes_svd(a, cfg, &seq_stats);
  PipelinedSweepConfig pipe;
  pipe.threads = 2;
  const SvdResult r =
      pipelined_modified_hestenes_svd(a, cfg, pipe, &pipe_stats);
  EXPECT_EQ(pipe_stats.total_rotations, seq_stats.total_rotations);
  EXPECT_EQ(pipe_stats.total_skipped, seq_stats.total_skipped);
  for (std::size_t i = 0; i < r.singular_values.size(); ++i)
    EXPECT_EQ(fp::to_bits(r.singular_values[i]),
              fp::to_bits(seq.singular_values[i]));
}

TEST(PipelinedSweep, RejectsInvalidInputs) {
  EXPECT_THROW(pipelined_modified_hestenes_svd(Matrix()), Error);
  Rng rng(11900);
  const Matrix a = random_gaussian(4, 4, rng);
  HestenesConfig cfg;
  cfg.max_sweeps = 0;
  EXPECT_THROW(pipelined_modified_hestenes_svd(a, cfg), Error);
}

}  // namespace
}  // namespace hjsvd

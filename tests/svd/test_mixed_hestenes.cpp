// Correctness tests for the mixed-precision modified Hestenes-Jacobi
// engine (float opening sweeps -> double refinement; docs/ALGORITHM.md §10).
#include "svd/mixed_hestenes.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "api/svd.hpp"
#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "linalg/residuals.hpp"
#include "obs/metrics.hpp"
#include "svd/hestenes.hpp"

namespace hjsvd {
namespace {

MixedHestenesConfig tolerant_config() {
  MixedHestenesConfig cfg;
  cfg.base.max_sweeps = 30;
  cfg.base.tolerance = 1e-13;
  return cfg;
}

TEST(MixedHestenes, MatchesAllDoubleSingularValues) {
  Rng rng(71);
  const Matrix a = random_gaussian(64, 48, rng);
  const MixedHestenesConfig cfg = tolerant_config();
  const SvdResult mixed = mixed_modified_hestenes_svd(a, cfg);
  const SvdResult ref = modified_hestenes_svd(a, cfg.base);
  ASSERT_TRUE(mixed.converged);
  ASSERT_TRUE(ref.converged);
  // The double refinement phase recovers full double accuracy; the float
  // opening only changes which rotations got applied first, not the
  // attainable precision (Gao/Ma/Shao).
  EXPECT_LT(singular_value_error(mixed.singular_values, ref.singular_values),
            1e-12);
}

TEST(MixedHestenes, PrescribedSingularValuesRecovered) {
  Rng rng(72);
  const std::vector<double> sv = {9.0, 4.0, 2.0, 0.5, 1e-6};
  const Matrix a = with_singular_values(12, 5, sv, rng);
  const SvdResult r = mixed_modified_hestenes_svd(a, tolerant_config());
  ASSERT_TRUE(r.converged);
  ASSERT_EQ(r.singular_values.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_NEAR(r.singular_values[i], sv[i], 1e-10) << "sigma[" << i << "]";
}

TEST(MixedHestenes, RunsFloatSweepsThenFewerDoubleSweeps) {
  Rng rng(73);
  const Matrix a = random_gaussian(96, 96, rng);
  const MixedHestenesConfig cfg = tolerant_config();
  MixedHestenesStats stats;
  const SvdResult mixed = mixed_modified_hestenes_svd(a, cfg, &stats);
  HestenesStats ref_stats;
  const SvdResult ref = modified_hestenes_svd(a, cfg.base, &ref_stats);
  ASSERT_TRUE(mixed.converged);
  ASSERT_TRUE(ref.converged);
  // The point of the tier: real work happens in binary32, and the double
  // phase starts from a nearly-diagonal D, so it needs strictly fewer
  // double-precision sweeps than the all-double engine.
  EXPECT_GT(stats.float_sweeps, 0u);
  EXPECT_LT(stats.double_sweeps, ref.sweeps);
  EXPECT_EQ(mixed.sweeps, stats.float_sweeps + stats.double_sweeps);
  EXPECT_EQ(stats.switch_reason, MixedSwitchReason::kThreshold);
  EXPECT_LT(stats.offdiag_at_switch, cfg.switch_threshold);
  // The Gram recompute transfers the float phase's progress: the double
  // phase starts from an off-diagonal level comparable to where the float
  // phase stopped, not from scratch.
  EXPECT_LT(stats.offdiag_after_recompute, 10.0 * cfg.switch_threshold);
}

TEST(MixedHestenes, SoftFloatPairMatchesNativeBitwise) {
  Rng rng(74);
  const Matrix a = random_gaussian(24, 16, rng);
  MixedHestenesConfig cfg = tolerant_config();
  cfg.base.compute_u = true;
  cfg.base.compute_v = true;
  MixedHestenesStats native_stats, soft_stats;
  const SvdResult native = mixed_modified_hestenes_svd(a, cfg, &native_stats);
  const SvdResult soft =
      mixed_modified_hestenes_svd_soft(a, cfg, &soft_stats);
  // The binary32 and binary64 soft-float cores are bit-identical to the
  // host FPU (tests/fp), so the whole mixed pipeline must be too.
  EXPECT_EQ(native_stats.float_sweeps, soft_stats.float_sweeps);
  EXPECT_EQ(native_stats.double_sweeps, soft_stats.double_sweeps);
  ASSERT_EQ(native.singular_values.size(), soft.singular_values.size());
  for (std::size_t i = 0; i < native.singular_values.size(); ++i)
    EXPECT_EQ(native.singular_values[i], soft.singular_values[i])
        << "sigma[" << i << "]";
  for (std::size_t c = 0; c < native.v.cols(); ++c) {
    const auto nv = native.v.col(c);
    const auto sv = soft.v.col(c);
    for (std::size_t r = 0; r < nv.size(); ++r)
      EXPECT_EQ(nv[r], sv[r]) << "V(" << r << "," << c << ")";
  }
}

TEST(MixedHestenes, SingularVectorsReconstruct) {
  Rng rng(75);
  const Matrix a = random_gaussian(40, 24, rng);
  MixedHestenesConfig cfg = tolerant_config();
  cfg.base.compute_u = true;
  cfg.base.compute_v = true;
  const SvdResult r = mixed_modified_hestenes_svd(a, cfg);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(reconstruction_error(a, r), 1e-12);
  EXPECT_LT(orthogonality_error(r.u), 1e-12);
  EXPECT_LT(orthogonality_error(r.v), 1e-12);
}

TEST(MixedHestenes, ScaleInvariantForPowerOfTwoScaling) {
  Rng rng(76);
  const Matrix a = random_gaussian(32, 24, rng);
  Matrix scaled = a;
  const double s = 0x1p+200;
  for (double& v : scaled.data()) v *= s;
  const MixedHestenesConfig cfg = tolerant_config();
  MixedHestenesStats base_stats, scaled_stats;
  const SvdResult base = mixed_modified_hestenes_svd(a, cfg, &base_stats);
  const SvdResult r = mixed_modified_hestenes_svd(scaled, cfg, &scaled_stats);
  // The float phase works on a frexp-prescaled copy, so a power-of-two
  // input scaling reproduces the identical float iteration; the double
  // phase scales exactly.
  EXPECT_EQ(scaled_stats.float_sweeps, base_stats.float_sweeps);
  EXPECT_EQ(scaled_stats.double_sweeps, base_stats.double_sweeps);
  ASSERT_EQ(r.singular_values.size(), base.singular_values.size());
  for (std::size_t i = 0; i < r.singular_values.size(); ++i)
    EXPECT_DOUBLE_EQ(r.singular_values[i], base.singular_values[i] * s);
}

TEST(MixedHestenes, ZeroMatrixSkipsFloatPhase) {
  const Matrix a(6, 4);
  MixedHestenesStats stats;
  const SvdResult r = mixed_modified_hestenes_svd(a, tolerant_config(), &stats);
  EXPECT_EQ(stats.float_sweeps, 0u);
  EXPECT_EQ(stats.switch_reason, MixedSwitchReason::kSkipped);
  ASSERT_EQ(r.singular_values.size(), 4u);
  for (const double sv : r.singular_values) EXPECT_EQ(sv, 0.0);
}

TEST(MixedHestenes, SingleColumnSkipsFloatPhase) {
  Matrix a(3, 1);
  a(0, 0) = 3.0;
  a(1, 0) = 0.0;
  a(2, 0) = 4.0;
  MixedHestenesStats stats;
  const SvdResult r = mixed_modified_hestenes_svd(a, tolerant_config(), &stats);
  EXPECT_EQ(stats.switch_reason, MixedSwitchReason::kSkipped);
  ASSERT_EQ(r.singular_values.size(), 1u);
  EXPECT_NEAR(r.singular_values[0], 5.0, 1e-14);
}

TEST(MixedHestenes, RejectsBadSwitchThreshold) {
  Rng rng(77);
  const Matrix a = random_gaussian(8, 6, rng);
  MixedHestenesConfig cfg = tolerant_config();
  cfg.switch_threshold = 0.0;
  EXPECT_THROW(mixed_modified_hestenes_svd(a, cfg), Error);
  cfg.switch_threshold = -1e-4;
  EXPECT_THROW(mixed_modified_hestenes_svd(a, cfg), Error);
  cfg.switch_threshold = std::numeric_limits<double>::infinity();
  EXPECT_THROW(mixed_modified_hestenes_svd(a, cfg), Error);
}

TEST(MixedHestenes, EmitsMixedPrecisionTelemetry) {
  Rng rng(78);
  const Matrix a = random_gaussian(32, 24, rng);
  obs::MetricsRegistry metrics;
  MixedHestenesConfig cfg = tolerant_config();
  cfg.base.obs.metrics = &metrics;
  MixedHestenesStats stats;
  const SvdResult r = mixed_modified_hestenes_svd(a, cfg, &stats);
  ASSERT_TRUE(r.converged);
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  ASSERT_TRUE(metrics.gauge("svd.mp.switch_sweep").has_value());
  EXPECT_EQ(*metrics.gauge("svd.mp.float_sweeps"),
            static_cast<double>(stats.float_sweeps));
  EXPECT_EQ(*metrics.gauge("svd.mp.double_sweeps"),
            static_cast<double>(stats.double_sweeps));
  EXPECT_EQ(*metrics.gauge("svd.mp.switch_threshold"), cfg.switch_threshold);
  EXPECT_EQ(*metrics.gauge("svd.mp.switch_reason"),
            static_cast<double>(stats.switch_reason));
  EXPECT_EQ(*metrics.gauge("svd.mp.offdiag_at_switch"),
            stats.offdiag_at_switch);
  EXPECT_EQ(*metrics.gauge("svd.mp.offdiag_after_recompute"),
            stats.offdiag_after_recompute);
  // The convergence series spans both phases: one entry per sweep.
  EXPECT_EQ(metrics.series("svd.sweep.max_rel_offdiag").size(), r.sweeps);
  // Sweep metrics are emitted as pure observation — attaching the sinks
  // must not change the arithmetic.
  const SvdResult quiet = mixed_modified_hestenes_svd(a, tolerant_config());
  ASSERT_EQ(quiet.singular_values.size(), r.singular_values.size());
  for (std::size_t i = 0; i < r.singular_values.size(); ++i)
    EXPECT_EQ(quiet.singular_values[i], r.singular_values[i]);
}

TEST(MixedHestenes, AvailableThroughApiAndBatch) {
  Rng rng(79);
  SvdOptions opt;
  opt.method = SvdMethod::kMixedModifiedHestenes;
  opt.tolerance = 1e-13;
  opt.max_sweeps = 30;
  std::vector<Matrix> batch;
  batch.push_back(random_gaussian(20, 12, rng));
  batch.push_back(random_gaussian(36, 24, rng));
  batch.push_back(random_gaussian(8, 8, rng));
  const auto results = svd_batch(batch, opt, 2);
  ASSERT_EQ(results.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const SvdResult direct = svd(batch[i], opt);
    ASSERT_EQ(results[i].singular_values.size(),
              direct.singular_values.size());
    for (std::size_t k = 0; k < direct.singular_values.size(); ++k)
      EXPECT_EQ(results[i].singular_values[k], direct.singular_values[k])
          << "item " << i << " sigma[" << k << "]";
  }
}

TEST(MixedHestenes, StallPromotesEarly) {
  Rng rng(80);
  const Matrix a = random_gaussian(48, 32, rng);
  MixedHestenesConfig cfg = tolerant_config();
  // A switch threshold no sweep will hit early, combined with a stall
  // factor that demands a 1000x measure reduction per sweep — far beyond
  // Jacobi's actual per-sweep progress on a Gaussian matrix.  The engine
  // must detect the stall and promote instead of burning the whole float
  // budget on sweeps that are not earning their keep.
  cfg.switch_threshold = 1e-20;
  cfg.stall_factor = 1e-3;
  MixedHestenesStats stats;
  const SvdResult r = mixed_modified_hestenes_svd(a, cfg, &stats);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(stats.switch_reason, MixedSwitchReason::kStall);
  EXPECT_LT(stats.float_sweeps, cfg.base.max_sweeps - 1);
  const SvdResult ref = modified_hestenes_svd(a, cfg.base);
  EXPECT_LT(singular_value_error(r.singular_values, ref.singular_values),
            1e-12);
}

}  // namespace
}  // namespace hjsvd

// Tests for the plain (recomputing) one-sided Hestenes-Jacobi, and its
// relationship to the modified (D-caching) algorithm.
#include "svd/plain_hestenes.hpp"

#include <gtest/gtest.h>

#include "baselines/golub_kahan.hpp"
#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "svd/hestenes.hpp"

namespace hjsvd {
namespace {

HestenesConfig tolerant_config() {
  HestenesConfig cfg;
  cfg.max_sweeps = 30;
  cfg.tolerance = 1e-14;
  return cfg;
}

TEST(PlainHestenes, MatchesGolubKahan) {
  Rng rng(42);
  const Matrix a = random_gaussian(20, 12, rng);
  const SvdResult ours = plain_hestenes_svd(a, tolerant_config());
  const SvdResult ref = golub_kahan_svd(a);
  EXPECT_LT(singular_value_error(ours.singular_values, ref.singular_values),
            1e-10);
}

TEST(PlainHestenes, MatchesModifiedAlgorithm) {
  // Exact arithmetic would make them identical; in floating point they agree
  // to rounding levels after convergence.
  Rng rng(43);
  const Matrix a = random_gaussian(16, 16, rng);
  const SvdResult plain = plain_hestenes_svd(a, tolerant_config());
  const SvdResult modified = modified_hestenes_svd(a, tolerant_config());
  EXPECT_LT(
      singular_value_error(plain.singular_values, modified.singular_values),
      1e-11);
}

TEST(PlainHestenes, ProducesOrthogonalUDirectly) {
  Rng rng(44);
  const Matrix a = random_gaussian(15, 9, rng);
  HestenesConfig cfg = tolerant_config();
  cfg.compute_u = true;
  cfg.compute_v = true;
  const SvdResult r = plain_hestenes_svd(a, cfg);
  EXPECT_LT(orthogonality_error(r.u), 1e-10);
  EXPECT_LT(orthogonality_error(r.v), 1e-10);
  EXPECT_LT(reconstruction_error(a, r), 1e-12);
}

TEST(PlainHestenes, DCachingAblationOpCounts) {
  // The point of Algorithm 1: the modified algorithm does far less work for
  // tall matrices because it never re-reads the m-length columns after the
  // first pass.  Compare total FP op counts on a tall matrix.
  Rng rng(45);
  const Matrix a = random_gaussian(200, 12, rng);
  HestenesConfig cfg;
  cfg.max_sweeps = 6;
  fp::OpCounts plain_counts, modified_counts;
  (void)plain_hestenes_svd_counting(a, cfg, plain_counts);
  (void)modified_hestenes_svd_counting(a, cfg, modified_counts);
  EXPECT_GT(plain_counts.total(), 3 * modified_counts.total())
      << "plain=" << plain_counts.total()
      << " modified=" << modified_counts.total();
}

TEST(PlainHestenes, ModifiedGramOnlyOnceButPlainEverySweep) {
  // Multiplication counts isolate the dot-product recomputation: plain does
  // ~3 m-length dots per pair per sweep; modified pays m-length work only in
  // the initial Gram computation.
  Rng rng(46);
  const Matrix a = random_gaussian(100, 8, rng);
  HestenesConfig one, six;
  one.max_sweeps = 1;
  six.max_sweeps = 6;
  fp::OpCounts p1, p6, m1, m6;
  (void)plain_hestenes_svd_counting(a, one, p1);
  (void)plain_hestenes_svd_counting(a, six, p6);
  (void)modified_hestenes_svd_counting(a, one, m1);
  (void)modified_hestenes_svd_counting(a, six, m6);
  // Plain grows ~linearly with sweeps; modified's per-sweep increment is
  // m-independent (covariance updates only).
  const auto plain_growth = p6.mul - p1.mul;
  const auto modified_growth = m6.mul - m1.mul;
  EXPECT_GT(plain_growth, 4 * modified_growth);
}

TEST(PlainHestenes, StatsTrackConvergence) {
  Rng rng(47);
  const Matrix a = random_gaussian(12, 10, rng);
  HestenesConfig cfg;
  cfg.max_sweeps = 4;
  cfg.track_convergence = true;
  HestenesStats stats;
  (void)plain_hestenes_svd(a, cfg, &stats);
  ASSERT_EQ(stats.sweeps.size(), 4u);
  EXPECT_LT(stats.sweeps.back().mean_abs_offdiag,
            stats.sweeps.front().mean_abs_offdiag);
}

TEST(PlainHestenes, RankDeficientValues) {
  Rng rng(48);
  const Matrix a = random_rank_deficient(12, 8, 3, rng);
  const SvdResult r = plain_hestenes_svd(a, tolerant_config());
  EXPECT_GT(r.singular_values[2], 1e-3);
  EXPECT_NEAR(r.singular_values[3], 0.0, 1e-10);
}

TEST(PlainHestenes, RankDeficientUIsOrthonormal) {
  // Regression: columns of U belonging to numerically-zero singular values
  // used to stay zero vectors on the plain path (only the Gram path
  // completed them from the null space).
  Rng rng(49);
  const Matrix a = random_rank_deficient(12, 8, 3, rng);
  HestenesConfig cfg = tolerant_config();
  cfg.compute_u = true;
  cfg.compute_v = true;
  const SvdResult r = plain_hestenes_svd(a, cfg);
  ASSERT_EQ(r.u.cols(), 8u);
  for (std::size_t c = 0; c < r.u.cols(); ++c) {
    double norm_sq = 0.0;
    for (double x : r.u.col(c)) norm_sq += x * x;
    EXPECT_NEAR(norm_sq, 1.0, 1e-10) << "U column " << c;
  }
  EXPECT_LT(orthogonality_error(r.u), 1e-10);
  EXPECT_LT(reconstruction_error(a, r), 1e-10);
}

TEST(PlainHestenes, RankDeficientUMatchesGramPathQuality) {
  // Both paths now share detail::orthonormalize_columns, so both must give
  // fully orthonormal U on the same rank-deficient input.
  Rng rng(50);
  const Matrix a = random_rank_deficient(15, 10, 4, rng);
  HestenesConfig cfg = tolerant_config();
  cfg.compute_u = true;
  cfg.compute_v = true;
  const SvdResult plain = plain_hestenes_svd(a, cfg);
  const SvdResult gram = modified_hestenes_svd(a, cfg);
  EXPECT_LT(orthogonality_error(plain.u), 1e-10);
  EXPECT_LT(orthogonality_error(gram.u), 1e-10);
  EXPECT_LT(reconstruction_error(a, plain), 1e-10);
}

}  // namespace
}  // namespace hjsvd

// Tests for the block one-sided Jacobi variant.
#include "svd/block_hestenes.hpp"

#include <gtest/gtest.h>

#include "baselines/golub_kahan.hpp"
#include "common/rng.hpp"
#include "linalg/generate.hpp"

namespace hjsvd {
namespace {

BlockHestenesConfig tolerant(std::size_t block) {
  BlockHestenesConfig cfg;
  cfg.block_size = block;
  cfg.max_sweeps = 20;
  cfg.tolerance = 1e-14;
  return cfg;
}

class BlockSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BlockSizes, MatchesGolubKahan) {
  Rng rng(101);
  const Matrix a = random_gaussian(48, 36, rng);
  const SvdResult ours = block_hestenes_svd(a, tolerant(GetParam()));
  const SvdResult ref = golub_kahan_svd(a);
  EXPECT_LT(singular_value_error(ours.singular_values, ref.singular_values),
            1e-9);
}

INSTANTIATE_TEST_SUITE_P(Blocks, BlockSizes,
                         ::testing::Values<std::size_t>(4, 8, 16, 36, 64),
                         [](const auto& param_info) {
                           return "b" + std::to_string(param_info.param);
                         });

TEST(BlockHestenes, SingleBlockEqualsWholeProblem) {
  // With block_size >= n, one self-visit covers all pairs (plain Jacobi).
  Rng rng(102);
  const Matrix a = random_gaussian(20, 12, rng);
  const SvdResult big = block_hestenes_svd(a, tolerant(64));
  const SvdResult ref = golub_kahan_svd(a);
  EXPECT_LT(singular_value_error(big.singular_values, ref.singular_values),
            1e-10);
}

TEST(BlockHestenes, VectorsReconstruct) {
  Rng rng(103);
  const Matrix a = random_gaussian(30, 24, rng);
  BlockHestenesConfig cfg = tolerant(8);
  cfg.compute_u = true;
  cfg.compute_v = true;
  const SvdResult r = block_hestenes_svd(a, cfg);
  EXPECT_LT(orthogonality_error(r.u), 1e-9);
  EXPECT_LT(orthogonality_error(r.v), 1e-9);
  EXPECT_LT(reconstruction_error(a, r), 1e-10);
}

TEST(BlockHestenes, ConvergenceTracked) {
  Rng rng(104);
  const Matrix a = random_gaussian(32, 32, rng);
  BlockHestenesConfig cfg;
  cfg.block_size = 8;
  cfg.max_sweeps = 5;
  cfg.track_convergence = true;
  HestenesStats stats;
  (void)block_hestenes_svd(a, cfg, &stats);
  ASSERT_EQ(stats.sweeps.size(), 5u);
  EXPECT_LT(stats.sweeps.back().mean_abs_offdiag,
            stats.sweeps.front().mean_abs_offdiag);
}

TEST(BlockHestenes, EarlyTermination) {
  Rng rng(105);
  const Matrix a = random_gaussian(24, 16, rng);
  BlockHestenesConfig cfg = tolerant(8);
  cfg.max_sweeps = 50;
  const SvdResult r = block_hestenes_svd(a, cfg);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.sweeps, 50u);
}

TEST(BlockHestenes, OddSizesAndRaggedTail) {
  // n not a multiple of the block size leaves a ragged final block.
  Rng rng(106);
  const Matrix a = random_gaussian(19, 13, rng);
  const SvdResult ours = block_hestenes_svd(a, tolerant(5));
  const SvdResult ref = golub_kahan_svd(a);
  EXPECT_LT(singular_value_error(ours.singular_values, ref.singular_values),
            1e-9);
}

TEST(BlockHestenes, RejectsBadConfig) {
  Rng rng(107);
  const Matrix a = random_gaussian(4, 4, rng);
  BlockHestenesConfig cfg;
  cfg.block_size = 0;
  EXPECT_THROW(block_hestenes_svd(a, cfg), Error);
  EXPECT_THROW(block_hestenes_svd(Matrix{}, BlockHestenesConfig{}), Error);
}

}  // namespace
}  // namespace hjsvd

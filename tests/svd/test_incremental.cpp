// Tests for the incremental (column-append) SVD.
#include "svd/incremental.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "baselines/golub_kahan.hpp"
#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "linalg/kernels.hpp"

namespace hjsvd {
namespace {

TEST(Incremental, MatchesBatchAfterAllAppends) {
  Rng rng(201);
  const Matrix a = random_gaussian(24, 10, rng);
  IncrementalHestenes inc(24);
  for (std::size_t j = 0; j < a.cols(); ++j) inc.append_column(a.col(j));
  const SvdResult ours = inc.finalize();
  const SvdResult ref = golub_kahan_svd(a);
  EXPECT_LT(singular_value_error(ours.singular_values, ref.singular_values),
            1e-9);
}

TEST(Incremental, AssembledReconstructsTheInput) {
  Rng rng(202);
  const Matrix a = random_gaussian(15, 6, rng);
  IncrementalHestenes inc(15);
  for (std::size_t j = 0; j < a.cols(); ++j) inc.append_column(a.col(j));
  EXPECT_LT(Matrix::max_abs_diff(inc.assembled(), a), 1e-11);
  (void)inc.finalize();
  // Reconstruction still exact after the finalize sweeps.
  EXPECT_LT(Matrix::max_abs_diff(inc.assembled(), a), 1e-11);
}

TEST(Incremental, VectorsFormAValidSvd) {
  Rng rng(203);
  const Matrix a = random_gaussian(18, 7, rng);
  IncrementalHestenes inc(18);
  for (std::size_t j = 0; j < a.cols(); ++j) inc.append_column(a.col(j));
  const SvdResult r = inc.finalize(/*compute_u=*/true, /*compute_v=*/true);
  EXPECT_LT(orthogonality_error(r.u), 1e-10);
  EXPECT_LT(orthogonality_error(r.v), 1e-10);
  EXPECT_LT(reconstruction_error(a, r), 1e-11);
}

TEST(Incremental, IntermediateQueriesAreConsistent) {
  // Query after every append: values must match the batch SVD of the prefix.
  Rng rng(204);
  const Matrix a = random_gaussian(12, 6, rng);
  IncrementalHestenes inc(12);
  for (std::size_t j = 0; j < a.cols(); ++j) {
    inc.append_column(a.col(j));
    const SvdResult ours = inc.finalize();
    Matrix prefix(12, j + 1);
    for (std::size_t c = 0; c <= j; ++c) {
      auto src = a.col(c);
      auto dst = prefix.col(c);
      std::copy(src.begin(), src.end(), dst.begin());
    }
    const SvdResult ref = golub_kahan_svd(prefix);
    EXPECT_LT(
        singular_value_error(ours.singular_values, ref.singular_values),
        1e-9)
        << "after column " << j;
  }
}

TEST(Incremental, SingleColumn) {
  Matrix col(4, 1);
  col(0, 0) = 3.0;
  col(2, 0) = 4.0;
  IncrementalHestenes inc(4);
  inc.append_column(col.col(0));
  const SvdResult r = inc.finalize();
  ASSERT_EQ(r.singular_values.size(), 1u);
  EXPECT_NEAR(r.singular_values[0], 5.0, 1e-12);
  EXPECT_TRUE(r.converged);
}

TEST(Incremental, MoreColumnsThanRows) {
  Rng rng(205);
  const Matrix a = random_gaussian(5, 9, rng);
  IncrementalHestenes inc(5);
  for (std::size_t j = 0; j < a.cols(); ++j) inc.append_column(a.col(j));
  const SvdResult ours = inc.finalize();
  const SvdResult ref = golub_kahan_svd(a);
  ASSERT_EQ(ours.singular_values.size(), 5u);
  EXPECT_LT(singular_value_error(ours.singular_values, ref.singular_values),
            1e-9);
}

TEST(Incremental, RejectsBadInput) {
  IncrementalHestenes inc(4);
  std::vector<double> wrong_length(3, 1.0);
  EXPECT_THROW(inc.append_column(wrong_length), Error);
  std::vector<double> with_nan(4, 1.0);
  with_nan[2] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(inc.append_column(with_nan), Error);
  EXPECT_THROW(inc.finalize(), Error);  // nothing appended yet
  EXPECT_THROW(IncrementalHestenes(0), Error);
}

}  // namespace
}  // namespace hjsvd

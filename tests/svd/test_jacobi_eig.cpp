// Tests for the classical Jacobi symmetric eigensolver.
#include "svd/jacobi_eig.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "linalg/kernels.hpp"
#include "linalg/residuals.hpp"
#include "svd/hestenes.hpp"

namespace hjsvd {
namespace {

Matrix random_symmetric(std::size_t n, Rng& rng) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) a(i, j) = a(j, i) = rng.gaussian();
  return a;
}

TEST(JacobiEig, DiagonalMatrixIsItsOwnDecomposition) {
  Matrix a(4, 4);
  a(0, 0) = 1.0;
  a(1, 1) = 4.0;
  a(2, 2) = -2.0;
  a(3, 3) = 3.0;
  const EigResult r = jacobi_eigendecomposition(a);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.eigenvalues[0], 4.0);
  EXPECT_DOUBLE_EQ(r.eigenvalues[3], -2.0);  // descending, signed
}

TEST(JacobiEig, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  const Matrix a = Matrix::from_rows({{2, 1}, {1, 2}});
  const EigResult r = jacobi_eigendecomposition(a);
  EXPECT_NEAR(r.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(r.eigenvalues[1], 1.0, 1e-12);
}

TEST(JacobiEig, TraceAndFrobeniusPreserved) {
  Rng rng(61);
  const Matrix a = random_symmetric(12, rng);
  const EigResult r = jacobi_eigendecomposition(a);
  double trace = 0.0, fro2 = 0.0;
  for (std::size_t i = 0; i < 12; ++i) trace += a(i, i);
  for (double x : a.data()) fro2 += x * x;
  double eig_sum = 0.0, eig_sq = 0.0;
  for (double l : r.eigenvalues) {
    eig_sum += l;
    eig_sq += l * l;
  }
  EXPECT_NEAR(eig_sum, trace, 1e-10);
  EXPECT_NEAR(eig_sq, fro2, 1e-9);
}

TEST(JacobiEig, VectorsDiagonalize) {
  Rng rng(62);
  const Matrix a = random_symmetric(10, rng);
  JacobiEigConfig cfg;
  cfg.compute_vectors = true;
  const EigResult r = jacobi_eigendecomposition(a, cfg);
  EXPECT_LT(orthogonality_error(r.eigenvectors), 1e-11);
  // V^T A V = diag(lambda).
  const Matrix avt = matmul(a, r.eigenvectors);
  const Matrix d = matmul(r.eigenvectors.transposed(), avt);
  for (std::size_t i = 0; i < 10; ++i)
    for (std::size_t j = 0; j < 10; ++j) {
      const double expect = i == j ? r.eigenvalues[i] : 0.0;
      EXPECT_NEAR(d(i, j), expect, 1e-9);
    }
}

TEST(JacobiEig, GramEigenvaluesAreSquaredSingularValues) {
  // The Hestenes connection: eig(A^T A) == sigma(A)^2.
  Rng rng(63);
  const Matrix a = random_gaussian(20, 8, rng);
  const Matrix gram = gram_full(a);
  const EigResult eig = jacobi_eigendecomposition(gram);
  HestenesConfig hj;
  hj.max_sweeps = 30;
  hj.tolerance = 1e-14;
  const SvdResult svd = modified_hestenes_svd(a, hj);
  for (std::size_t i = 0; i < 8; ++i) {
    const double sv2 = svd.singular_values[i] * svd.singular_values[i];
    EXPECT_NEAR(eig.eigenvalues[i], sv2, 1e-9 * (1.0 + sv2));
  }
}

TEST(JacobiEig, IndefiniteSpectrumHandled) {
  Rng rng(64);
  // A - c*I shifts the spectrum negative without breaking symmetry.
  Matrix a = random_symmetric(8, rng);
  for (std::size_t i = 0; i < 8; ++i) a(i, i) -= 10.0;
  const EigResult r = jacobi_eigendecomposition(a);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.eigenvalues.back(), 0.0);
}

TEST(JacobiEig, HilbertEigenvaluesArePositiveDecreasing) {
  const EigResult r = jacobi_eigendecomposition(hilbert(8));
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_GT(r.eigenvalues[i], 0.0);
    if (i > 0) EXPECT_LE(r.eigenvalues[i], r.eigenvalues[i - 1]);
  }
}

TEST(JacobiEig, RejectsAsymmetricAndNonSquare) {
  EXPECT_THROW(jacobi_eigendecomposition(Matrix(3, 4)), Error);
  Matrix asym = Matrix::from_rows({{1, 2}, {3, 4}});
  EXPECT_THROW(jacobi_eigendecomposition(asym), Error);
}

}  // namespace
}  // namespace hjsvd

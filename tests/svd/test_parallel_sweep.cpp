// Tests for the multi-threaded sweep engine: bitwise determinism across
// thread counts and exact equivalence with the sequential round-robin
// algorithms, on square / tall / wide / rank-deficient inputs.
#include "svd/parallel_sweep.hpp"

#include <gtest/gtest.h>

#include <string>

#include "baselines/golub_kahan.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "fp/softfloat.hpp"
#include "linalg/generate.hpp"
#include "svd/hestenes.hpp"
#include "svd/plain_hestenes.hpp"

namespace hjsvd {
namespace {

enum class Shape { kSquare, kTall, kWide, kRankDeficient };

const char* shape_name(Shape s) {
  switch (s) {
    case Shape::kSquare: return "Square";
    case Shape::kTall: return "Tall";
    case Shape::kWide: return "Wide";
    case Shape::kRankDeficient: return "RankDeficient";
  }
  return "?";
}

Matrix make(Shape s, Rng& rng) {
  switch (s) {
    case Shape::kSquare: return random_gaussian(24, 24, rng);
    case Shape::kTall: return random_gaussian(48, 17, rng);
    case Shape::kWide: return random_gaussian(14, 33, rng);
    case Shape::kRankDeficient: return random_rank_deficient(26, 20, 9, rng);
  }
  return Matrix(1, 1);
}

void expect_bit_identical(const SvdResult& a, const SvdResult& b,
                          const char* what) {
  ASSERT_EQ(a.singular_values.size(), b.singular_values.size()) << what;
  for (std::size_t i = 0; i < a.singular_values.size(); ++i)
    EXPECT_EQ(fp::to_bits(a.singular_values[i]),
              fp::to_bits(b.singular_values[i]))
        << what << " singular value " << i;
  EXPECT_EQ(a.sweeps, b.sweeps) << what;
  EXPECT_EQ(a.converged, b.converged) << what;
  ASSERT_EQ(a.u.rows(), b.u.rows()) << what;
  ASSERT_EQ(a.u.cols(), b.u.cols()) << what;
  for (std::size_t i = 0; i < a.u.data().size(); ++i)
    EXPECT_EQ(fp::to_bits(a.u.data()[i]), fp::to_bits(b.u.data()[i]))
        << what << " U entry " << i;
  ASSERT_EQ(a.v.rows(), b.v.rows()) << what;
  ASSERT_EQ(a.v.cols(), b.v.cols()) << what;
  for (std::size_t i = 0; i < a.v.data().size(); ++i)
    EXPECT_EQ(fp::to_bits(a.v.data()[i]), fp::to_bits(b.v.data()[i]))
        << what << " V entry " << i;
}

class ParallelSweepShapes : public ::testing::TestWithParam<Shape> {
 protected:
  HestenesConfig config() const {
    HestenesConfig cfg;
    cfg.max_sweeps = 20;
    cfg.tolerance = 1e-14;
    cfg.ordering = Ordering::kRoundRobin;
    cfg.compute_u = true;
    cfg.compute_v = true;
    return cfg;
  }
};

TEST_P(ParallelSweepShapes, ModifiedEngineMatchesSequentialBitForBit) {
  Rng rng(9100 + static_cast<int>(GetParam()));
  const Matrix a = make(GetParam(), rng);
  const HestenesConfig cfg = config();
  const SvdResult seq = modified_hestenes_svd(a, cfg);
  for (std::size_t threads : {1u, 2u, 4u}) {
    ParallelSweepConfig par;
    par.threads = threads;
    const SvdResult r = parallel_modified_hestenes_svd(a, cfg, par);
    expect_bit_identical(r, seq,
                         (std::string(shape_name(GetParam())) + " threads=" +
                          std::to_string(threads))
                             .c_str());
  }
}

TEST_P(ParallelSweepShapes, PlainEngineMatchesSequentialBitForBit) {
  Rng rng(9200 + static_cast<int>(GetParam()));
  const Matrix a = make(GetParam(), rng);
  const HestenesConfig cfg = config();
  const SvdResult seq = plain_hestenes_svd(a, cfg);
  for (std::size_t threads : {1u, 2u, 4u}) {
    ParallelSweepConfig par;
    par.threads = threads;
    const SvdResult r = parallel_plain_hestenes_svd(a, cfg, par);
    expect_bit_identical(r, seq,
                         (std::string(shape_name(GetParam())) + " threads=" +
                          std::to_string(threads))
                             .c_str());
  }
}

TEST_P(ParallelSweepShapes, StatsIdenticalAcrossThreadCounts) {
  Rng rng(9300 + static_cast<int>(GetParam()));
  const Matrix a = make(GetParam(), rng);
  HestenesConfig cfg = config();
  cfg.track_convergence = true;
  HestenesStats ref_stats;
  (void)modified_hestenes_svd(a, cfg, &ref_stats);
  for (std::size_t threads : {1u, 2u, 4u}) {
    ParallelSweepConfig par;
    par.threads = threads;
    HestenesStats stats;
    (void)parallel_modified_hestenes_svd(a, cfg, par, &stats);
    EXPECT_EQ(stats.total_rotations, ref_stats.total_rotations);
    EXPECT_EQ(stats.total_skipped, ref_stats.total_skipped);
    ASSERT_EQ(stats.sweeps.size(), ref_stats.sweeps.size());
    for (std::size_t s = 0; s < stats.sweeps.size(); ++s) {
      EXPECT_EQ(fp::to_bits(stats.sweeps[s].mean_abs_offdiag),
                fp::to_bits(ref_stats.sweeps[s].mean_abs_offdiag));
      EXPECT_EQ(stats.sweeps[s].rotations, ref_stats.sweeps[s].rotations);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ParallelSweepShapes,
                         ::testing::Values(Shape::kSquare, Shape::kTall,
                                           Shape::kWide,
                                           Shape::kRankDeficient),
                         [](const auto& param_info) {
                           return std::string(shape_name(param_info.param));
                         });

TEST(ParallelSweep, ModifiedAgreesWithGolubKahan) {
  Rng rng(9400);
  const Matrix a = random_gaussian(30, 21, rng);
  HestenesConfig cfg;
  cfg.max_sweeps = 30;
  cfg.tolerance = 1e-14;
  const SvdResult ours = parallel_modified_hestenes_svd(a, cfg);
  const SvdResult ref = golub_kahan_svd(a);
  EXPECT_LT(singular_value_error(ours.singular_values, ref.singular_values),
            1e-10);
}

TEST(ParallelSweep, OddColumnCountHandled) {
  // Odd n exercises the round-robin bye slot of the block decomposition.
  Rng rng(9500);
  const Matrix a = random_gaussian(19, 13, rng);
  HestenesConfig cfg;
  cfg.max_sweeps = 20;
  cfg.tolerance = 1e-14;
  cfg.compute_u = true;
  cfg.compute_v = true;
  const SvdResult seq = modified_hestenes_svd(a, cfg);
  ParallelSweepConfig par;
  par.threads = 3;
  const SvdResult r = parallel_modified_hestenes_svd(a, cfg, par);
  ASSERT_EQ(r.singular_values.size(), seq.singular_values.size());
  for (std::size_t i = 0; i < r.singular_values.size(); ++i)
    EXPECT_EQ(fp::to_bits(r.singular_values[i]),
              fp::to_bits(seq.singular_values[i]));
}

TEST(ParallelSweep, RotationThresholdHonored) {
  Rng rng(9600);
  const Matrix a = random_gaussian(22, 16, rng);
  HestenesConfig cfg;
  cfg.max_sweeps = 8;
  cfg.rotation_threshold = 1e-9;
  HestenesStats seq_stats, par_stats;
  const SvdResult seq = modified_hestenes_svd(a, cfg, &seq_stats);
  ParallelSweepConfig par;
  par.threads = 2;
  const SvdResult r = parallel_modified_hestenes_svd(a, cfg, par, &par_stats);
  EXPECT_EQ(par_stats.total_rotations, seq_stats.total_rotations);
  EXPECT_EQ(par_stats.total_skipped, seq_stats.total_skipped);
  for (std::size_t i = 0; i < r.singular_values.size(); ++i)
    EXPECT_EQ(fp::to_bits(r.singular_values[i]),
              fp::to_bits(seq.singular_values[i]));
}

TEST(ParallelSweep, SingleColumnAndTinyInputs) {
  Rng rng(9700);
  const Matrix one_col = random_gaussian(7, 1, rng);
  const SvdResult r1 = parallel_modified_hestenes_svd(one_col);
  ASSERT_EQ(r1.singular_values.size(), 1u);
  const Matrix two = random_gaussian(5, 2, rng);
  HestenesConfig cfg;
  cfg.compute_u = true;
  cfg.compute_v = true;
  const SvdResult r2 = parallel_modified_hestenes_svd(two, cfg);
  const SvdResult seq = modified_hestenes_svd(two, cfg);
  for (std::size_t i = 0; i < r2.singular_values.size(); ++i)
    EXPECT_EQ(fp::to_bits(r2.singular_values[i]),
              fp::to_bits(seq.singular_values[i]));
}

TEST(ParallelSweep, RejectsInvalidInputs) {
  EXPECT_THROW(parallel_modified_hestenes_svd(Matrix()), Error);
  Rng rng(9800);
  const Matrix a = random_gaussian(4, 4, rng);
  HestenesConfig cfg;
  cfg.max_sweeps = 0;
  EXPECT_THROW(parallel_modified_hestenes_svd(a, cfg), Error);
  EXPECT_THROW(parallel_plain_hestenes_svd(a, cfg), Error);
}

}  // namespace
}  // namespace hjsvd

// Workspace arena: slot reuse accounting, zeroing, and the bitwise-identity
// contract of arena-backed decompositions.
#include <gtest/gtest.h>

#include <cstdint>

#include "api/svd.hpp"
#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "linalg/matrix.hpp"
#include "svd/workspace.hpp"

namespace hjsvd {
namespace {

TEST(MatrixReshape, ReportsCapacityReuse) {
  Matrix m;
  EXPECT_FALSE(m.reshape(4, 4));  // cold: vector must grow
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_TRUE(m.reshape(2, 3));   // smaller fits in place
  EXPECT_TRUE(m.reshape(4, 4));   // capacity was retained
  EXPECT_FALSE(m.reshape(8, 8));  // larger grows again
}

TEST(MatrixReshape, ZeroesEveryEntry) {
  Matrix m(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) m(i, j) = 7.0;
  m.reshape(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(m(i, j), 0.0);
}

TEST(Workspace, CountsAllocationsAndReuses) {
  Workspace ws;
  EXPECT_EQ(ws.alloc_total(), 0u);
  EXPECT_EQ(ws.reuse_total(), 0u);

  Matrix& a = ws.acquire(Workspace::Slot::kGram, 6, 6);
  EXPECT_EQ(ws.alloc_total(), 1u);
  EXPECT_EQ(ws.reuse_total(), 0u);
  a(0, 0) = 3.0;

  // Same slot, same shape: warm, and handed back zeroed.
  Matrix& b = ws.acquire(Workspace::Slot::kGram, 6, 6);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(ws.alloc_total(), 1u);
  EXPECT_EQ(ws.reuse_total(), 1u);
  EXPECT_EQ(b(0, 0), 0.0);

  // Smaller shape reuses; larger one re-allocates.
  ws.acquire(Workspace::Slot::kGram, 2, 3);
  EXPECT_EQ(ws.reuse_total(), 2u);
  ws.acquire(Workspace::Slot::kGram, 9, 9);
  EXPECT_EQ(ws.alloc_total(), 2u);

  // Slots are independent.
  ws.acquire(Workspace::Slot::kFinalizeB, 4, 4);
  EXPECT_EQ(ws.alloc_total(), 3u);
}

TEST(Workspace, ClearReleasesRetainedBuffersAndCounters) {
  Workspace ws;
  ws.acquire(Workspace::Slot::kGram, 8, 8);
  ws.acquire(Workspace::Slot::kGram, 8, 8);
  ws.clear();
  EXPECT_EQ(ws.alloc_total(), 0u);
  EXPECT_EQ(ws.reuse_total(), 0u);
  // The cleared slot dropped its storage, so the next acquire is cold.
  ws.acquire(Workspace::Slot::kGram, 8, 8);
  EXPECT_EQ(ws.alloc_total(), 1u);
  EXPECT_EQ(ws.reuse_total(), 0u);
}

/// Arena-backed svd() must be bitwise identical to the allocating path,
/// including on the second (warm) run where every buffer is reused.
TEST(Workspace, SvdIsBitwiseIdenticalWarmAndCold) {
  Rng rng(77);
  const Matrix a = random_gaussian(18, 12, rng);
  for (const bool vectors : {false, true}) {
    SvdOptions plain;
    plain.compute_u = vectors;
    plain.compute_v = vectors;
    const SvdResult ref = svd(a, plain);

    Workspace ws;
    SvdOptions arena = plain;
    arena.workspace = &ws;
    for (int run = 0; run < 3; ++run) {
      const SvdResult got = svd(a, arena);
      ASSERT_EQ(got.singular_values.size(), ref.singular_values.size());
      for (std::size_t i = 0; i < ref.singular_values.size(); ++i)
        EXPECT_EQ(got.singular_values[i], ref.singular_values[i])
            << "run " << run << " sv " << i << " vectors=" << vectors;
      if (vectors) {
        for (std::size_t j = 0; j < ref.v.cols(); ++j)
          for (std::size_t i = 0; i < ref.v.rows(); ++i)
            ASSERT_EQ(got.v(i, j), ref.v(i, j)) << "run " << run;
        for (std::size_t j = 0; j < ref.u.cols(); ++j)
          for (std::size_t i = 0; i < ref.u.rows(); ++i)
            ASSERT_EQ(got.u(i, j), ref.u(i, j)) << "run " << run;
      }
    }
    EXPECT_GT(ws.reuse_total(), 0u) << "repeat runs must go warm";
  }
}

/// After the first same-shape decomposition, repeat calls are allocation
/// free: alloc_total stays flat while reuse_total grows.
TEST(Workspace, WarmRunsAreAllocationFree) {
  Rng rng(5);
  const Matrix a = random_gaussian(16, 10, rng);
  Workspace ws;
  SvdOptions opt;
  opt.compute_u = true;
  opt.compute_v = true;
  opt.workspace = &ws;
  (void)svd(a, opt);
  const std::uint64_t cold_allocs = ws.alloc_total();
  EXPECT_GT(cold_allocs, 0u);
  const std::uint64_t warm_start_reuse = ws.reuse_total();
  for (int run = 0; run < 4; ++run) (void)svd(a, opt);
  EXPECT_EQ(ws.alloc_total(), cold_allocs);
  EXPECT_GT(ws.reuse_total(), warm_start_reuse);
}

}  // namespace
}  // namespace hjsvd

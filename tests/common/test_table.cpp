// Tests for the ASCII-table / CSV / formatting helpers.
#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hjsvd {
namespace {

TEST(AsciiTable, RendersAlignedColumns) {
  AsciiTable t({"a", "long-header"});
  t.add_row({"x", "1"});
  t.add_row({"yyyy", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a    | long-header |"), std::string::npos);
  EXPECT_NE(s.find("| yyyy | 2           |"), std::string::npos);
}

TEST(AsciiTable, CaptionAppearsFirst) {
  AsciiTable t({"c"});
  t.set_caption("My caption");
  t.add_row({"v"});
  EXPECT_EQ(t.to_string().rfind("My caption", 0), 0u);
}

TEST(AsciiTable, RowWidthMismatchThrows) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(AsciiTable, EmptyHeaderThrows) {
  EXPECT_THROW(AsciiTable({}), Error);
}

TEST(AsciiTable, CsvEscapesSpecialCharacters) {
  AsciiTable t({"name", "value"});
  t.add_row({"has,comma", "has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(AsciiTable, CsvHasHeaderAndRows) {
  AsciiTable t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Format, Scientific) {
  EXPECT_EQ(format_sci(4.39e-3, 3), "4.39e-03");
  EXPECT_EQ(format_sci(1.23, 3), "1.23e+00");
}

TEST(Format, Fixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-1.0, 1), "-1.0");
}

TEST(Format, Duration) {
  EXPECT_EQ(format_duration(2.5), "2.50 s");
  EXPECT_EQ(format_duration(2.5e-3), "2.50 ms");
  EXPECT_EQ(format_duration(2.5e-6), "2.50 us");
  EXPECT_EQ(format_duration(25e-9), "25.0 ns");
}

TEST(WriteFile, FailsOnBadPath) {
  EXPECT_THROW(write_file("/nonexistent-dir/x/y.txt", "data"), Error);
}

}  // namespace
}  // namespace hjsvd

// Tests for the command-line flag parser.
#include "common/cli.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hjsvd {
namespace {

Cli make_cli() {
  Cli cli("test program");
  cli.add_option("size", "128", "matrix size");
  cli.add_option("ratio", "1.5", "aspect ratio");
  cli.add_option("verbose", "false", "chatty output");
  cli.add_option("sizes", "1,2,3", "size list");
  return cli;
}

TEST(Cli, DefaultsApply) {
  Cli cli = make_cli();
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_EQ(cli.get_int("size"), 128);
  EXPECT_DOUBLE_EQ(cli.get_double("ratio"), 1.5);
  EXPECT_FALSE(cli.get_bool("verbose"));
}

TEST(Cli, SpaceSeparatedValue) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--size", "256"};
  cli.parse(3, argv);
  EXPECT_EQ(cli.get_int("size"), 256);
}

TEST(Cli, EqualsSeparatedValue) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--size=512"};
  cli.parse(2, argv);
  EXPECT_EQ(cli.get_int("size"), 512);
}

TEST(Cli, BareBooleanFlag) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--verbose"};
  cli.parse(2, argv);
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(Cli, BareFlagFollowedByAnotherFlag) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--verbose", "--size", "64"};
  cli.parse(4, argv);
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_EQ(cli.get_int("size"), 64);
}

TEST(Cli, IntListParses) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--sizes", "128,256,512"};
  cli.parse(3, argv);
  EXPECT_EQ(cli.get_int_list("sizes"),
            (std::vector<std::int64_t>{128, 256, 512}));
}

TEST(Cli, UnknownOptionThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(cli.parse(3, argv), Error);
}

TEST(Cli, BadIntegerThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--size", "abc"};
  cli.parse(3, argv);
  EXPECT_THROW((void)cli.get_int("size"), Error);
}

TEST(Cli, BadBooleanThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--verbose", "maybe"};
  cli.parse(3, argv);
  EXPECT_THROW((void)cli.get_bool("verbose"), Error);
}

TEST(Cli, DuplicateRegistrationThrows) {
  Cli cli("x");
  cli.add_option("a", "1", "first");
  EXPECT_THROW(cli.add_option("a", "2", "again"), Error);
}

TEST(Cli, HelpListsOptions) {
  Cli cli = make_cli();
  const std::string h = cli.help();
  EXPECT_NE(h.find("--size"), std::string::npos);
  EXPECT_NE(h.find("matrix size"), std::string::npos);
}

}  // namespace
}  // namespace hjsvd

// Tests for the reusable work-stealing scheduler.
#include "common/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

#include "arch/multi_engine.hpp"
#include "common/error.hpp"

namespace hjsvd {
namespace {

WorkStealingOptions opts(std::size_t workers) {
  WorkStealingOptions o;
  o.workers = workers;
  return o;
}

TEST(Pool, SingleWorkerRunsSeededLptOrder) {
  // One worker, bins from the LPT sharder: the deque is seeded in
  // descending-cost order and the owner pops the front, so execution order
  // is largest-cost first.
  const std::vector<double> costs{1.0, 5.0, 3.0, 2.0};
  const auto bins = arch::shard_by_cost(costs, 1);
  std::vector<std::size_t> order;
  const auto stats = run_work_stealing(costs, bins, opts(1),
                                       [&](const PoolTaskInfo& info) {
                                         order.push_back(info.task);
                                         EXPECT_EQ(info.worker, 0u);
                                         EXPECT_FALSE(info.stolen);
                                       });
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 3, 0}));
  EXPECT_EQ(stats.tasks, 4u);
  EXPECT_EQ(stats.steals, 0u);
  EXPECT_EQ(stats.executed[0], 4u);
}

TEST(Pool, EveryTaskRunsExactlyOnceAcrossWorkers) {
  const std::size_t n = 23;
  std::vector<double> costs(n, 1.0);
  const auto bins = arch::shard_by_cost(costs, 4);
  std::vector<std::atomic<int>> runs(n);
  for (auto& r : runs) r.store(0);
  const auto stats = run_work_stealing(
      costs, bins, opts(4),
      [&](const PoolTaskInfo& info) { runs[info.task].fetch_add(1); });
  for (std::size_t t = 0; t < n; ++t) EXPECT_EQ(runs[t].load(), 1) << t;
  std::uint64_t total = 0;
  for (std::uint64_t e : stats.executed) total += e;
  EXPECT_EQ(total, n);
  // Occupancy samples are in global acquisition order: the k-th acquired
  // task saw exactly n-1-k tasks still queued.
  ASSERT_EQ(stats.occupancy.size(), n);
  for (std::size_t k = 0; k < n; ++k)
    EXPECT_EQ(stats.occupancy[k], n - 1 - k) << k;
}

TEST(Pool, IdleWorkerStealsFromSeededVictim) {
  // All eight tasks are seeded onto worker 0; worker 1 starts empty.  The
  // first task holds worker 0 until a steal has been observed (bounded
  // wait), so worker 1's only way to contribute is stealing — its first
  // acquisition is a steal by construction.
  const std::size_t n = 8;
  std::vector<double> costs(n, 1.0);
  std::vector<std::vector<std::size_t>> bins{{0, 1, 2, 3, 4, 5, 6, 7}, {}};
  std::atomic<bool> saw_steal{false};
  const auto stats = run_work_stealing(
      costs, bins, opts(2), [&](const PoolTaskInfo& info) {
        if (info.stolen) saw_steal.store(true);
        if (info.task == 0) {
          const auto t0 = std::chrono::steady_clock::now();
          while (!saw_steal.load() &&
                 std::chrono::steady_clock::now() - t0 <
                     std::chrono::seconds(5))
            std::this_thread::yield();
        }
      });
  EXPECT_TRUE(saw_steal.load());
  EXPECT_GE(stats.steals, 1u);
  EXPECT_EQ(stats.steals, stats.stolen[0] + stats.stolen[1]);
  EXPECT_EQ(stats.executed[0] + stats.executed[1], n);
}

TEST(Pool, LowestIndexErrorWinsRegardlessOfTiming) {
  const std::size_t n = 10;
  std::vector<double> costs(n, 1.0);
  for (int rep = 0; rep < 5; ++rep) {
    const auto bins = arch::shard_by_cost(costs, 3);
    std::atomic<int> ran{0};
    try {
      run_work_stealing(costs, bins, opts(3),
                        [&](const PoolTaskInfo& info) {
                          ran.fetch_add(1);
                          if (info.task == 7) throw Error("task seven");
                          if (info.task == 3) throw Error("task three");
                        });
      FAIL() << "expected an exception";
    } catch (const Error& e) {
      EXPECT_STREQ(e.what(), "task three");
    }
    // A failing task cancels nothing: every task still ran.
    EXPECT_EQ(ran.load(), static_cast<int>(n));
  }
}

TEST(Pool, HelpersBorrowedAgainstTotalWidth) {
  const std::vector<double> costs{4.0};
  WorkStealingOptions o = opts(1);
  o.total_width = 4;
  o.max_helpers = {8};  // clamped to width - 1
  std::size_t seen_helpers = 0;
  const auto stats =
      run_work_stealing(costs, {{0}}, o, [&](const PoolTaskInfo& info) {
        seen_helpers = info.helpers;
      });
  EXPECT_EQ(seen_helpers, 3u);
  EXPECT_EQ(stats.nested_runs, 1u);
  EXPECT_EQ(stats.helpers_granted, 3u);
}

TEST(Pool, NoHelpersWithoutACap) {
  const std::vector<double> costs{1.0, 2.0};
  WorkStealingOptions o = opts(2);
  o.total_width = 8;
  const auto stats = run_work_stealing(
      costs, arch::shard_by_cost(costs, 2), o,
      [&](const PoolTaskInfo& info) { EXPECT_EQ(info.helpers, 0u); });
  EXPECT_EQ(stats.nested_runs, 0u);
  EXPECT_EQ(stats.helpers_granted, 0u);
}

TEST(Pool, WorkerStartHookRunsOnEveryWorker) {
  const std::vector<double> costs{1.0, 1.0, 1.0};
  WorkStealingOptions o = opts(3);
  std::vector<std::atomic<int>> started(3);
  for (auto& s : started) s.store(0);
  o.worker_start = [&](std::size_t w) { started[w].fetch_add(1); };
  run_work_stealing(costs, arch::shard_by_cost(costs, 3), o,
                    [](const PoolTaskInfo&) {});
  for (std::size_t w = 0; w < 3; ++w) EXPECT_EQ(started[w].load(), 1) << w;
}

TEST(Pool, RejectsMalformedInput) {
  const std::vector<double> costs{1.0, 2.0};
  const auto run = [&](const std::vector<std::vector<std::size_t>>& bins,
                       WorkStealingOptions o) {
    run_work_stealing(costs, bins, o, [](const PoolTaskInfo&) {});
  };
  EXPECT_THROW(run({{0, 1}}, opts(0)), Error);         // no workers
  EXPECT_THROW(run({{0}, {1}}, opts(1)), Error);       // more bins than workers
  EXPECT_THROW(run({{0}}, opts(1)), Error);            // task 1 uncovered
  EXPECT_THROW(run({{0, 1, 0}}, opts(1)), Error);      // task 0 seeded twice
  EXPECT_THROW(run({{0, 2}}, opts(1)), Error);         // unknown task id
  EXPECT_THROW(
      run_work_stealing({-1.0, 1.0}, {{0, 1}}, opts(1),
                        [](const PoolTaskInfo&) {}),
      Error);                                          // negative cost
}

TEST(Pool, StatsAccountBusyAndIdlePerWorker) {
  const std::vector<double> costs{1.0, 1.0, 1.0, 1.0};
  const auto stats = run_work_stealing(
      costs, arch::shard_by_cost(costs, 2), opts(2),
      [](const PoolTaskInfo&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      });
  ASSERT_EQ(stats.busy_s.size(), 2u);
  ASSERT_EQ(stats.idle_s.size(), 2u);
  EXPECT_GT(stats.wall_s, 0.0);
  for (std::size_t w = 0; w < 2; ++w) {
    EXPECT_GT(stats.busy_s[w], 0.0) << w;
    EXPECT_GE(stats.idle_s[w], 0.0) << w;
  }
}

}  // namespace
}  // namespace hjsvd

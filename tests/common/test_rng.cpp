// Tests for the deterministic xoshiro256++ generator.
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>
#include <set>
#include <vector>

namespace hjsvd {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(Rng, Uniform01MeanAndVariance) {
  Rng rng(123);
  const int kN = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.uniform01();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / kN;
  const double var = sumsq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(99);
  const int kN = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.gaussian();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / kN;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(sumsq / kN - mean * mean, 1.0, 0.05);
}

TEST(Rng, GaussianIsFinite) {
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) ASSERT_TRUE(std::isfinite(rng.gaussian()));
}

TEST(Rng, BoundedStaysInBound) {
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) ASSERT_LT(rng.bounded(17), 17u);
}

TEST(Rng, BoundedCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BoundedOneAlwaysZero) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, BoundedZeroThrows) {
  Rng rng(1);
  EXPECT_THROW((void)rng.bounded(0), Error);
}

}  // namespace
}  // namespace hjsvd

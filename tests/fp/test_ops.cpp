// Tests of the arithmetic policy layer (NativeOps / SoftOps / CountingOps).
#include "fp/ops.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace hjsvd::fp {
namespace {

TEST(NativeOps, MatchesOperators) {
  NativeOps ops;
  EXPECT_EQ(ops.add(1.5, 2.25), 3.75);
  EXPECT_EQ(ops.sub(1.5, 2.25), -0.75);
  EXPECT_EQ(ops.mul(1.5, 2.0), 3.0);
  EXPECT_EQ(ops.div(3.0, 2.0), 1.5);
  EXPECT_EQ(ops.sqrt(9.0), 3.0);
}

TEST(SoftOps, AgreesWithNativeOnRandomInputs) {
  NativeOps native;
  SoftOps soft;
  Rng rng(55);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.gaussian() * 10.0;
    const double y = rng.gaussian() * 10.0;
    EXPECT_EQ(soft.add(x, y), native.add(x, y));
    EXPECT_EQ(soft.sub(x, y), native.sub(x, y));
    EXPECT_EQ(soft.mul(x, y), native.mul(x, y));
    if (y != 0.0) {
      EXPECT_EQ(soft.div(x, y), native.div(x, y));
    }
    EXPECT_EQ(soft.sqrt(std::abs(x)), native.sqrt(std::abs(x)));
  }
}

TEST(CountingOps, TalliesEveryOperation) {
  OpCounts counts;
  CountingOps ops(counts);
  (void)ops.add(1.0, 2.0);
  (void)ops.add(1.0, 2.0);
  (void)ops.sub(1.0, 2.0);
  (void)ops.mul(1.0, 2.0);
  (void)ops.mul(1.0, 2.0);
  (void)ops.mul(1.0, 2.0);
  (void)ops.div(1.0, 2.0);
  (void)ops.sqrt(4.0);
  EXPECT_EQ(counts.add, 2u);
  EXPECT_EQ(counts.sub, 1u);
  EXPECT_EQ(counts.mul, 3u);
  EXPECT_EQ(counts.div, 1u);
  EXPECT_EQ(counts.sqrt, 1u);
  EXPECT_EQ(counts.total(), 8u);
}

TEST(CountingOps, CopiesShareTheCounter) {
  OpCounts counts;
  CountingOps a(counts);
  CountingOps b = a;
  (void)a.add(1.0, 1.0);
  (void)b.add(1.0, 1.0);
  EXPECT_EQ(counts.add, 2u);
}

TEST(OpCounts, Accumulates) {
  OpCounts a, b;
  a.mul = 3;
  b.mul = 4;
  b.sqrt = 1;
  a += b;
  EXPECT_EQ(a.mul, 7u);
  EXPECT_EQ(a.sqrt, 1u);
}

TEST(CoreLatencies, PaperDefaults) {
  CoreLatencies lat;
  EXPECT_EQ(lat.of(OpKind::kMul), 9u);
  EXPECT_EQ(lat.of(OpKind::kAdd), 14u);
  EXPECT_EQ(lat.of(OpKind::kSub), 14u);
  EXPECT_EQ(lat.of(OpKind::kDiv), 57u);
  EXPECT_EQ(lat.of(OpKind::kSqrt), 57u);
}

TEST(OpsTraits, ParallelSafety) {
  EXPECT_TRUE(OpsTraits<NativeOps>::parallel_safe);
  EXPECT_TRUE(OpsTraits<SoftOps>::parallel_safe);
  EXPECT_FALSE(OpsTraits<CountingOps>::parallel_safe);
}

}  // namespace
}  // namespace hjsvd::fp

// Differential tests: the soft-float must be bit-identical to the host FPU
// (x86-64 SSE2 is IEEE-754 binary64 with round-to-nearest-even) on finite
// inputs, including subnormals — this is the justification for running the
// large simulations with native doubles (DESIGN.md §6).
#include "fp/softfloat.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "common/rng.hpp"

namespace hjsvd::fp {
namespace {

enum class Dist { kNormalRange, kWideExponent, kSubnormalHeavy, kNearEqual };

const char* dist_name(Dist d) {
  switch (d) {
    case Dist::kNormalRange: return "NormalRange";
    case Dist::kWideExponent: return "WideExponent";
    case Dist::kSubnormalHeavy: return "SubnormalHeavy";
    case Dist::kNearEqual: return "NearEqual";
  }
  return "?";
}

/// Draws a finite double from the distribution.
double draw(Rng& rng, Dist d) {
  switch (d) {
    case Dist::kNormalRange:
      return rng.gaussian() * 100.0;
    case Dist::kWideExponent: {
      // Random sign/exponent/mantissa over nearly the full finite range.
      const std::uint64_t sign = rng.next_u64() & 0x8000000000000000ULL;
      const std::uint64_t exp = rng.bounded(2046) + 1;  // normals
      const std::uint64_t frac = rng.next_u64() & 0x000FFFFFFFFFFFFFULL;
      return from_bits(sign | (exp << 52) | frac);
    }
    case Dist::kSubnormalHeavy: {
      const std::uint64_t sign = rng.next_u64() & 0x8000000000000000ULL;
      if (rng.bounded(2) == 0) {
        // Pure subnormal.
        return from_bits(sign | (rng.next_u64() & 0x000FFFFFFFFFFFFFULL));
      }
      // Tiny normal whose products/sums underflow.
      const std::uint64_t exp = rng.bounded(80) + 1;
      const std::uint64_t frac = rng.next_u64() & 0x000FFFFFFFFFFFFFULL;
      return from_bits(sign | (exp << 52) | frac);
    }
    case Dist::kNearEqual:
      return 0.0;  // handled by the pair-drawing helper
  }
  return 0.0;
}

/// Draws an operand pair; kNearEqual produces values within a few ulps of
/// each other (the catastrophic-cancellation regime of subtraction).
std::pair<double, double> draw_pair(Rng& rng, Dist d) {
  if (d != Dist::kNearEqual) return {draw(rng, d), draw(rng, d)};
  const double x = rng.gaussian() * 10.0;
  std::uint64_t b = to_bits(x);
  b += rng.bounded(9);  // within 8 ulps
  return {x, from_bits(b)};
}

class Differential : public ::testing::TestWithParam<Dist> {};

constexpr int kTrials = 200000;

TEST_P(Differential, Add) {
  Rng rng(101);
  for (int i = 0; i < kTrials; ++i) {
    const auto [x, y] = draw_pair(rng, GetParam());
    const double got = sf_add(x, y);
    const double ref = x + y;
    ASSERT_EQ(to_bits(got), to_bits(ref))
        << std::hexfloat << "x=" << x << " y=" << y;
  }
}

TEST_P(Differential, Sub) {
  Rng rng(102);
  for (int i = 0; i < kTrials; ++i) {
    const auto [x, y] = draw_pair(rng, GetParam());
    ASSERT_EQ(to_bits(sf_sub(x, y)), to_bits(x - y))
        << std::hexfloat << "x=" << x << " y=" << y;
  }
}

TEST_P(Differential, Mul) {
  Rng rng(103);
  for (int i = 0; i < kTrials; ++i) {
    const auto [x, y] = draw_pair(rng, GetParam());
    ASSERT_EQ(to_bits(sf_mul(x, y)), to_bits(x * y))
        << std::hexfloat << "x=" << x << " y=" << y;
  }
}

TEST_P(Differential, Div) {
  Rng rng(104);
  for (int i = 0; i < kTrials; ++i) {
    auto [x, y] = draw_pair(rng, GetParam());
    if (y == 0.0) continue;
    ASSERT_EQ(to_bits(sf_div(x, y)), to_bits(x / y))
        << std::hexfloat << "x=" << x << " y=" << y;
  }
}

TEST_P(Differential, Sqrt) {
  Rng rng(105);
  for (int i = 0; i < kTrials; ++i) {
    const double x = std::abs(draw_pair(rng, GetParam()).first);
    ASSERT_EQ(to_bits(sf_sqrt(x)), to_bits(std::sqrt(x)))
        << std::hexfloat << "x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, Differential,
                         ::testing::Values(Dist::kNormalRange,
                                           Dist::kWideExponent,
                                           Dist::kSubnormalHeavy,
                                           Dist::kNearEqual),
                         [](const auto& param_info) {
                           return dist_name(param_info.param);
                         });

/// The exact dataflow the rotation unit evaluates, fed with realistic
/// norm/covariance magnitudes: chained soft ops must equal chained native.
TEST(DifferentialChained, RotationFormulaPath) {
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const double n1 = std::abs(rng.gaussian()) * 50.0 + 1e-12;
    const double n2 = std::abs(rng.gaussian()) * 50.0 + 1e-12;
    const double c = rng.gaussian() * 5.0;
    if (c == 0.0) continue;
    // Soft path.
    const double d_s = sf_sub(n1, n2);
    const double d2_s = sf_mul(d_s, d_s);
    const double c2_s = sf_mul(c, c);
    const double s_s = sf_add(d2_s, 4.0 * c2_s);
    const double r_s = sf_sqrt(s_s);
    const double t_s = sf_div(2.0 * std::abs(c), sf_add(std::abs(d_s), r_s));
    // Native path.
    const double d_n = n1 - n2;
    const double r_n = std::sqrt(d_n * d_n + 4.0 * (c * c));
    const double t_n = (2.0 * std::abs(c)) / (std::abs(d_n) + r_n);
    ASSERT_EQ(to_bits(t_s), to_bits(t_n)) << "n1=" << n1 << " n2=" << n2;
    ASSERT_EQ(to_bits(r_s), to_bits(r_n));
  }
}

}  // namespace
}  // namespace hjsvd::fp

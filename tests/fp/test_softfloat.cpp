// Directed tests of the bit-accurate soft-float: IEEE-754 special values,
// signed zeros, subnormals, rounding boundaries, and exactness properties.
#include "fp/softfloat.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace hjsvd::fp {
namespace {

constexpr std::uint64_t kPosZero = 0x0000000000000000ULL;
constexpr std::uint64_t kNegZero = 0x8000000000000000ULL;
constexpr std::uint64_t kPosInf = 0x7FF0000000000000ULL;
constexpr std::uint64_t kNegInf = 0xFFF0000000000000ULL;
constexpr std::uint64_t kQNan = 0x7FF8000000000000ULL;
constexpr std::uint64_t kMinSub = 0x0000000000000001ULL;  // smallest subnormal
constexpr std::uint64_t kMaxSub = 0x000FFFFFFFFFFFFFULL;  // largest subnormal
constexpr std::uint64_t kMinNorm = 0x0010000000000000ULL;
constexpr std::uint64_t kMaxFinite = 0x7FEFFFFFFFFFFFFFULL;

double D(std::uint64_t b) { return from_bits(b); }
std::uint64_t B(double x) { return to_bits(x); }

// --- Classification ---------------------------------------------------------

TEST(Classify, RecognizesSpecials) {
  EXPECT_TRUE(f64_is_nan(kQNan));
  EXPECT_FALSE(f64_is_nan(kPosInf));
  EXPECT_TRUE(f64_is_inf(kPosInf));
  EXPECT_TRUE(f64_is_inf(kNegInf));
  EXPECT_FALSE(f64_is_inf(kQNan));
  EXPECT_TRUE(f64_is_zero(kPosZero));
  EXPECT_TRUE(f64_is_zero(kNegZero));
  EXPECT_TRUE(f64_is_subnormal(kMinSub));
  EXPECT_TRUE(f64_is_subnormal(kMaxSub));
  EXPECT_FALSE(f64_is_subnormal(kMinNorm));
  EXPECT_FALSE(f64_is_subnormal(kPosZero));
}

// --- Addition special cases -------------------------------------------------

TEST(Add, NanPropagates) {
  EXPECT_TRUE(f64_is_nan(f64_add(kQNan, B(1.0))));
  EXPECT_TRUE(f64_is_nan(f64_add(B(1.0), kQNan)));
}

TEST(Add, InfMinusInfIsNan) {
  EXPECT_TRUE(f64_is_nan(f64_add(kPosInf, kNegInf)));
  EXPECT_EQ(f64_add(kPosInf, kPosInf), kPosInf);
  EXPECT_EQ(f64_add(kNegInf, kNegInf), kNegInf);
}

TEST(Add, SignedZeroRules) {
  EXPECT_EQ(f64_add(kPosZero, kPosZero), kPosZero);
  EXPECT_EQ(f64_add(kNegZero, kNegZero), kNegZero);
  EXPECT_EQ(f64_add(kPosZero, kNegZero), kPosZero);  // RNE: +0
  EXPECT_EQ(f64_add(kNegZero, kPosZero), kPosZero);
}

TEST(Add, ExactCancellationGivesPositiveZero) {
  EXPECT_EQ(f64_add(B(1.5), B(-1.5)), kPosZero);
  EXPECT_EQ(f64_sub(B(1.5), B(1.5)), kPosZero);
}

TEST(Add, ZeroPlusXIsX) {
  EXPECT_EQ(f64_add(kPosZero, B(3.25)), B(3.25));
  EXPECT_EQ(f64_add(B(-7.5), kNegZero), B(-7.5));
}

TEST(Add, OverflowToInfinity) {
  EXPECT_EQ(f64_add(kMaxFinite, kMaxFinite), kPosInf);
  EXPECT_EQ(f64_add(kMaxFinite | 0x8000000000000000ULL,
                    kMaxFinite | 0x8000000000000000ULL),
            kNegInf);
}

TEST(Add, SubnormalPlusSubnormal) {
  EXPECT_EQ(f64_add(kMinSub, kMinSub), 0x0000000000000002ULL);
  // Largest subnormal + smallest subnormal = smallest normal (exact).
  EXPECT_EQ(f64_add(kMaxSub, kMinSub), kMinNorm);
}

TEST(Add, GradualUnderflowOnSubtraction) {
  // min_norm - min_sub is the largest subnormal.
  EXPECT_EQ(f64_sub(kMinNorm, kMinSub), kMaxSub);
}

TEST(Add, RoundsTieToEven) {
  // 1 + 2^-53 is exactly halfway between 1 and nextafter(1): ties to 1.
  EXPECT_EQ(f64_add(B(1.0), B(0x1.0p-53)), B(1.0));
  // nextafter(1) + 2^-53 is halfway and ties UP to the even 1+2^-51... i.e.
  // the neighbor with even last bit.
  const double next1 = std::nextafter(1.0, 2.0);
  EXPECT_EQ(f64_add(B(next1), B(0x1.0p-53)),
            B(std::nextafter(next1, 2.0)));
}

// --- Multiplication ----------------------------------------------------------

TEST(Mul, SpecialRules) {
  EXPECT_TRUE(f64_is_nan(f64_mul(kPosInf, kPosZero)));
  EXPECT_TRUE(f64_is_nan(f64_mul(kNegZero, kNegInf)));
  EXPECT_EQ(f64_mul(kPosInf, B(-2.0)), kNegInf);
  EXPECT_EQ(f64_mul(B(-3.0), B(-2.0)), B(6.0));
  EXPECT_EQ(f64_mul(B(-3.0), kPosZero), kNegZero);
}

TEST(Mul, ExactPowersOfTwo) {
  EXPECT_EQ(f64_mul(B(0.5), B(0.5)), B(0.25));
  EXPECT_EQ(f64_mul(B(3.0), B(0.5)), B(1.5));
}

TEST(Mul, UnderflowToSubnormal) {
  // min_norm * 0.5 = subnormal 2^-1023 exactly.
  EXPECT_EQ(f64_mul(kMinNorm, B(0.5)), 0x0008000000000000ULL);
}

TEST(Mul, UnderflowToZero) {
  EXPECT_EQ(f64_mul(kMinSub, B(0.25)), kPosZero);  // rounds to zero
}

TEST(Mul, OverflowToInfinity) {
  EXPECT_EQ(f64_mul(kMaxFinite, B(2.0)), kPosInf);
}

// --- Division ------------------------------------------------------------------

TEST(Div, SpecialRules) {
  EXPECT_TRUE(f64_is_nan(f64_div(kPosInf, kNegInf)));
  EXPECT_TRUE(f64_is_nan(f64_div(kPosZero, kNegZero)));
  EXPECT_EQ(f64_div(B(1.0), kPosZero), kPosInf);
  EXPECT_EQ(f64_div(B(-1.0), kPosZero), kNegInf);
  EXPECT_EQ(f64_div(B(1.0), kNegInf), kNegZero);
  EXPECT_EQ(f64_div(kPosInf, B(-2.0)), kNegInf);
}

TEST(Div, ExactQuotients) {
  EXPECT_EQ(f64_div(B(6.0), B(3.0)), B(2.0));
  EXPECT_EQ(f64_div(B(1.0), B(4.0)), B(0.25));
}

TEST(Div, OneThirdRoundsCorrectly) {
  EXPECT_EQ(f64_div(B(1.0), B(3.0)), B(1.0 / 3.0));
}

// --- Square root ----------------------------------------------------------------

TEST(Sqrt, SpecialRules) {
  EXPECT_EQ(f64_sqrt(kPosZero), kPosZero);
  EXPECT_EQ(f64_sqrt(kNegZero), kNegZero);  // IEEE: sqrt(-0) = -0
  EXPECT_EQ(f64_sqrt(kPosInf), kPosInf);
  EXPECT_TRUE(f64_is_nan(f64_sqrt(B(-1.0))));
  EXPECT_TRUE(f64_is_nan(f64_sqrt(kNegInf)));
  EXPECT_TRUE(f64_is_nan(f64_sqrt(kQNan)));
}

TEST(Sqrt, ExactSquares) {
  EXPECT_EQ(f64_sqrt(B(4.0)), B(2.0));
  EXPECT_EQ(f64_sqrt(B(9.0)), B(3.0));
  EXPECT_EQ(f64_sqrt(B(0.25)), B(0.5));
  EXPECT_EQ(f64_sqrt(B(1.0)), B(1.0));
}

TEST(Sqrt, MatchesHostOnIrrationals) {
  for (double x : {2.0, 3.0, 5.0, 7.0, 10.0, 0.1, 123.456, 1e100, 1e-100}) {
    EXPECT_EQ(f64_sqrt(B(x)), B(std::sqrt(x))) << "x=" << x;
  }
}

TEST(Sqrt, SubnormalInput) {
  EXPECT_EQ(f64_sqrt(kMinSub), B(std::sqrt(D(kMinSub))));
  EXPECT_EQ(f64_sqrt(kMaxSub), B(std::sqrt(D(kMaxSub))));
}

// --- Algebraic identities ----------------------------------------------------

TEST(Identities, SubIsAddOfNegation) {
  EXPECT_EQ(f64_sub(B(5.0), B(3.0)), f64_add(B(5.0), B(-3.0)));
}

TEST(Identities, AdditionCommutes) {
  const double xs[] = {1.0, -2.5, 1e300, 1e-300, 0.1};
  for (double x : xs)
    for (double y : xs)
      EXPECT_EQ(f64_add(B(x), B(y)), f64_add(B(y), B(x)));
}

}  // namespace
}  // namespace hjsvd::fp

// Special-value fuzzing: feed the soft-float completely random 64-bit
// patterns — including NaNs, infinities and subnormals — and check the
// IEEE-754 classification contract against the host FPU on every op.
// (Exact NaN payloads are implementation-defined on the host, so NaN
// results are compared by class, everything else bit-exactly.)
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "fp/softfloat.hpp"

namespace hjsvd::fp {
namespace {

/// Compares a soft result against the host result: bit-exact unless both
/// are NaN (payload may differ).
void expect_equivalent(std::uint64_t soft, double host, std::uint64_t a,
                       std::uint64_t b, const char* op) {
  const std::uint64_t ref = to_bits(host);
  if (f64_is_nan(soft) || std::isnan(host)) {
    ASSERT_TRUE(f64_is_nan(soft) && std::isnan(host))
        << op << " class mismatch: a=" << std::hex << a << " b=" << b
        << " soft=" << soft << " host=" << ref;
    return;
  }
  ASSERT_EQ(soft, ref) << op << ": a=" << std::hex << a << " b=" << b;
}

class SpecialsFuzz : public ::testing::TestWithParam<std::uint64_t> {};

constexpr int kTrials = 150000;

TEST_P(SpecialsFuzz, AddSubMulDivOnRawBitPatterns) {
  Rng rng(GetParam());
  for (int t = 0; t < kTrials; ++t) {
    const std::uint64_t a = rng.next_u64();
    const std::uint64_t b = rng.next_u64();
    const double x = from_bits(a);
    const double y = from_bits(b);
    expect_equivalent(f64_add(a, b), x + y, a, b, "add");
    expect_equivalent(f64_sub(a, b), x - y, a, b, "sub");
    expect_equivalent(f64_mul(a, b), x * y, a, b, "mul");
    expect_equivalent(f64_div(a, b), x / y, a, b, "div");
  }
}

TEST_P(SpecialsFuzz, SqrtOnRawBitPatterns) {
  Rng rng(GetParam() ^ 0xD00D);
  for (int t = 0; t < kTrials; ++t) {
    const std::uint64_t a = rng.next_u64();
    expect_equivalent(f64_sqrt(a), std::sqrt(from_bits(a)), a, 0, "sqrt");
  }
}

TEST_P(SpecialsFuzz, BiasedTowardSpecialExponents) {
  // Force exponents to the extremes (0, 1, 2046, 2047) where the rounding
  // and special-case paths live.
  Rng rng(GetParam() ^ 0xBEEF);
  const std::uint64_t exps[] = {0ull, 1ull, 2ull, 2045ull, 2046ull, 2047ull};
  for (int t = 0; t < kTrials; ++t) {
    auto draw = [&] {
      const std::uint64_t sign = rng.next_u64() & 0x8000000000000000ULL;
      const std::uint64_t e = exps[rng.bounded(6)];
      const std::uint64_t frac = rng.next_u64() & 0x000FFFFFFFFFFFFFULL;
      return sign | (e << 52) | frac;
    };
    const std::uint64_t a = draw();
    const std::uint64_t b = draw();
    const double x = from_bits(a);
    const double y = from_bits(b);
    expect_equivalent(f64_add(a, b), x + y, a, b, "add");
    expect_equivalent(f64_mul(a, b), x * y, a, b, "mul");
    expect_equivalent(f64_div(a, b), x / y, a, b, "div");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpecialsFuzz,
                         ::testing::Values(0x11u, 0x22u, 0x33u));

}  // namespace
}  // namespace hjsvd::fp

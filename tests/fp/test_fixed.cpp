// Tests for the fixed-point arithmetic substrate and the fixed-point
// Hestenes model of the prior FPGA design [11].
#include "fp/fixed.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/golub_kahan.hpp"
#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "svd/fixed_hestenes.hpp"

namespace hjsvd {
namespace {

using fp::FixedFormat;
using fp::FixedOps;
using fp::FixedStats;
using fp::fixed_quantize;

TEST(FixedFormat, RangeAndResolution) {
  FixedFormat q16{15, 16};  // Q15.16, 32 bits
  EXPECT_EQ(q16.total_bits(), 32);
  EXPECT_DOUBLE_EQ(q16.resolution(), std::ldexp(1.0, -16));
  EXPECT_NEAR(q16.max_value(), 32768.0, 1.0);
}

TEST(FixedQuantize, ExactValuesPassThrough) {
  FixedFormat fmt{15, 16};
  EXPECT_EQ(fixed_quantize(1.0, fmt), 1.0);
  EXPECT_EQ(fixed_quantize(-2.5, fmt), -2.5);
  EXPECT_EQ(fixed_quantize(0.0, fmt), 0.0);
  EXPECT_EQ(fixed_quantize(std::ldexp(1.0, -16), fmt),
            std::ldexp(1.0, -16));
}

TEST(FixedQuantize, RoundsToGrid) {
  FixedFormat fmt{15, 16};
  const double step = fmt.resolution();
  EXPECT_EQ(fixed_quantize(step * 10.4, fmt), step * 10.0);
  EXPECT_EQ(fixed_quantize(step * 10.6, fmt), step * 11.0);
}

TEST(FixedQuantize, SaturatesAndCounts) {
  FixedFormat fmt{7, 8};  // Q7.8: range ~(-128, 128)
  FixedStats stats;
  EXPECT_NEAR(fixed_quantize(1e9, fmt, &stats), fmt.max_value(), 1e-6);
  EXPECT_LT(fixed_quantize(-1e9, fmt, &stats), -127.9);
  EXPECT_EQ(stats.saturations, 2u);
}

TEST(FixedQuantize, UnderflowCounts) {
  FixedFormat fmt{15, 8};
  FixedStats stats;
  EXPECT_EQ(fixed_quantize(1e-6, fmt, &stats), 0.0);
  EXPECT_EQ(stats.underflows, 1u);
}

TEST(FixedQuantize, InvalidFormatThrows) {
  EXPECT_THROW(fixed_quantize(1.0, FixedFormat{60, 60}), Error);
}

TEST(FixedOps, ArithmeticStaysOnGrid) {
  FixedFormat fmt{15, 8};
  FixedStats stats;
  FixedOps ops(fmt, stats);
  const double a = ops.add(1.0, 0.5);
  EXPECT_EQ(a, 1.5);
  const double p = ops.mul(0.1015625, 0.5);  // representable inputs
  EXPECT_EQ(p * 256.0, std::nearbyint(p * 256.0));  // result on grid
  EXPECT_GE(stats.operations, 2u);
}

TEST(FixedOps, SqrtOfNegativeIsZero) {
  FixedFormat fmt{15, 16};
  FixedStats stats;
  FixedOps ops(fmt, stats);
  EXPECT_EQ(ops.sqrt(-4.0), 0.0);
}

TEST(FixedHestenes, AccurateForWellScaledData) {
  // Data in [-1, 1] fits Q15.16 comfortably: the fixed-point SVD matches
  // the double oracle to roughly the quantization level.
  Rng rng(13);
  const Matrix a = random_uniform(16, 12, rng);
  const SvdResult oracle = golub_kahan_svd(a);
  FixedStats stats;
  HestenesConfig cfg;
  cfg.max_sweeps = 12;
  const SvdResult fixed =
      fixed_point_hestenes_svd(a, FixedFormat{15, 16}, stats, cfg);
  EXPECT_LT(singular_value_error(fixed.singular_values,
                                 oracle.singular_values),
            1e-3);
  EXPECT_EQ(stats.saturations, 0u);
}

TEST(FixedHestenes, SaturatesOnLargeDynamicRange) {
  // Squared norms of scaled columns overflow Q15.16 -> saturation events
  // and garbage values: the dynamic-range failure of [11] that motivates
  // the paper's move to double precision.
  Rng rng(14);
  Matrix a = random_uniform(16, 12, rng);
  for (double& x : a.data()) x *= 1000.0;  // norms^2 ~ 16e6 >> 32767
  FixedStats stats;
  HestenesConfig cfg;
  cfg.max_sweeps = 6;
  const SvdResult fixed =
      fixed_point_hestenes_svd(a, FixedFormat{15, 16}, stats, cfg);
  EXPECT_GT(stats.saturations, 0u);
  const SvdResult oracle = golub_kahan_svd(a);
  EXPECT_GT(singular_value_error(fixed.singular_values,
                                 oracle.singular_values),
            1e-2);
}

TEST(FixedHestenes, WiderFormatRecoversAccuracy) {
  Rng rng(15);
  const Matrix a = random_uniform(12, 10, rng);
  const SvdResult oracle = golub_kahan_svd(a);
  HestenesConfig cfg;
  cfg.max_sweeps = 12;
  FixedStats narrow_stats, wide_stats;
  const SvdResult narrow =
      fixed_point_hestenes_svd(a, FixedFormat{15, 8}, narrow_stats, cfg);
  const SvdResult wide =
      fixed_point_hestenes_svd(a, FixedFormat{15, 32}, wide_stats, cfg);
  EXPECT_LT(singular_value_error(wide.singular_values,
                                 oracle.singular_values),
            singular_value_error(narrow.singular_values,
                                 oracle.singular_values));
}

}  // namespace
}  // namespace hjsvd

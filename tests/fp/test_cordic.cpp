// Tests for the fixed-point CORDIC engine.
#include "fp/cordic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "svd/rotation.hpp"

namespace hjsvd::fp {
namespace {

TEST(CordicGain, ApproachesKnownLimit) {
  // K -> ~1.6467602581210657 as iterations grow.
  EXPECT_NEAR(cordic_gain(40), 1.6467602581210657, 1e-12);
  EXPECT_GT(cordic_gain(4), 1.64);
}

TEST(CordicVectoring, MatchesAtan2AcrossQuadrants) {
  Rng rng(21);
  CordicConfig cfg{48};
  for (int k = 0; k < 5000; ++k) {
    const double x = rng.gaussian() * 3.0;
    const double y = rng.gaussian() * 3.0;
    if (x == 0.0 && y == 0.0) continue;
    const auto v = cordic_vectoring(x, y, cfg);
    ASSERT_NEAR(v.angle, std::atan2(y, x), 1e-12)
        << "x=" << x << " y=" << y;
    ASSERT_NEAR(v.magnitude, std::hypot(x, y), 1e-10 * std::hypot(x, y));
  }
}

TEST(CordicVectoring, ZeroVector) {
  const auto v = cordic_vectoring(0.0, 0.0);
  EXPECT_EQ(v.magnitude, 0.0);
  EXPECT_EQ(v.angle, 0.0);
}

TEST(CordicVectoring, PureAxisCases) {
  CordicConfig cfg{48};
  EXPECT_NEAR(cordic_vectoring(1.0, 0.0, cfg).angle, 0.0, 1e-13);
  EXPECT_NEAR(cordic_vectoring(0.0, 1.0, cfg).angle, M_PI / 2, 1e-12);
  EXPECT_NEAR(cordic_vectoring(0.0, -1.0, cfg).angle, -M_PI / 2, 1e-12);
  EXPECT_NEAR(std::abs(cordic_vectoring(-1.0, 1e-18, cfg).angle), M_PI,
              1e-12);
}

TEST(CordicVectoring, AccuracyScalesWithIterations) {
  // Error ~ atan(2^-N): each batch of iterations buys bits.
  const double x = 0.83, y = -0.41;
  const double exact = std::atan2(y, x);
  double prev = 1.0;
  for (int iters : {8, 16, 24, 32}) {
    const double err =
        std::abs(cordic_vectoring(x, y, CordicConfig{iters}).angle - exact);
    EXPECT_LT(err, std::ldexp(4.0, -iters)) << iters;
    EXPECT_LT(err, prev + 1e-15);
    prev = err;
  }
}

TEST(CordicRotation, MatchesCosSin) {
  Rng rng(22);
  CordicConfig cfg{48};
  for (int k = 0; k < 5000; ++k) {
    const double angle = rng.uniform(-1.5, 1.5);
    const auto cs = cordic_cos_sin(angle, cfg);
    ASSERT_NEAR(cs.x, std::cos(angle), 1e-12);
    ASSERT_NEAR(cs.y, std::sin(angle), 1e-12);
  }
}

TEST(CordicRotation, RotatesArbitraryVectors) {
  CordicConfig cfg{48};
  const auto v = cordic_rotation(2.0, 1.0, 0.7, cfg);
  EXPECT_NEAR(v.x, 2.0 * std::cos(0.7) - 1.0 * std::sin(0.7), 1e-11);
  EXPECT_NEAR(v.y, 2.0 * std::sin(0.7) + 1.0 * std::cos(0.7), 1e-11);
}

TEST(CordicRotation, OutsideDomainThrows) {
  EXPECT_THROW(cordic_rotation(1.0, 0.0, 2.5), hjsvd::Error);
}

TEST(CordicConfigValidation, IterationBounds) {
  EXPECT_THROW(cordic_vectoring(1.0, 1.0, CordicConfig{0}), hjsvd::Error);
  EXPECT_THROW(cordic_vectoring(1.0, 1.0, CordicConfig{62}), hjsvd::Error);
}

TEST(CordicJacobi, MatchesClosedFormParameters) {
  Rng rng(23);
  CordicConfig cfg{52};
  for (int k = 0; k < 5000; ++k) {
    const double njj = std::abs(rng.gaussian()) * 10 + 1e-3;
    const double nii = std::abs(rng.gaussian()) * 10 + 1e-3;
    const double cov = rng.gaussian() * 3;
    if (cov == 0.0) continue;
    const auto exact =
        hjsvd::rotation_hardware(njj, nii, cov, NativeOps{});
    const auto cord = cordic_jacobi_params(njj, nii, cov, cfg);
    ASSERT_NEAR(cord.cos, exact.cos, 1e-10);
    ASSERT_NEAR(cord.sin, exact.sin, 1e-10);
  }
}

TEST(CordicJacobi, AnnihilatesCovariance) {
  Rng rng(24);
  CordicConfig cfg{52};
  for (int k = 0; k < 5000; ++k) {
    const double njj = std::abs(rng.gaussian()) * 5 + 1e-3;
    const double nii = std::abs(rng.gaussian()) * 5 + 1e-3;
    const double cov = rng.gaussian();
    if (cov == 0.0) continue;
    const auto p = cordic_jacobi_params(njj, nii, cov, cfg);
    const double resid = p.cos * p.sin * (nii - njj) +
                         (p.cos * p.cos - p.sin * p.sin) * cov;
    const double scale = std::max({nii, njj, std::abs(cov)});
    ASSERT_NEAR(resid / scale, 0.0, 1e-10);
  }
}

TEST(CordicJacobi, ZeroCovarianceIsIdentity) {
  const auto p = cordic_jacobi_params(2.0, 1.0, 0.0);
  EXPECT_EQ(p.cos, 1.0);
  EXPECT_EQ(p.sin, 0.0);
}

TEST(CordicJacobi, EqualNormsGiveFortyFive) {
  const auto p = cordic_jacobi_params(3.0, 3.0, 0.5, CordicConfig{52});
  EXPECT_NEAR(std::abs(p.theta), M_PI / 4, 1e-12);
}

}  // namespace
}  // namespace hjsvd::fp

// Binary32 soft-float validation for the mixed-precision float phase.
//
// Three layers of evidence, mirroring the binary64 suite:
//   1. A table-driven test locking round-to-nearest-even tie handling at the
//      subnormal boundary to explicit bit patterns.  Each row is also checked
//      against the host FPU (x86-64 SSE is IEEE-754 binary32 with RNE), so
//      the frozen table and the hardware must agree with each other and with
//      the soft implementation.
//   2. Exhaustive differential sweeps over bit-pattern windows around the
//      subnormal boundary, the rounding boundary at 1.0, and mid-subnormal
//      range, for all four binary operations and sqrt.
//   3. Randomized differential fuzz over subnormal-heavy and wide-exponent
//      distributions.
#include "fp/softfloat.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace hjsvd::fp {
namespace {

using u32 = std::uint32_t;

enum class Op { kAdd, kSub, kMul, kDiv };

const char* op_name(Op op) {
  switch (op) {
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
  }
  return "?";
}

u32 soft(Op op, u32 a, u32 b) {
  switch (op) {
    case Op::kAdd: return f32_add(a, b);
    case Op::kSub: return f32_sub(a, b);
    case Op::kMul: return f32_mul(a, b);
    case Op::kDiv: return f32_div(a, b);
  }
  return 0;
}

/// IEEE-754 leaves the sign/payload of *generated* NaNs implementation-
/// defined: x86 SSE makes 0/0 the negative "real indefinite" 0xFFC00000,
/// the soft model (and the Coregen cores) the canonical 0x7FC00000.
/// Differential comparisons therefore treat any-NaN == any-NaN; propagated
/// input NaNs are still compared exactly by the specials tests.
bool bits_equivalent(u32 got, u32 ref) {
  if (got == ref) return true;
  return f32_is_nan(got) && f32_is_nan(ref);
}

u32 hardware(Op op, u32 a, u32 b) {
  const float x = from_bits32(a);
  const float y = from_bits32(b);
  switch (op) {
    case Op::kAdd: return to_bits32(x + y);
    case Op::kSub: return to_bits32(x - y);
    case Op::kMul: return to_bits32(x * y);
    case Op::kDiv: return to_bits32(x / y);
  }
  return 0;
}

// --- 1. Table-driven ties at the subnormal boundary -------------------------

struct TieCase {
  Op op;
  u32 a, b;
  u32 expected;
  const char* what;
};

// 0x3F000000 = 0.5f, 0x40000000 = 2.0f.  Subnormal ulp is 2^-149; a product
// or quotient landing exactly halfway between two representable multiples of
// 2^-149 must round to the even significand.
constexpr TieCase kTieCases[] = {
    // Ties inside the subnormal range (results in units of 2^-149):
    {Op::kMul, 0x00000001, 0x3F000000, 0x00000000,
     "min_subnormal * 0.5 = 0.5 ulp: tie to even -> +0"},
    {Op::kMul, 0x00000003, 0x3F000000, 0x00000002,
     "3 ulp * 0.5 = 1.5 ulp: tie to even -> 2 ulp"},
    {Op::kMul, 0x00000005, 0x3F000000, 0x00000002,
     "5 ulp * 0.5 = 2.5 ulp: tie to even -> 2 ulp"},
    {Op::kMul, 0x00000007, 0x3F000000, 0x00000004,
     "7 ulp * 0.5 = 3.5 ulp: tie to even -> 4 ulp"},
    {Op::kDiv, 0x00000001, 0x40000000, 0x00000000,
     "min_subnormal / 2 = 0.5 ulp: tie to even -> +0"},
    {Op::kDiv, 0x00000003, 0x40000000, 0x00000002,
     "3 ulp / 2 = 1.5 ulp: tie to even -> 2 ulp"},
    // Ties exactly at the normal/subnormal boundary (inputs straddle
    // 0x00800000 = 2^-126, the minimum normal):
    {Op::kMul, 0x00800001, 0x3F000000, 0x00400000,
     "(2^23+1) ulp * 0.5: tie to even -> 2^22 ulp (largest 'half normal')"},
    {Op::kMul, 0x00800003, 0x3F000000, 0x00400002,
     "(2^23+3) ulp * 0.5: tie to even -> 2^22+2 ulp"},
    {Op::kDiv, 0x00800001, 0x40000000, 0x00400000,
     "(2^23+1) ulp / 2: tie to even -> 2^22 ulp"},
    // Exact results crossing the boundary (no rounding may occur):
    {Op::kAdd, 0x00000001, 0x00000001, 0x00000002, "subnormal add is exact"},
    {Op::kAdd, 0x00800000, 0x80000001, 0x007FFFFF,
     "min_normal - min_subnormal = max_subnormal exactly"},
    {Op::kAdd, 0x007FFFFF, 0x00000001, 0x00800000,
     "max_subnormal + min_subnormal = min_normal exactly"},
    // Normal-range ties for contrast (rounding boundary at 1.0):
    {Op::kAdd, 0x3F800000, 0x33800000, 0x3F800000,
     "1.0 + 2^-24: tie to even -> 1.0"},
    {Op::kAdd, 0x3F800001, 0x33800000, 0x3F800002,
     "(1+2^-23) + 2^-24: tie to even -> 1+2^-22"},
};

TEST(Softfloat32Ties, TableDrivenSubnormalBoundary) {
  for (const TieCase& c : kTieCases) {
    const u32 got = soft(c.op, c.a, c.b);
    EXPECT_EQ(got, c.expected) << op_name(c.op) << " " << std::hex << c.a
                               << ", " << c.b << ": " << c.what;
    // The frozen table must itself match the host FPU.
    EXPECT_EQ(hardware(c.op, c.a, c.b), c.expected)
        << "table row disagrees with hardware: " << c.what;
  }
}

// --- 2. Exhaustive windows ---------------------------------------------------

/// Bit patterns (both signs) around every rounding-sensitive boundary.
std::vector<u32> boundary_window() {
  std::vector<u32> w;
  auto push_range = [&w](u32 lo, u32 hi) {
    for (u32 b = lo; b <= hi; ++b) {
      w.push_back(b);
      w.push_back(b | 0x80000000U);
    }
  };
  push_range(0x00000000, 0x0000003F);  // zero + smallest subnormals
  push_range(0x003FFFF0, 0x0040000F);  // half the subnormal range
  push_range(0x007FFFE0, 0x0080001F);  // subnormal/normal boundary
  push_range(0x34000000, 0x34000008);  // 2^-23 (ulp of 1.0)
  push_range(0x33800000, 0x33800004);  // 2^-24 (half-ulp of 1.0)
  push_range(0x3F7FFFFC, 0x3F800007);  // around 1.0
  push_range(0x3EFFFFFE, 0x3F000002);  // around 0.5
  push_range(0x0B000000, 0x0B000002);  // tiny normal: products underflow
  return w;
}

TEST(Softfloat32Exhaustive, BinaryOpsOnBoundaryWindows) {
  const std::vector<u32> w = boundary_window();
  for (const Op op : {Op::kAdd, Op::kSub, Op::kMul, Op::kDiv}) {
    for (const u32 a : w) {
      for (const u32 b : w) {
        const u32 got = soft(op, a, b);
        const u32 ref = hardware(op, a, b);
        ASSERT_TRUE(bits_equivalent(got, ref))
            << op_name(op) << " " << std::hex << a << ", " << b << ": got "
            << got << " want " << ref;
      }
    }
  }
}

TEST(Softfloat32Exhaustive, SqrtOnSubnormalsAndBoundary) {
  // Every 7th subnormal plus the full boundary window: sqrt of a subnormal
  // exercises the unpack-normalize path with large leading-zero counts.
  for (u32 a = 0x00000001; a <= 0x007FFFFF; a += 7) {
    const u32 got = f32_sqrt(a);
    const u32 ref = to_bits32(std::sqrt(from_bits32(a)));
    ASSERT_EQ(got, ref) << "sqrt " << std::hex << a;
  }
  for (const u32 a : boundary_window()) {
    if (a & 0x80000000U) continue;  // negative sqrt covered in specials
    const u32 got = f32_sqrt(a);
    const u32 ref = to_bits32(std::sqrt(from_bits32(a)));
    ASSERT_EQ(got, ref) << "sqrt " << std::hex << a;
  }
}

// --- 3. Randomized differential fuzz ----------------------------------------

enum class Dist { kNormalRange, kWideExponent, kSubnormalHeavy };

u32 draw32(Rng& rng, Dist d) {
  const u32 sign = static_cast<u32>(rng.next_u64()) & 0x80000000U;
  switch (d) {
    case Dist::kNormalRange:
      return to_bits32(static_cast<float>(rng.gaussian() * 100.0));
    case Dist::kWideExponent: {
      const u32 exp = static_cast<u32>(rng.bounded(254) + 1);  // normals
      const u32 frac = static_cast<u32>(rng.next_u64()) & 0x007FFFFFU;
      return sign | (exp << 23) | frac;
    }
    case Dist::kSubnormalHeavy: {
      const u32 frac = static_cast<u32>(rng.next_u64()) & 0x007FFFFFU;
      if (rng.bounded(2) == 0) return sign | frac;  // pure subnormal
      const u32 exp = static_cast<u32>(rng.bounded(40) + 1);  // tiny normal
      return sign | (exp << 23) | frac;
    }
  }
  return 0;
}

class Differential32 : public ::testing::TestWithParam<Dist> {};

constexpr int kTrials = 100000;

TEST_P(Differential32, AllOps) {
  Rng rng(3202);
  for (int i = 0; i < kTrials; ++i) {
    const u32 a = draw32(rng, GetParam());
    const u32 b = draw32(rng, GetParam());
    for (const Op op : {Op::kAdd, Op::kSub, Op::kMul, Op::kDiv}) {
      ASSERT_TRUE(bits_equivalent(soft(op, a, b), hardware(op, a, b)))
          << op_name(op) << " " << std::hex << a << ", " << b;
    }
    const u32 mag = a & 0x7FFFFFFFU;
    ASSERT_EQ(f32_sqrt(mag), to_bits32(std::sqrt(from_bits32(mag))))
        << "sqrt " << std::hex << mag;
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, Differential32,
                         ::testing::Values(Dist::kNormalRange,
                                           Dist::kWideExponent,
                                           Dist::kSubnormalHeavy),
                         [](const auto& info) {
                           switch (info.param) {
                             case Dist::kNormalRange: return "NormalRange";
                             case Dist::kWideExponent: return "WideExponent";
                             case Dist::kSubnormalHeavy:
                               return "SubnormalHeavy";
                           }
                           return "?";
                         });

// --- Specials ---------------------------------------------------------------

constexpr u32 kInf32 = 0x7F800000U;
constexpr u32 kNegInf32 = 0xFF800000U;
constexpr u32 kQNan32 = 0x7FC00000U;
constexpr u32 kOne32 = 0x3F800000U;

TEST(Softfloat32Specials, InfAndNan) {
  EXPECT_EQ(f32_add(kInf32, kNegInf32), kQNan32);  // inf - inf
  EXPECT_EQ(f32_add(kInf32, kOne32), kInf32);
  EXPECT_EQ(f32_mul(kInf32, 0x00000000U), kQNan32);  // inf * 0
  EXPECT_EQ(f32_div(kInf32, kInf32), kQNan32);
  EXPECT_EQ(f32_div(kOne32, 0x00000000U), kInf32);
  EXPECT_EQ(f32_div(0x00000000U, 0x00000000U), kQNan32);
  EXPECT_EQ(f32_sqrt(0xBF800000U), kQNan32);  // sqrt(-1)
  EXPECT_EQ(f32_sqrt(kInf32), kInf32);
  // Signaling NaN input comes back quieted, payload preserved.
  const u32 snan = 0x7F800001U;
  EXPECT_EQ(f32_add(snan, kOne32), (snan | 0x00400000U));
  EXPECT_TRUE(f32_is_nan(f32_mul(snan, kOne32)));
}

TEST(Softfloat32Specials, SignedZeros) {
  EXPECT_EQ(f32_add(0x00000000U, 0x80000000U), 0x00000000U);  // +0 + -0 = +0
  EXPECT_EQ(f32_add(0x80000000U, 0x80000000U), 0x80000000U);  // -0 + -0 = -0
  EXPECT_EQ(f32_sub(kOne32, kOne32), 0x00000000U);            // exact: +0
  EXPECT_EQ(f32_sqrt(0x80000000U), 0x80000000U);              // sqrt(-0) = -0
  EXPECT_EQ(f32_mul(0x80000000U, kOne32), 0x80000000U);
}

TEST(Softfloat32Specials, OverflowToInf) {
  const u32 max_finite = 0x7F7FFFFFU;
  EXPECT_EQ(f32_add(max_finite, max_finite), kInf32);
  EXPECT_EQ(f32_mul(max_finite, 0x41000000U), kInf32);  // * 8.0
  EXPECT_EQ(to_bits32(from_bits32(max_finite) + from_bits32(max_finite)),
            kInf32);
}

TEST(Softfloat32Specials, Classification) {
  EXPECT_TRUE(f32_is_nan(kQNan32));
  EXPECT_TRUE(f32_is_inf(kInf32));
  EXPECT_TRUE(f32_is_inf(kNegInf32));
  EXPECT_TRUE(f32_is_zero(0x80000000U));
  EXPECT_TRUE(f32_is_subnormal(0x00000001U));
  EXPECT_TRUE(f32_is_subnormal(0x007FFFFFU));
  EXPECT_FALSE(f32_is_subnormal(0x00800000U));
  EXPECT_FALSE(f32_is_subnormal(0x00000000U));
}

}  // namespace
}  // namespace hjsvd::fp

// Exact-arithmetic soft-float tests, independent of the host FPU: on
// operand sets whose results are exactly representable, the soft-float must
// return the mathematically exact answer.  This complements the
// differential suite (which would not catch a bug shared with the host).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "fp/softfloat.hpp"

namespace hjsvd::fp {
namespace {

TEST(ExactArithmetic, SmallIntegerGridAddSubMul) {
  // All sums/differences/products of integers in [-64, 64] are exactly
  // representable in binary64; verify against integer arithmetic.
  for (int a = -64; a <= 64; ++a) {
    for (int b = -64; b <= 64; ++b) {
      const double x = a, y = b;
      ASSERT_EQ(sf_add(x, y), static_cast<double>(a + b)) << a << "+" << b;
      ASSERT_EQ(sf_sub(x, y), static_cast<double>(a - b)) << a << "-" << b;
      ASSERT_EQ(sf_mul(x, y), static_cast<double>(a * b)) << a << "*" << b;
    }
  }
}

TEST(ExactArithmetic, ExactDivisionGrid) {
  // q = a / b is exact whenever a = q * b with q a small integer.
  for (int q = -40; q <= 40; ++q) {
    for (int b = 1; b <= 40; ++b) {
      const double a = static_cast<double>(q) * b;
      ASSERT_EQ(sf_div(a, b), static_cast<double>(q)) << q << " " << b;
      ASSERT_EQ(sf_div(a, -b), static_cast<double>(-q));
    }
  }
}

TEST(ExactArithmetic, PerfectSquares) {
  for (int r = 0; r <= 2000; ++r) {
    const double sq = static_cast<double>(r) * r;
    ASSERT_EQ(sf_sqrt(sq), static_cast<double>(r)) << r;
  }
}

TEST(ExactArithmetic, PowersOfTwoScaleExactly) {
  for (int e = -1000; e <= 1000; e += 37) {
    const double p = std::ldexp(1.0, e);
    ASSERT_EQ(sf_mul(p, 2.0), std::ldexp(1.0, e + 1));
    ASSERT_EQ(sf_div(p, 2.0), std::ldexp(1.0, e - 1));
    ASSERT_EQ(sf_mul(p, p == 0.0 ? 1.0 : 1.0), p);
  }
}

TEST(ExactArithmetic, SqrtOfEvenPowersOfTwo) {
  for (int e = -600; e <= 600; e += 2) {
    ASSERT_EQ(sf_sqrt(std::ldexp(1.0, e)), std::ldexp(1.0, e / 2)) << e;
  }
}

TEST(ExactArithmetic, DyadicFractions) {
  // Sums of dyadic fractions with small denominators are exact.
  for (int a = 1; a <= 32; ++a) {
    for (int b = 1; b <= 32; ++b) {
      const double x = a / 32.0, y = b / 32.0;
      ASSERT_EQ(sf_add(x, y), (a + b) / 32.0);
      ASSERT_EQ(sf_mul(x, y), (static_cast<double>(a) * b) / 1024.0);
    }
  }
}

TEST(ExactArithmetic, KnownRoundingCases) {
  // (1 + 2^-52) * (1 + 2^-52) = 1 + 2^-51 + 2^-104 rounds to 1 + 2^-51
  // (the 2^-104 tail is below the rounding point, sticky only).
  const double one_ulp = 1.0 + std::ldexp(1.0, -52);
  EXPECT_EQ(sf_mul(one_ulp, one_ulp), 1.0 + std::ldexp(1.0, -51));
  // 2^53 + 1 is not representable: adding 1 to 2^53 ties to even (stays).
  const double big = std::ldexp(1.0, 53);
  EXPECT_EQ(sf_add(big, 1.0), big);
  // ...but adding 2 is exact.
  EXPECT_EQ(sf_add(big, 2.0), big + 2.0);
  // 2^53 + 3 ties at 2^53+3 -> nearest even multiple of 2 is 2^53+4.
  EXPECT_EQ(sf_add(big, 3.0), big + 4.0);
}

TEST(ExactArithmetic, OneThirdKnownBits) {
  // 1/3 rounds to 0x3FD5555555555555 (the classic pattern).
  EXPECT_EQ(f64_div(to_bits(1.0), to_bits(3.0)), 0x3FD5555555555555ULL);
  // 2/3 rounds to 0x3FE5555555555555.
  EXPECT_EQ(f64_div(to_bits(2.0), to_bits(3.0)), 0x3FE5555555555555ULL);
}

TEST(ExactArithmetic, SqrtTwoKnownBits) {
  EXPECT_EQ(f64_sqrt(to_bits(2.0)), 0x3FF6A09E667F3BCDULL);
}

}  // namespace
}  // namespace hjsvd::fp

// Tests for the classic two-sided Jacobi (Kogbetliantz) baseline.
#include "baselines/twosided_jacobi.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/golub_kahan.hpp"
#include "common/rng.hpp"
#include "linalg/generate.hpp"

namespace hjsvd {
namespace {

TEST(TwoSidedAngles, AnnihilateTheTwoByTwo) {
  Rng rng(3);
  for (int trial = 0; trial < 10000; ++trial) {
    const double w = rng.gaussian(), x = rng.gaussian();
    const double y = rng.gaussian(), z = rng.gaussian();
    const auto ang = solve_two_sided_angles(w, x, y, z);
    const double ca = std::cos(ang.alpha), sa = std::sin(ang.alpha);
    const double cb = std::cos(ang.beta), sb = std::sin(ang.beta);
    // A' = R(-alpha) * [[w, x], [y, z]] * R(beta)
    const double r0c0 = ca * w - sa * y, r0c1 = ca * x - sa * z;
    const double r1c0 = sa * w + ca * y, r1c1 = sa * x + ca * z;
    const double apq = r0c0 * sb + r0c1 * cb;
    const double aqp = r1c0 * cb - r1c1 * sb;
    const double scale = std::abs(w) + std::abs(x) + std::abs(y) +
                         std::abs(z) + 1e-30;
    ASSERT_NEAR(apq / scale, 0.0, 1e-14);
    ASSERT_NEAR(aqp / scale, 0.0, 1e-14);
  }
}

TEST(TwoSided, MatchesGolubKahanOnSquare) {
  Rng rng(4);
  for (std::size_t n : {2u, 3u, 8u, 16u, 32u}) {
    const Matrix a = random_gaussian(n, n, rng);
    const SvdResult ours = twosided_jacobi_svd(a);
    const SvdResult ref = golub_kahan_svd(a);
    EXPECT_LT(singular_value_error(ours.singular_values, ref.singular_values),
              1e-10)
        << "n=" << n;
  }
}

TEST(TwoSided, VectorsReconstruct) {
  Rng rng(5);
  const Matrix a = random_gaussian(10, 10, rng);
  TwoSidedConfig cfg;
  cfg.compute_u = true;
  cfg.compute_v = true;
  const SvdResult r = twosided_jacobi_svd(a, cfg);
  EXPECT_LT(orthogonality_error(r.u), 1e-10);
  EXPECT_LT(orthogonality_error(r.v), 1e-10);
  EXPECT_LT(reconstruction_error(a, r), 1e-11);
}

TEST(TwoSided, RejectsRectangular) {
  // The documented restriction that motivates the Hestenes-Jacobi method.
  EXPECT_THROW(twosided_jacobi_svd(Matrix(4, 6)), Error);
}

TEST(TwoSided, ConvergesOnSymmetric) {
  const Matrix h = hilbert(6);
  const SvdResult r = twosided_jacobi_svd(h);
  EXPECT_TRUE(r.converged);
  const SvdResult ref = golub_kahan_svd(h);
  EXPECT_LT(singular_value_error(r.singular_values, ref.singular_values),
            1e-10);
}

TEST(TwoSided, NegativeDiagonalFoldedIntoU) {
  const Matrix a = Matrix::from_rows({{-2.0, 0.0}, {0.0, 1.0}});
  TwoSidedConfig cfg;
  cfg.compute_u = true;
  cfg.compute_v = true;
  const SvdResult r = twosided_jacobi_svd(a, cfg);
  EXPECT_NEAR(r.singular_values[0], 2.0, 1e-12);
  EXPECT_LT(reconstruction_error(a, r), 1e-12);
}

}  // namespace
}  // namespace hjsvd

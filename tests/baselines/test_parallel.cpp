// Tests for the OpenMP group-parallel ("GPU-like") Hestenes baseline.
#include "baselines/parallel_hestenes.hpp"

#include <gtest/gtest.h>

#include "baselines/golub_kahan.hpp"
#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "svd/plain_hestenes.hpp"

namespace hjsvd {
namespace {

TEST(ParallelHestenes, BitIdenticalToSequentialRoundRobin) {
  // Pairs within a round touch disjoint columns, so the parallel execution
  // must match the sequential plain algorithm bit-for-bit.
  Rng rng(60);
  const Matrix a = random_gaussian(40, 24, rng);
  HestenesConfig cfg;
  cfg.max_sweeps = 6;
  cfg.ordering = Ordering::kRoundRobin;
  const SvdResult par = parallel_hestenes_svd(a, cfg);
  const SvdResult seq = plain_hestenes_svd(a, cfg);
  ASSERT_EQ(par.singular_values.size(), seq.singular_values.size());
  for (std::size_t i = 0; i < par.singular_values.size(); ++i)
    EXPECT_EQ(fp::to_bits(par.singular_values[i]),
              fp::to_bits(seq.singular_values[i]))
        << "index " << i;
}

TEST(ParallelHestenes, MatchesGolubKahan) {
  Rng rng(61);
  const Matrix a = random_gaussian(30, 18, rng);
  HestenesConfig cfg;
  cfg.max_sweeps = 20;
  cfg.tolerance = 1e-14;
  const SvdResult ours = parallel_hestenes_svd(a, cfg);
  const SvdResult ref = golub_kahan_svd(a);
  EXPECT_LT(singular_value_error(ours.singular_values, ref.singular_values),
            1e-10);
}

TEST(ParallelHestenes, VectorsReconstruct) {
  Rng rng(62);
  const Matrix a = random_gaussian(20, 12, rng);
  HestenesConfig cfg;
  cfg.max_sweeps = 20;
  cfg.tolerance = 1e-14;
  cfg.compute_u = true;
  cfg.compute_v = true;
  const SvdResult r = parallel_hestenes_svd(a, cfg);
  EXPECT_LT(orthogonality_error(r.u), 1e-10);
  EXPECT_LT(orthogonality_error(r.v), 1e-10);
  EXPECT_LT(reconstruction_error(a, r), 1e-11);
}

TEST(ParallelHestenes, TracksStats) {
  Rng rng(63);
  const Matrix a = random_gaussian(16, 10, rng);
  HestenesConfig cfg;
  cfg.max_sweeps = 3;
  cfg.track_convergence = true;
  HestenesStats stats;
  (void)parallel_hestenes_svd(a, cfg, &stats);
  EXPECT_EQ(stats.sweeps.size(), 3u);
  EXPECT_EQ(stats.total_rotations + stats.total_skipped, 3u * 45u);
}

TEST(ParallelHestenes, OddColumnCountHandled) {
  Rng rng(64);
  const Matrix a = random_gaussian(15, 9, rng);
  HestenesConfig cfg;
  cfg.max_sweeps = 20;
  cfg.tolerance = 1e-14;
  const SvdResult ours = parallel_hestenes_svd(a, cfg);
  const SvdResult ref = golub_kahan_svd(a);
  EXPECT_LT(singular_value_error(ours.singular_values, ref.singular_values),
            1e-10);
}

}  // namespace
}  // namespace hjsvd

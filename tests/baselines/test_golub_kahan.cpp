// Tests for the Golub-Kahan-Reinsch SVD baseline.
#include "baselines/golub_kahan.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "linalg/kernels.hpp"

namespace hjsvd {
namespace {

TEST(GolubKahan, DiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = 5.0;
  a(2, 2) = 3.0;
  const SvdResult r = golub_kahan_svd(a);
  ASSERT_EQ(r.singular_values.size(), 3u);
  EXPECT_NEAR(r.singular_values[0], 5.0, 1e-12);
  EXPECT_NEAR(r.singular_values[1], 3.0, 1e-12);
  EXPECT_NEAR(r.singular_values[2], 1.0, 1e-12);
}

TEST(GolubKahan, KnownTwoByTwo) {
  const Matrix a = Matrix::from_rows({{3, 0}, {4, 5}});
  const SvdResult r = golub_kahan_svd(a);
  EXPECT_NEAR(r.singular_values[0], 3.0 * std::sqrt(5.0), 1e-12);
  EXPECT_NEAR(r.singular_values[1], std::sqrt(5.0), 1e-12);
}

TEST(GolubKahan, PrescribedValues) {
  Rng rng(7);
  const std::vector<double> sv = {9.0, 4.0, 2.0, 1.0, 0.25};
  const Matrix a = with_singular_values(12, 5, sv, rng);
  const SvdResult r = golub_kahan_svd(a);
  for (std::size_t i = 0; i < sv.size(); ++i)
    EXPECT_NEAR(r.singular_values[i], sv[i], 1e-10);
}

TEST(GolubKahan, WideMatrixViaTranspose) {
  Rng rng(8);
  const Matrix a = random_gaussian(4, 20, rng);
  const SvdResult r = golub_kahan_svd(a);
  const SvdResult rt = golub_kahan_svd(a.transposed());
  ASSERT_EQ(r.singular_values.size(), 4u);
  EXPECT_LT(singular_value_error(r.singular_values, rt.singular_values),
            1e-11);
}

TEST(GolubKahan, VectorsReconstructTallMatrix) {
  Rng rng(9);
  const Matrix a = random_gaussian(10, 6, rng);
  GolubKahanConfig cfg;
  cfg.compute_u = true;
  cfg.compute_v = true;
  const SvdResult r = golub_kahan_svd(a, cfg);
  EXPECT_LT(orthogonality_error(r.u), 1e-11);
  EXPECT_LT(orthogonality_error(r.v), 1e-11);
  EXPECT_LT(reconstruction_error(a, r), 1e-12);
}

TEST(GolubKahan, VectorsReconstructWideMatrix) {
  Rng rng(10);
  const Matrix a = random_gaussian(5, 11, rng);
  GolubKahanConfig cfg;
  cfg.compute_u = true;
  cfg.compute_v = true;
  const SvdResult r = golub_kahan_svd(a, cfg);
  EXPECT_LT(orthogonality_error(r.u), 1e-11);
  EXPECT_LT(orthogonality_error(r.v), 1e-11);
  EXPECT_LT(reconstruction_error(a, r), 1e-12);
}

TEST(GolubKahan, HilbertMatrixValuesArePositiveAndDecay) {
  const SvdResult r = golub_kahan_svd(hilbert(8));
  for (std::size_t i = 1; i < 8; ++i)
    EXPECT_LT(r.singular_values[i], r.singular_values[i - 1]);
  EXPECT_GT(r.singular_values[0], 1.0);
  EXPECT_GT(r.singular_values[0] / r.singular_values[7], 1e8);
}

TEST(GolubKahan, ZeroMatrix) {
  const SvdResult r = golub_kahan_svd(Matrix(4, 3));
  for (double s : r.singular_values) EXPECT_EQ(s, 0.0);
}

TEST(GolubKahan, SingleColumnIsNorm) {
  Matrix a(3, 1);
  a(0, 0) = 2.0;
  a(1, 0) = 3.0;
  a(2, 0) = 6.0;
  const SvdResult r = golub_kahan_svd(a);
  ASSERT_EQ(r.singular_values.size(), 1u);
  EXPECT_NEAR(r.singular_values[0], 7.0, 1e-12);
}

TEST(GolubKahan, EmptyThrows) { EXPECT_THROW(golub_kahan_svd(Matrix{}), Error); }

TEST(Bidiagonalize, PreservesFrobeniusNorm) {
  Rng rng(11);
  const Matrix a = random_gaussian(15, 7, rng);
  std::vector<double> d, e;
  bidiagonalize(a, d, e);
  double sum = 0.0;
  for (double x : d) sum += x * x;
  for (double x : e) sum += x * x;
  EXPECT_NEAR(std::sqrt(sum), frobenius_norm(a), 1e-10);
}

TEST(Bidiagonalize, BidiagonalOfDiagonalIsItself) {
  Matrix a(4, 4);
  a(0, 0) = 3.0;
  a(1, 1) = 2.0;
  a(2, 2) = 1.0;
  a(3, 3) = 0.5;
  std::vector<double> d, e;
  bidiagonalize(a, d, e);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(std::abs(d[i]), a(i, i), 1e-14);
  for (std::size_t i = 1; i < 4; ++i) EXPECT_NEAR(e[i], 0.0, 1e-14);
}

TEST(Bidiagonalize, SingularValuesPreserved) {
  // Rebuild the bidiagonal as an explicit matrix and compare spectra.
  Rng rng(12);
  const Matrix a = random_gaussian(9, 6, rng);
  std::vector<double> d, e;
  bidiagonalize(a, d, e);
  Matrix b(6, 6);
  for (std::size_t i = 0; i < 6; ++i) {
    b(i, i) = d[i];
    if (i > 0) b(i - 1, i) = e[i];
  }
  const SvdResult ra = golub_kahan_svd(a);
  const SvdResult rb = golub_kahan_svd(b);
  EXPECT_LT(singular_value_error(ra.singular_values, rb.singular_values),
            1e-11);
}

TEST(Bidiagonalize, RequiresTall) {
  std::vector<double> d, e;
  auto call = [&] { bidiagonalize(Matrix(3, 5), d, e); };
  EXPECT_THROW(call(), Error);
}

}  // namespace
}  // namespace hjsvd

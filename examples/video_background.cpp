// Video background subtraction via low-rank PCA — the paper's introduction
// motivates SVD acceleration with exactly this workload (robust PCA for
// video surveillance [4], where repeated partial SVDs dominate runtime).
//
// A synthetic video is generated: a static background (gradient + fixed
// "furniture"), camera noise, and a bright object moving across the scene.
// Frames are vectorized into the columns of a pixels x frames matrix; its
// dominant singular triplets model the background, and the residual
// isolates the moving object.  The example tracks the object from the
// residual and reports localization accuracy.
//
//   ./video_background [--width 32] [--height 24] [--frames 40] [--rank 3]
#include <cmath>
#include <iostream>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "linalg/matrix.hpp"
#include "svd/hestenes.hpp"

using namespace hjsvd;

namespace {

struct Scene {
  std::size_t width, height, frames;
  Matrix video;                       // (width*height) x frames
  std::vector<double> object_x, object_y;  // ground-truth centroid per frame
};

Scene make_scene(std::size_t width, std::size_t height, std::size_t frames,
                 Rng& rng) {
  Scene s{width, height, frames, Matrix(width * height, frames), {}, {}};
  // Static background: smooth gradient plus a fixed bright rectangle.
  std::vector<double> bg(width * height);
  for (std::size_t y = 0; y < height; ++y)
    for (std::size_t x = 0; x < width; ++x) {
      double v = 0.4 + 0.3 * static_cast<double>(x) / width +
                 0.2 * static_cast<double>(y) / height;
      if (x >= width / 8 && x < width / 4 && y >= height / 2) v += 0.5;
      bg[y * width + x] = v;
    }
  for (std::size_t f = 0; f < frames; ++f) {
    auto frame = s.video.col(f);
    for (std::size_t p = 0; p < bg.size(); ++p)
      frame[p] = bg[p] + 0.02 * rng.gaussian();  // sensor noise
    // Moving object: a bright 3x3 blob sweeping diagonally.
    const double t = static_cast<double>(f) / frames;
    const double cx = 2.0 + t * (width - 5);
    const double cy = 2.0 + t * (height - 5);
    s.object_x.push_back(cx);
    s.object_y.push_back(cy);
    for (int dy = -1; dy <= 1; ++dy)
      for (int dx = -1; dx <= 1; ++dx) {
        const auto px = static_cast<std::size_t>(cx + dx);
        const auto py = static_cast<std::size_t>(cy + dy);
        if (px < width && py < height) frame[py * width + px] += 1.2;
      }
  }
  return s;
}

/// Centroid of |residual| above a threshold for one frame.
bool detect(const Scene& s, std::span<const double> residual, double& cx,
            double& cy) {
  double mass = 0.0, sx = 0.0, sy = 0.0, peak = 0.0;
  for (double v : residual) peak = std::max(peak, std::abs(v));
  const double thresh = 0.5 * peak;
  for (std::size_t p = 0; p < residual.size(); ++p) {
    const double v = std::abs(residual[p]);
    if (v < thresh) continue;
    mass += v;
    sx += v * static_cast<double>(p % s.width);
    sy += v * static_cast<double>(p / s.width);
  }
  if (mass <= 0.0) return false;
  cx = sx / mass;
  cy = sy / mass;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("Video background subtraction via partial SVD");
  cli.add_option("width", "32", "frame width");
  cli.add_option("height", "24", "frame height");
  cli.add_option("frames", "40", "number of frames");
  cli.add_option("rank", "3", "background rank");
  cli.parse(argc, argv);
  const auto width = static_cast<std::size_t>(cli.get_int("width"));
  const auto height = static_cast<std::size_t>(cli.get_int("height"));
  const auto frames = static_cast<std::size_t>(cli.get_int("frames"));
  const auto rank = static_cast<std::size_t>(cli.get_int("rank"));

  Rng rng(99);
  const Scene scene = make_scene(width, height, frames, rng);
  std::cout << "== Background subtraction: " << width << "x" << height
            << " video, " << frames << " frames, background rank " << rank
            << " ==\n\n";

  // Partial SVD of the pixels x frames matrix.
  HestenesConfig cfg;
  cfg.max_sweeps = 30;
  cfg.tolerance = 1e-12;
  cfg.compute_u = true;
  cfg.compute_v = true;
  const SvdResult svd = modified_hestenes_svd(scene.video, cfg);

  std::cout << "leading singular values:";
  for (std::size_t i = 0; i < std::min<std::size_t>(6, frames); ++i)
    std::cout << ' ' << format_fixed(svd.singular_values[i], 2);
  std::cout << "\n(one dominant background mode, then the object modes, "
               "then the noise floor)\n\n";

  // Background = rank-k reconstruction; residual = foreground.
  double err_sum = 0.0;
  std::size_t detected = 0;
  std::vector<double> residual(width * height);
  for (std::size_t f = 0; f < frames; ++f) {
    const auto frame = scene.video.col(f);
    for (std::size_t p = 0; p < residual.size(); ++p) {
      double bgv = 0.0;
      for (std::size_t t = 0; t < rank; ++t)
        bgv += svd.u(p, t) * svd.singular_values[t] * svd.v(f, t);
      residual[p] = frame[p] - bgv;
    }
    double cx = 0.0, cy = 0.0;
    if (detect(scene, residual, cx, cy)) {
      ++detected;
      err_sum += std::hypot(cx - scene.object_x[f], cy - scene.object_y[f]);
    }
  }
  AsciiTable t({"metric", "value"});
  t.add_row({"frames with detection",
             std::to_string(detected) + " / " + std::to_string(frames)});
  t.add_row({"mean localization error (pixels)",
             format_fixed(err_sum / std::max<std::size_t>(detected, 1), 2)});
  const double energy_bg =
      svd.singular_values[0] * svd.singular_values[0];
  double energy_total = 0.0;
  for (double s : svd.singular_values) energy_total += s * s;
  t.add_row({"background energy share",
             format_fixed(100.0 * energy_bg / energy_total, 1) + "%"});
  std::cout << t.to_string()
            << "\nExpected: the object is detected in essentially every "
               "frame within ~1 pixel — low-rank background modeling via "
               "SVD, the workload the paper's accelerator targets.\n";
  return 0;
}

// Drives the full accelerator model: decompose a matrix on the simulated
// FPGA, report the singular values, the cycle/time breakdown at 150 MHz,
// the resource utilization of the configured build, and the comparison
// against the host software baseline.
//
//   ./accelerator_sim [--rows 96] [--cols 48] [--kernels 8]
#include <iostream>

#include "arch/accelerator_sim.hpp"
#include "arch/resource_model.hpp"
#include "arch/timing_model.hpp"
#include "baselines/golub_kahan.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "reportgen/runner.hpp"

using namespace hjsvd;

int main(int argc, char** argv) {
  Cli cli("Cycle-level accelerator simulation");
  cli.add_option("rows", "96", "matrix rows (m)");
  cli.add_option("cols", "48", "matrix columns (n)");
  cli.add_option("kernels", "8", "update kernels (paper: 8)");
  cli.add_option("sweeps", "6", "sweeps (paper: 6)");
  cli.parse(argc, argv);
  const auto m = static_cast<std::size_t>(cli.get_int("rows"));
  const auto n = static_cast<std::size_t>(cli.get_int("cols"));

  arch::AcceleratorConfig cfg;
  cfg.update_kernels = static_cast<std::uint32_t>(cli.get_int("kernels"));
  cfg.sweeps = static_cast<std::uint32_t>(cli.get_int("sweeps"));

  const Matrix a = report::experiment_matrix(m, n);
  std::cout << "== Simulating the Hestenes-Jacobi accelerator on a " << m
            << " x " << n << " matrix ==\n\n";

  const auto run = arch::simulate_accelerator(a, cfg);
  std::cout << "singular values (top 5):";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, n); ++i)
    std::cout << ' ' << format_fixed(run.svd.singular_values[i], 4);
  std::cout << "\n\nCycle breakdown @ 150 MHz:\n"
            << "  preprocessor (D = A^T A): " << run.preprocess_cycles
            << " cycles\n"
            << "  sweeps (rotate + update): " << run.compute_cycles
            << " cycles\n"
            << "  finalize (sqrt):          " << run.finalize_cycles
            << " cycles\n"
            << "  total:                    " << run.total_cycles << " cycles = "
            << format_duration(run.seconds) << '\n'
            << "  rotation latency " << run.rotation_latency
            << " cycles; " << run.rotation_groups << " rotation groups; "
            << run.fifo_backpressure_events << " FIFO backpressure events; "
            << run.offchip_words << " off-chip words\n"
            << "  occupancy over the sweep phase: update kernels "
            << format_fixed(100.0 * run.update_utilization, 1)
            << "%, rotation unit "
            << format_fixed(100.0 * run.rotation_utilization, 1)
            << "% (Section V.C: updates dominate)\n\n";

  const auto analytic = arch::estimate_timing(cfg, m, n);
  std::cout << "Analytic model cross-check: " << analytic.total
            << " cycles (" << format_duration(analytic.seconds) << ")\n\n";

  // Verify against the host software oracle.
  Timer t;
  const SvdResult ref = golub_kahan_svd(a);
  const double sw_seconds = t.seconds();
  std::cout << "Golub-Kahan on this host: " << format_duration(sw_seconds)
            << "; max singular-value deviation: "
            << format_sci(
                   singular_value_error(run.svd.singular_values,
                                        ref.singular_values),
                   2)
            << "\nModeled accelerator speedup over this host: "
            << format_fixed(sw_seconds / run.seconds, 1) << "x\n\n";

  std::cout << arch::format_resource_report(arch::estimate_resources(cfg));
  return 0;
}

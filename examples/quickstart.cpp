// Quickstart: decompose a random rectangular matrix with the modified
// Hestenes-Jacobi SVD (the paper's Algorithm 1) and verify the result.
//
//   ./quickstart [--rows 200] [--cols 50]
#include <iostream>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "linalg/generate.hpp"
#include "linalg/kernels.hpp"
#include "svd/hestenes.hpp"

using namespace hjsvd;

int main(int argc, char** argv) {
  Cli cli("Quickstart: Hestenes-Jacobi SVD of a random matrix");
  cli.add_option("rows", "200", "matrix rows (m)");
  cli.add_option("cols", "50", "matrix columns (n)");
  cli.add_option("seed", "42", "RNG seed");
  cli.parse(argc, argv);
  const auto m = static_cast<std::size_t>(cli.get_int("rows"));
  const auto n = static_cast<std::size_t>(cli.get_int("cols"));

  // 1. Build a matrix.  Any m x n shape works — that is the point of the
  //    one-sided (Hestenes) method over classic two-sided Jacobi.
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const Matrix a = random_gaussian(m, n, rng);

  // 2. Configure the solver.  The defaults mirror the paper's hardware
  //    (6 sweeps, round-robin ordering, hardware rotation formulas); here
  //    we also request singular vectors and iterate to machine precision.
  HestenesConfig cfg;
  cfg.max_sweeps = 30;
  cfg.tolerance = 1e-14;
  cfg.compute_u = true;
  cfg.compute_v = true;

  HestenesStats stats;
  const SvdResult svd = modified_hestenes_svd(a, cfg, &stats);

  // 3. Inspect the result.
  std::cout << "Decomposed " << m << " x " << n << " in " << svd.sweeps
            << " sweeps (" << stats.total_rotations << " rotations)\n";
  std::cout << "largest singular values:";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, n); ++i)
    std::cout << ' ' << format_fixed(svd.singular_values[i], 4);
  std::cout << "\nreconstruction error  ||A - U S V^T|| / ||A||: "
            << format_sci(reconstruction_error(a, svd), 2) << '\n'
            << "V orthogonality error ||V^T V - I||_max:        "
            << format_sci(orthogonality_error(svd.v), 2) << '\n'
            << "U orthogonality error ||U^T U - I||_max:        "
            << format_sci(orthogonality_error(svd.u), 2) << '\n';
  return 0;
}

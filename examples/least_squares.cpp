// Least-squares fitting via the SVD pseudoinverse — closing the historical
// loop: Hestenes' 1958 paper (the method's namesake, the paper's ref. [10])
// is about inverting matrices by biorthogonalization.
//
// Fits a polynomial to noisy samples with the minimum-norm least-squares
// solver, on a deliberately ill-conditioned Vandermonde design matrix, and
// compares against the known ground truth.
//
//   ./least_squares [--samples 60] [--degree 5] [--noise 0.05]
#include <cmath>
#include <iostream>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "svd/pinv.hpp"

using namespace hjsvd;

int main(int argc, char** argv) {
  Cli cli("Least-squares polynomial fit via SVD pseudoinverse");
  cli.add_option("samples", "60", "number of sample points");
  cli.add_option("degree", "5", "polynomial degree");
  cli.add_option("noise", "0.05", "noise standard deviation");
  cli.parse(argc, argv);
  const auto samples = static_cast<std::size_t>(cli.get_int("samples"));
  const auto degree = static_cast<std::size_t>(cli.get_int("degree"));
  const double noise = cli.get_double("noise");

  // Ground-truth coefficients (low-order dominant).
  std::vector<double> truth(degree + 1);
  for (std::size_t k = 0; k <= degree; ++k)
    truth[k] = 2.0 / (1.0 + static_cast<double>(k) * k);

  // Vandermonde design matrix on [-1, 1] and noisy observations.
  Rng rng(123);
  Matrix a(samples, degree + 1);
  Matrix b(samples, 1);
  for (std::size_t i = 0; i < samples; ++i) {
    const double x =
        -1.0 + 2.0 * static_cast<double>(i) / (samples - 1);
    double pow_x = 1.0, y = 0.0;
    for (std::size_t k = 0; k <= degree; ++k) {
      a(i, k) = pow_x;
      y += truth[k] * pow_x;
      pow_x *= x;
    }
    b(i, 0) = y + noise * rng.gaussian();
  }

  const Matrix coeffs = lstsq(a, b);
  std::cout << "== SVD least squares: degree-" << degree << " fit to "
            << samples << " noisy samples ==\n"
            << "design-matrix numerical rank: " << numerical_rank(a)
            << " of " << degree + 1 << "\n\n";

  AsciiTable t({"coefficient", "truth", "estimate", "abs error"});
  double worst = 0.0;
  for (std::size_t k = 0; k <= degree; ++k) {
    const double err = std::abs(coeffs(k, 0) - truth[k]);
    worst = std::max(worst, err);
    t.add_row({"x^" + std::to_string(k), format_fixed(truth[k], 4),
               format_fixed(coeffs(k, 0), 4), format_sci(err, 2)});
  }
  std::cout << t.to_string();

  // Residual check: the LS residual must be orthogonal to the column space.
  const Matrix fitted = matmul(a, coeffs);
  double res_norm = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const double r = b(i, 0) - fitted(i, 0);
    res_norm += r * r;
  }
  std::cout << "\nresidual RMS: "
            << format_sci(std::sqrt(res_norm / samples), 2)
            << " (noise level " << format_sci(noise, 2)
            << "); worst coefficient error: " << format_sci(worst, 2)
            << '\n';
  return 0;
}

// Streaming latent semantic indexing with the incremental SVD.
//
// Documents arrive one at a time (the realistic LSI deployment the paper's
// future work points toward); the incremental Hestenes engine folds each
// new document into the factorization instead of recomputing from scratch,
// and the dominant latent structure is queried after every arrival.
//
//   ./streaming_lsi [--batch-compare true]
#include <cmath>
#include <iostream>
#include <map>
#include <sstream>
#include <vector>

#include "baselines/golub_kahan.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "linalg/residuals.hpp"
#include "svd/incremental.hpp"

using namespace hjsvd;

namespace {

const std::vector<std::string> kStream = {
    "rocket launch engine fuel",
    "recipe oven bake flour",
    "launch orbit satellite mission fuel",
    "bake flour dough butter oven",
    "orbit satellite telescope astronomy",
    "dough butter sauce garlic",
    "telescope astronomy cosmos galaxy",
    "sauce garlic onion simmer",
};

/// Global vocabulary (fixed feature space for the stream).
std::map<std::string, std::size_t> build_vocabulary() {
  std::map<std::string, std::size_t> vocab;
  for (const auto& doc : kStream) {
    std::istringstream is(doc);
    std::string w;
    while (is >> w) vocab.emplace(w, 0);
  }
  std::size_t idx = 0;
  for (auto& [term, i] : vocab) i = idx++;
  return vocab;
}

std::vector<double> embed(const std::string& doc,
                          const std::map<std::string, std::size_t>& vocab) {
  std::vector<double> col(vocab.size(), 0.0);
  std::istringstream is(doc);
  std::string w;
  while (is >> w) col[vocab.at(w)] += 1.0;
  return col;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("Streaming LSI with the incremental column-append SVD");
  cli.add_option("batch-compare", "true",
                 "verify each prefix against a batch Golub-Kahan SVD");
  cli.parse(argc, argv);
  const bool compare = cli.get_bool("batch-compare");

  const auto vocab = build_vocabulary();
  std::cout << "== Streaming LSI: " << vocab.size() << "-term vocabulary, "
            << kStream.size() << " documents arriving one by one ==\n\n";

  IncrementalHestenes engine(vocab.size());
  Matrix seen(vocab.size(), 0);

  AsciiTable t({"arrival", "docs", "sigma_1", "sigma_2",
                "vs batch (rel err)"});
  for (std::size_t d = 0; d < kStream.size(); ++d) {
    const auto col = embed(kStream[d], vocab);
    engine.append_column(col);
    const SvdResult inc = engine.finalize();

    std::string err = "-";
    if (compare) {
      Matrix prefix(vocab.size(), d + 1);
      for (std::size_t c = 0; c < d; ++c) {
        auto src = seen.col(c);
        auto dst = prefix.col(c);
        std::copy(src.begin(), src.end(), dst.begin());
      }
      auto dst = prefix.col(d);
      std::copy(col.begin(), col.end(), dst.begin());
      seen = prefix;
      const SvdResult batch = golub_kahan_svd(prefix);
      err = format_sci(
          singular_value_error(inc.singular_values, batch.singular_values), 2);
    }
    t.add_row({"doc " + std::to_string(d), std::to_string(d + 1),
               format_fixed(inc.singular_values[0], 3),
               inc.singular_values.size() > 1
                   ? format_fixed(inc.singular_values[1], 3)
                   : std::string("-"),
               err});
  }
  std::cout << t.to_string()
            << "\nTwo latent topics (space/cooking) emerge as two dominant "
               "singular directions once both topics have arrived; every "
               "prefix matches the from-scratch batch SVD to rounding, "
               "without ever recomputing it.\n";
  return 0;
}

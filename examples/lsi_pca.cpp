// Latent Semantic Indexing — the paper's stated future-work application
// ("our proposed framework will be extended to perform principal component
// analysis for latent semantic indexing", Section VII).
//
// A small synthetic corpus is embedded as a term-document matrix, the
// Hestenes-Jacobi SVD projects it into a low-dimensional latent space, and
// document-document similarities are computed there: documents that share a
// *topic* but few literal words become close, which raw term overlap
// misses.
//
//   ./lsi_pca [--dims 2]
#include <cmath>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "linalg/matrix.hpp"
#include "svd/hestenes.hpp"

using namespace hjsvd;

namespace {

/// A tiny two-topic corpus: space exploration (docs 0-3) vs. cooking (docs
/// 4-7).  Each topic is a co-occurrence *chain*: consecutive documents
/// share words, but the chain's endpoints (0 vs 3, and 4 vs 7) share none —
/// raw term overlap cannot relate them, latent space can.
const std::vector<std::string> kCorpus = {
    "rocket launch engine fuel",
    "launch orbit satellite mission fuel",
    "orbit satellite telescope astronomy",
    "telescope astronomy cosmos galaxy",
    "recipe oven bake flour",
    "bake flour dough butter oven",
    "dough butter sauce garlic",
    "sauce garlic onion simmer",
};

/// Builds the term-document matrix (terms x documents) with tf weighting.
Matrix term_document_matrix(std::vector<std::string>& terms_out) {
  std::map<std::string, std::size_t> term_index;
  std::vector<std::vector<std::string>> docs;
  for (const auto& doc : kCorpus) {
    std::istringstream is(doc);
    std::vector<std::string> words;
    std::string w;
    while (is >> w) {
      words.push_back(w);
      term_index.emplace(w, 0);
    }
    docs.push_back(std::move(words));
  }
  std::size_t idx = 0;
  for (auto& [term, i] : term_index) i = idx++;
  terms_out.resize(term_index.size());
  for (const auto& [term, i] : term_index) terms_out[i] = term;

  Matrix td(term_index.size(), kCorpus.size());
  for (std::size_t d = 0; d < docs.size(); ++d)
    for (const auto& w : docs[d]) td(term_index.at(w), d) += 1.0;
  return td;
}

double cosine(std::span<const double> a, std::span<const double> b) {
  double num = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  return num / (std::sqrt(na * nb) + 1e-30);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("Latent semantic indexing via Hestenes-Jacobi SVD");
  cli.add_option("dims", "2", "latent dimensions to keep");
  cli.parse(argc, argv);
  const auto dims = static_cast<std::size_t>(cli.get_int("dims"));

  std::vector<std::string> terms;
  const Matrix td = term_document_matrix(terms);
  std::cout << "== LSI: " << terms.size() << " terms x " << td.cols()
            << " documents, latent dims = " << dims << " ==\n\n";

  HestenesConfig cfg;
  cfg.max_sweeps = 30;
  cfg.tolerance = 1e-13;
  cfg.compute_v = true;  // V rows are the documents' latent coordinates
  const SvdResult svd = modified_hestenes_svd(td, cfg);

  // Document d's latent coordinates: sigma_k * V(d, k), k < dims.
  const std::size_t ndocs = td.cols();
  Matrix latent(dims, ndocs);
  for (std::size_t d = 0; d < ndocs; ++d)
    for (std::size_t k = 0; k < dims; ++k)
      latent(k, d) = svd.singular_values[k] * svd.v(d, k);

  AsciiTable coords({"doc", "text (truncated)", "latent coordinates"});
  for (std::size_t d = 0; d < ndocs; ++d) {
    std::string pt = "(";
    for (std::size_t k = 0; k < dims; ++k)
      pt += (k ? ", " : "") + format_fixed(latent(k, d), 2);
    pt += ")";
    coords.add_row({std::to_string(d), kCorpus[d].substr(0, 28), pt});
  }
  std::cout << coords.to_string() << '\n';

  // Similarity of the vocabulary-disjoint docs (3 and 7) to their topics.
  auto sim = [&](std::size_t a, std::size_t b) {
    return cosine(latent.col(a), latent.col(b));
  };
  auto raw_sim = [&](std::size_t a, std::size_t b) {
    return cosine(td.col(a), td.col(b));
  };
  AsciiTable s({"pair", "raw term cosine", "latent cosine"});
  s.set_caption(
      "Chain endpoints share no words; only latent space relates them:");
  s.add_row({"doc 0 (space) vs doc 3 (space)", format_fixed(raw_sim(0, 3), 2),
             format_fixed(sim(0, 3), 2)});
  s.add_row({"doc 4 (cooking) vs doc 7 (cooking)",
             format_fixed(raw_sim(4, 7), 2), format_fixed(sim(4, 7), 2)});
  s.add_row({"doc 0 (space) vs doc 7 (cooking)",
             format_fixed(raw_sim(0, 7), 2), format_fixed(sim(0, 7), 2)});
  std::cout << s.to_string()
            << "\nExpected: zero raw similarity for all three pairs, but "
               "high latent similarity within each topic and low latent "
               "similarity across topics.\n";
  return 0;
}

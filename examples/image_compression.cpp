// Low-rank image approximation — the signal-processing use case the paper's
// introduction motivates (SVD-based PCA in image processing).
//
// A synthetic grayscale "image" with smooth structure plus noise is
// generated procedurally (no image files needed), decomposed with the
// Hestenes-Jacobi SVD, truncated to rank k, and the reconstruction quality
// (PSNR) and compression ratio are reported for several k.  An ASCII
// rendering shows the original and the rank-8 approximation.
//
//   ./image_compression [--size 96] [--ranks 1,4,8,16,32]
#include <cmath>
#include <iostream>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "linalg/kernels.hpp"
#include "svd/hestenes.hpp"
#include "svd/lowrank.hpp"

using namespace hjsvd;

namespace {

/// Synthetic test image: overlapping gaussian blobs, diagonal bands and
/// additive noise — the kind of low-rank-plus-noise content PCA targets.
Matrix make_image(std::size_t size, Rng& rng) {
  Matrix img(size, size);
  const double s = static_cast<double>(size);
  for (std::size_t r = 0; r < size; ++r) {
    for (std::size_t c = 0; c < size; ++c) {
      const double x = static_cast<double>(c) / s;
      const double y = static_cast<double>(r) / s;
      double v = 0.0;
      v += std::exp(-18.0 * ((x - 0.3) * (x - 0.3) + (y - 0.35) * (y - 0.35)));
      v += 0.8 * std::exp(-25.0 * ((x - 0.7) * (x - 0.7) + (y - 0.6) * (y - 0.6)));
      v += 0.3 * std::sin(8.0 * (x + y));
      v += 0.25 * std::cos(14.0 * x) * std::sin(5.0 * y);
      v += 0.05 * rng.gaussian();
      img(r, c) = v;
    }
  }
  return img;
}

double psnr(const Matrix& ref, const Matrix& approx) {
  double peak = 0.0, mse = 0.0;
  for (std::size_t c = 0; c < ref.cols(); ++c)
    for (std::size_t r = 0; r < ref.rows(); ++r) {
      peak = std::max(peak, std::abs(ref(r, c)));
      const double d = ref(r, c) - approx(r, c);
      mse += d * d;
    }
  mse /= static_cast<double>(ref.rows() * ref.cols());
  return 10.0 * std::log10(peak * peak / mse);
}

void render_ascii(const Matrix& img, std::size_t target_rows) {
  static const char* shades = " .:-=+*#%@";
  const std::size_t step = std::max<std::size_t>(1, img.rows() / target_rows);
  double lo = 1e300, hi = -1e300;
  for (double v : img.data()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (std::size_t r = 0; r < img.rows(); r += step) {
    for (std::size_t c = 0; c < img.cols(); c += step / 2 ? step / 2 : 1) {
      const double t = (img(r, c) - lo) / (hi - lo + 1e-30);
      std::cout << shades[static_cast<int>(t * 9.999)];
    }
    std::cout << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("SVD image compression (rank-k approximation)");
  cli.add_option("size", "96", "image side length");
  cli.add_option("ranks", "1,4,8,16,32", "truncation ranks to evaluate");
  cli.add_option("render", "true", "print ASCII renderings");
  cli.parse(argc, argv);
  const auto size = static_cast<std::size_t>(cli.get_int("size"));
  const auto ranks = cli.get_int_list("ranks");

  Rng rng(7);
  const Matrix img = make_image(size, rng);

  HestenesConfig cfg;
  cfg.max_sweeps = 30;
  cfg.tolerance = 1e-13;
  cfg.compute_u = true;
  cfg.compute_v = true;
  const SvdResult svd = modified_hestenes_svd(img, cfg);

  AsciiTable t({"rank k", "PSNR (dB)", "stored values", "compression"});
  const double full = static_cast<double>(size * size);
  for (auto rk : ranks) {
    const auto k = std::min<std::size_t>(static_cast<std::size_t>(rk), size);
    const Matrix approx = low_rank_approximation(svd, k);
    const double stored = static_cast<double>(k) * (2.0 * size + 1.0);
    t.add_row({std::to_string(k), format_fixed(psnr(img, approx), 1),
               format_fixed(stored, 0),
               format_fixed(full / stored, 1) + "x"});
  }
  std::cout << "== SVD image compression, " << size << " x " << size
            << " synthetic image ==\n\n"
            << t.to_string() << '\n';

  if (cli.get_bool("render")) {
    std::cout << "original:\n";
    render_ascii(img, 24);
    std::cout << "\nrank-8 approximation:\n";
    render_ascii(low_rank_approximation(svd, 8), 24);
  }
  return 0;
}

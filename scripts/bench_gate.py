#!/usr/bin/env python3
"""Gate benchmark JSON against provenance and history (stdlib only).

Two subcommands:

  check FILE...
      Each BENCH_*.json must carry a run manifest (tool, config, git_sha,
      host_threads, schema_versions) and, where present, green invariants:
      every "bit_identical" leaf must be true and "guardrail_ok" /
      "all_bit_identical" must be true.

  compare OLD NEW [--max-slowdown FRAC]
      Diff two runs of the same bench.  Refuses (exit 2) when the bench
      names differ, the manifests disagree on schema versions or config —
      numbers produced by different schema generations or workloads are not
      comparable — or a shared workload-identity leaf (n, threads, reps,
      count, rows, cols, queue_depth) differs, which means positional leaf
      matching would compare different matrix sizes against each other.
      Reports (but tolerates) git_sha / host_threads differences.  Then
      walks every numeric leaf shared by both documents: keys ending in
      "_per_s" are higher-is-better throughputs and fail on a drop beyond
      --max-slowdown (default 0.10); other keys ending in "_s" are
      lower-is-better timings and fail on the mirrored slowdown.  Keys
      ending in "_error" or "_drift" are higher-is-worse accuracy leaves
      (the svd.num.* probes): they fail when the new value exceeds the old
      by --max-accuracy-regress (default 0.50) relatively AND by the
      absolute --accuracy-noise-floor (default 1e-12) — two rounding-level
      values cannot produce a spurious relative finding.  Any true->false
      flip of a boolean invariant leaf fails.

Exit code 0 = gate passed, 1 = check failed, 2 = usage/compat error,
3 = regression detected by compare.
"""
from __future__ import annotations

import argparse
import json
import sys


def load(path: str):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_gate: {path}: {e}", file=sys.stderr)
        sys.exit(2)


def walk(node, prefix=""):
    """Yield (dotted_path, leaf_value) for every scalar leaf."""
    if isinstance(node, dict):
        for k, v in node.items():
            yield from walk(v, f"{prefix}.{k}" if prefix else k)
    elif isinstance(node, list):
        for i, v in enumerate(node):
            yield from walk(v, f"{prefix}[{i}]")
    else:
        yield prefix, node


MANIFEST_FIELDS = ("tool", "config", "git_sha", "host_threads",
                   "schema_versions")

# Leaves that identify the workload rather than measure it.  Positional leaf
# matching (sizes[0].xyz_s) is only meaningful when these agree between runs.
IDENTITY_LEAVES = frozenset(
    ("n", "threads", "reps", "count", "rows", "cols", "queue_depth"))


def check_manifest(path: str, doc) -> list[str]:
    problems = []
    manifest = doc.get("manifest")
    if not isinstance(manifest, dict):
        problems.append(f"{path}: no run manifest (re-run the bench from a "
                        f"build with src/obs/manifest.cpp)")
        return problems
    for field in MANIFEST_FIELDS:
        if field not in manifest:
            problems.append(f"{path}: manifest lacks {field!r}")
    versions = manifest.get("schema_versions")
    if not isinstance(versions, dict) or not versions:
        problems.append(f"{path}: manifest schema_versions missing/empty")
    return problems


def cmd_check(paths: list[str]) -> int:
    problems = []
    for path in paths:
        doc = load(path)
        problems += check_manifest(path, doc)
        for key, value in walk(doc):
            leaf = key.rsplit(".", 1)[-1]
            if leaf == "bit_identical" and value is not True:
                problems.append(f"{path}: {key} is {value!r}")
            if leaf in ("guardrail_ok", "all_bit_identical") \
                    and value is not True:
                problems.append(f"{path}: {key} is {value!r}")
    for p in problems:
        print(f"bench_gate: FAIL: {p}", file=sys.stderr)
    if not problems:
        print(f"bench_gate: check OK ({len(paths)} file(s))")
    return 1 if problems else 0


def cmd_compare(old_path: str, new_path: str, max_slowdown: float,
                max_accuracy_regress: float = 0.50,
                accuracy_noise_floor: float = 1e-12) -> int:
    old, new = load(old_path), load(new_path)

    if old.get("bench") != new.get("bench"):
        print(
            f"bench_gate: cannot compare {old.get('bench')!r} against "
            f"{new.get('bench')!r}", file=sys.stderr)
        return 2
    om, nm = old.get("manifest") or {}, new.get("manifest") or {}
    ov, nv = om.get("schema_versions"), nm.get("schema_versions")
    if ov is not None and nv is not None and ov != nv:
        print(
            f"bench_gate: schema versions differ ({ov} vs {nv}); "
            f"refusing to compare across schema generations", file=sys.stderr)
        return 2
    if om.get("config") != nm.get("config"):
        print(
            f"bench_gate: manifest config differs "
            f"({om.get('config')!r} vs {nm.get('config')!r}); "
            f"refusing to compare different workloads", file=sys.stderr)
        return 2
    for field in ("git_sha", "host_threads"):
        if om.get(field) != nm.get(field):
            print(f"bench_gate: note: {field} differs "
                  f"({om.get(field)!r} vs {nm.get(field)!r})")

    old_leaves = dict(walk(old))
    regressions = []
    compared = 0
    for key, new_value in walk(new):
        if key not in old_leaves or key.startswith("manifest."):
            continue
        old_value = old_leaves[key]
        leaf = key.rsplit(".", 1)[-1]
        if leaf in IDENTITY_LEAVES:
            if old_value != new_value:
                print(
                    f"bench_gate: workload mismatch at {key} "
                    f"({old_value!r} vs {new_value!r}); "
                    f"refusing to compare different workloads",
                    file=sys.stderr)
                return 2
            continue
        if isinstance(old_value, bool) or isinstance(new_value, bool):
            if old_value is True and new_value is not True:
                regressions.append(f"{key}: {old_value} -> {new_value}")
                compared += 1
            continue
        if not isinstance(old_value, (int, float)) \
                or not isinstance(new_value, (int, float)):
            continue
        # Accuracy leaves (backward error, orthogonality drift): higher is
        # worse, with an absolute noise floor so rounding-level baselines
        # cannot yield spurious relative regressions.  Matched before the
        # timing suffixes (neither ends in "_s", but the explicit order
        # documents precedence).
        if leaf.endswith("_error") or leaf.endswith("_drift"):
            if old_value < 0 or new_value < 0:
                continue  # -1 sentinel: measure not recorded on that side
            compared += 1
            limit = max(old_value * (1.0 + max_accuracy_regress),
                        old_value + accuracy_noise_floor)
            if new_value > limit:
                regressions.append(
                    f"{key}: {old_value:g} -> {new_value:g} "
                    f"(limit {limit:g}, accuracy is higher-is-worse)")
            continue
        # "_per_s" also ends with "_s": throughput must be matched first or
        # higher-is-better leaves would be gated as lower-is-better timings.
        if leaf.endswith("_per_s") and old_value > 0:
            compared += 1
            if new_value < old_value / (1.0 + max_slowdown):
                regressions.append(
                    f"{key}: {old_value:g}/s -> {new_value:g}/s "
                    f"({(new_value / old_value - 1.0) * 100.0:.1f}%)")
        elif leaf.endswith("_s") and old_value > 0:
            compared += 1
            if new_value > old_value * (1.0 + max_slowdown):
                regressions.append(
                    f"{key}: {old_value:g} s -> {new_value:g} s "
                    f"(+{(new_value / old_value - 1.0) * 100.0:.1f}%)")
    for r in regressions:
        print(f"bench_gate: REGRESSION: {r}", file=sys.stderr)
    if regressions:
        print(
            f"bench_gate: {len(regressions)} regression(s) across "
            f"{compared} compared leaves", file=sys.stderr)
        return 3
    print(f"bench_gate: compare OK ({compared} leaves within "
          f"{max_slowdown * 100.0:.0f}% of {old_path})")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)
    p_check = sub.add_parser("check", help="verify manifests and invariants")
    p_check.add_argument("files", nargs="+")
    p_cmp = sub.add_parser("compare", help="diff two runs of one bench")
    p_cmp.add_argument("old")
    p_cmp.add_argument("new")
    p_cmp.add_argument("--max-slowdown", type=float, default=0.10,
                       help="tolerated fractional slowdown (default 0.10)")
    p_cmp.add_argument("--max-accuracy-regress", type=float, default=0.50,
                       help="tolerated fractional accuracy-leaf growth "
                            "(default 0.50)")
    p_cmp.add_argument("--accuracy-noise-floor", type=float, default=1e-12,
                       help="absolute accuracy slack treated as rounding "
                            "noise (default 1e-12)")
    args = ap.parse_args()
    if args.cmd == "check":
        return cmd_check(args.files)
    return cmd_compare(args.old, args.new, args.max_slowdown,
                       args.max_accuracy_regress, args.accuracy_noise_floor)


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Validate hjsvd observability outputs (stdlib only).

Checks a Chrome trace-event JSON (hjsvd.trace.v1, .v2, or .v3), a metrics
JSON (hjsvd.metrics.v1), a live snapshot stream
(hjsvd.metrics-snapshots.v1 JSONL), and/or an offline report
(hjsvd.report.v1) produced by `hjsvd_cli --trace-out/--metrics-out/
--obs-live`, `hjsvd_report`, the benches, or any library user:

  * JSON well-formedness and schema tag.
  * Trace: every event carries ph/pid/tid/ts; complete events ('X') have a
    non-negative dur; counter events ('C', trace.v2+) carry a numeric
    args.value; spans nest (no interleaving) per (pid, tid) timeline;
    flight-recorder documents (trace.v3) carry the ring metadata in
    otherData and a consistent drop total.
  * Metrics: every metric has name/type/unit; names are unique and sorted;
    per-type required fields are present.
  * Snapshots: every line is a self-contained hjsvd.metrics-snapshots.v1
    object; seq strictly increasing, elapsed_us non-decreasing, counter
    values non-decreasing per name, dropped_events non-decreasing.
  * Report: run/phases/cross_checks blocks present with sane types.
  * Numerics (--numerics): the svd.num.* namespace emitted by the
    numerical-health probes is internally consistent — angle-histogram
    buckets summing (with non-finite events) to the sample counter,
    fractions inside [0, 1], stride >= 1, condition estimate >= 1,
    watchdog verdict gauges 0/1 — and, when --report is given, the
    report's "numerics" section is present with the same invariants.
  * Optionally, that a list of required span names / metric names occurs.

Exit code 0 = valid, 1 = validation failure, 2 = usage error.

Usage:
  scripts/validate_obs.py --trace trace.json --metrics metrics.json \
      --require-span sweep --require-span generate \
      --require-metric svd.sweep.offdiag_frobenius
  scripts/validate_obs.py --report report.json
  scripts/validate_obs.py --snapshots live/snapshots.jsonl
  scripts/validate_obs.py --metrics metrics.json --report report.json \
      --numerics
"""
from __future__ import annotations

import argparse
import json
import sys

# trace.v2 = v1 + counter ('C') events; trace.v3 = v2 + flight-recorder ring
# metadata in otherData.  Older documents remain valid input.
TRACE_SCHEMAS = ("hjsvd.trace.v1", "hjsvd.trace.v2", "hjsvd.trace.v3")
TRACE_SCHEMA_V3 = "hjsvd.trace.v3"
METRICS_SCHEMA = "hjsvd.metrics.v1"
SNAPSHOTS_SCHEMA = "hjsvd.metrics-snapshots.v1"
REPORT_SCHEMA = "hjsvd.report.v1"
METRIC_TYPES = {"counter", "gauge", "histogram", "series"}
EPS = 1e-6  # double round-off tolerance at span boundaries (microseconds)


def fail(msg: str) -> None:
    print(f"validate_obs: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: str):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def check_trace(path: str, required_spans: list[str]) -> int:
    doc = load(path)
    if doc.get("schema") not in TRACE_SCHEMAS:
        fail(
            f"{path}: schema is {doc.get('schema')!r}, "
            f"want one of {TRACE_SCHEMAS}"
        )
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")

    timelines: dict[tuple, list] = {}
    names = set()
    for i, e in enumerate(events):
        # Metadata events ('M') carry no timestamp in the Chrome format.
        required = ("ph", "pid", "tid") if e.get("ph") == "M" else (
            "ph", "pid", "tid", "ts")
        for field in required:
            if field not in e:
                fail(f"{path}: event {i} lacks {field!r}: {e}")
        names.add(e.get("name"))
        if e["ph"] == "X":
            if "dur" not in e or not isinstance(e["dur"], (int, float)):
                fail(f"{path}: complete event {i} lacks numeric dur: {e}")
            if e["dur"] < 0:
                fail(f"{path}: event {i} has negative dur: {e}")
            timelines.setdefault((e["pid"], e["tid"]), []).append(
                (e["ts"], e["ts"] + e["dur"], e.get("name", "?"))
            )
        if e["ph"] == "C":
            value = e.get("args", {}).get("value")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                fail(
                    f"{path}: counter event {i} lacks numeric args.value: {e}"
                )

    # Spans on one timeline must nest like call frames, never interleave.
    for (pid, tid), spans in timelines.items():
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack: list[float] = []
        for ts, end, name in spans:
            while stack and stack[-1] <= ts + EPS:
                stack.pop()
            if stack and end > stack[-1] + EPS:
                fail(
                    f"{path}: span {name!r} [{ts}, {end}] interleaves with an "
                    f"open span ending at {stack[-1]} on pid={pid} tid={tid}"
                )
            stack.append(end)

    if doc.get("schema") == TRACE_SCHEMA_V3:
        other = doc.get("otherData")
        if not isinstance(other, dict):
            fail(f"{path}: trace.v3 document lacks otherData")
        if other.get("flight_recorder") is not True:
            fail(f"{path}: trace.v3 otherData lacks flight_recorder: true")
        capacity = other.get("ring_capacity_events")
        if not isinstance(capacity, int) or capacity <= 0:
            fail(
                f"{path}: trace.v3 ring_capacity_events must be a positive "
                f"integer, got {capacity!r}"
            )
        total = other.get("dropped_events_total")
        by_tid = other.get("dropped_events_by_tid")
        if not isinstance(total, int) or total < 0:
            fail(
                f"{path}: trace.v3 dropped_events_total must be a "
                f"non-negative integer, got {total!r}"
            )
        if not isinstance(by_tid, list) or any(
            not isinstance(d, int) or d < 0 for d in by_tid
        ):
            fail(f"{path}: trace.v3 dropped_events_by_tid malformed: {by_tid!r}")
        if sum(by_tid) != total:
            fail(
                f"{path}: trace.v3 dropped_events_by_tid sums to "
                f"{sum(by_tid)}, but dropped_events_total is {total}"
            )

    for span in required_spans:
        if span not in names:
            fail(f"{path}: required span {span!r} not found")
    print(
        f"validate_obs: {path}: OK "
        f"({len(events)} events, {len(timelines)} span timelines)"
    )
    return len(events)


def check_metrics(path: str, required_metrics: list[str]) -> int:
    doc = load(path)
    if doc.get("schema") != METRICS_SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, want {METRICS_SCHEMA!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        fail(f"{path}: metrics missing or not a list")

    names = []
    for i, m in enumerate(metrics):
        for field in ("name", "type", "unit"):
            if field not in m:
                fail(f"{path}: metric {i} lacks {field!r}: {m}")
        if m["type"] not in METRIC_TYPES:
            fail(f"{path}: metric {m['name']!r} has unknown type {m['type']!r}")
        if m["type"] in ("counter", "gauge") and "value" not in m:
            fail(f"{path}: {m['type']} {m['name']!r} lacks value")
        if m["type"] == "histogram":
            for field in ("count", "min", "max", "mean", "p50", "p90", "p99"):
                if field not in m:
                    fail(f"{path}: histogram {m['name']!r} lacks {field!r}")
        if m["type"] == "series":
            pts = m.get("points")
            if not isinstance(pts, list) or any(
                not (isinstance(p, list) and len(p) == 2) for p in pts
            ):
                fail(f"{path}: series {m['name']!r} points malformed")
        names.append(m["name"])

    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        fail(f"{path}: duplicate metric names: {dupes}")
    if names != sorted(names):
        fail(f"{path}: metric names are not sorted (non-deterministic emit?)")
    for name in required_metrics:
        if name not in names:
            fail(f"{path}: required metric {name!r} not found")
    print(f"validate_obs: {path}: OK ({len(metrics)} metrics)")
    return len(metrics)


def check_snapshots(path: str) -> int:
    """Validates an hjsvd.metrics-snapshots.v1 JSONL stream line by line."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"{path}: {e}")
    if not lines:
        fail(f"{path}: snapshot stream is empty")

    last_seq = None
    last_elapsed = None
    last_dropped = None
    last_counters: dict[str, float] = {}
    for i, line in enumerate(lines):
        try:
            snap = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}: line {i + 1} is not valid JSON: {e}")
        if not isinstance(snap, dict):
            fail(f"{path}: line {i + 1} is not an object")
        if snap.get("schema") != SNAPSHOTS_SCHEMA:
            fail(
                f"{path}: line {i + 1} schema is {snap.get('schema')!r}, "
                f"want {SNAPSHOTS_SCHEMA!r}"
            )
        for field, kind in (
            ("seq", int),
            ("elapsed_us", (int, float)),
            ("dropped_events", int),
            ("counters", dict),
            ("gauges", dict),
        ):
            if not isinstance(snap.get(field), kind) or isinstance(
                snap.get(field), bool
            ):
                fail(
                    f"{path}: line {i + 1} lacks a well-typed "
                    f"{field!r}: {snap.get(field)!r}"
                )
        seq = snap["seq"]
        elapsed = snap["elapsed_us"]
        dropped = snap["dropped_events"]
        if last_seq is not None and seq <= last_seq:
            fail(
                f"{path}: line {i + 1} seq {seq} is not strictly greater "
                f"than previous seq {last_seq}"
            )
        if last_elapsed is not None and elapsed < last_elapsed:
            fail(
                f"{path}: line {i + 1} elapsed_us {elapsed} decreased "
                f"from {last_elapsed}"
            )
        if last_dropped is not None and dropped < last_dropped:
            fail(
                f"{path}: line {i + 1} dropped_events {dropped} decreased "
                f"from {last_dropped}"
            )
        for name, value in snap["counters"].items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                fail(
                    f"{path}: line {i + 1} counter {name!r} is not "
                    f"numeric: {value!r}"
                )
            if name in last_counters and value < last_counters[name]:
                fail(
                    f"{path}: line {i + 1} counter {name!r} decreased "
                    f"{last_counters[name]} -> {value}"
                )
            last_counters[name] = value
        for name, value in snap["gauges"].items():
            if value is not None and (
                not isinstance(value, (int, float)) or isinstance(value, bool)
            ):
                fail(
                    f"{path}: line {i + 1} gauge {name!r} is not numeric "
                    f"or null: {value!r}"
                )
        last_seq, last_elapsed, last_dropped = seq, elapsed, dropped
    print(f"validate_obs: {path}: OK ({len(lines)} snapshots)")
    return len(lines)


def check_report(path: str) -> None:
    doc = load(path)
    if doc.get("schema") != REPORT_SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, want {REPORT_SCHEMA!r}")
    run = doc.get("run")
    if not isinstance(run, dict):
        fail(f"{path}: run block missing or not an object")
    for field in ("rows", "cols", "sweeps", "converged", "wall_s"):
        if field not in run:
            fail(f"{path}: run block lacks {field!r}")
    phases = doc.get("phases")
    if not isinstance(phases, list):
        fail(f"{path}: phases missing or not a list")
    for i, p in enumerate(phases):
        if not isinstance(p, dict):
            fail(f"{path}: phase {i} is not an object: {p!r}")
        for field in ("cat", "name", "total_s", "count", "frac_of_wall"):
            if field not in p:
                fail(f"{path}: phase {i} lacks {field!r}: {p}")
        if not isinstance(p["total_s"], (int, float)) \
                or isinstance(p["total_s"], bool):
            fail(f"{path}: phase {i} total_s is not numeric: "
                 f"{p['total_s']!r}")
    totals = [p["total_s"] for p in phases]
    if totals != sorted(totals, reverse=True):
        fail(f"{path}: phases are not sorted by descending total_s")
    checks = doc.get("cross_checks")
    if not isinstance(checks, dict):
        fail(f"{path}: cross_checks missing or not an object")
    for field in ("generator_busy_frac", "generator_is_bottleneck"):
        if field not in checks:
            fail(f"{path}: cross_checks lacks {field!r}")
    print(f"validate_obs: {path}: OK ({len(phases)} phases)")


def _numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_numerics_metrics(path: str) -> None:
    """Cross-checks the svd.num.* namespace inside a metrics document."""
    doc = load(path)
    by_name = {m.get("name"): m for m in doc.get("metrics", [])
               if isinstance(m, dict)}

    samples_m = by_name.get("svd.num.samples")
    if samples_m is None:
        fail(f"{path}: --numerics requires the svd.num.samples counter "
             f"(was the run made with probes enabled?)")
    samples = samples_m.get("value")
    if not _numeric(samples) or samples < 0:
        fail(f"{path}: svd.num.samples value malformed: {samples!r}")

    def counter_value(name: str) -> float:
        # Delta publishing never materialises a zero counter: absent = 0.
        m = by_name.get(name)
        if m is None:
            return 0.0
        if m.get("type") != "counter" or not _numeric(m.get("value")):
            fail(f"{path}: {name!r} is not a numeric counter: {m!r}")
        return m["value"]

    nonfinite = counter_value("svd.num.nonfinite.events")
    counter_value("svd.num.cancellation.events")
    counter_value("svd.num.divergence.events")

    # Histogram buckets, together with the non-finite rejects, must account
    # for every sampled pair.  Empty buckets are simply absent (delta
    # publishing), so scan a generous index range instead of stopping at the
    # first gap.
    hist = []
    for b in range(64):
        m = by_name.get(f"svd.num.angle.hist.{b}")
        if m is None:
            continue
        if not _numeric(m.get("value")) or m["value"] < 0:
            fail(f"{path}: angle bucket {b} malformed: {m!r}")
        hist.append(m["value"])
    if samples > 0 and samples > nonfinite and not hist:
        fail(f"{path}: svd.num.samples is {samples} but no "
             f"svd.num.angle.hist.* buckets were emitted")
    if sum(hist) + nonfinite != samples:
        fail(f"{path}: angle histogram sums to {sum(hist)} + {nonfinite} "
             f"non-finite != {samples} samples")

    for name in ("svd.num.angle.tiny_frac", "svd.num.angle.near_pi4_frac",
                 "svd.num.cancellation.frac"):
        m = by_name.get(name)
        if m is None:
            fail(f"{path}: --numerics requires gauge {name!r}")
        v = m.get("value")
        if not _numeric(v) or not 0.0 <= v <= 1.0:
            fail(f"{path}: {name!r} outside [0, 1]: {v!r}")

    stride = by_name.get("svd.num.stride", {}).get("value")
    if not _numeric(stride) or stride < 1:
        fail(f"{path}: svd.num.stride must be >= 1, got {stride!r}")
    cond = by_name.get("svd.num.cond.estimate", {}).get("value")
    if not _numeric(cond) or cond < 1.0:
        fail(f"{path}: svd.num.cond.estimate must be >= 1, got {cond!r}")

    # Finalize-time accuracy gauges and watchdog verdicts are optional
    # (value-free runs / quiet watchdog), but must be sane when present.
    for name in ("svd.num.finalize.v_orthogonality_drift",
                 "svd.num.finalize.backward_error"):
        if name in by_name:
            v = by_name[name].get("value")
            if not _numeric(v) or v < 0.0:
                fail(f"{path}: {name!r} must be non-negative: {v!r}")
    for name in ("obs.watchdog.divergence", "obs.watchdog.orthogonality"):
        if name in by_name:
            v = by_name[name].get("value")
            if v not in (0, 1, 0.0, 1.0):
                fail(f"{path}: verdict gauge {name!r} must be 0/1: {v!r}")
    print(f"validate_obs: {path}: numerics OK "
          f"({int(samples)} samples, {len(hist)} angle buckets)")


def check_numerics_report(path: str) -> None:
    """Validates the "numerics" section of an hjsvd.report.v1 document."""
    doc = load(path)
    num = doc.get("numerics")
    if not isinstance(num, dict):
        fail(f"{path}: --numerics requires a \"numerics\" report section "
             f"(was the run made with probes enabled?)")
    for field in ("samples", "stride", "nonfinite_events",
                  "cancellation_events", "divergence_events"):
        if not _numeric(num.get(field)) or num[field] < 0:
            fail(f"{path}: numerics.{field} malformed: {num.get(field)!r}")
    for field in ("cancellation_frac", "tiny_angle_frac", "near_pi4_frac"):
        v = num.get(field)
        if not _numeric(v) or not 0.0 <= v <= 1.0:
            fail(f"{path}: numerics.{field} outside [0, 1]: {v!r}")
    hist = num.get("angle_hist")
    if not isinstance(hist, list) or any(not _numeric(h) or h < 0
                                         for h in hist):
        fail(f"{path}: numerics.angle_hist malformed: {hist!r}")
    if sum(hist) + num["nonfinite_events"] != num["samples"]:
        fail(f"{path}: numerics.angle_hist sums to {sum(hist)} + "
             f"{num['nonfinite_events']} non-finite != {num['samples']} "
             f"samples")
    # Accuracy leaves use -1 as the not-recorded sentinel.
    for field in ("orthogonality_drift", "backward_error"):
        v = num.get(field)
        if not _numeric(v) or (v < 0.0 and v != -1.0):
            fail(f"{path}: numerics.{field} must be >= 0 or the -1 "
                 f"sentinel: {v!r}")
    for field in ("watchdog_divergence", "watchdog_orthogonality"):
        if not isinstance(num.get(field), bool):
            fail(f"{path}: numerics.{field} must be a boolean: "
                 f"{num.get(field)!r}")
    print(f"validate_obs: {path}: report numerics OK "
          f"({num['samples']} samples)")


def check_serve_metrics(path: str) -> None:
    """Cross-checks the serve.* namespace emitted by hjsvd_serve."""
    doc = load(path)
    by_name = {m.get("name"): m for m in doc.get("metrics", [])
               if isinstance(m, dict)}

    def counter_value(name: str, required: bool = False) -> float:
        m = by_name.get(name)
        if m is None:
            if required:
                fail(f"{path}: --serve requires the {name!r} counter "
                     f"(was this metrics file written by hjsvd_serve?)")
            return 0.0
        if m.get("type") != "counter" or not _numeric(m.get("value")):
            fail(f"{path}: {name!r} is not a numeric counter: {m!r}")
        return m["value"]

    requests = counter_value("serve.requests_total", required=True)
    admitted = counter_value("serve.admitted_total")
    overload = counter_value("serve.rejected.overload")
    bad_request = counter_value("serve.rejected.bad_request")
    expired = counter_value("serve.expired.deadline")
    replies_ok = counter_value("serve.replies_ok")
    replies_error = counter_value("serve.replies_error")
    waves = counter_value("serve.waves_total")

    # Admission is a partition: every request is admitted or rejected with
    # a typed reason, and every request gets exactly one reply.
    if requests != admitted + overload + bad_request:
        fail(f"{path}: serve.requests_total {requests} != admitted "
             f"{admitted} + overload {overload} + bad_request {bad_request}")
    if replies_ok + replies_error != requests:
        fail(f"{path}: replies_ok {replies_ok} + replies_error "
             f"{replies_error} != serve.requests_total {requests}")
    if expired > admitted:
        fail(f"{path}: serve.expired.deadline {expired} exceeds "
             f"admitted_total {admitted}")
    if replies_ok > 0 and waves < 1:
        fail(f"{path}: {replies_ok} ok replies but serve.waves_total is 0")

    wave_hist = by_name.get("serve.wave.size")
    if waves > 0:
        if wave_hist is None or wave_hist.get("type") != "histogram":
            fail(f"{path}: serve.waves_total is {waves} but the "
                 f"serve.wave.size histogram is missing")
        if wave_hist.get("count") != waves:
            fail(f"{path}: serve.wave.size count {wave_hist.get('count')} "
                 f"!= serve.waves_total {waves}")
        if wave_hist.get("min", 0) < 1:
            fail(f"{path}: serve.wave.size min below 1: {wave_hist!r}")
    lat_hist = by_name.get("serve.latency_ms")
    if replies_ok > 0:
        if lat_hist is None or lat_hist.get("count") != replies_ok:
            fail(f"{path}: serve.latency_ms histogram must hold one sample "
                 f"per ok reply ({replies_ok}): {lat_hist!r}")
    depth = by_name.get("serve.queue.depth")
    if admitted > 0:
        if depth is None or depth.get("type") != "series":
            fail(f"{path}: serve.queue.depth series missing with "
                 f"{admitted} admitted requests")
        if any(p[1] < 1 for p in depth.get("points", [])):
            fail(f"{path}: serve.queue.depth recorded below 1 (sampled "
                 f"after admission): {depth.get('points')!r}")
    for name in ("serve.workspace.reuse_total", "serve.workspace.alloc_total"):
        counter_value(name, required=True)
    for name in ("serve.latency_p50_ms", "serve.latency_p95_ms"):
        m = by_name.get(name)
        if m is None or m.get("type") != "gauge" or not _numeric(m.get("value")):
            fail(f"{path}: --serve requires the {name!r} gauge")
        if m["value"] < 0:
            fail(f"{path}: {name!r} is negative: {m['value']!r}")
    print(f"validate_obs: {path}: serve OK ({int(requests)} requests, "
          f"{int(replies_ok)} ok, {int(waves)} waves)")


def check_serve_report(path: str) -> None:
    """Validates the "serve" section of an hjsvd.report.v1 document."""
    doc = load(path)
    serve = doc.get("serve")
    if not isinstance(serve, dict):
        fail(f"{path}: --serve requires a \"serve\" report section "
             f"(was the metrics file written by hjsvd_serve?)")
    for field in ("requests_total", "admitted_total", "rejected_overload",
                  "rejected_bad_request", "expired_deadline", "replies_ok",
                  "replies_error", "waves_total", "workspace_reuse_total",
                  "workspace_alloc_total"):
        if not _numeric(serve.get(field)) or serve[field] < 0:
            fail(f"{path}: serve.{field} malformed: {serve.get(field)!r}")
    if serve["requests_total"] != (serve["admitted_total"]
                                   + serve["rejected_overload"]
                                   + serve["rejected_bad_request"]):
        fail(f"{path}: serve section admission counts do not partition "
             f"requests_total: {serve!r}")
    for field in ("latency_p50_ms", "latency_p95_ms"):
        v = serve.get(field)
        if not _numeric(v) or v < 0:
            fail(f"{path}: serve.{field} malformed: {v!r}")
    print(f"validate_obs: {path}: report serve OK "
          f"({serve['requests_total']} requests)")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="trace-event JSON to validate")
    ap.add_argument("--metrics", help="metrics JSON to validate")
    ap.add_argument(
        "--snapshots", help="live snapshot JSONL stream to validate"
    )
    ap.add_argument("--report", help="hjsvd_report JSON to validate")
    ap.add_argument(
        "--require-span",
        action="append",
        default=[],
        help="span name that must appear in the trace (repeatable)",
    )
    ap.add_argument(
        "--require-metric",
        action="append",
        default=[],
        help="metric name that must appear in the metrics (repeatable)",
    )
    ap.add_argument(
        "--numerics",
        action="store_true",
        help="additionally validate the svd.num.* probe namespace in "
             "--metrics and/or the numerics section in --report",
    )
    ap.add_argument(
        "--serve",
        action="store_true",
        help="additionally validate the serve.* namespace in --metrics "
             "and/or the serve section in --report",
    )
    args = ap.parse_args()
    if not args.trace and not args.metrics and not args.snapshots \
            and not args.report:
        ap.error("need --trace, --metrics, --snapshots and/or --report")
    if args.numerics and not args.metrics and not args.report:
        ap.error("--numerics needs --metrics and/or --report to inspect")
    if args.serve and not args.metrics and not args.report:
        ap.error("--serve needs --metrics and/or --report to inspect")
    if args.trace:
        check_trace(args.trace, args.require_span)
    if args.metrics:
        check_metrics(args.metrics, args.require_metric)
        if args.numerics:
            check_numerics_metrics(args.metrics)
        if args.serve:
            check_serve_metrics(args.metrics)
    if args.snapshots:
        check_snapshots(args.snapshots)
    if args.report:
        check_report(args.report)
        if args.numerics:
            check_numerics_report(args.report)
        if args.serve:
            check_serve_report(args.report)
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Unit tests for bench_gate.py and validate_obs.py (stdlib only).

Run directly (`python3 scripts/test_obs_scripts.py`) or via ctest
(registered as test_obs_scripts).  validate_obs.py reports failures by
calling sys.exit, so its checks run through subprocess; bench_gate's
command functions return exit codes and are exercised in-process.
"""
from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPTS_DIR = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, SCRIPTS_DIR)

import bench_gate  # noqa: E402


def _write_with_overrides(tmpdir: str, name: str, doc: dict,
                          overrides: dict) -> str:
    for dotted, value in overrides.items():
        node = doc
        parts = dotted.split(".")
        for part in parts[:-1]:
            node = node[int(part)] if part.isdigit() else node[part]
        last = parts[-1]
        node[int(last) if last.isdigit() else last] = value
    path = os.path.join(tmpdir, name)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f)
    return path


def make_bench(tmpdir: str, name: str, **overrides) -> str:
    """Write a minimal bench JSON modeled on BENCH_parallel_sweep.json."""
    doc = {
        "bench": "parallel_sweep",
        "manifest": {
            "tool": "bench_parallel_sweep",
            "config": "sizes=64 threads=1 reps=3",
            "git_sha": "deadbeef",
            "host_threads": 4,
            "schema_versions": {"trace": "hjsvd.trace.v2",
                                "metrics": "hjsvd.metrics.v1"},
        },
        "reps": 3,
        "sizes": [{"n": 64, "sequential_modified_s": 0.010,
                   "engines": [{"threads": 1, "modified_s": 0.008,
                                "bit_identical": True}]}],
        "batch": {"count": 24, "runs": [{"threads": 1, "seconds": 0.0067,
                                         "matrices_per_s": 3575.0,
                                         "bit_identical": True}]},
        "all_bit_identical": True,
    }
    return _write_with_overrides(tmpdir, name, doc, overrides)


def make_batch_sweep(tmpdir: str, name: str, **overrides) -> str:
    """Write a minimal bench JSON modeled on BENCH_batch_sweep.json."""
    doc = {
        "bench": "batch_sweep",
        "manifest": {
            "tool": "bench_batch_sweep",
            "config": "count=16 small-n=48 large-n=96 threads=1,2 reps=3 "
                      "split-threshold=0.25",
            "git_sha": "deadbeef",
            "host_threads": 4,
            "schema_versions": {"trace": "hjsvd.trace.v2",
                                "metrics": "hjsvd.metrics.v1"},
        },
        "hardware_threads": 4,
        "count": 17,
        "reps": 3,
        "runs": [
            {"threads": 1, "split": 0, "seconds": 0.82,
             "matrices_per_s": 20.7, "steals": 0, "nested_splits": 0,
             "helpers_granted": 0, "idle_fraction": 0.0,
             "bit_identical": True},
            {"threads": 2, "split": 0.25, "seconds": 0.49,
             "matrices_per_s": 34.7, "steals": 4, "nested_splits": 1,
             "helpers_granted": 1, "idle_fraction": 0.08,
             "bit_identical": True},
        ],
        "max_steals_multithread": 4,
        "all_bit_identical": True,
    }
    return _write_with_overrides(tmpdir, name, doc, overrides)


class BenchGateCompare(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)
        self.old = make_bench(self.tmp.name, "old.json")

    def compare(self, new_path: str, max_slowdown: float = 0.10) -> int:
        return bench_gate.cmd_compare(self.old, new_path, max_slowdown)

    def test_identical_runs_pass(self):
        new = make_bench(self.tmp.name, "new.json")
        self.assertEqual(self.compare(new), 0)

    def test_timing_slowdown_fails(self):
        new = make_bench(self.tmp.name, "new.json",
                         **{"sizes.0.engines.0.modified_s": 0.016})
        self.assertEqual(self.compare(new), 3)

    def test_timing_speedup_passes(self):
        new = make_bench(self.tmp.name, "new.json",
                         **{"sizes.0.engines.0.modified_s": 0.004})
        self.assertEqual(self.compare(new), 0)

    def test_throughput_drop_fails(self):
        # "_per_s" leaves are higher-is-better: a halved throughput must
        # trip the gate even though the key also ends in "_s".
        new = make_bench(self.tmp.name, "new.json",
                         **{"batch.runs.0.matrices_per_s": 1787.5})
        self.assertEqual(self.compare(new), 3)

    def test_throughput_gain_passes(self):
        # A >10% throughput improvement is good news, not a regression.
        new = make_bench(self.tmp.name, "new.json",
                         **{"batch.runs.0.matrices_per_s": 7150.0})
        self.assertEqual(self.compare(new), 0)

    def test_invariant_flip_fails(self):
        new = make_bench(self.tmp.name, "new.json",
                         **{"batch.runs.0.bit_identical": False})
        self.assertEqual(self.compare(new), 3)

    def test_different_bench_refused(self):
        new = make_bench(self.tmp.name, "new.json", bench="other_bench")
        self.assertEqual(self.compare(new), 2)

    def test_schema_version_mismatch_refused(self):
        new = make_bench(
            self.tmp.name, "new.json",
            **{"manifest.schema_versions": {"trace": "hjsvd.trace.v99"}})
        self.assertEqual(self.compare(new), 2)

    def test_config_mismatch_refused(self):
        new = make_bench(self.tmp.name, "new.json",
                         **{"manifest.config": "sizes=128 threads=1 reps=3"})
        self.assertEqual(self.compare(new), 2)

    def test_identity_leaf_mismatch_refused(self):
        # Same config string but different recorded workload shape: the
        # positional leaf match would compare n=64 against n=128 timings.
        new = make_bench(self.tmp.name, "new.json", **{"sizes.0.n": 128})
        self.assertEqual(self.compare(new), 2)


class BenchGateAccuracy(unittest.TestCase):
    """Accuracy leaves (*_error / *_drift) are higher-is-worse gates."""

    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def make(self, name: str, backward=2.5e-10, drift=4.0e-15) -> str:
        return make_bench(self.tmp.name, name,
                          **{"sizes.0.backward_error": backward,
                             "sizes.0.orthogonality_drift": drift})

    def compare(self, old: str, new: str, **kwargs) -> int:
        return bench_gate.cmd_compare(old, new, 0.10, **kwargs)

    def test_identical_accuracy_passes(self):
        old = self.make("old.json")
        new = self.make("new.json")
        self.assertEqual(self.compare(old, new), 0)

    def test_backward_error_growth_fails(self):
        old = self.make("old.json")
        new = self.make("new.json", backward=1.0e-6)
        self.assertEqual(self.compare(old, new), 3)

    def test_drift_growth_fails(self):
        old = self.make("old.json")
        new = self.make("new.json", drift=1.0e-8)
        self.assertEqual(self.compare(old, new), 3)

    def test_improvement_passes(self):
        old = self.make("old.json")
        new = self.make("new.json", backward=1.0e-12, drift=1.0e-16)
        self.assertEqual(self.compare(old, new), 0)

    def test_noise_floor_absorbs_rounding_level_growth(self):
        # 10x relative growth, but both values sit below the absolute
        # noise floor: rounding jitter, not a regression.
        old = self.make("old.json", backward=1.0e-14)
        new = self.make("new.json", backward=1.0e-13)
        self.assertEqual(self.compare(old, new), 0)

    def test_sentinel_skips_comparison(self):
        # -1 means "not recorded on that side": never a finding.
        old = self.make("old.json", backward=-1.0)
        new = self.make("new.json", backward=1.0e-3)
        self.assertEqual(self.compare(old, new), 0)

    def test_tighter_threshold_trips(self):
        old = self.make("old.json", backward=1.0e-9)
        new = self.make("new.json", backward=1.3e-9)
        self.assertEqual(self.compare(old, new), 0)  # +30% < default 50%
        self.assertEqual(
            self.compare(old, new, max_accuracy_regress=0.10,
                         accuracy_noise_floor=1e-15), 3)


class BenchGateCheck(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def test_green_file_passes(self):
        path = make_bench(self.tmp.name, "b.json")
        self.assertEqual(bench_gate.cmd_check([path]), 0)

    def test_missing_manifest_fails(self):
        path = os.path.join(self.tmp.name, "b.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump({"bench": "x", "total_s": 1.0}, f)
        self.assertEqual(bench_gate.cmd_check([path]), 1)

    def test_red_invariant_fails(self):
        path = make_bench(self.tmp.name, "b.json", all_bit_identical=False)
        self.assertEqual(bench_gate.cmd_check([path]), 1)


class BenchGateBatchSweep(unittest.TestCase):
    """BENCH_batch_sweep.json rides the same gate as the other benches."""

    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)
        self.old = make_batch_sweep(self.tmp.name, "old.json")

    def compare(self, new_path: str) -> int:
        return bench_gate.cmd_compare(self.old, new_path, 0.10)

    def test_green_file_passes_check_and_self_compare(self):
        self.assertEqual(bench_gate.cmd_check([self.old]), 0)
        new = make_batch_sweep(self.tmp.name, "new.json")
        self.assertEqual(self.compare(new), 0)

    def test_injected_throughput_regression_trips(self):
        # Halving a run's matrices_per_s is the canonical injected
        # regression (the CI job performs the same edit with jq).
        new = make_batch_sweep(self.tmp.name, "new.json",
                               **{"runs.1.matrices_per_s": 17.35})
        self.assertEqual(self.compare(new), 3)

    def test_scheduler_counters_are_not_gated(self):
        # Steal/split counts are timing-dependent scheduler behaviour, not
        # performance: wild swings must not trip the gate.
        new = make_batch_sweep(self.tmp.name, "new.json",
                               **{"runs.1.steals": 40,
                                  "runs.1.nested_splits": 0,
                                  "runs.1.idle_fraction": 0.9})
        self.assertEqual(self.compare(new), 0)

    def test_thread_count_mismatch_refused(self):
        new = make_batch_sweep(self.tmp.name, "new.json",
                               **{"runs.1.threads": 8})
        self.assertEqual(self.compare(new), 2)

    def test_bit_identity_flip_fails_check(self):
        path = make_batch_sweep(self.tmp.name, "b.json",
                                **{"runs.0.bit_identical": False,
                                   "all_bit_identical": False})
        self.assertEqual(bench_gate.cmd_check([path]), 1)


class ValidateObsReport(unittest.TestCase):
    """Malformed reports must fail cleanly (exit 1), never traceback."""

    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def run_validate(self, doc) -> subprocess.CompletedProcess:
        path = os.path.join(self.tmp.name, "report.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return subprocess.run(
            [sys.executable, os.path.join(SCRIPTS_DIR, "validate_obs.py"),
             "--report", path],
            capture_output=True, text=True)

    @staticmethod
    def report(phases):
        return {
            "schema": "hjsvd.report.v1",
            "run": {"rows": 64, "cols": 32, "sweeps": 2, "converged": True,
                    "wall_s": 0.5},
            "phases": phases,
            "cross_checks": {"generator_busy_frac": 0.02,
                             "generator_is_bottleneck": False},
        }

    @staticmethod
    def phase(**overrides):
        p = {"cat": "svd", "name": "sweep", "total_s": 0.4, "count": 2,
             "frac_of_wall": 0.8}
        p.update(overrides)
        return p

    def assert_clean_fail(self, proc):
        self.assertEqual(proc.returncode, 1, proc.stderr)
        self.assertIn("validate_obs: FAIL", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_well_formed_report_passes(self):
        proc = self.run_validate(self.report(
            [self.phase(), self.phase(name="update", total_s=0.2)]))
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_scalar_phase_fails_cleanly(self):
        self.assert_clean_fail(self.run_validate(self.report(["oops"])))

    def test_string_total_s_fails_cleanly(self):
        self.assert_clean_fail(
            self.run_validate(self.report([self.phase(total_s="0.4")])))

    def test_unsorted_phases_fail(self):
        proc = self.run_validate(self.report(
            [self.phase(total_s=0.1), self.phase(name="update", total_s=0.2)]))
        self.assert_clean_fail(proc)


class ValidateObsTraceV3(unittest.TestCase):
    """Flight-recorder (trace.v3) documents must carry ring metadata."""

    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def run_validate(self, doc) -> subprocess.CompletedProcess:
        path = os.path.join(self.tmp.name, "trace.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return subprocess.run(
            [sys.executable, os.path.join(SCRIPTS_DIR, "validate_obs.py"),
             "--trace", path],
            capture_output=True, text=True)

    @staticmethod
    def trace_v3(**other_overrides):
        other = {
            "software_pid": 1,
            "flight_recorder": True,
            "ring_capacity_events": 4096,
            "dropped_events_total": 7,
            "dropped_events_by_tid": [3, 4],
        }
        other.update(other_overrides)
        return {
            "schema": "hjsvd.trace.v3",
            "otherData": other,
            "traceEvents": [
                {"ph": "X", "pid": 1, "tid": 0, "ts": 0.0, "dur": 5.0,
                 "name": "sweep", "cat": "svd"},
                {"ph": "C", "pid": 1, "tid": 0, "ts": 1.0,
                 "name": "svd.rotations", "args": {"value": 3}},
            ],
        }

    def assert_clean_fail(self, proc):
        self.assertEqual(proc.returncode, 1, proc.stderr)
        self.assertIn("validate_obs: FAIL", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_well_formed_v3_passes(self):
        proc = self.run_validate(self.trace_v3())
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_v3_without_flight_recorder_flag_fails(self):
        self.assert_clean_fail(
            self.run_validate(self.trace_v3(flight_recorder=False)))

    def test_v3_with_zero_capacity_fails(self):
        self.assert_clean_fail(
            self.run_validate(self.trace_v3(ring_capacity_events=0)))

    def test_v3_drop_sum_mismatch_fails(self):
        self.assert_clean_fail(
            self.run_validate(self.trace_v3(dropped_events_by_tid=[1, 2])))

    def test_unknown_schema_still_refused(self):
        doc = self.trace_v3()
        doc["schema"] = "hjsvd.trace.v99"
        self.assert_clean_fail(self.run_validate(doc))


class ValidateObsSnapshots(unittest.TestCase):
    """Snapshot JSONL streams are validated line by line."""

    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def run_validate(self, lines) -> subprocess.CompletedProcess:
        path = os.path.join(self.tmp.name, "snapshots.jsonl")
        with open(path, "w", encoding="utf-8") as f:
            for line in lines:
                f.write(line if isinstance(line, str) else json.dumps(line))
                f.write("\n")
        return subprocess.run(
            [sys.executable, os.path.join(SCRIPTS_DIR, "validate_obs.py"),
             "--snapshots", path],
            capture_output=True, text=True)

    @staticmethod
    def snap(seq, elapsed_us, **overrides):
        s = {
            "schema": "hjsvd.metrics-snapshots.v1",
            "seq": seq,
            "elapsed_us": elapsed_us,
            "dropped_events": 0,
            "counters": {"svd.rotations.applied": 10 * (seq + 1)},
            "gauges": {"svd.matrix.n": 64},
        }
        s.update(overrides)
        return s

    def assert_clean_fail(self, proc):
        self.assertEqual(proc.returncode, 1, proc.stderr)
        self.assertIn("validate_obs: FAIL", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_well_formed_stream_passes(self):
        proc = self.run_validate(
            [self.snap(0, 100.0), self.snap(1, 200.0), self.snap(2, 300.0)])
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_empty_stream_fails(self):
        self.assert_clean_fail(self.run_validate([]))

    def test_non_json_line_fails_cleanly(self):
        self.assert_clean_fail(
            self.run_validate([self.snap(0, 100.0), "{not json"]))

    def test_wrong_schema_fails(self):
        self.assert_clean_fail(
            self.run_validate([self.snap(0, 100.0, schema="nope.v1")]))

    def test_non_increasing_seq_fails(self):
        self.assert_clean_fail(
            self.run_validate([self.snap(1, 100.0), self.snap(1, 200.0)]))

    def test_decreasing_elapsed_fails(self):
        self.assert_clean_fail(
            self.run_validate([self.snap(0, 200.0), self.snap(1, 100.0)]))

    def test_decreasing_counter_fails(self):
        good = self.snap(0, 100.0)
        bad = self.snap(1, 200.0)
        bad["counters"]["svd.rotations.applied"] = 1
        self.assert_clean_fail(self.run_validate([good, bad]))

    def test_decreasing_dropped_events_fails(self):
        self.assert_clean_fail(self.run_validate(
            [self.snap(0, 100.0, dropped_events=5),
             self.snap(1, 200.0, dropped_events=4)]))


class ValidateObsNumerics(unittest.TestCase):
    """--numerics cross-checks the svd.num.* namespace and report section."""

    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def run_validate(self, *extra_args) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, os.path.join(SCRIPTS_DIR, "validate_obs.py"),
             *extra_args],
            capture_output=True, text=True)

    def write_metrics(self, overrides=None, drop=()):
        metrics = {
            "svd.num.samples": ("counter", "pairs", 16),
            "svd.num.nonfinite.events": ("counter", "events", 1),
            "svd.num.cancellation.events": ("counter", "events", 2),
            "svd.num.angle.hist.0": ("counter", "pairs", 10),
            "svd.num.angle.hist.7": ("counter", "pairs", 5),
            "svd.num.angle.tiny_frac": ("gauge", "1", 0.5),
            "svd.num.angle.near_pi4_frac": ("gauge", "1", 0.33),
            "svd.num.cancellation.frac": ("gauge", "1", 0.13),
            "svd.num.stride": ("gauge", "pairs", 8),
            "svd.num.cond.estimate": ("gauge", "1", 1.0e6),
            "svd.num.finalize.backward_error": ("gauge", "1", 3.0e-10),
            "obs.watchdog.divergence": ("gauge", "bool", 0),
        }
        metrics.update(overrides or {})
        for name in drop:
            del metrics[name]
        doc = {"schema": "hjsvd.metrics.v1",
               "metrics": [{"name": n, "type": t, "unit": u, "value": v}
                           for n, (t, u, v) in sorted(metrics.items())]}
        path = os.path.join(self.tmp.name, "metrics.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return path

    def write_report(self, num_overrides=None, drop_numerics=False):
        numerics = {
            "samples": 16, "stride": 8, "nonfinite_events": 1,
            "cancellation_events": 2, "divergence_events": 0,
            "cancellation_frac": 0.13, "tiny_angle_frac": 0.5,
            "near_pi4_frac": 0.33, "angle_hist": [10, 0, 0, 0, 0, 0, 0, 5],
            "cond_estimate": 1.0e6, "orthogonality_drift": 4.0e-15,
            "backward_error": 3.0e-10, "watchdog_divergence": False,
            "watchdog_orthogonality": False,
        }
        numerics.update(num_overrides or {})
        doc = {
            "schema": "hjsvd.report.v1",
            "run": {"rows": 64, "cols": 32, "sweeps": 2, "converged": True,
                    "wall_s": 0.5},
            "phases": [{"cat": "svd", "name": "sweep", "total_s": 0.4,
                        "count": 2, "frac_of_wall": 0.8}],
            "cross_checks": {"generator_busy_frac": 0.02,
                             "generator_is_bottleneck": False},
        }
        if not drop_numerics:
            doc["numerics"] = numerics
        path = os.path.join(self.tmp.name, "report.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return path

    def assert_clean_fail(self, proc):
        self.assertEqual(proc.returncode, 1, proc.stderr)
        self.assertIn("validate_obs: FAIL", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_well_formed_metrics_pass(self):
        proc = self.run_validate("--metrics", self.write_metrics(),
                                 "--numerics")
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_metrics_without_probes_fail(self):
        path = self.write_metrics(drop=("svd.num.samples",))
        self.assert_clean_fail(
            self.run_validate("--metrics", path, "--numerics"))

    def test_plain_mode_ignores_numerics_namespace(self):
        # Without --numerics, a probe-free metrics file is fine.
        path = self.write_metrics(drop=("svd.num.samples",))
        proc = self.run_validate("--metrics", path)
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_histogram_sum_mismatch_fails(self):
        path = self.write_metrics(
            {"svd.num.angle.hist.0": ("counter", "pairs", 9)})
        self.assert_clean_fail(
            self.run_validate("--metrics", path, "--numerics"))

    def test_fraction_out_of_range_fails(self):
        path = self.write_metrics(
            {"svd.num.angle.tiny_frac": ("gauge", "1", 1.5)})
        self.assert_clean_fail(
            self.run_validate("--metrics", path, "--numerics"))

    def test_zero_stride_fails(self):
        path = self.write_metrics({"svd.num.stride": ("gauge", "pairs", 0)})
        self.assert_clean_fail(
            self.run_validate("--metrics", path, "--numerics"))

    def test_non_binary_verdict_gauge_fails(self):
        path = self.write_metrics(
            {"obs.watchdog.divergence": ("gauge", "bool", 2)})
        self.assert_clean_fail(
            self.run_validate("--metrics", path, "--numerics"))

    def test_well_formed_report_passes(self):
        proc = self.run_validate("--report", self.write_report(),
                                 "--numerics")
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_report_without_numerics_section_fails(self):
        path = self.write_report(drop_numerics=True)
        self.assert_clean_fail(
            self.run_validate("--report", path, "--numerics"))

    def test_report_sentinel_accuracy_leaves_pass(self):
        path = self.write_report({"orthogonality_drift": -1.0,
                                  "backward_error": -1.0})
        proc = self.run_validate("--report", path, "--numerics")
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_report_negative_accuracy_leaf_fails(self):
        path = self.write_report({"backward_error": -0.5})
        self.assert_clean_fail(
            self.run_validate("--report", path, "--numerics"))

    def test_report_non_boolean_verdict_fails(self):
        path = self.write_report({"watchdog_divergence": 1})
        self.assert_clean_fail(
            self.run_validate("--report", path, "--numerics"))

    def test_numerics_without_inputs_is_usage_error(self):
        proc = self.run_validate("--numerics", "--snapshots",
                                 os.devnull)
        self.assertEqual(proc.returncode, 2, proc.stderr)


if __name__ == "__main__":
    unittest.main()

#!/usr/bin/env bash
# One-shot reproduction: build, test, and regenerate every paper table and
# figure at full paper scale, collecting CSVs under results/.
#
#   scripts/reproduce.sh [--quick]
#
# --quick uses the fast default sizes (seconds per figure); the full run
# includes n = 2048 sweeps and takes tens of minutes on one core.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
B=build/bench

run() {  # run <name> <binary> [args...]
  local name=$1; shift
  echo "== $name =="
  "$@" --csv "results/$name.csv" | tee "results/$name.txt"
}

run table1 "$B/bench_table1_exec_time"
"$B/bench_table2_resources" | tee results/table2.txt

if [[ $QUICK -eq 1 ]]; then
  run fig7 "$B/bench_fig7_square"
  run fig8 "$B/bench_fig8_rect"
  run fig9 "$B/bench_fig9_speedup"
  run fig10 "$B/bench_fig10_convergence"
  run fig11 "$B/bench_fig11_convergence_rect"
else
  run fig7 "$B/bench_fig7_square" --sizes 128,256,512,1024,2048
  run fig8 "$B/bench_fig8_rect"
  run fig9 "$B/bench_fig9_speedup"
  run fig10 "$B/bench_fig10_convergence" --sizes 128,256,512,1024,2048
  run fig11 "$B/bench_fig11_convergence_rect" --cols 1024 --rows 256,512,1024,2048
fi

for a in dcache ordering io fixedpoint cordic threshold block; do
  "$B/bench_ablation_$a" | tee "results/ablation_$a.txt"
done
"$B/bench_systolic_comparison" | tee results/systolic.txt
"$B/bench_scaling_multiengine" | tee results/multiengine.txt
"$B/bench_scaling_device"      | tee results/device_scaling.txt

echo "All outputs under results/."

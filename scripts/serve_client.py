#!/usr/bin/env python3
"""Reference client and test driver for the hjsvd_serve daemon.

Speaks the hjsvd.serve.v1 newline-delimited JSON protocol over the
daemon's stdio transport: spawns the server, writes one request frame per
line, closes stdin, and collects one reply line per request.  Pure
standard library -- usable from CI, the smoke tests, and by hand:

    # 12 deterministic requests, assert they all succeed
    python3 scripts/serve_client.py --serve build/tools/hjsvd_serve \\
        --requests 12 --expect-ok 12

    # bit-identity across thread counts: dump replies, then compare
    python3 scripts/serve_client.py --serve ... --threads 1 --dump one.json
    python3 scripts/serve_client.py --serve ... --threads 4 --compare one.json

    # deterministic overload drill: hold dispatch until EOF so exactly
    # the requests beyond --queue-capacity are rejected
    python3 scripts/serve_client.py --serve ... --requests 10 \\
        --server-arg=--queue-capacity=4 --server-arg=--hold-until-eof \\
        --expect-ok 4 --expect-overload 6

Exit status: 0 when every expectation holds, 1 otherwise.
"""

import argparse
import json
import subprocess
import sys

SCHEMA = "hjsvd.serve.v1"


def lcg(seed):
    """Deterministic 64-bit LCG (same constants as MMIX) -> [0, 1)."""
    state = seed & 0xFFFFFFFFFFFFFFFF
    while True:
        state = (state * 6364136223846793005 + 1442695040888963407) & 0xFFFFFFFFFFFFFFFF
        yield (state >> 11) / float(1 << 53)


def make_requests(count, rows, cols, seed, method, deadline_ms, compute_v):
    rng = lcg(seed)
    frames = []
    for k in range(count):
        data = [2.0 * next(rng) - 1.0 for _ in range(rows * cols)]
        frame = {
            "schema": SCHEMA,
            "id": "req-%03d" % k,
            "rows": rows,
            "cols": cols,
            "data": data,
        }
        if method:
            frame["method"] = method
        if deadline_ms > 0:
            frame["deadline_ms"] = deadline_ms
        if compute_v:
            frame["compute_v"] = True
        frames.append(frame)
    return frames


def run_session(serve, server_args, frames, extra_lines=()):
    """Feeds frames (plus raw extra lines) to one server run; returns the
    parsed replies keyed by id and the raw reply lines."""
    payload = "".join(json.dumps(f, separators=(",", ":")) + "\n" for f in frames)
    payload += "".join(line + "\n" for line in extra_lines)
    proc = subprocess.run(
        [serve] + server_args,
        input=payload.encode(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        timeout=600,
    )
    if proc.returncode != 0:
        sys.stderr.write("server exited %d\n%s" % (proc.returncode, proc.stderr.decode()))
        sys.exit(1)
    lines = [l for l in proc.stdout.decode().splitlines() if l.strip()]
    replies = {}
    for line in lines:
        reply = json.loads(line)
        if reply.get("schema") != SCHEMA:
            sys.stderr.write("reply with wrong schema: %s\n" % line[:200])
            sys.exit(1)
        rid = reply.get("id", "")
        if rid in replies:
            sys.stderr.write("duplicate reply for id %s\n" % rid)
            sys.exit(1)
        replies[rid] = reply
    return replies, lines


def sigma_signature(replies):
    """Exact reply payloads of the ok replies, keyed by id -- the 17-digit
    wire format makes string equality the same as bitwise equality."""
    sig = {}
    for rid, reply in sorted(replies.items()):
        if reply.get("status") == "ok":
            entry = {"sigma": reply["sigma"]}
            if "v" in reply:
                entry["v"] = reply["v"]
            if "u" in reply:
                entry["u"] = reply["u"]
            sig[rid] = entry
    return sig


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--serve", required=True, help="path to the hjsvd_serve binary")
    ap.add_argument("--requests", type=int, default=8)
    ap.add_argument("--rows", type=int, default=12)
    ap.add_argument("--cols", type=int, default=8)
    ap.add_argument("--seed", type=int, default=42)
    ap.add_argument("--method", default="", help="method token for every request")
    ap.add_argument("--threads", type=int, default=0, help="server --threads (0: omit)")
    ap.add_argument("--deadline-ms", type=float, default=0.0)
    ap.add_argument("--compute-v", action="store_true")
    ap.add_argument("--server-arg", action="append", default=[],
                    help="extra argument passed through to the server "
                         "(repeatable; '=' form for flag values)")
    ap.add_argument("--raw-line", action="append", default=[],
                    help="verbatim extra frame line (malformed-input tests)")
    ap.add_argument("--expect-ok", type=int, default=-1)
    ap.add_argument("--expect-overload", type=int, default=-1)
    ap.add_argument("--expect-bad-request", type=int, default=-1)
    ap.add_argument("--expect-deadline-expired", type=int, default=-1)
    ap.add_argument("--dump", default="", help="write ok-reply signatures (JSON) here")
    ap.add_argument("--compare", default="",
                    help="assert ok-reply signatures equal this earlier --dump")
    args = ap.parse_args()

    server_args = []
    if args.threads > 0:
        server_args += ["--threads", str(args.threads)]
    for extra in args.server_arg:
        server_args += extra.split("=", 1) if extra.startswith("--") and "=" in extra else [extra]

    frames = make_requests(args.requests, args.rows, args.cols, args.seed,
                           args.method, args.deadline_ms, args.compute_v)
    replies, _ = run_session(args.serve, server_args, frames, args.raw_line)

    by_status = {"ok": 0}
    by_code = {}
    for reply in replies.values():
        if reply.get("status") == "ok":
            by_status["ok"] += 1
        else:
            code = reply.get("code", "?")
            by_code[code] = by_code.get(code, 0) + 1
    total = len(replies)
    print("replies=%d ok=%d errors=%s" % (total, by_status["ok"], by_code or "{}"))

    failures = []
    expected_total = args.requests + len(args.raw_line)
    if total != expected_total:
        failures.append("expected %d replies, got %d" % (expected_total, total))
    checks = [
        ("ok replies", args.expect_ok, by_status["ok"]),
        ("overload rejections", args.expect_overload,
         by_code.get("rejected:overload", 0)),
        ("bad_request replies", args.expect_bad_request,
         by_code.get("bad_request", 0)),
        ("deadline_expired replies", args.expect_deadline_expired,
         by_code.get("deadline_expired", 0)),
    ]
    for label, expected, actual in checks:
        if expected >= 0 and actual != expected:
            failures.append("expected %d %s, got %d" % (expected, label, actual))

    sig = sigma_signature(replies)
    if args.dump:
        with open(args.dump, "w") as f:
            json.dump(sig, f, indent=1, sort_keys=True)
    if args.compare:
        with open(args.compare) as f:
            baseline = json.load(f)
        if sig != baseline:
            diff = [rid for rid in set(sig) | set(baseline)
                    if sig.get(rid) != baseline.get(rid)]
            failures.append("replies differ from %s for ids: %s"
                            % (args.compare, ", ".join(sorted(diff)[:5])))

    for failure in failures:
        sys.stderr.write("FAIL: %s\n" % failure)
    if failures:
        return 1
    print("serve_client: all expectations hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Ablation: block one-sided Jacobi vs the flat plain algorithm.
//
// Blocking keeps a 2b-column working set hot — the software analogue of the
// paper's BRAM-resident covariance blocks (Section VI.A's 256-column
// on-chip limit).  Reports wall time and sweeps-to-converge across block
// sizes.
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "reportgen/runner.hpp"
#include "svd/block_hestenes.hpp"
#include "svd/plain_hestenes.hpp"

using namespace hjsvd;

int main(int argc, char** argv) {
  Cli cli("Ablation: blocked vs flat one-sided Jacobi");
  cli.add_option("rows", "384", "matrix rows");
  cli.add_option("cols", "256", "matrix columns");
  cli.add_option("blocks", "16,32,64,128", "block sizes to try");
  cli.parse(argc, argv);
  const auto m = static_cast<std::size_t>(cli.get_int("rows"));
  const auto n = static_cast<std::size_t>(cli.get_int("cols"));
  const auto blocks = cli.get_int_list("blocks");

  const Matrix a = report::experiment_matrix(m, n);
  std::cout << "== Ablation: blocking, " << m << " x " << n << " ==\n\n";

  AsciiTable t({"variant", "sweeps to 1e-12", "time", "converged"});
  {
    HestenesConfig cfg;
    cfg.max_sweeps = 30;
    cfg.tolerance = 1e-12;
    Timer timer;
    const SvdResult r = plain_hestenes_svd(a, cfg);
    t.add_row({"flat plain Jacobi", std::to_string(r.sweeps),
               format_duration(timer.seconds()), r.converged ? "yes" : "NO"});
  }
  for (auto b : blocks) {
    BlockHestenesConfig cfg;
    cfg.block_size = static_cast<std::size_t>(b);
    cfg.max_sweeps = 30;
    cfg.tolerance = 1e-12;
    Timer timer;
    const SvdResult r = block_hestenes_svd(a, cfg);
    t.add_row({"blocked, b = " + std::to_string(b), std::to_string(r.sweeps),
               format_duration(timer.seconds()), r.converged ? "yes" : "NO"});
  }
  std::cout << t.to_string()
            << "\nNote: a block-pair visit fully orthogonalizes its 2b "
               "columns, so block sweeps do more work than flat sweeps; the "
               "interesting outputs are total time (locality) and the "
               "block-size sensitivity — small working sets mirror the "
               "paper's on-chip covariance limit.\n";
  return 0;
}

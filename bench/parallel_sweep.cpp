// Thread-scaling benchmark for the parallel sweep engines and svd_batch().
//
// Measures, per matrix size and thread count, the wall-clock time of the
// block-partitioned modified (Gram-rotating) engine and the pair-parallel
// plain engine against the sequential round-robin implementations, and the
// throughput of svd_batch() over a mixed batch.  Every parallel run is
// checked bit-for-bit against its sequential reference — speedup numbers are
// only meaningful if the determinism contract holds.
//
// Results are written as JSON (default BENCH_parallel_sweep.json) so runs on
// different hosts can be compared; on a single-core host the speedups are
// expected to hover around 1.0x.  A second section compares the blocked
// engine against the param-FIFO pipelined engine at larger sizes and writes
// its results to a separate file (default BENCH_pipelined_sweep.json).
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "api/svd.hpp"
#include "common/cli.hpp"
#include "obs/guardrail.hpp"
#include "obs/live.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/numerics.hpp"
#include "obs/trace.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "fp/softfloat.hpp"
#include "linalg/generate.hpp"
#include "svd/hestenes.hpp"
#include "svd/parallel_sweep.hpp"
#include "svd/plain_hestenes.hpp"

using namespace hjsvd;

namespace {

bool values_bit_identical(const SvdResult& a, const SvdResult& b) {
  if (a.singular_values.size() != b.singular_values.size()) return false;
  for (std::size_t i = 0; i < a.singular_values.size(); ++i)
    if (fp::to_bits(a.singular_values[i]) != fp::to_bits(b.singular_values[i]))
      return false;
  return true;
}

template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

std::string fmt(double x) {
  std::ostringstream os;
  os.precision(6);
  os << x;
  return os.str();
}

// Provenance block shared by every JSON this binary writes; bench_gate.py
// refuses to compare files whose manifests disagree on schema versions.
std::string manifest(const std::string& config) {
  obs::RunManifest m;
  m.tool = "bench_parallel_sweep";
  m.config = config;
  return obs::manifest_json(m);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("Thread scaling of the parallel sweep engines and svd_batch");
  cli.add_option("sizes", "64,128,256", "square matrix sizes");
  cli.add_option("threads", "1,2,4", "thread counts to benchmark");
  cli.add_option("reps", "3", "repetitions per timing (best-of)");
  cli.add_option("batch", "24", "number of matrices in the svd_batch run");
  cli.add_option("batch-rows", "48", "rows of each batch matrix");
  cli.add_option("batch-cols", "32", "cols of each batch matrix");
  cli.add_option("out", "BENCH_parallel_sweep.json", "JSON output path");
  cli.add_option("pipelined-sizes", "256,512",
                 "square sizes for the blocked-vs-pipelined comparison");
  cli.add_option("queue-depth", "8",
                 "parameter-queue depth of the pipelined engine");
  cli.add_option("pipelined-out", "BENCH_pipelined_sweep.json",
                 "JSON output path of the blocked-vs-pipelined comparison");
  // Mid-range sizes on purpose: recording sites fire per round, so events
  // per second — the thing the guardrail bounds — peak at smaller n, but
  // below ~0.1 s/run fixed recorder setup dominates, and multi-second runs
  // mostly measure background host load rather than overhead.
  cli.add_option("obs-sizes", "256,384",
                 "square sizes for the observability-overhead guardrail");
  cli.add_option("obs-reps", "9",
                 "paired repetitions of the overhead guardrail (median)");
  cli.add_option("obs-out", "BENCH_obs_overhead.json",
                 "JSON output path of the observability-overhead section");
  cli.parse(argc, argv);
  const auto sizes = cli.get_int_list("sizes");
  const auto threads = cli.get_int_list("threads");
  const int reps = static_cast<int>(cli.get_int("reps"));

#ifdef _OPENMP
  const int hw_threads = omp_get_max_threads();
#else
  const int hw_threads = 1;
#endif
  std::cout << "== Parallel sweep engine scaling ==\n"
            << "hardware threads available: " << hw_threads << "\n\n";

  HestenesConfig cfg;
  cfg.ordering = Ordering::kRoundRobin;

  std::ostringstream json;
  json << "{\n  \"bench\": \"parallel_sweep\",\n"
       << "  \"manifest\": "
       << manifest("sizes=" + cli.get("sizes") + " threads=" +
                   cli.get("threads") + " reps=" + cli.get("reps"))
       << ",\n"
       << "  \"hardware_threads\": " << hw_threads << ",\n"
       << "  \"reps\": " << reps << ",\n  \"sizes\": [\n";

  std::vector<std::string> headers{"n", "seq modified (s)"};
  for (auto t : threads)
    headers.push_back("t=" + std::to_string(t) + " speedup");
  AsciiTable table(headers);
  table.set_caption(
      "Modified-engine speedup vs sequential (bit-identical checked):");

  bool all_identical = true;
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const auto n = static_cast<std::size_t>(sizes[si]);
    Rng rng(4200 + static_cast<std::uint64_t>(n));
    const Matrix a = random_gaussian(n, n, rng);

    SvdResult seq_mod, seq_plain;
    const double t_seq_mod =
        best_of(reps, [&] { seq_mod = modified_hestenes_svd(a, cfg); });
    const double t_seq_plain =
        best_of(reps, [&] { seq_plain = plain_hestenes_svd(a, cfg); });

    json << "    {\"n\": " << n << ", \"sequential_modified_s\": "
         << fmt(t_seq_mod) << ", \"sequential_plain_s\": " << fmt(t_seq_plain)
         << ", \"engines\": [";
    std::vector<std::string> row{std::to_string(n), fmt(t_seq_mod)};
    for (std::size_t ti = 0; ti < threads.size(); ++ti) {
      ParallelSweepConfig par;
      par.threads = static_cast<std::size_t>(threads[ti]);
      SvdResult par_mod, par_plain;
      const double t_mod = best_of(
          reps, [&] { par_mod = parallel_modified_hestenes_svd(a, cfg, par); });
      const double t_plain = best_of(
          reps, [&] { par_plain = parallel_plain_hestenes_svd(a, cfg, par); });
      const bool ok = values_bit_identical(par_mod, seq_mod) &&
                      values_bit_identical(par_plain, seq_plain);
      all_identical = all_identical && ok;
      json << (ti ? ", " : "") << "{\"threads\": " << threads[ti]
           << ", \"modified_s\": " << fmt(t_mod)
           << ", \"plain_s\": " << fmt(t_plain)
           << ", \"modified_speedup\": " << fmt(t_seq_mod / t_mod)
           << ", \"plain_speedup\": " << fmt(t_seq_plain / t_plain)
           << ", \"bit_identical\": " << (ok ? "true" : "false") << "}";
      row.push_back(format_fixed(t_seq_mod / t_mod, 2) + "x" +
                    (ok ? "" : " MISMATCH"));
    }
    json << "]}" << (si + 1 < sizes.size() ? "," : "") << "\n";
    table.add_row(row);
  }
  std::cout << table.to_string() << '\n';

  // --- svd_batch throughput ------------------------------------------------
  const auto count = static_cast<std::size_t>(cli.get_int("batch"));
  const auto bm = static_cast<std::size_t>(cli.get_int("batch-rows"));
  const auto bn = static_cast<std::size_t>(cli.get_int("batch-cols"));
  Rng brng(777);
  std::vector<Matrix> batch;
  for (std::size_t i = 0; i < count; ++i)
    batch.push_back(random_gaussian(bm, bn, brng));

  json << "  ],\n  \"batch\": {\"count\": " << count << ", \"rows\": " << bm
       << ", \"cols\": " << bn << ", \"runs\": [";
  std::vector<SvdResult> ref_batch;
  AsciiTable btab({"threads", "seconds", "matrices/s"});
  btab.set_caption("svd_batch throughput (" + std::to_string(count) + " x " +
                   std::to_string(bm) + "x" + std::to_string(bn) + "):");
  for (std::size_t ti = 0; ti < threads.size(); ++ti) {
    const auto t = static_cast<std::size_t>(threads[ti]);
    std::vector<SvdResult> out;
    const double secs = best_of(reps, [&] { out = svd_batch(batch, {}, t); });
    bool ok = true;
    if (ti == 0) {
      ref_batch = out;
    } else {
      for (std::size_t i = 0; i < out.size(); ++i)
        ok = ok && values_bit_identical(out[i], ref_batch[i]);
    }
    all_identical = all_identical && ok;
    json << (ti ? ", " : "") << "{\"threads\": " << t
         << ", \"seconds\": " << fmt(secs) << ", \"matrices_per_s\": "
         << fmt(static_cast<double>(count) / secs)
         << ", \"bit_identical\": " << (ok ? "true" : "false") << "}";
    btab.add_row({std::to_string(t), fmt(secs),
                  format_fixed(static_cast<double>(count) / secs, 1)});
  }
  json << "]},\n  \"all_bit_identical\": "
       << (all_identical ? "true" : "false") << "\n}\n";
  std::cout << btab.to_string() << '\n';

  const std::string out_path = cli.get("out");
  write_file(out_path, json.str());
  std::cout << "JSON written to " << out_path << '\n';

  // --- Blocked vs pipelined modified engine --------------------------------
  // The pipelined engine overlaps round r+1's parameter generation with
  // round r's covariance updates (the hardware's param-FIFO trick); the
  // blocked engine serializes the two phases.  Bit-identity against the
  // sequential reference is re-checked on every timed repetition — a rep
  // whose result drifts would invalidate its timing.
  const auto pipe_sizes = cli.get_int_list("pipelined-sizes");
  const auto queue_depth = static_cast<std::size_t>(cli.get_int("queue-depth"));

  std::ostringstream pjson;
  pjson << "{\n  \"bench\": \"pipelined_sweep\",\n"
        << "  \"manifest\": "
        << manifest("pipelined-sizes=" + cli.get("pipelined-sizes") +
                    " threads=" + cli.get("threads") + " reps=" +
                    cli.get("reps") + " queue-depth=" + cli.get("queue-depth"))
        << ",\n"
        << "  \"hardware_threads\": " << hw_threads << ",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"queue_depth\": " << queue_depth << ",\n  \"sizes\": [\n";

  std::vector<std::string> pheaders{"n", "seq (s)"};
  for (auto t : threads)
    pheaders.push_back("t=" + std::to_string(t) + " pipe/blocked");
  AsciiTable ptab(pheaders);
  ptab.set_caption(
      "Pipelined vs blocked modified engine (bit-identical re-checked per "
      "rep):");

  for (std::size_t si = 0; si < pipe_sizes.size(); ++si) {
    const auto n = static_cast<std::size_t>(pipe_sizes[si]);
    Rng rng(5200 + static_cast<std::uint64_t>(n));
    const Matrix a = random_gaussian(n, n, rng);

    SvdResult seq;
    const double t_seq =
        best_of(reps, [&] { seq = modified_hestenes_svd(a, cfg); });

    pjson << "    {\"n\": " << n << ", \"sequential_s\": " << fmt(t_seq)
          << ", \"engines\": [";
    std::vector<std::string> row{std::to_string(n), fmt(t_seq)};
    for (std::size_t ti = 0; ti < threads.size(); ++ti) {
      const auto t = static_cast<std::size_t>(threads[ti]);
      ParallelSweepConfig par;
      par.threads = t;
      PipelinedSweepConfig pipe;
      pipe.threads = t;
      pipe.queue_depth = queue_depth;

      bool ok = true;
      const double t_blocked = best_of(reps, [&] {
        const SvdResult r = parallel_modified_hestenes_svd(a, cfg, par);
        ok = ok && values_bit_identical(r, seq);
      });
      PipelineStats qs;
      const double t_pipe = best_of(reps, [&] {
        const SvdResult r =
            pipelined_modified_hestenes_svd(a, cfg, pipe, nullptr, &qs);
        ok = ok && values_bit_identical(r, seq);
      });
      all_identical = all_identical && ok;

      // Busy fractions answer the ROADMAP's generator-bottleneck question:
      // a generator busy fraction near 1 means parameter generation (the
      // serial rotation component) is the pipeline's critical path.
      double worker_busy = 0.0;
      for (const double b : qs.worker_busy_s) worker_busy += b;
      const double wall = qs.wall_s > 0.0 ? qs.wall_s : 1.0;
      const double worker_frac =
          qs.worker_busy_s.empty()
              ? 0.0
              : worker_busy / (static_cast<double>(qs.worker_busy_s.size()) *
                               wall);
      pjson << (ti ? ", " : "") << "{\"threads\": " << t
            << ", \"blocked_s\": " << fmt(t_blocked)
            << ", \"pipelined_s\": " << fmt(t_pipe)
            << ", \"pipelined_vs_blocked\": " << fmt(t_blocked / t_pipe)
            << ", \"pipelined_vs_sequential\": " << fmt(t_seq / t_pipe)
            << ", \"queue_high_water\": " << qs.queue_high_water
            << ", \"producer_stalls\": " << qs.producer_stalls
            << ", \"consumer_stalls\": " << qs.consumer_stalls
            << ", \"generator_busy_s\": " << fmt(qs.generator_busy_s)
            << ", \"generator_stall_s\": " << fmt(qs.generator_stall_s)
            << ", \"generator_busy_frac\": "
            << fmt(qs.generator_busy_s / wall)
            << ", \"worker_busy_frac\": " << fmt(worker_frac)
            << ", \"bit_identical\": " << (ok ? "true" : "false") << "}";
      row.push_back(format_fixed(t_blocked / t_pipe, 2) + "x" +
                    (ok ? "" : " MISMATCH"));
    }
    pjson << "]}" << (si + 1 < pipe_sizes.size() ? "," : "") << "\n";
    ptab.add_row(row);
  }
  pjson << "  ],\n  \"all_bit_identical\": "
        << (all_identical ? "true" : "false") << "\n}\n";
  std::cout << ptab.to_string() << '\n';

  const std::string pipe_out = cli.get("pipelined-out");
  write_file(pipe_out, pjson.str());
  std::cout << "JSON written to " << pipe_out << '\n';

  // --- Observability overhead guardrail ------------------------------------
  // Four runs use the instrumented build (the same binary): "disabled"
  // detaches the sinks (the shipping default — one null-pointer test per
  // sweep/round), "enabled" attaches a live recorder and registry,
  // "probes" attaches a metrics registry plus the numerical-health probe
  // at its default sampling stride (the --num-probes configuration), and
  // "live" attaches the full live-telemetry stack — a bounded
  // flight-recorder ring, a watchdog, and a SnapshotExporter thread
  // sampling into a scratch directory while the decomposition is timed.
  // The guardrail is symmetric: |mode - disabled| must be at most 5% of the
  // slower side (obs::overhead_within) — attached sinks must be cheap AND a
  // "disabled faster than enabled by miles" result would equally indicate a
  // broken measurement.  Compiling with -DHJSVD_OBS=0 removes even the
  // pointer tests.  Results are re-checked bit-identical between all three
  // modes (the obs layer's core contract).
  const auto obs_sizes = cli.get_int_list("obs-sizes");
  const int obs_reps = static_cast<int>(cli.get_int("obs-reps"));
  std::ostringstream ojson;
  ojson << "{\n  \"bench\": \"obs_overhead\",\n"
        << "  \"manifest\": "
        << manifest("obs-sizes=" + cli.get("obs-sizes") + " obs-reps=" +
                    cli.get("obs-reps") + " queue-depth=" +
                    cli.get("queue-depth"))
        << ",\n"
        << "  \"hardware_threads\": " << hw_threads << ",\n"
        << "  \"reps\": " << obs_reps << ",\n"
        << "  \"compiled_in\": " << (obs::kEnabled ? "true" : "false")
        << ",\n  \"sizes\": [\n";
  AsciiTable otab({"n", "disabled (s)", "enabled (s)", "enabled overhead",
                   "probes (s)", "probes overhead", "live (s)",
                   "live overhead"});
  otab.set_caption("Observability overhead (pipelined engine, sinks "
                   "detached vs attached vs numerics probes vs full live "
                   "telemetry):");
  bool overhead_ok = true;
  const std::filesystem::path live_scratch =
      std::filesystem::temp_directory_path() / "hjsvd_bench_obs_live";
  for (std::size_t si = 0; si < obs_sizes.size(); ++si) {
    const auto n = static_cast<std::size_t>(obs_sizes[si]);
    Rng rng(6200 + static_cast<std::uint64_t>(n));
    const Matrix a = random_gaussian(n, n, rng);
    PipelinedSweepConfig pipe;
    pipe.queue_depth = queue_depth;

    // Paired measurement: each repetition times the three modes back to
    // back — independent best-ofs can sample the modes under different
    // host-load phases and manufacture an "overhead" (of either sign)
    // that no mode actually has.  The reported triple is the repetition
    // with the *median* enabled/disabled ratio: external load perturbs
    // individual repetitions in both directions, and the median is
    // robust against those outliers where a min-of-sums pick is not.
    struct RepTimes {
      double off_s, on_s, probes_s, live_s;
    };
    SvdResult off_result, on_result, probes_result, live_result;
    std::vector<RepTimes> measured;
    for (int r = 0; r < obs_reps; ++r) {
      Timer toff;
      off_result = pipelined_modified_hestenes_svd(a, cfg, pipe);
      const double off_s = toff.seconds();
      double on_s = 0.0;
      {
        obs::TraceRecorder trace;
        obs::MetricsRegistry metrics;
        HestenesConfig with = cfg;
        with.obs.trace = &trace;
        with.obs.metrics = &metrics;
        Timer ton;
        on_result = pipelined_modified_hestenes_svd(a, with, pipe);
        on_s = ton.seconds();
      }
      double probes_s = 0.0;
      {
        // Numerical-health probes at the default --num-probes stride: a
        // metrics registry plus the sampled accuracy probe, including the
        // finalize-time drift/backward-error pass inside the timed region
        // (that is where --num-probes pays it).
        obs::MetricsRegistry metrics;
        obs::NumericsProbe probe({}, &metrics);
        HestenesConfig with = cfg;
        with.obs.metrics = &metrics;
        with.obs.numerics = &probe;
        Timer tprobes;
        probes_result = pipelined_modified_hestenes_svd(a, with, pipe);
        probes_s = tprobes.seconds();
      }
      double live_s = 0.0;
      {
        // Full live stack: bounded ring, watchdog, and an exporter
        // thread actively sampling while the timed region runs.  The
        // exporter is constructed outside the timed region (thread
        // startup and file creation are per-run, not per-sweep costs)
        // but keeps ticking through it.
        std::filesystem::create_directories(live_scratch);
        obs::TraceRecorder trace(4096);
        obs::MetricsRegistry metrics;
        obs::Watchdog::Config wcfg;
        obs::Watchdog watchdog(wcfg, &trace, &metrics);
        // Shipping-default sampling interval (100 ms): the guardrail
        // bounds the cost of the *default* live configuration.  On a
        // 1-core host an aggressive interval simply time-slices the
        // core away from the engine — that is honest load, not sink
        // overhead, and it is not what --obs-live enables by default.
        obs::LiveConfig lcfg;
        lcfg.dir = live_scratch.string();
        obs::SnapshotExporter exporter(lcfg, &trace, &metrics, &watchdog);
        HestenesConfig with = cfg;
        with.obs.trace = &trace;
        with.obs.metrics = &metrics;
        with.obs.watchdog = &watchdog;
        Timer tlive;
        live_result = pipelined_modified_hestenes_svd(a, with, pipe);
        live_s = tlive.seconds();
        exporter.stop();
      }
      measured.push_back({off_s, on_s, probes_s, live_s});
    }
    // Each mode gets its own median-ratio repetition: an outlier in one
    // mode must not pick the reported repetition for the other.
    std::sort(measured.begin(), measured.end(),
              [](const auto& x, const auto& y) {
                return x.on_s / x.off_s < y.on_s / y.off_s;
              });
    const double t_off = measured[measured.size() / 2].off_s;
    const double t_on = measured[measured.size() / 2].on_s;
    std::sort(measured.begin(), measured.end(),
              [](const auto& x, const auto& y) {
                return x.probes_s / x.off_s < y.probes_s / y.off_s;
              });
    const double t_off_probes = measured[measured.size() / 2].off_s;
    const double t_probes = measured[measured.size() / 2].probes_s;
    std::sort(measured.begin(), measured.end(),
              [](const auto& x, const auto& y) {
                return x.live_s / x.off_s < y.live_s / y.off_s;
              });
    const double t_off_live = measured[measured.size() / 2].off_s;
    const double t_live = measured[measured.size() / 2].live_s;
    const bool ok = values_bit_identical(off_result, on_result);
    const bool ok_probes = values_bit_identical(off_result, probes_result);
    const bool ok_live = values_bit_identical(off_result, live_result);
    const bool within = obs::overhead_within(t_off, t_on, 0.05);
    const bool within_probes =
        obs::overhead_within(t_off_probes, t_probes, 0.05);
    const bool within_live = obs::overhead_within(t_off_live, t_live, 0.05);
    const double ofrac = obs::overhead_frac(t_on, t_off);
    const double pfrac = obs::overhead_frac(t_probes, t_off_probes);
    const double lfrac = obs::overhead_frac(t_live, t_off_live);
    all_identical = all_identical && ok && ok_probes && ok_live;
    overhead_ok = overhead_ok && within && within_probes && within_live;
    ojson << "    {\"n\": " << n << ", \"disabled_s\": " << fmt(t_off)
          << ", \"enabled_s\": " << fmt(t_on)
          << ", \"enabled_overhead_frac\": " << fmt(ofrac)
          << ", \"within_symmetric_5pct\": " << (within ? "true" : "false")
          << ", \"probes_s\": " << fmt(t_probes)
          << ", \"probes_overhead_frac\": " << fmt(pfrac)
          << ", \"probes_within_symmetric_5pct\": "
          << (within_probes ? "true" : "false")
          << ", \"probes_bit_identical\": " << (ok_probes ? "true" : "false")
          << ", \"live_s\": " << fmt(t_live)
          << ", \"live_overhead_frac\": " << fmt(lfrac)
          << ", \"live_within_symmetric_5pct\": "
          << (within_live ? "true" : "false")
          << ", \"live_bit_identical\": " << (ok_live ? "true" : "false")
          << ", \"bit_identical\": " << (ok ? "true" : "false") << "}"
          << (si + 1 < obs_sizes.size() ? "," : "") << "\n";
    otab.add_row({std::to_string(n), fmt(t_off), fmt(t_on),
                  format_fixed(ofrac * 100.0, 1) + "%" +
                      (within ? "" : " GUARDRAIL"),
                  fmt(t_probes),
                  format_fixed(pfrac * 100.0, 1) + "%" +
                      (within_probes ? "" : " GUARDRAIL"),
                  fmt(t_live),
                  format_fixed(lfrac * 100.0, 1) + "%" +
                      (within_live ? "" : " GUARDRAIL")});
  }
  std::error_code scratch_ec;
  std::filesystem::remove_all(live_scratch, scratch_ec);
  ojson << "  ],\n  \"guardrail_ok\": " << (overhead_ok ? "true" : "false")
        << "\n}\n";
  std::cout << otab.to_string() << '\n';
  const std::string obs_out = cli.get("obs-out");
  write_file(obs_out, ojson.str());
  std::cout << "JSON written to " << obs_out << '\n'
            << (all_identical
                    ? "All parallel runs bit-identical to sequential.\n"
                    : "ERROR: bitwise mismatch between parallel and "
                      "sequential runs!\n")
            << (overhead_ok
                    ? ""
                    : "ERROR: enabled/probes/live timings differ from "
                      "disabled by more than the symmetric 5% overhead "
                      "guardrail!\n");
  return (all_identical && overhead_ok) ? 0 : 1;
}

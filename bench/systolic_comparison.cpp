// Comparison with the classic two-sided Jacobi systolic array (Section III):
// the Brent-Luk architecture needs (n/2)^2 processing elements, so on a
// fixed device it stops scaling at tiny n and only handles square inputs;
// the paper's Hestenes-Jacobi architecture has size-independent resource
// usage.  This bench tabulates both models on the paper's XC5VLX330.
#include <iostream>

#include "arch/resource_model.hpp"
#include "arch/systolic_model.hpp"
#include "arch/timing_model.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace hjsvd;

int main(int argc, char** argv) {
  Cli cli("Two-sided systolic array vs the Hestenes-Jacobi architecture");
  cli.add_option("sizes", "8,16,32,64,128,256", "square sizes");
  cli.parse(argc, argv);
  const auto sizes = cli.get_int_list("sizes");

  std::cout << "== Scalability: systolic array vs Hestenes-Jacobi ==\n\n";

  const auto max_n = arch::max_systolic_n();
  std::cout << "Largest full Brent-Luk array that fits the XC5VLX330: n = "
            << max_n << " (the quadratic-PE scalability wall of Section III)\n\n";

  const auto hj = arch::estimate_resources(arch::AcceleratorConfig{});
  AsciiTable t({"n x n", "systolic PEs", "systolic LUT %", "systolic fits",
                "systolic time", "HJ LUT % (any n)", "HJ time"});
  for (auto n : sizes) {
    const auto nn = static_cast<std::size_t>(n);
    const auto sys = arch::estimate_systolic(nn);
    const double hj_t = arch::estimate_seconds(arch::AcceleratorConfig{}, nn, nn);
    t.add_row({std::to_string(n) + " x " + std::to_string(n),
               std::to_string(sys.pe_count), format_fixed(sys.lut_pct, 0),
               sys.fits ? "yes" : "NO", format_duration(sys.seconds),
               format_fixed(hj.lut_pct, 1), format_duration(hj_t)});
  }
  std::cout << t.to_string()
            << "\nThe array is faster when it fits (fully parallel 2x2 "
               "rotations), but it stops fitting almost immediately and can "
               "never accept rectangular inputs; the Hestenes-Jacobi design "
               "trades peak parallelism for unbounded problem sizes — the "
               "paper's core architectural argument.\n";
  return 0;
}

// Ablation: CORDIC vs closed-form rotation parameters (Section V.B).
//
// CORDIC computes the Jacobi angle with shift-and-add iterations — ideal in
// fixed point, but its accuracy is ~2^-iterations, so double-precision
// quality needs ~55+ iterations; and a *floating-point* CORDIC would pay
// operand realignment every iteration.  The paper instead evaluates the
// closed forms of eqs. (8)-(10) on pipelined FP cores.  This benchmark
// quantifies both sides: accuracy vs iterations, and a latency comparison
// against the shared-core dataflow schedule.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "fp/cordic.hpp"
#include "hwsim/dfg.hpp"
#include "svd/rotation.hpp"

using namespace hjsvd;

int main(int argc, char** argv) {
  Cli cli("Ablation: CORDIC vs closed-form rotation generation");
  cli.add_option("trials", "20000", "random rotation problems");
  cli.parse(argc, argv);
  const auto trials = cli.get_int("trials");

  std::cout << "== Ablation: CORDIC rotation generation ==\n\n";

  AsciiTable t({"iterations", "max |cos err|", "max |sin err|",
                "max |cov' residual|"});
  t.set_caption("CORDIC accuracy vs the closed forms of eqs. (8)-(10):");
  for (int iters : {8, 16, 24, 32, 40, 52, 61}) {
    fp::CordicConfig cc;
    cc.iterations = iters;
    double cos_err = 0.0, sin_err = 0.0, resid = 0.0;
    Rng rng(5);
    for (int k = 0; k < trials; ++k) {
      const double njj = std::abs(rng.gaussian()) * 10 + 1e-6;
      const double nii = std::abs(rng.gaussian()) * 10 + 1e-6;
      const double cov = rng.gaussian() * 3;
      if (cov == 0.0) continue;
      const auto exact = rotation_hardware(njj, nii, cov, fp::NativeOps{});
      const auto cord = fp::cordic_jacobi_params(njj, nii, cov, cc);
      cos_err = std::max(cos_err, std::abs(cord.cos - exact.cos));
      sin_err = std::max(sin_err, std::abs(cord.sin - exact.sin));
      // Off-diagonal left by the CORDIC rotation (scale-free).
      const double r = cord.cos * cord.sin * (nii - njj) +
                       (cord.cos * cord.cos - cord.sin * cord.sin) * cov;
      resid = std::max(resid, std::abs(r) / std::max({nii, njj, std::abs(cov)}));
    }
    t.add_row({std::to_string(iters), format_sci(cos_err, 2),
               format_sci(sin_err, 2), format_sci(resid, 2)});
  }
  std::cout << t.to_string() << '\n';

  // Hardware cost comparison.
  const auto g = hwsim::make_rotation_dataflow();
  const auto sched =
      hwsim::list_schedule(g, hwsim::FuSet{1, 2, 1, 1}, fp::CoreLatencies{});
  const auto tput =
      hwsim::pipelined_throughput(g, hwsim::FuSet{1, 2, 1, 1},
                                  fp::CoreLatencies{}, 32);
  std::cout << "Latency comparison at 150 MHz (one rotation):\n"
            << "  closed-form on shared FP cores: " << sched.makespan
            << " cycles latency, steady-state interval "
            << format_fixed(tput.interval, 1)
            << " cycles (pipelined; 8 rotations per 64 cycles sustained)\n"
            << "  fixed-point CORDIC, double-precision quality: 2 passes "
               "(vectoring + rotation) x ~55 iterations = ~110 cycles if "
               "fully unrolled — but only in fixed point; a floating-point "
               "CORDIC adds alignment/normalization every iteration, which "
               "is why the paper rejects it (Section V.B).\n";
  return 0;
}

// Reproduces Fig. 9: dimensional speedup of the accelerator over the
// MATLAB-style software SVD, for column sizes 128-256 and row sizes
// 128-2048.  The paper reports speedups from 3.8x to 43.6x on its host; on
// this host the absolute ratios differ, but the *structure* must hold:
// speedup grows with the row dimension (rows are nearly free on the
// accelerator) and shrinks with the column dimension.
#include <algorithm>
#include <iostream>

#include "arch/timing_model.hpp"
#include "baselines/literature.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "reportgen/runner.hpp"

using namespace hjsvd;

int main(int argc, char** argv) {
  Cli cli("Fig. 9: speedup of the accelerator vs software SVD");
  cli.add_option("cols", "128,192,256", "column dimensions");
  cli.add_option("rows", "128,256,512,1024,2048", "row dimensions");
  cli.add_option("csv", "", "optional path for CSV output");
  cli.parse(argc, argv);
  const auto cols = cli.get_int_list("cols");
  const auto rows = cli.get_int_list("rows");

  std::cout << "== Fig. 9 reproduction: speedup vs software SVD ==\n"
            << report::host_description() << "\n\n";

  const arch::AcceleratorConfig cfg;
  std::vector<std::string> headers{"m rows \\ n cols"};
  for (auto n : cols) headers.push_back(std::to_string(n));
  AsciiTable t(headers);
  t.set_caption("Speedup = software seconds / accelerator-model seconds:");
  double lo = 1e300, hi = 0.0;
  for (auto m : rows) {
    std::vector<std::string> row{std::to_string(m)};
    for (auto n : cols) {
      const auto mm = static_cast<std::size_t>(m);
      const auto nn = static_cast<std::size_t>(n);
      const Matrix a = report::experiment_matrix(mm, nn);
      const double sw = report::golub_kahan_seconds(a);
      const double hw = arch::estimate_seconds(cfg, mm, nn);
      const double speedup = sw / hw;
      lo = std::min(lo, speedup);
      hi = std::max(hi, speedup);
      row.push_back(format_fixed(speedup, 1) + "x");
    }
    t.add_row(row);
  }
  std::cout << t.to_string();

  const auto paper = literature::paper_speedup_range();
  std::cout << "\nMeasured speedup range on this host: "
            << format_fixed(lo, 1) << "x - " << format_fixed(hi, 1) << "x\n"
            << "Paper's range on its 2009-era Xeon + MATLAB 7.10: "
            << paper.min_speedup << "x - " << paper.max_speedup << "x\n"
            << "Shape check: speedup must increase down each column "
               "(rows are cheap for the accelerator) and generally decrease "
               "left to right (columns are expensive).\n";

  if (const auto path = cli.get("csv"); !path.empty()) {
    write_file(path, t.to_csv());
    std::cout << "CSV written to " << path << '\n';
  }
  return 0;
}

// Ablation: vector-pairing order (Section V.D).
//
// The paper adopts the cyclic (round-robin) ordering of Fig. 6 for its
// groupable disjoint pairs.  This benchmark compares per-sweep convergence
// of row-cyclic (Algorithm 1's loop order), round-robin (the hardware's),
// and odd-even neighbor exchange.
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "reportgen/runner.hpp"
#include "svd/hestenes.hpp"

using namespace hjsvd;

int main(int argc, char** argv) {
  Cli cli("Ablation: pair-ordering convergence");
  cli.add_option("size", "128", "square matrix dimension");
  cli.add_option("sweeps", "8", "sweeps to run");
  cli.parse(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("size"));
  const auto sweeps = static_cast<std::size_t>(cli.get_int("sweeps"));

  std::cout << "== Ablation: pair ordering, n = " << n << " ==\n\n";
  struct Entry {
    const char* name;
    Ordering ordering;
  };
  const Entry entries[] = {
      {"row-cyclic (Algorithm 1)", Ordering::kRowCyclic},
      {"round-robin (Fig. 6 hardware)", Ordering::kRoundRobin},
      {"odd-even neighbor exchange", Ordering::kOddEven},
  };

  const Matrix a = report::experiment_matrix(n, n);
  std::vector<std::string> headers{"sweep"};
  for (const auto& e : entries) headers.push_back(e.name);
  AsciiTable t(headers);
  t.set_caption("Mean |covariance| after each sweep:");

  std::vector<HestenesStats> stats(std::size(entries));
  for (std::size_t i = 0; i < std::size(entries); ++i) {
    HestenesConfig cfg;
    cfg.max_sweeps = sweeps;
    cfg.ordering = entries[i].ordering;
    cfg.track_convergence = true;
    (void)modified_hestenes_svd(a, cfg, &stats[i]);
  }
  for (std::size_t s = 0; s < sweeps; ++s) {
    std::vector<std::string> row{std::to_string(s + 1)};
    for (const auto& st : stats)
      row.push_back(s < st.sweeps.size()
                        ? format_sci(st.sweeps[s].mean_abs_offdiag, 3)
                        : "-");
    t.add_row(row);
  }
  std::cout << t.to_string()
            << "\nNote: odd-even touches only neighbor pairs per round (a "
               "sweep here is n rounds), so one of its 'sweeps' does less "
               "work; it is listed to show why the paper chose an ordering "
               "that pairs every column with every other column.\n";
  return 0;
}

// Reproduces Fig. 11: convergence of matrices with a fixed column size and
// varying row dimension.  The paper fixes n = 1024; the default here fixes
// n = 256 so the default run stays short on slow hosts (pass --cols 1024
// --rows 256,512,1024,2048 for the paper's exact setting).  The expected
// shape is the paper's: the row count barely changes the per-sweep
// convergence trajectory, because rotations act on the covariance matrix
// whose size is set by the column count alone.
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "reportgen/runner.hpp"
#include "svd/hestenes.hpp"

using namespace hjsvd;

int main(int argc, char** argv) {
  Cli cli("Fig. 11: convergence with fixed columns, varying rows");
  cli.add_option("cols", "256", "fixed column dimension (paper: 1024)");
  cli.add_option("rows", "256,512,1024,2048", "row dimensions");
  cli.add_option("sweeps", "6", "sweeps to run (paper: 6)");
  cli.add_option("normalized", "true",
                 "divide by the sweep-1 value (isolates the trajectory "
                 "shape from the m-dependent covariance scale)");
  cli.add_option("csv", "", "optional path for CSV output");
  cli.parse(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("cols"));
  const auto rows = cli.get_int_list("rows");
  const auto sweeps = static_cast<std::size_t>(cli.get_int("sweeps"));
  const bool normalized = cli.get_bool("normalized");

  std::cout << "== Fig. 11 reproduction: convergence at fixed n = " << n
            << " ==\n\n";

  std::vector<std::string> headers{"sweep"};
  for (auto m : rows)
    headers.push_back(std::to_string(m) + "x" + std::to_string(n));
  AsciiTable t(headers);
  t.set_caption(normalized
                    ? "Mean |covariance| normalized by the sweep-1 value:"
                    : "Mean |covariance| per sweep:");

  std::vector<HestenesStats> stats(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto m = static_cast<std::size_t>(rows[r]);
    const Matrix a = report::experiment_matrix(m, n);
    HestenesConfig cfg;
    cfg.max_sweeps = sweeps;
    cfg.track_convergence = true;
    Timer timer;
    (void)modified_hestenes_svd(a, cfg, &stats[r]);
    std::cout << "ran " << m << "x" << n << " in "
              << format_duration(timer.seconds()) << '\n';
  }
  std::cout << '\n';

  for (std::size_t sweep = 0; sweep < sweeps; ++sweep) {
    std::vector<std::string> row{std::to_string(sweep + 1)};
    for (const auto& st : stats) {
      if (sweep >= st.sweeps.size()) {
        row.push_back("-");
        continue;
      }
      const double base = normalized ? st.sweeps[0].mean_abs_offdiag : 1.0;
      row.push_back(format_sci(st.sweeps[sweep].mean_abs_offdiag / base, 3));
    }
    t.add_row(row);
  }
  std::cout << t.to_string()
            << "\nShape check (paper Fig. 11): the trajectories for "
               "different row counts nearly coincide — row dimension does "
               "not drive convergence.\n";

  if (const auto path = cli.get("csv"); !path.empty()) {
    write_file(path, t.to_csv());
    std::cout << "CSV written to " << path << '\n';
  }
  return 0;
}

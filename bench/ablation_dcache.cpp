// Ablation: the value of Algorithm 1's covariance caching.
//
// The paper's modification over the plain Hestenes-Jacobi method (and over
// the prior FPGA design [12]) is to compute all squared 2-norms and
// covariances once and then *rotate* them, instead of recomputing the three
// m-length dot products for every pair in every sweep.  This benchmark
// quantifies that: floating-point operation counts and wall time for both
// variants over a grid of shapes.
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "reportgen/runner.hpp"
#include "svd/hestenes.hpp"
#include "svd/plain_hestenes.hpp"

using namespace hjsvd;

int main(int argc, char** argv) {
  Cli cli("Ablation: D-caching (modified) vs recomputation (plain)");
  cli.add_option("cols", "32,64,128", "column dimensions");
  cli.add_option("row-factors", "1,4,16", "row = factor * cols");
  cli.add_option("sweeps", "6", "sweeps");
  cli.parse(argc, argv);
  const auto cols = cli.get_int_list("cols");
  const auto factors = cli.get_int_list("row-factors");
  const auto sweeps = static_cast<std::size_t>(cli.get_int("sweeps"));

  std::cout << "== Ablation: covariance caching (Algorithm 1) ==\n\n";
  AsciiTable t({"m x n", "plain flops", "modified flops", "flop ratio",
                "plain time", "modified time", "time ratio"});
  for (auto n : cols) {
    for (auto f : factors) {
      const auto nn = static_cast<std::size_t>(n);
      const auto mm = static_cast<std::size_t>(n * f);
      const Matrix a = report::experiment_matrix(mm, nn);
      HestenesConfig cfg;
      cfg.max_sweeps = sweeps;

      fp::OpCounts plain_ops, mod_ops;
      (void)plain_hestenes_svd_counting(a, cfg, plain_ops);
      (void)modified_hestenes_svd_counting(a, cfg, mod_ops);

      Timer tp;
      (void)plain_hestenes_svd(a, cfg);
      const double plain_s = tp.seconds();
      Timer tm;
      (void)modified_hestenes_svd(a, cfg);
      const double mod_s = tm.seconds();

      t.add_row({std::to_string(mm) + " x " + std::to_string(nn),
                 std::to_string(plain_ops.total()),
                 std::to_string(mod_ops.total()),
                 format_fixed(static_cast<double>(plain_ops.total()) /
                                  static_cast<double>(mod_ops.total()),
                              2) + "x",
                 format_duration(plain_s), format_duration(mod_s),
                 format_fixed(plain_s / mod_s, 2) + "x"});
    }
  }
  std::cout << t.to_string()
            << "\nExpected: the advantage grows with the row factor — the "
               "modified algorithm touches the m-length columns only once "
               "(this is why the paper's speedups peak for tall matrices).\n";
  return 0;
}

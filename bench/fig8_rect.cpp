// Reproduces Fig. 8: SVD computation time for rectangular matrices —
// fixed column dimension, growing row dimension.  The paper's point: row
// growth causes only a slow execution-time increase on the accelerator
// (covariance work is set by the column count), while the Householder
// software baseline's cost grows with m*n^2.
#include <iostream>

#include "arch/timing_model.hpp"
#include "baselines/literature.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "reportgen/runner.hpp"

using namespace hjsvd;

int main(int argc, char** argv) {
  Cli cli("Fig. 8: SVD time for rectangular matrices (fixed cols)");
  cli.add_option("cols", "128,256", "column dimensions");
  cli.add_option("rows", "128,256,512,1024,2048", "row dimensions");
  cli.add_option("csv", "", "optional path for CSV output");
  cli.parse(argc, argv);
  const auto cols = cli.get_int_list("cols");
  const auto rows = cli.get_int_list("rows");

  std::cout << "== Fig. 8 reproduction: rectangular-matrix SVD time ==\n"
            << report::host_description() << "\n\n";

  const arch::AcceleratorConfig cfg;
  AsciiTable t({"m x n", "FPGA model (s)", "Golub-Kahan sw (s)",
                "paper FPGA (s)", "FPGA growth vs m=min", "sw growth"});
  for (auto n : cols) {
    double fpga_base = -1.0, sw_base = -1.0;
    for (auto m : rows) {
      const auto mm = static_cast<std::size_t>(m);
      const auto nn = static_cast<std::size_t>(n);
      const double fpga = arch::estimate_seconds(cfg, mm, nn);
      const Matrix a = report::experiment_matrix(mm, nn);
      const double sw = report::golub_kahan_seconds(a);
      if (fpga_base < 0) {
        fpga_base = fpga;
        sw_base = sw;
      }
      const auto paper = literature::paper_table1_seconds(nn, mm);
      t.add_row({std::to_string(m) + " x " + std::to_string(n),
                 format_sci(fpga, 3), format_sci(sw, 3),
                 paper ? format_sci(*paper, 3) : "-",
                 format_fixed(fpga / fpga_base, 2) + "x",
                 format_fixed(sw / sw_base, 2) + "x"});
    }
  }
  std::cout << t.to_string()
            << "\nShape check: with rows growing 16x, the FPGA column stays "
               "within a small factor (row work only affects preprocessing "
               "and first-sweep column updates), while the software column "
               "grows roughly linearly with m.\n";

  if (const auto path = cli.get("csv"); !path.empty()) {
    write_file(path, t.to_csv());
    std::cout << "CSV written to " << path << '\n';
  }
  return 0;
}

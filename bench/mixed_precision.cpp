// Mixed-precision engine benchmark: float opening sweeps vs all-double.
//
// For each matrix size, runs the all-double modified-Gram Hestenes engine
// and the mixed-precision engine (binary32 sweeps until the off-diagonal
// measure crosses --mp-switch, then binary64 refinement after a full Gram
// recompute) on the same Gaussian matrix and records sweep splits, wall
// times and the relative singular-value disagreement.
//
// Two guardrails gate the JSON (scripts/bench_gate.py refuses regressed
// baselines, and CI trips the gate on a flipped guardrail_ok):
//   1. sweep economy — at every size >= 256 the mixed engine must spend
//      strictly fewer double sweeps than the all-double engine spends in
//      total; otherwise the float phase earned nothing.
//   2. accuracy — max_i |sigma_mixed_i - sigma_double_i| / sigma_max must
//      stay below 100 n eps: the double refinement phase, not the float
//      opening, decides the final accuracy (docs/ALGORITHM.md section 10).
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "linalg/generate.hpp"
#include "obs/manifest.hpp"
#include "svd/hestenes.hpp"
#include "svd/mixed_hestenes.hpp"

using namespace hjsvd;

namespace {

template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

std::string fmt(double x) {
  std::ostringstream os;
  os.precision(6);
  os << x;
  return os.str();
}

std::string manifest(const std::string& config) {
  obs::RunManifest m;
  m.tool = "bench_mixed_precision";
  m.config = config;
  return obs::manifest_json(m);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("Mixed-precision (float -> double) vs all-double Hestenes engine");
  cli.add_option("sizes", "96,160,256,320", "square matrix sizes");
  cli.add_option("reps", "3", "repetitions per timing (best-of)");
  cli.add_option("mp-switch", "1e-4",
                 "precision-switch threshold of the mixed engine");
  cli.add_option("out", "BENCH_mixed_precision.json", "JSON output path");
  cli.parse(argc, argv);
  const auto sizes = cli.get_int_list("sizes");
  const int reps = static_cast<int>(cli.get_int("reps"));
  const double mp_switch = cli.get_double("mp-switch");
  constexpr double kEps = std::numeric_limits<double>::epsilon();

  HestenesConfig base;
  base.tolerance = 1e-13;
  base.max_sweeps = 40;
  MixedHestenesConfig mixed_cfg;
  mixed_cfg.base = base;
  mixed_cfg.switch_threshold = mp_switch;

  std::cout << "== Mixed-precision Hestenes engine ==\n"
            << "switch threshold: " << mp_switch << "\n\n";

  std::ostringstream json;
  json << "{\n  \"bench\": \"mixed_precision\",\n"
       << "  \"manifest\": "
       << manifest("sizes=" + cli.get("sizes") + " reps=" + cli.get("reps") +
                   " mp-switch=" + cli.get("mp-switch"))
       << ",\n"
       << "  \"switch_threshold\": " << fmt(mp_switch) << ",\n"
       << "  \"reps\": " << reps << ",\n  \"sizes\": [\n";

  AsciiTable tab({"n", "double sweeps", "mixed f+d", "double (s)", "mixed (s)",
                  "speedup", "sigma rel err"});
  tab.set_caption("All-double vs mixed-precision modified Hestenes:");

  bool sweeps_ok = true;
  bool accuracy_ok = true;
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const auto n = static_cast<std::size_t>(sizes[si]);
    Rng rng(7400 + static_cast<std::uint64_t>(n));
    const Matrix a = random_gaussian(n, n, rng);

    HestenesStats dstats;
    SvdResult dres;
    const double t_double =
        best_of(reps, [&] { dres = modified_hestenes_svd(a, base, &dstats); });

    MixedHestenesStats mstats;
    SvdResult mres;
    const double t_mixed = best_of(
        reps, [&] { mres = mixed_modified_hestenes_svd(a, mixed_cfg, &mstats); });

    double rel_err = 0.0;
    const double sigma_max = dres.singular_values.empty()
                                 ? 1.0
                                 : std::max(dres.singular_values[0], 1e-300);
    for (std::size_t i = 0; i < dres.singular_values.size(); ++i)
      rel_err = std::max(rel_err,
                         std::abs(mres.singular_values[i] -
                                  dres.singular_values[i]) /
                             sigma_max);

    // Sizes below 256 are reported for context but not gated: at small n
    // the whole iteration can converge before the float phase pays off.
    const bool fewer = mstats.double_sweeps < dres.sweeps;
    if (n >= 256) sweeps_ok = sweeps_ok && fewer;
    const double sigma_bound = 100.0 * static_cast<double>(n) * kEps;
    const bool accurate = rel_err <= sigma_bound;
    accuracy_ok = accuracy_ok && accurate;

    json << "    {\"n\": " << n << ", \"double_sweeps\": " << dres.sweeps
         << ", \"mixed_float_sweeps\": " << mstats.float_sweeps
         << ", \"mixed_double_sweeps\": " << mstats.double_sweeps
         << ", \"switch_reason\": \""
         << mixed_switch_reason_name(mstats.switch_reason) << "\""
         << ", \"double_s\": " << fmt(t_double)
         << ", \"mixed_s\": " << fmt(t_mixed)
         << ", \"speedup\": " << fmt(t_double / t_mixed)
         << ", \"sigma_rel_err\": " << fmt(rel_err)
         << ", \"sigma_bound\": " << fmt(sigma_bound)
         << ", \"fewer_double_sweeps\": " << (fewer ? "true" : "false")
         << ", \"gated\": " << (n >= 256 ? "true" : "false") << "}"
         << (si + 1 < sizes.size() ? "," : "") << "\n";
    tab.add_row({std::to_string(n), std::to_string(dres.sweeps),
                 std::to_string(mstats.float_sweeps) + "+" +
                     std::to_string(mstats.double_sweeps),
                 fmt(t_double), fmt(t_mixed), fmt(t_double / t_mixed),
                 fmt(rel_err) + (accurate ? "" : " GUARDRAIL")});
  }

  const bool ok = sweeps_ok && accuracy_ok;
  json << "  ],\n  \"guardrail_ok\": " << (ok ? "true" : "false") << "\n}\n";
  std::cout << tab.to_string() << '\n';
  const std::string out = cli.get("out");
  write_file(out, json.str());
  std::cout << "JSON written to " << out << '\n';
  if (!sweeps_ok)
    std::cout << "ERROR: mixed engine did not save double sweeps at some "
                 "gated size (n >= 256)!\n";
  if (!accuracy_ok)
    std::cout << "ERROR: mixed singular values drifted past the 100*n*eps "
                 "agreement bound!\n";
  return ok ? 0 : 1;
}

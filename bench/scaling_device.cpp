// Cross-device scaling study: how would the architecture scale on larger
// FPGA generations?  For each device, grow the update-kernel array (the
// performance-critical resource, Section V.C) until the design no longer
// fits, then evaluate the timing model with the scaled configuration.
// Shows (a) where extra kernels keep paying — large column counts — and
// (b) where the rotation cadence / memory bandwidth take over.
#include <iostream>

#include "arch/resource_model.hpp"
#include "arch/timing_model.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace hjsvd;

namespace {

/// Largest update-kernel count (paper: 8) that fits the device, growing the
/// effective covariance rate proportionally.
arch::AcceleratorConfig max_config_for(const arch::DeviceCapacity& device) {
  arch::AcceleratorConfig best;  // the paper's build as a floor
  for (std::uint32_t kernels = 8; kernels <= 512; kernels += 4) {
    arch::AcceleratorConfig cfg;
    cfg.update_kernels = kernels;
    // The pooled covariance rate scales with the kernel count (calibrated
    // 16/cycle at 12 kernels => 4/3 pair per kernel-cycle).
    cfg.cov_pairs_per_cycle =
        (static_cast<double>(kernels) + cfg.preproc_as_kernels) * 4.0 / 3.0;
    cfg.col_pairs_per_cycle = kernels;
    if (!arch::estimate_resources(cfg, device).fits) break;
    best = cfg;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("Cross-device scaling of the Hestenes-Jacobi architecture");
  cli.add_option("sizes", "128,256,512,1024,2048", "square sizes");
  cli.parse(argc, argv);
  const auto sizes = cli.get_int_list("sizes");

  const arch::DeviceCapacity devices[] = {
      arch::virtex5_lx330(), arch::virtex6_lx760(), arch::virtex7_2000t()};

  std::cout << "== Cross-device scaling (update array grown to fill each "
               "part) ==\n\n";
  AsciiTable cfg_table({"device", "LUTs", "DSP48", "update kernels",
                        "cov pairs/cycle", "LUT %"});
  std::vector<arch::AcceleratorConfig> configs;
  for (const auto& dev : devices) {
    const auto cfg = max_config_for(dev);
    configs.push_back(cfg);
    const auto rep = arch::estimate_resources(cfg, dev);
    cfg_table.add_row({dev.name, std::to_string(dev.luts),
                       std::to_string(dev.dsp48),
                       std::to_string(cfg.update_kernels),
                       format_fixed(cfg.cov_pairs_per_cycle, 0),
                       format_fixed(rep.lut_pct, 1) + "%"});
  }
  std::cout << cfg_table.to_string() << '\n';

  std::vector<std::string> headers{"n x n"};
  for (const auto& dev : devices) headers.push_back(dev.name);
  AsciiTable t(headers);
  t.set_caption("Modeled execution time (seconds), same 150 MHz clock:");
  for (auto n : sizes) {
    std::vector<std::string> row{std::to_string(n)};
    for (const auto& cfg : configs) {
      row.push_back(format_sci(
          arch::estimate_seconds(cfg, static_cast<std::size_t>(n),
                                 static_cast<std::size_t>(n)),
          3));
    }
    t.add_row(row);
  }
  std::cout << t.to_string()
            << "\nExpected: bigger parts help most at large column counts "
               "(update-bound work); small n pins on the 64-cycle rotation "
               "cadence and n > 256 increasingly on the memory system, so "
               "the returns taper — scaling the rotation unit and the "
               "off-chip bandwidth would be the next bottlenecks to attack.\n";
  return 0;
}

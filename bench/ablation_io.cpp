// Ablation: off-chip bandwidth sensitivity (Section VI.B's claim that
// performance beyond 256 columns is "increasingly affected by the I/O
// bandwidths").  Sweeps the modeled HC-2 bandwidth and reports execution
// time: on-chip sizes are insensitive, spilled sizes degrade as bandwidth
// shrinks.
#include <iostream>

#include "arch/timing_model.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace hjsvd;

int main(int argc, char** argv) {
  Cli cli("Ablation: off-chip bandwidth sensitivity");
  cli.add_option("sizes", "128,256,512,1024", "square sizes");
  cli.add_option("bandwidths", "64,32,16,8",
                 "aggregate bandwidths in doubles/cycle (HC-2 ~ 64)");
  cli.parse(argc, argv);
  const auto sizes = cli.get_int_list("sizes");
  const auto bws = cli.get_int_list("bandwidths");

  std::cout << "== Ablation: off-chip bandwidth (doubles/cycle) ==\n"
            << "Covariance matrix fits on chip for n <= 256; larger columns "
               "stream D through the memory system.\n\n";

  std::vector<std::string> headers{"n x n \\ bandwidth"};
  for (auto b : bws) headers.push_back(std::to_string(b));
  AsciiTable t(headers);
  t.set_caption("Execution time (seconds):");
  for (auto n : sizes) {
    std::vector<std::string> row{std::to_string(n)};
    for (auto b : bws) {
      arch::AcceleratorConfig cfg;
      cfg.memory.words_per_cycle = static_cast<double>(b);
      row.push_back(format_sci(
          arch::estimate_seconds(cfg, static_cast<std::size_t>(n),
                                 static_cast<std::size_t>(n)),
          3));
    }
    t.add_row(row);
  }
  std::cout << t.to_string();

  AsciiTable frac(headers);
  frac.set_caption("\nFraction of sweep cycles that are I/O-bound:");
  for (auto n : sizes) {
    std::vector<std::string> row{std::to_string(n)};
    for (auto b : bws) {
      arch::AcceleratorConfig cfg;
      cfg.memory.words_per_cycle = static_cast<double>(b);
      const auto tm = arch::estimate_timing(cfg, static_cast<std::size_t>(n),
                                            static_cast<std::size_t>(n));
      const double denom =
          static_cast<double>(tm.sweep1 + tm.later_sweeps);
      row.push_back(
          format_fixed(100.0 * static_cast<double>(tm.io_bound_cycles) / denom,
                       1) + "%");
    }
    frac.add_row(row);
  }
  std::cout << frac.to_string()
            << "\nExpected: rows with n <= 256 are flat across bandwidths "
               "(0% I/O-bound); larger n degrades as bandwidth drops — the "
               "paper's >256-column I/O sensitivity.\n";
  return 0;
}

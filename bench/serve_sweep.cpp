// hjsvd_serve throughput benchmark (in-process serve::SvdServer).
//
// Drives a wave of hjsvd.serve.v1 request frames through the server at
// each thread count and measures end-to-end request throughput: parse,
// admission, wave coalescing, warm-pool decomposition, and reply
// formatting.  Every reply is checked against the offline svd() reference
// by formatting the reference through the same 17-significant-digit reply
// writer — string equality of the payload (latency stripped) is bitwise
// equality of every singular value and vector entry.  The serving layer
// must never change a single bit.
//
// Results go to BENCH_serve.json (gated by scripts/bench_gate.py).  On a
// single-core host the thread scaling is flat; the bit-identity column and
// the warm-workspace reuse counters are the meaningful assertions.
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "api/svd.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "linalg/generate.hpp"
#include "obs/manifest.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

using namespace hjsvd;

namespace {

std::string fmt(double x) {
  std::ostringstream os;
  os.precision(6);
  os << x;
  return os.str();
}

std::string manifest(const std::string& config) {
  obs::RunManifest m;
  m.tool = "bench_serve_sweep";
  m.config = config;
  return obs::manifest_json(m);
}

/// One request frame over a fresh gaussian matrix, asking for V so the
/// reply exercises the vector payload path, not just sigma.
std::string make_frame(std::size_t index, std::size_t rows, std::size_t cols,
                       Rng& rng) {
  std::ostringstream os;
  os.precision(17);
  os << "{\"schema\": \"" << serve::kProtocolSchema << "\", \"id\": \"req-"
     << index << "\", \"rows\": " << rows << ", \"cols\": " << cols
     << ", \"compute_v\": true, \"data\": [";
  const Matrix a = random_gaussian(rows, cols, rng);
  bool first = true;
  for (std::size_t j = 0; j < cols; ++j)
    for (std::size_t i = 0; i < rows; ++i) {
      os << (first ? "" : ", ") << a(i, j);
      first = false;
    }
  os << "]}";
  return os.str();
}

/// Strips the run-dependent latency_ms tail so two ok replies over the same
/// result compare equal as strings (and therefore bitwise).
std::string payload_of(const std::string& reply) {
  const std::size_t cut = reply.rfind(",\"latency_ms\":");
  return cut == std::string::npos ? reply : reply.substr(0, cut);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("hjsvd_serve request throughput with offline bit-identity checks");
  cli.add_option("count", "24", "request frames per wave");
  cli.add_option("rows", "32", "rows per request matrix");
  cli.add_option("cols", "24", "cols per request matrix");
  cli.add_option("threads", "1,2,4", "engine thread counts to benchmark");
  cli.add_option("reps", "3", "timed waves per thread count (best-of)");
  cli.add_option("wave-max", "16", "server wave coalescing bound");
  cli.add_option("out", "BENCH_serve.json", "JSON output path");
  cli.parse(argc, argv);
  const auto count = static_cast<std::size_t>(cli.get_int("count"));
  const auto rows = static_cast<std::size_t>(cli.get_int("rows"));
  const auto cols = static_cast<std::size_t>(cli.get_int("cols"));
  const auto threads = cli.get_int_list("threads");
  const int reps = static_cast<int>(cli.get_int("reps"));
  const auto wave_max = static_cast<std::size_t>(cli.get_int("wave-max"));

#ifdef _OPENMP
  const int hw_threads = omp_get_max_threads();
#else
  const int hw_threads = 1;
#endif
  std::cout << "== hjsvd_serve request throughput ==\n"
            << "hardware threads available: " << hw_threads << "\n\n";

  Rng rng(20140521);
  std::vector<std::string> frames;
  frames.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    frames.push_back(make_frame(i, rows, cols, rng));

  // Offline reference: parse each frame exactly as the server does, run the
  // plain svd(), and format the result through the same reply writer.  The
  // expected payload is what the server must reproduce byte-for-byte.
  std::map<std::string, std::string> expected;
  for (const std::string& frame : frames) {
    const serve::Request req = serve::parse_request(frame);
    const SvdResult ref = svd(serve::request_matrix(req),
                              serve::request_options(req));
    expected[req.id] = payload_of(serve::format_ok_reply(req, ref, 0.0));
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"serve_sweep\",\n"
       << "  \"manifest\": "
       << manifest("count=" + cli.get("count") + " rows=" + cli.get("rows") +
                   " cols=" + cli.get("cols") + " threads=" +
                   cli.get("threads") + " reps=" + cli.get("reps") +
                   " wave-max=" + cli.get("wave-max"))
       << ",\n"
       << "  \"hardware_threads\": " << hw_threads << ",\n"
       << "  \"count\": " << count << ",\n"
       << "  \"reps\": " << reps << ",\n  \"runs\": [\n";

  AsciiTable table({"threads", "seconds", "requests/s", "ws reuse",
                    "ws alloc", "bit-identical"});
  table.set_caption("serve wave of " + std::to_string(count) + " x " +
                    std::to_string(rows) + "x" + std::to_string(cols) +
                    " requests (compute_v):");

  bool all_identical = true;
  bool first_run = true;
  for (int t : threads) {
    serve::ServerConfig config;
    config.threads = static_cast<std::size_t>(t);
    config.queue_capacity = count + 8;
    config.wave_max = wave_max;
    serve::SvdServer server(config);

    std::mutex reply_mu;
    std::map<std::string, std::string> replies;
    const auto submit_wave = [&] {
      for (const std::string& frame : frames)
        server.submit_line(frame, [&](const std::string& reply) {
          const serve::Request req = serve::parse_request(frame);
          std::lock_guard<std::mutex> lock(reply_mu);
          replies[req.id] = payload_of(reply);
        });
      server.drain();
    };

    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      {
        std::lock_guard<std::mutex> lock(reply_mu);
        replies.clear();
      }
      Timer timer;
      submit_wave();
      best = std::min(best, timer.seconds());
    }

    bool ok = replies.size() == expected.size();
    for (const auto& [id, payload] : expected) {
      const auto it = replies.find(id);
      ok = ok && it != replies.end() && it->second == payload;
    }
    all_identical = all_identical && ok;

    const std::uint64_t ws_reuse = server.workspace_reuse_total();
    const std::uint64_t ws_alloc = server.workspace_alloc_total();
    server.stop();
    const double per_s = static_cast<double>(count) / best;
    json << (first_run ? "" : ",\n") << "    {\"threads\": " << t
         << ", \"seconds\": " << fmt(best)
         << ", \"requests_per_s\": " << fmt(per_s)
         << ", \"workspace_reuse\": " << ws_reuse
         << ", \"workspace_alloc\": " << ws_alloc
         << ", \"bit_identical\": " << (ok ? "true" : "false") << "}";
    first_run = false;
    table.add_row({std::to_string(t), fmt(best), format_fixed(per_s, 1),
                   std::to_string(ws_reuse), std::to_string(ws_alloc),
                   ok ? "yes" : "NO"});
  }
  json << "\n  ],\n  \"all_bit_identical\": "
       << (all_identical ? "true" : "false") << "\n}\n";
  std::cout << table.to_string() << '\n';

  const std::string out_path = cli.get("out");
  write_file(out_path, json.str());
  std::cout << "JSON written to " << out_path << '\n';

  if (!all_identical) {
    std::cerr << "BIT-IDENTITY FAILURE: serve replies diverged from the "
                 "offline svd() reference\n";
    return 1;
  }
  return 0;
}

// Reproduces Fig. 10: convergence of the modified Hestenes-Jacobi process
// for square matrices of growing dimension — the mean absolute deviation
// from zero of the covariances after each sweep, on randomly generated
// datasets (the paper's software-model convergence evaluation).
//
// Default sizes stop at 512 to keep the default run short on slow hosts;
// pass --sizes 128,256,512,1024,2048 for the paper's full range.
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "reportgen/runner.hpp"
#include "svd/hestenes.hpp"

using namespace hjsvd;

int main(int argc, char** argv) {
  Cli cli("Fig. 10: convergence for square matrices");
  cli.add_option("sizes", "128,256,512", "square sizes");
  cli.add_option("sweeps", "6", "sweeps to run (paper: 6)");
  cli.add_option("csv", "", "optional path for CSV output");
  cli.parse(argc, argv);
  const auto sizes = cli.get_int_list("sizes");
  const auto sweeps = static_cast<std::size_t>(cli.get_int("sweeps"));

  std::cout << "== Fig. 10 reproduction: convergence (mean |covariance|) ==\n"
            << "Rows: sweep number; columns: matrix dimension.\n\n";

  std::vector<std::string> headers{"sweep"};
  for (auto n : sizes) headers.push_back(std::to_string(n) + "^2");
  AsciiTable t(headers);

  std::vector<HestenesStats> stats(sizes.size());
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    const auto n = static_cast<std::size_t>(sizes[s]);
    const Matrix a = report::experiment_matrix(n, n);
    HestenesConfig cfg;
    cfg.max_sweeps = sweeps;
    cfg.track_convergence = true;
    Timer timer;
    (void)modified_hestenes_svd(a, cfg, &stats[s]);
    std::cout << "ran " << n << "x" << n << " (" << sweeps << " sweeps) in "
              << format_duration(timer.seconds()) << '\n';
  }
  std::cout << '\n';

  for (std::size_t sweep = 0; sweep < sweeps; ++sweep) {
    std::vector<std::string> row{std::to_string(sweep + 1)};
    for (const auto& st : stats) {
      row.push_back(sweep < st.sweeps.size()
                        ? format_sci(st.sweeps[sweep].mean_abs_offdiag, 3)
                        : "-");
    }
    t.add_row(row);
  }
  std::cout << t.to_string()
            << "\nShape check (paper Fig. 10): the deviation collapses by "
               "orders of magnitude over the sweeps; larger dimensions "
               "converge more slowly but all reach 'reasonable convergence' "
               "within 6 sweeps.\n";

  if (const auto path = cli.get("csv"); !path.empty()) {
    write_file(path, t.to_csv());
    std::cout << "CSV written to " << path << '\n';
  }
  return 0;
}

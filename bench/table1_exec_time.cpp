// Reproduces the paper's Table I: execution time (seconds) of the
// accelerator over the {128, 256, 512, 1024}^2 dimension grid, from the
// calibrated timing model, next to the paper's published numbers.
//
// Orientation note: the paper's header prints "m \ n", but its own analysis
// matches the data only when the first (dominant, ~cubic) index is the
// column count n — see DESIGN.md §4.  We therefore print n down the rows.
#include <iostream>
#include <vector>

#include "arch/timing_model.hpp"
#include "baselines/literature.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace hjsvd;

namespace {

std::vector<std::string> grid_headers(const std::vector<std::int64_t>& sizes) {
  std::vector<std::string> h{"n cols \\ m rows"};
  for (auto m : sizes) h.push_back(std::to_string(m));
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("Table I: FPGA execution time grid (model vs. paper)");
  cli.add_option("sizes", "128,256,512,1024", "dimension grid");
  cli.add_option("csv", "", "optional path for CSV output");
  cli.parse(argc, argv);
  const auto sizes = cli.get_int_list("sizes");

  const arch::AcceleratorConfig cfg;
  std::cout << "== Table I reproduction: execution time in seconds ==\n"
            << "Model: 150 MHz, 6 sweeps, 8 rotations/64 cycles, 8(+4) "
               "update kernels, HC-2 memory (DESIGN.md par.5)\n\n";

  AsciiTable model(grid_headers(sizes));
  model.set_caption("Our timing model (seconds):");
  AsciiTable ratio(grid_headers(sizes));
  ratio.set_caption("Model / paper Table I (1.00 = exact):");

  for (auto n : sizes) {
    std::vector<std::string> row{std::to_string(n)};
    std::vector<std::string> rrow{std::to_string(n)};
    for (auto m : sizes) {
      const double ours = arch::estimate_seconds(cfg, m, n);
      row.push_back(format_sci(ours, 3));
      const auto paper = literature::paper_table1_seconds(n, m);
      rrow.push_back(paper ? format_fixed(ours / *paper, 2) : "-");
    }
    model.add_row(row);
    ratio.add_row(rrow);
  }
  std::cout << model.to_string() << '\n' << ratio.to_string() << '\n';

  AsciiTable paper(grid_headers(sizes));
  paper.set_caption("Paper Table I (seconds), same orientation:");
  for (auto n : sizes) {
    std::vector<std::string> row{std::to_string(n)};
    for (auto m : sizes) {
      const auto cell = literature::paper_table1_seconds(n, m);
      row.push_back(cell ? format_sci(*cell, 3) : "-");
    }
    paper.add_row(row);
  }
  std::cout << paper.to_string();

  if (const auto path = cli.get("csv"); !path.empty()) {
    write_file(path, model.to_csv());
    std::cout << "\nCSV written to " << path << '\n';
  }
  return 0;
}

// Work-stealing batch scheduler benchmark (svd_batch).
//
// Runs an adversarial mixed batch designed to defeat static LPT sharding:
// equal-shape matrices alternating between slow-converging (gaussian) and
// near-instant (diagonal) — identical cost *estimates*, very different
// runtimes — plus one large matrix that dominates the batch's total cost
// and therefore qualifies for a nested single-matrix split on borrowed
// workers.  For each (threads x split-threshold) combination it records
// wall clock, throughput, steal counts, nested splits, and per-worker idle
// time, and checks every result bit-for-bit against the per-item
// sequential svd() reference — the scheduler must never change a single
// bit.
//
// Results go to BENCH_batch_sweep.json (gated by scripts/bench_gate.py).
// On a single-core host the speedups hover around 1.0x; the steal counts
// and bit-identity checks are the meaningful assertions.
#include <algorithm>
#include <cstddef>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "api/svd.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "fp/softfloat.hpp"
#include "linalg/generate.hpp"
#include "obs/manifest.hpp"

using namespace hjsvd;

namespace {

bool values_bit_identical(const SvdResult& a, const SvdResult& b) {
  if (a.singular_values.size() != b.singular_values.size()) return false;
  for (std::size_t i = 0; i < a.singular_values.size(); ++i)
    if (fp::to_bits(a.singular_values[i]) != fp::to_bits(b.singular_values[i]))
      return false;
  return true;
}

std::string fmt(double x) {
  std::ostringstream os;
  os.precision(6);
  os << x;
  return os.str();
}

std::string manifest(const std::string& config) {
  obs::RunManifest m;
  m.tool = "bench_batch_sweep";
  m.config = config;
  return obs::manifest_json(m);
}

/// A matrix whose columns are already orthogonal: the Hestenes engines
/// converge on it almost immediately, while its cost *estimate* (shape
/// only) equals a gaussian of the same size — exactly the misprediction
/// work stealing exists to absorb.
Matrix fast_diagonal(std::size_t n) {
  Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i)
    d(i, i) = 1.0 + static_cast<double>(n - i);
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("Work-stealing svd_batch scheduler on an adversarial mixed batch");
  cli.add_option("count", "16", "small matrices (alternating slow/fast)");
  cli.add_option("small-n", "48", "size of the small square matrices");
  cli.add_option("large-n", "96", "size of the dominant square matrix");
  cli.add_option("threads", "1,2,4", "thread counts to benchmark");
  cli.add_option("reps", "3", "repetitions per timing (best-of)");
  cli.add_option("split-threshold", "0.25",
                 "batch_split_min_fraction of the split-enabled runs");
  cli.add_option("out", "BENCH_batch_sweep.json", "JSON output path");
  cli.parse(argc, argv);
  const auto count = static_cast<std::size_t>(cli.get_int("count"));
  const auto small_n = static_cast<std::size_t>(cli.get_int("small-n"));
  const auto large_n = static_cast<std::size_t>(cli.get_int("large-n"));
  const auto threads = cli.get_int_list("threads");
  const int reps = static_cast<int>(cli.get_int("reps"));
  const double split_threshold = cli.get_double("split-threshold");

#ifdef _OPENMP
  const int hw_threads = omp_get_max_threads();
#else
  const int hw_threads = 1;
#endif
  std::cout << "== Work-stealing batch scheduler ==\n"
            << "hardware threads available: " << hw_threads << "\n\n";

  Rng rng(4242);
  std::vector<Matrix> batch;
  for (std::size_t i = 0; i < count; ++i)
    batch.push_back(i % 2 == 0 ? random_gaussian(small_n, small_n, rng)
                               : fast_diagonal(small_n));
  batch.push_back(random_gaussian(large_n, large_n, rng));

  // Per-item sequential reference: the contract every scheduled run must
  // reproduce bit-for-bit.
  std::vector<SvdResult> refs;
  refs.reserve(batch.size());
  for (const Matrix& a : batch) refs.push_back(svd(a, {}));

  std::ostringstream json;
  json << "{\n  \"bench\": \"batch_sweep\",\n"
       << "  \"manifest\": "
       << manifest("count=" + cli.get("count") + " small-n=" +
                   cli.get("small-n") + " large-n=" + cli.get("large-n") +
                   " threads=" + cli.get("threads") + " reps=" +
                   cli.get("reps") + " split-threshold=" +
                   cli.get("split-threshold"))
       << ",\n"
       << "  \"hardware_threads\": " << hw_threads << ",\n"
       << "  \"count\": " << batch.size() << ",\n"
       << "  \"reps\": " << reps << ",\n  \"runs\": [\n";

  AsciiTable table({"threads", "split", "seconds", "matrices/s", "steals",
                    "nested", "idle (s)"});
  table.set_caption(
      "svd_batch over " + std::to_string(count) + " x " +
      std::to_string(small_n) + "x" + std::to_string(small_n) +
      " (alternating slow/fast) + 1 x " + std::to_string(large_n) + "x" +
      std::to_string(large_n) + ":");

  bool all_identical = true;
  std::uint64_t max_steals_multithread = 0;
  bool first_run = true;
  for (int t : threads) {
    for (int split_on : {0, 1}) {
      SvdOptions opt;
      opt.batch_split_min_fraction = split_on ? split_threshold : 0.0;
      std::vector<SvdResult> out;
      SvdBatchStats stats;
      double best = 1e300;
      for (int r = 0; r < reps; ++r) {
        Timer timer;
        out = svd_batch(batch, opt, static_cast<std::size_t>(t), &stats);
        best = std::min(best, timer.seconds());
      }
      bool ok = out.size() == refs.size();
      for (std::size_t i = 0; ok && i < out.size(); ++i)
        ok = values_bit_identical(out[i], refs[i]);
      all_identical = all_identical && ok;
      if (t >= 2)
        max_steals_multithread =
            std::max(max_steals_multithread, stats.steals);
      double idle_sum = 0.0;
      for (double s : stats.worker_idle_s) idle_sum += s;
      const double per_s = static_cast<double>(batch.size()) / best;
      json << (first_run ? "" : ",\n") << "    {\"threads\": " << t
           << ", \"split\": " << (split_on ? fmt(split_threshold) : "0")
           << ", \"seconds\": " << fmt(best)
           << ", \"matrices_per_s\": " << fmt(per_s)
           << ", \"steals\": " << stats.steals
           << ", \"nested_splits\": " << stats.nested_splits
           << ", \"helpers_granted\": " << stats.helpers_granted
           << ", \"idle_fraction\": "
           << fmt(stats.wall_s > 0.0
                      ? idle_sum / (stats.wall_s *
                                    static_cast<double>(stats.workers))
                      : 0.0)
           << ", \"bit_identical\": " << (ok ? "true" : "false") << "}";
      first_run = false;
      table.add_row({std::to_string(t), split_on ? fmt(split_threshold) : "0",
                     fmt(best), format_fixed(per_s, 1),
                     std::to_string(stats.steals),
                     std::to_string(stats.nested_splits), fmt(idle_sum)});
    }
  }
  json << "\n  ],\n  \"max_steals_multithread\": " << max_steals_multithread
       << ",\n  \"all_bit_identical\": " << (all_identical ? "true" : "false")
       << "\n}\n";
  std::cout << table.to_string() << '\n';
  if (max_steals_multithread == 0)
    std::cout << "warning: no steals observed at threads >= 2 — the "
                 "adversarial batch did not engage the scheduler\n";

  const std::string out_path = cli.get("out");
  write_file(out_path, json.str());
  std::cout << "JSON written to " << out_path << '\n';

  if (!all_identical) {
    std::cerr << "BIT-IDENTITY FAILURE: scheduled results diverged from the "
                 "sequential reference\n";
    return 1;
  }
  return 0;
}

// Reproduces the paper's Table II: resource consumption of the architecture
// on the Virtex-5 XC5VLX330 (89% LUT, 91% BRAM, 53% DSP), from the
// calibrated resource model, plus a small design-space exploration showing
// why the evaluated configuration is the one that fits.
#include <iostream>

#include "arch/resource_model.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace hjsvd;

int main(int argc, char** argv) {
  Cli cli("Table II: resource consumption on the XC5VLX330");
  cli.add_option("csv", "", "optional path for CSV output");
  cli.parse(argc, argv);

  std::cout << "== Table II reproduction: resource consumption ==\n\n";
  const arch::AcceleratorConfig paper_cfg;
  const auto report = arch::estimate_resources(paper_cfg);
  std::cout << arch::format_resource_report(report) << '\n';

  // Design-space exploration: scaling the update array / preprocessor.
  struct Variant {
    const char* name;
    arch::AcceleratorConfig cfg;
  };
  std::vector<Variant> variants;
  variants.push_back({"paper: 8 kernels, 4x4 preprocessor", {}});
  {
    arch::AcceleratorConfig c;
    c.update_kernels = 4;
    variants.push_back({"half update array (4 kernels)", c});
  }
  {
    arch::AcceleratorConfig c;
    c.update_kernels = 12;
    variants.push_back({"12 update kernels", c});
  }
  {
    arch::AcceleratorConfig c;
    c.preproc_layers = 8;
    c.preproc_lanes = 8;
    variants.push_back({"8x8 preprocessor (64 MACs)", c});
  }
  {
    arch::AcceleratorConfig c;
    c.update_kernels = 16;
    c.preproc_layers = 8;
    variants.push_back({"16 kernels + 8x4 preprocessor", c});
  }
  AsciiTable table({"configuration", "LUT %", "BRAM %", "DSP %", "fits"});
  table.set_caption(
      "Design-space exploration (the paper's configuration nearly fills the "
      "device):");
  for (const auto& v : variants) {
    const auto r = arch::estimate_resources(v.cfg);
    table.add_row({v.name, format_fixed(r.lut_pct, 1), format_fixed(r.bram_pct, 1),
                   format_fixed(r.dsp_pct, 1), r.fits ? "yes" : "NO"});
  }
  std::cout << table.to_string();
  std::cout << "\nPaper Table II: LUT 89%, BRAM 91%, DSP 53%\n";

  if (const auto path = cli.get("csv"); !path.empty()) {
    write_file(path, table.to_csv());
    std::cout << "CSV written to " << path << '\n';
  }
  return 0;
}

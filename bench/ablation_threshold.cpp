// Ablation: threshold-Jacobi.
//
// The paper runs a fixed 6 sweeps "believed sufficient for achieving
// convergence with certain thresholds".  Classic threshold-Jacobi makes the
// threshold explicit: skip rotations whose relative covariance is already
// below tau.  This bench quantifies rotations saved vs accuracy cost — a
// natural optimization for the paper's architecture, since skipped
// rotations free update-kernel cycles.
#include <iostream>

#include "baselines/golub_kahan.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "reportgen/runner.hpp"
#include "svd/hestenes.hpp"

using namespace hjsvd;

int main(int argc, char** argv) {
  Cli cli("Ablation: threshold-Jacobi (rotations saved vs accuracy)");
  cli.add_option("size", "128", "square matrix dimension");
  cli.add_option("sweeps", "10", "sweeps");
  cli.parse(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("size"));
  const auto sweeps = static_cast<std::size_t>(cli.get_int("sweeps"));

  const Matrix a = report::experiment_matrix(n, n);
  const SvdResult oracle = golub_kahan_svd(a);

  std::cout << "== Ablation: threshold-Jacobi, n = " << n << ", " << sweeps
            << " sweeps ==\n\n";
  AsciiTable t({"threshold tau", "rotations", "skipped", "saved vs tau=0",
                "sv error vs oracle"});
  std::uint64_t base_rotations = 0;
  for (double tau : {0.0, 1e-15, 1e-12, 1e-9, 1e-6, 1e-3}) {
    HestenesConfig cfg;
    cfg.max_sweeps = sweeps;
    cfg.rotation_threshold = tau;
    HestenesStats stats;
    const SvdResult r = modified_hestenes_svd(a, cfg, &stats);
    if (tau == 0.0) base_rotations = stats.total_rotations;
    const double saved =
        100.0 * (1.0 - static_cast<double>(stats.total_rotations) /
                           static_cast<double>(base_rotations));
    t.add_row({format_sci(tau, 1), std::to_string(stats.total_rotations),
               std::to_string(stats.total_skipped),
               format_fixed(saved, 1) + "%",
               format_sci(singular_value_error(r.singular_values,
                                               oracle.singular_values),
                          2)});
  }
  std::cout << t.to_string()
            << "\nExpected: thresholds up to ~1e-9 skip a large share of "
               "late-sweep rotations with singular-value error at the same "
               "level as the threshold; aggressive thresholds trade "
               "accuracy directly.\n";
  return 0;
}

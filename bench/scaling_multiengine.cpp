// Future-work scaling study: the paper implements on one of the Convey
// HC-2's four application engines; this bench models distributing the
// design across engines (row-partitioned preprocessing + D-slice-partitioned
// covariance updates, serial rotation cadence) and shows where scaling
// saturates — the serial 8-rotations-per-64-cycles section becomes the
// Amdahl bottleneck.
#include <iostream>

#include "arch/multi_engine.hpp"
#include "arch/timing_model.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace hjsvd;

int main(int argc, char** argv) {
  Cli cli("Multi-engine (HC-2) scaling model");
  cli.add_option("sizes", "128,256,512,1024", "square sizes");
  cli.add_option("engines", "1,2,4,8", "engine counts (HC-2 has 4)");
  cli.parse(argc, argv);
  const auto sizes = cli.get_int_list("sizes");
  const auto engines = cli.get_int_list("engines");

  std::cout << "== Multi-engine scaling (model; the paper uses 1 of the "
               "HC-2's 4 AEs) ==\n\n";

  std::vector<std::string> headers{"n x n \\ engines"};
  for (auto e : engines) headers.push_back(std::to_string(e));
  AsciiTable t(headers);
  t.set_caption("Execution time (seconds):");
  AsciiTable s(headers);
  s.set_caption("Speedup over 1 engine / serial-cadence-bound fraction:");
  for (auto n : sizes) {
    std::vector<std::string> trow{std::to_string(n)};
    std::vector<std::string> srow{std::to_string(n)};
    double base = 0.0;
    for (auto e : engines) {
      arch::MultiEngineConfig cfg;
      cfg.engines = static_cast<std::uint32_t>(e);
      const auto r = arch::estimate_multi_engine(
          cfg, static_cast<std::size_t>(n), static_cast<std::size_t>(n));
      if (base == 0.0) base = r.seconds;
      trow.push_back(format_sci(r.seconds, 3));
      srow.push_back(format_fixed(base / r.seconds, 2) + "x / " +
                     format_fixed(100.0 * r.rotation_bound_fraction, 0) + "%");
    }
    t.add_row(trow);
    s.add_row(srow);
  }
  std::cout << t.to_string() << '\n' << s.to_string()
            << "\nTwo effects shape the table: (1) small n saturates on the "
               "serial rotation cadence (64 cycles per 8-rotation group; "
               "the bound fraction reaches 100%); (2) engines pool their "
               "BRAM, so mid-size D slices fit on chip (e.g. n = 512 at 4 "
               "engines) and scale near-linearly, while n beyond the pooled "
               "capacity stays pinned on the *shared* memory channel and "
               "barely scales — the honest caveat on this future-work "
               "extension.\n";
  return 0;
}

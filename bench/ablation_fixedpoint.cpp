// Ablation: fixed-point vs double-precision floating point.
//
// The prior FPGA design [11] computes the Hestenes-Jacobi SVD in fixed
// point; the paper's architecture uses IEEE-754 double precision "to
// provide a wider dynamic range" (Section I).  This benchmark runs the
// fixed-point model across Q-formats and data scalings and reports the
// singular-value error plus saturation/underflow counts — the quantified
// version of the paper's motivation.
#include <cmath>
#include <iostream>

#include "baselines/golub_kahan.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "linalg/generate.hpp"
#include "svd/fixed_hestenes.hpp"

using namespace hjsvd;

int main(int argc, char** argv) {
  Cli cli("Ablation: fixed-point (prior work [11]) vs double precision");
  cli.add_option("size", "24", "square matrix dimension");
  cli.add_option("scales", "1,100,10000,1000000",
                 "data magnitude scalings to sweep");
  cli.parse(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("size"));
  const auto scales = cli.get_int_list("scales");

  const fp::FixedFormat formats[] = {
      {15, 16},  // Q15.16 — a typical 32-bit DSP format
      {7, 24},   // Q7.24  — more resolution, less range
      {23, 8},   // Q23.8  — more range, less resolution
  };

  std::cout << "== Ablation: fixed-point dynamic range ==\n"
            << "Singular-value relative error of the fixed-point plain "
               "Hestenes (model of [11]) vs the double-precision oracle.\n\n";

  AsciiTable t({"data scale", "format", "sv error", "saturations",
                "underflows", "verdict"});
  HestenesConfig cfg;
  cfg.max_sweeps = 12;
  for (auto scale : scales) {
    Rng rng(11);
    Matrix a = random_uniform(n, n, rng);
    for (double& x : a.data()) x *= static_cast<double>(scale);
    const SvdResult oracle = golub_kahan_svd(a);
    for (const auto& fmt : formats) {
      fp::FixedStats stats;
      const SvdResult fixed = fixed_point_hestenes_svd(a, fmt, stats, cfg);
      const double err =
          singular_value_error(fixed.singular_values, oracle.singular_values);
      const char* verdict = err < 1e-3 ? "ok"
                            : err < 0.1 ? "degraded"
                                        : "FAILED";
      t.add_row({std::to_string(scale),
                 "Q" + std::to_string(fmt.integer_bits) + "." +
                     std::to_string(fmt.frac_bits),
                 format_sci(err, 2), std::to_string(stats.saturations),
                 std::to_string(stats.underflows), verdict});
    }
  }
  std::cout << t.to_string()
            << "\nExpected: every Q-format fails once the data scale "
               "leaves its window (saturations explode for large scales — "
               "note the *squared* norms a Hestenes datapath must hold), "
               "while IEEE-754 double handles all scales; this is the "
               "paper's case for floating point.  [11] was limited to "
               "32x128 matrices partly for this reason.\n";
  return 0;
}

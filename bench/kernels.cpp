// google-benchmark microbenchmarks of the computational kernels: the
// soft-float operators, rotation parameter generation, covariance update,
// Gram computation, and the simulation primitives.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "fp/ops.hpp"
#include "fp/softfloat.hpp"
#include "hwsim/dfg.hpp"
#include "linalg/generate.hpp"
#include "svd/hestenes.hpp"
#include "fp/cordic.hpp"
#include "fp/fixed.hpp"
#include "svd/rotation.hpp"

namespace {

using namespace hjsvd;

std::vector<double> random_doubles(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(count);
  for (auto& x : v) x = rng.gaussian() * 10.0;
  return v;
}

void BM_SoftFloatAdd(benchmark::State& state) {
  const auto xs = random_doubles(1024, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fp::sf_add(xs[i % 1024], xs[(i + 7) % 1024]));
    ++i;
  }
}
BENCHMARK(BM_SoftFloatAdd);

void BM_SoftFloatMul(benchmark::State& state) {
  const auto xs = random_doubles(1024, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fp::sf_mul(xs[i % 1024], xs[(i + 7) % 1024]));
    ++i;
  }
}
BENCHMARK(BM_SoftFloatMul);

void BM_SoftFloatDiv(benchmark::State& state) {
  const auto xs = random_doubles(1024, 3);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fp::sf_div(xs[i % 1024], xs[(i + 7) % 1024] + 20.0));
    ++i;
  }
}
BENCHMARK(BM_SoftFloatDiv);

void BM_SoftFloatSqrt(benchmark::State& state) {
  const auto xs = random_doubles(1024, 4);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fp::sf_sqrt(xs[i % 1024] * xs[i % 1024]));
    ++i;
  }
}
BENCHMARK(BM_SoftFloatSqrt);

void BM_RotationHardwareForm(benchmark::State& state) {
  const auto xs = random_doubles(1024, 5);
  std::size_t i = 0;
  for (auto _ : state) {
    const double njj = xs[i % 1024] * xs[i % 1024] + 1.0;
    const double nii = xs[(i + 3) % 1024] * xs[(i + 3) % 1024] + 1.0;
    benchmark::DoNotOptimize(
        rotation_hardware(njj, nii, xs[(i + 9) % 1024], fp::NativeOps{}));
    ++i;
  }
}
BENCHMARK(BM_RotationHardwareForm);

void BM_RotationTextbookForm(benchmark::State& state) {
  const auto xs = random_doubles(1024, 6);
  std::size_t i = 0;
  for (auto _ : state) {
    const double njj = xs[i % 1024] * xs[i % 1024] + 1.0;
    const double nii = xs[(i + 3) % 1024] * xs[(i + 3) % 1024] + 1.0;
    benchmark::DoNotOptimize(
        rotation_textbook(njj, nii, xs[(i + 9) % 1024], fp::NativeOps{}));
    ++i;
  }
}
BENCHMARK(BM_RotationTextbookForm);

void BM_GramUpper(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  const Matrix a = random_gaussian(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gram_upper_ops(a, fp::NativeOps{}));
  }
  state.SetItemsProcessed(state.iterations() * n * n * (n + 1) / 2);
}
BENCHMARK(BM_GramUpper)->Arg(32)->Arg(64)->Arg(128);

void BM_ModifiedHestenesSweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  const Matrix a = random_gaussian(n, n, rng);
  HestenesConfig cfg;
  cfg.max_sweeps = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(modified_hestenes_svd(a, cfg));
  }
  state.SetItemsProcessed(state.iterations() * n * (n - 1) / 2);
}
BENCHMARK(BM_ModifiedHestenesSweep)->Arg(32)->Arg(64)->Arg(128);

void BM_FixedQuantize(benchmark::State& state) {
  const auto xs = random_doubles(1024, 9);
  const fp::FixedFormat fmt{15, 16};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fp::fixed_quantize(xs[i % 1024], fmt));
    ++i;
  }
}
BENCHMARK(BM_FixedQuantize);

void BM_CordicVectoring(benchmark::State& state) {
  const auto xs = random_doubles(1024, 10);
  const fp::CordicConfig cfg{static_cast<int>(state.range(0))};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fp::cordic_vectoring(xs[i % 1024], xs[(i + 5) % 1024], cfg));
    ++i;
  }
}
BENCHMARK(BM_CordicVectoring)->Arg(16)->Arg(32)->Arg(52);

void BM_CordicJacobiParams(benchmark::State& state) {
  const auto xs = random_doubles(1024, 11);
  std::size_t i = 0;
  for (auto _ : state) {
    const double njj = xs[i % 1024] * xs[i % 1024] + 1.0;
    const double nii = xs[(i + 3) % 1024] * xs[(i + 3) % 1024] + 1.0;
    benchmark::DoNotOptimize(
        fp::cordic_jacobi_params(njj, nii, xs[(i + 9) % 1024]));
    ++i;
  }
}
BENCHMARK(BM_CordicJacobiParams);

void BM_RotationDataflowSchedule(benchmark::State& state) {
  const auto g = hwsim::make_rotation_dataflow();
  const hwsim::FuSet fus{1, 2, 1, 1};
  const fp::CoreLatencies lat;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hwsim::list_schedule(g, fus, lat));
  }
}
BENCHMARK(BM_RotationDataflowSchedule);

}  // namespace

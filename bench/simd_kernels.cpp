// SIMD kernel-layer benchmark: portable scalar backend vs the AVX2 backend
// for the three dispatched kernel families —
//   rotate_pair            paired-column plane rotation (eqs. 11-12)
//   rotation_hardware_batch  lockstep hardware-form param generation
//   dot / dot_relaxed      strict and 4-lane-split reductions
//
// For every (kernel, size) workload it times each available dispatch level
// (best-of reps) and cross-checks the contract alongside the timing:
// bit-identical-tier kernels must agree bit-for-bit between levels, and
// the relaxed reduction must produce the same bits at every level.  A
// contract violation fails the run (exit 1), so a regression can't hide
// behind a nice throughput number.
//
// Results go to BENCH_simd_kernels.json (gated by scripts/bench_gate.py).
// On hosts without AVX2 only the scalar rows are emitted.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "fp/softfloat.hpp"
#include "linalg/kernels.hpp"
#include "linalg/simd/simd.hpp"
#include "obs/manifest.hpp"
#include "svd/rotation.hpp"

using namespace hjsvd;

namespace {

std::string fmt(double x) {
  std::ostringstream os;
  os.precision(6);
  os << x;
  return os.str();
}

std::string manifest(const std::string& config) {
  obs::RunManifest m;
  m.tool = "bench_simd_kernels";
  m.config = config;
  return obs::manifest_json(m);
}

std::vector<simd::Level> available_levels() {
  std::vector<simd::Level> levels{simd::Level::kScalar};
  if (simd::compiled_with_avx2() && simd::cpu_has_avx2())
    levels.push_back(simd::Level::kAvx2);
  return levels;
}

/// Keeps results observable so the timed loops can't be optimized away.
double g_sink = 0.0;

struct Run {
  std::string kernel;
  std::string level;
  std::size_t n = 0;
  double seconds = 0.0;     // best-of-reps for one pass over the workload
  double elems_per_s = 0.0;
  bool bit_identical = true;
};

/// Times fn (one pass over n elements) best-of `reps`, with enough inner
/// iterations per rep to rise above timer noise on small n.
template <class Fn>
double time_best(std::size_t n, int reps, Fn&& fn) {
  const std::size_t iters =
      std::max<std::size_t>(1, 4'000'000 / std::max<std::size_t>(1, n));
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    for (std::size_t it = 0; it < iters; ++it) fn();
    best = std::min(best, timer.seconds() / static_cast<double>(iters));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("SIMD kernel backends: scalar vs AVX2 dispatch levels");
  cli.add_option("sizes", "64,256,1024,4096", "vector lengths to benchmark");
  cli.add_option("reps", "5", "repetitions per timing (best-of)");
  cli.add_option("out", "BENCH_simd_kernels.json", "JSON output path");
  cli.parse(argc, argv);
  const auto sizes = cli.get_int_list("sizes");
  const int reps = static_cast<int>(cli.get_int("reps"));

  const auto levels = available_levels();
  std::cout << "== SIMD kernel dispatch levels ==\n"
            << "compiled AVX2 backend: "
            << (simd::compiled_with_avx2() ? "yes" : "no")
            << ", CPU AVX2: " << (simd::cpu_has_avx2() ? "yes" : "no")
            << ", startup level: " << simd::level_name(simd::active_level())
            << "\n\n";

  Rng rng(9001);
  std::vector<Run> runs;
  bool all_identical = true;

  for (const std::int64_t size : sizes) {
    const auto n = static_cast<std::size_t>(size);

    // Shared inputs per size, so every level sees identical work.
    std::vector<double> x0(n), y0(n);
    for (auto& v : x0) v = rng.gaussian();
    for (auto& v : y0) v = rng.gaussian();
    const double c = 0.8, s = 0.6;

    // rotate_pair: reference bits from the first (scalar) level.
    std::vector<double> ref_x, ref_y;
    for (const simd::Level level : levels) {
      simd::set_level(level);
      std::vector<double> x = x0, y = y0;
      rotate_pair(x, y, c, s);
      bool ok = true;
      if (level == simd::Level::kScalar) {
        ref_x = x;
        ref_y = y;
      } else {
        for (std::size_t i = 0; ok && i < n; ++i)
          ok = fp::to_bits(x[i]) == fp::to_bits(ref_x[i]) &&
               fp::to_bits(y[i]) == fp::to_bits(ref_y[i]);
      }
      all_identical = all_identical && ok;
      // Timing rotates back and forth (c,-s undoes c,s up to rounding);
      // the data stays bounded, and every pass does the full 6n flops.
      const double sec = time_best(n, reps, [&] {
        rotate_pair(x, y, c, s);
        rotate_pair(x, y, c, -s);
      });
      g_sink += x[0];
      runs.push_back({"rotate_pair", simd::level_name(level), n, sec,
                      2.0 * static_cast<double>(n) / sec, ok});
    }

    // rotation_hardware_batch: n independent 2x2 problems per pass.
    std::vector<double> njj(n), nii(n), cov(n);
    for (std::size_t l = 0; l < n; ++l) {
      njj[l] = std::abs(rng.gaussian()) * 10 + 1e-6;
      nii[l] = std::abs(rng.gaussian()) * 10 + 1e-6;
      cov[l] = rng.gaussian() * 3;
    }
    std::vector<double> t(n), pc(n), ps(n);
    std::vector<std::uint8_t> rot(n);
    std::vector<double> ref_t, ref_c, ref_s;
    for (const simd::Level level : levels) {
      simd::set_level(level);
      rotation_hardware_batch(njj, nii, cov, t, pc, ps, rot);
      bool ok = true;
      if (level == simd::Level::kScalar) {
        ref_t = t;
        ref_c = pc;
        ref_s = ps;
      } else {
        for (std::size_t l = 0; ok && l < n; ++l)
          ok = fp::to_bits(t[l]) == fp::to_bits(ref_t[l]) &&
               fp::to_bits(pc[l]) == fp::to_bits(ref_c[l]) &&
               fp::to_bits(ps[l]) == fp::to_bits(ref_s[l]);
      }
      all_identical = all_identical && ok;
      const double sec = time_best(n, reps, [&] {
        rotation_hardware_batch(njj, nii, cov, t, pc, ps, rot);
      });
      g_sink += t[0];
      runs.push_back({"rotation_batch", simd::level_name(level), n, sec,
                      static_cast<double>(n) / sec, ok});
    }

    // Strict dot (the left-to-right reference, same code at every level)
    // and the relaxed 4-lane-split reduction.
    {
      const double strict_sec =
          time_best(n, reps, [&] { g_sink += dot(x0, y0); });
      runs.push_back({"dot_strict", "scalar", n, strict_sec,
                      static_cast<double>(n) / strict_sec, true});
    }
    double ref_relaxed = 0.0;
    for (const simd::Level level : levels) {
      simd::set_level(level);
      const double value = dot_relaxed(x0, y0);
      bool ok = true;
      if (level == simd::Level::kScalar)
        ref_relaxed = value;
      else
        ok = fp::to_bits(value) == fp::to_bits(ref_relaxed);
      all_identical = all_identical && ok;
      const double sec =
          time_best(n, reps, [&] { g_sink += dot_relaxed(x0, y0); });
      runs.push_back({"dot_relaxed", simd::level_name(level), n, sec,
                      static_cast<double>(n) / sec, ok});
    }
  }
  simd::set_level(simd::Level::kScalar);

  AsciiTable table({"kernel", "n", "level", "seconds", "elems/s", "bits"});
  table.set_caption("one pass per timing, best of " + cli.get("reps") +
                    " reps:");
  for (const Run& r : runs)
    table.add_row({r.kernel, std::to_string(r.n), r.level, fmt(r.seconds),
                   fmt(r.elems_per_s), r.bit_identical ? "ok" : "DIVERGED"});
  std::cout << table.to_string() << '\n';
  std::cout << "(g_sink=" << g_sink << ")\n";

  std::ostringstream json;
  json << "{\n  \"bench\": \"simd_kernels\",\n"
       << "  \"manifest\": "
       << manifest("sizes=" + cli.get("sizes") + " reps=" + cli.get("reps"))
       << ",\n"
       << "  \"compiled_avx2\": "
       << (simd::compiled_with_avx2() ? "true" : "false") << ",\n"
       << "  \"cpu_avx2\": " << (simd::cpu_has_avx2() ? "true" : "false")
       << ",\n  \"reps\": " << reps << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    json << (i == 0 ? "" : ",\n") << "    {\"kernel\": \"" << r.kernel
         << "\", \"n\": " << r.n << ", \"level\": \"" << r.level
         << "\", \"seconds\": " << fmt(r.seconds)
         << ", \"elems_per_s\": " << fmt(r.elems_per_s)
         << ", \"bit_identical\": " << (r.bit_identical ? "true" : "false")
         << "}";
  }
  json << "\n  ],\n  \"all_bit_identical\": "
       << (all_identical ? "true" : "false") << "\n}\n";

  const std::string out_path = cli.get("out");
  write_file(out_path, json.str());
  std::cout << "JSON written to " << out_path << '\n';

  if (!all_identical) {
    std::cerr << "BIT-IDENTITY FAILURE: a dispatch level diverged from the "
                 "scalar reference\n";
    return 1;
  }
  return 0;
}

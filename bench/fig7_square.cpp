// Reproduces Fig. 7: SVD computation time for square matrices — our
// accelerator (timing model) vs. the Householder-based software baseline
// (our Golub-Kahan implementation, the MATLAB/MKL stand-in), vs. a
// GPU-like bulk-synchronous Hestenes baseline, plus the prior-work numbers
// the paper quotes in Section VI.B.
//
// Absolute software times come from this host, not the paper's 2.2 GHz
// Xeon; the *shape* to check is: the accelerator wins at small-to-medium
// dimensions and the advantage erodes as n grows (the paper's crossover is
// near n = 512 on its host).
#include <iostream>

#include "arch/timing_model.hpp"
#include "baselines/literature.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "reportgen/runner.hpp"

using namespace hjsvd;

int main(int argc, char** argv) {
  Cli cli("Fig. 7: SVD time for square matrices, accelerator vs software");
  cli.add_option("sizes", "128,256,512,1024", "square sizes to run");
  cli.add_option("gpu-like-max", "512",
                 "largest size for the (slow) GPU-like measured baseline");
  cli.add_option("csv", "", "optional path for CSV output");
  cli.parse(argc, argv);
  const auto sizes = cli.get_int_list("sizes");
  const auto gpu_max = cli.get_int("gpu-like-max");

  std::cout << "== Fig. 7 reproduction: square-matrix SVD time ==\n"
            << report::host_description() << "\n\n";

  const arch::AcceleratorConfig cfg;
  AsciiTable t({"n x n", "FPGA model (s)", "Golub-Kahan sw (s)",
                "GPU-like Hestenes (s)", "paper FPGA (s)",
                "sw / FPGA speedup"});
  for (auto n : sizes) {
    const auto nn = static_cast<std::size_t>(n);
    const double fpga = arch::estimate_seconds(cfg, nn, nn);
    const Matrix a = report::experiment_matrix(nn, nn);
    const double sw = report::golub_kahan_seconds(a);
    const double gpu_like =
        n <= gpu_max ? report::parallel_hestenes_seconds(a) : -1.0;
    const auto paper = literature::paper_table1_seconds(nn, nn);
    t.add_row({std::to_string(n) + " x " + std::to_string(n),
               format_sci(fpga, 3), format_sci(sw, 3),
               gpu_like >= 0 ? format_sci(gpu_like, 3) : "(skipped)",
               paper ? format_sci(*paper, 3) : "-",
               format_fixed(sw / fpga, 1) + "x"});
  }
  std::cout << t.to_string() << '\n';

  std::cout << "Prior work quoted by the paper (Section VI.B):\n";
  AsciiTable prior({"design", "matrix", "time (s)", "our model same size (s)"});
  for (const auto& p : literature::gpu_hestenes_prior()) {
    prior.add_row({p.label,
                   std::to_string(p.rows) + " x " + std::to_string(p.cols),
                   format_sci(p.seconds, 3),
                   format_sci(arch::estimate_seconds(cfg, p.rows, p.cols), 3)});
  }
  for (const auto& p : literature::fpga_fixed_point_prior()) {
    prior.add_row({p.label,
                   std::to_string(p.rows) + " x " + std::to_string(p.cols),
                   format_sci(p.seconds, 3),
                   format_sci(arch::estimate_seconds(cfg, p.rows, p.cols), 3)});
  }
  std::cout << prior.to_string();
  std::cout << "\nPaper claim check: our 128x128 model time "
            << format_sci(arch::estimate_seconds(cfg, 128, 128), 3)
            << " s is >5x faster than the 24.31 ms the fixed-point FPGA [11] "
               "needs for its largest (32x127) case: "
            << format_fixed(24.3143e-3 / arch::estimate_seconds(cfg, 128, 128),
                            1)
            << "x\n";

  if (const auto path = cli.get("csv"); !path.empty()) {
    write_file(path, t.to_csv());
    std::cout << "CSV written to " << path << '\n';
  }
  return 0;
}

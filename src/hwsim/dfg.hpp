// Dataflow-graph list scheduling onto shared floating-point cores.
//
// The paper's Jacobi rotation component evaluates eqs. (8)-(10) on a small
// set of shared cores ("1 multiplier, 2 adders, 1 divider and 1 square-root
// calculator", Section VI.A) and sustains 8 independent rotations every 64
// cycles.  This module provides the generic machinery: describe a
// computation as a DAG of FP operations, schedule it onto a fixed set of
// pipelined units, and measure latency and steady-state initiation interval
// across repeated instances.  arch/ uses it to derive (and tests use it to
// validate) the rotation unit's timing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fp/latency.hpp"
#include "hwsim/clock.hpp"

namespace hjsvd::hwsim {

/// A node in a floating-point dataflow graph.
struct DfgNode {
  fp::OpKind kind;
  std::vector<std::size_t> deps;  // indices of producer nodes
  std::string label;
};

/// A DAG of floating-point operations.  Nodes must be added in a valid
/// topological order (dependencies before dependents).
class Dataflow {
 public:
  /// Adds a node; returns its index.
  std::size_t add(fp::OpKind kind, std::vector<std::size_t> deps,
                  std::string label = {});

  const std::vector<DfgNode>& nodes() const { return nodes_; }
  std::size_t size() const { return nodes_.size(); }

 private:
  std::vector<DfgNode> nodes_;
};

/// Available functional units.  Adders serve both add and sub (the Coregen
/// add/sub core is one IP block); every unit is pipelined with II = 1.
struct FuSet {
  std::uint32_t mul = 1;
  std::uint32_t add = 2;
  std::uint32_t div = 1;
  std::uint32_t sqrt = 1;

  std::uint32_t count(fp::OpKind k) const;
};

/// Per-node schedule plus overall makespan.
struct Schedule {
  std::vector<Cycle> start;
  std::vector<Cycle> finish;
  Cycle makespan = 0;
};

/// Critical-path-priority list scheduling of the graph onto the unit set.
Schedule list_schedule(const Dataflow& g, const FuSet& fus,
                       const fp::CoreLatencies& lat);

/// Latency/throughput of issuing `instances` independent copies of the graph
/// back-to-back on the same unit set.
struct ThroughputResult {
  Cycle latency = 0;          // finish of the first instance
  Cycle makespan = 0;         // finish of the last instance
  double interval = 0.0;      // steady-state cycles between completions
};

ThroughputResult pipelined_throughput(const Dataflow& g, const FuSet& fus,
                                      const fp::CoreLatencies& lat,
                                      std::size_t instances);

/// The Jacobi rotation dataflow of eqs. (8)-(10): inputs are the two squared
/// 2-norms and the covariance; outputs are t, the updated norms, cos and
/// sin.  Returned graph contains FP-core operations only (sign/abs
/// manipulations are free in hardware).
Dataflow make_rotation_dataflow();

}  // namespace hjsvd::hwsim

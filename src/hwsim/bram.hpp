// On-chip BRAM model.
//
// The design uses simple dual-port RAMs to cache rotation angle parameters
// and in-flight covariances; the whole covariance matrix fits on chip only
// for column dimensions up to 256 (Section VI.A).  The model tracks word
// capacity and per-cycle port usage.
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "hwsim/clock.hpp"

namespace hjsvd::hwsim {

/// A simple dual-port memory: one read port + one write port per cycle
/// (Xilinx "simple dual port" configuration), fixed word capacity.
class DualPortBram {
 public:
  explicit DualPortBram(std::uint64_t capacity_words)
      : capacity_(capacity_words) {}

  std::uint64_t capacity_words() const { return capacity_; }

  /// True if `words` fit entirely on chip.
  bool fits(std::uint64_t words) const { return words <= capacity_; }

  /// Registers a read in cycle `now`; returns false on a port conflict
  /// (a read already issued this cycle).
  bool try_read(Cycle now) { return use_port(now, read_cycle_, read_conflicts_); }

  /// Registers a write in cycle `now`; returns false on a port conflict.
  bool try_write(Cycle now) {
    return use_port(now, write_cycle_, write_conflicts_);
  }

  std::uint64_t read_conflicts() const { return read_conflicts_; }
  std::uint64_t write_conflicts() const { return write_conflicts_; }

 private:
  bool use_port(Cycle now, Cycle& last, std::uint64_t& conflicts) {
    if (last == now + 1) {  // stored as now+1 so cycle 0 works
      ++conflicts;
      return false;
    }
    last = now + 1;
    return true;
  }

  std::uint64_t capacity_;
  Cycle read_cycle_ = 0;
  Cycle write_cycle_ = 0;
  std::uint64_t read_conflicts_ = 0;
  std::uint64_t write_conflicts_ = 0;
};

}  // namespace hjsvd::hwsim

// Pipelined functional-unit model.
//
// The Coregen floating-point cores are fully pipelined: a new operation can
// be issued every `initiation_interval` cycles (1 for all cores used in the
// paper) and the result appears `latency` cycles after issue.
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "hwsim/clock.hpp"

namespace hjsvd::hwsim {

/// A single pipelined functional unit with fixed latency and initiation
/// interval.  Tracks the earliest legal next issue slot plus utilization.
class PipelinedUnit {
 public:
  PipelinedUnit(std::uint32_t latency, std::uint32_t initiation_interval = 1)
      : latency_(latency), ii_(initiation_interval) {
    HJSVD_ENSURE(initiation_interval >= 1, "initiation interval must be >= 1");
  }

  /// True if an operation may issue at `now` without violating the II.
  bool can_issue(Cycle now) const { return now >= next_issue_; }

  /// Issues an operation at the earliest legal cycle >= `now`; returns the
  /// cycle at which the result is available.
  Cycle issue(Cycle now) {
    const Cycle start = now > next_issue_ ? now : next_issue_;
    next_issue_ = start + ii_;
    ++issued_;
    last_retire_ = start + latency_;
    return last_retire_;
  }

  std::uint32_t latency() const { return latency_; }
  std::uint64_t issued() const { return issued_; }

  /// Completion cycle of the most recently issued operation (pipeline-drain
  /// accounting).
  Cycle last_retire() const { return last_retire_; }

  /// Earliest cycle the next operation may issue.
  Cycle next_free() const { return next_issue_; }

 private:
  std::uint32_t latency_;
  std::uint32_t ii_;
  Cycle next_issue_ = 0;
  Cycle last_retire_ = 0;
  std::uint64_t issued_ = 0;
};

}  // namespace hjsvd::hwsim

// Clock-domain bookkeeping for the cycle-level models.
#pragma once

#include <cstdint>

namespace hjsvd::hwsim {

/// Simulation time in clock cycles.
using Cycle = std::uint64_t;

/// A fixed-frequency clock domain; converts cycle counts to wall time.
/// The paper's design runs at 150 MHz (Section VI.A).
struct ClockDomain {
  double frequency_hz = 150e6;

  double seconds(Cycle cycles) const {
    return static_cast<double>(cycles) / frequency_hz;
  }
};

}  // namespace hjsvd::hwsim

// Bounded FIFO with stall accounting.
//
// The paper uses two groups of eight 64-bit FIFOs for input/output
// synchronization and one group of eight 127-bit FIFOs between the Hestenes
// preprocessor and the Update operator (Section VI.A).  At the simulation's
// transaction granularity a FIFO is a bounded queue whose fullness/emptiness
// stalls its producer/consumer; we count those stalls for reporting.
#pragma once

#include <cstdint>
#include <deque>

#include "common/error.hpp"

namespace hjsvd::hwsim {

template <class T>
class Fifo {
 public:
  explicit Fifo(std::size_t capacity) : capacity_(capacity) {
    HJSVD_ENSURE(capacity > 0, "FIFO capacity must be positive");
  }

  bool full() const { return items_.size() >= capacity_; }
  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Attempts to enqueue; returns false (and counts a producer stall) when
  /// full.
  bool try_push(T value) {
    if (full()) {
      ++push_stalls_;
      return false;
    }
    items_.push_back(std::move(value));
    if (items_.size() > high_water_) high_water_ = items_.size();
    return true;
  }

  /// Attempts to dequeue into `out`; returns false (and counts a consumer
  /// stall) when empty.
  bool try_pop(T& out) {
    if (empty()) {
      ++pop_stalls_;
      return false;
    }
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  const T& front() const {
    HJSVD_ENSURE(!empty(), "front() on empty FIFO");
    return items_.front();
  }

  std::uint64_t push_stalls() const { return push_stalls_; }
  std::uint64_t pop_stalls() const { return pop_stalls_; }
  std::size_t high_water() const { return high_water_; }

 private:
  std::size_t capacity_;
  std::deque<T> items_;
  std::uint64_t push_stalls_ = 0;
  std::uint64_t pop_stalls_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace hjsvd::hwsim

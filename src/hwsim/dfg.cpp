#include "hwsim/dfg.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hjsvd::hwsim {
namespace {

/// Resource class index: mul / add(+sub) / div / sqrt.
int resource_class(fp::OpKind k) {
  switch (k) {
    case fp::OpKind::kMul: return 0;
    case fp::OpKind::kAdd:
    case fp::OpKind::kSub: return 1;
    case fp::OpKind::kDiv: return 2;
    case fp::OpKind::kSqrt: return 3;
  }
  return 0;  // unreachable
}

/// Longest path (in cycles, inclusive of own latency) from each node to any
/// sink — the classic list-scheduling priority.
std::vector<Cycle> critical_path_priority(const Dataflow& g,
                                          const fp::CoreLatencies& lat) {
  const auto& nodes = g.nodes();
  std::vector<Cycle> prio(nodes.size(), 0);
  // Nodes are in topological order; walk backwards accumulating.
  for (std::size_t i = nodes.size(); i-- > 0;) {
    if (prio[i] == 0) prio[i] = lat.of(nodes[i].kind);
  }
  for (std::size_t i = nodes.size(); i-- > 0;) {
    const Cycle need = prio[i] + 0;
    for (std::size_t d : nodes[i].deps) {
      const Cycle via = need + lat.of(nodes[d].kind);
      if (via > prio[d]) prio[d] = via;
    }
  }
  return prio;
}

}  // namespace

std::size_t Dataflow::add(fp::OpKind kind, std::vector<std::size_t> deps,
                          std::string label) {
  for (std::size_t d : deps)
    HJSVD_ENSURE(d < nodes_.size(), "dataflow deps must precede the node");
  nodes_.push_back(DfgNode{kind, std::move(deps), std::move(label)});
  return nodes_.size() - 1;
}

std::uint32_t FuSet::count(fp::OpKind k) const {
  switch (k) {
    case fp::OpKind::kMul: return mul;
    case fp::OpKind::kAdd:
    case fp::OpKind::kSub: return add;
    case fp::OpKind::kDiv: return div;
    case fp::OpKind::kSqrt: return sqrt;
  }
  return 0;  // unreachable
}

Schedule list_schedule(const Dataflow& g, const FuSet& fus,
                       const fp::CoreLatencies& lat) {
  const auto& nodes = g.nodes();
  HJSVD_ENSURE(fus.mul >= 1 && fus.add >= 1 && fus.div >= 1 && fus.sqrt >= 1,
               "need at least one unit of each class");
  Schedule sched;
  sched.start.assign(nodes.size(), 0);
  sched.finish.assign(nodes.size(), 0);
  if (nodes.empty()) return sched;

  const auto prio = critical_path_priority(g, lat);

  // Per-class unit free times (II = 1: a unit is busy for one cycle per
  // issue; results stream out of the pipeline latency cycles later).
  const std::uint32_t class_units[4] = {fus.mul, fus.add, fus.div, fus.sqrt};
  std::vector<Cycle> unit_free[4];
  for (int c = 0; c < 4; ++c) unit_free[c].assign(class_units[c], 0);

  std::vector<bool> scheduled(nodes.size(), false);
  std::size_t remaining = nodes.size();
  Cycle now = 0;
  while (remaining > 0) {
    // Gather nodes ready at `now`, highest priority first.
    std::vector<std::size_t> ready;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (scheduled[i]) continue;
      bool ok = true;
      for (std::size_t d : nodes[i].deps) {
        if (!scheduled[d] || sched.finish[d] > now) {
          ok = false;
          break;
        }
      }
      if (ok) ready.push_back(i);
    }
    std::sort(ready.begin(), ready.end(), [&](std::size_t a, std::size_t b) {
      if (prio[a] != prio[b]) return prio[a] > prio[b];
      return a < b;  // deterministic tie-break
    });
    bool progressed = false;
    for (std::size_t i : ready) {
      auto& frees = unit_free[resource_class(nodes[i].kind)];
      auto it = std::min_element(frees.begin(), frees.end());
      if (*it <= now) {
        sched.start[i] = now;
        sched.finish[i] = now + lat.of(nodes[i].kind);
        *it = now + 1;
        scheduled[i] = true;
        --remaining;
        progressed = true;
        sched.makespan = std::max(sched.makespan, sched.finish[i]);
      }
    }
    (void)progressed;
    ++now;
    HJSVD_ASSERT(now < 1'000'000, "list scheduler failed to converge");
  }
  return sched;
}

ThroughputResult pipelined_throughput(const Dataflow& g, const FuSet& fus,
                                      const fp::CoreLatencies& lat,
                                      std::size_t instances) {
  HJSVD_ENSURE(instances >= 2, "throughput needs at least two instances");
  // Replicate the graph `instances` times (independent copies) and schedule
  // the union; copy boundaries share no edges so only resources couple them.
  Dataflow big;
  const std::size_t stride = g.size();
  for (std::size_t k = 0; k < instances; ++k) {
    for (const auto& node : g.nodes()) {
      auto deps = node.deps;
      for (auto& d : deps) d += k * stride;
      big.add(node.kind, std::move(deps), node.label);
    }
  }
  const Schedule s = list_schedule(big, fus, lat);
  ThroughputResult r;
  auto instance_finish = [&](std::size_t k) {
    Cycle f = 0;
    for (std::size_t i = 0; i < stride; ++i)
      f = std::max(f, s.finish[k * stride + i]);
    return f;
  };
  r.latency = instance_finish(0);
  r.makespan = s.makespan;
  r.interval = static_cast<double>(instance_finish(instances - 1) -
                                   instance_finish(0)) /
               static_cast<double>(instances - 1);
  return r;
}

Dataflow make_rotation_dataflow() {
  // Eqs. (8)-(10) plus the norm updates of Algorithm 1 lines 15-16.
  // Power-of-two scalings (2c, 4c^2, 2c^2) and abs/sign are exponent/sign
  // manipulations — free in hardware, so they do not appear as core ops.
  Dataflow g;
  const auto d = g.add(fp::OpKind::kSub, {}, "d = n2 - n1");
  const auto c2 = g.add(fp::OpKind::kMul, {}, "c2 = c*c");
  const auto d2 = g.add(fp::OpKind::kMul, {d}, "d2 = d*d");
  const auto s = g.add(fp::OpKind::kAdd, {d2, c2}, "s = d2 + 4*c2");
  const auto r = g.add(fp::OpKind::kSqrt, {s}, "r = sqrt(s)");
  const auto dent = g.add(fp::OpKind::kAdd, {d, r}, "dent = |d| + r");
  const auto t = g.add(fp::OpKind::kDiv, {dent}, "t = |2c| / dent");
  const auto adr = g.add(fp::OpKind::kMul, {d, r}, "adr = |d| * r");
  const auto num = g.add(fp::OpKind::kAdd, {d2, c2}, "num = d2 + 2*c2");
  const auto numc = g.add(fp::OpKind::kAdd, {num, adr}, "numc = num + adr");
  const auto den = g.add(fp::OpKind::kAdd, {s, adr}, "den = s + adr");
  const auto cosq = g.add(fp::OpKind::kDiv, {numc, den}, "cos^2");
  g.add(fp::OpKind::kSqrt, {cosq}, "cos");
  const auto sinq = g.add(fp::OpKind::kDiv, {c2, den}, "sin^2");
  g.add(fp::OpKind::kSqrt, {sinq}, "sin");
  const auto tc = g.add(fp::OpKind::kMul, {t}, "tc = t * cov");
  g.add(fp::OpKind::kAdd, {tc}, "Djj += tc");
  g.add(fp::OpKind::kSub, {tc}, "Dii -= tc");
  return g;
}

}  // namespace hjsvd::hwsim

// Off-chip memory channel model (Convey HC-2 style).
//
// The HC-2 coprocessor memory system exposes a wide, high-bandwidth
// interface (~80 GB/s aggregate across 8 memory controllers).  At 150 MHz
// that is ~64 doubles per cycle of aggregate streaming bandwidth, which is
// how the model is parameterized.  Transfers are serialized on the channel
// (bandwidth sharing), with a fixed access latency added per request.
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "hwsim/clock.hpp"

namespace hjsvd::hwsim {

/// Configuration of the off-chip memory system.
struct MemoryConfig {
  /// Aggregate streaming bandwidth in 64-bit words per cycle.
  double words_per_cycle = 64.0;
  /// Fixed latency per request (access + interconnect), cycles.
  std::uint32_t request_latency = 95;
};

/// Serializing bandwidth model: each transfer occupies the channel for
/// ceil(words / bandwidth) cycles; completion additionally waits the fixed
/// request latency.
class MemoryChannelModel {
 public:
  explicit MemoryChannelModel(MemoryConfig cfg) : cfg_(cfg) {
    HJSVD_ENSURE(cfg.words_per_cycle > 0, "bandwidth must be positive");
  }

  /// Enqueues a transfer of `words` 64-bit words at cycle `now`; returns the
  /// completion cycle.
  Cycle transfer(Cycle now, std::uint64_t words) {
    const Cycle start = now > channel_free_ ? now : channel_free_;
    const auto busy = static_cast<Cycle>(
        (static_cast<double>(words) + cfg_.words_per_cycle - 1.0) /
        cfg_.words_per_cycle);
    channel_free_ = start + busy;
    words_moved_ += words;
    ++transfers_;
    return channel_free_ + cfg_.request_latency;
  }

  /// Cycles the channel needs to move `words` at full bandwidth (no queue).
  Cycle streaming_cycles(std::uint64_t words) const {
    return static_cast<Cycle>(
        (static_cast<double>(words) + cfg_.words_per_cycle - 1.0) /
        cfg_.words_per_cycle);
  }

  const MemoryConfig& config() const { return cfg_; }
  std::uint64_t words_moved() const { return words_moved_; }
  std::uint64_t transfers() const { return transfers_; }

 private:
  MemoryConfig cfg_;
  Cycle channel_free_ = 0;
  std::uint64_t words_moved_ = 0;
  std::uint64_t transfers_ = 0;
};

}  // namespace hjsvd::hwsim

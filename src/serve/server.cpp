#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <limits>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "api/engine.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hjsvd::serve {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start, Clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - start).count();
}

/// One admitted request waiting for dispatch.
struct PendingItem {
  Request req;
  SvdServer::ReplyFn reply;
  Clock::time_point admitted_at;
  std::uint64_t seq = 0;
};

/// Wave grouping key: requests sharing it can run as one decompose_batch
/// call (one SvdOptions for the whole batch).
using OptionsKey = std::tuple<int, double, std::size_t, bool, bool>;

OptionsKey options_key(const Request& req) {
  return {static_cast<int>(req.method), req.tolerance, req.max_sweeps,
          req.compute_u, req.compute_v};
}

/// Dispatch order: priority descending, earliest deadline first (none
/// sorts last), then admission sequence.  Deterministic for a given
/// admission order.
bool dispatch_before(const PendingItem& a, const PendingItem& b) {
  if (a.req.priority != b.req.priority) return a.req.priority > b.req.priority;
  const double da =
      a.req.deadline_ms > 0.0 ? a.req.deadline_ms : std::numeric_limits<double>::infinity();
  const double db =
      b.req.deadline_ms > 0.0 ? b.req.deadline_ms : std::numeric_limits<double>::infinity();
  if (da != db) return da < db;
  return a.seq < b.seq;
}

double percentile(std::vector<double> sorted_copy, double p) {
  if (sorted_copy.empty()) return 0.0;
  std::sort(sorted_copy.begin(), sorted_copy.end());
  const double rank = p * static_cast<double>(sorted_copy.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_copy.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_copy[lo] + frac * (sorted_copy[hi] - sorted_copy[lo]);
}

}  // namespace

struct SvdServer::Impl {
  ServerConfig config;
  EngineInstance engine;

  mutable std::mutex mu;
  std::condition_variable cv;        ///< Wakes the dispatcher.
  std::condition_variable drain_cv;  ///< Wakes drain()/stop() waiters.
  std::vector<PendingItem> queue;
  std::vector<std::string> pending_ids;  ///< In-flight ids (queued or in wave).
  std::uint64_t next_seq = 0;
  bool hold = false;
  bool stopping = false;       ///< Reject new submissions.
  bool shutdown = false;       ///< Dispatcher exits once queue is empty.
  bool wave_in_flight = false;
  std::vector<double> latencies_ms;  ///< Dispatcher-appended, read at stop().

  std::thread dispatcher;
  bool stopped = false;  ///< stop() already completed.

  explicit Impl(const ServerConfig& cfg)
      : config(cfg), engine(EngineConfig{.threads = cfg.threads}) {
    hold = cfg.hold_dispatch;
    dispatcher = std::thread([this] { dispatcher_main(); });
  }

  obs::MetricsRegistry* metrics() { return obs::active(config.metrics); }

  bool id_in_flight(const std::string& id) const {
    return std::find(pending_ids.begin(), pending_ids.end(), id) !=
           pending_ids.end();
  }

  void erase_pending_id(const std::string& id) {
    pending_ids.erase(std::find(pending_ids.begin(), pending_ids.end(), id));
  }

  void reply_error_counted(const ReplyFn& reply, std::string_view id,
                           std::string_view code, std::string_view message) {
    if (auto* m = metrics()) m->counter_add("serve.replies_error", "replies", 1);
    reply(format_error_reply(id, code, message));
  }

  void dispatcher_main() {
    obs::TraceRecorder* trace = obs::active(config.trace);
    std::uint32_t tid = 0;
    if (trace != nullptr) tid = trace->register_thread("serve dispatcher");

    for (;;) {
      std::vector<PendingItem> wave;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [this] {
          return shutdown || (!queue.empty() && !hold);
        });
        if (queue.empty()) {
          if (shutdown) return;
          continue;
        }
        std::stable_sort(queue.begin(), queue.end(), dispatch_before);
        const std::size_t take = std::min(config.wave_max, queue.size());
        wave.assign(std::make_move_iterator(queue.begin()),
                    std::make_move_iterator(queue.begin() + take));
        queue.erase(queue.begin(), queue.begin() + take);
        wave_in_flight = true;
      }
      run_wave(std::move(wave), trace, tid);
      {
        std::lock_guard<std::mutex> lock(mu);
        wave_in_flight = false;
      }
      drain_cv.notify_all();
    }
  }

  void run_wave(std::vector<PendingItem> wave, obs::TraceRecorder* trace,
                std::uint32_t tid) {
    auto* m = metrics();
    const Clock::time_point dispatch_time = Clock::now();

    // Deadline gate at the dispatch boundary: requests that expired while
    // queued are answered without computing anything.
    std::vector<PendingItem> live;
    live.reserve(wave.size());
    for (PendingItem& item : wave) {
      const double waited = ms_since(item.admitted_at, dispatch_time);
      if (item.req.deadline_ms > 0.0 && waited > item.req.deadline_ms) {
        if (m) m->counter_add("serve.expired.deadline", "requests", 1);
        reply_error_counted(item.reply, item.req.id, kErrDeadlineExpired,
                            "deadline of " + std::to_string(item.req.deadline_ms) +
                                " ms expired while queued");
        finish_item(item.req.id);
      } else {
        live.push_back(std::move(item));
      }
    }
    if (live.empty()) return;

    if (m) {
      m->counter_add("serve.waves_total", "waves", 1);
      m->hist_record("serve.wave.size", "requests",
                     static_cast<double>(live.size()));
    }
    obs::Span wave_span;
    if (trace != nullptr)
      wave_span = obs::Span(trace, tid, "serve", "wave",
                            obs::ArgsBuilder()
                                .add("requests", live.size())
                                .str());

    // Group by decomposition options; each group is one batch wave through
    // the warm engine.
    std::map<OptionsKey, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < live.size(); ++i)
      groups[options_key(live[i].req)].push_back(i);

    for (const auto& [key, members] : groups) {
      (void)key;
      run_group(live, members, trace, tid);
    }
    wave_span.end();
  }

  void run_group(std::vector<PendingItem>& live,
                 const std::vector<std::size_t>& members,
                 obs::TraceRecorder* trace, std::uint32_t tid) {
    std::vector<Matrix> batch;
    batch.reserve(members.size());
    for (const std::size_t i : members)
      batch.push_back(request_matrix(live[i].req));
    const SvdOptions options = request_options(live[members.front()].req);

    std::vector<SvdResult> results;
    std::vector<std::exception_ptr> item_errors;
    bool batch_failed = false;
    try {
      results = engine.decompose_batch(batch, options, nullptr, &item_errors);
    } catch (const std::exception&) {
      // Batch-level validation failure (e.g. a square-only method given a
      // rectangular matrix).  One poisoned request must not take down its
      // wave-mates: fall back to per-item decomposition, each individually
      // guarded.  decompose() is bitwise identical to the batch path.
      batch_failed = true;
    }
    if (batch_failed) {
      results.clear();
      item_errors.assign(members.size(), nullptr);
      results.resize(members.size());
      for (std::size_t k = 0; k < members.size(); ++k) {
        try {
          results[k] = engine.decompose(batch[k], options);
        } catch (const std::exception&) {
          item_errors[k] = std::current_exception();
        }
      }
    }

    const Clock::time_point done = Clock::now();
    auto* m = metrics();
    for (std::size_t k = 0; k < members.size(); ++k) {
      PendingItem& item = live[members[k]];
      if (item_errors[k] != nullptr) {
        std::string message = "decomposition failed";
        try {
          std::rethrow_exception(item_errors[k]);
        } catch (const std::exception& e) {
          message = e.what();
        }
        reply_error_counted(item.reply, item.req.id, kErrEngine, message);
      } else {
        const double latency = ms_since(item.admitted_at, done);
        if (m) {
          m->counter_add("serve.replies_ok", "replies", 1);
          m->hist_record("serve.latency_ms", "ms", latency);
        }
        if (trace != nullptr)
          trace->emit_instant(tid, "serve", "reply", trace->now_us(),
                              obs::ArgsBuilder()
                                  .add("id", item.req.id)
                                  .add("latency_ms", latency)
                                  .str());
        {
          std::lock_guard<std::mutex> lock(mu);
          latencies_ms.push_back(latency);
        }
        item.reply(format_ok_reply(item.req, results[k], latency));
      }
      finish_item(item.req.id);
    }
  }

  /// Removes a replied-to request from the in-flight id set.
  void finish_item(const std::string& id) {
    std::lock_guard<std::mutex> lock(mu);
    erase_pending_id(id);
  }
};

SvdServer::SvdServer(const ServerConfig& config)
    : impl_(std::make_unique<Impl>(config)) {}

SvdServer::~SvdServer() { stop(); }

void SvdServer::submit_line(std::string_view line, ReplyFn reply) {
  Impl& s = *impl_;
  if (auto* m = s.metrics()) m->counter_add("serve.requests_total", "requests", 1);

  Request req;
  try {
    req = parse_request(line, s.config.limits);
  } catch (const BadRequest& e) {
    if (auto* m = s.metrics())
      m->counter_add("serve.rejected.bad_request", "requests", 1);
    s.reply_error_counted(reply, e.id, kErrBadRequest, e.message);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.stopping) {
      if (auto* m = s.metrics())
        m->counter_add("serve.rejected.overload", "requests", 1);
      s.reply_error_counted(reply, req.id, kErrOverload,
                            "server is shutting down");
      return;
    }
    if (s.id_in_flight(req.id)) {
      if (auto* m = s.metrics())
        m->counter_add("serve.rejected.bad_request", "requests", 1);
      s.reply_error_counted(reply, req.id, kErrBadRequest,
                            "duplicate in-flight id '" + req.id + "'");
      return;
    }
    if (s.queue.size() >= s.config.queue_capacity) {
      if (auto* m = s.metrics())
        m->counter_add("serve.rejected.overload", "requests", 1);
      s.reply_error_counted(reply, req.id, kErrOverload,
                            "admission queue full (" +
                                std::to_string(s.config.queue_capacity) +
                                " pending)");
      return;
    }
    if (auto* m = s.metrics()) {
      m->counter_add("serve.admitted_total", "requests", 1);
      m->series_append("serve.queue.depth", "requests",
                       static_cast<double>(s.next_seq),
                       static_cast<double>(s.queue.size() + 1));
    }
    s.pending_ids.push_back(req.id);
    s.queue.push_back(PendingItem{std::move(req), std::move(reply),
                                  Clock::now(), s.next_seq++});
  }
  s.cv.notify_one();
}

void SvdServer::release_dispatch() {
  Impl& s = *impl_;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.hold = false;
  }
  s.cv.notify_all();
}

void SvdServer::drain() {
  Impl& s = *impl_;
  release_dispatch();
  std::unique_lock<std::mutex> lock(s.mu);
  s.drain_cv.wait(lock,
                  [&s] { return s.queue.empty() && !s.wave_in_flight; });
}

void SvdServer::stop() {
  Impl& s = *impl_;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.stopped) return;
    s.stopping = true;
    s.hold = false;
  }
  drain();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.shutdown = true;
  }
  s.cv.notify_all();
  s.dispatcher.join();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.stopped = true;
  }
  if (auto* m = s.metrics()) {
    m->gauge_set("serve.latency_p50_ms", "ms", percentile(s.latencies_ms, 0.50));
    m->gauge_set("serve.latency_p95_ms", "ms", percentile(s.latencies_ms, 0.95));
    m->counter_add("serve.workspace.reuse_total", "acquires",
                   s.engine.workspace_reuse_total());
    m->counter_add("serve.workspace.alloc_total", "acquires",
                   s.engine.workspace_alloc_total());
  }
}

std::size_t SvdServer::queue_depth() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->queue.size();
}

std::uint64_t SvdServer::workspace_reuse_total() const {
  return impl_->engine.workspace_reuse_total();
}

std::uint64_t SvdServer::workspace_alloc_total() const {
  return impl_->engine.workspace_alloc_total();
}

}  // namespace hjsvd::serve

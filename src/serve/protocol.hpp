// Wire protocol of the hjsvd_serve daemon: newline-delimited JSON frames,
// schema "hjsvd.serve.v1".
//
// Request frame (one line):
//   {"schema": "hjsvd.serve.v1",          // optional; must match if present
//    "id": "r-17",                        // required, non-empty, unique
//                                         //   among in-flight requests
//    "rows": 8, "cols": 6,                // required, within Limits
//    "data": [ ... rows*cols numbers ],   // required, column-major
//    "method": "hestenes",                // optional; svd_method_token vocab
//    "compute_u": false, "compute_v": false,
//    "tolerance": 1e-13, "max_sweeps": 30,
//    "priority": 0,                       // larger = dispatched sooner
//    "deadline_ms": 0}                    // 0 = none; from admission time
//
// Reply frames (exactly one per submitted line, in either form):
//   {"schema": "hjsvd.serve.v1", "id": "...", "status": "ok",
//    "sweeps": N, "converged": true, "sigma": [...],
//    "u": {"rows": m, "cols": k, "data": [...]},   // when compute_u
//    "v": {"rows": n, "cols": k, "data": [...]},   // when compute_v
//    "latency_ms": 1.25}
//   {"schema": "hjsvd.serve.v1", "id": "...", "status": "error",
//    "code": "bad_request" | "rejected:overload" | "deadline_expired"
//            | "engine_error",
//    "message": "..."}
//
// Every number is serialized with 17 significant digits, so a sigma/U/V
// value round-trips bit-for-bit: a client parsing an ok reply recovers
// exactly the doubles hjsvd::svd() produced (bench/serve_sweep.cpp gates
// on this).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "api/svd.hpp"

namespace hjsvd::serve {

inline constexpr const char* kProtocolSchema = "hjsvd.serve.v1";

/// Typed error codes of the "error" reply.
inline constexpr const char* kErrBadRequest = "bad_request";
inline constexpr const char* kErrOverload = "rejected:overload";
inline constexpr const char* kErrDeadlineExpired = "deadline_expired";
inline constexpr const char* kErrEngine = "engine_error";

/// Admission-control bounds on a single request frame.
struct Limits {
  std::size_t max_dim = 4096;          ///< rows and cols each.
  std::size_t max_entries = 1u << 22;  ///< rows*cols (4M doubles = 32 MB).
};

/// One parsed decomposition request.
struct Request {
  std::string id;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<double> data;  ///< Column-major, rows*cols entries.
  SvdMethod method = SvdMethod::kModifiedHestenes;
  bool compute_u = false;
  bool compute_v = false;
  double tolerance = 1e-13;
  std::size_t max_sweeps = 30;
  int priority = 0;          ///< Larger = dispatched sooner.
  double deadline_ms = 0.0;  ///< 0 = no deadline.
};

/// Error a frame-parse raises; `message` is what the bad_request reply
/// carries, `id` is the frame's id when one could be recovered (so the
/// client can correlate even a malformed frame).
struct BadRequest {
  std::string id;
  std::string message;
};

/// Parses one request frame.  Throws serve::BadRequest on any violation:
/// malformed JSON, wrong schema, missing/empty id, missing or out-of-range
/// shape, data length != rows*cols, non-numeric data entries, unknown
/// method token, non-positive tolerance, zero max_sweeps, negative
/// deadline.
Request parse_request(std::string_view line, const Limits& limits = {});

/// Materializes the request's column-major payload as a Matrix.
Matrix request_matrix(const Request& req);

/// SvdOptions carrying the request's method/accuracy fields (sinks and
/// threading are the server's to fill in).
SvdOptions request_options(const Request& req);

/// Serializes an ok reply (single line, no trailing newline).
std::string format_ok_reply(const Request& req, const SvdResult& result,
                            double latency_ms);

/// Serializes an error reply (single line, no trailing newline).
std::string format_error_reply(std::string_view id, std::string_view code,
                               std::string_view message);

}  // namespace hjsvd::serve

// Long-lived asynchronous batch SVD service.
//
// SvdServer turns independent decomposition requests (serve/protocol.hpp
// frames) into coalesced svd waves through one warm EngineInstance: a
// single dispatcher thread drains the admission queue, groups up to
// `wave_max` pending requests by decomposition options, and runs each
// group as one EngineInstance::decompose_batch wave over the resident
// work-stealing pool.  Amortized across a busy session, every request is
// decomposed by warm threads on warm per-worker workspaces — the
// serve.workspace.reuse_total counter grows while alloc_total stays flat.
//
// Contracts:
//   * Exactly one reply per submit_line() call, always.  Malformed frames,
//     duplicate in-flight ids, and overload rejections reply synchronously
//     on the submitting thread; admitted requests reply later from the
//     dispatcher thread (callbacks shared across threads must tolerate
//     that).
//   * Admission control is a bounded queue: when `queue_capacity` requests
//     are already pending, the next admissible frame gets a deterministic
//     "rejected:overload" error reply — never silence, never blocking.
//   * Deadlines are enforced at the admission->dispatch boundary: a
//     request whose deadline_ms elapsed while queued is answered with
//     "deadline_expired" and never computed.  Once dispatched into a wave
//     a request runs to completion (per-sweep deadline polling inside the
//     engine is a batch-wide watchdog concern, not per-request).
//   * Replies are bitwise identical to offline hjsvd::svd() with the same
//     options, at every thread count — inherited from the EngineInstance
//     determinism contract and the 17-digit wire serialization.
//   * Dispatch order is deterministic given an admission order: priority
//     descending, then deadline ascending (no deadline sorts last), then
//     admission sequence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "serve/protocol.hpp"

namespace hjsvd::obs {
class MetricsRegistry;
class TraceRecorder;
}  // namespace hjsvd::obs

namespace hjsvd::serve {

struct ServerConfig {
  /// Engine worker threads; 0 defers to the OpenMP runtime.
  std::size_t threads = 0;
  /// Bounded admission queue: pending requests beyond this are rejected
  /// with "rejected:overload".
  std::size_t queue_capacity = 64;
  /// Most requests coalesced into one dispatch wave.
  std::size_t wave_max = 16;
  /// When true the dispatcher holds off draining the queue until
  /// release_dispatch() — lets tests (and the overload drill) stage a
  /// deterministic queue state before any wave runs.
  bool hold_dispatch = false;
  /// Per-frame admission bounds.
  Limits limits;
  /// Observability sinks (null = record nothing).  serve.* counters are
  /// recorded on both the submit and dispatch paths (MetricsRegistry is
  /// thread-safe); trace spans come from the dispatcher thread only.
  obs::TraceRecorder* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

class SvdServer {
 public:
  /// Reply sink: receives exactly one serialized reply line (no trailing
  /// newline) per submitted frame.
  using ReplyFn = std::function<void(const std::string&)>;

  explicit SvdServer(const ServerConfig& config = {});
  ~SvdServer();  ///< Calls stop().
  SvdServer(const SvdServer&) = delete;
  SvdServer& operator=(const SvdServer&) = delete;

  /// Parses and admits one request frame.  Thread-safe.  `reply` is
  /// invoked exactly once — synchronously for rejections (bad_request,
  /// rejected:overload, shutdown), from the dispatcher thread otherwise.
  void submit_line(std::string_view line, ReplyFn reply);

  /// Lifts a hold_dispatch hold (no-op otherwise, idempotent).
  void release_dispatch();

  /// Blocks until every request admitted so far has been replied to.
  /// Lifts a dispatch hold first (otherwise a held queue never drains).
  void drain();

  /// Drains, stops the dispatcher, and finalizes shutdown metrics
  /// (latency percentile gauges, workspace reuse counters).  New
  /// submissions after stop() begins are rejected.  Idempotent.
  void stop();

  /// Pending (admitted, not yet dispatched) requests.  Thread-safe.
  std::size_t queue_depth() const;

  /// Engine workspace counters (see EngineInstance) — live snapshots, also
  /// exported as serve.workspace.* metrics at stop().
  std::uint64_t workspace_reuse_total() const;
  std::uint64_t workspace_alloc_total() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hjsvd::serve

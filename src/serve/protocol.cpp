#include "serve/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "report/json.hpp"

namespace hjsvd::serve {
namespace {

/// JSON string escaping (quotes, backslashes, control characters) — same
/// idiom as the obs writers, kept local because they are anon-namespace.
void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  append_escaped(out, s);
  out += '"';
}

/// Round-trip double formatting; JSON has no inf/nan, map them to null.
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  out += os.str();
}

void append_doubles(std::string& out, const std::vector<double>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    append_number(out, values[i]);
  }
  out += ']';
}

/// {"rows": R, "cols": C, "data": [...]} — column-major, mirroring the
/// request payload layout.
void append_matrix(std::string& out, const Matrix& m) {
  out += "{\"rows\":";
  out += std::to_string(m.rows());
  out += ",\"cols\":";
  out += std::to_string(m.cols());
  out += ",\"data\":[";
  bool first = true;
  for (std::size_t j = 0; j < m.cols(); ++j) {
    for (std::size_t i = 0; i < m.rows(); ++i) {
      if (!first) out += ',';
      first = false;
      append_number(out, m(i, j));
    }
  }
  out += "]}";
}

[[noreturn]] void fail(std::string id, std::string message) {
  throw BadRequest{std::move(id), std::move(message)};
}

/// Member as a non-negative integer (shape fields, max_sweeps).
std::size_t require_index(const report::JsonValue& frame, const char* key,
                          const std::string& id) {
  const report::JsonValue* v = frame.find(key);
  if (v == nullptr) fail(id, std::string("missing field '") + key + "'");
  if (!v->is_number())
    fail(id, std::string("field '") + key + "' must be a number");
  const double d = v->as_number();
  if (!std::isfinite(d) || d < 0.0 || d != std::floor(d))
    fail(id, std::string("field '") + key + "' must be a non-negative integer");
  if (d > static_cast<double>(std::numeric_limits<std::size_t>::max() / 2))
    fail(id, std::string("field '") + key + "' out of range");
  return static_cast<std::size_t>(d);
}

}  // namespace

Request parse_request(std::string_view line, const Limits& limits) {
  report::JsonValue frame;
  try {
    frame = report::parse_json(line);
  } catch (const Error& e) {
    fail("", std::string("malformed JSON: ") + e.what());
  }
  if (!frame.is_object()) fail("", "frame must be a JSON object");

  // Recover the id first so every later failure can carry it.
  std::string id;
  if (const report::JsonValue* v = frame.find("id"); v != nullptr) {
    if (!v->is_string()) fail("", "field 'id' must be a string");
    id = v->as_string();
  }
  if (id.empty()) fail(id, "missing or empty field 'id'");

  if (const report::JsonValue* v = frame.find("schema"); v != nullptr) {
    if (!v->is_string() || v->as_string() != kProtocolSchema)
      fail(id, std::string("unsupported schema (expected \"") +
                   kProtocolSchema + "\")");
  }

  Request req;
  req.id = std::move(id);
  req.rows = require_index(frame, "rows", req.id);
  req.cols = require_index(frame, "cols", req.id);
  if (req.rows == 0 || req.cols == 0)
    fail(req.id, "rows and cols must be at least 1");
  if (req.rows > limits.max_dim || req.cols > limits.max_dim)
    fail(req.id, "shape exceeds the server's max dimension (" +
                     std::to_string(limits.max_dim) + ")");
  if (req.rows * req.cols > limits.max_entries)
    fail(req.id, "payload exceeds the server's max entry count (" +
                     std::to_string(limits.max_entries) + ")");

  const report::JsonValue* data = frame.find("data");
  if (data == nullptr) fail(req.id, "missing field 'data'");
  if (!data->is_array()) fail(req.id, "field 'data' must be an array");
  const std::vector<report::JsonValue>& entries = data->as_array();
  if (entries.size() != req.rows * req.cols)
    fail(req.id, "field 'data' has " + std::to_string(entries.size()) +
                     " entries, expected rows*cols = " +
                     std::to_string(req.rows * req.cols));
  req.data.reserve(entries.size());
  for (const report::JsonValue& entry : entries) {
    if (!entry.is_number())
      fail(req.id, "field 'data' entries must all be numbers");
    req.data.push_back(entry.as_number());
  }

  if (const report::JsonValue* v = frame.find("method"); v != nullptr) {
    if (!v->is_string()) fail(req.id, "field 'method' must be a string");
    if (!svd_method_from_token(v->as_string(), &req.method))
      fail(req.id, "unknown method '" + v->as_string() + "'");
  }
  if (const report::JsonValue* v = frame.find("compute_u"); v != nullptr) {
    if (!v->is_bool()) fail(req.id, "field 'compute_u' must be a boolean");
    req.compute_u = v->as_bool();
  }
  if (const report::JsonValue* v = frame.find("compute_v"); v != nullptr) {
    if (!v->is_bool()) fail(req.id, "field 'compute_v' must be a boolean");
    req.compute_v = v->as_bool();
  }
  if (const report::JsonValue* v = frame.find("tolerance"); v != nullptr) {
    if (!v->is_number()) fail(req.id, "field 'tolerance' must be a number");
    req.tolerance = v->as_number();
    if (!(req.tolerance > 0.0) || !std::isfinite(req.tolerance))
      fail(req.id, "field 'tolerance' must be positive and finite");
  }
  if (frame.find("max_sweeps") != nullptr) {
    req.max_sweeps = require_index(frame, "max_sweeps", req.id);
    if (req.max_sweeps == 0) fail(req.id, "field 'max_sweeps' must be >= 1");
  }
  if (const report::JsonValue* v = frame.find("priority"); v != nullptr) {
    if (!v->is_number()) fail(req.id, "field 'priority' must be a number");
    const double d = v->as_number();
    if (!std::isfinite(d) || d != std::floor(d) || d < -1e9 || d > 1e9)
      fail(req.id, "field 'priority' must be a small integer");
    req.priority = static_cast<int>(d);
  }
  if (const report::JsonValue* v = frame.find("deadline_ms"); v != nullptr) {
    if (!v->is_number()) fail(req.id, "field 'deadline_ms' must be a number");
    req.deadline_ms = v->as_number();
    if (!std::isfinite(req.deadline_ms) || req.deadline_ms < 0.0)
      fail(req.id, "field 'deadline_ms' must be non-negative and finite");
  }
  return req;
}

Matrix request_matrix(const Request& req) {
  Matrix a(req.rows, req.cols);
  std::size_t k = 0;
  for (std::size_t j = 0; j < req.cols; ++j)
    for (std::size_t i = 0; i < req.rows; ++i) a(i, j) = req.data[k++];
  return a;
}

SvdOptions request_options(const Request& req) {
  SvdOptions opt;
  opt.method = req.method;
  opt.compute_u = req.compute_u;
  opt.compute_v = req.compute_v;
  opt.tolerance = req.tolerance;
  opt.max_sweeps = req.max_sweeps;
  return opt;
}

std::string format_ok_reply(const Request& req, const SvdResult& result,
                            double latency_ms) {
  std::string out;
  out.reserve(64 + 20 * (result.singular_values.size() +
                         result.u.rows() * result.u.cols() +
                         result.v.rows() * result.v.cols()));
  out += "{\"schema\":";
  append_quoted(out, kProtocolSchema);
  out += ",\"id\":";
  append_quoted(out, req.id);
  out += ",\"status\":\"ok\",\"sweeps\":";
  out += std::to_string(result.sweeps);
  out += ",\"converged\":";
  out += result.converged ? "true" : "false";
  out += ",\"sigma\":";
  append_doubles(out, result.singular_values);
  if (req.compute_u) {
    out += ",\"u\":";
    append_matrix(out, result.u);
  }
  if (req.compute_v) {
    out += ",\"v\":";
    append_matrix(out, result.v);
  }
  out += ",\"latency_ms\":";
  append_number(out, latency_ms);
  out += '}';
  return out;
}

std::string format_error_reply(std::string_view id, std::string_view code,
                               std::string_view message) {
  std::string out;
  out.reserve(64 + id.size() + code.size() + message.size());
  out += "{\"schema\":";
  append_quoted(out, kProtocolSchema);
  out += ",\"id\":";
  append_quoted(out, id);
  out += ",\"status\":\"error\",\"code\":";
  append_quoted(out, code);
  out += ",\"message\":";
  append_quoted(out, message);
  out += '}';
  return out;
}

}  // namespace hjsvd::serve

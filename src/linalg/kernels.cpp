#include "linalg/kernels.hpp"

#include <algorithm>
#include <cmath>

namespace hjsvd {

bool all_finite(const Matrix& a) {
  for (double v : a.data())
    if (!std::isfinite(v)) return false;
  return true;
}

double dot(std::span<const double> x, std::span<const double> y) {
  HJSVD_ENSURE(x.size() == y.size(), "dot requires equal lengths");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

double squared_norm(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return acc;
}

double frobenius_norm(const Matrix& a) {
  // Scaled accumulation to avoid overflow on extreme inputs.
  double scale = 0.0, sumsq = 1.0;
  for (double v : a.data()) {
    if (v == 0.0) continue;
    const double av = std::abs(v);
    if (scale < av) {
      sumsq = 1.0 + sumsq * (scale / av) * (scale / av);
      scale = av;
    } else {
      sumsq += (av / scale) * (av / scale);
    }
  }
  return scale * std::sqrt(sumsq);
}

Matrix gram_upper(const Matrix& a) {
  const std::size_t n = a.cols();
  Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto ci = a.col(i);
    for (std::size_t j = i; j < n; ++j) d(i, j) = dot(ci, a.col(j));
  }
  return d;
}

Matrix gram_full(const Matrix& a) {
  Matrix d = gram_upper(a);
  const std::size_t n = a.cols();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) d(i, j) = d(j, i);
  return d;
}

std::vector<double> squared_col_norms(const Matrix& a) {
  std::vector<double> norms(a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j)
    norms[j] = squared_norm(a.col(j));
  return norms;
}

double mean_abs_offdiag(const Matrix& d) {
  HJSVD_ENSURE(d.rows() == d.cols(), "convergence metric needs square D");
  const std::size_t n = d.cols();
  if (n < 2) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) sum += std::abs(d(i, j));
  return sum / (static_cast<double>(n) * (n - 1) / 2.0);
}

double offdiag_frobenius(const Matrix& d) {
  HJSVD_ENSURE(d.rows() == d.cols(), "convergence metric needs square D");
  const std::size_t n = d.cols();
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) sum += d(i, j) * d(i, j);
  return std::sqrt(2.0 * sum);
}

double max_relative_offdiag(const Matrix& d) {
  HJSVD_ENSURE(d.rows() == d.cols(), "convergence metric needs square D");
  const std::size_t n = d.cols();
  double max_diag = 0.0, max_off = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    max_diag = std::max(max_diag, std::abs(d(i, i)));
    for (std::size_t j = i + 1; j < n; ++j)
      max_off = std::max(max_off, std::abs(d(i, j)));
  }
  if (max_diag == 0.0) return max_off == 0.0 ? 0.0 : INFINITY;
  return max_off / max_diag;
}

}  // namespace hjsvd

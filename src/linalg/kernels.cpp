#include "linalg/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/simd/simd.hpp"

namespace hjsvd {
namespace {

/// Overflow-safe scaled 2-norm accumulation (shared by frobenius_norm and
/// the col_norm fallback).  Propagates NaN/inf inputs.
double scaled_norm(std::span<const double> values) {
  double scale = 0.0, sumsq = 1.0;
  for (double v : values) {
    if (v == 0.0) continue;
    const double av = std::abs(v);
    if (scale < av) {
      sumsq = 1.0 + sumsq * (scale / av) * (scale / av);
      scale = av;
    } else {
      sumsq += (av / scale) * (av / scale);
    }
  }
  return scale * std::sqrt(sumsq);
}

}  // namespace

bool all_finite(const Matrix& a) {
  for (double v : a.data())
    if (!std::isfinite(v)) return false;
  return true;
}

double dot(std::span<const double> x, std::span<const double> y) {
  HJSVD_ENSURE(x.size() == y.size(), "dot requires equal lengths");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

double squared_norm(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return acc;
}

double frobenius_norm(const Matrix& a) {
  // Scaled accumulation to avoid overflow on extreme inputs.
  return scaled_norm(a.data());
}

double col_norm(std::span<const double> x) {
  const double sq = squared_norm(x);
  // Fast path: the naive squared sum is a normal double, so sqrt of it is
  // the historical (and bitwise-preserved) answer.  Everything else —
  // overflow to inf, total underflow to zero, a subnormal sum with its
  // precision loss, or NaN — goes through the scaled accumulation.
  if (sq >= std::numeric_limits<double>::min() &&
      sq <= std::numeric_limits<double>::max())
    return std::sqrt(sq);
  return scaled_norm(x);
}

void rotate_pair(std::span<double> x, std::span<double> y, double c,
                 double s) {
  simd::rotate_pair(x, y, c, s);
}

void rotate_pair(std::span<float> x, std::span<float> y, float c, float s) {
  simd::rotate_pair(x, y, c, s);
}

void rotation_hardware_batch(std::span<const double> norm_jj,
                             std::span<const double> norm_ii,
                             std::span<const double> cov,
                             std::span<double> t, std::span<double> c,
                             std::span<double> s,
                             std::span<std::uint8_t> rotate) {
  const std::size_t n = norm_jj.size();
  HJSVD_ENSURE(norm_ii.size() == n && cov.size() == n && t.size() == n &&
                   c.size() == n && s.size() == n && rotate.size() == n,
               "rotation_hardware_batch requires equal-length spans");
  // Non-finite contract, checked lowest-lane-first so the reported lane is
  // deterministic regardless of how the backend orders its lanes.
  for (std::size_t l = 0; l < n; ++l)
    HJSVD_ENSURE(std::isfinite(norm_jj[l]) && std::isfinite(norm_ii[l]) &&
                     std::isfinite(cov[l]),
                 "rotation_hardware_batch: non-finite input at lane " +
                     std::to_string(l));
  simd::rotation_hardware_batch(n, norm_jj.data(), norm_ii.data(),
                                cov.data(), t.data(), c.data(), s.data(),
                                rotate.data());
}

double dot_relaxed(std::span<const double> x, std::span<const double> y) {
  return simd::dot_relaxed(x, y);
}

double squared_norm_relaxed(std::span<const double> x) {
  return simd::squared_norm_relaxed(x);
}

void gram_upper_relaxed_into(Matrix& d, const Matrix& a) {
  const std::size_t n = a.cols();
  HJSVD_ENSURE(d.rows() == n && d.cols() == n,
               "gram_upper_relaxed_into output has the wrong shape");
  for (std::size_t i = 0; i < n; ++i) {
    const auto ci = a.col(i);
    for (std::size_t j = i; j < n; ++j) d(i, j) = dot_relaxed(ci, a.col(j));
  }
}

Matrix gram_upper_relaxed(const Matrix& a) {
  const std::size_t n = a.cols();
  Matrix d(n, n);
  gram_upper_relaxed_into(d, a);
  return d;
}

Matrix gram_upper(const Matrix& a) {
  const std::size_t n = a.cols();
  Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto ci = a.col(i);
    for (std::size_t j = i; j < n; ++j) d(i, j) = dot(ci, a.col(j));
  }
  return d;
}

Matrix gram_full(const Matrix& a) {
  Matrix d = gram_upper(a);
  const std::size_t n = a.cols();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) d(i, j) = d(j, i);
  return d;
}

std::vector<double> squared_col_norms(const Matrix& a) {
  std::vector<double> norms(a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j)
    norms[j] = squared_norm(a.col(j));
  return norms;
}

double mean_abs_offdiag(const Matrix& d) {
  HJSVD_ENSURE(d.rows() == d.cols(), "convergence metric needs square D");
  const std::size_t n = d.cols();
  if (n < 2) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) sum += std::abs(d(i, j));
  return sum / (static_cast<double>(n) * (n - 1) / 2.0);
}

double offdiag_frobenius(const Matrix& d) {
  HJSVD_ENSURE(d.rows() == d.cols(), "convergence metric needs square D");
  const std::size_t n = d.cols();
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) sum += d(i, j) * d(i, j);
  return std::sqrt(2.0 * sum);
}

double max_relative_offdiag(const Matrix& d) {
  HJSVD_ENSURE(d.rows() == d.cols(), "convergence metric needs square D");
  const std::size_t n = d.cols();
  double max_diag = 0.0, max_off = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    max_diag = std::max(max_diag, std::abs(d(i, i)));
    for (std::size_t j = i + 1; j < n; ++j)
      max_off = std::max(max_off, std::abs(d(i, j)));
  }
  if (max_diag == 0.0) return max_off == 0.0 ? 0.0 : INFINITY;
  return max_off / max_diag;
}

}  // namespace hjsvd

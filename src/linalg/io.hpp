// Matrix Market (.mtx) I/O.
//
// The de-facto exchange format for test matrices: this lets users run the
// solvers and the accelerator model on real datasets.  Supported flavors:
// "matrix coordinate real general/symmetric" and "matrix array real
// general" (dense column-major).
#pragma once

#include <iosfwd>
#include <string>

#include "linalg/matrix.hpp"

namespace hjsvd {

/// Parses a Matrix Market stream into a dense matrix.  Throws hjsvd::Error
/// on malformed input or unsupported flavors (complex/pattern/integer).
Matrix read_matrix_market(std::istream& in);

/// Reads a .mtx file from disk.
Matrix read_matrix_market_file(const std::string& path);

/// Writes a dense matrix in "array real general" format.
void write_matrix_market(std::ostream& out, const Matrix& a);

/// Writes a .mtx file to disk.
void write_matrix_market_file(const std::string& path, const Matrix& a);

}  // namespace hjsvd

#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace hjsvd {

Matrix Matrix::from_rows(
    std::initializer_list<std::initializer_list<double>> rows) {
  const std::size_t r = rows.size();
  HJSVD_ENSURE(r > 0, "from_rows needs at least one row");
  const std::size_t c = rows.begin()->size();
  Matrix m(r, c);
  std::size_t i = 0;
  for (const auto& row : rows) {
    HJSVD_ENSURE(row.size() == c, "ragged initializer in from_rows");
    std::size_t j = 0;
    for (double v : row) m(i, j++) = v;
    ++i;
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t c = 0; c < cols_; ++c)
    for (std::size_t r = 0; r < rows_; ++r) t(c, r) = (*this)(r, c);
  return t;
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  HJSVD_ENSURE(a.rows() == b.rows() && a.cols() == b.cols(),
               "max_abs_diff requires equal shapes");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i)
    worst = std::max(worst, std::abs(a.data_[i] - b.data_[i]));
  return worst;
}

void matmul_into(Matrix& c, const Matrix& a, const Matrix& b) {
  HJSVD_ENSURE(a.cols() == b.rows(), "matmul inner dimensions must agree");
  HJSVD_ENSURE(c.rows() == a.rows() && c.cols() == b.cols(),
               "matmul_into output has the wrong shape");
  // j-k-i loop order: streams down columns of A and C (column-major).
  for (std::size_t j = 0; j < b.cols(); ++j) {
    auto cj = c.col(j);
    std::fill(cj.begin(), cj.end(), 0.0);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double bkj = b(k, j);
      if (bkj == 0.0) continue;
      auto ak = a.col(k);
      for (std::size_t i = 0; i < a.rows(); ++i) cj[i] += ak[i] * bkj;
    }
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  HJSVD_ENSURE(a.cols() == b.rows(), "matmul inner dimensions must agree");
  Matrix c(a.rows(), b.cols());
  matmul_into(c, a, b);
  return c;
}

}  // namespace hjsvd

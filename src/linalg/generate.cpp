#include "linalg/generate.hpp"

#include <algorithm>
#include <cmath>

namespace hjsvd {
namespace {

/// In-place A <- (I - 2 v v^T) A for a unit vector v of length A.rows().
void apply_reflector_left(Matrix& a, std::span<const double> v) {
  const std::size_t m = a.rows();
  for (std::size_t j = 0; j < a.cols(); ++j) {
    auto col = a.col(j);
    double dot = 0.0;
    for (std::size_t i = 0; i < m; ++i) dot += v[i] * col[i];
    const double scale = 2.0 * dot;
    for (std::size_t i = 0; i < m; ++i) col[i] -= scale * v[i];
  }
}

std::vector<double> random_unit_vector(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  double norm2 = 0.0;
  do {
    norm2 = 0.0;
    for (auto& x : v) {
      x = rng.gaussian();
      norm2 += x * x;
    }
  } while (norm2 == 0.0);
  const double inv = 1.0 / std::sqrt(norm2);
  for (auto& x : v) x *= inv;
  return v;
}

}  // namespace

Matrix random_uniform(std::size_t rows, std::size_t cols, Rng& rng, double lo,
                      double hi) {
  HJSVD_ENSURE(rows > 0 && cols > 0, "matrix dimensions must be positive");
  Matrix m(rows, cols);
  for (double& x : m.data()) x = rng.uniform(lo, hi);
  return m;
}

Matrix random_gaussian(std::size_t rows, std::size_t cols, Rng& rng) {
  HJSVD_ENSURE(rows > 0 && cols > 0, "matrix dimensions must be positive");
  Matrix m(rows, cols);
  for (double& x : m.data()) x = rng.gaussian();
  return m;
}

Matrix with_singular_values(std::size_t rows, std::size_t cols,
                            const std::vector<double>& sv, Rng& rng) {
  const std::size_t k = std::min(rows, cols);
  HJSVD_ENSURE(sv.size() == k,
               "need exactly min(rows, cols) singular values");
  // Start from diag(sv), then hit it with random orthogonals on both sides.
  Matrix a(rows, cols);
  for (std::size_t i = 0; i < k; ++i) a(i, i) = sv[i];
  // A <- Q_l * A: reflectors on the left (size rows).
  for (std::size_t r = 0; r < std::min<std::size_t>(rows, 8); ++r) {
    const auto v = random_unit_vector(rows, rng);
    apply_reflector_left(a, v);
  }
  // A <- A * Q_r^T: reflectors on the right, done via the transpose trick.
  Matrix at = a.transposed();
  for (std::size_t r = 0; r < std::min<std::size_t>(cols, 8); ++r) {
    const auto v = random_unit_vector(cols, rng);
    apply_reflector_left(at, v);
  }
  return at.transposed();
}

Matrix random_rank_deficient(std::size_t rows, std::size_t cols,
                             std::size_t rank, Rng& rng) {
  const std::size_t k = std::min(rows, cols);
  HJSVD_ENSURE(rank <= k, "rank cannot exceed min(rows, cols)");
  std::vector<double> sv(k, 0.0);
  for (std::size_t i = 0; i < rank; ++i) sv[i] = rng.uniform(0.5, 2.0);
  return with_singular_values(rows, cols, sv, rng);
}

Matrix random_conditioned(std::size_t rows, std::size_t cols, double kappa,
                          Rng& rng) {
  HJSVD_ENSURE(kappa >= 1.0, "condition number must be >= 1");
  const std::size_t k = std::min(rows, cols);
  std::vector<double> sv(k);
  for (std::size_t i = 0; i < k; ++i) {
    const double frac = k == 1 ? 0.0 : static_cast<double>(i) / (k - 1);
    sv[i] = std::pow(kappa, -frac);  // geometric decay 1 .. 1/kappa
  }
  return with_singular_values(rows, cols, sv, rng);
}

Matrix hilbert(std::size_t n) {
  HJSVD_ENSURE(n > 0, "matrix dimensions must be positive");
  Matrix h(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      h(i, j) = 1.0 / static_cast<double>(i + j + 1);
  return h;
}

void apply_random_orthogonal_left(Matrix& a, Rng& rng,
                                  std::size_t reflectors) {
  for (std::size_t r = 0; r < reflectors; ++r) {
    const auto v = random_unit_vector(a.rows(), rng);
    apply_reflector_left(a, v);
  }
}

}  // namespace hjsvd

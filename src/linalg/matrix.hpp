// Dense column-major matrix.
//
// The Hestenes-Jacobi algorithm orthogonalizes *columns*, so storage is
// column-major: column j is contiguous, matching both the algorithm's access
// pattern and the accelerator's column-streaming I/O.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace hjsvd {

/// Dense column-major matrix of doubles.
class Matrix {
 public:
  using value_type = double;

  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Builds from nested initializer lists in row-major (natural) notation:
  /// Matrix::from_rows({{1,2},{3,4}}).
  static Matrix from_rows(
      std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    HJSVD_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[c * rows_ + r];
  }
  double operator()(std::size_t r, std::size_t c) const {
    HJSVD_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[c * rows_ + r];
  }

  /// Contiguous view of column j.
  std::span<double> col(std::size_t j) {
    HJSVD_ASSERT(j < cols_, "column index out of range");
    return {data_.data() + j * rows_, rows_};
  }
  std::span<const double> col(std::size_t j) const {
    HJSVD_ASSERT(j < cols_, "column index out of range");
    return {data_.data() + j * rows_, rows_};
  }

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  /// Re-shapes in place to rows x cols with every entry zeroed, retaining
  /// the existing heap block whenever its capacity suffices (std::vector
  /// assign never shrinks capacity).  Returns true when the storage was
  /// reused without allocating, false when the buffer had to grow — the
  /// signal svd/workspace.hpp turns into its reuse/alloc counters.  A
  /// zeroed reused buffer is indistinguishable from a fresh Matrix, so
  /// downstream arithmetic is bitwise independent of which path was taken.
  bool reshape(std::size_t rows, std::size_t cols) {
    const std::size_t need = rows * cols;
    const bool reused = data_.capacity() >= need;
    data_.assign(need, 0.0);
    rows_ = rows;
    cols_ = cols;
    return reused;
  }

  Matrix transposed() const;

  /// Max |a_ij - b_ij| over all entries; matrices must be the same shape.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B.
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A * B into a caller-provided C, which must already be shaped
/// a.rows() x b.cols(); prior contents are overwritten.  The allocation-free
/// variant matmul delegates to — identical loop order and accumulation, so
/// the result is bitwise equal to matmul(a, b) whatever C held before.
void matmul_into(Matrix& c, const Matrix& a, const Matrix& b);

/// Dense column-major matrix in an arbitrary scalar type.  The working
/// storage of the mixed-precision engine's float phase (docs/ALGORITHM.md
/// §10); interface-compatible with Matrix so the templated rotation/update
/// helpers in svd/hestenes_impl.hpp accept either.
template <class T>
class MatrixT {
 public:
  using value_type = T;

  MatrixT() = default;

  MatrixT(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T(0)) {}

  static MatrixT identity(std::size_t n) {
    MatrixT m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T(1);
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) {
    HJSVD_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[c * rows_ + r];
  }
  T operator()(std::size_t r, std::size_t c) const {
    HJSVD_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[c * rows_ + r];
  }

  std::span<T> col(std::size_t j) {
    HJSVD_ASSERT(j < cols_, "column index out of range");
    return {data_.data() + j * rows_, rows_};
  }
  std::span<const T> col(std::size_t j) const {
    HJSVD_ASSERT(j < cols_, "column index out of range");
    return {data_.data() + j * rows_, rows_};
  }

  std::span<T> data() { return data_; }
  std::span<const T> data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace hjsvd

// Quality metrics for a computed SVD: reconstruction and orthogonality
// residuals, and singular-value comparison utilities used throughout the
// tests and EXPERIMENTS.md accuracy reporting.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace hjsvd {

/// A full or values-only SVD result: A (m x n) ~= U * diag(sv) * V^T with
/// U m x k, V n x k, k = min(m, n).  U/V may be empty for values-only runs.
struct SvdResult {
  std::vector<double> singular_values;  // descending
  Matrix u;                             // m x k or empty
  Matrix v;                             // n x k or empty
  std::size_t sweeps = 0;               // sweeps executed (Jacobi methods)
  bool converged = false;
};

/// ||A - U diag(sv) V^T||_F / ||A||_F.  Requires U and V to be present.
double reconstruction_error(const Matrix& a, const SvdResult& svd);

/// ||Q^T Q - I||_max for a matrix with orthonormal columns.
double orthogonality_error(const Matrix& q);

/// Max relative difference between two descending singular-value lists,
/// normalized by the largest value (so tiny values compare absolutely).
double singular_value_error(const std::vector<double>& a,
                            const std::vector<double>& b);

/// Sorts descending in place.
void sort_descending(std::vector<double>& sv);

}  // namespace hjsvd

// Vector/matrix kernels shared by the SVD algorithms.  This header is the
// single dispatch point the engines call: the SIMD-accelerated entries
// forward to linalg/simd/ (runtime-selected AVX2 or portable backend),
// everything else is plain scalar code.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace hjsvd {

/// True when every entry is finite (no NaN/inf) — the input contract of
/// the public solver entry points.
bool all_finite(const Matrix& a);

/// Dot product of two equal-length vectors.  Strict left-to-right
/// accumulation (the bit-exactness reference); overflows to inf when the
/// running sum leaves the double range — use col_norm for guarded column
/// norms, or dot_relaxed for the SIMD-reassociated variant.
double dot(std::span<const double> x, std::span<const double> y);

/// Squared Euclidean norm.  Same accumulation contract as dot.
double squared_norm(std::span<const double> x);

/// Column 2-norm, guarded against overflow/underflow of the squared sum:
/// returns bitwise sqrt(squared_norm(x)) whenever that squared sum is a
/// normal double (the common case, so existing results are unchanged), and
/// falls back to the same scaled accumulation as frobenius_norm when the
/// naive sum would overflow, vanish, or go subnormal.  Identical at every
/// SIMD dispatch level (the guard is strict scalar arithmetic in all
/// configurations).
double col_norm(std::span<const double> x);

/// In-place plane rotation of two equal-length vectors (paper eqs. 11-12):
/// x <- x*c - y*s, y <- x*s + y*c, both from the original x, y.
/// SIMD-dispatched; bitwise identical to the scalar loop at every level.
void rotate_pair(std::span<double> x, std::span<double> y, double c,
                 double s);

/// Binary32 rotate_pair for the mixed-precision float phase.  Same SIMD
/// dispatch and bit-identity contract as the double overload (8 x float
/// lanes on AVX2).
void rotate_pair(std::span<float> x, std::span<float> y, float c, float s);

/// Batched hardware-form rotation generation (structure-of-arrays): lane l
/// gets exactly the bits of rotation_hardware<fp::NativeOps>(norm_jj[l],
/// norm_ii[l], cov[l]); cov[l] == 0 lanes yield the identity with
/// rotate[l] == 0.  Enforces the rotation non-finite contract (throws
/// hjsvd::Error naming the lowest offending lane, mirroring svd_batch's
/// lowest-index error reporting) before any lane is computed.  All spans
/// must have equal length.
void rotation_hardware_batch(std::span<const double> norm_jj,
                             std::span<const double> norm_ii,
                             std::span<const double> cov,
                             std::span<double> t, std::span<double> c,
                             std::span<double> s,
                             std::span<std::uint8_t> rotate);

/// Relaxed-tier dot product: 4-lane-split accumulation, bitwise identical
/// across SIMD dispatch levels but NOT to the strict dot (error O(n*eps),
/// bounds tested in tests/linalg/test_simd_kernels.cpp).  Engines use it
/// only under the opt-in SvdOptions::simd_relaxed.
double dot_relaxed(std::span<const double> x, std::span<const double> y);

/// Relaxed-tier squared 2-norm (see dot_relaxed).
double squared_norm_relaxed(std::span<const double> x);

/// gram_upper_relaxed into a caller-provided n x n matrix whose strict
/// lower triangle must already be zero (e.g. a Workspace-acquired buffer);
/// only entries with row <= col are written.  Allocation-free and bitwise
/// equal to gram_upper_relaxed(a).
void gram_upper_relaxed_into(Matrix& d, const Matrix& a);

/// Upper-triangular Gram matrix built from dot_relaxed (the relaxed-tier
/// replacement for gram_upper_ops<NativeOps> with chunk_rows == 1).
Matrix gram_upper_relaxed(const Matrix& a);

/// Frobenius norm of a matrix.
double frobenius_norm(const Matrix& a);

/// Upper-triangular Gram matrix D = A^T A (only entries j >= i are written;
/// the strictly-lower triangle is left zero).  This is exactly what the
/// paper's Hestenes preprocessor computes: squared column 2-norms on the
/// diagonal, covariances off it.
Matrix gram_upper(const Matrix& a);

/// Full (symmetric) Gram matrix A^T A.
Matrix gram_full(const Matrix& a);

/// Squared 2-norm of every column.
std::vector<double> squared_col_norms(const Matrix& a);

/// Mean absolute value of the strictly-upper off-diagonal entries of a
/// square matrix — the paper's convergence metric ("mean absolute deviations
/// from zero of the covariances", Fig. 10/11).
double mean_abs_offdiag(const Matrix& d);

/// Max |off-diagonal| normalized by the largest diagonal entry; a scale-free
/// convergence measure used for termination thresholds.
double max_relative_offdiag(const Matrix& d);

/// Frobenius norm of the off-diagonal part of a symmetric matrix given by
/// its upper triangle: sqrt(2 * sum_{i<j} d(i,j)^2).  The classical Jacobi
/// convergence quantity off(D); reported per sweep by the observability
/// layer (metric svd.sweep.offdiag_frobenius).
double offdiag_frobenius(const Matrix& d);

}  // namespace hjsvd

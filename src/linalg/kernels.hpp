// Vector/matrix kernels shared by the SVD algorithms.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace hjsvd {

/// True when every entry is finite (no NaN/inf) — the input contract of
/// the public solver entry points.
bool all_finite(const Matrix& a);

/// Dot product of two equal-length vectors.
double dot(std::span<const double> x, std::span<const double> y);

/// Squared Euclidean norm.
double squared_norm(std::span<const double> x);

/// Frobenius norm of a matrix.
double frobenius_norm(const Matrix& a);

/// Upper-triangular Gram matrix D = A^T A (only entries j >= i are written;
/// the strictly-lower triangle is left zero).  This is exactly what the
/// paper's Hestenes preprocessor computes: squared column 2-norms on the
/// diagonal, covariances off it.
Matrix gram_upper(const Matrix& a);

/// Full (symmetric) Gram matrix A^T A.
Matrix gram_full(const Matrix& a);

/// Squared 2-norm of every column.
std::vector<double> squared_col_norms(const Matrix& a);

/// Mean absolute value of the strictly-upper off-diagonal entries of a
/// square matrix — the paper's convergence metric ("mean absolute deviations
/// from zero of the covariances", Fig. 10/11).
double mean_abs_offdiag(const Matrix& d);

/// Max |off-diagonal| normalized by the largest diagonal entry; a scale-free
/// convergence measure used for termination thresholds.
double max_relative_offdiag(const Matrix& d);

/// Frobenius norm of the off-diagonal part of a symmetric matrix given by
/// its upper triangle: sqrt(2 * sum_{i<j} d(i,j)^2).  The classical Jacobi
/// convergence quantity off(D); reported per sweep by the observability
/// layer (metric svd.sweep.offdiag_frobenius).
double offdiag_frobenius(const Matrix& d);

}  // namespace hjsvd

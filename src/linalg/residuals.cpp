#include "linalg/residuals.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "linalg/kernels.hpp"

namespace hjsvd {

double reconstruction_error(const Matrix& a, const SvdResult& svd) {
  HJSVD_ENSURE(!svd.u.empty() && !svd.v.empty(),
               "reconstruction_error requires U and V");
  const std::size_t k = svd.singular_values.size();
  HJSVD_ENSURE(svd.u.cols() == k && svd.v.cols() == k,
               "U/V column count must match singular value count");
  // B = U * diag(sv), then R = B * V^T.
  Matrix b(svd.u.rows(), k);
  for (std::size_t j = 0; j < k; ++j) {
    const auto uj = svd.u.col(j);
    auto bj = b.col(j);
    for (std::size_t i = 0; i < uj.size(); ++i)
      bj[i] = uj[i] * svd.singular_values[j];
  }
  const Matrix recon = matmul(b, svd.v.transposed());
  HJSVD_ENSURE(recon.rows() == a.rows() && recon.cols() == a.cols(),
               "reconstruction shape mismatch");
  Matrix diff(a.rows(), a.cols());
  for (std::size_t c = 0; c < a.cols(); ++c)
    for (std::size_t r = 0; r < a.rows(); ++r)
      diff(r, c) = a(r, c) - recon(r, c);
  const double na = frobenius_norm(a);
  const double nd = frobenius_norm(diff);
  return na == 0.0 ? nd : nd / na;
}

double orthogonality_error(const Matrix& q) {
  const Matrix g = gram_full(q);
  double worst = 0.0;
  for (std::size_t i = 0; i < g.rows(); ++i)
    for (std::size_t j = 0; j < g.cols(); ++j) {
      const double target = i == j ? 1.0 : 0.0;
      worst = std::max(worst, std::abs(g(i, j) - target));
    }
  return worst;
}

double singular_value_error(const std::vector<double>& a,
                            const std::vector<double>& b) {
  HJSVD_ENSURE(a.size() == b.size(),
               "singular value lists must be the same length");
  double scale = 0.0;
  for (double v : a) scale = std::max(scale, std::abs(v));
  for (double v : b) scale = std::max(scale, std::abs(v));
  if (scale == 0.0) return 0.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
  return worst;
}

void sort_descending(std::vector<double>& sv) {
  std::sort(sv.begin(), sv.end(), std::greater<>());
}

}  // namespace hjsvd

// Test-matrix generators.
//
// The paper evaluates on "randomly generated datasets"; these generators
// cover that plus structured cases (known singular values, rank deficiency,
// ill conditioning) used by the correctness and property tests.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace hjsvd {

/// Entries i.i.d. uniform in [lo, hi).
Matrix random_uniform(std::size_t rows, std::size_t cols, Rng& rng,
                      double lo = -1.0, double hi = 1.0);

/// Entries i.i.d. standard normal.
Matrix random_gaussian(std::size_t rows, std::size_t cols, Rng& rng);

/// Random m x n matrix with the prescribed singular values (descending or
/// not; they are used as given).  Built as U * diag(sv) * V^T with U, V
/// random orthonormal (products of Householder reflectors), so the returned
/// matrix's exact singular values are known up to rounding.
Matrix with_singular_values(std::size_t rows, std::size_t cols,
                            const std::vector<double>& sv, Rng& rng);

/// Random matrix of the given rank (rank <= min(rows, cols)).
Matrix random_rank_deficient(std::size_t rows, std::size_t cols,
                             std::size_t rank, Rng& rng);

/// Random matrix with 2-norm condition number ~kappa (geometric singular
/// value decay from 1 down to 1/kappa).
Matrix random_conditioned(std::size_t rows, std::size_t cols, double kappa,
                          Rng& rng);

/// Hilbert matrix H(i,j) = 1/(i+j+1): a classic ill-conditioned instance.
Matrix hilbert(std::size_t n);

/// Applies a random orthogonal transform Q (product of `reflectors`
/// Householder reflectors) to each column of A in place: A <- Q * A.
void apply_random_orthogonal_left(Matrix& a, Rng& rng,
                                  std::size_t reflectors);

}  // namespace hjsvd

// Jacobi rotation parameter generation.
//
// Given the squared 2-norms of two columns and their covariance, produce the
// (t, cos, sin) that makes the rotated columns orthogonal:
//
//   A_i' = A_i*cos - A_j*sin        (paper eq. 11)
//   A_j' = A_i*sin + A_j*cos        (paper eq. 12)
//
// Two algebraically equivalent forms are provided:
//  * the textbook form of Algorithm 1 lines 11-14 (rho -> t -> cos -> sin),
//  * the hardware closed form of eqs. (8)-(10) that the rotation component
//    evaluates (no division by the possibly tiny covariance).
//
// ERRATUM (documented in DESIGN.md): Algorithm 1 line 11 prints
// rho = (norm2 - norm1)/(2 cov) with norm1 = D_jj, norm2 = D_ii; for the
// annihilation condition of the rotation direction in eqs. (11)-(12) and the
// norm updates D_jj += t*cov, D_ii -= t*cov of lines 15-16 to hold, the sign
// must be rho = (D_jj - D_ii)/(2 cov).  One can verify:
//   d_ij' = cos*sin*(d_ii - d_jj) + (cos^2 - sin^2) d_ij = 0
//   <=> (1 - t^2)/t = (d_jj - d_ii)/d_ij  <=>  t^2 + 2*rho*t - 1 = 0
// whose small root is t = sign(rho)/(|rho| + sqrt(1 + rho^2)), and then
// d_jj' = d_jj + t*d_ij, d_ii' = d_ii - t*d_ij (trace preserved).  We
// implement the self-consistent version; the hardware closed form (8)-(10)
// is sign-agnostic in magnitude and gets sign(t) = sign(rho) attached, which
// matches the "(sign)" annotation in eq. (10).
//
// NUMERIC CONTRACTS (docs/ALGORITHM.md §9):
//  * Non-finite inputs throw hjsvd::Error.  A NaN covariance would pass the
//    cov == 0 early-out and silently poison (t, cos, sin); the engines rely
//    on this check to turn a mid-run NaN into a deterministic error at the
//    first affected pair in sweep order (svd_batch then reports the
//    lowest-index failing item).
//  * Both forms are scale-invariant: (t, cos, sin) are homogeneous of
//    degree 0 in (D_jj - D_ii, cov), so when the larger magnitude leaves
//    [kRotationPrescaleLo, kRotationPrescaleHi) — where the squared
//    intermediates of eqs. (8)-(10) and the 2*cov of Algorithm 1 line 11
//    stay inside the normal double range — both inputs are pre-scaled by an
//    exact power of two before squaring.  Inside the band no scaling happens
//    and results are bitwise what the unscaled arithmetic produces.
#pragma once

#include <cmath>

#include "common/error.hpp"

namespace hjsvd {

/// Which algebraic form generates (t, cos, sin).
enum class RotationFormula {
  kTextbook,  // Algorithm 1 lines 11-14 (sign-corrected, see erratum)
  kHardware,  // closed forms of eqs. (8)-(10), as the FPGA evaluates them
};

/// Rotation angle parameters for one column pair.
struct RotationParams {
  double t = 0.0;
  double cos = 1.0;
  double sin = 0.0;
  bool rotate = false;  // false when cov == 0 (already orthogonal: identity)
};

/// Pre-scaling band of max(|D_jj - D_ii|, |cov|).  Inside the band every
/// squared intermediate is a normal double and no scaling is applied:
///  * hi: amax < 2^500 keeps d2 < 2^1000, s = d2 + 4c2 < 2^1003 and
///    |diff|*r < 2^1002, all below DBL_MAX = 2^1024*(1-eps).
///  * lo: amax >= 2^-475 keeps max(d2, 4c2) >= 2^-950, so any term small
///    enough to fall subnormal (< 2^-1022) is also below half an ulp of the
///    sum (2^-1004) and rounds away exactly — subnormal rounding never
///    contaminates an in-band result.
inline constexpr double kRotationPrescaleHi = 0x1p+500;
inline constexpr double kRotationPrescaleLo = 0x1p-475;

namespace detail {

inline double flip_sign_if(double x, bool negative) {
  return negative ? -x : x;
}

inline void ensure_rotation_inputs_finite(double norm_jj, double norm_ii,
                                          double cov) {
  HJSVD_ENSURE(std::isfinite(norm_jj) && std::isfinite(norm_ii) &&
                   std::isfinite(cov),
               "rotation: non-finite input (norms and covariance must be "
               "finite; a NaN here means the decomposition diverged)");
}

}  // namespace detail

/// Algorithm 1 lines 11-14 (with the erratum's sign fix).
/// norm_jj = D(j,j), norm_ii = D(i,i), cov = D(i,j).
template <class Ops>
RotationParams rotation_textbook(double norm_jj, double norm_ii, double cov,
                                 Ops ops) {
  RotationParams p;
  detail::ensure_rotation_inputs_finite(norm_jj, norm_ii, cov);
  if (cov == 0.0) return p;
  p.rotate = true;
  // rho = (D_jj - D_ii) / (2*cov); the doubling is an exponent bump.
  double diff = ops.sub(norm_jj, norm_ii);
  HJSVD_ENSURE(std::isfinite(diff), "rotation: D_jj - D_ii overflows");
  double cv = cov;
  {
    const double abs_diff = diff < 0.0 ? -diff : diff;
    const double abs_cov = cv < 0.0 ? -cv : cv;
    const double amax = abs_diff > abs_cov ? abs_diff : abs_cov;
    if (amax >= kRotationPrescaleHi || amax < kRotationPrescaleLo) {
      // Exact power-of-two rescale of both inputs: brings amax into
      // [0.5, 1) so 2*cv below cannot overflow or underflow.  rho and
      // everything after it are unchanged in exact arithmetic.
      int e = 0;
      std::frexp(amax, &e);
      const double scale = std::ldexp(1.0, -e);
      diff = ops.mul(diff, scale);
      cv = ops.mul(cv, scale);
    }
  }
  const double rho = ops.div(diff, 2.0 * cv);
  // t = sign(rho) / (|rho| + sqrt(1 + rho^2))
  const double abs_rho = rho < 0.0 ? -rho : rho;
  double t_mag;
  if (abs_rho > 0x1p+510) {
    // rho^2 would overflow; sqrt(1 + rho^2) == |rho| to double precision
    // here, so the small root collapses to 1/(2|rho|).  At the seam both
    // branches are correctly-rounded images of the same real value.
    t_mag = ops.div(0.5, abs_rho);
  } else {
    const double rho2 = ops.mul(rho, rho);
    const double root = ops.sqrt(ops.add(1.0, rho2));
    t_mag = ops.div(1.0, ops.add(abs_rho, root));
  }
  p.t = detail::flip_sign_if(t_mag, rho < 0.0);
  // cos = 1 / sqrt(1 + t^2); sin = cos * t
  const double t2 = ops.mul(p.t, p.t);
  p.cos = ops.div(1.0, ops.sqrt(ops.add(1.0, t2)));
  p.sin = ops.mul(p.cos, p.t);
  return p;
}

/// Hardware closed form, eqs. (8)-(10).  Avoids dividing by the covariance,
/// which is the numerically delicate quantity near convergence.
template <class Ops>
RotationParams rotation_hardware(double norm_jj, double norm_ii, double cov,
                                 Ops ops) {
  RotationParams p;
  detail::ensure_rotation_inputs_finite(norm_jj, norm_ii, cov);
  if (cov == 0.0) return p;
  p.rotate = true;
  // With n1 = D_jj, n2 = D_ii the paper's eq. (8) uses |n2 - n1|, which
  // equals |diff| either way; the sign of t is sign(rho) = sign(diff * cov).
  double diff = ops.sub(norm_jj, norm_ii);
  HJSVD_ENSURE(std::isfinite(diff), "rotation: D_jj - D_ii overflows");
  double cv = cov;
  const bool t_negative = (diff < 0.0) != (cv < 0.0);
  double abs_diff = diff < 0.0 ? -diff : diff;
  double abs_cov = cv < 0.0 ? -cv : cv;
  const double amax = abs_diff > abs_cov ? abs_diff : abs_cov;
  if (amax >= kRotationPrescaleHi || amax < kRotationPrescaleLo) {
    // Scale-invariant slow path: d2/c2 below would overflow (amax >= ~2^512)
    // or drown in subnormal rounding, so rescale both inputs by an exact
    // power of two that brings amax into [0.5, 1).
    int e = 0;
    std::frexp(amax, &e);
    const double scale = std::ldexp(1.0, -e);
    diff = ops.mul(diff, scale);
    cv = ops.mul(cv, scale);
    abs_diff = diff < 0.0 ? -diff : diff;
    abs_cov = cv < 0.0 ? -cv : cv;
  }
  const double d2 = ops.mul(diff, diff);
  const double c2 = ops.mul(cv, cv);
  const double s = ops.add(d2, 4.0 * c2);       // (n2-n1)^2 + 4 c^2
  const double r = ops.sqrt(s);                  // sqrt of the above
  // eq. (8): t = |2c| / (|n2-n1| + sqrt(...))
  const double t_mag = ops.div(2.0 * abs_cov, ops.add(abs_diff, r));
  p.t = detail::flip_sign_if(t_mag, t_negative);
  // eqs. (9)-(10): shared subexpressions
  const double adr = ops.mul(abs_diff, r);
  const double den = ops.add(s, adr);            // d2 + 4c^2 + |d|*r
  const double num = ops.add(ops.add(d2, 2.0 * c2), adr);
  p.cos = ops.sqrt(ops.div(num, den));
  const double sin_mag = ops.sqrt(ops.div(2.0 * c2, den));
  p.sin = detail::flip_sign_if(sin_mag, t_negative);
  return p;
}

/// Dispatch on the configured formula.
template <class Ops>
RotationParams compute_rotation(RotationFormula formula, double norm_jj,
                                double norm_ii, double cov, Ops ops) {
  return formula == RotationFormula::kTextbook
             ? rotation_textbook(norm_jj, norm_ii, cov, ops)
             : rotation_hardware(norm_jj, norm_ii, cov, ops);
}

}  // namespace hjsvd

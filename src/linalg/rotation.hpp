// Jacobi rotation parameter generation.
//
// Given the squared 2-norms of two columns and their covariance, produce the
// (t, cos, sin) that makes the rotated columns orthogonal:
//
//   A_i' = A_i*cos - A_j*sin        (paper eq. 11)
//   A_j' = A_i*sin + A_j*cos        (paper eq. 12)
//
// Two algebraically equivalent forms are provided:
//  * the textbook form of Algorithm 1 lines 11-14 (rho -> t -> cos -> sin),
//  * the hardware closed form of eqs. (8)-(10) that the rotation component
//    evaluates (no division by the possibly tiny covariance).
//
// Both forms are templated on the working scalar type T (double or float):
// the mixed-precision engine (docs/ALGORITHM.md §10) generates its opening-
// sweep rotations in binary32, with an Ops policy whose methods take and
// return T.  Existing double call sites deduce T = double and are unchanged.
//
// ERRATUM (documented in DESIGN.md): Algorithm 1 line 11 prints
// rho = (norm2 - norm1)/(2 cov) with norm1 = D_jj, norm2 = D_ii; for the
// annihilation condition of the rotation direction in eqs. (11)-(12) and the
// norm updates D_jj += t*cov, D_ii -= t*cov of lines 15-16 to hold, the sign
// must be rho = (D_jj - D_ii)/(2 cov).  One can verify:
//   d_ij' = cos*sin*(d_ii - d_jj) + (cos^2 - sin^2) d_ij = 0
//   <=> (1 - t^2)/t = (d_jj - d_ii)/d_ij  <=>  t^2 + 2*rho*t - 1 = 0
// whose small root is t = sign(rho)/(|rho| + sqrt(1 + rho^2)), and then
// d_jj' = d_jj + t*d_ij, d_ii' = d_ii - t*d_ij (trace preserved).  We
// implement the self-consistent version; the hardware closed form (8)-(10)
// is sign-agnostic in magnitude and gets sign(t) = sign(rho) attached, which
// matches the "(sign)" annotation in eq. (10).
//
// NUMERIC CONTRACTS (docs/ALGORITHM.md §9):
//  * Non-finite inputs throw hjsvd::Error.  A NaN covariance would pass the
//    cov == 0 early-out and silently poison (t, cos, sin); the engines rely
//    on this check to turn a mid-run NaN into a deterministic error at the
//    first affected pair in sweep order (svd_batch then reports the
//    lowest-index failing item).
//  * Both forms are scale-invariant: (t, cos, sin) are homogeneous of
//    degree 0 in (D_jj - D_ii, cov), so when the larger magnitude leaves
//    [RotationRange<T>::lo, RotationRange<T>::hi) — where the squared
//    intermediates of eqs. (8)-(10) and the 2*cov of Algorithm 1 line 11
//    stay inside the normal range of T — both inputs are pre-scaled by an
//    exact power of two before squaring.  Inside the band no scaling happens
//    and results are bitwise what the unscaled arithmetic produces.
#pragma once

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hjsvd {

/// Which algebraic form generates (t, cos, sin).
enum class RotationFormula {
  kTextbook,  // Algorithm 1 lines 11-14 (sign-corrected, see erratum)
  kHardware,  // closed forms of eqs. (8)-(10), as the FPGA evaluates them
};

/// Rotation angle parameters for one column pair, in the working precision.
template <class T>
struct RotationParamsT {
  T t = T(0);
  T cos = T(1);
  T sin = T(0);
  bool rotate = false;  // false when cov == 0 (already orthogonal: identity)
};

/// The double-precision instantiation every pre-existing caller uses.
using RotationParams = RotationParamsT<double>;

/// Per-type pre-scaling band of max(|D_jj - D_ii|, |cov|) plus the |rho|
/// threshold where the textbook form's sqrt(1 + rho^2) collapses to |rho|.
///
/// For binary64 (emax 1023, 53-bit significand):
///  * hi: amax < 2^500 keeps d2 < 2^1000, s = d2 + 4c2 < 2^1003 and
///    |diff|*r < 2^1002, all below DBL_MAX = 2^1024*(1-eps).
///  * lo: amax >= 2^-475 keeps max(d2, 4c2) >= 2^-950, so any term small
///    enough to fall subnormal (< 2^-1022) is also below half an ulp of the
///    sum (2^-1004) and rounds away exactly — subnormal rounding never
///    contaminates an in-band result.
/// For binary32 (emax 127, 24-bit significand) the same derivation gives:
///  * hi: amax < 2^60 keeps d2 < 2^120, s < 2^123, |diff|*r < 2^122, all
///    below FLT_MAX = 2^128*(1-eps).
///  * lo: amax >= 2^-50 keeps max(d2, 4c2) >= 2^-100, whose half-ulp
///    (2^-124) is above the subnormal threshold 2^-126.
/// max_scale_exp caps the rescale factor 2^-e at the largest finite power of
/// two, so a subnormal amax cannot produce an infinite scale; the clamped
/// scale still lands amax far inside the band.
template <class T>
struct RotationRange;

template <>
struct RotationRange<double> {
  static constexpr double hi = 0x1p+500;
  static constexpr double lo = 0x1p-475;
  static constexpr double rho_collapse = 0x1p+510;
  static constexpr int max_scale_exp = 1023;
};

template <>
struct RotationRange<float> {
  static constexpr float hi = 0x1p+60f;
  static constexpr float lo = 0x1p-50f;
  static constexpr float rho_collapse = 0x1p+60f;
  static constexpr int max_scale_exp = 127;
};

/// Back-compat aliases for the binary64 band (tests and docs reference them).
inline constexpr double kRotationPrescaleHi = RotationRange<double>::hi;
inline constexpr double kRotationPrescaleLo = RotationRange<double>::lo;

namespace detail {

template <class T>
inline T flip_sign_if(T x, bool negative) {
  return negative ? -x : x;
}

template <class T>
inline void ensure_rotation_inputs_finite(T norm_jj, T norm_ii, T cov) {
  HJSVD_ENSURE(std::isfinite(norm_jj) && std::isfinite(norm_ii) &&
                   std::isfinite(cov),
               "rotation: non-finite input (norms and covariance must be "
               "finite; a NaN here means the decomposition diverged)");
}

/// Exact power-of-two rescale of (diff, cv) bringing max(|diff|, |cv|) into
/// [0.5, 1) — or, for amax subnormal enough that 2^-e overflows, as close as
/// the largest finite power of two allows (still far inside the band).
template <class T, class Ops>
inline void prescale_rotation_inputs(T& diff, T& cv, T amax, Ops ops) {
  int e = 0;
  std::frexp(amax, &e);
  const int shift = std::min(-e, RotationRange<T>::max_scale_exp);
  const T scale = static_cast<T>(std::ldexp(T(1), shift));
  diff = ops.mul(diff, scale);
  cv = ops.mul(cv, scale);
}

}  // namespace detail

/// Algorithm 1 lines 11-14 (with the erratum's sign fix).
/// norm_jj = D(j,j), norm_ii = D(i,i), cov = D(i,j).
template <class T, class Ops>
RotationParamsT<T> rotation_textbook(T norm_jj, T norm_ii, T cov, Ops ops) {
  RotationParamsT<T> p;
  detail::ensure_rotation_inputs_finite(norm_jj, norm_ii, cov);
  if (cov == T(0)) return p;
  p.rotate = true;
  // rho = (D_jj - D_ii) / (2*cov); the doubling is an exponent bump.
  T diff = ops.sub(norm_jj, norm_ii);
  HJSVD_ENSURE(std::isfinite(diff), "rotation: D_jj - D_ii overflows");
  T cv = cov;
  {
    const T abs_diff = diff < T(0) ? -diff : diff;
    const T abs_cov = cv < T(0) ? -cv : cv;
    const T amax = abs_diff > abs_cov ? abs_diff : abs_cov;
    if (amax >= RotationRange<T>::hi || amax < RotationRange<T>::lo) {
      // Exact power-of-two rescale of both inputs: brings amax into
      // [0.5, 1) so 2*cv below cannot overflow or underflow.  rho and
      // everything after it are unchanged in exact arithmetic.
      detail::prescale_rotation_inputs(diff, cv, amax, ops);
    }
  }
  const T rho = ops.div(diff, T(2) * cv);
  // t = sign(rho) / (|rho| + sqrt(1 + rho^2))
  const T abs_rho = rho < T(0) ? -rho : rho;
  T t_mag;
  if (abs_rho > RotationRange<T>::rho_collapse) {
    // rho^2 would overflow; sqrt(1 + rho^2) == |rho| to working precision
    // here, so the small root collapses to 1/(2|rho|).  At the seam both
    // branches are correctly-rounded images of the same real value.
    t_mag = ops.div(T(0.5), abs_rho);
  } else {
    const T rho2 = ops.mul(rho, rho);
    const T root = ops.sqrt(ops.add(T(1), rho2));
    t_mag = ops.div(T(1), ops.add(abs_rho, root));
  }
  p.t = detail::flip_sign_if(t_mag, rho < T(0));
  // cos = 1 / sqrt(1 + t^2); sin = cos * t
  const T t2 = ops.mul(p.t, p.t);
  p.cos = ops.div(T(1), ops.sqrt(ops.add(T(1), t2)));
  p.sin = ops.mul(p.cos, p.t);
  return p;
}

/// Hardware closed form, eqs. (8)-(10).  Avoids dividing by the covariance,
/// which is the numerically delicate quantity near convergence.
template <class T, class Ops>
RotationParamsT<T> rotation_hardware(T norm_jj, T norm_ii, T cov, Ops ops) {
  RotationParamsT<T> p;
  detail::ensure_rotation_inputs_finite(norm_jj, norm_ii, cov);
  if (cov == T(0)) return p;
  p.rotate = true;
  // With n1 = D_jj, n2 = D_ii the paper's eq. (8) uses |n2 - n1|, which
  // equals |diff| either way; the sign of t is sign(rho) = sign(diff * cov).
  T diff = ops.sub(norm_jj, norm_ii);
  HJSVD_ENSURE(std::isfinite(diff), "rotation: D_jj - D_ii overflows");
  T cv = cov;
  const bool t_negative = (diff < T(0)) != (cv < T(0));
  T abs_diff = diff < T(0) ? -diff : diff;
  T abs_cov = cv < T(0) ? -cv : cv;
  const T amax = abs_diff > abs_cov ? abs_diff : abs_cov;
  if (amax >= RotationRange<T>::hi || amax < RotationRange<T>::lo) {
    // Scale-invariant slow path: d2/c2 below would overflow or drown in
    // subnormal rounding, so rescale both inputs by an exact power of two
    // that brings amax into [0.5, 1).
    detail::prescale_rotation_inputs(diff, cv, amax, ops);
    abs_diff = diff < T(0) ? -diff : diff;
    abs_cov = cv < T(0) ? -cv : cv;
  }
  const T d2 = ops.mul(diff, diff);
  const T c2 = ops.mul(cv, cv);
  const T s = ops.add(d2, T(4) * c2);       // (n2-n1)^2 + 4 c^2
  const T r = ops.sqrt(s);                  // sqrt of the above
  // eq. (8): t = |2c| / (|n2-n1| + sqrt(...))
  const T t_mag = ops.div(T(2) * abs_cov, ops.add(abs_diff, r));
  p.t = detail::flip_sign_if(t_mag, t_negative);
  // eqs. (9)-(10): shared subexpressions
  const T adr = ops.mul(abs_diff, r);
  const T den = ops.add(s, adr);            // d2 + 4c^2 + |d|*r
  const T num = ops.add(ops.add(d2, T(2) * c2), adr);
  p.cos = ops.sqrt(ops.div(num, den));
  const T sin_mag = ops.sqrt(ops.div(T(2) * c2, den));
  p.sin = detail::flip_sign_if(sin_mag, t_negative);
  return p;
}

/// Dispatch on the configured formula.
template <class T, class Ops>
RotationParamsT<T> compute_rotation(RotationFormula formula, T norm_jj,
                                    T norm_ii, T cov, Ops ops) {
  return formula == RotationFormula::kTextbook
             ? rotation_textbook(norm_jj, norm_ii, cov, ops)
             : rotation_hardware(norm_jj, norm_ii, cov, ops);
}

}  // namespace hjsvd

// Runtime selection of the SIMD backend and the public kernel entry points.
#include "linalg/simd/simd.hpp"

#include <cstdlib>
#include <string_view>

#include "common/error.hpp"
#include "linalg/simd/backend.hpp"

namespace hjsvd::simd {
namespace {

struct State {
  Level level;
  const detail::Backend* backend;
};

const detail::Backend* backend_for(Level level) {
#if defined(HJSVD_SIMD_AVX2)
  if (level == Level::kAvx2) return &detail::avx2_backend();
#endif
  (void)level;
  return &detail::scalar_backend();
}

Level detect_level() {
  // The env var shares the CMake option's name: HJSVD_SIMD=off|scalar
  // forces the portable backend, =avx2 demands the vector one, =auto (or
  // unset) picks the best available.
  const char* env = std::getenv("HJSVD_SIMD");
  const std::string_view mode = env != nullptr ? env : "auto";
  if (mode == "off" || mode == "scalar") return Level::kScalar;
  if (mode == "avx2") {
    HJSVD_ENSURE(compiled_with_avx2(),
                 "HJSVD_SIMD=avx2 but the AVX2 backend was compiled out "
                 "(build with -DHJSVD_SIMD=ON)");
    HJSVD_ENSURE(cpu_has_avx2(), "HJSVD_SIMD=avx2 but this CPU lacks AVX2");
    return Level::kAvx2;
  }
  HJSVD_ENSURE(mode == "auto",
               "HJSVD_SIMD must be one of off|scalar|avx2|auto");
  return compiled_with_avx2() && cpu_has_avx2() ? Level::kAvx2
                                                : Level::kScalar;
}

State& state() {
  static State st = [] {
    const Level level = detect_level();
    return State{level, backend_for(level)};
  }();
  return st;
}

}  // namespace

const char* level_name(Level level) {
  return level == Level::kAvx2 ? "avx2" : "scalar";
}

bool compiled_with_avx2() {
#if defined(HJSVD_SIMD_AVX2)
  return true;
#else
  return false;
#endif
}

bool cpu_has_avx2() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Level active_level() { return state().level; }

Level set_level(Level level) {
  if (level == Level::kAvx2) {
    HJSVD_ENSURE(compiled_with_avx2(),
                 "set_level(kAvx2): the AVX2 backend was compiled out");
    HJSVD_ENSURE(cpu_has_avx2(), "set_level(kAvx2): this CPU lacks AVX2");
  }
  State& st = state();
  const Level previous = st.level;
  st.level = level;
  st.backend = backend_for(level);
  return previous;
}

void rotate_pair(std::span<double> x, std::span<double> y, double c,
                 double s) {
  HJSVD_ENSURE(x.size() == y.size(), "rotate_pair requires equal lengths");
  state().backend->rotate_pair(x.data(), y.data(), x.size(), c, s);
}

void rotate_pair(std::span<float> x, std::span<float> y, float c, float s) {
  HJSVD_ENSURE(x.size() == y.size(), "rotate_pair requires equal lengths");
  state().backend->rotate_pair_f32(x.data(), y.data(), x.size(), c, s);
}

void rotation_hardware_batch(std::size_t count, const double* norm_jj,
                             const double* norm_ii, const double* cov,
                             double* t, double* c, double* s,
                             std::uint8_t* rotate) {
  state().backend->rotation_hardware_batch(count, norm_jj, norm_ii, cov, t,
                                           c, s, rotate);
}

double dot_relaxed(std::span<const double> x, std::span<const double> y) {
  HJSVD_ENSURE(x.size() == y.size(), "dot_relaxed requires equal lengths");
  return state().backend->dot_relaxed(x.data(), y.data(), x.size());
}

double squared_norm_relaxed(std::span<const double> x) {
  return state().backend->squared_norm_relaxed(x.data(), x.size());
}

}  // namespace hjsvd::simd

// Portable backend.  The bit-identical tier is the plain reference loop;
// the relaxed tier reproduces the AVX2 backend's arithmetic *exactly* —
// four independent accumulators striding the input, reduced in the fixed
// order (a0+a2) + (a1+a3), then a strict left-to-right tail — so relaxed
// results are bitwise identical across dispatch levels.  This TU is built
// with the baseline ISA and no FMA contraction is possible (the target has
// no FMA instruction), so every statement rounds exactly once.
#include "linalg/simd/backend.hpp"

namespace hjsvd::simd::detail {
namespace {

void rotate_pair_scalar(double* x, double* y, std::size_t n, double c,
                        double s) {
  for (std::size_t r = 0; r < n; ++r) {
    const double xr = x[r];
    const double yr = y[r];
    x[r] = xr * c - yr * s;
    y[r] = xr * s + yr * c;
  }
}

void rotate_pair_f32_scalar(float* x, float* y, std::size_t n, float c,
                            float s) {
  for (std::size_t r = 0; r < n; ++r) {
    const float xr = x[r];
    const float yr = y[r];
    x[r] = xr * c - yr * s;
    y[r] = xr * s + yr * c;
  }
}

void rotation_batch_scalar(std::size_t count, const double* norm_jj,
                           const double* norm_ii, const double* cov,
                           double* t, double* c, double* s,
                           std::uint8_t* rotate) {
  for (std::size_t l = 0; l < count; ++l)
    rotation_lane(norm_jj[l], norm_ii[l], cov[l], t + l, c + l, s + l,
                  rotate + l);
}

double dot_relaxed_scalar(const double* x, const double* y, std::size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  const std::size_t body = n - n % 4;
  std::size_t i = 0;
  for (; i < body; i += 4) {
    acc0 += x[i] * y[i];
    acc1 += x[i + 1] * y[i + 1];
    acc2 += x[i + 2] * y[i + 2];
    acc3 += x[i + 3] * y[i + 3];
  }
  // AVX2 reduction order: low128 + high128 gives [a0+a2, a1+a3], then the
  // scalar add of the two halves.
  double sum = (acc0 + acc2) + (acc1 + acc3);
  for (; i < n; ++i) sum += x[i] * y[i];
  return sum;
}

double squared_norm_relaxed_scalar(const double* x, std::size_t n) {
  return dot_relaxed_scalar(x, x, n);
}

}  // namespace

const Backend& scalar_backend() {
  static const Backend backend{rotate_pair_scalar, rotate_pair_f32_scalar,
                               rotation_batch_scalar, dot_relaxed_scalar,
                               squared_norm_relaxed_scalar};
  return backend;
}

}  // namespace hjsvd::simd::detail

// Runtime-dispatched SIMD kernels for the Hestenes-Jacobi hot loops.
//
// The paper gets its speedup by evaluating eqs. (8)-(12) in parallel
// hardware; on a CPU host the same loops vectorize (Novaković's thread-
// parallel Jacobi vectorization): batches of order-2 rotation problems are
// solved in lockstep across lanes and the paired column/covariance updates
// are element-wise vector arithmetic.
//
// Two tiers with different contracts:
//
//  * Bit-identical tier (rotate_pair, rotation_hardware_batch): purely
//    element-wise lane math — mul/sub/add/div/sqrt per lane, no FMA, no
//    reassociation.  Every AVX2 arithmetic instruction used here is IEEE-754
//    correctly rounded, so each lane computes exactly the bits of the scalar
//    reference and results are bitwise independent of the dispatch level.
//    The engines call these unconditionally.
//
//  * Relaxed tier (dot_relaxed, squared_norm_relaxed): 4-lane-split
//    accumulation reassociates the reduction, so results differ from the
//    strict left-to-right scalar kernels by O(n*eps) — but NOT between
//    dispatch levels: the portable backend emulates the AVX2 lane
//    accumulation and reduction order exactly, so relaxed results never
//    depend on the host CPU (deterministic, just differently associated).
//    Engines use these only under the opt-in SvdOptions::simd_relaxed.
//
// Dispatch: the backend is chosen once, at first use, from (a) the
// HJSVD_SIMD CMake toggle (OFF compiles the AVX2 backend out entirely),
// (b) runtime CPUID (AVX2 support), and (c) the HJSVD_SIMD environment
// variable: "off"/"scalar" force the portable backend, "avx2" requires the
// vector backend (error when unavailable), "auto"/unset picks the best
// available.  set_level() overrides the choice at runtime (test hook).
//
// See docs/ALGORITHM.md §9 for the lane layout and the bit-identity
// argument.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace hjsvd::simd {

/// Dispatchable kernel backends.
enum class Level {
  kScalar,  // portable backend (also the AVX2-emulating relaxed reducer)
  kAvx2,    // 4 x double AVX2 backend
};

/// Name for logs/manifests ("scalar", "avx2").
const char* level_name(Level level);

/// True when the AVX2 backend was compiled in (HJSVD_SIMD=ON and the
/// compiler supports -mavx2).
bool compiled_with_avx2();

/// True when the CPU executing this process supports AVX2.
bool cpu_has_avx2();

/// The level the dispatcher is currently using.  Resolved on first use from
/// build toggle + CPUID + the HJSVD_SIMD environment variable.
Level active_level();

/// Force a dispatch level (test hook; also used by the CLI's --simd flag).
/// Throws hjsvd::Error if kAvx2 is requested but compiled out or not
/// supported by the CPU.  Returns the previously active level.  Not
/// thread-safe against concurrent kernel calls; call before starting work.
Level set_level(Level level);

// ---- bit-identical tier --------------------------------------------------

/// In-place plane rotation of two equal-length vectors (paper eqs. 11-12):
///   x[r] <- x[r]*c - y[r]*s ;  y[r] <- x[r]*s + y[r]*c
/// (both outputs from the original x[r], y[r]).  Bitwise identical to the
/// scalar loop at every dispatch level.
void rotate_pair(std::span<double> x, std::span<double> y, double c,
                 double s);

/// Binary32 variant of rotate_pair for the mixed-precision float phase
/// (8 x float lanes on AVX2).  Same bit-identity contract: no FMA, no
/// reassociation, each lane computes the scalar float loop's bits.
void rotate_pair(std::span<float> x, std::span<float> y, float c, float s);

/// Batched hardware-form rotation generation: lane l solves the 2x2 problem
/// (norm_jj[l], norm_ii[l], cov[l]) producing exactly the bits of
/// rotation_hardware<fp::NativeOps>, 4 problems per vector op.  Lanes whose
/// amax leaves the pre-scaling band of linalg/rotation.hpp are redone by the
/// canonical scalar path (same bits, rare).  cov[l] == 0 lanes produce the
/// identity (t=0, c=1, s=0) with rotate[l] == 0.  Inputs must be finite —
/// enforced by the hjsvd::rotation_hardware_batch wrapper in
/// linalg/kernels.hpp, which engine code should call instead.
void rotation_hardware_batch(std::size_t count, const double* norm_jj,
                             const double* norm_ii, const double* cov,
                             double* t, double* c, double* s,
                             std::uint8_t* rotate);

// ---- relaxed tier --------------------------------------------------------

/// Dot product with 4-lane-split accumulation; identical bits at every
/// dispatch level, |result - exact| <= ~n*eps*sum|x_i y_i| like any
/// recursive summation.  NOT bitwise equal to hjsvd::dot.
double dot_relaxed(std::span<const double> x, std::span<const double> y);

/// Squared 2-norm with 4-lane-split accumulation (see dot_relaxed).
double squared_norm_relaxed(std::span<const double> x);

}  // namespace hjsvd::simd

// AVX2 backend (4 x double lanes).  Compiled with -mavx2 only in this TU.
//
// Bit-identity argument (docs/ALGORITHM.md §9): vmulpd/vaddpd/vsubpd/vdivpd
// and vsqrtpd are IEEE-754 correctly rounded, the kernels never use FMA, and
// the bit-identical tier performs no reassociation — each lane executes the
// scalar reference's operation sequence verbatim, so each lane's bits equal
// the scalar result.  Sign flips are bitwise XOR of the sign bit, exactly
// what negation does on every IEEE value including zeros and NaNs.
#include <immintrin.h>

#include "linalg/simd/backend.hpp"

namespace hjsvd::simd::detail {
namespace {

void rotate_pair_avx2(double* x, double* y, std::size_t n, double c,
                      double s) {
  const __m256d vc = _mm256_set1_pd(c);
  const __m256d vs = _mm256_set1_pd(s);
  const std::size_t body = n - n % 4;
  std::size_t r = 0;
  for (; r < body; r += 4) {
    const __m256d xr = _mm256_loadu_pd(x + r);
    const __m256d yr = _mm256_loadu_pd(y + r);
    _mm256_storeu_pd(
        x + r, _mm256_sub_pd(_mm256_mul_pd(xr, vc), _mm256_mul_pd(yr, vs)));
    _mm256_storeu_pd(
        y + r, _mm256_add_pd(_mm256_mul_pd(xr, vs), _mm256_mul_pd(yr, vc)));
  }
  for (; r < n; ++r) {
    const double xr = x[r];
    const double yr = y[r];
    x[r] = xr * c - yr * s;
    y[r] = xr * s + yr * c;
  }
}

void rotate_pair_f32_avx2(float* x, float* y, std::size_t n, float c,
                          float s) {
  const __m256 vc = _mm256_set1_ps(c);
  const __m256 vs = _mm256_set1_ps(s);
  const std::size_t body = n - n % 8;
  std::size_t r = 0;
  for (; r < body; r += 8) {
    const __m256 xr = _mm256_loadu_ps(x + r);
    const __m256 yr = _mm256_loadu_ps(y + r);
    _mm256_storeu_ps(
        x + r, _mm256_sub_ps(_mm256_mul_ps(xr, vc), _mm256_mul_ps(yr, vs)));
    _mm256_storeu_ps(
        y + r, _mm256_add_ps(_mm256_mul_ps(xr, vs), _mm256_mul_ps(yr, vc)));
  }
  for (; r < n; ++r) {
    const float xr = x[r];
    const float yr = y[r];
    x[r] = xr * c - yr * s;
    y[r] = xr * s + yr * c;
  }
}

void rotation_batch_avx2(std::size_t count, const double* norm_jj,
                         const double* norm_ii, const double* cov, double* t,
                         double* c, double* s, std::uint8_t* rotate) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d four = _mm256_set1_pd(4.0);
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  const __m256d sign_mask = _mm256_castsi256_pd(
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL)));
  const __m256d prescale_hi = _mm256_set1_pd(kRotationPrescaleHi);
  const __m256d prescale_lo = _mm256_set1_pd(kRotationPrescaleLo);
  const std::size_t body = count - count % 4;
  std::size_t l = 0;
  for (; l < body; l += 4) {
    const __m256d vjj = _mm256_loadu_pd(norm_jj + l);
    const __m256d vii = _mm256_loadu_pd(norm_ii + l);
    const __m256d vcv = _mm256_loadu_pd(cov + l);
    const __m256d diff = _mm256_sub_pd(vjj, vii);
    const __m256d abs_diff = _mm256_and_pd(diff, abs_mask);
    const __m256d abs_cov = _mm256_and_pd(vcv, abs_mask);
    // sign(t): (diff < 0) != (cov < 0), as an all-ones lane mask.
    const __m256d t_negative =
        _mm256_xor_pd(_mm256_cmp_pd(diff, zero, _CMP_LT_OQ),
                      _mm256_cmp_pd(vcv, zero, _CMP_LT_OQ));
    const __m256d flip = _mm256_and_pd(t_negative, sign_mask);
    // Lanes outside the pre-scaling band are redone by the canonical scalar
    // path below; the unscaled fast path here matches the scalar in-band
    // arithmetic operation for operation.
    const __m256d amax = _mm256_max_pd(abs_diff, abs_cov);
    const __m256d out_of_band =
        _mm256_or_pd(_mm256_cmp_pd(amax, prescale_hi, _CMP_GE_OQ),
                     _mm256_cmp_pd(amax, prescale_lo, _CMP_LT_OQ));
    const __m256d cov_zero = _mm256_cmp_pd(vcv, zero, _CMP_EQ_OQ);
    const __m256d d2 = _mm256_mul_pd(diff, diff);
    const __m256d c2 = _mm256_mul_pd(vcv, vcv);
    const __m256d vs2 = _mm256_add_pd(d2, _mm256_mul_pd(four, c2));
    const __m256d vr = _mm256_sqrt_pd(vs2);
    const __m256d t_mag =
        _mm256_div_pd(_mm256_mul_pd(two, abs_cov),
                      _mm256_add_pd(abs_diff, vr));
    const __m256d vt = _mm256_xor_pd(t_mag, flip);
    const __m256d adr = _mm256_mul_pd(abs_diff, vr);
    const __m256d den = _mm256_add_pd(vs2, adr);
    const __m256d c2x2 = _mm256_mul_pd(two, c2);
    const __m256d num = _mm256_add_pd(_mm256_add_pd(d2, c2x2), adr);
    const __m256d vcos = _mm256_sqrt_pd(_mm256_div_pd(num, den));
    const __m256d vsin =
        _mm256_xor_pd(_mm256_sqrt_pd(_mm256_div_pd(c2x2, den)), flip);
    // cov == 0 lanes: identity, rotate = 0 (matches the scalar early-out).
    _mm256_storeu_pd(t + l, _mm256_andnot_pd(cov_zero, vt));
    _mm256_storeu_pd(c + l, _mm256_blendv_pd(vcos, one, cov_zero));
    _mm256_storeu_pd(s + l, _mm256_andnot_pd(cov_zero, vsin));
    const int zero_bits = _mm256_movemask_pd(cov_zero);
    for (int lane = 0; lane < 4; ++lane)
      rotate[l + lane] = static_cast<std::uint8_t>(~zero_bits >> lane & 1);
    const int redo_bits = _mm256_movemask_pd(out_of_band);
    if (redo_bits != 0) {
      for (int lane = 0; lane < 4; ++lane) {
        if ((redo_bits >> lane & 1) == 0) continue;
        const std::size_t k = l + static_cast<std::size_t>(lane);
        rotation_lane(norm_jj[k], norm_ii[k], cov[k], t + k, c + k, s + k,
                      rotate + k);
      }
    }
  }
  for (; l < count; ++l)
    rotation_lane(norm_jj[l], norm_ii[l], cov[l], t + l, c + l, s + l,
                  rotate + l);
}

double dot_relaxed_avx2(const double* x, const double* y, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t body = n - n % 4;
  std::size_t i = 0;
  for (; i < body; i += 4)
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  // Reduce as (a0+a2) + (a1+a3); the scalar backend mirrors this order.
  const __m128d halves = _mm_add_pd(_mm256_castpd256_pd128(acc),
                                    _mm256_extractf128_pd(acc, 1));
  double sum = _mm_cvtsd_f64(halves) +
               _mm_cvtsd_f64(_mm_unpackhi_pd(halves, halves));
  for (; i < n; ++i) sum += x[i] * y[i];
  return sum;
}

double squared_norm_relaxed_avx2(const double* x, std::size_t n) {
  return dot_relaxed_avx2(x, x, n);
}

}  // namespace

const Backend& avx2_backend() {
  static const Backend backend{rotate_pair_avx2, rotate_pair_f32_avx2,
                               rotation_batch_avx2, dot_relaxed_avx2,
                               squared_norm_relaxed_avx2};
  return backend;
}

}  // namespace hjsvd::simd::detail

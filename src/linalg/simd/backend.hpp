// Internal backend vtable of the SIMD dispatch layer.  Each backend is one
// translation unit (kernels_scalar.cpp always; kernels_avx2.cpp only when
// HJSVD_SIMD=ON and the compiler has -mavx2, compiled with -mavx2 so the
// rest of the library keeps the baseline ISA).  dispatch.cpp picks one at
// first use.  Not installed / not for use outside src/linalg/simd/.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "linalg/rotation.hpp"

namespace hjsvd::simd::detail {

struct Backend {
  void (*rotate_pair)(double* x, double* y, std::size_t n, double c,
                      double s);
  void (*rotate_pair_f32)(float* x, float* y, std::size_t n, float c,
                          float s);
  void (*rotation_hardware_batch)(std::size_t count, const double* norm_jj,
                                  const double* norm_ii, const double* cov,
                                  double* t, double* c, double* s,
                                  std::uint8_t* rotate);
  double (*dot_relaxed)(const double* x, const double* y, std::size_t n);
  double (*squared_norm_relaxed)(const double* x, std::size_t n);
};

const Backend& scalar_backend();
const Backend& avx2_backend();  // defined only when HJSVD_SIMD_AVX2

/// Plain-double arithmetic policy for instantiating the canonical rotation
/// templates inside linalg (same native IEEE ops as fp::NativeOps, which
/// linalg must not depend on).  Bitwise interchangeable with NativeOps.
struct ScalarOps {
  static double add(double a, double b) { return a + b; }
  static double sub(double a, double b) { return a - b; }
  static double mul(double a, double b) { return a * b; }
  static double div(double a, double b) { return a / b; }
  static double sqrt(double a) { return std::sqrt(a); }
};

/// One lane of the batched rotation generator: the canonical scalar path.
inline void rotation_lane(double norm_jj, double norm_ii, double cov,
                          double* t, double* c, double* s,
                          std::uint8_t* rotate) {
  const RotationParams p = rotation_hardware(norm_jj, norm_ii, cov,
                                             ScalarOps{});
  *t = p.t;
  *c = p.cos;
  *s = p.sin;
  *rotate = p.rotate ? 1 : 0;
}

}  // namespace hjsvd::simd::detail

#include "linalg/io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace hjsvd {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Reads the next non-comment, non-empty line; false at EOF.
bool next_content_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    return true;
  }
  return false;
}

}  // namespace

Matrix read_matrix_market(std::istream& in) {
  std::string header;
  HJSVD_ENSURE(std::getline(in, header), "empty Matrix Market stream");
  std::istringstream hs(header);
  std::string banner, object, format, field, symmetry;
  hs >> banner >> object >> format >> field >> symmetry;
  HJSVD_ENSURE(banner == "%%MatrixMarket", "missing %%MatrixMarket banner");
  HJSVD_ENSURE(lower(object) == "matrix", "only 'matrix' objects supported");
  format = lower(format);
  field = lower(field);
  symmetry = lower(symmetry);
  HJSVD_ENSURE(field == "real", "only real matrices supported");
  HJSVD_ENSURE(symmetry == "general" || symmetry == "symmetric",
               "only general/symmetric matrices supported");

  std::string line;
  HJSVD_ENSURE(next_content_line(in, line), "missing size line");
  std::istringstream sizes(line);

  if (format == "coordinate") {
    std::size_t rows = 0, cols = 0, entries = 0;
    sizes >> rows >> cols >> entries;
    HJSVD_ENSURE(rows > 0 && cols > 0, "invalid dimensions");
    HJSVD_ENSURE(symmetry != "symmetric" || rows == cols,
                 "symmetric matrices must be square");
    Matrix m(rows, cols);
    for (std::size_t e = 0; e < entries; ++e) {
      HJSVD_ENSURE(next_content_line(in, line), "truncated coordinate data");
      std::istringstream es(line);
      std::size_t r = 0, c = 0;
      double val = 0.0;
      es >> r >> c >> val;
      HJSVD_ENSURE(r >= 1 && r <= rows && c >= 1 && c <= cols,
                   "coordinate out of range");
      m(r - 1, c - 1) = val;
      if (symmetry == "symmetric" && r != c) m(c - 1, r - 1) = val;
    }
    return m;
  }
  if (format == "array") {
    std::size_t rows = 0, cols = 0;
    sizes >> rows >> cols;
    HJSVD_ENSURE(rows > 0 && cols > 0, "invalid dimensions");
    HJSVD_ENSURE(symmetry == "general",
                 "symmetric array format not supported");
    Matrix m(rows, cols);
    for (std::size_t c = 0; c < cols; ++c) {
      for (std::size_t r = 0; r < rows; ++r) {
        HJSVD_ENSURE(next_content_line(in, line), "truncated array data");
        m(r, c) = std::stod(line);
      }
    }
    return m;
  }
  throw Error("unsupported Matrix Market format: " + format);
}

Matrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  HJSVD_ENSURE(in.good(), "cannot open Matrix Market file: " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Matrix& a) {
  HJSVD_ENSURE(!a.empty(), "cannot write an empty matrix");
  out << "%%MatrixMarket matrix array real general\n";
  out << "% written by hjsvd\n";
  out << a.rows() << ' ' << a.cols() << '\n';
  out.precision(17);
  for (std::size_t c = 0; c < a.cols(); ++c)
    for (std::size_t r = 0; r < a.rows(); ++r) out << a(r, c) << '\n';
  HJSVD_ENSURE(out.good(), "stream failure while writing Matrix Market data");
}

void write_matrix_market_file(const std::string& path, const Matrix& a) {
  std::ofstream out(path);
  HJSVD_ENSURE(out.good(), "cannot open output file: " + path);
  write_matrix_market(out, a);
}

}  // namespace hjsvd

// Overhead-guardrail predicate for observability benchmarks.
//
// The obs-overhead bench times the same workload with tracing+metrics
// enabled and disabled and asserts the two are close.  The original check
// was asymmetric — it only tested "disabled within 5% of enabled", so a
// build where *enabling* observability cost 6% still passed.  The predicate
// here is symmetric: the absolute gap must be within `frac` of the slower
// side, so either direction of slowdown trips the guardrail.
#pragma once

#include <algorithm>
#include <cmath>

namespace hjsvd::obs {

/// True iff |a_s - b_s| <= frac * max(a_s, b_s).  Symmetric in its first two
/// arguments; degenerate non-positive timings fail the guardrail (a zero or
/// negative wall time means the measurement itself is broken).
constexpr bool overhead_within(double a_s, double b_s, double frac) {
  if (!(a_s > 0.0) || !(b_s > 0.0) || !(frac >= 0.0)) return false;
  const double hi = std::max(a_s, b_s);
  const double lo = std::min(a_s, b_s);
  return hi - lo <= frac * hi;
}

/// Signed overhead of `enabled_s` relative to `disabled_s`
/// ((enabled - disabled) / disabled); positive means observability made the
/// run slower.  Returns 0 for degenerate baselines.
constexpr double overhead_frac(double enabled_s, double disabled_s) {
  if (!(disabled_s > 0.0)) return 0.0;
  return (enabled_s - disabled_s) / disabled_s;
}

}  // namespace hjsvd::obs

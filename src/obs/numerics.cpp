#include "obs/numerics.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/live.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hjsvd::obs {
namespace {

constexpr double kPiOver4 = 0.78539816339744830962;

}  // namespace

NumericsProbe::NumericsProbe(const Config& config, MetricsRegistry* metrics,
                             TraceRecorder* trace, Watchdog* watchdog)
    : config_(config), metrics_(metrics), trace_(trace), watchdog_(watchdog) {
  if (config_.stride == 0) config_.stride = 1;
  const std::lock_guard<std::mutex> lock(mu_);
  publish_locked();
}

std::uint32_t NumericsProbe::trace_tid_locked() {
  if (!trace_registered_) {
    trace_tid_ = trace_->register_thread("numerics");
    trace_registered_ = true;
  }
  return trace_tid_;
}

void NumericsProbe::observe_pair(double dii, double djj, double cov) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++samples_;
  if (!(std::isfinite(dii) && std::isfinite(djj) && std::isfinite(cov))) {
    ++nonfinite_events_;
    return;
  }
  const double adii = std::fabs(dii);
  const double adjj = std::fabs(djj);
  const double diff = std::fabs(djj - dii);
  const double amax = std::max(adii, adjj);

  // Cancellation severity on the rotation inputs: the hardware formula's
  // denominator is djj - dii, so a relative difference near rounding level
  // means the computed angle carries few correct bits.
  if (amax > 0.0) {
    const double rel = diff / amax;
    if (rel < config_.cancellation_rel) {
      ++cancellation_events_;
      worst_cancellation_rel_ = std::min(worst_cancellation_rel_, rel);
    }
  }

  // The one-sided Jacobi angle in [0, pi/4], derived without calling
  // compute_rotation (whose finiteness guard throws): tan(2 theta) =
  // 2|cov| / |djj - dii|.
  const double theta = 0.5 * std::atan2(2.0 * std::fabs(cov), diff);
  const auto bucket = std::min<std::size_t>(
      kAngleBuckets - 1,
      static_cast<std::size_t>(theta / kPiOver4 *
                               static_cast<double>(kAngleBuckets)));
  ++angle_hist_[bucket];
  if (theta < config_.tiny_angle_rad) ++tiny_angle_count_;
  if (theta > config_.near_pi4_frac * kPiOver4) ++near_pi4_count_;

  // Exponent watermarks and the running condition estimate over the Gram
  // diagonal (squared column norms): halving ilogb gives the column norm's
  // binary exponent without a sqrt on the sampling path.
  for (const double v : {adii, adjj}) {
    if (!(v > 0.0)) continue;
    const int e = std::ilogb(v) / 2;
    if (!has_diag_) {
      diag_min_ = diag_max_ = v;
      norm_exp_min_ = norm_exp_max_ = e;
      has_diag_ = true;
    } else {
      diag_min_ = std::min(diag_min_, v);
      diag_max_ = std::max(diag_max_, v);
      norm_exp_min_ = std::min(norm_exp_min_, e);
      norm_exp_max_ = std::max(norm_exp_max_, e);
    }
  }
}

void NumericsProbe::observe_sweep(std::size_t sweep, double offdiag_frobenius) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++sweeps_observed_;
  // A sweep-0 observation starts a new run on a reused probe: forget the
  // previous run's trailing mass so the restart's (typically larger)
  // off-diagonal does not register as divergence.  Interleaved feeders
  // (svd_batch) make this counter approximate by construction; the sticky
  // verdict lives in the per-run Watchdog, not here.
  if (sweep == 0) has_last_offdiag_ = false;
  if (has_last_offdiag_ && offdiag_diverged(offdiag_frobenius, last_offdiag_))
    ++divergence_events_;
  has_last_offdiag_ = true;
  last_offdiag_ = offdiag_frobenius;
  publish_locked();
}

void NumericsProbe::observe_finalize(const Matrix& a, const SvdResult& result) {
  // The O(n^2) / O(mnk) accuracy measures run outside the probe lock — they
  // only read the caller's finished result.
  double drift = -1.0;
  double backward = -1.0;
  double cond_sigma = -1.0;
  if (!result.v.empty()) drift = orthogonality_error(result.v);
  if (!result.u.empty() && !result.v.empty())
    backward = reconstruction_error(a, result);
  if (!result.singular_values.empty()) {
    const double smax = result.singular_values.front();
    const double smin = result.singular_values.back();
    if (smin > 0.0 && std::isfinite(smax)) cond_sigma = smax / smin;
  }

  {
    const std::lock_guard<std::mutex> lock(mu_);
    condition_sigma_ = cond_sigma;
    orthogonality_drift_ = drift;
    backward_error_ = backward;
    publish_locked();
    if (trace_ != nullptr) {
      trace_->emit_instant(trace_tid_locked(), "obs", "num.finalize",
                           trace_->now_us(),
                           ArgsBuilder()
                               .add("orthogonality_drift", drift)
                               .add("backward_error", backward)
                               .add("condition_sigma", cond_sigma)
                               .str());
    }
  }
  // Outside the probe lock: the watchdog has its own mutex and never calls
  // back into the probe, but keeping the two locks disjoint is free here.
  if (watchdog_ != nullptr && drift >= 0.0 && drift > config_.orthogonality_tol)
    watchdog_->flag_orthogonality(drift);
}

void NumericsProbe::publish_locked() {
  if (metrics_ == nullptr) return;
  const auto counter_sync = [&](const char* name, const char* unit,
                                std::uint64_t total, std::uint64_t& published) {
    if (total > published) {
      metrics_->counter_add(name, unit, total - published);
      published = total;
    }
  };
  counter_sync("svd.num.samples", "pairs", samples_, pub_samples_);
  counter_sync("svd.num.nonfinite.events", "events", nonfinite_events_,
               pub_nonfinite_);
  counter_sync("svd.num.cancellation.events", "events", cancellation_events_,
               pub_cancellation_);
  counter_sync("svd.num.divergence.events", "events", divergence_events_,
               pub_divergence_);
  for (std::size_t b = 0; b < kAngleBuckets; ++b) {
    const std::string name = "svd.num.angle.hist." + std::to_string(b);
    if (angle_hist_[b] > pub_angle_hist_[b]) {
      metrics_->counter_add(name, "pairs", angle_hist_[b] - pub_angle_hist_[b]);
      pub_angle_hist_[b] = angle_hist_[b];
    }
  }

  metrics_->gauge_set("svd.num.stride", "pairs",
                      static_cast<double>(config_.stride));
  const std::uint64_t finite = samples_ - nonfinite_events_;
  const double denom = finite > 0 ? static_cast<double>(finite) : 1.0;
  metrics_->gauge_set("svd.num.angle.tiny_frac", "1",
                      static_cast<double>(tiny_angle_count_) / denom);
  metrics_->gauge_set("svd.num.angle.near_pi4_frac", "1",
                      static_cast<double>(near_pi4_count_) / denom);
  metrics_->gauge_set("svd.num.cancellation.frac", "1",
                      static_cast<double>(cancellation_events_) / denom);
  metrics_->gauge_set("svd.num.cancellation.worst_rel", "1",
                      worst_cancellation_rel_);
  metrics_->gauge_set("svd.num.cond.estimate", "1",
                      has_diag_ ? std::sqrt(diag_max_ / diag_min_) : 1.0);
  if (has_diag_) {
    metrics_->gauge_set("svd.num.norm.exp_min", "exp2",
                        static_cast<double>(norm_exp_min_));
    metrics_->gauge_set("svd.num.norm.exp_max", "exp2",
                        static_cast<double>(norm_exp_max_));
  }
  if (condition_sigma_ >= 0.0)
    metrics_->gauge_set("svd.num.cond.sigma", "1", condition_sigma_);
  if (orthogonality_drift_ >= 0.0)
    metrics_->gauge_set("svd.num.finalize.v_orthogonality_drift", "1",
                        orthogonality_drift_);
  if (backward_error_ >= 0.0)
    metrics_->gauge_set("svd.num.finalize.backward_error", "1",
                        backward_error_);
}

std::uint64_t NumericsProbe::samples() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

std::uint64_t NumericsProbe::cancellation_events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return cancellation_events_;
}

std::uint64_t NumericsProbe::nonfinite_events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return nonfinite_events_;
}

std::uint64_t NumericsProbe::divergence_events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return divergence_events_;
}

std::array<std::uint64_t, NumericsProbe::kAngleBuckets>
NumericsProbe::angle_histogram() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return angle_hist_;
}

double NumericsProbe::tiny_angle_frac() const {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t finite = samples_ - nonfinite_events_;
  return finite > 0
             ? static_cast<double>(tiny_angle_count_) /
                   static_cast<double>(finite)
             : 0.0;
}

double NumericsProbe::near_pi4_frac() const {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t finite = samples_ - nonfinite_events_;
  return finite > 0
             ? static_cast<double>(near_pi4_count_) /
                   static_cast<double>(finite)
             : 0.0;
}

double NumericsProbe::cancellation_frac() const {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t finite = samples_ - nonfinite_events_;
  return finite > 0
             ? static_cast<double>(cancellation_events_) /
                   static_cast<double>(finite)
             : 0.0;
}

double NumericsProbe::condition_estimate() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return has_diag_ ? std::sqrt(diag_max_ / diag_min_) : 1.0;
}

double NumericsProbe::condition_sigma() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return condition_sigma_;
}

double NumericsProbe::orthogonality_drift() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return orthogonality_drift_;
}

double NumericsProbe::backward_error() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return backward_error_;
}

}  // namespace hjsvd::obs

// Chrome trace-event recorder (open the output in Perfetto / about:tracing).
//
// Model: each participating thread registers once and receives a handle
// (tid); events are appended to that handle's private buffer with no
// synchronization, so recording is lock-free after registration (the only
// mutex guards the registry of buffers).  Spans are emitted as complete
// events (ph "X") with microsecond timestamps measured from the recorder's
// construction on the steady clock; the accelerator simulator registers its
// units under a separate process id and timestamps events in *simulated*
// time, so hardware and software timelines can be loaded side by side.
// Counter samples (ph "C") render as Perfetto counter tracks next to the
// spans — queue and FIFO occupancy timelines live there.
//
// Serialized format (docs/OBSERVABILITY.md has the event taxonomy):
//   { "schema": "hjsvd.trace.v2", "displayTimeUnit": "ms",
//     "traceEvents": [ {"ph":"M",...thread/process names...},
//                      {"ph":"X","name":"sweep","cat":"svd","pid":1,
//                       "tid":2,"ts":12.5,"dur":801.2,"args":{...}},
//                      {"ph":"C","name":"pipeline.queue.occupancy","pid":1,
//                       "tid":0,"ts":13.0,"args":{"value":5}}, ... ] }
//
// Schema history: hjsvd.trace.v2 is hjsvd.trace.v1 plus counter events
// (ph "C").  v1 consumers that only read "X"/"M"/"i" events can treat the
// two versions identically — nothing was removed or renamed.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hjsvd::obs {

/// Well-known process ids of the two timelines in one trace file.
inline constexpr int kSoftwarePid = 1;   // wall-clock (steady_clock) events
inline constexpr int kSimulatorPid = 2;  // simulated-time (cycle) events

/// Schema tag written into every serialized trace document.  v2 = v1 plus
/// counter events (ph "C"); see the header comment for the compat contract.
inline constexpr const char* kTraceSchema = "hjsvd.trace.v2";

/// Incrementally builds the JSON object for an event's "args" field.
class ArgsBuilder {
 public:
  ArgsBuilder& add(std::string_view key, std::int64_t value);
  ArgsBuilder& add(std::string_view key, std::uint64_t value);
  ArgsBuilder& add(std::string_view key, int value) {
    return add(key, static_cast<std::int64_t>(value));
  }
  ArgsBuilder& add(std::string_view key, unsigned value) {
    return add(key, static_cast<std::uint64_t>(value));
  }
  ArgsBuilder& add(std::string_view key, double value);
  ArgsBuilder& add(std::string_view key, std::string_view value);
  /// The finished JSON object, e.g. {"sweep":3,"n":512}.
  std::string str() const { return body_.empty() ? "{}" : "{" + body_ + "}"; }

 private:
  void key(std::string_view k);
  std::string body_;
};

/// Thread-safe trace-event collector.  register_thread() is callable from
/// any thread; emit_* must only be called with a tid by the thread that owns
/// it (each tid's buffer is unsynchronized by design); write() must not run
/// concurrently with emission.
class TraceRecorder {
 public:
  TraceRecorder();

  /// Registers a named timeline and returns its tid.  `pid` selects the
  /// process group (kSoftwarePid or kSimulatorPid).
  std::uint32_t register_thread(std::string name, int pid = kSoftwarePid);

  /// Microseconds elapsed on the steady clock since construction — the
  /// timestamp base of every software (kSoftwarePid) event.
  double now_us() const;

  /// Records a completed span [ts_us, ts_us + dur_us) on timeline `tid`.
  /// `args_json` must be a JSON object (ArgsBuilder::str()).
  void emit_complete(std::uint32_t tid, const char* cat, std::string name,
                     double ts_us, double dur_us, std::string args_json = "{}");

  /// Records a zero-duration instant event.
  void emit_instant(std::uint32_t tid, const char* cat, std::string name,
                    double ts_us, std::string args_json = "{}");

  /// Records a counter sample: Perfetto draws one counter track per
  /// (pid, name) from the ph "C" events, so successive samples with the
  /// same name form a plottable occupancy timeline alongside the spans.
  void emit_counter(std::uint32_t tid, const char* cat, std::string name,
                    double ts_us, double value);

  /// Serializes the Chrome trace-event JSON document.
  void write(std::ostream& os) const;
  std::string to_json() const;

  /// One recorded event (test/inspection access via snapshot()).
  struct Event {
    char ph = 'X';  // 'X' complete, 'i' instant, 'C' counter
    std::string name;
    const char* cat = "";
    double ts_us = 0.0;
    double dur_us = 0.0;
    double value = 0.0;  // counter sample ('C' only)
    std::string args_json;
    std::uint32_t tid = 0;
    int pid = kSoftwarePid;
    std::string thread_name;
  };
  /// All events recorded so far, in per-thread order.  Not for hot paths.
  std::vector<Event> snapshot() const;

 private:
  struct ThreadLog {
    std::string name;
    int pid = kSoftwarePid;
    std::vector<Event> events;
  };

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;  // guards logs_ growth; buffers are single-writer
  std::deque<std::unique_ptr<ThreadLog>> logs_;
};

/// RAII wall-clock span on a software timeline: opens at construction,
/// emits a complete event at end()/destruction.  A default-constructed or
/// null-recorder Span is an inert no-op, so call sites need no branching.
class Span {
 public:
  Span() = default;
  Span(TraceRecorder* rec, std::uint32_t tid, const char* cat,
       std::string name, std::string args_json = "{}")
      : rec_(rec), tid_(tid), cat_(cat), name_(std::move(name)),
        args_(std::move(args_json)), start_us_(rec ? rec->now_us() : 0.0) {}
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      end();
      rec_ = other.rec_;
      tid_ = other.tid_;
      cat_ = other.cat_;
      name_ = std::move(other.name_);
      args_ = std::move(other.args_);
      start_us_ = other.start_us_;
      other.rec_ = nullptr;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  void end() {
    if (rec_ == nullptr) return;
    rec_->emit_complete(tid_, cat_, std::move(name_), start_us_,
                        rec_->now_us() - start_us_, std::move(args_));
    rec_ = nullptr;
  }

 private:
  TraceRecorder* rec_ = nullptr;
  std::uint32_t tid_ = 0;
  const char* cat_ = "";
  std::string name_;
  std::string args_;
  double start_us_ = 0.0;
};

}  // namespace hjsvd::obs

// Chrome trace-event recorder (open the output in Perfetto / about:tracing).
//
// Model: each participating thread registers once and receives a handle
// (tid); events are appended to that handle's private buffer under a
// per-buffer mutex that is uncontended in steady state (only a concurrent
// dump ever takes it from another thread), so recording stays cheap after
// registration.  Spans are emitted as complete events (ph "X") with
// microsecond timestamps measured from the recorder's construction on the
// steady clock; the accelerator simulator registers its units under a
// separate process id and timestamps events in *simulated* time, so
// hardware and software timelines can be loaded side by side.  Counter
// samples (ph "C") render as Perfetto counter tracks next to the spans —
// queue and FIFO occupancy timelines live there.
//
// Flight-recorder mode: constructing the recorder with a nonzero
// `ring_capacity_events` bounds every per-thread buffer to that many
// events.  When a buffer is full the *oldest* event is dropped and the
// owning thread's drop counter is incremented, so a long-lived process
// (the planned hjsvd_serve daemon) holds the most recent window of
// activity in bounded memory and can be dumped at any time.
//
// Serialized format (docs/OBSERVABILITY.md has the event taxonomy):
//   { "schema": "hjsvd.trace.v2", "displayTimeUnit": "ms",
//     "traceEvents": [ {"ph":"M",...thread/process names...},
//                      {"ph":"X","name":"sweep","cat":"svd","pid":1,
//                       "tid":2,"ts":12.5,"dur":801.2,"args":{...}},
//                      {"ph":"C","name":"pipeline.queue.occupancy","pid":1,
//                       "tid":0,"ts":13.0,"args":{"value":5}}, ... ] }
//
// Schema history:
//   hjsvd.trace.v1 — spans (ph "X"), instants (ph "i"), metadata (ph "M").
//   hjsvd.trace.v2 — v1 plus counter events (ph "C").
//   hjsvd.trace.v3 — v2 plus flight-recorder metadata in "otherData":
//     "flight_recorder": true, "ring_capacity_events": N,
//     "dropped_events_total": D, "dropped_events_by_tid": [d0, d1, ...].
//     Emitted only when the recorder runs in ring mode; unbounded
//     recorders keep writing byte-identical v2 documents.  Nothing was
//     removed or renamed at any step, so v1 consumers that only read
//     "X"/"M"/"i" events can treat all three versions identically.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hjsvd::obs {

/// Well-known process ids of the two timelines in one trace file.
inline constexpr int kSoftwarePid = 1;   // wall-clock (steady_clock) events
inline constexpr int kSimulatorPid = 2;  // simulated-time (cycle) events

/// Schema tag written by unbounded recorders.  v2 = v1 plus counter events
/// (ph "C"); see the header comment for the compat contract.
inline constexpr const char* kTraceSchema = "hjsvd.trace.v2";

/// Schema tag written by flight-recorder (ring) mode: v2 plus ring/drop
/// metadata in "otherData".  Strictly additive over v2.
inline constexpr const char* kTraceSchemaV3 = "hjsvd.trace.v3";

/// Incrementally builds the JSON object for an event's "args" field.
class ArgsBuilder {
 public:
  ArgsBuilder& add(std::string_view key, std::int64_t value);
  ArgsBuilder& add(std::string_view key, std::uint64_t value);
  ArgsBuilder& add(std::string_view key, int value) {
    return add(key, static_cast<std::int64_t>(value));
  }
  ArgsBuilder& add(std::string_view key, unsigned value) {
    return add(key, static_cast<std::uint64_t>(value));
  }
  ArgsBuilder& add(std::string_view key, double value);
  ArgsBuilder& add(std::string_view key, std::string_view value);
  /// The finished JSON object, e.g. {"sweep":3,"n":512}.
  std::string str() const { return body_.empty() ? "{}" : "{" + body_ + "}"; }

 private:
  void key(std::string_view k);
  std::string body_;
};

/// Thread-safe trace-event collector.
///
/// Concurrency contract (load-bearing for the serve loop — do not weaken):
///  - register_thread() is callable from any thread at any time.
///  - emit_* with a given tid should be called by the thread that owns it;
///    each append takes that buffer's private mutex, so even a misrouted
///    emit is safe (events interleave, nothing races).
///  - write() / to_json() / snapshot() may run concurrently with emission
///    from any thread: they copy each buffer under its mutex and serialize
///    from the copy.  An event emitted while a dump is in flight lands
///    either in that dump or the next one, never torn.  This replaces the
///    old "write() must not run concurrently with emission" restriction.
class TraceRecorder {
 public:
  /// `ring_capacity_events` == 0 (the default) keeps the historical
  /// unbounded-growth behaviour and the hjsvd.trace.v2 serialization.
  /// A nonzero value caps every per-thread buffer at that many events,
  /// drops oldest-first with exact per-thread drop counters, and switches
  /// serialization to hjsvd.trace.v3.
  explicit TraceRecorder(std::size_t ring_capacity_events = 0);

  /// Registers a named timeline and returns its tid.  `pid` selects the
  /// process group (kSoftwarePid or kSimulatorPid).
  std::uint32_t register_thread(std::string name, int pid = kSoftwarePid);

  /// Microseconds elapsed on the steady clock since construction — the
  /// timestamp base of every software (kSoftwarePid) event.
  double now_us() const;

  /// Records a completed span [ts_us, ts_us + dur_us) on timeline `tid`.
  /// `args_json` must be a JSON object (ArgsBuilder::str()).
  void emit_complete(std::uint32_t tid, const char* cat, std::string name,
                     double ts_us, double dur_us, std::string args_json = "{}");

  /// Records a zero-duration instant event.
  void emit_instant(std::uint32_t tid, const char* cat, std::string name,
                    double ts_us, std::string args_json = "{}");

  /// Records a counter sample: Perfetto draws one counter track per
  /// (pid, name) from the ph "C" events, so successive samples with the
  /// same name form a plottable occupancy timeline alongside the spans.
  void emit_counter(std::uint32_t tid, const char* cat, std::string name,
                    double ts_us, double value);

  /// Serializes the Chrome trace-event JSON document (v2, or v3 in ring
  /// mode).  Safe to call concurrently with emission; see the class
  /// contract above.
  void write(std::ostream& os) const;
  std::string to_json() const;

  /// Per-thread ring capacity in events; 0 means unbounded (v2 mode).
  std::size_t ring_capacity() const { return ring_capacity_; }
  /// True when constructed with a nonzero ring capacity.
  bool flight_recorder() const { return ring_capacity_ > 0; }
  /// Events dropped (oldest-first) from timeline `tid` so far.
  std::uint64_t dropped_events(std::uint32_t tid) const;
  /// Sum of dropped_events over all registered timelines.
  std::uint64_t dropped_events_total() const;
  /// Events currently buffered on timeline `tid` (<= ring_capacity()).
  std::size_t buffered_events(std::uint32_t tid) const;

  /// One recorded event (test/inspection access via snapshot()).
  struct Event {
    char ph = 'X';  // 'X' complete, 'i' instant, 'C' counter
    std::string name;
    const char* cat = "";
    double ts_us = 0.0;
    double dur_us = 0.0;
    double value = 0.0;  // counter sample ('C' only)
    std::string args_json;
    std::uint32_t tid = 0;
    int pid = kSoftwarePid;
    std::string thread_name;
  };
  /// All events buffered so far, in per-thread order.  Not for hot paths.
  /// Safe concurrent with emission (same copy-under-lock path as write()).
  std::vector<Event> snapshot() const;

 private:
  struct ThreadLog {
    std::string name;
    int pid = kSoftwarePid;
    mutable std::mutex mu;      // guards events + dropped
    std::deque<Event> events;   // bounded by ring_capacity_ when nonzero
    std::uint64_t dropped = 0;  // oldest events evicted from the ring
  };
  /// Consistent copy of one timeline, taken under its mutex.
  struct LogCopy {
    std::string name;
    int pid = kSoftwarePid;
    std::uint64_t dropped = 0;
    std::vector<Event> events;
  };

  void append(std::uint32_t tid, Event e);
  std::vector<LogCopy> collect() const;

  std::chrono::steady_clock::time_point epoch_;
  std::size_t ring_capacity_ = 0;
  mutable std::mutex mu_;  // guards logs_ growth; per-log state has log->mu
  std::deque<std::unique_ptr<ThreadLog>> logs_;
};

/// RAII wall-clock span on a software timeline: opens at construction,
/// emits a complete event at end()/destruction.  A default-constructed or
/// null-recorder Span is an inert no-op, so call sites need no branching.
class Span {
 public:
  Span() = default;
  Span(TraceRecorder* rec, std::uint32_t tid, const char* cat,
       std::string name, std::string args_json = "{}")
      : rec_(rec), tid_(tid), cat_(cat), name_(std::move(name)),
        args_(std::move(args_json)), start_us_(rec ? rec->now_us() : 0.0) {}
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      end();
      rec_ = other.rec_;
      tid_ = other.tid_;
      cat_ = other.cat_;
      name_ = std::move(other.name_);
      args_ = std::move(other.args_);
      start_us_ = other.start_us_;
      other.rec_ = nullptr;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  void end() {
    if (rec_ == nullptr) return;
    rec_->emit_complete(tid_, cat_, std::move(name_), start_us_,
                        rec_->now_us() - start_us_, std::move(args_));
    rec_ = nullptr;
  }

 private:
  TraceRecorder* rec_ = nullptr;
  std::uint32_t tid_ = 0;
  const char* cat_ = "";
  std::string name_;
  std::string args_;
  double start_us_ = 0.0;
};

}  // namespace hjsvd::obs

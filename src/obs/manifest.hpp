// Run manifest: the provenance block every benchmark JSON (and any other
// recorded artifact) embeds so that two runs can be compared honestly.
//
// A manifest pins down *what* produced the numbers: the producing tool and
// its configuration, the git revision the binary was built from (injected
// at configure time), the host's hardware thread count, and the schema
// versions of the observability documents the build emits.  scripts/
// bench_gate.py refuses to diff two BENCH_*.json files whose manifests
// disagree on schema versions, and reports sha/host mismatches so a
// "regression" measured on different hardware is never mistaken for one.
#pragma once

#include <string>

namespace hjsvd::obs {

/// Schema tag of the offline run report (src/report/ consumes traces and
/// metrics and emits this document; declared here so the manifest's
/// schema_versions block has one source of truth for all three documents).
inline constexpr const char* kReportSchema = "hjsvd.report.v1";

/// Caller-supplied part of a manifest; the serialized form adds the build's
/// git sha, the host thread count, and the schema versions automatically.
struct RunManifest {
  std::string tool;    // producing binary, e.g. "bench_parallel_sweep"
  std::string config;  // one-line flag/config summary of the run
};

/// Git revision the build was configured from ("unknown" outside a git
/// checkout — the define comes from CMake, not from runtime discovery).
const char* build_git_sha();

/// Hardware threads of this host (std::thread::hardware_concurrency,
/// floored at 1).
int host_hardware_threads();

/// The manifest as a JSON object, e.g.
///   {"tool": "...", "config": "...", "git_sha": "...", "host_threads": 1,
///    "schema_versions": {"trace": "hjsvd.trace.v2",
///                        "metrics": "hjsvd.metrics.v1",
///                        "report": "hjsvd.report.v1"}}
std::string manifest_json(const RunManifest& manifest);

}  // namespace hjsvd::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace hjsvd::obs {
namespace {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

std::string quoted(std::string_view s) {
  std::string out = "\"";
  append_escaped(out, s);
  out += '"';
  return out;
}

/// Nearest-rank percentile of a sorted sample vector.
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace

MetricsRegistry::Metric& MetricsRegistry::fetch(std::string_view name,
                                                Type type,
                                                std::string_view unit) {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Metric metric;
    metric.type = type;
    metric.unit = std::string(unit);
    it = metrics_.emplace(std::string(name), std::move(metric)).first;
  } else {
    HJSVD_ENSURE(it->second.type == type,
                 "metric '" + it->first + "' re-registered with another type");
    HJSVD_ENSURE(it->second.unit == unit,
                 "metric '" + it->first + "' re-registered with another unit");
  }
  return it->second;
}

void MetricsRegistry::counter_add(std::string_view name, std::string_view unit,
                                  std::uint64_t delta) {
  const std::lock_guard<std::mutex> lock(mu_);
  fetch(name, Type::kCounter, unit).count += delta;
}

void MetricsRegistry::gauge_set(std::string_view name, std::string_view unit,
                                double value) {
  const std::lock_guard<std::mutex> lock(mu_);
  fetch(name, Type::kGauge, unit).value = value;
}

void MetricsRegistry::hist_record(std::string_view name, std::string_view unit,
                                  double sample) {
  const std::lock_guard<std::mutex> lock(mu_);
  fetch(name, Type::kHistogram, unit).samples.push_back(sample);
}

void MetricsRegistry::series_append(std::string_view name,
                                    std::string_view unit, double index,
                                    double value) {
  const std::lock_guard<std::mutex> lock(mu_);
  fetch(name, Type::kSeries, unit).points.emplace_back(index, value);
}

std::optional<std::uint64_t> MetricsRegistry::counter(
    std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.type != Type::kCounter)
    return std::nullopt;
  return it->second.count;
}

std::optional<double> MetricsRegistry::gauge(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.type != Type::kGauge)
    return std::nullopt;
  return it->second.value;
}

std::vector<std::pair<double, double>> MetricsRegistry::series(
    std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.type != Type::kSeries) return {};
  return it->second.points;
}

std::vector<std::string> MetricsRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(metrics_.size());
  for (const auto& [name, metric] : metrics_) out.push_back(name);
  return out;
}

std::optional<std::string> MetricsRegistry::unit(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = metrics_.find(name);
  if (it == metrics_.end()) return std::nullopt;
  return it->second.unit;
}

std::vector<MetricsRegistry::ScalarSample> MetricsRegistry::scalar_snapshot()
    const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<ScalarSample> out;
  for (const auto& [name, metric] : metrics_) {
    if (metric.type != Type::kCounter && metric.type != Type::kGauge) continue;
    ScalarSample sample;
    sample.name = name;
    sample.unit = metric.unit;
    sample.is_counter = metric.type == Type::kCounter;
    sample.value = sample.is_counter ? static_cast<double>(metric.count)
                                     : metric.value;
    out.push_back(std::move(sample));
  }
  return out;
}

void MetricsRegistry::write(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  os << "{\n\"schema\": \"" << kMetricsSchema << "\",\n\"metrics\": [\n";
  bool first = true;
  for (const auto& [name, metric] : metrics_) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"name\": " << quoted(name) << ", \"unit\": "
       << quoted(metric.unit);
    switch (metric.type) {
      case Type::kCounter:
        os << ", \"type\": \"counter\", \"value\": " << metric.count;
        break;
      case Type::kGauge:
        os << ", \"type\": \"gauge\", \"value\": " << json_number(metric.value);
        break;
      case Type::kHistogram: {
        std::vector<double> sorted = metric.samples;
        std::sort(sorted.begin(), sorted.end());
        const double sum =
            std::accumulate(sorted.begin(), sorted.end(), 0.0);
        os << ", \"type\": \"histogram\", \"count\": " << sorted.size()
           << ", \"min\": " << json_number(sorted.empty() ? 0.0 : sorted.front())
           << ", \"max\": " << json_number(sorted.empty() ? 0.0 : sorted.back())
           << ", \"mean\": "
           << json_number(sorted.empty()
                              ? 0.0
                              : sum / static_cast<double>(sorted.size()))
           << ", \"p50\": " << json_number(percentile(sorted, 50))
           << ", \"p90\": " << json_number(percentile(sorted, 90))
           << ", \"p99\": " << json_number(percentile(sorted, 99));
        break;
      }
      case Type::kSeries: {
        os << ", \"type\": \"series\", \"points\": [";
        for (std::size_t i = 0; i < metric.points.size(); ++i) {
          if (i != 0) os << ", ";
          os << '[' << json_number(metric.points[i].first) << ", "
             << json_number(metric.points[i].second) << ']';
        }
        os << ']';
        break;
      }
    }
    os << '}';
  }
  os << "\n]\n}\n";
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

}  // namespace hjsvd::obs

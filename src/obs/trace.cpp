#include "obs/trace.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace hjsvd::obs {
namespace {

/// JSON string escaping (quotes, backslashes, control characters).
void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string quoted(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  append_escaped(out, s);
  out += '"';
  return out;
}

/// Round-trip double formatting; JSON has no inf/nan, map them to null.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

ArgsBuilder& ArgsBuilder::add(std::string_view k, std::int64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

ArgsBuilder& ArgsBuilder::add(std::string_view k, std::uint64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

ArgsBuilder& ArgsBuilder::add(std::string_view k, double value) {
  key(k);
  body_ += json_number(value);
  return *this;
}

ArgsBuilder& ArgsBuilder::add(std::string_view k, std::string_view value) {
  key(k);
  body_ += quoted(value);
  return *this;
}

void ArgsBuilder::key(std::string_view k) {
  if (!body_.empty()) body_ += ',';
  body_ += quoted(k);
  body_ += ':';
}

TraceRecorder::TraceRecorder(std::size_t ring_capacity_events)
    : epoch_(std::chrono::steady_clock::now()),
      ring_capacity_(ring_capacity_events) {}

std::uint32_t TraceRecorder::register_thread(std::string name, int pid) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto log = std::make_unique<ThreadLog>();
  log->name = std::move(name);
  log->pid = pid;
  logs_.push_back(std::move(log));
  return static_cast<std::uint32_t>(logs_.size() - 1);
}

double TraceRecorder::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceRecorder::append(std::uint32_t tid, Event e) {
  ThreadLog* log = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    HJSVD_ENSURE(tid < logs_.size(), "unknown trace tid");
    log = logs_[tid].get();
  }
  const std::lock_guard<std::mutex> lock(log->mu);
  if (ring_capacity_ > 0 && log->events.size() >= ring_capacity_) {
    log->events.pop_front();
    ++log->dropped;
  }
  log->events.push_back(std::move(e));
}

void TraceRecorder::emit_complete(std::uint32_t tid, const char* cat,
                                  std::string name, double ts_us,
                                  double dur_us, std::string args_json) {
  Event e;
  e.ph = 'X';
  e.name = std::move(name);
  e.cat = cat;
  e.ts_us = ts_us;
  e.dur_us = dur_us < 0.0 ? 0.0 : dur_us;
  e.args_json = std::move(args_json);
  append(tid, std::move(e));
}

void TraceRecorder::emit_instant(std::uint32_t tid, const char* cat,
                                 std::string name, double ts_us,
                                 std::string args_json) {
  Event e;
  e.ph = 'i';
  e.name = std::move(name);
  e.cat = cat;
  e.ts_us = ts_us;
  e.args_json = std::move(args_json);
  append(tid, std::move(e));
}

void TraceRecorder::emit_counter(std::uint32_t tid, const char* cat,
                                 std::string name, double ts_us,
                                 double value) {
  Event e;
  e.ph = 'C';
  e.name = std::move(name);
  e.cat = cat;
  e.ts_us = ts_us;
  e.value = value;
  e.args_json = obs::ArgsBuilder().add("value", value).str();
  append(tid, std::move(e));
}

std::uint64_t TraceRecorder::dropped_events(std::uint32_t tid) const {
  ThreadLog* log = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    HJSVD_ENSURE(tid < logs_.size(), "unknown trace tid");
    log = logs_[tid].get();
  }
  const std::lock_guard<std::mutex> lock(log->mu);
  return log->dropped;
}

std::uint64_t TraceRecorder::dropped_events_total() const {
  // The SnapshotExporter polls this every tick; summing the per-thread
  // counters directly (no event copies, unlike collect()) keeps the poll
  // O(threads) instead of O(buffered events).
  std::size_t count = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    count = logs_.size();
  }
  std::uint64_t total = 0;
  for (std::size_t tid = 0; tid < count; ++tid) {
    ThreadLog* log = nullptr;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      log = logs_[tid].get();
    }
    const std::lock_guard<std::mutex> lock(log->mu);
    total += log->dropped;
  }
  return total;
}

std::size_t TraceRecorder::buffered_events(std::uint32_t tid) const {
  ThreadLog* log = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    HJSVD_ENSURE(tid < logs_.size(), "unknown trace tid");
    log = logs_[tid].get();
  }
  const std::lock_guard<std::mutex> lock(log->mu);
  return log->events.size();
}

std::vector<TraceRecorder::LogCopy> TraceRecorder::collect() const {
  // Pin the registry size first (registration only appends), then copy
  // each buffer under its own mutex.  The copies are mutually consistent
  // per-thread; events emitted while the copy loop runs land in this dump
  // or the next, never torn.
  std::size_t count = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    count = logs_.size();
  }
  std::vector<LogCopy> out(count);
  for (std::size_t tid = 0; tid < count; ++tid) {
    ThreadLog* log = nullptr;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      log = logs_[tid].get();
    }
    LogCopy& copy = out[tid];
    copy.name = log->name;
    copy.pid = log->pid;
    const std::lock_guard<std::mutex> lock(log->mu);
    copy.dropped = log->dropped;
    copy.events.assign(log->events.begin(), log->events.end());
  }
  return out;
}

void TraceRecorder::write(std::ostream& os) const {
  const std::vector<LogCopy> logs = collect();
  os << "{\n\"schema\": \""
     << (flight_recorder() ? kTraceSchemaV3 : kTraceSchema) << "\",\n"
     << "\"displayTimeUnit\": \"ms\",\n"
     << "\"otherData\": {\"time_unit\": \"us\", \"software_pid\": "
     << kSoftwarePid << ", \"simulator_pid\": " << kSimulatorPid;
  if (flight_recorder()) {
    std::uint64_t dropped_total = 0;
    for (const LogCopy& log : logs) dropped_total += log.dropped;
    os << ", \"flight_recorder\": true, \"ring_capacity_events\": "
       << ring_capacity_ << ", \"dropped_events_total\": " << dropped_total
       << ", \"dropped_events_by_tid\": [";
    for (std::size_t tid = 0; tid < logs.size(); ++tid) {
      if (tid > 0) os << ", ";
      os << logs[tid].dropped;
    }
    os << "]";
  }
  os << "},\n\"traceEvents\": [\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  // Process/thread name metadata first, then the events.
  sep();
  os << R"({"ph":"M","name":"process_name","pid":)" << kSoftwarePid
     << R"(,"tid":0,"args":{"name":"hjsvd"}})";
  sep();
  os << R"({"ph":"M","name":"process_name","pid":)" << kSimulatorPid
     << R"(,"tid":0,"args":{"name":"hjsvd accelerator sim"}})";
  for (std::size_t tid = 0; tid < logs.size(); ++tid) {
    const LogCopy& log = logs[tid];
    sep();
    os << R"({"ph":"M","name":"thread_name","pid":)" << log.pid
       << R"(,"tid":)" << tid << R"(,"args":{"name":)" << quoted(log.name)
       << "}}";
  }
  for (std::size_t tid = 0; tid < logs.size(); ++tid) {
    const LogCopy& log = logs[tid];
    for (const Event& e : log.events) {
      sep();
      os << "{\"ph\":\"" << e.ph << "\",\"name\":" << quoted(e.name)
         << ",\"cat\":" << quoted(e.cat) << ",\"pid\":" << log.pid
         << ",\"tid\":" << tid << ",\"ts\":" << json_number(e.ts_us);
      if (e.ph == 'X') os << ",\"dur\":" << json_number(e.dur_us);
      if (e.ph == 'i') os << ",\"s\":\"t\"";
      os << ",\"args\":" << (e.args_json.empty() ? "{}" : e.args_json) << "}";
    }
  }
  os << "\n]\n}\n";
}

std::string TraceRecorder::to_json() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

std::vector<TraceRecorder::Event> TraceRecorder::snapshot() const {
  std::vector<Event> out;
  const std::vector<LogCopy> logs = collect();
  for (std::size_t tid = 0; tid < logs.size(); ++tid) {
    for (const Event& e : logs[tid].events) {
      Event copy = e;
      copy.tid = static_cast<std::uint32_t>(tid);
      copy.pid = logs[tid].pid;
      copy.thread_name = logs[tid].name;
      out.push_back(std::move(copy));
    }
  }
  return out;
}

}  // namespace hjsvd::obs

// Metrics registry: named counters, gauges, histograms and series with
// explicit units, serialized to a versioned JSON schema.
//
// One registry instance collects everything a run produced — software
// engines and the accelerator simulator write into the same namespace, so
// e.g. the software param-queue high-water (`pipeline.param_queue.high_water`,
// unit "rotations") and the simulator's FIFO bound
// (`sim.param_fifo.high_water_rotations`, unit "rotations") are directly
// comparable in one file.  docs/OBSERVABILITY.md lists every metric name,
// its type, its unit, and whether its value is deterministic across thread
// counts.
//
// Serialized schema (version hjsvd.metrics.v1):
//   { "schema": "hjsvd.metrics.v1",
//     "metrics": [
//       {"name": "...", "type": "counter",   "unit": "...", "value": 123},
//       {"name": "...", "type": "gauge",     "unit": "...", "value": 1.5},
//       {"name": "...", "type": "histogram", "unit": "...", "count": 9,
//        "min": ..., "max": ..., "mean": ..., "p50": ..., "p90": ..., "p99": ...},
//       {"name": "...", "type": "series",    "unit": "...",
//        "points": [[index, value], ...]} ] }
// Metrics are emitted sorted by name, so serialization is deterministic for
// deterministic values.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hjsvd::obs {

/// Schema tag written into every serialized metrics document.
inline constexpr const char* kMetricsSchema = "hjsvd.metrics.v1";

/// Thread-safe (coarse mutex) metrics collector.  Designed for updates at
/// round/sweep granularity, not per-rotation hot loops.
class MetricsRegistry {
 public:
  /// Adds to a monotonic counter (integer-valued, e.g. rotations applied).
  void counter_add(std::string_view name, std::string_view unit,
                   std::uint64_t delta);

  /// Sets a gauge (last-write-wins snapshot value).
  void gauge_set(std::string_view name, std::string_view unit, double value);

  /// Records one sample into a histogram (summarized at serialization).
  void hist_record(std::string_view name, std::string_view unit,
                   double sample);

  /// Appends an (index, value) point to a series, e.g. per-sweep norms
  /// indexed by sweep number or occupancy indexed by round id.
  void series_append(std::string_view name, std::string_view unit,
                     double index, double value);

  // --- Inspection (tests, benches) ---------------------------------------
  std::optional<std::uint64_t> counter(std::string_view name) const;
  std::optional<double> gauge(std::string_view name) const;
  std::vector<std::pair<double, double>> series(std::string_view name) const;
  std::vector<std::string> names() const;
  std::optional<std::string> unit(std::string_view name) const;

  /// One scalar metric (counter or gauge) as sampled by scalar_snapshot().
  struct ScalarSample {
    std::string name;
    std::string unit;
    bool is_counter = false;  // false: gauge
    double value = 0.0;       // counters widen to double (exact < 2^53)
  };
  /// All counters and gauges under one lock, sorted by name — the sampling
  /// primitive of the live SnapshotExporter (src/obs/live.hpp).  Histograms
  /// and series are excluded: a periodic sampler wants scalars, not the
  /// full distribution payloads.
  std::vector<ScalarSample> scalar_snapshot() const;

  /// Serializes the hjsvd.metrics.v1 JSON document.
  void write(std::ostream& os) const;
  std::string to_json() const;

 private:
  enum class Type { kCounter, kGauge, kHistogram, kSeries };
  struct Metric {
    Type type = Type::kCounter;
    std::string unit;
    std::uint64_t count = 0;                         // counter
    double value = 0.0;                              // gauge
    std::vector<double> samples;                     // histogram
    std::vector<std::pair<double, double>> points;   // series
  };

  Metric& fetch(std::string_view name, Type type, std::string_view unit);

  mutable std::mutex mu_;
  std::map<std::string, Metric, std::less<>> metrics_;
};

}  // namespace hjsvd::obs

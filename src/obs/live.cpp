#include "obs/live.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#endif

namespace hjsvd::obs {
namespace {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

std::string quoted(std::string_view s) {
  std::string out = "\"";
  append_escaped(out, s);
  out += '"';
  return out;
}

/// Prometheus metric names admit [a-zA-Z0-9_:]; map everything else to '_'.
std::string prometheus_name(std::string_view name) {
  std::string out = "hjsvd_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

/// Dump requests issued process-wide; bumped by the SIGUSR1 handler and
/// obs::dump_now(), drained per-exporter.  fetch_add on a lock-free atomic
/// is async-signal-safe, which is all the handler does.
std::atomic<std::uint64_t> g_dump_requests{0};

#if defined(__unix__) || defined(__APPLE__)
extern "C" void hjsvd_obs_sigusr1_handler(int) {
  g_dump_requests.fetch_add(1, std::memory_order_relaxed);
}
#endif

}  // namespace

// --- Watchdog --------------------------------------------------------------

Watchdog::Watchdog(const Config& config, TraceRecorder* trace,
                   MetricsRegistry* metrics)
    : config_(config), trace_(trace), metrics_(metrics),
      start_(std::chrono::steady_clock::now()) {
  const std::lock_guard<std::mutex> lock(mu_);
  publish_locked();
}

std::uint32_t Watchdog::trace_tid_locked() {
  if (!trace_registered_) {
    trace_tid_ = trace_->register_thread("watchdog");
    trace_registered_ = true;
  }
  return trace_tid_;
}

void Watchdog::publish_locked() {
  if (metrics_ == nullptr) return;
  metrics_->gauge_set("obs.watchdog.stalled", "bool", stalled_ ? 1.0 : 0.0);
  metrics_->gauge_set("obs.watchdog.deadline_exceeded", "bool",
                      deadline_exceeded_ ? 1.0 : 0.0);
  metrics_->gauge_set("obs.watchdog.divergence", "bool",
                      divergence_ ? 1.0 : 0.0);
  metrics_->gauge_set("obs.watchdog.orthogonality", "bool",
                      orthogonality_ ? 1.0 : 0.0);
  if (orthogonality_)
    metrics_->gauge_set("obs.watchdog.orthogonality_drift", "1",
                        orthogonality_drift_);
  metrics_->gauge_set("obs.watchdog.deadline_s", "s", config_.deadline_s);
  metrics_->gauge_set("obs.watchdog.stall_sweeps", "sweeps",
                      static_cast<double>(config_.stall_sweeps));
}

void Watchdog::on_sweep(double offdiag_norm) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++sweeps_observed_;
  if (metrics_ != nullptr)
    metrics_->counter_add("obs.watchdog.sweeps_observed", "sweeps", 1);
  // A sweep "improves" only on a strict decrease; NaN compares false and so
  // counts as non-improving, which is exactly the wedged case we watch for.
  if (has_last_ && !(offdiag_norm < last_offdiag_)) {
    ++consecutive_flat_;
    if (consecutive_flat_ >= config_.stall_sweeps && !in_stall_episode_) {
      in_stall_episode_ = true;
      stalled_ = true;
      ++stall_events_;
      if (metrics_ != nullptr)
        metrics_->counter_add("obs.watchdog.stall_events", "events", 1);
      if (trace_ != nullptr) {
        trace_->emit_instant(
            trace_tid_locked(), "obs", "watchdog.stall", trace_->now_us(),
            ArgsBuilder()
                .add("sweep", sweeps_observed_)
                .add("offdiag", offdiag_norm)
                .add("consecutive_flat",
                     static_cast<std::uint64_t>(consecutive_flat_))
                .str());
      }
    }
  } else {
    consecutive_flat_ = 0;
    in_stall_episode_ = false;
  }
  // Divergence is distinct from a stall: off-diagonal mass actively
  // *increasing* (beyond the rounding-noise margin) means the convergence
  // argument is running backwards.  Sticky, like every other verdict.
  if (has_last_ && offdiag_diverged(offdiag_norm, last_offdiag_)) {
    if (metrics_ != nullptr)
      metrics_->counter_add("obs.watchdog.divergence_events", "events", 1);
    if (!divergence_) {
      divergence_ = true;
      if (trace_ != nullptr) {
        trace_->emit_instant(trace_tid_locked(), "obs", "watchdog.divergence",
                             trace_->now_us(),
                             ArgsBuilder()
                                 .add("sweep", sweeps_observed_)
                                 .add("offdiag", offdiag_norm)
                                 .add("last_offdiag", last_offdiag_)
                                 .str());
      }
    }
  }
  has_last_ = true;
  last_offdiag_ = offdiag_norm;
  check_deadline_locked();
  publish_locked();
}

void Watchdog::flag_orthogonality(double drift) {
  const std::lock_guard<std::mutex> lock(mu_);
  orthogonality_drift_ = drift;
  if (!orthogonality_) {
    orthogonality_ = true;
    if (metrics_ != nullptr)
      metrics_->counter_add("obs.watchdog.orthogonality_events", "events", 1);
    if (trace_ != nullptr) {
      trace_->emit_instant(trace_tid_locked(), "obs",
                           "watchdog.orthogonality", trace_->now_us(),
                           ArgsBuilder().add("drift", drift).str());
    }
  }
  publish_locked();
}

void Watchdog::check_deadline() {
  const std::lock_guard<std::mutex> lock(mu_);
  check_deadline_locked();
  publish_locked();
}

void Watchdog::check_deadline_locked() {
  if (config_.deadline_s <= 0.0 || deadline_exceeded_) return;
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  if (elapsed_s <= config_.deadline_s) return;
  deadline_exceeded_ = true;
  if (metrics_ != nullptr)
    metrics_->counter_add("obs.watchdog.deadline_overruns", "events", 1);
  if (trace_ != nullptr) {
    trace_->emit_instant(trace_tid_locked(), "obs", "watchdog.deadline",
                         trace_->now_us(),
                         ArgsBuilder()
                             .add("elapsed_s", elapsed_s)
                             .add("deadline_s", config_.deadline_s)
                             .str());
  }
}

bool Watchdog::stalled() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stalled_;
}

bool Watchdog::deadline_exceeded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return deadline_exceeded_;
}

bool Watchdog::divergence() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return divergence_;
}

bool Watchdog::orthogonality() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return orthogonality_;
}

std::uint64_t Watchdog::stall_events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stall_events_;
}

std::uint64_t Watchdog::sweeps_observed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sweeps_observed_;
}

// --- SnapshotExporter ------------------------------------------------------

SnapshotExporter::SnapshotExporter(LiveConfig config, TraceRecorder* trace,
                                   MetricsRegistry* metrics,
                                   Watchdog* watchdog)
    : config_(std::move(config)), trace_(trace), metrics_(metrics),
      watchdog_(watchdog), start_(std::chrono::steady_clock::now()) {
  jsonl_.open(snapshots_path(), std::ios::out | std::ios::app);
  HJSVD_ENSURE(jsonl_.is_open(),
               "cannot open live snapshot stream: " + snapshots_path());
  // Requests issued before this exporter existed are not ours to service.
  serviced_dump_requests_ = dump_requests();
  thread_ = std::thread([this] { run(); });
}

SnapshotExporter::~SnapshotExporter() { stop(); }

std::string SnapshotExporter::snapshots_path() const {
  return config_.dir + "/snapshots.jsonl";
}

std::string SnapshotExporter::prometheus_path() const {
  return config_.dir + "/metrics.prom";
}

std::string SnapshotExporter::dump_trace_path(const std::string& dir,
                                              std::uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof name, "/dump_%04llu.trace.json",
                static_cast<unsigned long long>(seq));
  return dir + name;
}

std::string SnapshotExporter::dump_metrics_path(const std::string& dir,
                                                std::uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof name, "/dump_%04llu.metrics.json",
                static_cast<unsigned long long>(seq));
  return dir + name;
}

void SnapshotExporter::run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lock, config_.interval, [&] {
      return stop_requested_ ||
             dump_requests() > serviced_dump_requests_;
    });
    if (stop_requested_) break;
    lock.unlock();
    if (watchdog_ != nullptr) watchdog_->check_deadline();
    sample_once();
    service_dump_requests();
    lock.lock();
  }
}

void SnapshotExporter::stop() {
  bool already_stopped = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    already_stopped = stop_requested_ && !thread_.joinable();
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Any dump requested in the last interval is serviced *before* the final
  // sample, so its obs.dump.count bump lands in the final snapshot line.
  // This runs on the repeated-stop path too (destructor after an explicit
  // stop()): a request arriving between the two has no sampler thread left
  // to see it, so this is its only chance to produce a dump pair.
  if (watchdog_ != nullptr) watchdog_->check_deadline();
  service_dump_requests();
  if (!already_stopped) sample_once();
  jsonl_.flush();
}

void SnapshotExporter::request_dump() {
  dump_now();
  cv_.notify_all();
}

void SnapshotExporter::sample_once() {
  const std::vector<MetricsRegistry::ScalarSample> scalars =
      metrics_ != nullptr ? metrics_->scalar_snapshot()
                          : std::vector<MetricsRegistry::ScalarSample>{};
  const double elapsed_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start_)
          .count();
  const std::uint64_t dropped =
      trace_ != nullptr ? trace_->dropped_events_total() : 0;
  const std::uint64_t seq = samples_.fetch_add(1);

  std::ostringstream line;
  line << "{\"schema\":\"" << kSnapshotsSchema << "\",\"seq\":" << seq
       << ",\"elapsed_us\":" << json_number(elapsed_us)
       << ",\"dropped_events\":" << dropped << ",\"counters\":{";
  bool first = true;
  for (const auto& s : scalars) {
    if (!s.is_counter) continue;
    if (!first) line << ',';
    first = false;
    line << quoted(s.name) << ':' << static_cast<std::uint64_t>(s.value);
  }
  line << "},\"gauges\":{";
  first = true;
  for (const auto& s : scalars) {
    if (s.is_counter) continue;
    if (!first) line << ',';
    first = false;
    line << quoted(s.name) << ':' << json_number(s.value);
  }
  line << "}}";
  jsonl_ << line.str() << '\n';
  jsonl_.flush();

  if (config_.prometheus) write_prometheus();
}

void SnapshotExporter::write_prometheus() {
  std::ofstream prom(prometheus_path(), std::ios::out | std::ios::trunc);
  if (!prom.is_open()) return;  // telemetry must never fail the run
  const std::vector<MetricsRegistry::ScalarSample> scalars =
      metrics_ != nullptr ? metrics_->scalar_snapshot()
                          : std::vector<MetricsRegistry::ScalarSample>{};
  const auto emit_gauge = [&prom](const std::string& name, double value,
                                  const char* unit) {
    prom << "# HELP " << name << " unit: " << unit << '\n';
    prom << "# TYPE " << name << " gauge\n";
    prom << name << ' ' << (std::isfinite(value) ? json_number(value) : "NaN")
         << '\n';
  };
  for (const auto& s : scalars) {
    const std::string name = prometheus_name(s.name);
    prom << "# HELP " << name << " unit: "
         << (s.unit.empty() ? "none" : s.unit) << '\n';
    prom << "# TYPE " << name << (s.is_counter ? " counter" : " gauge")
         << '\n';
    if (s.is_counter) {
      prom << name << ' ' << static_cast<std::uint64_t>(s.value) << '\n';
    } else {
      prom << name << ' '
           << (std::isfinite(s.value) ? json_number(s.value) : "NaN") << '\n';
    }
  }
  // The sticky watchdog verdicts must reach a scraper even when the
  // watchdog has no metrics sink of its own (the exporter may be the only
  // sink that saw it): emit any verdict gauge the registry walk above did
  // not already cover.
  if (watchdog_ != nullptr) {
    const auto seen = [&scalars](std::string_view name) {
      for (const auto& s : scalars)
        if (s.name == name) return true;
      return false;
    };
    if (!seen("obs.watchdog.stalled"))
      emit_gauge(prometheus_name("obs.watchdog.stalled"),
                 watchdog_->stalled() ? 1.0 : 0.0, "bool");
    if (!seen("obs.watchdog.deadline_exceeded"))
      emit_gauge(prometheus_name("obs.watchdog.deadline_exceeded"),
                 watchdog_->deadline_exceeded() ? 1.0 : 0.0, "bool");
    if (!seen("obs.watchdog.divergence"))
      emit_gauge(prometheus_name("obs.watchdog.divergence"),
                 watchdog_->divergence() ? 1.0 : 0.0, "bool");
    if (!seen("obs.watchdog.orthogonality"))
      emit_gauge(prometheus_name("obs.watchdog.orthogonality"),
                 watchdog_->orthogonality() ? 1.0 : 0.0, "bool");
  }
}

void SnapshotExporter::service_dump_requests() {
  const std::uint64_t pending = dump_requests();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (pending <= serviced_dump_requests_) return;
    // Rapid-fire requests coalesce into one dump.
    serviced_dump_requests_ = pending;
  }
  const std::uint64_t seq = dumps_.fetch_add(1) + 1;
  if (trace_ != nullptr) {
    std::ofstream f(dump_trace_path(config_.dir, seq),
                    std::ios::out | std::ios::trunc);
    if (f.is_open()) trace_->write(f);
  }
  if (metrics_ != nullptr) {
    metrics_->counter_add("obs.dump.count", "dumps", 1);
    std::ofstream f(dump_metrics_path(config_.dir, seq),
                    std::ios::out | std::ios::trunc);
    if (f.is_open()) metrics_->write(f);
  }
}

// --- Dump triggers ---------------------------------------------------------

bool install_dump_signal_handler() {
#if defined(__unix__) || defined(__APPLE__)
  struct sigaction sa = {};
  sa.sa_handler = &hjsvd_obs_sigusr1_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  return sigaction(SIGUSR1, &sa, nullptr) == 0;
#else
  return false;
#endif
}

void dump_now() { g_dump_requests.fetch_add(1, std::memory_order_relaxed); }

std::uint64_t dump_requests() {
  return g_dump_requests.load(std::memory_order_relaxed);
}

}  // namespace hjsvd::obs

// Observability sink context threaded through every engine configuration.
//
// This header is deliberately tiny (forward declarations only) so that hot
// configuration structs (HestenesConfig, AcceleratorConfig, SvdOptions) can
// carry a pair of sink pointers without pulling the full tracing/metrics
// machinery into every translation unit.
//
// Two independent switches make observability free when unused:
//  * compile time — the CMake option HJSVD_OBS (default ON) defines the
//    HJSVD_OBS macro.  When 0, obs::active() folds every sink pointer to a
//    compile-time nullptr and the instrumentation branches dead-code
//    eliminate: the engines compile exactly as if the layer did not exist.
//  * runtime — sinks default to nullptr; an instrumented build with no sink
//    attached pays one pointer test per recording site, all of which sit at
//    round/sweep granularity (never inside the rotation inner loops).
#pragma once

namespace hjsvd::obs {

class TraceRecorder;
class MetricsRegistry;
class Watchdog;
class NumericsProbe;

/// The optional sinks an engine records into.  Copyable, four pointers;
/// all null by default (observability off).  The watchdog is fed per-sweep
/// convergence progress so stalls and deadline overruns are flagged while
/// the run is still in flight (src/obs/live.hpp); the numerics probe is
/// fed sampled rotation pairs, per-sweep off-diagonal mass and finalize
/// accuracy measures (src/obs/numerics.hpp).
struct ObsContext {
  TraceRecorder* trace = nullptr;
  MetricsRegistry* metrics = nullptr;
  Watchdog* watchdog = nullptr;
  NumericsProbe* numerics = nullptr;
  /// Deadline-only poller: a watchdog whose check_deadline() is polled once
  /// per sweep without feeding it convergence progress.  svd_batch attaches
  /// its batch-scoped watchdog here so a single long in-flight decomposition
  /// honors --deadline-s at sweep granularity, while the per-item stall /
  /// divergence detectors stay detached (item interleaving on the
  /// work-stealing pool is nondeterministic).  May alias `watchdog`; the
  /// per-sweep hook dedupes.
  Watchdog* deadline = nullptr;
};

#if !defined(HJSVD_OBS) || HJSVD_OBS
inline constexpr bool kEnabled = true;
/// Identity when observability is compiled in.
template <class T>
constexpr T* active(T* sink) {
  return sink;
}
#else
inline constexpr bool kEnabled = false;
/// Compile-time nullptr when observability is compiled out: every
/// `if (obs::active(...))` branch is statically dead.
template <class T>
constexpr T* active(T*) {
  return nullptr;
}
#endif

}  // namespace hjsvd::obs

// Live telemetry: periodic metrics snapshots, signal-triggered dumps, and a
// convergence/deadline watchdog.
//
// The post-mortem artifacts (--trace-out / --metrics-out) only exist once a
// run finishes; a long-lived or wedged process needs its observability
// *while running*.  This module adds three cooperating pieces:
//
//  * SnapshotExporter — a background thread that samples the mutex-guarded
//    MetricsRegistry every N ms and appends one JSON object per sample to
//    `<dir>/snapshots.jsonl` (schema hjsvd.metrics-snapshots.v1), plus an
//    optionally rewritten Prometheus text-exposition file
//    `<dir>/metrics.prom`.  Each line is self-contained:
//      {"schema":"hjsvd.metrics-snapshots.v1","seq":0,"elapsed_us":123.4,
//       "dropped_events":0,"counters":{"svd.rotations.applied":42,...},
//       "gauges":{"svd.matrix.n":64,...}}
//    seq is strictly increasing, elapsed_us non-decreasing, and counter
//    values non-decreasing per name — scripts/validate_obs.py --snapshots
//    checks exactly these invariants line by line.
//
//  * Dump triggers — install_dump_signal_handler() installs a SIGUSR1
//    handler that only bumps a lock-free atomic request counter
//    (async-signal-safe); the exporter thread services the request on its
//    next tick (latency <= one snapshot interval) by writing numbered
//    `dump_NNNN.trace.json` / `dump_NNNN.metrics.json` files into the live
//    directory.  obs::dump_now() requests the same thing programmatically.
//    With a flight-recorder TraceRecorder attached the trace dump is the
//    bounded hjsvd.trace.v3 ring contents — a mid-run core sample, not an
//    unbounded history.
//
//  * Watchdog — fed per-sweep off-diagonal norms by the engines (via
//    ObsContext::watchdog), flags a convergence stall after
//    `stall_sweeps` consecutive non-improving sweeps and a wall-clock
//    deadline overrun after `deadline_s` seconds.  Verdicts surface as
//    sticky obs.watchdog.* metrics plus instant trace events, and
//    hjsvd_report's "live" section reports them.
//
// None of this touches the decomposition arithmetic: results are
// byte-identical with live telemetry on, off, or compiled out.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hjsvd::obs {

/// Schema tag of every line in the snapshot JSONL stream.
inline constexpr const char* kSnapshotsSchema = "hjsvd.metrics-snapshots.v1";

/// A sweep's off-diagonal mass counts as "diverging" only beyond this
/// relative margin: the last sweeps of a converged run sit at rounding
/// noise, where a bit-level uptick is not divergence.  Shared between
/// Watchdog::on_sweep (sticky verdict) and NumericsProbe::observe_sweep
/// (event counter) so the two always agree.
inline constexpr double kDivergenceRelMargin = 1e-9;

inline bool offdiag_diverged(double current, double last) {
  // NaN compares false: a non-finite off-diagonal norm is the watchdog's
  // stall case, not the divergence case.
  return current > last * (1.0 + kDivergenceRelMargin);
}

/// Flags convergence stalls and wall-clock deadline overruns while a run is
/// still in flight.  Thread-safe; all verdicts are sticky (once flagged,
/// they stay flagged for the lifetime of the watchdog).  With null sinks it
/// still tracks state — the CLI prints verdicts even without --obs-live.
class Watchdog {
 public:
  struct Config {
    /// Wall-clock budget in seconds, measured from construction; 0 disables
    /// the deadline check.
    double deadline_s = 0.0;
    /// Consecutive sweeps without a strict off-diagonal decrease before a
    /// stall is flagged.  The first observed sweep never counts (there is
    /// no predecessor to compare against).
    std::size_t stall_sweeps = 3;
  };

  explicit Watchdog(const Config& config, TraceRecorder* trace = nullptr,
                    MetricsRegistry* metrics = nullptr);

  /// Feeds one sweep's off-diagonal Frobenius norm.  Engines call this via
  /// detail::record_sweep_metrics, so every method that reports per-sweep
  /// convergence feeds the same watchdog.  Also polls the deadline.
  void on_sweep(double offdiag_norm);

  /// Polls only the wall-clock deadline (called by the SnapshotExporter
  /// tick and by svd_batch between items, where per-item sweep series
  /// interleave and stall detection would be meaningless).
  void check_deadline();

  /// Flags the sticky orthogonality verdict: the numerics probe measured a
  /// V-orthogonality drift above its tolerance at finalize
  /// (src/obs/numerics.hpp).  Publishes obs.watchdog.orthogonality plus the
  /// measured drift and emits an instant trace event on the first flag.
  void flag_orthogonality(double drift);

  /// True once `stall_sweeps` consecutive non-improving sweeps were seen.
  bool stalled() const;
  /// True once the wall-clock deadline was exceeded (and deadline_s > 0).
  bool deadline_exceeded() const;
  /// True once a sweep's off-diagonal mass *increased* beyond the
  /// kDivergenceRelMargin relative margin — the convergence argument
  /// running backwards.
  bool divergence() const;
  /// True once flag_orthogonality was called.
  bool orthogonality() const;
  /// Number of distinct stall episodes flagged so far.
  std::uint64_t stall_events() const;
  /// Total sweeps observed via on_sweep().
  std::uint64_t sweeps_observed() const;

 private:
  std::uint32_t trace_tid_locked();
  void publish_locked();
  void check_deadline_locked();

  Config config_;
  TraceRecorder* trace_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex mu_;
  bool trace_registered_ = false;
  std::uint32_t trace_tid_ = 0;
  bool has_last_ = false;
  double last_offdiag_ = 0.0;
  std::size_t consecutive_flat_ = 0;
  bool in_stall_episode_ = false;
  bool stalled_ = false;
  bool deadline_exceeded_ = false;
  bool divergence_ = false;
  bool orthogonality_ = false;
  double orthogonality_drift_ = 0.0;
  std::uint64_t stall_events_ = 0;
  std::uint64_t sweeps_observed_ = 0;
};

/// Where and how often the SnapshotExporter writes.
struct LiveConfig {
  /// Output directory; must already exist.  Receives snapshots.jsonl,
  /// metrics.prom (if `prometheus`), and dump_NNNN.{trace,metrics}.json.
  std::string dir;
  /// Sampling period.
  std::chrono::milliseconds interval{100};
  /// Rewrite a Prometheus text-exposition file every sample.
  bool prometheus = true;
};

/// Background sampler + dump servicer.  Construction opens the JSONL
/// stream (throws if the directory is not writable) and starts the thread;
/// stop()/destruction joins it after one final sample, so short runs still
/// produce at least one snapshot line.
class SnapshotExporter {
 public:
  SnapshotExporter(LiveConfig config, TraceRecorder* trace,
                   MetricsRegistry* metrics, Watchdog* watchdog = nullptr);
  ~SnapshotExporter();
  SnapshotExporter(const SnapshotExporter&) = delete;
  SnapshotExporter& operator=(const SnapshotExporter&) = delete;

  /// Joins the sampler thread after a final sample and after servicing any
  /// pending dump request.  Idempotent.
  void stop();

  /// Requests a dump from this exporter (same effect as obs::dump_now(),
  /// but wakes the thread immediately instead of waiting for the tick).
  void request_dump();

  std::uint64_t samples() const { return samples_.load(); }
  std::uint64_t dumps() const { return dumps_.load(); }

  std::string snapshots_path() const;
  std::string prometheus_path() const;
  /// dump_NNNN.trace.json / dump_NNNN.metrics.json for 1-based seq.
  static std::string dump_trace_path(const std::string& dir,
                                     std::uint64_t seq);
  static std::string dump_metrics_path(const std::string& dir,
                                       std::uint64_t seq);

 private:
  void run();
  void sample_once();
  void write_prometheus();
  void service_dump_requests();

  LiveConfig config_;
  TraceRecorder* trace_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  Watchdog* watchdog_ = nullptr;
  std::chrono::steady_clock::time_point start_;
  std::ofstream jsonl_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::uint64_t serviced_dump_requests_ = 0;

  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> dumps_{0};
  std::thread thread_;  // last member: starts after everything is ready
};

/// Installs a SIGUSR1 handler whose only action is bumping the lock-free
/// dump-request counter (async-signal-safe).  Returns false on platforms
/// without POSIX signals.  Idempotent.
bool install_dump_signal_handler();

/// Programmatic equivalent of SIGUSR1: requests a dump from every live
/// SnapshotExporter.  Serviced on each exporter's next tick.  Safe to call
/// with no exporter running (the request is picked up by the next one).
void dump_now();

/// Dump requests issued so far (signal + programmatic).  Exposed for tests.
std::uint64_t dump_requests();

}  // namespace hjsvd::obs

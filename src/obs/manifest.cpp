#include "obs/manifest.hpp"

#include <algorithm>
#include <sstream>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hjsvd::obs {
namespace {

// Manifests land inside hand-assembled benchmark JSON, so escaping only
// needs to cover what a tool name / flag summary can plausibly contain.
std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

const char* build_git_sha() {
#ifdef HJSVD_GIT_SHA
  return HJSVD_GIT_SHA;
#else
  return "unknown";
#endif
}

int host_hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

std::string manifest_json(const RunManifest& manifest) {
  std::ostringstream os;
  os << "{\"tool\": " << quoted(manifest.tool)
     << ", \"config\": " << quoted(manifest.config)
     << ", \"git_sha\": " << quoted(build_git_sha())
     << ", \"host_threads\": " << host_hardware_threads()
     << ", \"schema_versions\": {\"trace\": \"" << kTraceSchema
     << "\", \"metrics\": \"" << kMetricsSchema << "\", \"report\": \""
     << kReportSchema << "\"}}";
  return os.str();
}

}  // namespace hjsvd::obs

// Numerical-health probes: sampled, zero-perturbation observers of the
// quantities the convergence argument rests on but the timing-oriented obs
// layer never surfaced — rotation-angle distribution, catastrophic
// cancellation on the rotation inputs, column-norm exponent watermarks,
// non-finite detection, a running condition estimate, and (at finalize,
// off the hot path) V-orthogonality drift and a backward-error estimate.
//
// Contract, same as every other sink in src/obs/:
//
//  * Read-only.  A probe never writes into engine state and never calls
//    anything that can throw on engine data (in particular it never calls
//    compute_rotation, whose finiteness guard throws — the probe derives
//    the rotation angle itself as theta = atan2(2|cov|, |djj - dii|) / 2
//    and counts non-finite inputs instead of faulting on them).  Engine
//    results are bitwise identical with probes attached, detached, or
//    compiled out (HJSVD_OBS=0).
//
//  * Sampled.  Per-pair observation sites fire only every `stride`-th
//    rotation pair (deterministic pair-sequence sampling, never random),
//    so the obs-overhead guardrail's 5% bound holds at the default stride.
//    Sweep and finalize sites always fire — they are O(1) per sweep / per
//    run.
//
//  * Order-independent aggregates.  Everything accumulated per pair
//    (counters, histogram buckets, min/max watermarks) commutes, so the
//    published svd.num.* values are deterministic across engines' internal
//    scheduling.  All per-pair sites in the shipping engines are serial
//    (sequential loop, blocked generate phase, pipelined generator thread,
//    mixed-precision phases); the mutex exists for svd_batch, where pool
//    workers share one probe.
//
// Verdicts: observe_sweep feeds nothing (the Watchdog gets the off-diagonal
// series directly via record_sweep_metrics and flags divergence itself);
// observe_finalize flags Watchdog::flag_orthogonality when the measured
// V-orthogonality drift exceeds Config::orthogonality_tol.
//
// The full metric catalogue lives in docs/OBSERVABILITY.md
// ("Numerical-health telemetry").
#pragma once

#include <array>
#include <cstdint>
#include <mutex>

#include "linalg/residuals.hpp"

namespace hjsvd::obs {

class MetricsRegistry;
class TraceRecorder;
class Watchdog;

class NumericsProbe {
 public:
  /// Fixed-width rotation-angle histogram over [0, pi/4] (the range of the
  /// one-sided Jacobi angle): bucket b covers [b, b+1) * (pi/4) / kBuckets.
  static constexpr std::size_t kAngleBuckets = 8;

  struct Config {
    /// Sample every stride-th rotation pair (>= 1; 1 = every pair).
    std::size_t stride = 8;
    /// |djj - dii| / max(|dii|, |djj|) below this counts as catastrophic
    /// cancellation on the rotation inputs (the hardware formula divides by
    /// this difference).
    double cancellation_rel = 1e-8;
    /// Angles below this many radians count as "tiny" (pair effectively
    /// converged).
    double tiny_angle_rad = 1e-8;
    /// Angles above this fraction of pi/4 count as "near pi/4"
    /// (ill-separated column pair).
    double near_pi4_frac = 0.9;
    /// V-orthogonality drift above this at finalize flags the watchdog's
    /// sticky obs.watchdog.orthogonality verdict.
    double orthogonality_tol = 1e-8;
  };

  explicit NumericsProbe(const Config& config,
                         MetricsRegistry* metrics = nullptr,
                         TraceRecorder* trace = nullptr,
                         Watchdog* watchdog = nullptr);

  std::size_t stride() const { return config_.stride; }

  /// Deterministic sampling decision for the pair-sequence index the engine
  /// maintains (monotone per engine run, independent of thread count).
  bool want(std::uint64_t pair_seq) const {
    return pair_seq % config_.stride == 0;
  }

  /// One sampled rotation pair, observed *before* the rotation is applied:
  /// the two Gram diagonal entries (squared column norms) and their
  /// covariance.  Non-finite inputs are counted, never propagated.
  void observe_pair(double dii, double djj, double cov);

  /// One completed sweep's off-diagonal Frobenius mass (fed by
  /// detail::record_sweep_metrics).  Publishes the accumulated per-pair
  /// aggregates — per-sweep, never per-pair, publication cost.
  void observe_sweep(std::size_t sweep, double offdiag_frobenius);

  /// End-of-run accuracy probes, off the hot path: V-orthogonality drift
  /// ||V^T V - I||_max (when V was computed), backward error
  /// ||A - U S V^T||_F / ||A||_F (when U and V were computed), and the
  /// sigma-based condition number.  Flags the watchdog orthogonality
  /// verdict when drift exceeds Config::orthogonality_tol.
  void observe_finalize(const Matrix& a, const SvdResult& result);

  // --- Inspection (CLI summary line, tests) --------------------------------
  std::uint64_t samples() const;
  std::uint64_t cancellation_events() const;
  std::uint64_t nonfinite_events() const;
  std::uint64_t divergence_events() const;
  std::array<std::uint64_t, kAngleBuckets> angle_histogram() const;
  /// Fraction of finite sampled pairs with angle < tiny_angle_rad.
  double tiny_angle_frac() const;
  /// Fraction of finite sampled pairs with angle > near_pi4_frac * pi/4.
  double near_pi4_frac() const;
  /// Fraction of finite sampled pairs flagged as cancellation.
  double cancellation_frac() const;
  /// Running sqrt(max/min) over sampled positive Gram diagonal entries —
  /// a cheap condition estimate from current column norms; 1.0 before any
  /// sample.
  double condition_estimate() const;
  /// sigma_max / sigma_min from the finalized spectrum; -1 before finalize.
  double condition_sigma() const;
  /// ||V^T V - I||_max at finalize; -1 when V was not computed.
  double orthogonality_drift() const;
  /// ||A - U S V^T||_F / ||A||_F at finalize; -1 when U or V was absent.
  double backward_error() const;

 private:
  void publish_locked();
  std::uint32_t trace_tid_locked();

  Config config_;
  MetricsRegistry* metrics_ = nullptr;
  TraceRecorder* trace_ = nullptr;
  Watchdog* watchdog_ = nullptr;

  mutable std::mutex mu_;
  bool trace_registered_ = false;
  std::uint32_t trace_tid_ = 0;

  // Per-pair aggregates (order-independent).
  std::uint64_t samples_ = 0;
  std::uint64_t nonfinite_events_ = 0;
  std::uint64_t cancellation_events_ = 0;
  std::uint64_t tiny_angle_count_ = 0;
  std::uint64_t near_pi4_count_ = 0;
  std::array<std::uint64_t, kAngleBuckets> angle_hist_{};
  double worst_cancellation_rel_ = 1.0;  // 1.0 = none observed
  double diag_min_ = 0.0;                // over positive sampled diagonals
  double diag_max_ = 0.0;
  int norm_exp_min_ = 0;  // ilogb watermarks of the sampled column norms
  int norm_exp_max_ = 0;
  bool has_diag_ = false;

  // Sweep-level state.
  bool has_last_offdiag_ = false;
  double last_offdiag_ = 0.0;
  std::uint64_t divergence_events_ = 0;
  std::uint64_t sweeps_observed_ = 0;

  // Finalize results (-1 = not available).
  double condition_sigma_ = -1.0;
  double orthogonality_drift_ = -1.0;
  double backward_error_ = -1.0;

  // Counter deltas already pushed to the registry (observe_sweep and
  // observe_finalize may both publish; counters must only ever add the
  // unpublished remainder).
  std::uint64_t pub_samples_ = 0;
  std::uint64_t pub_nonfinite_ = 0;
  std::uint64_t pub_cancellation_ = 0;
  std::uint64_t pub_divergence_ = 0;
  std::array<std::uint64_t, kAngleBuckets> pub_angle_hist_{};
};

}  // namespace hjsvd::obs

// Offline run-report analyzer (`hjsvd.report.v1`).
//
// Ingests the observability artifacts a run recorded — an
// hjsvd.trace.v1/v2/v3 trace and an hjsvd.metrics.v1 metrics document — and
// distills them into a typed RunReport: per-phase wall-clock breakdown,
// per-thread busy/stall fractions of the pipelined engine, queue /
// parameter-FIFO occupancy statistics, the convergence trajectory,
// live-telemetry verdicts (flight-recorder drops, watchdog flags), and
// software-vs-simulator cross-checks.  The report serializes deterministically (fixed field
// order, round-trip doubles) so golden-file tests can diff it byte-for-byte,
// and two serialized reports can be compared for performance regressions
// (`compare_reports`, driving hjsvd_report --compare's exit code 3).
//
// Layering: everything here is offline post-processing.  Engines never link
// this library; it reads what obs/ recorded, after the run is over.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "report/json.hpp"

namespace hjsvd::report {

/// Input document with a missing or unsupported "schema" tag, or one whose
/// shape contradicts its tag.  hjsvd_report maps this to exit code 2
/// (usage), distinct from I/O or internal errors (exit 1).
class SchemaError : public Error {
 public:
  explicit SchemaError(const std::string& what) : Error(what) {}
};

/// Wall-clock total of all trace spans sharing one (category, name), on the
/// software process.  Spans nest (a "sweep" contains its "update" children),
/// so fractions are per-name shares of the wall clock, not a partition.
struct PhaseStat {
  std::string cat;
  std::string name;
  double total_s = 0.0;
  std::uint64_t count = 0;
  double frac_of_wall = 0.0;
};

/// Busy/stall split of one engine thread (pipelined engine only — the
/// sequential engines have no stall concept).
struct ThreadStat {
  std::string name;  // "generator", "worker.0", ...
  double busy_s = 0.0;
  double stall_s = 0.0;
  double busy_frac_of_wall = 0.0;
};

/// Busy/idle split of one svd_batch pool worker (work-stealing batch
/// scheduler only).
struct BatchWorkerStat {
  std::string name;  // "worker.0", ...
  double busy_s = 0.0;
  double idle_s = 0.0;
};

/// Summary statistics of an occupancy series.
struct SeriesStats {
  std::uint64_t samples = 0;
  double mean = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// One point of the unified convergence trajectory (svd.sweep.* series; all
/// engines record the same names — see src/svd/obs_hooks.hpp).
struct ConvergencePoint {
  std::uint64_t sweep = 0;
  double offdiag_frobenius = 0.0;
  double max_rel_offdiag = 0.0;
  std::uint64_t rotations = 0;
  std::uint64_t skipped = 0;
};

/// The analyzed run.  `has_*` flags mark optional sections: sequential runs
/// have no pipeline threads, software-only runs have no sim section.
struct RunReport {
  // Run summary (svd.* metrics).
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t sweeps = 0;
  bool converged = false;
  std::uint64_t rotations_applied = 0;
  std::uint64_t rotations_skipped = 0;
  double wall_s = 0.0;  // pipeline.wall_s gauge, else software span extent

  std::vector<PhaseStat> phases;  // sorted by descending total_s

  // Pipelined-engine sections.
  bool has_pipeline = false;
  std::vector<ThreadStat> threads;  // generator first, then workers by index
  double queue_capacity = 0.0;      // rotations
  double queue_high_water = 0.0;    // rotations
  SeriesStats queue_occupancy;      // pipeline.queue.occupancy series

  // Accelerator-simulator section.
  bool has_sim = false;
  double sim_fifo_depth_groups = 0.0;
  double sim_fifo_high_water_groups = 0.0;
  double sim_fifo_high_water_rotations = 0.0;  // calibrated bound
  SeriesStats sim_fifo_occupancy;              // sim.param_fifo.occupancy
  double sim_update_utilization = 0.0;

  // Batch-scheduler section (svd_batch's work-stealing pool; batch.*
  // metrics).  Unlike pipeline/sim this member is omitted from the JSON
  // entirely when absent, so pre-batch reports re-serialize byte-for-byte.
  bool has_batch = false;
  std::uint64_t batch_items = 0;
  std::uint64_t batch_items_ok = 0;
  std::uint64_t batch_items_failed = 0;
  std::uint64_t batch_workers = 0;            // pool width actually spawned
  std::uint64_t batch_workers_requested = 0;  // pre-clamp thread budget
  std::uint64_t batch_steals = 0;
  std::uint64_t batch_nested_splits = 0;
  std::uint64_t batch_nested_helpers = 0;
  double batch_wall_s = 0.0;
  double batch_idle_frac = 0.0;  // sum(idle_s) / (wall_s * workers)
  std::vector<BatchWorkerStat> batch_worker_stats;  // by worker index
  SeriesStats batch_queue_occupancy;  // batch.queue.occupancy series

  // Mixed-precision section (kMixedModifiedHestenes runs; svd.mp.* gauges,
  // see docs/ALGORITHM.md §10).  Like batch, the member is omitted from the
  // JSON entirely when absent, so pre-mixed reports re-serialize
  // byte-for-byte.
  bool has_mixed = false;
  std::uint64_t mp_float_sweeps = 0;   // binary32 opening sweeps
  std::uint64_t mp_double_sweeps = 0;  // binary64 refinement sweeps
  std::uint64_t mp_switch_sweep = 0;   // 0-based sweep index of promotion
  double mp_switch_threshold = 0.0;    // configured hand-over level
  std::string mp_switch_reason;        // threshold | stall | budget | skipped
  double mp_offdiag_at_switch = 0.0;   // float-phase measure at promotion
  double mp_offdiag_after_recompute = 0.0;  // after the double Gram rebuild

  // Live-telemetry section (flight-recorder trace rings + convergence
  // watchdog; src/obs/live.hpp).  Present when the trace is an
  // hjsvd.trace.v3 flight-recorder dump and/or the metrics carry
  // obs.watchdog.* verdicts.  Like batch/mixed, the member is omitted from
  // the JSON entirely when absent, so pre-live reports re-serialize
  // byte-for-byte.  compare_reports treats these as *invariants*, not
  // timings: a candidate flipping a watchdog verdict to true, or starting
  // to drop ring events when the baseline dropped none, is a regression.
  bool has_live = false;
  bool live_ring_enabled = false;  // trace came from a bounded ring
  std::uint64_t live_ring_capacity_events = 0;  // per-thread event cap
  std::uint64_t live_dropped_events_total = 0;  // ring evictions, all threads
  bool live_watchdog_present = false;  // obs.watchdog.* metrics seen
  bool live_watchdog_stalled = false;  // sticky stall verdict
  bool live_watchdog_deadline_exceeded = false;  // sticky deadline verdict
  double live_watchdog_deadline_s = 0.0;  // configured budget (0 = none)
  std::uint64_t live_watchdog_stall_sweeps = 0;   // configured stall window
  std::uint64_t live_watchdog_stall_events = 0;   // distinct stall episodes
  std::uint64_t live_watchdog_sweeps_observed = 0;
  std::uint64_t live_watchdog_deadline_overruns = 0;
  std::uint64_t live_dumps = 0;  // mid-run dumps serviced (obs.dump.count)

  // Numerical-health section (sampled accuracy probes; src/obs/numerics.hpp,
  // svd.num.* metrics).  Present when the run recorded probe samples.  Like
  // batch/mixed/live, the member is omitted from the JSON entirely when
  // absent, so pre-probe reports re-serialize byte-for-byte.
  // compare_reports gates the accuracy leaves (backward error, orthogonality
  // drift — higher is worse) and the two verdicts (false → true flips are
  // regressions) exactly as it gates timings.
  bool has_numerics = false;
  std::uint64_t num_samples = 0;            // sampled rotation pairs
  std::uint64_t num_stride = 0;             // configured sampling stride
  std::uint64_t num_nonfinite_events = 0;   // non-finite pair inputs seen
  std::uint64_t num_cancellation_events = 0;
  std::uint64_t num_divergence_events = 0;  // off-diagonal mass upticks
  double num_cancellation_frac = 0.0;       // events / finite samples
  double num_cancellation_worst_rel = 1.0;  // smallest |djj-dii|/max seen
  double num_tiny_angle_frac = 0.0;         // near-converged pair share
  double num_near_pi4_frac = 0.0;           // ill-separated pair share
  std::vector<std::uint64_t> num_angle_hist;  // 8 buckets over [0, pi/4]
  double num_cond_estimate = 1.0;           // sqrt(max/min column norm^2)
  double num_cond_sigma = -1.0;             // sigma_max/sigma_min (-1: n/a)
  double num_norm_exp_min = 0.0;            // column-norm exponent watermarks
  double num_norm_exp_max = 0.0;
  bool num_has_norm_exp = false;
  double num_offdiag_decrease_ratio = -1.0;  // last/first sweep mass (-1: n/a)
  double num_orthogonality_drift = -1.0;     // ||V^T V - I||_max (-1: n/a)
  double num_backward_error = -1.0;  // ||A - U S V^T||_F / ||A||_F (-1: n/a)
  bool num_watchdog_divergence = false;      // sticky verdicts (obs.watchdog.*)
  bool num_watchdog_orthogonality = false;

  // Serving section (hjsvd_serve daemon sessions; serve.* metrics from
  // src/serve/server.cpp).  Present when the metrics document came from a
  // serve run.  Like batch/mixed/live/numerics, the member is omitted from
  // the JSON entirely when absent, so offline-run reports re-serialize
  // byte-for-byte.  Invariants the serve validator enforces:
  //   requests_total == admitted_total + rejected_overload +
  //                     rejected_bad_request
  //   replies_ok + replies_error == requests_total
  bool has_serve = false;
  std::uint64_t serve_requests_total = 0;        // every frame submitted
  std::uint64_t serve_admitted_total = 0;        // passed admission control
  std::uint64_t serve_rejected_overload = 0;     // bounded-queue rejections
  std::uint64_t serve_rejected_bad_request = 0;  // malformed/duplicate frames
  std::uint64_t serve_expired_deadline = 0;      // expired while queued
  std::uint64_t serve_replies_ok = 0;
  std::uint64_t serve_replies_error = 0;
  std::uint64_t serve_waves_total = 0;           // dispatch waves executed
  std::uint64_t serve_workspace_reuse_total = 0;  // warm arena hits
  std::uint64_t serve_workspace_alloc_total = 0;  // cold arena allocations
  double serve_latency_p50_ms = 0.0;  // admitted-request latency percentiles
  double serve_latency_p95_ms = 0.0;
  SeriesStats serve_queue_depth;      // serve.queue.depth series

  std::vector<ConvergencePoint> convergence;

  // Cross-checks (derived; what PR 3 concluded by reading bench stdout).
  double generator_busy_frac = 0.0;
  double mean_worker_busy_frac = 0.0;
  bool generator_is_bottleneck = false;  // busiest thread is the generator
  /// Software queue high-water vs the sim's calibrated FIFO bound, in
  /// rotations; 0 when either side is absent.
  double queue_vs_sim_bound_ratio = 0.0;
  bool software_queue_within_sim_bound = false;
};

/// Analyzes parsed trace + metrics documents.  Throws SchemaError when
/// either document's "schema" tag is missing or unsupported (trace:
/// hjsvd.trace.v1, v2, or v3; metrics: hjsvd.metrics.v1) or when the tagged
/// shape is missing ("traceEvents" / "metrics" arrays).
RunReport analyze_run(const JsonValue& trace_doc, const JsonValue& metrics_doc);

/// Serializes a report as the hjsvd.report.v1 JSON document.  Deterministic:
/// fixed member order, doubles at round-trip precision.
std::string report_json(const RunReport& report);

/// Renders the human-readable view: run summary, phase table, thread table,
/// occupancy and convergence tables (common/table.hpp).
std::string report_table(const RunReport& report);

/// Parses a serialized hjsvd.report.v1 document back into a RunReport.
/// Throws SchemaError on a missing/foreign schema tag.
RunReport report_from_json(const JsonValue& doc);

/// Regression thresholds for compare_reports; defaults match
/// hjsvd_report --compare's flag defaults.
struct CompareThresholds {
  double max_wall_regress_frac = 0.10;     // new wall ≤ old * (1 + frac)
  std::uint64_t max_sweep_increase = 0;    // convergence must not degrade
  double max_rotation_increase_frac = 0.05;
  double max_stall_increase_frac = 0.25;   // total stall seconds (pipelined)
  // Accuracy leaves (numerics section): higher is worse.  A candidate may
  // exceed the baseline by the relative fraction, or by the absolute noise
  // floor when both values sit at rounding level (a 3e-17 → 5e-17 "50%
  // regression" is noise, not a finding).
  double max_accuracy_regress_frac = 0.50;
  double accuracy_noise_floor = 1e-12;
};

struct CompareResult {
  bool regressed = false;
  std::vector<std::string> findings;  // human-readable, one per check
};

/// Diffs two reports of the *same* workload.  Every check appends a finding
/// line; checks that exceed their threshold set `regressed`.
CompareResult compare_reports(const RunReport& baseline,
                              const RunReport& candidate,
                              const CompareThresholds& thresholds);

}  // namespace hjsvd::report

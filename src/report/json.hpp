// Minimal JSON reader for the offline report tool.
//
// hjsvd's recorders *emit* JSON via hand-rolled writers (obs/trace.cpp,
// obs/metrics.cpp); the report tool is the first component that has to read
// those documents back, so this is the repo's first parser.  It is a small
// recursive-descent parser over the full JSON grammar — objects, arrays,
// strings with escapes, numbers, booleans, null — with line/column-aware
// error messages.  It is deliberately not a general-purpose library: no
// streaming, no SAX interface, documents are loaded whole (the largest
// artifact in practice is a few tens of MB of trace events).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace hjsvd::report {

/// A parsed JSON document node.  Object member order is not preserved
/// (members are stored sorted by key); hjsvd documents never rely on order.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw hjsvd::Error when the node has another type.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;

  /// Object member lookup: nullptr when absent (or when not an object —
  /// callers probing optional fields shouldn't need a type check first).
  const JsonValue* find(std::string_view key) const;

  /// Object member lookup that throws hjsvd::Error when missing.
  const JsonValue& at(std::string_view key) const;

  /// Convenience: member's numeric value, or `fallback` when the member is
  /// absent; throws if present with a non-numeric type.
  double number_or(std::string_view key, double fallback) const;

  /// Convenience: member's string value, or "" when absent.
  std::string string_or(std::string_view key, std::string fallback = "") const;

  // Construction (used by the parser; tests may build values directly).
  static JsonValue make_null();
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(std::vector<JsonValue> v);
  static JsonValue make_object(std::map<std::string, JsonValue, std::less<>> v);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue, std::less<>> object_;
};

/// Parses a complete JSON document; throws hjsvd::Error with a
/// line:column-prefixed message on malformed input or trailing garbage.
JsonValue parse_json(std::string_view text);

/// Reads and parses a JSON file; throws hjsvd::Error on I/O or parse errors
/// (the message names the file).
JsonValue parse_json_file(const std::string& path);

}  // namespace hjsvd::report

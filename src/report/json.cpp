#include "report/json.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace hjsvd::report {
namespace {

[[noreturn]] void type_error(const char* wanted, JsonValue::Type got) {
  static constexpr const char* kNames[] = {"null",   "bool",  "number",
                                           "string", "array", "object"};
  throw Error(std::string("JSON value is ") +
              kNames[static_cast<int>(got)] + ", expected " + wanted);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    // Line/column of pos_ for a usable error message.
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream os;
    os << "JSON parse error at " << line << ':' << col << ": " << what;
    throw Error(os.str());
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue::make_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::map<std::string, JsonValue, std::less<>> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      const char d = peek();
      if (d == ',') {
        ++pos_;
        continue;
      }
      if (d == '}') {
        ++pos_;
        return JsonValue::make_object(std::move(members));
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      const char d = peek();
      if (d == ',') {
        ++pos_;
        continue;
      }
      if (d == ']') {
        ++pos_;
        return JsonValue::make_array(std::move(items));
      }
      fail("expected ',' or ']' in array");
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9')
        code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f')
        code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F')
        code |= static_cast<unsigned>(h - 'A' + 10);
      else
        fail("invalid \\u escape digit");
    }
    return code;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          // hjsvd writers only emit \u00xx control escapes; decode the
          // general case anyway so foreign traces load.  Non-BMP code
          // points arrive as UTF-16 surrogate pairs (two \u escapes) and
          // must be recombined; lone surrogates are not valid scalar
          // values and are rejected.
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              fail("high surrogate not followed by \\u low surrogate");
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF)
              fail("high surrogate followed by non-low-surrogate \\u escape");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("lone low surrogate in \\u escape");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("invalid number '" + token + "'");
    }
    return JsonValue::make_number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  const JsonValue* v = find(key);
  if (v == nullptr) throw Error("missing JSON member '" + std::string(key) + "'");
  return *v;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_number();
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? std::move(fallback) : v->as_string();
}

JsonValue JsonValue::make_null() { return JsonValue{}; }

JsonValue JsonValue::make_bool(bool v) {
  JsonValue out;
  out.type_ = Type::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue out;
  out.type_ = Type::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue out;
  out.type_ = Type::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> v) {
  JsonValue out;
  out.type_ = Type::kArray;
  out.array_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_object(
    std::map<std::string, JsonValue, std::less<>> v) {
  JsonValue out;
  out.type_ = Type::kObject;
  out.object_ = std::move(v);
  return out;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

JsonValue parse_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_json(buf.str());
  } catch (const Error& e) {
    throw Error(path + ": " + e.what());
  }
}

}  // namespace hjsvd::report

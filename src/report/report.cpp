#include "report/report.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <utility>

#include "common/table.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hjsvd::report {
namespace {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

const char* json_bool(bool v) { return v ? "true" : "false"; }

/// Nearest-rank percentile of an unsorted sample copy (matches the
/// histogram summarization in obs/metrics.cpp).
double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples.size())));
  return samples[std::min(samples.size() - 1, rank == 0 ? 0 : rank - 1)];
}

SeriesStats series_stats(const std::vector<double>& values) {
  SeriesStats out;
  out.samples = values.size();
  if (values.empty()) return out;
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
    out.max = std::max(out.max, v);
  }
  out.mean = sum / static_cast<double>(values.size());
  out.p95 = percentile(values, 95);
  return out;
}

/// Indexed view over an hjsvd.metrics.v1 document's "metrics" array.
class MetricsView {
 public:
  explicit MetricsView(const JsonValue& doc) {
    const std::string schema = doc.string_or("schema");
    if (schema != obs::kMetricsSchema)
      throw SchemaError("metrics document has schema '" + schema +
                        "', expected '" + obs::kMetricsSchema + "'");
    const JsonValue* list = doc.find("metrics");
    if (list == nullptr || !list->is_array())
      throw SchemaError("metrics document has no \"metrics\" array");
    for (const JsonValue& m : list->as_array())
      by_name_.emplace(m.string_or("name"), &m);
  }

  /// Gauge or counter value; `fallback` when absent or of another type.
  double value_or(std::string_view name, double fallback) const {
    const JsonValue* m = lookup(name);
    if (m == nullptr) return fallback;
    const std::string type = m->string_or("type");
    if (type != "gauge" && type != "counter") return fallback;
    return m->number_or("value", fallback);
  }

  bool has(std::string_view name) const { return lookup(name) != nullptr; }

  /// Series values (the y column), empty when absent.
  std::vector<double> series_values(std::string_view name) const {
    std::vector<double> out;
    const JsonValue* m = lookup(name);
    if (m == nullptr || m->string_or("type") != "series") return out;
    const JsonValue* points = m->find("points");
    if (points == nullptr || !points->is_array()) return out;
    for (const JsonValue& p : points->as_array()) {
      const auto& pair = p.as_array();
      if (pair.size() == 2) out.push_back(pair[1].as_number());
    }
    return out;
  }

  /// Full (index, value) series points.
  std::vector<std::pair<double, double>> series_points(
      std::string_view name) const {
    std::vector<std::pair<double, double>> out;
    const JsonValue* m = lookup(name);
    if (m == nullptr || m->string_or("type") != "series") return out;
    const JsonValue* points = m->find("points");
    if (points == nullptr || !points->is_array()) return out;
    for (const JsonValue& p : points->as_array()) {
      const auto& pair = p.as_array();
      if (pair.size() == 2)
        out.emplace_back(pair[0].as_number(), pair[1].as_number());
    }
    return out;
  }

 private:
  const JsonValue* lookup(std::string_view name) const {
    const auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : it->second;
  }

  std::map<std::string, const JsonValue*, std::less<>> by_name_;
};

void check_trace_schema(const JsonValue& trace_doc) {
  const std::string schema = trace_doc.string_or("schema");
  if (schema != "hjsvd.trace.v1" && schema != "hjsvd.trace.v2" &&
      schema != "hjsvd.trace.v3")
    throw SchemaError("trace document has schema '" + schema +
                      "', expected hjsvd.trace.v1, v2, or v3");
  const JsonValue* events = trace_doc.find("traceEvents");
  if (events == nullptr || !events->is_array())
    throw SchemaError("trace document has no \"traceEvents\" array");
}

void aggregate_phases(const JsonValue& trace_doc, RunReport* report) {
  const JsonValue* other = trace_doc.find("otherData");
  const int software_pid =
      other == nullptr
          ? obs::kSoftwarePid
          : static_cast<int>(other->number_or("software_pid",
                                              obs::kSoftwarePid));
  std::map<std::pair<std::string, std::string>, PhaseStat> by_key;
  double min_start_us = 0.0, max_end_us = 0.0;
  bool any_span = false;
  for (const JsonValue& e : trace_doc.at("traceEvents").as_array()) {
    if (e.string_or("ph") != "X") continue;
    if (static_cast<int>(e.number_or("pid", -1)) != software_pid) continue;
    const double ts = e.number_or("ts", 0.0);
    const double dur = e.number_or("dur", 0.0);
    if (!any_span || ts < min_start_us) min_start_us = ts;
    if (!any_span || ts + dur > max_end_us) max_end_us = ts + dur;
    any_span = true;
    const std::pair<std::string, std::string> key{e.string_or("cat"),
                                                  e.string_or("name")};
    PhaseStat& stat = by_key[key];
    stat.cat = key.first;
    stat.name = key.second;
    stat.total_s += dur * 1e-6;
    ++stat.count;
  }
  if (report->wall_s <= 0.0 && any_span)
    report->wall_s = (max_end_us - min_start_us) * 1e-6;
  for (auto& [key, stat] : by_key) {
    if (report->wall_s > 0.0) stat.frac_of_wall = stat.total_s / report->wall_s;
    report->phases.push_back(std::move(stat));
  }
  std::sort(report->phases.begin(), report->phases.end(),
            [](const PhaseStat& a, const PhaseStat& b) {
              if (a.total_s != b.total_s) return a.total_s > b.total_s;
              return std::tie(a.cat, a.name) < std::tie(b.cat, b.name);
            });
}

void fill_pipeline(const MetricsView& metrics, RunReport* report) {
  if (!metrics.has("pipeline.wall_s")) return;
  report->has_pipeline = true;
  ThreadStat gen;
  gen.name = "generator";
  gen.busy_s = metrics.value_or("pipeline.generator.busy_s", 0.0);
  gen.stall_s = metrics.value_or("pipeline.generator.stall_s", 0.0);
  report->threads.push_back(gen);
  for (std::size_t w = 0;; ++w) {
    const std::string prefix = "pipeline.worker." + std::to_string(w) + ".";
    if (!metrics.has(prefix + "busy_s")) break;
    ThreadStat t;
    t.name = "worker." + std::to_string(w);
    t.busy_s = metrics.value_or(prefix + "busy_s", 0.0);
    t.stall_s = metrics.value_or(prefix + "stall_s", 0.0);
    report->threads.push_back(std::move(t));
  }
  for (ThreadStat& t : report->threads)
    if (report->wall_s > 0.0) t.busy_frac_of_wall = t.busy_s / report->wall_s;
  report->queue_capacity = metrics.value_or("pipeline.queue.capacity", 0.0);
  report->queue_high_water = metrics.value_or("pipeline.queue.high_water", 0.0);
  report->queue_occupancy =
      series_stats(metrics.series_values("pipeline.queue.occupancy"));
}

void fill_sim(const MetricsView& metrics, RunReport* report) {
  if (!metrics.has("sim.param_fifo.depth")) return;
  report->has_sim = true;
  report->sim_fifo_depth_groups = metrics.value_or("sim.param_fifo.depth", 0.0);
  report->sim_fifo_high_water_groups =
      metrics.value_or("sim.param_fifo.high_water", 0.0);
  report->sim_fifo_high_water_rotations =
      metrics.value_or("sim.param_fifo.high_water_rotations", 0.0);
  report->sim_fifo_occupancy =
      series_stats(metrics.series_values("sim.param_fifo.occupancy"));
  report->sim_update_utilization =
      metrics.value_or("sim.update_utilization", 0.0);
}

void fill_batch(const MetricsView& metrics, RunReport* report) {
  if (!metrics.has("batch.items")) return;
  report->has_batch = true;
  const auto u64 = [&](std::string_view name) {
    return static_cast<std::uint64_t>(metrics.value_or(name, 0.0));
  };
  report->batch_items = u64("batch.items");
  report->batch_items_ok = u64("batch.items_ok");
  report->batch_items_failed = u64("batch.items_failed");
  report->batch_workers = u64("batch.workers");
  report->batch_workers_requested = u64("batch.workers.requested");
  report->batch_steals = u64("batch.steals");
  report->batch_nested_splits = u64("batch.nested.splits");
  report->batch_nested_helpers = u64("batch.nested.helpers");
  report->batch_wall_s = metrics.value_or("batch.wall_s", 0.0);
  double idle_sum = 0.0;
  for (std::size_t w = 0;; ++w) {
    const std::string prefix = "batch.worker." + std::to_string(w) + ".";
    if (!metrics.has(prefix + "busy_s")) break;
    BatchWorkerStat stat;
    stat.name = "worker." + std::to_string(w);
    stat.busy_s = metrics.value_or(prefix + "busy_s", 0.0);
    stat.idle_s = metrics.value_or(prefix + "idle_s", 0.0);
    idle_sum += stat.idle_s;
    report->batch_worker_stats.push_back(std::move(stat));
  }
  if (report->batch_wall_s > 0.0 && !report->batch_worker_stats.empty())
    report->batch_idle_frac =
        idle_sum /
        (report->batch_wall_s *
         static_cast<double>(report->batch_worker_stats.size()));
  report->batch_queue_occupancy =
      series_stats(metrics.series_values("batch.queue.occupancy"));
}

/// Numeric svd.mp.switch_reason gauge -> stable string (matches
/// hjsvd::MixedSwitchReason; the report layer deliberately does not link
/// the engine library, so the mapping is duplicated here and locked by
/// tests/report/test_report.cpp).
std::string switch_reason_name(double value) {
  switch (static_cast<int>(value)) {
    case 0: return "threshold";
    case 1: return "stall";
    case 2: return "budget";
    case 3: return "skipped";
    default: return "unknown";
  }
}

void fill_mixed(const MetricsView& metrics, RunReport* report) {
  if (!metrics.has("svd.mp.switch_sweep")) return;
  report->has_mixed = true;
  report->mp_float_sweeps =
      static_cast<std::uint64_t>(metrics.value_or("svd.mp.float_sweeps", 0.0));
  report->mp_double_sweeps = static_cast<std::uint64_t>(
      metrics.value_or("svd.mp.double_sweeps", 0.0));
  report->mp_switch_sweep =
      static_cast<std::uint64_t>(metrics.value_or("svd.mp.switch_sweep", 0.0));
  report->mp_switch_threshold =
      metrics.value_or("svd.mp.switch_threshold", 0.0);
  report->mp_switch_reason =
      switch_reason_name(metrics.value_or("svd.mp.switch_reason", -1.0));
  report->mp_offdiag_at_switch =
      metrics.value_or("svd.mp.offdiag_at_switch", 0.0);
  report->mp_offdiag_after_recompute =
      metrics.value_or("svd.mp.offdiag_after_recompute", 0.0);
}

void fill_live(const JsonValue& trace_doc, const MetricsView& metrics,
               RunReport* report) {
  const JsonValue* other = trace_doc.find("otherData");
  const JsonValue* fr =
      other == nullptr ? nullptr : other->find("flight_recorder");
  const bool ring = fr != nullptr && fr->as_bool();
  const bool watchdog = metrics.has("obs.watchdog.stalled");
  if (!ring && !watchdog) return;
  report->has_live = true;
  report->live_ring_enabled = ring;
  if (ring) {
    report->live_ring_capacity_events = static_cast<std::uint64_t>(
        other->number_or("ring_capacity_events", 0.0));
    report->live_dropped_events_total = static_cast<std::uint64_t>(
        other->number_or("dropped_events_total", 0.0));
  }
  report->live_watchdog_present = watchdog;
  if (watchdog) {
    report->live_watchdog_stalled =
        metrics.value_or("obs.watchdog.stalled", 0.0) != 0.0;
    report->live_watchdog_deadline_exceeded =
        metrics.value_or("obs.watchdog.deadline_exceeded", 0.0) != 0.0;
    report->live_watchdog_deadline_s =
        metrics.value_or("obs.watchdog.deadline_s", 0.0);
    const auto u64 = [&](std::string_view name) {
      return static_cast<std::uint64_t>(metrics.value_or(name, 0.0));
    };
    report->live_watchdog_stall_sweeps = u64("obs.watchdog.stall_sweeps");
    report->live_watchdog_stall_events = u64("obs.watchdog.stall_events");
    report->live_watchdog_sweeps_observed =
        u64("obs.watchdog.sweeps_observed");
    report->live_watchdog_deadline_overruns =
        u64("obs.watchdog.deadline_overruns");
  }
  report->live_dumps =
      static_cast<std::uint64_t>(metrics.value_or("obs.dump.count", 0.0));
}

void fill_numerics(const MetricsView& metrics, RunReport* report) {
  if (!metrics.has("svd.num.samples")) return;
  report->has_numerics = true;
  const auto u64 = [&](std::string_view name) {
    return static_cast<std::uint64_t>(metrics.value_or(name, 0.0));
  };
  report->num_samples = u64("svd.num.samples");
  report->num_stride = u64("svd.num.stride");
  report->num_nonfinite_events = u64("svd.num.nonfinite.events");
  report->num_cancellation_events = u64("svd.num.cancellation.events");
  report->num_divergence_events = u64("svd.num.divergence.events");
  report->num_cancellation_frac =
      metrics.value_or("svd.num.cancellation.frac", 0.0);
  report->num_cancellation_worst_rel =
      metrics.value_or("svd.num.cancellation.worst_rel", 1.0);
  report->num_tiny_angle_frac = metrics.value_or("svd.num.angle.tiny_frac", 0.0);
  report->num_near_pi4_frac =
      metrics.value_or("svd.num.angle.near_pi4_frac", 0.0);
  for (std::size_t b = 0;; ++b) {
    const std::string name = "svd.num.angle.hist." + std::to_string(b);
    if (!metrics.has(name)) break;
    report->num_angle_hist.push_back(u64(name));
  }
  report->num_cond_estimate = metrics.value_or("svd.num.cond.estimate", 1.0);
  report->num_cond_sigma = metrics.value_or("svd.num.cond.sigma", -1.0);
  report->num_has_norm_exp = metrics.has("svd.num.norm.exp_min");
  if (report->num_has_norm_exp) {
    report->num_norm_exp_min = metrics.value_or("svd.num.norm.exp_min", 0.0);
    report->num_norm_exp_max = metrics.value_or("svd.num.norm.exp_max", 0.0);
  }
  // Off-diagonal decrease ratio: derived offline from the per-sweep series
  // every engine already records, so the probe carries no duplicate state.
  const auto frob = metrics.series_values("svd.sweep.offdiag_frobenius");
  if (frob.size() >= 2 && frob.front() > 0.0)
    report->num_offdiag_decrease_ratio = frob.back() / frob.front();
  report->num_orthogonality_drift =
      metrics.value_or("svd.num.finalize.v_orthogonality_drift", -1.0);
  report->num_backward_error =
      metrics.value_or("svd.num.finalize.backward_error", -1.0);
  report->num_watchdog_divergence =
      metrics.value_or("obs.watchdog.divergence", 0.0) != 0.0;
  report->num_watchdog_orthogonality =
      metrics.value_or("obs.watchdog.orthogonality", 0.0) != 0.0;
}

void fill_serve(const MetricsView& metrics, RunReport* report) {
  if (!metrics.has("serve.requests_total")) return;
  report->has_serve = true;
  const auto u64 = [&](std::string_view name) {
    return static_cast<std::uint64_t>(metrics.value_or(name, 0.0));
  };
  report->serve_requests_total = u64("serve.requests_total");
  report->serve_admitted_total = u64("serve.admitted_total");
  report->serve_rejected_overload = u64("serve.rejected.overload");
  report->serve_rejected_bad_request = u64("serve.rejected.bad_request");
  report->serve_expired_deadline = u64("serve.expired.deadline");
  report->serve_replies_ok = u64("serve.replies_ok");
  report->serve_replies_error = u64("serve.replies_error");
  report->serve_waves_total = u64("serve.waves_total");
  report->serve_workspace_reuse_total = u64("serve.workspace.reuse_total");
  report->serve_workspace_alloc_total = u64("serve.workspace.alloc_total");
  report->serve_latency_p50_ms = metrics.value_or("serve.latency_p50_ms", 0.0);
  report->serve_latency_p95_ms = metrics.value_or("serve.latency_p95_ms", 0.0);
  report->serve_queue_depth =
      series_stats(metrics.series_values("serve.queue.depth"));
}

void fill_convergence(const MetricsView& metrics, RunReport* report) {
  const auto frob = metrics.series_points("svd.sweep.offdiag_frobenius");
  const auto rel = metrics.series_points("svd.sweep.max_rel_offdiag");
  const auto rot = metrics.series_points("svd.sweep.rotations");
  const auto skip = metrics.series_points("svd.sweep.skipped");
  for (std::size_t i = 0; i < frob.size(); ++i) {
    ConvergencePoint p;
    p.sweep = static_cast<std::uint64_t>(frob[i].first);
    p.offdiag_frobenius = frob[i].second;
    if (i < rel.size()) p.max_rel_offdiag = rel[i].second;
    if (i < rot.size()) p.rotations = static_cast<std::uint64_t>(rot[i].second);
    if (i < skip.size()) p.skipped = static_cast<std::uint64_t>(skip[i].second);
    report->convergence.push_back(p);
  }
}

void fill_cross_checks(RunReport* report) {
  if (report->has_pipeline && report->wall_s > 0.0 &&
      !report->threads.empty()) {
    report->generator_busy_frac = report->threads.front().busy_frac_of_wall;
    double worker_sum = 0.0;
    std::size_t workers = 0;
    double max_worker_frac = 0.0;
    for (std::size_t i = 1; i < report->threads.size(); ++i) {
      worker_sum += report->threads[i].busy_frac_of_wall;
      max_worker_frac =
          std::max(max_worker_frac, report->threads[i].busy_frac_of_wall);
      ++workers;
    }
    if (workers > 0)
      report->mean_worker_busy_frac =
          worker_sum / static_cast<double>(workers);
    report->generator_is_bottleneck =
        report->generator_busy_frac > max_worker_frac;
  }
  if (report->has_pipeline && report->has_sim &&
      report->sim_fifo_high_water_rotations > 0.0) {
    report->queue_vs_sim_bound_ratio =
        report->queue_high_water / report->sim_fifo_high_water_rotations;
    report->software_queue_within_sim_bound =
        report->queue_high_water <= report->sim_fifo_high_water_rotations;
  }
}

void append_series_stats(std::ostringstream& os, const SeriesStats& s) {
  os << "{\"samples\": " << s.samples << ", \"mean\": " << json_number(s.mean)
     << ", \"p95\": " << json_number(s.p95)
     << ", \"max\": " << json_number(s.max) << '}';
}

SeriesStats series_stats_from_json(const JsonValue& v) {
  SeriesStats out;
  out.samples = static_cast<std::uint64_t>(v.number_or("samples", 0.0));
  out.mean = v.number_or("mean", 0.0);
  out.p95 = v.number_or("p95", 0.0);
  out.max = v.number_or("max", 0.0);
  return out;
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string pct(double frac) { return format_fixed(frac * 100.0, 1) + "%"; }

}  // namespace

RunReport analyze_run(const JsonValue& trace_doc,
                      const JsonValue& metrics_doc) {
  check_trace_schema(trace_doc);
  const MetricsView metrics(metrics_doc);
  RunReport report;
  report.rows = static_cast<std::uint64_t>(metrics.value_or("svd.rows", 0.0));
  report.cols = static_cast<std::uint64_t>(metrics.value_or("svd.cols", 0.0));
  report.sweeps =
      static_cast<std::uint64_t>(metrics.value_or("svd.sweeps", 0.0));
  report.converged = metrics.value_or("svd.converged", 0.0) != 0.0;
  report.rotations_applied =
      static_cast<std::uint64_t>(metrics.value_or("svd.rotations_applied", 0.0));
  report.rotations_skipped =
      static_cast<std::uint64_t>(metrics.value_or("svd.rotations_skipped", 0.0));
  report.wall_s = metrics.value_or("pipeline.wall_s", 0.0);
  aggregate_phases(trace_doc, &report);
  fill_pipeline(metrics, &report);
  fill_sim(metrics, &report);
  fill_batch(metrics, &report);
  fill_mixed(metrics, &report);
  fill_live(trace_doc, metrics, &report);
  fill_numerics(metrics, &report);
  fill_serve(metrics, &report);
  fill_convergence(metrics, &report);
  fill_cross_checks(&report);
  return report;
}

std::string report_json(const RunReport& r) {
  std::ostringstream os;
  os << "{\n\"schema\": \"" << obs::kReportSchema << "\",\n";
  os << "\"run\": {\"rows\": " << r.rows << ", \"cols\": " << r.cols
     << ", \"sweeps\": " << r.sweeps
     << ", \"converged\": " << json_bool(r.converged)
     << ", \"rotations_applied\": " << r.rotations_applied
     << ", \"rotations_skipped\": " << r.rotations_skipped
     << ", \"wall_s\": " << json_number(r.wall_s) << "},\n";
  os << "\"phases\": [";
  for (std::size_t i = 0; i < r.phases.size(); ++i) {
    const PhaseStat& p = r.phases[i];
    os << (i == 0 ? "\n" : ",\n") << "  {\"cat\": " << quoted(p.cat)
       << ", \"name\": " << quoted(p.name)
       << ", \"total_s\": " << json_number(p.total_s)
       << ", \"count\": " << p.count
       << ", \"frac_of_wall\": " << json_number(p.frac_of_wall) << '}';
  }
  os << "\n],\n";
  if (r.has_pipeline) {
    os << "\"pipeline\": {\"threads\": [";
    for (std::size_t i = 0; i < r.threads.size(); ++i) {
      const ThreadStat& t = r.threads[i];
      os << (i == 0 ? "\n" : ",\n") << "  {\"name\": " << quoted(t.name)
         << ", \"busy_s\": " << json_number(t.busy_s)
         << ", \"stall_s\": " << json_number(t.stall_s)
         << ", \"busy_frac_of_wall\": " << json_number(t.busy_frac_of_wall)
         << '}';
    }
    os << "\n], \"queue_capacity\": " << json_number(r.queue_capacity)
       << ", \"queue_high_water\": " << json_number(r.queue_high_water)
       << ", \"queue_occupancy\": ";
    append_series_stats(os, r.queue_occupancy);
    os << "},\n";
  } else {
    os << "\"pipeline\": null,\n";
  }
  if (r.has_sim) {
    os << "\"sim\": {\"param_fifo_depth_groups\": "
       << json_number(r.sim_fifo_depth_groups)
       << ", \"param_fifo_high_water_groups\": "
       << json_number(r.sim_fifo_high_water_groups)
       << ", \"param_fifo_high_water_rotations\": "
       << json_number(r.sim_fifo_high_water_rotations)
       << ", \"param_fifo_occupancy\": ";
    append_series_stats(os, r.sim_fifo_occupancy);
    os << ", \"update_utilization\": "
       << json_number(r.sim_update_utilization) << "},\n";
  } else {
    os << "\"sim\": null,\n";
  }
  // The batch member is omitted entirely when absent (no "batch": null):
  // reports predating the batch scheduler must re-serialize byte-for-byte.
  if (r.has_batch) {
    os << "\"batch\": {\"items\": " << r.batch_items
       << ", \"items_ok\": " << r.batch_items_ok
       << ", \"items_failed\": " << r.batch_items_failed
       << ", \"workers\": " << r.batch_workers
       << ", \"workers_requested\": " << r.batch_workers_requested
       << ", \"steals\": " << r.batch_steals
       << ", \"nested_splits\": " << r.batch_nested_splits
       << ", \"nested_helpers\": " << r.batch_nested_helpers
       << ", \"wall_s\": " << json_number(r.batch_wall_s)
       << ", \"idle_frac\": " << json_number(r.batch_idle_frac)
       << ", \"worker_threads\": [";
    for (std::size_t i = 0; i < r.batch_worker_stats.size(); ++i) {
      const BatchWorkerStat& w = r.batch_worker_stats[i];
      os << (i == 0 ? "\n" : ",\n") << "  {\"name\": " << quoted(w.name)
         << ", \"busy_s\": " << json_number(w.busy_s)
         << ", \"idle_s\": " << json_number(w.idle_s) << '}';
    }
    os << "\n], \"queue_occupancy\": ";
    append_series_stats(os, r.batch_queue_occupancy);
    os << "},\n";
  }
  // Like batch, the mixed member is omitted entirely when absent.
  if (r.has_mixed) {
    os << "\"mixed\": {\"float_sweeps\": " << r.mp_float_sweeps
       << ", \"double_sweeps\": " << r.mp_double_sweeps
       << ", \"switch_sweep\": " << r.mp_switch_sweep
       << ", \"switch_threshold\": " << json_number(r.mp_switch_threshold)
       << ", \"switch_reason\": " << quoted(r.mp_switch_reason)
       << ", \"offdiag_at_switch\": " << json_number(r.mp_offdiag_at_switch)
       << ", \"offdiag_after_recompute\": "
       << json_number(r.mp_offdiag_after_recompute) << "},\n";
  }
  // Like batch/mixed, the live member is omitted entirely when absent.
  if (r.has_live) {
    os << "\"live\": {\"ring_enabled\": " << json_bool(r.live_ring_enabled)
       << ", \"ring_capacity_events\": " << r.live_ring_capacity_events
       << ", \"dropped_events_total\": " << r.live_dropped_events_total
       << ", \"watchdog_present\": " << json_bool(r.live_watchdog_present)
       << ", \"watchdog_stalled\": " << json_bool(r.live_watchdog_stalled)
       << ", \"watchdog_deadline_exceeded\": "
       << json_bool(r.live_watchdog_deadline_exceeded)
       << ", \"watchdog_deadline_s\": "
       << json_number(r.live_watchdog_deadline_s)
       << ", \"watchdog_stall_sweeps\": " << r.live_watchdog_stall_sweeps
       << ", \"watchdog_stall_events\": " << r.live_watchdog_stall_events
       << ", \"watchdog_sweeps_observed\": "
       << r.live_watchdog_sweeps_observed
       << ", \"watchdog_deadline_overruns\": "
       << r.live_watchdog_deadline_overruns
       << ", \"dumps\": " << r.live_dumps << "},\n";
  }
  // Like batch/mixed/live, the numerics member is omitted entirely when
  // absent.
  if (r.has_numerics) {
    os << "\"numerics\": {\"samples\": " << r.num_samples
       << ", \"stride\": " << r.num_stride
       << ", \"nonfinite_events\": " << r.num_nonfinite_events
       << ", \"cancellation_events\": " << r.num_cancellation_events
       << ", \"divergence_events\": " << r.num_divergence_events
       << ", \"cancellation_frac\": " << json_number(r.num_cancellation_frac)
       << ", \"cancellation_worst_rel\": "
       << json_number(r.num_cancellation_worst_rel)
       << ", \"tiny_angle_frac\": " << json_number(r.num_tiny_angle_frac)
       << ", \"near_pi4_frac\": " << json_number(r.num_near_pi4_frac)
       << ", \"angle_hist\": [";
    for (std::size_t b = 0; b < r.num_angle_hist.size(); ++b)
      os << (b == 0 ? "" : ", ") << r.num_angle_hist[b];
    os << "], \"cond_estimate\": " << json_number(r.num_cond_estimate)
       << ", \"cond_sigma\": " << json_number(r.num_cond_sigma);
    if (r.num_has_norm_exp) {
      os << ", \"norm_exp_min\": " << json_number(r.num_norm_exp_min)
         << ", \"norm_exp_max\": " << json_number(r.num_norm_exp_max);
    }
    os << ", \"offdiag_decrease_ratio\": "
       << json_number(r.num_offdiag_decrease_ratio)
       << ", \"orthogonality_drift\": "
       << json_number(r.num_orthogonality_drift)
       << ", \"backward_error\": " << json_number(r.num_backward_error)
       << ", \"watchdog_divergence\": " << json_bool(r.num_watchdog_divergence)
       << ", \"watchdog_orthogonality\": "
       << json_bool(r.num_watchdog_orthogonality) << "},\n";
  }
  if (r.has_serve) {
    os << "\"serve\": {\"requests_total\": " << r.serve_requests_total
       << ", \"admitted_total\": " << r.serve_admitted_total
       << ", \"rejected_overload\": " << r.serve_rejected_overload
       << ", \"rejected_bad_request\": " << r.serve_rejected_bad_request
       << ", \"expired_deadline\": " << r.serve_expired_deadline
       << ", \"replies_ok\": " << r.serve_replies_ok
       << ", \"replies_error\": " << r.serve_replies_error
       << ", \"waves_total\": " << r.serve_waves_total
       << ", \"workspace_reuse_total\": " << r.serve_workspace_reuse_total
       << ", \"workspace_alloc_total\": " << r.serve_workspace_alloc_total
       << ", \"latency_p50_ms\": " << json_number(r.serve_latency_p50_ms)
       << ", \"latency_p95_ms\": " << json_number(r.serve_latency_p95_ms)
       << ", \"queue_depth\": ";
    append_series_stats(os, r.serve_queue_depth);
    os << "},\n";
  }
  os << "\"convergence\": [";
  for (std::size_t i = 0; i < r.convergence.size(); ++i) {
    const ConvergencePoint& p = r.convergence[i];
    os << (i == 0 ? "\n" : ",\n") << "  {\"sweep\": " << p.sweep
       << ", \"offdiag_frobenius\": " << json_number(p.offdiag_frobenius)
       << ", \"max_rel_offdiag\": " << json_number(p.max_rel_offdiag)
       << ", \"rotations\": " << p.rotations << ", \"skipped\": " << p.skipped
       << '}';
  }
  os << "\n],\n";
  os << "\"cross_checks\": {\"generator_busy_frac\": "
     << json_number(r.generator_busy_frac)
     << ", \"mean_worker_busy_frac\": "
     << json_number(r.mean_worker_busy_frac)
     << ", \"generator_is_bottleneck\": "
     << json_bool(r.generator_is_bottleneck)
     << ", \"queue_vs_sim_bound_ratio\": "
     << json_number(r.queue_vs_sim_bound_ratio)
     << ", \"software_queue_within_sim_bound\": "
     << json_bool(r.software_queue_within_sim_bound) << "}\n}\n";
  return os.str();
}

std::string report_table(const RunReport& r) {
  std::ostringstream os;
  os << "run: " << r.rows << "x" << r.cols << ", sweeps " << r.sweeps
     << (r.converged ? " (converged)" : " (NOT converged)") << ", rotations "
     << r.rotations_applied << " applied / " << r.rotations_skipped
     << " skipped, wall " << format_duration(r.wall_s) << "\n\n";

  if (!r.phases.empty()) {
    AsciiTable phases({"cat", "phase", "total", "count", "% of wall"});
    phases.set_caption("Per-phase wall-clock breakdown (spans nest; "
                       "fractions are per-name shares, not a partition)");
    for (const PhaseStat& p : r.phases)
      phases.add_row({p.cat, p.name, format_duration(p.total_s),
                      std::to_string(p.count), pct(p.frac_of_wall)});
    os << phases.to_string() << '\n';
  }

  if (r.has_pipeline) {
    AsciiTable threads({"thread", "busy", "stall", "busy % of wall"});
    threads.set_caption("Pipelined-engine threads");
    for (const ThreadStat& t : r.threads)
      threads.add_row({t.name, format_duration(t.busy_s),
                       format_duration(t.stall_s),
                       pct(t.busy_frac_of_wall)});
    os << threads.to_string() << '\n';
    os << "queue: capacity " << format_fixed(r.queue_capacity, 0)
       << " rotations, high-water " << format_fixed(r.queue_high_water, 0)
       << ", occupancy mean " << format_fixed(r.queue_occupancy.mean, 2)
       << " / p95 " << format_fixed(r.queue_occupancy.p95, 2) << " / max "
       << format_fixed(r.queue_occupancy.max, 0) << " over "
       << r.queue_occupancy.samples << " samples\n\n";
  }

  if (r.has_sim) {
    os << "sim: param-FIFO depth " << format_fixed(r.sim_fifo_depth_groups, 0)
       << " groups, high-water " << format_fixed(r.sim_fifo_high_water_groups, 0)
       << " groups (= " << format_fixed(r.sim_fifo_high_water_rotations, 0)
       << " rotations calibrated), occupancy mean "
       << format_fixed(r.sim_fifo_occupancy.mean, 2) << " / p95 "
       << format_fixed(r.sim_fifo_occupancy.p95, 2) << " over "
       << r.sim_fifo_occupancy.samples << " samples, update utilization "
       << pct(r.sim_update_utilization) << "\n\n";
  }

  if (r.has_batch) {
    os << "batch: " << r.batch_items << " matrices (" << r.batch_items_ok
       << " ok / " << r.batch_items_failed << " failed) on "
       << r.batch_workers << " workers (" << r.batch_workers_requested
       << " requested), " << r.batch_steals << " steals, "
       << r.batch_nested_splits << " nested splits (+"
       << r.batch_nested_helpers << " helper threads), wall "
       << format_duration(r.batch_wall_s) << ", pool idle "
       << pct(r.batch_idle_frac) << "\n";
    if (!r.batch_worker_stats.empty()) {
      AsciiTable workers({"worker", "busy", "idle"});
      workers.set_caption("Batch-scheduler pool workers");
      for (const BatchWorkerStat& w : r.batch_worker_stats)
        workers.add_row({w.name, format_duration(w.busy_s),
                         format_duration(w.idle_s)});
      os << workers.to_string() << '\n';
    }
    os << "batch queue: occupancy mean "
       << format_fixed(r.batch_queue_occupancy.mean, 2) << " / p95 "
       << format_fixed(r.batch_queue_occupancy.p95, 2) << " / max "
       << format_fixed(r.batch_queue_occupancy.max, 0) << " over "
       << r.batch_queue_occupancy.samples << " samples\n\n";
  }

  if (r.has_mixed) {
    os << "mixed precision: " << r.mp_float_sweeps << " float + "
       << r.mp_double_sweeps << " double sweeps, switched at sweep "
       << r.mp_switch_sweep << " (" << r.mp_switch_reason << ", threshold "
       << format_sci(r.mp_switch_threshold) << "), offdiag "
       << format_sci(r.mp_offdiag_at_switch) << " at switch -> "
       << format_sci(r.mp_offdiag_after_recompute)
       << " after the double Gram recompute\n\n";
  }

  if (r.has_live) {
    os << "live: ";
    if (r.live_ring_enabled) {
      os << "flight-recorder ring, capacity "
         << r.live_ring_capacity_events << " events/thread, "
         << r.live_dropped_events_total << " dropped";
    } else {
      os << "unbounded trace";
    }
    if (r.live_watchdog_present) {
      os << "; watchdog "
         << (r.live_watchdog_stalled ? "STALLED" : "no stall") << " ("
         << r.live_watchdog_stall_events << " episode(s) over "
         << r.live_watchdog_sweeps_observed
         << " sweeps, window " << r.live_watchdog_stall_sweeps
         << "), deadline ";
      if (r.live_watchdog_deadline_s > 0.0) {
        os << format_fixed(r.live_watchdog_deadline_s, 1) << "s "
           << (r.live_watchdog_deadline_exceeded ? "EXCEEDED" : "met");
      } else {
        os << "none";
      }
    }
    if (r.live_dumps > 0) os << "; " << r.live_dumps << " mid-run dump(s)";
    os << "\n\n";
  }

  if (r.has_numerics) {
    os << "numerics: " << r.num_samples << " sampled pairs (stride "
       << r.num_stride << "), cancellation " << pct(r.num_cancellation_frac)
       << " (worst rel " << format_sci(r.num_cancellation_worst_rel)
       << "), tiny-angle " << pct(r.num_tiny_angle_frac) << ", near-pi/4 "
       << pct(r.num_near_pi4_frac) << ", cond est "
       << format_sci(r.num_cond_estimate);
    if (r.num_cond_sigma >= 0.0)
      os << " (sigma " << format_sci(r.num_cond_sigma) << ")";
    if (r.num_offdiag_decrease_ratio >= 0.0)
      os << ", offdiag decrease " << format_sci(r.num_offdiag_decrease_ratio);
    if (r.num_orthogonality_drift >= 0.0)
      os << ", V drift " << format_sci(r.num_orthogonality_drift);
    if (r.num_backward_error >= 0.0)
      os << ", backward error " << format_sci(r.num_backward_error);
    os << "; verdicts: divergence "
       << (r.num_watchdog_divergence ? "FLAGGED" : "clear")
       << ", orthogonality "
       << (r.num_watchdog_orthogonality ? "FLAGGED" : "clear");
    if (r.num_nonfinite_events > 0)
      os << "; " << r.num_nonfinite_events << " NON-FINITE event(s)";
    os << "\n\n";
  }

  if (r.has_serve) {
    os << "serve: " << r.serve_requests_total << " requests ("
       << r.serve_admitted_total << " admitted / "
       << r.serve_rejected_overload << " overload / "
       << r.serve_rejected_bad_request << " bad), "
       << r.serve_expired_deadline << " deadline-expired, "
       << r.serve_replies_ok << " ok + " << r.serve_replies_error
       << " error replies over " << r.serve_waves_total
       << " wave(s); latency p50 "
       << format_fixed(r.serve_latency_p50_ms, 3) << "ms / p95 "
       << format_fixed(r.serve_latency_p95_ms, 3) << "ms; workspace "
       << r.serve_workspace_reuse_total << " reuses / "
       << r.serve_workspace_alloc_total << " allocs";
    if (r.serve_queue_depth.samples > 0)
      os << "; queue depth mean "
         << format_fixed(r.serve_queue_depth.mean, 2) << " / max "
         << format_fixed(r.serve_queue_depth.max, 0) << " over "
         << r.serve_queue_depth.samples << " samples";
    os << "\n\n";
  }

  if (!r.convergence.empty()) {
    AsciiTable conv(
        {"sweep", "offdiag Frobenius", "max rel offdiag", "rot", "skip"});
    conv.set_caption("Convergence trajectory (svd.sweep.* series)");
    for (const ConvergencePoint& p : r.convergence)
      conv.add_row({std::to_string(p.sweep), format_sci(p.offdiag_frobenius),
                    format_sci(p.max_rel_offdiag), std::to_string(p.rotations),
                    std::to_string(p.skipped)});
    os << conv.to_string() << '\n';
  }

  os << "cross-checks: generator busy " << pct(r.generator_busy_frac)
     << " of wall vs mean worker busy " << pct(r.mean_worker_busy_frac)
     << " -> generator "
     << (r.generator_is_bottleneck ? "IS" : "is NOT") << " the bottleneck";
  if (r.queue_vs_sim_bound_ratio > 0.0) {
    os << "; software queue high-water is "
       << format_fixed(r.queue_vs_sim_bound_ratio * 100.0, 1)
       << "% of the sim's calibrated FIFO bound ("
       << (r.software_queue_within_sim_bound ? "within" : "EXCEEDS")
       << " bound)";
  }
  os << '\n';
  return os.str();
}

RunReport report_from_json(const JsonValue& doc) {
  const std::string schema = doc.string_or("schema");
  if (schema != obs::kReportSchema)
    throw SchemaError("report document has schema '" + schema +
                      "', expected '" + obs::kReportSchema + "'");
  RunReport r;
  const JsonValue& run = doc.at("run");
  r.rows = static_cast<std::uint64_t>(run.number_or("rows", 0.0));
  r.cols = static_cast<std::uint64_t>(run.number_or("cols", 0.0));
  r.sweeps = static_cast<std::uint64_t>(run.number_or("sweeps", 0.0));
  const JsonValue* converged = run.find("converged");
  r.converged = converged != nullptr && converged->as_bool();
  r.rotations_applied =
      static_cast<std::uint64_t>(run.number_or("rotations_applied", 0.0));
  r.rotations_skipped =
      static_cast<std::uint64_t>(run.number_or("rotations_skipped", 0.0));
  r.wall_s = run.number_or("wall_s", 0.0);
  if (const JsonValue* phases = doc.find("phases");
      phases != nullptr && phases->is_array()) {
    for (const JsonValue& p : phases->as_array()) {
      PhaseStat stat;
      stat.cat = p.string_or("cat");
      stat.name = p.string_or("name");
      stat.total_s = p.number_or("total_s", 0.0);
      stat.count = static_cast<std::uint64_t>(p.number_or("count", 0.0));
      stat.frac_of_wall = p.number_or("frac_of_wall", 0.0);
      r.phases.push_back(std::move(stat));
    }
  }
  if (const JsonValue* pipeline = doc.find("pipeline");
      pipeline != nullptr && pipeline->is_object()) {
    r.has_pipeline = true;
    if (const JsonValue* threads = pipeline->find("threads");
        threads != nullptr && threads->is_array()) {
      for (const JsonValue& t : threads->as_array()) {
        ThreadStat stat;
        stat.name = t.string_or("name");
        stat.busy_s = t.number_or("busy_s", 0.0);
        stat.stall_s = t.number_or("stall_s", 0.0);
        stat.busy_frac_of_wall = t.number_or("busy_frac_of_wall", 0.0);
        r.threads.push_back(std::move(stat));
      }
    }
    r.queue_capacity = pipeline->number_or("queue_capacity", 0.0);
    r.queue_high_water = pipeline->number_or("queue_high_water", 0.0);
    if (const JsonValue* occ = pipeline->find("queue_occupancy"))
      r.queue_occupancy = series_stats_from_json(*occ);
  }
  if (const JsonValue* sim = doc.find("sim");
      sim != nullptr && sim->is_object()) {
    r.has_sim = true;
    r.sim_fifo_depth_groups = sim->number_or("param_fifo_depth_groups", 0.0);
    r.sim_fifo_high_water_groups =
        sim->number_or("param_fifo_high_water_groups", 0.0);
    r.sim_fifo_high_water_rotations =
        sim->number_or("param_fifo_high_water_rotations", 0.0);
    if (const JsonValue* occ = sim->find("param_fifo_occupancy"))
      r.sim_fifo_occupancy = series_stats_from_json(*occ);
    r.sim_update_utilization = sim->number_or("update_utilization", 0.0);
  }
  if (const JsonValue* batch = doc.find("batch");
      batch != nullptr && batch->is_object()) {
    r.has_batch = true;
    const auto u64 = [&](const char* name) {
      return static_cast<std::uint64_t>(batch->number_or(name, 0.0));
    };
    r.batch_items = u64("items");
    r.batch_items_ok = u64("items_ok");
    r.batch_items_failed = u64("items_failed");
    r.batch_workers = u64("workers");
    r.batch_workers_requested = u64("workers_requested");
    r.batch_steals = u64("steals");
    r.batch_nested_splits = u64("nested_splits");
    r.batch_nested_helpers = u64("nested_helpers");
    r.batch_wall_s = batch->number_or("wall_s", 0.0);
    r.batch_idle_frac = batch->number_or("idle_frac", 0.0);
    if (const JsonValue* workers = batch->find("worker_threads");
        workers != nullptr && workers->is_array()) {
      for (const JsonValue& w : workers->as_array()) {
        BatchWorkerStat stat;
        stat.name = w.string_or("name");
        stat.busy_s = w.number_or("busy_s", 0.0);
        stat.idle_s = w.number_or("idle_s", 0.0);
        r.batch_worker_stats.push_back(std::move(stat));
      }
    }
    if (const JsonValue* occ = batch->find("queue_occupancy"))
      r.batch_queue_occupancy = series_stats_from_json(*occ);
  }
  if (const JsonValue* mixed = doc.find("mixed");
      mixed != nullptr && mixed->is_object()) {
    r.has_mixed = true;
    r.mp_float_sweeps =
        static_cast<std::uint64_t>(mixed->number_or("float_sweeps", 0.0));
    r.mp_double_sweeps =
        static_cast<std::uint64_t>(mixed->number_or("double_sweeps", 0.0));
    r.mp_switch_sweep =
        static_cast<std::uint64_t>(mixed->number_or("switch_sweep", 0.0));
    r.mp_switch_threshold = mixed->number_or("switch_threshold", 0.0);
    r.mp_switch_reason = mixed->string_or("switch_reason");
    r.mp_offdiag_at_switch = mixed->number_or("offdiag_at_switch", 0.0);
    r.mp_offdiag_after_recompute =
        mixed->number_or("offdiag_after_recompute", 0.0);
  }
  if (const JsonValue* live = doc.find("live");
      live != nullptr && live->is_object()) {
    r.has_live = true;
    const auto flag = [&](const char* name) {
      const JsonValue* v = live->find(name);
      return v != nullptr && v->as_bool();
    };
    const auto u64 = [&](const char* name) {
      return static_cast<std::uint64_t>(live->number_or(name, 0.0));
    };
    r.live_ring_enabled = flag("ring_enabled");
    r.live_ring_capacity_events = u64("ring_capacity_events");
    r.live_dropped_events_total = u64("dropped_events_total");
    r.live_watchdog_present = flag("watchdog_present");
    r.live_watchdog_stalled = flag("watchdog_stalled");
    r.live_watchdog_deadline_exceeded = flag("watchdog_deadline_exceeded");
    r.live_watchdog_deadline_s = live->number_or("watchdog_deadline_s", 0.0);
    r.live_watchdog_stall_sweeps = u64("watchdog_stall_sweeps");
    r.live_watchdog_stall_events = u64("watchdog_stall_events");
    r.live_watchdog_sweeps_observed = u64("watchdog_sweeps_observed");
    r.live_watchdog_deadline_overruns = u64("watchdog_deadline_overruns");
    r.live_dumps = u64("dumps");
  }
  if (const JsonValue* num = doc.find("numerics");
      num != nullptr && num->is_object()) {
    r.has_numerics = true;
    const auto flag = [&](const char* name) {
      const JsonValue* v = num->find(name);
      return v != nullptr && v->as_bool();
    };
    const auto u64 = [&](const char* name) {
      return static_cast<std::uint64_t>(num->number_or(name, 0.0));
    };
    r.num_samples = u64("samples");
    r.num_stride = u64("stride");
    r.num_nonfinite_events = u64("nonfinite_events");
    r.num_cancellation_events = u64("cancellation_events");
    r.num_divergence_events = u64("divergence_events");
    r.num_cancellation_frac = num->number_or("cancellation_frac", 0.0);
    r.num_cancellation_worst_rel =
        num->number_or("cancellation_worst_rel", 1.0);
    r.num_tiny_angle_frac = num->number_or("tiny_angle_frac", 0.0);
    r.num_near_pi4_frac = num->number_or("near_pi4_frac", 0.0);
    if (const JsonValue* hist = num->find("angle_hist");
        hist != nullptr && hist->is_array()) {
      for (const JsonValue& b : hist->as_array())
        r.num_angle_hist.push_back(
            static_cast<std::uint64_t>(b.as_number()));
    }
    r.num_cond_estimate = num->number_or("cond_estimate", 1.0);
    r.num_cond_sigma = num->number_or("cond_sigma", -1.0);
    r.num_has_norm_exp = num->find("norm_exp_min") != nullptr;
    if (r.num_has_norm_exp) {
      r.num_norm_exp_min = num->number_or("norm_exp_min", 0.0);
      r.num_norm_exp_max = num->number_or("norm_exp_max", 0.0);
    }
    r.num_offdiag_decrease_ratio =
        num->number_or("offdiag_decrease_ratio", -1.0);
    r.num_orthogonality_drift = num->number_or("orthogonality_drift", -1.0);
    r.num_backward_error = num->number_or("backward_error", -1.0);
    r.num_watchdog_divergence = flag("watchdog_divergence");
    r.num_watchdog_orthogonality = flag("watchdog_orthogonality");
  }
  if (const JsonValue* serve = doc.find("serve");
      serve != nullptr && serve->is_object()) {
    r.has_serve = true;
    const auto u64 = [&](const char* name) {
      return static_cast<std::uint64_t>(serve->number_or(name, 0.0));
    };
    r.serve_requests_total = u64("requests_total");
    r.serve_admitted_total = u64("admitted_total");
    r.serve_rejected_overload = u64("rejected_overload");
    r.serve_rejected_bad_request = u64("rejected_bad_request");
    r.serve_expired_deadline = u64("expired_deadline");
    r.serve_replies_ok = u64("replies_ok");
    r.serve_replies_error = u64("replies_error");
    r.serve_waves_total = u64("waves_total");
    r.serve_workspace_reuse_total = u64("workspace_reuse_total");
    r.serve_workspace_alloc_total = u64("workspace_alloc_total");
    r.serve_latency_p50_ms = serve->number_or("latency_p50_ms", 0.0);
    r.serve_latency_p95_ms = serve->number_or("latency_p95_ms", 0.0);
    if (const JsonValue* depth = serve->find("queue_depth");
        depth != nullptr && depth->is_object())
      r.serve_queue_depth = series_stats_from_json(*depth);
  }
  if (const JsonValue* conv = doc.find("convergence");
      conv != nullptr && conv->is_array()) {
    for (const JsonValue& p : conv->as_array()) {
      ConvergencePoint point;
      point.sweep = static_cast<std::uint64_t>(p.number_or("sweep", 0.0));
      point.offdiag_frobenius = p.number_or("offdiag_frobenius", 0.0);
      point.max_rel_offdiag = p.number_or("max_rel_offdiag", 0.0);
      point.rotations =
          static_cast<std::uint64_t>(p.number_or("rotations", 0.0));
      point.skipped = static_cast<std::uint64_t>(p.number_or("skipped", 0.0));
      r.convergence.push_back(point);
    }
  }
  if (const JsonValue* checks = doc.find("cross_checks");
      checks != nullptr && checks->is_object()) {
    r.generator_busy_frac = checks->number_or("generator_busy_frac", 0.0);
    r.mean_worker_busy_frac =
        checks->number_or("mean_worker_busy_frac", 0.0);
    const JsonValue* bottleneck = checks->find("generator_is_bottleneck");
    r.generator_is_bottleneck =
        bottleneck != nullptr && bottleneck->as_bool();
    r.queue_vs_sim_bound_ratio =
        checks->number_or("queue_vs_sim_bound_ratio", 0.0);
    const JsonValue* within = checks->find("software_queue_within_sim_bound");
    r.software_queue_within_sim_bound = within != nullptr && within->as_bool();
  }
  return r;
}

namespace {

double total_stall_s(const RunReport& r) {
  double sum = 0.0;
  for (const ThreadStat& t : r.threads) sum += t.stall_s;
  return sum;
}

}  // namespace

CompareResult compare_reports(const RunReport& baseline,
                              const RunReport& candidate,
                              const CompareThresholds& thresholds) {
  CompareResult out;
  const auto check = [&](bool failed, const std::string& line) {
    out.findings.push_back((failed ? "FAIL " : "ok   ") + line);
    if (failed) out.regressed = true;
  };

  if (baseline.rows != candidate.rows || baseline.cols != candidate.cols) {
    check(true, "workload mismatch: baseline " + std::to_string(baseline.rows) +
                    "x" + std::to_string(baseline.cols) + " vs candidate " +
                    std::to_string(candidate.rows) + "x" +
                    std::to_string(candidate.cols) +
                    " — reports are not comparable");
    return out;
  }

  if (baseline.wall_s > 0.0) {
    const double limit =
        baseline.wall_s * (1.0 + thresholds.max_wall_regress_frac);
    const double delta_frac =
        (candidate.wall_s - baseline.wall_s) / baseline.wall_s;
    check(candidate.wall_s > limit,
          "wall_s " + format_sci(baseline.wall_s) + " -> " +
              format_sci(candidate.wall_s) + " (" +
              format_fixed(delta_frac * 100.0, 1) + "%, limit +" +
              format_fixed(thresholds.max_wall_regress_frac * 100.0, 1) + "%)");
  }

  check(candidate.sweeps > baseline.sweeps + thresholds.max_sweep_increase,
        "sweeps " + std::to_string(baseline.sweeps) + " -> " +
            std::to_string(candidate.sweeps) + " (limit +" +
            std::to_string(thresholds.max_sweep_increase) + ")");

  check(baseline.converged && !candidate.converged,
        std::string("converged ") + (baseline.converged ? "yes" : "no") +
            " -> " + (candidate.converged ? "yes" : "no"));

  if (baseline.rotations_applied > 0) {
    const double limit =
        static_cast<double>(baseline.rotations_applied) *
        (1.0 + thresholds.max_rotation_increase_frac);
    check(static_cast<double>(candidate.rotations_applied) > limit,
          "rotations_applied " + std::to_string(baseline.rotations_applied) +
              " -> " + std::to_string(candidate.rotations_applied) +
              " (limit +" +
              format_fixed(thresholds.max_rotation_increase_frac * 100.0, 1) +
              "%)");
  }

  if (baseline.has_pipeline && candidate.has_pipeline) {
    const double base_stall = total_stall_s(baseline);
    const double cand_stall = total_stall_s(candidate);
    if (base_stall > 0.0) {
      const double limit =
          base_stall * (1.0 + thresholds.max_stall_increase_frac);
      check(cand_stall > limit,
            "pipeline total stall " + format_sci(base_stall) + "s -> " +
                format_sci(cand_stall) + "s (limit +" +
                format_fixed(thresholds.max_stall_increase_frac * 100.0, 1) +
                "%)");
    }
    check(!baseline.generator_is_bottleneck &&
              candidate.generator_is_bottleneck,
          std::string("generator_is_bottleneck ") +
              (baseline.generator_is_bottleneck ? "true" : "false") + " -> " +
              (candidate.generator_is_bottleneck ? "true" : "false"));
  }

  // Accuracy leaves (numerics section): higher is worse, gated exactly as
  // timings — relative regression fraction with an absolute noise floor so
  // two rounding-level values cannot produce a spurious "50% worse".  A
  // value of -1 means the run did not record the measure (values-only run);
  // compare only when both sides have it.
  if (baseline.has_numerics && candidate.has_numerics) {
    const auto check_accuracy = [&](const char* label, double base,
                                    double cand) {
      if (base < 0.0 || cand < 0.0) return;
      const double limit =
          std::max(base * (1.0 + thresholds.max_accuracy_regress_frac),
                   base + thresholds.accuracy_noise_floor);
      check(cand > limit, std::string(label) + " " + format_sci(base) +
                              " -> " + format_sci(cand) + " (limit " +
                              format_sci(limit) + ")");
    };
    check_accuracy("numerics backward_error", baseline.num_backward_error,
                   candidate.num_backward_error);
    check_accuracy("numerics orthogonality_drift",
                   baseline.num_orthogonality_drift,
                   candidate.num_orthogonality_drift);
    // Verdict invariants: false -> true flips are regressions, like the
    // live watchdog verdicts below.
    check(!baseline.num_watchdog_divergence &&
              candidate.num_watchdog_divergence,
          std::string("numerics watchdog_divergence ") +
              (baseline.num_watchdog_divergence ? "true" : "false") + " -> " +
              (candidate.num_watchdog_divergence ? "true" : "false"));
    check(!baseline.num_watchdog_orthogonality &&
              candidate.num_watchdog_orthogonality,
          std::string("numerics watchdog_orthogonality ") +
              (baseline.num_watchdog_orthogonality ? "true" : "false") +
              " -> " +
              (candidate.num_watchdog_orthogonality ? "true" : "false"));
  }

  // Live-telemetry invariants, not timings: a candidate must not introduce
  // watchdog verdicts the baseline did not have, and a flight-recorder
  // candidate must not start dropping ring events when the baseline
  // dropped none (that means the ring got too small for the workload).
  if (baseline.has_live && candidate.has_live) {
    check(!baseline.live_watchdog_stalled && candidate.live_watchdog_stalled,
          std::string("watchdog stalled ") +
              (baseline.live_watchdog_stalled ? "true" : "false") + " -> " +
              (candidate.live_watchdog_stalled ? "true" : "false"));
    check(!baseline.live_watchdog_deadline_exceeded &&
              candidate.live_watchdog_deadline_exceeded,
          std::string("watchdog deadline_exceeded ") +
              (baseline.live_watchdog_deadline_exceeded ? "true" : "false") +
              " -> " +
              (candidate.live_watchdog_deadline_exceeded ? "true" : "false"));
    if (baseline.live_ring_enabled && candidate.live_ring_enabled) {
      check(baseline.live_dropped_events_total == 0 &&
                candidate.live_dropped_events_total > 0,
            "ring dropped_events_total " +
                std::to_string(baseline.live_dropped_events_total) + " -> " +
                std::to_string(candidate.live_dropped_events_total));
    }
  }

  return out;
}

}  // namespace hjsvd::report

#include "svd/pinv.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace hjsvd {
namespace {

struct Decomp {
  SvdResult svd;
  double cutoff = 0.0;
  std::size_t rank = 0;
};

Decomp decompose(const Matrix& a, const PinvConfig& cfg) {
  HestenesConfig svd_cfg = cfg.svd;
  svd_cfg.compute_u = true;
  svd_cfg.compute_v = true;
  Decomp d;
  d.svd = modified_hestenes_svd(a, svd_cfg);
  const double sigma_max =
      d.svd.singular_values.empty() ? 0.0 : d.svd.singular_values[0];
  // Default cutoff: the Gram-matrix path resolves singular values only to
  // ~sqrt(eps) * sigma_max (DESIGN.md §6 / README accuracy notes), so the
  // default rcond uses sqrt(eps) rather than LAPACK's eps.
  const double rcond =
      cfg.rcond > 0.0
          ? cfg.rcond
          : static_cast<double>(std::max(a.rows(), a.cols())) *
                std::sqrt(std::numeric_limits<double>::epsilon());
  d.cutoff = sigma_max * rcond;
  for (double s : d.svd.singular_values)
    if (s > d.cutoff) ++d.rank;
  return d;
}

}  // namespace

Matrix pseudoinverse(const Matrix& a, const PinvConfig& cfg) {
  const Decomp d = decompose(a, cfg);
  // A+ = V * diag(1/s) * U^T over the retained spectrum.
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Matrix pinv(n, m);
  for (std::size_t t = 0; t < d.rank; ++t) {
    const double inv = 1.0 / d.svd.singular_values[t];
    const auto vt = d.svd.v.col(t);
    const auto ut = d.svd.u.col(t);
    for (std::size_t c = 0; c < m; ++c) {
      const double w = inv * ut[c];
      auto col = pinv.col(c);
      for (std::size_t r = 0; r < n; ++r) col[r] += vt[r] * w;
    }
  }
  return pinv;
}

Matrix lstsq(const Matrix& a, const Matrix& b, const PinvConfig& cfg) {
  HJSVD_ENSURE(b.rows() == a.rows(),
               "right-hand side must have one row per equation");
  const Decomp d = decompose(a, cfg);
  // x = V diag(1/s) U^T b, computed factor by factor (never forming A+).
  const std::size_t n = a.cols();
  const std::size_t k = b.cols();
  Matrix x(n, k);
  for (std::size_t t = 0; t < d.rank; ++t) {
    const auto ut = d.svd.u.col(t);
    const auto vt = d.svd.v.col(t);
    const double inv = 1.0 / d.svd.singular_values[t];
    for (std::size_t j = 0; j < k; ++j) {
      const auto bj = b.col(j);
      double dot_ub = 0.0;
      for (std::size_t r = 0; r < ut.size(); ++r) dot_ub += ut[r] * bj[r];
      const double w = inv * dot_ub;
      auto xj = x.col(j);
      for (std::size_t r = 0; r < n; ++r) xj[r] += vt[r] * w;
    }
  }
  return x;
}

std::size_t numerical_rank(const Matrix& a, const PinvConfig& cfg) {
  return decompose(a, cfg).rank;
}

PolarDecomposition polar_decompose(const Matrix& a, const PinvConfig& cfg) {
  HJSVD_ENSURE(a.rows() >= a.cols(),
               "polar decomposition requires m >= n");
  const Decomp d = decompose(a, cfg);
  HJSVD_ENSURE(d.rank == a.cols(),
               "polar decomposition requires full column rank");
  // Q = U V^T, H = V diag(s) V^T.
  PolarDecomposition out;
  out.q = matmul(d.svd.u, d.svd.v.transposed());
  const std::size_t n = a.cols();
  Matrix sv_vt(n, n);
  for (std::size_t t = 0; t < n; ++t) {
    const auto vt = d.svd.v.col(t);
    const double s = d.svd.singular_values[t];
    for (std::size_t c = 0; c < n; ++c)
      for (std::size_t r = 0; r < n; ++r)
        sv_vt(r, c) += s * vt[r] * vt[c];
  }
  out.h = std::move(sv_vt);
  return out;
}

}  // namespace hjsvd

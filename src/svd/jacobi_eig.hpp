// Classical Jacobi eigenvalue algorithm for symmetric matrices.
//
// This is the 1846 ancestor of everything in this repository: two-sided
// Jacobi rotations diagonalize a symmetric matrix, and Hestenes' insight
// (the paper's Section II.C) is that applying the same rotations one-sided
// to A diagonalizes A^T A implicitly.  The eigensolver gives the library an
// independent verification path — eig(A^T A) must equal the squared
// singular values — and a direct PCA-on-covariance route.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "svd/ordering.hpp"

namespace hjsvd {

struct JacobiEigConfig {
  std::size_t max_sweeps = 30;
  /// Stop when max |off-diagonal| / max |diagonal| drops below this.
  double tolerance = 1e-14;
  Ordering ordering = Ordering::kRoundRobin;
  bool compute_vectors = false;
};

struct EigResult {
  std::vector<double> eigenvalues;  // descending
  Matrix eigenvectors;              // n x n, columns; empty unless requested
  std::size_t sweeps = 0;
  bool converged = false;
};

/// Eigendecomposition of a symmetric matrix (symmetry is validated up to a
/// small tolerance; the strictly-lower triangle is ignored afterwards).
EigResult jacobi_eigendecomposition(const Matrix& a,
                                    const JacobiEigConfig& cfg = {});

}  // namespace hjsvd

// Pseudoinverse, least squares, and polar decomposition via the SVD.
//
// A historical closing of the loop: Hestenes' 1958 paper that the method is
// named after ("Inversion of matrices by biorthogonalization", the paper's
// ref. [10]) is about exactly this — computing inverses/pseudoinverses by
// orthogonalizing columns.  These utilities expose that capability on top
// of the modified Hestenes-Jacobi SVD.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "svd/hestenes.hpp"

namespace hjsvd {

struct PinvConfig {
  /// Relative cutoff: singular values below rcond * sigma_max are treated
  /// as zero (rank truncation).  Non-positive selects the default
  /// max(m, n) * sqrt(eps) — sqrt because the Gram-matrix method resolves
  /// small singular values only to that level (README accuracy notes).
  double rcond = -1.0;
  /// SVD solver settings.
  HestenesConfig svd{.max_sweeps = 30, .tolerance = 1e-13};
};

/// Moore-Penrose pseudoinverse A+ (n x m for an m x n input).
Matrix pseudoinverse(const Matrix& a, const PinvConfig& cfg = {});

/// Minimum-norm least-squares solution of A x = b (multiple right-hand
/// sides: b is m x k, returns n x k).
Matrix lstsq(const Matrix& a, const Matrix& b, const PinvConfig& cfg = {});

/// Numerical rank under the same cutoff rule.
std::size_t numerical_rank(const Matrix& a, const PinvConfig& cfg = {});

/// Polar decomposition A = Q * H with Q (m x n, orthonormal columns,
/// requires m >= n and full column rank for uniqueness) and H symmetric
/// positive semi-definite (n x n).
struct PolarDecomposition {
  Matrix q;
  Matrix h;
};
PolarDecomposition polar_decompose(const Matrix& a,
                                   const PinvConfig& cfg = {});

}  // namespace hjsvd

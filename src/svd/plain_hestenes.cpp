#include "svd/plain_hestenes.hpp"

#include "svd/plain_hestenes_impl.hpp"

namespace hjsvd {

template SvdResult plain_hestenes_svd_t<fp::NativeOps>(const Matrix&,
                                                       const HestenesConfig&,
                                                       HestenesStats*,
                                                       fp::NativeOps);
template SvdResult plain_hestenes_svd_t<fp::SoftOps>(const Matrix&,
                                                     const HestenesConfig&,
                                                     HestenesStats*,
                                                     fp::SoftOps);
template SvdResult plain_hestenes_svd_t<fp::CountingOps>(const Matrix&,
                                                         const HestenesConfig&,
                                                         HestenesStats*,
                                                         fp::CountingOps);

SvdResult plain_hestenes_svd(const Matrix& a, const HestenesConfig& cfg,
                             HestenesStats* stats) {
  return plain_hestenes_svd_t(a, cfg, stats, fp::NativeOps{});
}

SvdResult plain_hestenes_svd_counting(const Matrix& a,
                                      const HestenesConfig& cfg,
                                      fp::OpCounts& counts,
                                      HestenesStats* stats) {
  return plain_hestenes_svd_t(a, cfg, stats, fp::CountingOps{counts});
}

}  // namespace hjsvd

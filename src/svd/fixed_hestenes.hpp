// Fixed-point plain Hestenes-Jacobi — a model of the prior FPGA design [11]
// (Ledesma-Carrillo et al.): the recomputing one-sided Jacobi executed in
// Qm.f fixed-point arithmetic.  Used by the dynamic-range ablation to show
// why the paper moved to IEEE-754 double precision.
#pragma once

#include "fp/fixed.hpp"
#include "linalg/matrix.hpp"
#include "linalg/residuals.hpp"
#include "svd/hestenes.hpp"

namespace hjsvd {

/// Runs the plain Hestenes-Jacobi SVD entirely in the given fixed-point
/// format; `stats` reports saturation/underflow events (the failure
/// signature when the data's dynamic range exceeds the format).
SvdResult fixed_point_hestenes_svd(const Matrix& a, const fp::FixedFormat& fmt,
                                   fp::FixedStats& stats,
                                   const HestenesConfig& cfg = {});

}  // namespace hjsvd

// Plain (recomputing) one-sided Hestenes-Jacobi SVD.
//
// This is the textbook algorithm — and the design point of the prior FPGA
// work the paper improves on ([12], "iterative design with duplicated
// computations"): every orthogonalization recomputes the two squared
// 2-norms and the covariance from the column data (3 dot products of length
// m) and rotates the m-element columns, instead of maintaining the cached
// covariance matrix D.  The D-caching ablation benchmark contrasts the two.
//
// A side benefit: the columns converge to B = U * Sigma directly, so U is
// read off by normalizing them.
#pragma once

#include "fp/latency.hpp"
#include "fp/ops.hpp"
#include "linalg/matrix.hpp"
#include "linalg/residuals.hpp"
#include "svd/hestenes.hpp"

namespace hjsvd {

/// Plain one-sided Jacobi, generic over the arithmetic policy.  Honors the
/// same HestenesConfig fields as the modified algorithm (max_sweeps,
/// tolerance, ordering, formula, compute_u/v, track_convergence).
template <class Ops>
SvdResult plain_hestenes_svd_t(const Matrix& a, const HestenesConfig& cfg,
                               HestenesStats* stats, Ops ops);

/// Host-FPU convenience entry point.
SvdResult plain_hestenes_svd(const Matrix& a, const HestenesConfig& cfg = {},
                             HestenesStats* stats = nullptr);

/// Operation-counting entry point (D-caching ablation).
SvdResult plain_hestenes_svd_counting(const Matrix& a,
                                      const HestenesConfig& cfg,
                                      fp::OpCounts& counts,
                                      HestenesStats* stats = nullptr);

}  // namespace hjsvd

#include "svd/hestenes.hpp"

#include "svd/hestenes_impl.hpp"

namespace hjsvd {

// Explicit instantiations for the three arithmetic policies.
template SvdResult modified_hestenes_svd_t<fp::NativeOps>(const Matrix&,
                                                          const HestenesConfig&,
                                                          HestenesStats*,
                                                          fp::NativeOps);
template SvdResult modified_hestenes_svd_t<fp::SoftOps>(const Matrix&,
                                                        const HestenesConfig&,
                                                        HestenesStats*,
                                                        fp::SoftOps);
template SvdResult modified_hestenes_svd_t<fp::CountingOps>(
    const Matrix&, const HestenesConfig&, HestenesStats*, fp::CountingOps);

template Matrix gram_upper_ops<fp::NativeOps>(const Matrix&, fp::NativeOps,
                                              std::size_t);
template Matrix gram_upper_ops<fp::SoftOps>(const Matrix&, fp::SoftOps,
                                            std::size_t);
template Matrix gram_upper_ops<fp::CountingOps>(const Matrix&, fp::CountingOps,
                                                std::size_t);

SvdResult modified_hestenes_svd(const Matrix& a, const HestenesConfig& cfg,
                                HestenesStats* stats) {
  return modified_hestenes_svd_t(a, cfg, stats, fp::NativeOps{});
}

SvdResult modified_hestenes_svd_soft(const Matrix& a,
                                     const HestenesConfig& cfg,
                                     HestenesStats* stats) {
  return modified_hestenes_svd_t(a, cfg, stats, fp::SoftOps{});
}

SvdResult modified_hestenes_svd_counting(const Matrix& a,
                                         const HestenesConfig& cfg,
                                         fp::OpCounts& counts,
                                         HestenesStats* stats) {
  return modified_hestenes_svd_t(a, cfg, stats, fp::CountingOps{counts});
}

}  // namespace hjsvd

// Vector-pair orderings for one-sided Jacobi sweeps.
//
// A sweep must orthogonalize every pair of columns exactly once.  The paper
// (Section V.D, Fig. 6) uses the classic cyclic/round-robin tournament
// ordering: n-1 rounds of n/2 disjoint pairs, with indexes rotating around a
// fixed slot; disjoint pairs within a round can be rotated in parallel, and
// the hardware processes them in groups of 8 (the dashed box in Fig. 6).
// Algorithm 1's pseudocode iterates row-cyclically (i outer, j inner); both
// orderings are provided, plus odd-even for the ordering ablation.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace hjsvd {

/// A column pair (i, j) with i < j.
using Pair = std::pair<std::size_t, std::size_t>;

enum class Ordering {
  kRowCyclic,   // (0,1), (0,2), ..., (0,n-1), (1,2), ... — Algorithm 1
  kRoundRobin,  // tournament rounds of disjoint pairs — Fig. 6, the hardware
  kOddEven,     // alternating odd/even neighbor exchanges (ablation)
};

/// All pairs of a row-cyclic sweep, in order.
std::vector<Pair> row_cyclic_sweep(std::size_t n);

/// Round-robin tournament: n-1 rounds (n even; n odd gets a bye), each a set
/// of disjoint pairs covering every pair exactly once across the sweep.
std::vector<std::vector<Pair>> round_robin_rounds(std::size_t n);

/// Odd-even transposition ordering: n rounds alternating (0,1)(2,3)... and
/// (1,2)(3,4)...; a full sweep of n rounds does NOT cover all pairs once —
/// it is a neighbor-exchange scheme, listed for the convergence ablation.
std::vector<std::vector<Pair>> odd_even_rounds(std::size_t n);

/// Flattened sweep for the given ordering (rounds concatenated in order).
std::vector<Pair> sweep_pairs(Ordering ordering, std::size_t n);

/// Splits one round's disjoint pairs into hardware groups of at most
/// `group_size` (the paper uses 8 concurrent rotations per group).
std::vector<std::vector<Pair>> chunk_groups(const std::vector<Pair>& round,
                                            std::size_t group_size);

}  // namespace hjsvd

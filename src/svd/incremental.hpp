// Incremental (column-append) one-sided Jacobi SVD.
//
// The paper's target applications grow over time — documents arrive in an
// LSI index, frames arrive in a video pipeline — and recomputing the SVD
// from scratch per arrival is the cost the paper's intro laments (185 s per
// robust-PCA pass).  One-sided Jacobi is naturally incremental: the working
// columns B = U*Sigma and the accumulated V stay valid when a column is
// appended; only the new column must be orthogonalized against the existing
// ones, plus a cheap refresh sweep.
#pragma once

#include <span>

#include "linalg/matrix.hpp"
#include "linalg/residuals.hpp"
#include "svd/hestenes.hpp"

namespace hjsvd {

struct IncrementalConfig {
  /// Orthogonalization passes of the appended column against all existing
  /// ones per append (1 is usually enough; 2 for tighter coupling).
  std::size_t append_passes = 2;
  /// Full-sweep budget of finalize() (resolves residual coupling among the
  /// old columns disturbed by appends).
  std::size_t finalize_sweeps = 20;
  double tolerance = 1e-13;
  RotationFormula formula = RotationFormula::kHardware;
};

/// Maintains the SVD of a matrix whose columns arrive one at a time.
class IncrementalHestenes {
 public:
  explicit IncrementalHestenes(std::size_t rows,
                               const IncrementalConfig& cfg = {});

  /// Appends one column (length rows()) and orthogonalizes it against the
  /// existing columns.
  void append_column(std::span<const double> column);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Current singular values after a full convergence pass; with vectors,
  /// satisfies A ~= U diag(sv) V^T for the matrix appended so far.
  SvdResult finalize(bool compute_u = false, bool compute_v = false);

  /// The matrix assembled so far (reconstructed as B * V^T).
  Matrix assembled() const;

 private:
  void orthogonalize_pair(std::size_t i, std::size_t j);

  IncrementalConfig cfg_;
  std::size_t rows_;
  std::size_t cols_ = 0;
  Matrix b_;  // rows_ x cols_: working columns, converge to U * Sigma
  Matrix v_;  // cols_ x cols_: accumulated right rotations
};

}  // namespace hjsvd
